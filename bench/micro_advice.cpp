// M1b — microbenchmarks for the advice machinery: ComputeAdvice end to
// end, RetrieveLabel on node views, advice encode/decode, and the codec
// primitives.

#include <benchmark/benchmark.h>

#include "advice/min_time.hpp"
#include "coding/codec.hpp"
#include "families/necklace.hpp"
#include "portgraph/builders.hpp"
#include "views/profile.hpp"

namespace {

using namespace anole;

void BM_ComputeAdvice(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  portgraph::PortGraph g = portgraph::random_connected(n, n, 13);
  for (auto _ : state) {
    views::ViewRepo repo;
    views::ViewProfile p = views::compute_profile(g, repo, 1);
    advice::MinTimeAdvice adv = advice::compute_advice(g, repo, p);
    benchmark::DoNotOptimize(adv.phi);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ComputeAdvice)->Arg(32)->Arg(128)->Arg(512);

void BM_ComputeAdviceDeepPhi(benchmark::State& state) {
  families::Necklace nk =
      families::necklace_member(5, static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    views::ViewRepo repo;
    views::ViewProfile p = views::compute_profile(nk.graph, repo, 1);
    advice::MinTimeAdvice adv = advice::compute_advice(nk.graph, repo, p);
    benchmark::DoNotOptimize(adv.phi);
  }
}
BENCHMARK(BM_ComputeAdviceDeepPhi)->Arg(2)->Arg(4)->Arg(8);

void BM_RetrieveLabel(benchmark::State& state) {
  portgraph::PortGraph g = portgraph::random_connected(128, 128, 17);
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo, 1);
  advice::MinTimeAdvice adv = advice::compute_advice(g, repo, p);
  int phi = static_cast<int>(adv.phi);
  for (auto _ : state) {
    // Fresh labeler each iteration — as every node does.
    advice::Labeler labeler(repo, adv.e1, adv.e2);
    benchmark::DoNotOptimize(labeler.retrieve_label(p.view(phi, 0)));
  }
}
BENCHMARK(BM_RetrieveLabel);

void BM_AdviceEncode(benchmark::State& state) {
  portgraph::PortGraph g = portgraph::random_connected(128, 128, 19);
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo, 1);
  advice::MinTimeAdvice adv = advice::compute_advice(g, repo, p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adv.to_bits().size());
  }
}
BENCHMARK(BM_AdviceEncode);

void BM_AdviceDecode(benchmark::State& state) {
  portgraph::PortGraph g = portgraph::random_connected(128, 128, 19);
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo, 1);
  coding::BitString bits = advice::compute_advice(g, repo, p).to_bits();
  for (auto _ : state) {
    advice::MinTimeAdvice back = advice::MinTimeAdvice::from_bits(bits);
    benchmark::DoNotOptimize(back.phi);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits.size() / 8));
}
BENCHMARK(BM_AdviceDecode);

void BM_ConcatCodec(benchmark::State& state) {
  std::vector<coding::BitString> parts;
  for (std::uint64_t i = 0; i < 256; ++i) parts.push_back(coding::bin(i * 37));
  for (auto _ : state) {
    coding::BitString enc = coding::concat(parts);
    benchmark::DoNotOptimize(coding::decode(enc).size());
  }
}
BENCHMARK(BM_ConcatCodec);

}  // namespace
