// M1a — microbenchmarks for the view substrate: refinement throughput,
// interning, canonical comparison, truncation, and full COM simulation
// rounds. These quantify the cost model behind every experiment table.

#include <benchmark/benchmark.h>

#include <memory>

#include "portgraph/builders.hpp"
#include "sim/engine.hpp"
#include "sim/full_info.hpp"
#include "views/profile.hpp"

namespace {

using namespace anole;

void BM_ProfileRefinement(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  portgraph::PortGraph g = portgraph::random_connected(n, n, 7);
  for (auto _ : state) {
    views::ViewRepo repo;
    views::ViewProfile p = views::compute_profile(g, repo);
    benchmark::DoNotOptimize(p.election_index);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ProfileRefinement)->Arg(32)->Arg(128)->Arg(512)->Arg(2048);

void BM_ViewIntern(benchmark::State& state) {
  views::ViewRepo repo;
  views::ViewId leaf = repo.leaf(3);
  std::vector<views::ChildRef> kids{{0, leaf}, {1, leaf}, {2, leaf}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(repo.intern(kids));
  }
}
BENCHMARK(BM_ViewIntern);

void BM_ViewCompare(benchmark::State& state) {
  portgraph::PortGraph g =
      portgraph::random_connected(64, 64, 3);
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo, 6);
  views::ViewId a = p.view(6, 0);
  views::ViewId b = p.view(6, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(repo.compare(a, b));
  }
}
BENCHMARK(BM_ViewCompare);

void BM_ViewTruncate(benchmark::State& state) {
  portgraph::PortGraph g = portgraph::random_connected(64, 64, 3);
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(repo.truncate(p.view(8, 0), 4));
  }
}
BENCHMARK(BM_ViewTruncate);

// One full COM round across the whole network, as the engine executes it.
class IdleProgram final : public sim::FullInfoProgram {
 public:
  [[nodiscard]] bool has_output() const override { return false; }
  [[nodiscard]] std::vector<int> output() const override { return {}; }

 protected:
  void on_view(int) override {}
};

void BM_ComRounds(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  portgraph::PortGraph g = portgraph::random_connected(n, n, 11);
  int rounds = static_cast<int>(state.range(1));
  for (auto _ : state) {
    views::ViewRepo repo;
    std::vector<std::unique_ptr<sim::NodeProgram>> programs;
    for (std::size_t v = 0; v < n; ++v)
      programs.push_back(std::make_unique<IdleProgram>());
    sim::Engine engine(g, repo);
    sim::RunMetrics m = engine.run(programs, rounds);
    benchmark::DoNotOptimize(m.rounds);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rounds * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ComRounds)->Args({64, 8})->Args({256, 8})->Args({256, 16});

void BM_SerializedSize(benchmark::State& state) {
  portgraph::PortGraph g = portgraph::random_connected(128, 128, 5);
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(repo.serialized_size_bits(p.view(8, 0)));
  }
}
BENCHMARK(BM_SerializedSize);

}  // namespace
