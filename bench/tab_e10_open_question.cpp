// E10 — the paper's concluding open question (Section 5).
//
// "The intriguing open question left by our results is how the minimum
// size of advice behaves in the range of election time strictly between
// phi and D + phi" — large enough to elect with a map, too small for all
// nodes to see every view difference.
//
// This table instruments the question with the best *known* upper bounds:
// for each intermediate time tau we run the depth-tau generalization of
// Elect (Algorithm 5/6 labeling views at depth tau), whose advice stays
// Theta(n log n) across the whole open range, and at tau = D + phi the
// Remark algorithm, where the advice collapses to O(log D + log phi).
// The open question is precisely whether anything can beat the first row
// group before the last row. Workload: a long-diameter necklace so the
// open range is wide.

#include <iostream>
#include <memory>

#include "advice/min_time.hpp"
#include "election/baselines.hpp"
#include "election/elect_program.hpp"
#include "election/harness.hpp"
#include "election/verify.hpp"
#include "families/necklace.hpp"
#include "util/table.hpp"
#include "views/profile.hpp"

using namespace anole;

int main() {
  families::Necklace nk = families::necklace_member(7, 3, 2);
  const portgraph::PortGraph& g = nk.graph;
  views::ViewRepo probe;
  views::ViewProfile profile = views::compute_profile(g, probe);
  int phi = profile.election_index;
  int diameter = g.diameter();

  util::Table table({"time tau", "algorithm", "rounds", "advice bits",
                     "elected"});

  for (int tau = phi; tau <= diameter + phi;
       tau += std::max(1, (diameter + phi - phi) / 6)) {
    views::ViewRepo repo;
    views::ViewProfile p = views::compute_profile(g, repo, 1);
    advice::MinTimeAdvice adv = advice::compute_advice(g, repo, p, tau);
    coding::BitString bits = adv.to_bits();
    auto decoded = std::make_shared<const advice::MinTimeAdvice>(
        advice::MinTimeAdvice::from_bits(bits));
    std::vector<std::unique_ptr<sim::NodeProgram>> programs;
    for (std::size_t v = 0; v < g.n(); ++v)
      programs.push_back(std::make_unique<election::ElectProgram>(decoded));
    sim::Engine engine(g, repo);
    sim::RunMetrics metrics = engine.run(programs, tau + 1);
    bool ok = !metrics.timed_out &&
              election::verify_election(g, metrics.outputs).ok;
    table.add_row({util::Table::num(tau), "Elect@depth tau",
                   util::Table::num(metrics.rounds),
                   util::Table::num(bits.size()), ok ? "yes" : "NO"});
  }

  {
    election::ElectionRun run = election::run_remark(g);
    table.add_row({util::Table::num(diameter + phi), "Remark(D,phi)",
                   util::Table::num(run.metrics.rounds),
                   util::Table::num(run.advice_bits),
                   run.ok() ? "yes" : "NO"});
  }

  table.print(
      std::cout,
      "E10 / Section 5 open question — necklace(k=7, phi=3): n = " +
          std::to_string(g.n()) + ", D = " + std::to_string(diameter) +
          ", phi = " + std::to_string(phi) +
          ". Between time phi and D + phi the best known advice stays "
          "Theta(n log n); at D + phi it collapses to O(log D + log phi). "
          "Whether the collapse can start earlier is open.");
  return 0;
}
