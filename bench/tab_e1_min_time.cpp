// E1 — Theorem 3.1 (upper bound for election in minimum time).
//
// Paper claim: for any n-node graph with election index phi, ComputeAdvice
// emits O(n log n) bits and Elect performs leader election in time exactly
// phi using that advice.
//
// This table regenerates the claim empirically: for growing n across three
// graph families we report the measured advice size, the normalized ratio
// bits/(n log2 n) (which must stay bounded as n grows), the rounds used
// (must equal phi), and the verifier verdict.

#include <cmath>
#include <iostream>

#include "election/harness.hpp"
#include "families/necklace.hpp"
#include "families/ring_of_cliques.hpp"
#include "portgraph/builders.hpp"
#include "util/table.hpp"

using namespace anole;

namespace {

void report(util::Table& table, const std::string& family,
            const portgraph::PortGraph& g) {
  election::ElectionRun run = election::run_min_time(g);
  double n = static_cast<double>(g.n());
  double norm = static_cast<double>(run.advice_bits) / (n * std::log2(n));
  table.add_row({family, util::Table::num(g.n()), util::Table::num(run.phi),
                 util::Table::num(run.metrics.rounds),
                 util::Table::num(run.advice_bits), util::Table::num(norm, 2),
                 run.ok() ? "yes" : ("NO: " + run.verdict.error)});
}

}  // namespace

int main() {
  util::Table table({"family", "n", "phi", "rounds", "advice bits",
                     "bits/(n log n)", "elected"});

  for (std::size_t n : {16, 32, 64, 128, 256}) {
    report(table, "random(m=1.5n)",
           portgraph::random_connected(n, n / 2, 42 + n));
  }
  for (int k : {4, 6, 8, 12}) {
    report(table, "ring-of-cliques G_k",
           families::g_family_member(k, 7).graph);
  }
  for (int phi : {2, 3, 4, 6}) {
    report(table, "necklace phi=" + std::to_string(phi),
           families::necklace_member(5, phi, 1).graph);
  }

  table.print(std::cout,
              "E1 / Theorem 3.1 — Elect: advice O(n log n), time = phi "
              "(paper: upper bound O(n log n); measured ratio must stay "
              "bounded and rounds must equal phi)");
  return 0;
}
