// E2 — Theorem 3.2 / Figure 1 (lower bound for election index 1).
//
// Paper claim: there are n_k-node graphs (the family G_k of clique-ring
// permutations, Fig. 1) with election index 1 such that election in time 1
// requires advice of size Omega(n log log n). The proof rests on:
//   (a) Claim 3.8 — every member of G_k has election index exactly 1;
//   (b) the Observation — corresponding clique-attachment nodes in any two
//       members have equal B^1, so a time-1 algorithm with equal advice
//       outputs identical port sequences at them (Claim 3.9: all (k-1)!
//       members need distinct advice);
//   (c) |G_k| = (k-1)!  =>  >= log2((k-1)!) bits for some member, and
//       log2((k-1)!) = Theta(n_k log log n_k).
//
// The table verifies (a) and (b) on sampled members and reports the (c)
// curve: log2((k-1)!) vs n_k log2 log2 n_k. The last column cross-feeds
// the advice of one member into our own Elect algorithm running on a
// different member and reports the failure — a live demonstration that
// shared advice breaks time-1 election.

#include <cmath>
#include <iostream>
#include <memory>

#include "advice/min_time.hpp"
#include "election/elect_program.hpp"
#include "election/verify.hpp"
#include "families/ring_of_cliques.hpp"
#include "util/table.hpp"
#include "views/profile.hpp"

using namespace anole;

namespace {

double log2_factorial(int m) {
  double s = 0;
  for (int i = 2; i <= m; ++i) s += std::log2(static_cast<double>(i));
  return s;
}

// Runs Elect on `victim` with advice computed for `source`; returns true
// iff the (mis-advised) run still elected a single leader.
bool cross_feed_succeeds(const portgraph::PortGraph& source,
                         const portgraph::PortGraph& victim) {
  views::ViewRepo repo;
  views::ViewProfile sp = views::compute_profile(source, repo, 1);
  auto adv = std::make_shared<const advice::MinTimeAdvice>(
      advice::compute_advice(source, repo, sp));
  std::vector<std::unique_ptr<sim::NodeProgram>> programs;
  for (std::size_t v = 0; v < victim.n(); ++v)
    programs.push_back(std::make_unique<election::ElectProgram>(adv));
  sim::Engine engine(victim, repo);
  try {
    sim::RunMetrics metrics =
        engine.run(programs, static_cast<int>(adv->phi) + 1);
    if (metrics.timed_out) return false;
    return election::verify_election(victim, metrics.outputs).ok;
  } catch (const std::logic_error&) {
    return false;  // advice not even decodable against the victim's views
  }
}

}  // namespace

int main() {
  util::Table table({"k", "n_k", "phi(all)", "B1 obs", "|G_k| bits lb",
                     "n loglog n", "ratio", "cross-feed"});

  for (int k : {5, 6, 8, 12, 16, 24, 32}) {
    families::RingOfCliques a = families::g_family_member(k, 1);
    families::RingOfCliques b = families::g_family_member(k, 2);

    // (a) Claim 3.8 on two sampled members.
    views::ViewRepo repo;
    views::ViewProfile pa = views::compute_profile(a.graph, repo);
    views::ViewProfile pb = views::compute_profile(b.graph, repo);
    bool phi_one = pa.feasible && pb.feasible && pa.election_index == 1 &&
                   pb.election_index == 1;

    // (b) The observation: same clique -> same B^1 at its joint across
    // members (shared repo makes ids comparable).
    bool obs = true;
    for (int t = 0; t < k && obs; ++t) {
      int pos_a = -1, pos_b = -1;
      for (int i = 0; i < k; ++i) {
        if (a.assignment[static_cast<std::size_t>(i)] ==
            static_cast<std::uint64_t>(t))
          pos_a = i;
        if (b.assignment[static_cast<std::size_t>(i)] ==
            static_cast<std::uint64_t>(t))
          pos_b = i;
      }
      obs = pa.view(1, a.joints[static_cast<std::size_t>(pos_a)]) ==
            pb.view(1, b.joints[static_cast<std::size_t>(pos_b)]);
    }

    // (c) The bound curve.
    double n_k = static_cast<double>(a.graph.n());
    double lb_bits = log2_factorial(k - 1);
    double scale = n_k * std::log2(std::log2(n_k));

    bool cross = cross_feed_succeeds(a.graph, b.graph);

    table.add_row({util::Table::num(k), util::Table::num(a.graph.n()),
                   phi_one ? "1" : "VIOLATED", obs ? "holds" : "VIOLATED",
                   util::Table::num(lb_bits, 1), util::Table::num(scale, 1),
                   util::Table::num(lb_bits / scale, 3),
                   cross ? "SURVIVED (unexpected)" : "breaks (expected)"});
  }

  table.print(
      std::cout,
      "E2 / Theorem 3.2, Fig. 1 — family G_k (phi = 1): members need "
      "distinct advice; advice lower bound log2((k-1)!) = "
      "Theta(n log log n). 'ratio' must stay bounded away from 0; "
      "cross-feeding advice between members must break election.");
  return 0;
}
