// E4 — Theorem 4.1 (upper bounds for election in large time).
//
// Paper claim: for any graph of diameter D and election index phi and any
// integer constant c > 1,
//   Election1 elects in <= D + phi + c   with O(log phi)        advice bits,
//   Election2 elects in <= D + c*phi     with O(log log phi)    advice bits,
//   Election3 elects in <= D + phi^c     with O(log log log phi) advice bits,
//   Election4 elects in <= D + c^phi     with O(log(log* phi))  advice bits.
//
// For each variant the table reports measured rounds against the exact
// bound and the measured advice size against the paper's Theta expression.
// Workloads: necklaces with prescribed phi (2..6) and a random graph.
// (Variant 3's bound needs phi >= 2 — see the remark in generic.hpp.)

#include <cmath>
#include <iostream>

#include "election/harness.hpp"
#include "families/necklace.hpp"
#include "portgraph/builders.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

using namespace anole;

namespace {

const char* variant_name(election::LargeTimeVariant v) {
  switch (v) {
    case election::LargeTimeVariant::kPhiPlusC:
      return "E1: D+phi+c";
    case election::LargeTimeVariant::kCTimesPhi:
      return "E2: D+c*phi";
    case election::LargeTimeVariant::kPhiPowC:
      return "E3: D+phi^c";
    case election::LargeTimeVariant::kCPowPhi:
      return "E4: D+c^phi";
  }
  return "?";
}

double advice_scale(election::LargeTimeVariant v, double phi) {
  double l = std::max(1.0, std::log2(phi));
  switch (v) {
    case election::LargeTimeVariant::kPhiPlusC:
      return l;
    case election::LargeTimeVariant::kCTimesPhi:
      return std::max(1.0, std::log2(l));
    case election::LargeTimeVariant::kPhiPowC:
      return std::max(1.0, std::log2(std::max(1.0, std::log2(l))));
    case election::LargeTimeVariant::kCPowPhi: {
      return std::max(1.0, std::log2(1.0 + util::log_star(
                                               static_cast<std::uint64_t>(phi))));
    }
  }
  return 1;
}

}  // namespace

int main() {
  util::Table table({"graph", "c", "n", "D", "phi", "variant", "rounds",
                     "bound", "within", "advice bits", "Theta scale"});

  std::vector<std::pair<std::string, portgraph::PortGraph>> graphs;
  for (int phi : {2, 3, 4, 6})
    graphs.emplace_back("necklace(phi=" + std::to_string(phi) + ")",
                        families::necklace_member(5, phi, 1).graph);
  graphs.emplace_back("random(24,16)", portgraph::random_connected(24, 16, 3));

  for (std::uint64_t c : {std::uint64_t{2}, std::uint64_t{3}})
  for (const auto& [name, g] : graphs) {
    for (election::LargeTimeVariant v :
         {election::LargeTimeVariant::kPhiPlusC,
          election::LargeTimeVariant::kCTimesPhi,
          election::LargeTimeVariant::kPhiPowC,
          election::LargeTimeVariant::kCPowPhi}) {
      election::ElectionRun run = election::run_large_time(g, v, c);
      std::uint64_t bound = election::large_time_bound(
          v, static_cast<std::uint64_t>(run.diameter),
          static_cast<std::uint64_t>(run.phi), c);
      bool within = run.ok() &&
                    static_cast<std::uint64_t>(run.metrics.rounds) <= bound;
      // Variant 3's Theorem 4.1 budget assumes phi >= 2.
      bool exempt = (v == election::LargeTimeVariant::kPhiPowC && run.phi < 2);
      table.add_row(
          {name, util::Table::num(c), util::Table::num(g.n()),
           util::Table::num(run.diameter),
           util::Table::num(run.phi), variant_name(v),
           util::Table::num(run.metrics.rounds), util::Table::num(bound),
           within ? "yes" : (exempt ? "n/a (phi<2)" : "VIOLATED"),
           util::Table::num(run.advice_bits),
           util::Table::num(advice_scale(v, static_cast<double>(run.phi)),
                            2)});
    }
  }

  table.print(
      std::cout,
      "E4 / Theorem 4.1 — Election1..4 (c in {2,3}): rounds must stay within "
      "the exact bound; advice bits track the Theta scale column "
      "(log phi, log log phi, log log log phi, log log* phi).");
  return 0;
}
