// E6 — Proposition 4.1 / Figure 9 (constant advice never suffices).
//
// Paper claim: no algorithm using advice of constant size performs leader
// election in all feasible graphs, for any allocated time. The proof takes
// c graphs H_1..H_c exhausting the c advice values, builds the composite
// hairy ring G from their gamma-stretches (Fig. 9), and shows that the two
// foci of the stretch of H_{j0} (the graph whose advice G shares) have the
// same B^T as the cut node in H_{j0} — so they output identical short
// paths pointing at two different "leaders".
//
// The table verifies the view equalities (foci vs original cut node, and
// the two foci against each other) and then demonstrates the failure live:
// it runs our Elect algorithm on G with the advice computed for each H_j
// and shows that every one of the c advice strings fails on G, while G's
// own (non-constant!) advice succeeds.

#include <iostream>
#include <memory>

#include "advice/min_time.hpp"
#include "election/elect_program.hpp"
#include "election/harness.hpp"
#include "families/hairy.hpp"
#include "util/table.hpp"
#include "views/profile.hpp"

using namespace anole;

namespace {

bool elect_with_advice(const portgraph::PortGraph& victim,
                       const portgraph::PortGraph& source) {
  views::ViewRepo repo;
  views::ViewProfile sp = views::compute_profile(source, repo, 1);
  auto adv = std::make_shared<const advice::MinTimeAdvice>(
      advice::compute_advice(source, repo, sp));
  std::vector<std::unique_ptr<sim::NodeProgram>> programs;
  for (std::size_t v = 0; v < victim.n(); ++v)
    programs.push_back(std::make_unique<election::ElectProgram>(adv));
  sim::Engine engine(victim, repo);
  try {
    sim::RunMetrics metrics =
        engine.run(programs, static_cast<int>(adv->phi) + 1);
    return !metrics.timed_out &&
           election::verify_election(victim, metrics.outputs).ok;
  } catch (const std::logic_error&) {
    return false;
  }
}

}  // namespace

int main() {
  // Three hairy rings playing the role of H_1..H_c (c = 3 advice values).
  std::vector<families::HairyRing> rings;
  rings.push_back(families::hairy_ring({1, 0, 2}));
  rings.push_back(families::hairy_ring({0, 3, 1}));
  rings.push_back(families::hairy_ring({2, 1, 0, 4}));
  const int gamma = 12;
  families::PropositionGraph g = families::proposition_graph(rings, gamma);

  {
    util::Table table({"H_j", "n(H_j)", "focus A = z_j", "focus B = z_j",
                       "A = B", "depth checked"});
    views::ViewRepo repo;
    const int t = 4;
    views::ViewProfile pg = views::compute_profile(g.graph, repo, t);
    for (std::size_t j = 0; j < rings.size(); ++j) {
      views::ViewProfile pj = views::compute_profile(rings[j].graph, repo, t);
      portgraph::NodeId a = g.layouts[j].ring_of_copy[gamma / 2][0];
      portgraph::NodeId b = g.layouts[j].ring_of_copy[gamma / 2 + 1][0];
      bool ea = pg.view(t, a) == pj.view(t, rings[j].ring[0]);
      bool eb = pg.view(t, b) == pj.view(t, rings[j].ring[0]);
      table.add_row({"H_" + std::to_string(j + 1),
                     util::Table::num(rings[j].graph.n()),
                     ea ? "holds" : "VIOLATED", eb ? "holds" : "VIOLATED",
                     pg.view(t, a) == pg.view(t, b) ? "holds" : "VIOLATED",
                     util::Table::num(t)});
    }
    table.print(
        std::cout,
        "E6.A / Prop 4.1, Fig. 9 — composite graph G (n = " +
            std::to_string(g.graph.n()) +
            "): the stretch foci are indistinguishable from the original "
            "cut node (and from each other) at the checked depth, so a "
            "time-bounded algorithm with H_j's advice must output the same "
            "short path at both foci — two different leaders");
  }

  {
    util::Table table({"advice source", "advice works on G?", "expected"});
    for (std::size_t j = 0; j < rings.size(); ++j) {
      bool ok = elect_with_advice(g.graph, rings[j].graph);
      table.add_row({"H_" + std::to_string(j + 1),
                     ok ? "SUCCEEDS (unexpected)" : "fails",
                     "fails (Prop 4.1)"});
    }
    election::ElectionRun own = election::run_min_time(g.graph);
    table.add_row({"G itself (" + std::to_string(own.advice_bits) + " bits)",
                   own.ok() ? "succeeds" : "FAILS (unexpected)",
                   "succeeds"});
    table.print(std::cout,
                "E6.B / Prop 4.1 — live demonstration: each of the c "
                "constant-budget advice strings fails on G; only G's own "
                "advice (size growing with G) elects correctly");
  }
  return 0;
}
