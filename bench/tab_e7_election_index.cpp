// E7 — Propositions 2.1 and 2.2 (the election index).
//
// Prop 2.1: the election index equals the smallest depth at which all
// augmented truncated views are distinct (this is what compute_profile
// measures; the map baseline elects in exactly that many rounds).
// Prop 2.2: phi = O(D log(n/D)) for every feasible n-node graph of
// diameter D.
//
// The table scans graph families and reports n, D, phi, the normalized
// ratio phi / (D * max(1, log2(n/D))) — which Prop 2.2 bounds by a
// constant — and the map-baseline round count (must equal phi).

#include <cmath>
#include <iostream>

#include "election/harness.hpp"
#include "families/necklace.hpp"
#include "families/ring_of_cliques.hpp"
#include "portgraph/builders.hpp"
#include "util/table.hpp"
#include "views/profile.hpp"

using namespace anole;

namespace {

void report(util::Table& table, const std::string& name,
            const portgraph::PortGraph& g, bool run_map_check) {
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo);
  if (!p.feasible) {
    table.add_row({name, util::Table::num(g.n()), "-", "infeasible", "-",
                   "-"});
    return;
  }
  int d = g.diameter();
  double ratio = static_cast<double>(p.election_index) /
                 (static_cast<double>(d) *
                  std::max(1.0, std::log2(static_cast<double>(g.n()) / d)));
  std::string map_rounds = "-";
  if (run_map_check) {
    election::ElectionRun run = election::run_map(g);
    map_rounds = run.ok() && run.metrics.rounds == run.phi
                     ? util::Table::num(run.metrics.rounds)
                     : "VIOLATED";
  }
  table.add_row({name, util::Table::num(g.n()), util::Table::num(d),
                 util::Table::num(p.election_index),
                 util::Table::num(ratio, 3), map_rounds});
}

}  // namespace

int main() {
  util::Table table(
      {"graph", "n", "D", "phi", "phi/(D log(n/D))", "map rounds"});

  for (std::size_t n : {16, 32, 64, 128}) {
    report(table, "random sparse", portgraph::random_connected(n, n / 4, n),
           n <= 64);
    report(table, "random dense", portgraph::random_connected(n, 2 * n, n),
           n <= 64);
  }
  report(table, "path(33)", portgraph::path(33), false);
  report(table, "grid(5x7)", portgraph::grid(5, 7), true);
  report(table, "binary_tree(31)", portgraph::binary_tree(31), true);
  for (int phi : {2, 4, 8})
    report(table, "necklace(phi=" + std::to_string(phi) + ")",
           families::necklace_member(5, phi, 1).graph, false);
  report(table, "G_k(k=8)", families::g_family_member(8, 3).graph, false);
  report(table, "ring(16) [symmetric]", portgraph::ring(16), false);
  report(table, "hypercube(4) [symmetric]", portgraph::hypercube(4), false);

  table.print(
      std::cout,
      "E7 / Props 2.1-2.2 — election index across families: the ratio "
      "column must stay bounded (phi = O(D log(n/D))); the map baseline "
      "elects in exactly phi rounds (Prop 2.1); symmetric graphs are "
      "infeasible");
  return 0;
}
