// E9 — the advice-vs-time frontier (Section 1 "Our results" + the remark
// after Theorem 4.1), on a single graph.
//
// Paper narrative: the minimum advice for election drops in exponential
// jumps as the allocated time grows —
//   time phi        : ~n log n bits      (Theorem 3.1, near-tight)
//   time D + phi    : O(log D + log phi) (remark after Theorem 4.1)
//   time D + phi + c: Theta(log phi)
//   time D + c*phi  : Theta(log log phi)
//   time D + phi^c  : Theta(log log log phi)
//   time D + c^phi  : Theta(log(log* phi))
//   time D + n + 1  : O(log n)           (size-only baseline)
//   map known       : Theta(m log n) advice, time phi (naive baseline)
//
// Each row runs one algorithm on the same necklace and reports measured
// rounds and advice bits — the frontier the paper's Figure-free evaluation
// describes in prose.

#include <iostream>

#include "election/harness.hpp"
#include "families/necklace.hpp"
#include "util/table.hpp"
#include "views/profile.hpp"

using namespace anole;

int main() {
  // A necklace with phi = 4: large enough to see the advice hierarchy.
  families::Necklace nk = families::necklace_member(6, 4, 3);
  const portgraph::PortGraph& g = nk.graph;

  util::Table table({"algorithm", "time model", "rounds", "advice bits",
                     "leader", "ok"});
  auto add = [&table](const std::string& name, const std::string& model,
                      const election::ElectionRun& run) {
    table.add_row({name, model, util::Table::num(run.metrics.rounds),
                   util::Table::num(run.advice_bits),
                   util::Table::num(static_cast<long long>(run.verdict.leader)),
                   run.ok() ? "yes" : "NO"});
  };

  add("Elect (Thm 3.1)", "phi", election::run_min_time(g));
  add("Map baseline", "phi", election::run_map(g));
  add("Remark(D,phi)", "D+phi", election::run_remark(g));
  add("Election1", "D+phi+c",
      election::run_large_time(g, election::LargeTimeVariant::kPhiPlusC, 2));
  add("Election2", "D+c*phi",
      election::run_large_time(g, election::LargeTimeVariant::kCTimesPhi, 2));
  add("Election3", "D+phi^c",
      election::run_large_time(g, election::LargeTimeVariant::kPhiPowC, 2));
  add("Election4", "D+c^phi",
      election::run_large_time(g, election::LargeTimeVariant::kCPowPhi, 2));
  add("SizeOnly(n)", "D+n+1", election::run_size_only(g));

  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo);
  table.print(std::cout,
              "E9 — advice/time frontier on necklace(k=6, phi=4): n = " +
                  std::to_string(g.n()) + ", D = " +
                  std::to_string(g.diameter()) + ", phi = " +
                  std::to_string(p.election_index) +
                  ". Advice shrinks in the paper's exponential jumps as "
                  "allocated time grows; every row must elect the leader.");
  return 0;
}
