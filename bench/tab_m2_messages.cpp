// M2 — message-size accounting for the full-information protocol.
//
// The LOCAL model allows arbitrary message sizes, and COM sends "the whole
// current view" every round. A literal view *tree* grows like Delta^r; our
// hash-consed DAG representation (DESIGN.md) keeps the same information in
// O(n * r) records. This table measures, per round, the serialized DAG
// message size against the flat tree encoding a naive implementation would
// ship — quantifying why the substrate is feasible at all.

#include <iostream>
#include <memory>

#include "advice/naive.hpp"
#include "portgraph/builders.hpp"
#include "util/table.hpp"
#include "views/profile.hpp"

using namespace anole;

int main() {
  util::Table table({"graph", "round r", "DAG records", "DAG bits",
                     "flat tree bits", "tree/DAG"});

  std::vector<std::pair<std::string, portgraph::PortGraph>> graphs;
  graphs.emplace_back("random(32, deg~4)",
                      portgraph::random_connected(32, 32, 3));
  graphs.emplace_back("random(64, deg~8)",
                      portgraph::random_connected(64, 192, 4));
  graphs.emplace_back("grid(6x6)", portgraph::grid(6, 6));

  constexpr std::uint64_t kCap = UINT64_C(1) << 62;
  for (const auto& [name, g] : graphs) {
    views::ViewRepo repo;
    views::ViewProfile p = views::compute_profile(g, repo, 12);
    for (int r : {1, 2, 4, 8, 12}) {
      views::ViewId view = p.view(r, 0);
      std::size_t records = repo.dag_records(view);
      std::size_t dag_bits = repo.serialized_size_bits(view);
      std::uint64_t tree_bits = advice::naive_tree_code_bits(repo, view);
      table.add_row(
          {name, util::Table::num(r), util::Table::num(records),
           util::Table::num(dag_bits),
           tree_bits >= kCap ? ">= 2^62" : util::Table::num(tree_bits),
           tree_bits >= kCap
               ? "astronomical"
               : util::Table::num(
                     static_cast<double>(tree_bits) / dag_bits, 1)});
    }
  }

  table.print(
      std::cout,
      "M2 — COM message sizes per round: the hash-consed DAG stays "
      "polynomial (<= n records per level) while the literal view tree "
      "grows like Delta^r. Equal information content, verified by the "
      "sim tests (B^r reproduced exactly).");
  return 0;
}
