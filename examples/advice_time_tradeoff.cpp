// Advice/time trade-off explorer: runs the whole algorithm portfolio of
// the paper on one graph (user-selectable size and seed) and prints the
// measured frontier — how the advice requirement collapses from ~n log n
// bits at time phi down to a handful of bits once the time budget exceeds
// the diameter.
//
// This example doubles as the programmatic tour of the runner subsystem:
// instead of registering a scenario it builds one on the fly (one cell per
// algorithm, sharing nothing), executes the grid in parallel on an
// ExperimentRunner, and renders the outcome through a ResultSink — the
// same three steps every registered paper scenario goes through.
//
// Usage: advice_time_tradeoff [n] [extra_edges] [seed] [threads]

#include <cstdlib>
#include <iostream>

#include "portgraph/builders.hpp"
#include "runner/portfolio.hpp"
#include "runner/runner.hpp"
#include "runner/sinks.hpp"
#include "views/profile.hpp"

int main(int argc, char** argv) {
  using namespace anole;

  std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40;
  std::size_t extra = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : n / 2;
  std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
  std::size_t threads = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 0;

  portgraph::PortGraph g = portgraph::random_connected(n, extra, seed);
  views::ViewRepo repo;
  views::ViewProfile profile = views::compute_profile(g, repo);
  if (!profile.feasible) {
    std::cout << "This graph is infeasible (symmetric views): no algorithm "
                 "can elect a leader, with any advice. Try another seed.\n";
    return 0;
  }

  // Build the scenario on the fly: one independent cell per algorithm.
  runner::Scenario scenario;
  scenario.name = "tradeoff";
  scenario.reference = "Section 1 results + remark after Theorem 4.1";
  scenario.tables.push_back(runner::TableSpec{
      "frontier",
      "advice/time frontier on random graph: n = " + std::to_string(n) +
          ", D = " + std::to_string(g.diameter()) +
          ", phi = " + std::to_string(profile.election_index),
      {"algorithm", "time model", "rounds", "advice bits"}});
  // Cells execute in parallel and must not share mutable state, so each
  // builds its own ElectionContext (one profile + diameter per cell).
  for (const runner::PortfolioAlgorithm& algo : runner::election_portfolio(2))
    scenario.add_cell(algo.name, 0, [algo, g] {
      election::ElectionRun run = algo.run_on(g);
      return std::vector<runner::Row>{runner::Row{
          algo.name, algo.model,
          run.ok() ? runner::Value(run.metrics.rounds)
                   : runner::Value("FAILED"),
          run.advice_bits}};
    });

  runner::ScenarioOutcome outcome =
      runner::ExperimentRunner(runner::RunOptions{threads}).run(scenario);
  runner::TextSink().emit(outcome, std::cout);

  std::cout << "Reading guide: the first two rows show the price of "
               "electing in minimum time phi; once the time budget exceeds "
               "D the advice collapses to O(log phi) bits and below — the "
               "exponential hierarchy of Theorem 4.1.\n";
  return outcome.failures() == 0 ? 0 : 1;
}
