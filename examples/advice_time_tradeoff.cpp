// Advice/time trade-off explorer: runs the whole algorithm portfolio of
// the paper on one graph (user-selectable size and seed) and prints the
// measured frontier — how the advice requirement collapses from ~n log n
// bits at time phi down to a handful of bits once the time budget exceeds
// the diameter.
//
// Usage: advice_time_tradeoff [n] [extra_edges] [seed]

#include <cstdlib>
#include <iostream>

#include "election/harness.hpp"
#include "portgraph/builders.hpp"
#include "util/table.hpp"
#include "views/profile.hpp"

int main(int argc, char** argv) {
  using namespace anole;

  std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40;
  std::size_t extra = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : n / 2;
  std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  portgraph::PortGraph g = portgraph::random_connected(n, extra, seed);
  views::ViewRepo repo;
  views::ViewProfile profile = views::compute_profile(g, repo);
  if (!profile.feasible) {
    std::cout << "This graph is infeasible (symmetric views): no algorithm "
                 "can elect a leader, with any advice. Try another seed.\n";
    return 0;
  }

  util::Table table({"algorithm", "time model", "rounds", "advice bits"});
  auto add = [&table](const std::string& name, const std::string& model,
                      const election::ElectionRun& run) {
    table.add_row({name, model,
                   run.ok() ? util::Table::num(run.metrics.rounds)
                            : "FAILED",
                   util::Table::num(run.advice_bits)});
  };

  add("Elect (min time)", "phi", election::run_min_time(g));
  add("Map baseline", "phi", election::run_map(g));
  add("Remark (D,phi)", "D+phi", election::run_remark(g));
  add("Election1", "D+phi+c",
      election::run_large_time(g, election::LargeTimeVariant::kPhiPlusC, 2));
  add("Election2", "D+c*phi",
      election::run_large_time(g, election::LargeTimeVariant::kCTimesPhi, 2));
  add("Election3", "D+phi^c",
      election::run_large_time(g, election::LargeTimeVariant::kPhiPowC, 2));
  add("Election4", "D+c^phi",
      election::run_large_time(g, election::LargeTimeVariant::kCPowPhi, 2));
  add("SizeOnly", "D+n+1", election::run_size_only(g));

  table.print(std::cout,
              "advice/time frontier on random graph: n = " +
                  std::to_string(n) + ", D = " +
                  std::to_string(g.diameter()) + ", phi = " +
                  std::to_string(profile.election_index));
  std::cout << "Reading guide: the first two rows show the price of "
               "electing in minimum time phi; once the time budget exceeds "
               "D the advice collapses to O(log phi) bits and below — the "
               "exponential hierarchy of Theorem 4.1.\n";
  return 0;
}
