// Asynchronous deployment: the paper's Section 1 remark says the
// synchronous LOCAL process "can be simulated in an asynchronous network
// using time-stamps". This example runs the same minimum-time election
// protocol under ten different adversarial message schedules and shows
// that every schedule produces bit-identical outputs — the synchronizer
// makes the algorithm deployment-ready on networks with arbitrary delays.

#include <iostream>
#include <memory>

#include "advice/min_time.hpp"
#include "election/elect_program.hpp"
#include "election/verify.hpp"
#include "portgraph/builders.hpp"
#include "sim/async.hpp"
#include "views/profile.hpp"

int main() {
  using namespace anole;

  portgraph::PortGraph g = portgraph::random_connected(20, 14, 99);
  views::ViewRepo repo;
  views::ViewProfile profile = views::compute_profile(g, repo, 1);
  auto adv = std::make_shared<const advice::MinTimeAdvice>(
      advice::compute_advice(g, repo, profile));
  std::cout << "network: n = " << g.n() << ", phi = "
            << profile.election_index << "\n\n";

  std::vector<std::vector<int>> reference;
  for (std::uint64_t schedule = 1; schedule <= 10; ++schedule) {
    std::vector<std::unique_ptr<sim::NodeProgram>> programs;
    for (std::size_t v = 0; v < g.n(); ++v)
      programs.push_back(std::make_unique<election::ElectProgram>(adv));
    sim::AsyncEngine engine(g, repo);
    sim::AsyncMetrics metrics = engine.run(programs, 50, schedule);
    if (metrics.timed_out) {
      std::cout << "schedule " << schedule << ": TIMED OUT after "
                << metrics.deliveries << " deliveries (max round "
                << metrics.max_round << ")\n";
      return 1;
    }
    election::VerifyResult verdict =
        election::verify_election(g, metrics.outputs);
    bool identical = reference.empty() || metrics.outputs == reference;
    if (reference.empty()) reference = metrics.outputs;
    std::cout << "schedule " << schedule << ": " << metrics.deliveries
              << " deliveries, leader " << verdict.leader << ", outputs "
              << (identical ? "identical" : "DIFFER (bug!)") << '\n';
    if (!verdict.ok || !identical) return 1;
  }
  std::cout << "\nAll adversarial schedules agree: the time-stamp "
               "synchronizer reproduces the synchronous execution "
               "exactly.\n";
  return 0;
}
