// Quickstart: elect a leader in an anonymous network in minimum time.
//
// Builds a small random port-numbered graph, lets the oracle compute the
// Theorem 3.1 advice, runs Algorithm Elect on the LOCAL-model simulator,
// and verifies that every node output a simple path to one common leader.

#include <cstdint>
#include <iostream>

#include "election/harness.hpp"
#include "portgraph/builders.hpp"
#include "portgraph/io.hpp"

int main() {
  using namespace anole;

  // A connected random graph on 24 nodes (spanning tree + 14 extra edges).
  portgraph::PortGraph g = portgraph::random_connected(24, 14, /*seed=*/2017);
  std::cout << "Network (anonymous, port-numbered):\n"
            << portgraph::to_text(g) << '\n';

  election::ElectionRun run = election::run_min_time(g);
  if (!run.ok()) {
    std::cerr << "election failed: " << run.verdict.error << '\n';
    return 1;
  }

  std::cout << "election index phi      : " << run.phi << '\n';
  std::cout << "rounds used             : " << run.metrics.rounds
            << " (minimum possible = phi)\n";
  std::cout << "advice size             : " << run.advice_bits << " bits\n";
  std::cout << "elected leader (node id): " << run.verdict.leader << '\n';
  std::cout << "node 0 output path      :";
  for (int p : run.metrics.outputs[0]) std::cout << ' ' << p;
  std::cout << '\n';
  return 0;
}
