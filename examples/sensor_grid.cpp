// Anonymous sensor grid: a deployment of identical sensors in a
// rows x cols mesh must elect a coordinator (data sink). The sensors are
// anonymous — identical firmware, no serial numbers revealed — but the
// grid boundary breaks the symmetry (corner/edge/interior degrees differ),
// so the network is feasible and the minimum-time algorithm applies.
//
// The example also shows the failure mode the paper starts from: an
// orientation-symmetric ring of sensors is infeasible — no advice of any
// size can elect a leader — and our profile detects that before any
// communication is wasted.

#include <iostream>

#include "election/harness.hpp"
#include "portgraph/builders.hpp"
#include "views/profile.hpp"

int main() {
  using namespace anole;

  const std::size_t rows = 6, cols = 9;
  portgraph::PortGraph mesh = portgraph::grid(rows, cols);

  views::ViewRepo repo;
  views::ViewProfile profile = views::compute_profile(mesh, repo);
  std::cout << "sensor mesh " << rows << "x" << cols << " (" << mesh.n()
            << " sensors), diameter " << mesh.diameter() << "\n";
  std::cout << "feasible: " << (profile.feasible ? "yes" : "no")
            << ", election index phi = " << profile.election_index << "\n";

  election::ElectionRun run = election::run_min_time(mesh);
  if (!run.ok()) {
    std::cerr << "election failed: " << run.verdict.error << "\n";
    return 1;
  }
  std::size_t r = static_cast<std::size_t>(run.verdict.leader) / cols;
  std::size_t c = static_cast<std::size_t>(run.verdict.leader) % cols;
  std::cout << "coordinator elected at grid position (" << r << "," << c
            << ") in " << run.metrics.rounds
            << " rounds (minimum possible) using " << run.advice_bits
            << " advice bits\n\n";

  // Map of the mesh with the coordinator marked.
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j)
      std::cout << ((i == r && j == c) ? 'C' : '.');
    std::cout << '\n';
  }

  // Contrast: a closed sensor *ring* with oriented ports is perfectly
  // symmetric — leader election is impossible there no matter how much
  // advice or time is allowed (the paper's starting observation).
  portgraph::PortGraph ring = portgraph::ring(12);
  views::ViewRepo repo2;
  views::ViewProfile ring_profile = views::compute_profile(ring, repo2);
  std::cout << "\noriented sensor ring of 12: feasible = "
            << (ring_profile.feasible ? "yes" : "no")
            << " -> deployment tooling must reject this topology before "
               "fielding it.\n";
  return 0;
}
