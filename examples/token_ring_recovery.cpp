// Token-ring recovery — the original motivation for leader election
// (Le Lann 1977, cited in the paper's introduction): a local-area token
// ring in which exactly one station (the token owner) may initiate
// communication. When the token is lost, the stations must elect a new
// initial owner.
//
// The stations are anonymous (no ids are revealed — the privacy scenario
// of the paper), but each has a different number of attached devices, so
// the network is a feasible "hairy ring". We elect the new token owner
// with Election1 (time D + phi + c, advice Theta(log phi)) and then
// simulate the recovered token making one full circulation.

#include <iostream>

#include "election/harness.hpp"
#include "families/hairy.hpp"
#include "views/profile.hpp"

int main() {
  using namespace anole;

  // Eight ring stations with 0..7 attached devices (unique maximum -> the
  // network is feasible).
  std::vector<int> devices{3, 0, 5, 1, 7, 2, 4, 6};
  families::HairyRing ring = families::hairy_ring(devices);
  const portgraph::PortGraph& g = ring.graph;

  views::ViewRepo repo;
  views::ViewProfile profile = views::compute_profile(g, repo);
  std::cout << "token ring with " << devices.size() << " stations, "
            << g.n() << " nodes total (stations + devices)\n"
            << "election index phi = " << profile.election_index
            << ", diameter D = " << g.diameter() << "\n\n";

  election::ElectionRun run = election::run_large_time(
      g, election::LargeTimeVariant::kPhiPlusC, /*c=*/2);
  if (!run.ok()) {
    std::cerr << "recovery failed: " << run.verdict.error << '\n';
    return 1;
  }
  std::cout << "new token owner elected: node " << run.verdict.leader
            << " in " << run.metrics.rounds << " rounds (bound D+phi+c = "
            << run.diameter + run.phi + 2 << ") with " << run.advice_bits
            << " bits of advice\n";

  // The recovered token circulates the ring once, clockwise (port 0 at
  // every ring station), starting from the station nearest the leader.
  portgraph::NodeId owner = run.verdict.leader;
  // If a device was elected (degree 1), its station holds the token.
  if (g.degree(owner) == 1) owner = g.at(owner, 0).neighbor;
  std::cout << "token circulation:";
  portgraph::NodeId cur = owner;
  do {
    std::cout << " " << cur;
    cur = g.at(cur, 0).neighbor;  // clockwise ring port
  } while (cur != owner);
  std::cout << " -> back at the owner. Ring recovered.\n";
  return 0;
}
