#include "advice/build_trie.hpp"

#include <algorithm>

namespace anole::advice {
namespace {

using views::ViewId;
using views::ViewRepo;

Trie build_depth1(ViewRepo& repo, std::vector<ViewId>& s) {
  ANOLE_CHECK(!s.empty());
  if (s.size() == 1) return Trie::single_leaf();

  // Do codes of different lengths exist?
  std::size_t max_len = 0, min_len = SIZE_MAX;
  for (ViewId b : s) {
    std::size_t len = repo.encode_depth1(b).size();
    max_len = std::max(max_len, len);
    min_len = std::min(min_len, len);
  }
  std::vector<ViewId> left, right;
  std::uint64_t qa, qb;
  if (min_len != max_len) {
    qa = 0;
    qb = max_len;  // query: |bin(B)| < max ?
    for (ViewId b : s)
      (repo.encode_depth1(b).size() < max_len ? left : right).push_back(b);
  } else {
    // Smallest 1-based index where some codes differ.
    std::size_t j = 0;
    bool found = false;
    for (; j < max_len && !found; ++j) {
      bool first = repo.encode_depth1(s[0])[j];
      for (std::size_t k = 1; k < s.size(); ++k)
        if (repo.encode_depth1(s[k])[j] != first) {
          found = true;
          break;
        }
    }
    ANOLE_CHECK_MSG(found, "depth-1 views with identical codes in BuildTrie");
    --j;  // the loop overshoots by one
    qa = 1;
    qb = j + 1;  // 1-based bit index
    for (ViewId b : s)
      (!repo.encode_depth1(b)[j] ? left : right).push_back(b);
  }
  ANOLE_CHECK(!left.empty() && !right.empty());
  return Trie::internal(qa, qb, build_depth1(repo, left),
                        build_depth1(repo, right));
}

Trie build_deep(ViewRepo& repo, Labeler& labeler, std::vector<ViewId>& s) {
  ANOLE_CHECK(!s.empty());
  if (s.size() == 1) return Trie::single_leaf();

  // The two canonically smallest views of S determine the discriminatory
  // index and subview. Profile views carry canonical ranks, so this sort
  // (and the subview compare below) is integer comparison, not a DAG walk
  // (DESIGN.md §8) — V2's trie-sort cells benchmark exactly this kernel.
  // Ranks are extracted ONCE under a seqlock snapshot and the sort runs
  // on plain (rank, id) pairs; any unranked view (or a renumber racing
  // the scan — DESIGN.md §10) drops to the compare() path, which shields
  // itself per pair.
  std::vector<ViewId> sorted = s;
  bool by_rank = false;
  {
    ViewRepo::RankReader ranks(repo);
    std::uint64_t token = repo.rank_snapshot();
    std::vector<std::pair<std::int32_t, ViewId>> keyed;
    keyed.reserve(s.size());
    for (ViewId b : s) {
      std::int32_t r = ranks.rank(b);
      if (r == views::kUnranked) break;
      keyed.emplace_back(r, b);
    }
    if (keyed.size() == s.size() && repo.rank_snapshot_valid(token)) {
      std::sort(keyed.begin(), keyed.end());
      for (std::size_t i = 0; i < keyed.size(); ++i)
        sorted[i] = keyed[i].second;
      by_rank = true;
    }
  }
  if (!by_rank)
    std::sort(sorted.begin(), sorted.end(), [&repo](ViewId a, ViewId b) {
      return repo.compare(a, b) == std::strong_ordering::less;
    });
  ViewId u = sorted[0], v = sorted[1];
  std::span<const views::ChildRef> cu = repo.children(u);
  std::span<const views::ChildRef> cv = repo.children(v);
  ANOLE_CHECK_MSG(cu.size() == cv.size(),
                  "views in one deep BuildTrie class differ in degree");
  std::size_t disc = cu.size();
  for (std::size_t i = 0; i < cu.size(); ++i) {
    if (cu[i].second != cv[i].second) {
      disc = i;
      break;
    }
  }
  ANOLE_CHECK_MSG(disc < cu.size(),
                  "distinct views with equal truncations have no "
                  "discriminatory index");
  ViewId b_disc =
      repo.compare(cu[disc].second, cv[disc].second) == std::strong_ordering::less
          ? cu[disc].second
          : cv[disc].second;

  // S' = views whose disc-th child view differs from the subview.
  std::vector<ViewId> left, right;
  for (ViewId b : s)
    (repo.children(b)[disc].second != b_disc ? left : right).push_back(b);
  ANOLE_CHECK(!left.empty() && !right.empty());

  std::uint64_t label = labeler.retrieve_label(b_disc);
  return Trie::internal(static_cast<std::uint64_t>(disc), label,
                        build_deep(repo, labeler, left),
                        build_deep(repo, labeler, right));
}

}  // namespace

Trie build_trie_depth1(ViewRepo& repo, std::vector<ViewId> s) {
  return build_depth1(repo, s);
}

Trie build_trie_deep(ViewRepo& repo, Labeler& labeler,
                     std::vector<ViewId> s) {
  return build_deep(repo, labeler, s);
}

}  // namespace anole::advice
