#pragma once
// BuildTrie (Algorithm 4): constructs a trie discriminating between all
// views of a set S.
//
// Depth-1 mode (E1 empty): splits S on the lengths and bits of the exact
// binary codes bin(B) (Prop. 3.3).
// Deep mode (depth >= 2, all views in S share the same truncation one
// level up): splits on the discriminatory index/subview of S, whose label
// is computed with RetrieveLabel against the already-built (E1, E2) prefix.

#include <vector>

#include "advice/labeler.hpp"
#include "advice/trie.hpp"
#include "views/view_repo.hpp"

namespace anole::advice {

/// Depth-1 BuildTrie(S, ∅, ()): S must hold distinct depth-1 views.
[[nodiscard]] Trie build_trie_depth1(views::ViewRepo& repo,
                                     std::vector<views::ViewId> s);

/// Deep BuildTrie(S, E1, E2(i-1)): S must hold distinct depth-l (l >= 2)
/// views that all share one depth-(l-1) truncation. `labeler` wraps the
/// (E1, E2) prefix built so far.
[[nodiscard]] Trie build_trie_deep(views::ViewRepo& repo, Labeler& labeler,
                                   std::vector<views::ViewId> s);

}  // namespace anole::advice
