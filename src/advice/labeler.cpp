#include "advice/labeler.hpp"

namespace anole::advice {

std::uint64_t Labeler::local_label(views::ViewId b,
                                   const std::vector<std::uint64_t>& x,
                                   const Trie& trie) {
  std::int32_t idx = trie.root();
  std::uint64_t acc = 0;
  for (;;) {
    const Trie::Node& node = trie.node(idx);
    if (node.is_leaf) return acc + 1;
    bool left = false;
    if (x.empty()) {
      // Depth-1 queries against the exact binary code of B (Prop. 3.3).
      const coding::BitString& code = repo_->encode_depth1(b);
      if (node.a == 0 && code.size() < node.b) left = true;
      if (node.a == 1) {
        ANOLE_CHECK_MSG(node.b >= 1 && node.b <= code.size(),
                        "bit query index " << node.b << " out of range");
        if (!code[static_cast<std::size_t>(node.b - 1)]) left = true;
      }
    } else {
      // Deep query: "is the (a+1)-th term of X different from b?"
      ANOLE_CHECK_MSG(node.a < x.size(),
                      "child index " << node.a << " out of range");
      if (x[static_cast<std::size_t>(node.a)] != node.b) left = true;
    }
    if (left) {
      idx = node.left;
    } else {
      acc += static_cast<std::uint64_t>(trie.node(node.left).leaves_below);
      idx = node.right;
    }
  }
}

std::uint64_t Labeler::retrieve_label(views::ViewId b) {
  if (auto it = memo_.find(b); it != memo_.end()) return it->second;
  int d = repo_->depth(b);
  ANOLE_CHECK_MSG(d >= 1, "retrieve_label needs depth >= 1");

  std::uint64_t result;
  if (d == 1) {
    result = local_label(b, {}, *e1_);
  } else {
    // X: labels of the root's children (the neighbors' depth-(d-1) views),
    // in port order.
    std::span<const views::ChildRef> kids = repo_->children(b);
    std::vector<std::uint64_t> x;
    x.reserve(kids.size());
    // Copy out first: retrieve_label recursion may intern (via truncate)
    // and invalidate the span.
    std::vector<views::ViewId> kid_ids;
    kid_ids.reserve(kids.size());
    for (const auto& [port, child] : kids) kid_ids.push_back(child);
    for (views::ViewId child : kid_ids) x.push_back(retrieve_label(child));

    views::ViewId b_prime = repo_->truncate(b, d - 1);
    std::uint64_t label = retrieve_label(b_prime);

    std::uint64_t sum = 0;
    for (std::uint64_t i = 1; i <= label; ++i) {
      const Trie* trie = e2_->find(static_cast<std::uint64_t>(d), i);
      if (trie != nullptr) {
        if (i < label)
          sum += static_cast<std::uint64_t>(trie->num_leaves());
        else
          sum += local_label(b, x, *trie);
      } else {
        sum += 1;
      }
    }
    result = sum;
  }
  memo_.emplace(b, result);
  return result;
}

}  // namespace anole::advice
