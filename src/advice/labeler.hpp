#pragma once
// LocalLabel (Algorithm 2) and RetrieveLabel (Algorithm 3): the pure label
// functions over augmented truncated views that both the oracle and every
// node evaluate. Sharing one implementation makes oracle/node agreement
// hold by construction.
//
// RetrieveLabel(B, E1, E2) assigns every depth-d view a temporary label in
// {1..|S_d|} (S_d = the set of depth-d views in the graph), injectively at
// every depth, by walking the level tries with the labels of the root's
// children as the query context.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "advice/nested_list.hpp"
#include "advice/trie.hpp"
#include "views/view_repo.hpp"

namespace anole::advice {

class Labeler {
 public:
  /// Borrows everything; e2 may keep growing (append-only) while this
  /// Labeler is alive — the oracle relies on that during ComputeAdvice.
  Labeler(views::ViewRepo& repo, const Trie& e1, const NestedList& e2)
      : repo_(&repo), e1_(&e1), e2_(&e2) {}

  /// RetrieveLabel(B, E1, E2) for a view of depth >= 1. Memoized.
  [[nodiscard]] std::uint64_t retrieve_label(views::ViewId b);

  /// LocalLabel(B, X, T) — exposed for the oracle's BuildTrie and tests.
  /// X empty means depth-1 bit queries against bin(B).
  [[nodiscard]] std::uint64_t local_label(views::ViewId b,
                                          const std::vector<std::uint64_t>& x,
                                          const Trie& trie);

 private:
  views::ViewRepo* repo_;
  const Trie* e1_;
  const NestedList* e2_;
  std::unordered_map<views::ViewId, std::uint64_t> memo_;
};

}  // namespace anole::advice
