#include "advice/min_time.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "advice/build_trie.hpp"

namespace anole::advice {

using portgraph::NodeId;
using portgraph::Port;
using portgraph::PortGraph;
using views::ViewId;
using views::ViewRepo;

coding::BitString MinTimeAdvice::to_bits() const {
  coding::BitString a1 = coding::concat({e1.to_bits(), e2.to_bits()});
  coding::BitString a2 = coding::encode_tree(bfs_tree);
  return coding::concat({coding::bin(phi), a1, a2});
}

MinTimeAdvice MinTimeAdvice::from_bits(const coding::BitString& bits) {
  std::vector<coding::BitString> parts = coding::decode(bits);
  ANOLE_CHECK_MSG(parts.size() == 3, "advice must have 3 items");
  MinTimeAdvice adv;
  adv.phi = coding::parse_bin(parts[0]);
  std::vector<coding::BitString> a1 = coding::decode(parts[1]);
  ANOLE_CHECK_MSG(a1.size() == 2, "A1 must have 2 items");
  adv.e1 = Trie::from_bits(a1[0]);
  adv.e2 = NestedList::from_bits(a1[1]);
  adv.bfs_tree = coding::decode_tree(parts[2]);
  return adv;
}

coding::PortTree canonical_bfs_tree(const PortGraph& g, NodeId root,
                                    const std::vector<std::uint64_t>& labels) {
  std::vector<int> dist = g.bfs_distances(root);
  std::size_t n = g.n();
  // Parent of u (dist l+1): the neighbor at dist l behind the smallest
  // port at u.
  std::vector<NodeId> parent(n, -1);
  std::vector<Port> up_port(n, -1), down_port(n, -1);
  for (std::size_t u = 0; u < n; ++u) {
    if (static_cast<NodeId>(u) == root) continue;
    for (Port p = 0; p < g.degree(static_cast<NodeId>(u)); ++p) {
      const auto& he = g.at(static_cast<NodeId>(u), p);
      if (dist[static_cast<std::size_t>(he.neighbor)] ==
          dist[u] - 1) {
        parent[u] = he.neighbor;
        down_port[u] = p;           // port at u (child side)
        up_port[u] = he.rev_port;   // port at the parent side
        break;
      }
    }
    ANOLE_CHECK(parent[u] >= 0);
  }
  // Assemble children lists sorted by the parent-side port.
  std::vector<std::vector<NodeId>> children(n);
  for (std::size_t u = 0; u < n; ++u)
    if (parent[u] >= 0) children[static_cast<std::size_t>(parent[u])]
        .push_back(static_cast<NodeId>(u));
  for (auto& kids : children)
    std::sort(kids.begin(), kids.end(), [&](NodeId a, NodeId b) {
      return up_port[static_cast<std::size_t>(a)] <
             up_port[static_cast<std::size_t>(b)];
    });

  // Recursive assembly without recursion depth worries (graphs can be long
  // chains): explicit stack, post-order.
  std::vector<std::unique_ptr<coding::PortTree>> built(n);
  // Process nodes in decreasing BFS distance so children are ready first.
  std::vector<NodeId> order(n);
  for (std::size_t u = 0; u < n; ++u) order[u] = static_cast<NodeId>(u);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return dist[static_cast<std::size_t>(a)] > dist[static_cast<std::size_t>(b)];
  });
  for (NodeId u : order) {
    auto node = std::make_unique<coding::PortTree>();
    node->label = labels[static_cast<std::size_t>(u)];
    for (NodeId child : children[static_cast<std::size_t>(u)]) {
      node->children.push_back(coding::PortTree::Edge{
          .up_port = up_port[static_cast<std::size_t>(child)],
          .down_port = down_port[static_cast<std::size_t>(child)],
          .child = std::move(built[static_cast<std::size_t>(child)])});
    }
    built[static_cast<std::size_t>(u)] = std::move(node);
  }
  return std::move(*built[static_cast<std::size_t>(root)]);
}

MinTimeAdvice compute_advice(const PortGraph& g, ViewRepo& repo,
                             const views::ViewProfile& profile, int depth) {
  ANOLE_CHECK_MSG(profile.feasible,
                  "ComputeAdvice requires a feasible graph");
  int phi = depth < 0 ? profile.election_index : depth;
  ANOLE_CHECK_MSG(phi >= profile.election_index,
                  "exchange depth below the election index");
  views::ViewProfile extended;  // local copy only if we must extend
  const views::ViewProfile* prof = &profile;
  if (profile.computed_depth() < phi) {
    extended = profile;
    views::extend_profile(g, repo, extended, phi);
    prof = &extended;
  }
  const views::ViewProfile& p = *prof;
  std::size_t n = g.n();

  MinTimeAdvice adv;
  adv.phi = static_cast<std::uint64_t>(phi);

  // E1 <- BuildTrie(S1, ∅, ()).
  std::vector<ViewId> s1(p.ids[1]);
  std::sort(s1.begin(), s1.end());
  s1.erase(std::unique(s1.begin(), s1.end()), s1.end());
  adv.e1 = build_trie_depth1(repo, s1);

  // E2 built level by level; one labeler sees the growing (E1, E2).
  Labeler labeler(repo, adv.e1, adv.e2);
  for (int i = 2; i <= phi; ++i) {
    NestedList::Level level;
    level.depth = static_cast<std::uint64_t>(i);
    // Group the depth-i views by their depth-(i-1) truncation class. The
    // paper iterates "for all B' at depth i-1"; we iterate classes keyed
    // by the (already injective) label of B' so the couples are emitted in
    // increasing label order — deterministic and order-independent.
    std::map<std::uint64_t, std::vector<ViewId>> classes;
    for (std::size_t v = 0; v < n; ++v) {
      ViewId b_prev = p.view(i - 1, static_cast<NodeId>(v));
      ViewId b_cur = p.view(i, static_cast<NodeId>(v));
      classes[labeler.retrieve_label(b_prev)].push_back(b_cur);
    }
    for (auto& [j, members] : classes) {
      std::sort(members.begin(), members.end());
      members.erase(std::unique(members.begin(), members.end()),
                    members.end());
      if (members.size() > 1)
        level.couples.emplace_back(
            j, build_trie_deep(repo, labeler, std::move(members)));
    }
    adv.e2.append_level(std::move(level));
  }

  // Final labels at depth phi; the root r is the node labeled 1.
  std::vector<std::uint64_t> labels(n);
  NodeId root = -1;
  for (std::size_t v = 0; v < n; ++v) {
    labels[v] = labeler.retrieve_label(p.view(phi, static_cast<NodeId>(v)));
    ANOLE_CHECK_MSG(labels[v] >= 1 && labels[v] <= n,
                    "RetrieveLabel out of range: " << labels[v]);
    if (labels[v] == 1) root = static_cast<NodeId>(v);
  }
  ANOLE_CHECK_MSG(root >= 0, "no node received label 1");
  adv.bfs_tree = canonical_bfs_tree(g, root, labels);
  return adv;
}

}  // namespace anole::advice
