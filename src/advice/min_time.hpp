#pragma once
// ComputeAdvice (Algorithm 5) and the advice container for minimum-time
// election (Theorem 3.1): the oracle side of Algorithm Elect.
//
// The advice is Concat(bin(phi), A1, A2) with A1 = Concat(bin(E1),
// bin(E2)) and A2 = bin(T), where E1 discriminates all depth-1 views, E2
// extends the discrimination level by level up to depth phi, and T is the
// canonical BFS tree of G rooted at the node labeled 1, every node labeled
// with its RetrieveLabel value.

#include <cstdint>

#include "advice/labeler.hpp"
#include "advice/nested_list.hpp"
#include "advice/trie.hpp"
#include "coding/tree_codec.hpp"
#include "views/profile.hpp"

namespace anole::advice {

struct MinTimeAdvice {
  std::uint64_t phi = 0;
  Trie e1;
  NestedList e2;
  coding::PortTree bfs_tree;

  /// Adv = Concat(bin(phi), A1, A2).
  [[nodiscard]] coding::BitString to_bits() const;
  [[nodiscard]] static MinTimeAdvice from_bits(const coding::BitString& bits);
};

/// The oracle: runs Algorithm 5 on the (feasible) graph. The profile must
/// come from the same repo and cover depth phi.
///
/// `depth` generalizes the exchange horizon: Algorithm 5 labels views at
/// depth tau >= phi instead of exactly phi (pass -1 for tau = phi). Elect
/// with such advice runs in time tau. This instantiates the paper's
/// concluding open question — the advice requirement for times strictly
/// between phi and D + phi: the construction still emits Theta(n log n)
/// bits for every such tau (levels above phi contribute empty L(i) lists),
/// and no better upper bound is known below D + phi.
[[nodiscard]] MinTimeAdvice compute_advice(const portgraph::PortGraph& g,
                                           views::ViewRepo& repo,
                                           const views::ViewProfile& profile,
                                           int depth = -1);

/// The canonical BFS tree of the paper: parent of a node u at BFS level
/// l+1 is the level-l neighbor reached through the smallest port *at u*.
/// Labels are supplied per node. Exposed for tests.
[[nodiscard]] coding::PortTree canonical_bfs_tree(
    const portgraph::PortGraph& g, portgraph::NodeId root,
    const std::vector<std::uint64_t>& labels);

}  // namespace anole::advice
