#include "advice/naive.hpp"

#include <algorithm>
#include <unordered_map>

#include "advice/min_time.hpp"
#include "util/math.hpp"

namespace anole::advice {

using portgraph::NodeId;
using views::ViewId;

coding::BitString NaiveAdvice::to_bits() const {
  std::vector<coding::BitString> parts;
  parts.reserve(sorted_codes.size() + 2);
  parts.push_back(coding::bin(sorted_codes.size()));
  for (const auto& code : sorted_codes) parts.push_back(code);
  parts.push_back(coding::encode_tree(bfs_tree));
  return coding::concat(parts);
}

NaiveAdvice NaiveAdvice::from_bits(const coding::BitString& bits) {
  std::vector<coding::BitString> parts = coding::decode(bits);
  ANOLE_CHECK(parts.size() >= 2);
  NaiveAdvice adv;
  std::size_t count = static_cast<std::size_t>(coding::parse_bin(parts[0]));
  ANOLE_CHECK_MSG(parts.size() == count + 2, "naive advice length mismatch");
  adv.sorted_codes.assign(parts.begin() + 1, parts.end() - 1);
  adv.bfs_tree = coding::decode_tree(parts.back());
  return adv;
}

NaiveAdvice compute_naive_advice(const portgraph::PortGraph& g,
                                 views::ViewRepo& repo,
                                 const views::ViewProfile& profile) {
  ANOLE_CHECK_MSG(profile.feasible && profile.election_index == 1,
                  "the naive scheme is defined for election index 1");
  std::size_t n = g.n();

  NaiveAdvice adv;
  adv.sorted_codes.reserve(n);
  for (std::size_t v = 0; v < n; ++v)
    adv.sorted_codes.push_back(
        repo.encode_depth1(profile.view(1, static_cast<NodeId>(v))));
  std::sort(adv.sorted_codes.begin(), adv.sorted_codes.end());

  // Rank labels (1-based; all codes distinct since phi = 1).
  std::vector<std::uint64_t> labels(n);
  NodeId root = -1;
  for (std::size_t v = 0; v < n; ++v) {
    const coding::BitString& code =
        repo.encode_depth1(profile.view(1, static_cast<NodeId>(v)));
    auto it = std::lower_bound(adv.sorted_codes.begin(),
                               adv.sorted_codes.end(), code);
    labels[v] = static_cast<std::uint64_t>(
                    std::distance(adv.sorted_codes.begin(), it)) +
                1;
    if (labels[v] == 1) root = static_cast<NodeId>(v);
  }
  ANOLE_CHECK(root >= 0);
  adv.bfs_tree = canonical_bfs_tree(g, root, labels);
  return adv;
}

void NaiveElectProgram::on_view(int rounds) {
  if (done_ || rounds != 1) return;
  const coding::BitString& code = repo().encode_depth1(view());
  auto it = std::lower_bound(advice_->sorted_codes.begin(),
                             advice_->sorted_codes.end(), code);
  ANOLE_CHECK_MSG(it != advice_->sorted_codes.end() && *it == code,
                  "own view code not in the naive advice list");
  std::uint64_t rank = static_cast<std::uint64_t>(
                           std::distance(advice_->sorted_codes.begin(), it)) +
                       1;
  output_ = advice_->bfs_tree.path_ports(rank, 1);
  done_ = true;
}

std::uint64_t naive_tree_code_bits(const views::ViewRepo& repo,
                                   views::ViewId view) {
  constexpr std::uint64_t kCap = UINT64_C(1) << 62;
  std::unordered_map<ViewId, std::uint64_t> memo;
  // Post-order accumulation over the DAG; tree size = sum over children of
  // (edge label bits + subtree size), counted with multiplicity.
  auto rec = [&](auto&& self, ViewId v) -> std::uint64_t {
    if (auto it = memo.find(v); it != memo.end()) return it->second;
    std::uint64_t bits =
        util::bit_length(static_cast<std::uint64_t>(repo.degree(v)));
    for (const auto& [port, child] : repo.children(v)) {
      std::uint64_t sub = self(self, child);
      std::uint64_t edge =
          util::bit_length(static_cast<std::uint64_t>(port)) + 8;
      if (sub >= kCap || bits >= kCap - sub || bits + sub >= kCap - edge) {
        bits = kCap;
        break;
      }
      bits += sub + edge;
    }
    memo.emplace(v, bits);
    return bits;
  };
  return rec(rec, view);
}

}  // namespace anole::advice
