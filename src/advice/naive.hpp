#pragma once
// The naive advice scheme the paper dismisses in Section 3 — implemented,
// so the ablation benchmark can measure exactly the gap the trie design
// closes.
//
// "A naive way in which nodes could attribute themselves distinct labels
// ... nodes could list all possible augmented truncated views at depth
// phi, order them lexicographically, and then each node could adopt as
// its label the rank in this list." Listing all *possible* views is
// infinite; the implementable variant ships the list of views *present in
// G*: the advice contains, sorted, the exact binary code of every node's
// B^phi, and the BFS tree labeled by ranks. For phi = 1 that is
// Theta(sum |bin(B^1(v))|) = Theta(n^2 log n) bits on dense graphs —
// versus the trie scheme's O(n log n). For phi > 1 the codes are view
// *trees* and grow like Delta^phi; naive_tree_code_bits estimates their
// size (saturating) without materializing them.

#include <cstdint>
#include <memory>

#include "coding/tree_codec.hpp"
#include "sim/full_info.hpp"
#include "views/profile.hpp"

namespace anole::advice {

/// The decoded naive advice: the sorted code list and the rank-labeled
/// canonical BFS tree.
struct NaiveAdvice {
  std::vector<coding::BitString> sorted_codes;  ///< bin(B^1) per class
  coding::PortTree bfs_tree;                    ///< labels = 1-based ranks

  [[nodiscard]] coding::BitString to_bits() const;
  [[nodiscard]] static NaiveAdvice from_bits(const coding::BitString& bits);
};

/// Oracle for the naive scheme. Requires election index 1 (the paper's
/// own discussion of the naive scheme is at phi = 1; beyond that the
/// codes explode — see naive_tree_code_bits).
[[nodiscard]] NaiveAdvice compute_naive_advice(
    const portgraph::PortGraph& g, views::ViewRepo& repo,
    const views::ViewProfile& profile);

/// Node algorithm: one COM round, rank lookup, path in the advice tree.
class NaiveElectProgram final : public sim::FullInfoProgram {
 public:
  explicit NaiveElectProgram(std::shared_ptr<const NaiveAdvice> adv)
      : advice_(std::move(adv)) {}

  [[nodiscard]] bool has_output() const override { return done_; }
  [[nodiscard]] std::vector<int> output() const override { return output_; }

 protected:
  void on_view(int rounds) override;

 private:
  std::shared_ptr<const NaiveAdvice> advice_;
  std::vector<int> output_;
  bool done_ = false;
};

/// Size in bits of the *flat tree* encoding of a view (each depth-d view
/// written out as its full port-labeled tree, the way the naive scheme
/// would have to ship depth-phi views). Saturates at 2^62. This is the
/// quantity that grows like Delta^phi and motivates the paper's recursive
/// trie construction for phi > 1.
[[nodiscard]] std::uint64_t naive_tree_code_bits(const views::ViewRepo& repo,
                                                 views::ViewId view);

}  // namespace anole::advice
