#include "advice/nested_list.hpp"

#include "util/check.hpp"

namespace anole::advice {

void NestedList::append_level(Level level) {
  ANOLE_CHECK_MSG(levels_.empty() || levels_.back().depth < level.depth,
                  "E2 levels must be appended in increasing depth order");
  levels_.push_back(std::move(level));
}

const NestedList::Level* NestedList::level(std::uint64_t depth) const {
  for (const Level& l : levels_)
    if (l.depth == depth) return &l;
  return nullptr;
}

const Trie* NestedList::find(std::uint64_t depth, std::uint64_t j) const {
  const Level* l = level(depth);
  if (l == nullptr) return nullptr;
  for (const auto& [label, trie] : l->couples)
    if (label == j) return &trie;
  return nullptr;
}

coding::BitString NestedList::to_bits() const {
  std::vector<coding::BitString> outer;
  outer.reserve(levels_.size() * 2);
  for (const Level& l : levels_) {
    outer.push_back(coding::bin(l.depth));
    std::vector<coding::BitString> inner;
    inner.reserve(l.couples.size() * 2);
    for (const auto& [j, trie] : l.couples) {
      inner.push_back(coding::bin(j));
      inner.push_back(trie.to_bits());
    }
    outer.push_back(coding::concat(inner));
  }
  return coding::concat(outer);
}

NestedList NestedList::from_bits(const coding::BitString& bits) {
  NestedList out;
  if (bits.empty()) return out;
  std::vector<coding::BitString> outer = coding::decode(bits);
  ANOLE_CHECK_MSG(outer.size() % 2 == 0, "E2 code must pair depths and lists");
  for (std::size_t k = 0; k < outer.size(); k += 2) {
    Level level;
    level.depth = coding::parse_bin(outer[k]);
    const coding::BitString& list_bits = outer[k + 1];
    if (!list_bits.empty()) {
      std::vector<coding::BitString> inner = coding::decode(list_bits);
      ANOLE_CHECK_MSG(inner.size() % 2 == 0,
                      "L(i) code must pair labels and tries");
      for (std::size_t c = 0; c < inner.size(); c += 2)
        level.couples.emplace_back(coding::parse_bin(inner[c]),
                                   Trie::from_bits(inner[c + 1]));
    }
    out.append_level(std::move(level));
  }
  return out;
}

bool NestedList::operator==(const NestedList& other) const {
  return to_bits() == other.to_bits();
}

}  // namespace anole::advice
