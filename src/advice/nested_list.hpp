#pragma once
// The nested list E2 of Algorithm 5 (ComputeAdvice): a list of couples
// (i, L(i)) for i = 2..phi, where L(i) is a list of couples (j, T_j); T_j
// is the trie discriminating among the depth-i views of all nodes whose
// depth-(i-1) view has label j (only labels with >= 2 extensions appear).
//
// Binary code, as in the paper: bin(E2) = Concat(bin(i_1), bin(L(i_1)),
// ...), with bin(L) = Concat(bin(j_1), bin(T_1), ...). An empty list codes
// to the empty string.

#include <cstdint>
#include <utility>
#include <vector>

#include "advice/trie.hpp"

namespace anole::advice {

class NestedList {
 public:
  struct Level {
    std::uint64_t depth = 0;
    std::vector<std::pair<std::uint64_t, Trie>> couples;
  };

  /// Appends the level (depth, couples); depths must be appended in
  /// increasing order (Algorithm 5 appends (i, L(i)) for i = 2,3,...).
  void append_level(Level level);

  [[nodiscard]] const std::vector<Level>& levels() const noexcept {
    return levels_;
  }

  /// The trie for (depth, label j), or nullptr when |S_depth(j)| < 2.
  [[nodiscard]] const Trie* find(std::uint64_t depth, std::uint64_t j) const;

  /// Whether an (i, L(i)) entry exists for this depth at all.
  [[nodiscard]] const Level* level(std::uint64_t depth) const;

  [[nodiscard]] coding::BitString to_bits() const;
  [[nodiscard]] static NestedList from_bits(const coding::BitString& bits);

  bool operator==(const NestedList& other) const;

 private:
  std::vector<Level> levels_;
};

}  // namespace anole::advice
