#include "advice/trie.hpp"

#include "util/check.hpp"

namespace anole::advice {

Trie Trie::single_leaf() {
  Trie t;
  t.nodes_.push_back(Node{});
  t.root_ = 0;
  return t;
}

std::int32_t Trie::absorb(const Trie& other) {
  std::int32_t offset = static_cast<std::int32_t>(nodes_.size());
  for (const Node& n : other.nodes_) {
    Node copy = n;
    if (copy.left >= 0) copy.left += offset;
    if (copy.right >= 0) copy.right += offset;
    nodes_.push_back(copy);
  }
  return other.root_ + offset;
}

Trie Trie::internal(std::uint64_t a, std::uint64_t b, Trie left, Trie right) {
  ANOLE_CHECK(!left.empty() && !right.empty());
  Trie t;
  std::int32_t l = t.absorb(left);
  std::int32_t r = t.absorb(right);
  Node root;
  root.is_leaf = false;
  root.a = a;
  root.b = b;
  root.left = l;
  root.right = r;
  root.leaves_below =
      t.node(l).leaves_below + t.node(r).leaves_below;
  t.nodes_.push_back(root);
  t.root_ = static_cast<std::int32_t>(t.nodes_.size() - 1);
  return t;
}

namespace {

void emit(const Trie& t, std::int32_t idx,
          std::vector<coding::BitString>& parts) {
  const Trie::Node& n = t.node(idx);
  if (n.is_leaf) {
    parts.push_back(coding::bin(0));
    return;
  }
  parts.push_back(coding::bin(1));
  parts.push_back(coding::bin(n.a));
  parts.push_back(coding::bin(n.b));
  emit(t, n.left, parts);
  emit(t, n.right, parts);
}

Trie parse(const std::vector<coding::BitString>& parts, std::size_t& pos) {
  ANOLE_CHECK_MSG(pos < parts.size(), "trie code truncated");
  std::uint64_t tag = coding::parse_bin(parts[pos++]);
  if (tag == 0) return Trie::single_leaf();
  ANOLE_CHECK_MSG(tag == 1, "bad trie node tag " << tag);
  ANOLE_CHECK(pos + 1 < parts.size());
  std::uint64_t a = coding::parse_bin(parts[pos++]);
  std::uint64_t b = coding::parse_bin(parts[pos++]);
  Trie left = parse(parts, pos);
  Trie right = parse(parts, pos);
  return Trie::internal(a, b, std::move(left), std::move(right));
}

}  // namespace

coding::BitString Trie::to_bits() const {
  ANOLE_CHECK(!empty());
  std::vector<coding::BitString> parts;
  emit(*this, root_, parts);
  return coding::concat(parts);
}

Trie Trie::from_bits(const coding::BitString& bits) {
  std::vector<coding::BitString> parts = coding::decode(bits);
  std::size_t pos = 0;
  Trie t = parse(parts, pos);
  ANOLE_CHECK_MSG(pos == parts.size(), "trailing data after trie code");
  return t;
}

bool Trie::operator==(const Trie& other) const {
  // Structural equality via codes (node ids may be laid out differently).
  if (empty() || other.empty()) return empty() == other.empty();
  return to_bits() == other.to_bits();
}

}  // namespace anole::advice
