#pragma once
// The discrimination tries of Section 3.
//
// A trie is a rooted binary tree whose leaves correspond to objects (here:
// augmented truncated views of graph nodes) and whose internal nodes carry
// yes/no queries (a,b); the left child (port 0) is the "no" branch, the
// right child (port 1) the "yes" branch.
//
// Query semantics (Algorithm 2, LocalLabel):
//  * depth-1 tries (argument list X empty):
//      (0,t): "is |bin(B)| < t?"            — yes goes LEFT
//      (1,j): "is the j-th bit of bin(B) 0?" — yes goes LEFT  (1-indexed)
//  * deeper tries (X = labels of the root's children):
//      (i,l): "is X[i+1] != l?"             — yes goes LEFT
//
// Binary code: a recursive Concat-based encoding of equivalent size to the
// paper's DFS-walk code (leaves contribute O(1) bits; internal nodes O(log)
// bits per query component) — see DESIGN.md on codec substitutions.

#include <cstdint>
#include <vector>

#include "coding/codec.hpp"

namespace anole::advice {

class Trie {
 public:
  struct Node {
    bool is_leaf = true;
    std::uint64_t a = 0, b = 0;  ///< the query (internal nodes only)
    std::int32_t left = -1, right = -1;
    std::int32_t leaves_below = 1;  ///< leaf count of this subtree
  };

  /// A single-leaf trie (the "(0)"-labeled node of Algorithm 4).
  static Trie single_leaf();

  /// An internal root with query (a,b) and the two subtries.
  static Trie internal(std::uint64_t a, std::uint64_t b, Trie left,
                       Trie right);

  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }
  [[nodiscard]] std::int32_t root() const noexcept { return root_; }
  [[nodiscard]] const Node& node(std::int32_t idx) const {
    return nodes_[static_cast<std::size_t>(idx)];
  }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] int num_leaves() const {
    return empty() ? 0 : node(root_).leaves_below;
  }

  [[nodiscard]] coding::BitString to_bits() const;
  [[nodiscard]] static Trie from_bits(const coding::BitString& bits);

  bool operator==(const Trie& other) const;

 private:
  // Appends `other`'s nodes, returning the translated root index.
  std::int32_t absorb(const Trie& other);

  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

}  // namespace anole::advice
