#include "coding/bitstring.hpp"

#include <algorithm>

namespace anole::coding {

BitString BitString::from_string(const std::string& s) {
  BitString b;
  for (char c : s) {
    ANOLE_CHECK_MSG(c == '0' || c == '1', "bad bit char '" << c << "'");
    b.push_back(c == '1');
  }
  return b;
}

BitString BitString::from_words(std::vector<std::uint64_t> words,
                                std::size_t bits) {
  ANOLE_CHECK_MSG(words.size() == (bits + 63) / 64,
                  "from_words: " << words.size() << " words cannot back "
                                 << bits << " bits");
  if (bits % 64 != 0) {
    std::uint64_t tail = words.back() >> (bits % 64);
    ANOLE_CHECK_MSG(tail == 0, "from_words: nonzero bits past the end");
  }
  BitString b;
  b.words_ = std::move(words);
  b.size_ = bits;
  return b;
}

void BitString::append_words(std::span<const std::uint64_t> words) {
  if (words.empty()) return;
  if (size_ % 64 == 0) {
    words_.insert(words_.end(), words.begin(), words.end());
    size_ += 64 * words.size();
    return;
  }
  for (std::uint64_t w : words) append_word(w, 64);
}

void BitString::append_bytes(const void* data, std::size_t n) {
  if (n == 0) return;
  const auto* src = static_cast<const unsigned char*>(data);
  if (size_ % 8 == 0) {
    std::size_t byte_pos = size_ / 8;
    words_.resize((size_ + 8 * n + 63) / 64, 0);
    std::memcpy(reinterpret_cast<unsigned char*>(words_.data()) + byte_pos,
                src, n);
    size_ += 8 * n;
    return;
  }
  for (std::size_t i = 0; i < n; ++i) append_word(src[i], 8);
}

void BitString::append(const BitString& other) {
  if (other.size_ == 0) return;
  std::size_t whole = other.size_ / 64;
  append_words({other.words_.data(), whole});
  if (other.size_ % 64 != 0) {
    append_word(other.words_[whole],
                static_cast<unsigned>(other.size_ % 64));
  }
}

bool BitString::operator==(const BitString& other) const {
  if (size_ != other.size_) return false;
  // Trailing bits of the last word are zero by construction on both sides.
  return words_ == other.words_;
}

bool BitString::operator<(const BitString& other) const {
  std::size_t common = std::min(size_, other.size_);
  for (std::size_t i = 0; i < common; ++i) {
    bool a = (*this)[i], b = other[i];
    if (a != b) return !a;  // 0 < 1
  }
  return size_ < other.size_;
}

std::string BitString::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back((*this)[i] ? '1' : '0');
  return s;
}

}  // namespace anole::coding
