#include "coding/bitstring.hpp"

#include <algorithm>

namespace anole::coding {

BitString BitString::from_string(const std::string& s) {
  BitString b;
  for (char c : s) {
    ANOLE_CHECK_MSG(c == '0' || c == '1', "bad bit char '" << c << "'");
    b.push_back(c == '1');
  }
  return b;
}

bool BitString::operator==(const BitString& other) const {
  if (size_ != other.size_) return false;
  // Trailing bits of the last word are zero by construction on both sides.
  return words_ == other.words_;
}

bool BitString::operator<(const BitString& other) const {
  std::size_t common = std::min(size_, other.size_);
  for (std::size_t i = 0; i < common; ++i) {
    bool a = (*this)[i], b = other[i];
    if (a != b) return !a;  // 0 < 1
  }
  return size_ < other.size_;
}

std::string BitString::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back((*this)[i] ? '1' : '0');
  return s;
}

}  // namespace anole::coding
