#pragma once
// BitString: a growable sequence of bits, MSB-first within the logical
// stream, used for all advice strings in the paper.
//
// The paper measures advice in bits, so this type is the unit of account
// for every "size of advice" column in the experiment tables.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace anole::coding {

class BitString {
 public:
  BitString() = default;

  /// Builds from a string of '0'/'1' characters (test convenience).
  static BitString from_string(const std::string& s);

  /// Adopts `words` as the backing storage of a `bits`-long string.
  /// Bits past `bits` in the last word must be zero (the invariant every
  /// mutator maintains); checked here because words() / operator== rely
  /// on it.
  static BitString from_words(std::vector<std::uint64_t> words,
                              std::size_t bits);

  /// Pre-allocates room for `bits` bits (capacity only; size unchanged).
  void reserve(std::size_t bits) { words_.reserve((bits + 63) / 64); }

  void push_back(bool bit) {
    if (size_ % 64 == 0) words_.push_back(0);
    if (bit) words_.back() |= (UINT64_C(1) << (size_ % 64));
    ++size_;
  }

  /// Appends the low `bits` bits of `value` (logical order: value's bit 0
  /// first, so a later BitReader::read_word(bits) returns `value`).
  /// Equivalent to `bits` push_back calls but one or two word ops.
  void append_word(std::uint64_t value, unsigned bits) {
    ANOLE_DCHECK(bits <= 64);
    if (bits == 0) return;
    if (bits < 64) value &= (UINT64_C(1) << bits) - 1;
    unsigned off = static_cast<unsigned>(size_ % 64);
    if (off == 0) {
      words_.push_back(value);
    } else {
      words_.back() |= value << off;
      if (bits > 64 - off) words_.push_back(value >> (64 - off));
    }
    size_ += bits;
  }

  /// Appends 64 * words.size() bits. When the write position is
  /// word-aligned this is a straight memcpy into the backing store —
  /// the fast path the snapshot writer is built on.
  void append_words(std::span<const std::uint64_t> words);

  /// Appends 8 * n bits from raw memory, byte k of `data` landing at bit
  /// offset 8k (little-endian within each backing word, matching the
  /// word layout). memcpy fast path when the write position is
  /// byte-aligned.
  void append_bytes(const void* data, std::size_t n);

  /// Word-at-a-time concatenation (replaces the historical per-bit loop).
  void append(const BitString& other);

  bool operator[](std::size_t i) const {
    ANOLE_DCHECK(i < size_);
    return (words_[i / 64] >> (i % 64)) & 1;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool operator==(const BitString& other) const;

  /// Lexicographic order on bit sequences (shorter prefix < longer when
  /// equal so far) — the order the paper uses on binary representations.
  bool operator<(const BitString& other) const;

  std::string to_string() const;

  /// Raw backing words (bit i lives at words()[i/64] bit i%64; bits past
  /// size() in the last word are zero). For bulk I/O — snapshot blobs,
  /// checksums — without a per-bit copy.
  std::span<const std::uint64_t> words() const noexcept {
    return {words_.data(), words_.size()};
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

/// Cursor for sequentially decoding a BitString.
class BitReader {
 public:
  explicit BitReader(const BitString& bits) : bits_(&bits) {}

  bool read_bit() {
    ANOLE_CHECK_MSG(pos_ < bits_->size(), "BitReader past end");
    return (*bits_)[pos_++];
  }

  /// Reads `bits` bits into the low bits of the result (inverse of
  /// BitString::append_word) in one or two word ops.
  std::uint64_t read_word(unsigned bits) {
    ANOLE_DCHECK(bits <= 64);
    ANOLE_CHECK_MSG(bits <= remaining(), "BitReader past end");
    if (bits == 0) return 0;
    std::span<const std::uint64_t> w = bits_->words();
    unsigned off = static_cast<unsigned>(pos_ % 64);
    std::uint64_t out = w[pos_ / 64] >> off;
    if (bits > 64 - off) out |= w[pos_ / 64 + 1] << (64 - off);
    if (bits < 64) out &= (UINT64_C(1) << bits) - 1;
    pos_ += bits;
    return out;
  }

  bool at_end() const noexcept { return pos_ >= bits_->size(); }
  std::size_t position() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return bits_->size() - pos_; }

 private:
  const BitString* bits_;
  std::size_t pos_ = 0;
};

}  // namespace anole::coding
