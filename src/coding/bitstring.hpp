#pragma once
// BitString: a growable sequence of bits, MSB-first within the logical
// stream, used for all advice strings in the paper.
//
// The paper measures advice in bits, so this type is the unit of account
// for every "size of advice" column in the experiment tables.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace anole::coding {

class BitString {
 public:
  BitString() = default;

  /// Builds from a string of '0'/'1' characters (test convenience).
  static BitString from_string(const std::string& s);

  void push_back(bool bit) {
    if (size_ % 64 == 0) words_.push_back(0);
    if (bit) words_.back() |= (UINT64_C(1) << (size_ % 64));
    ++size_;
  }

  void append(const BitString& other) {
    for (std::size_t i = 0; i < other.size(); ++i) push_back(other[i]);
  }

  bool operator[](std::size_t i) const {
    ANOLE_DCHECK(i < size_);
    return (words_[i / 64] >> (i % 64)) & 1;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool operator==(const BitString& other) const;

  /// Lexicographic order on bit sequences (shorter prefix < longer when
  /// equal so far) — the order the paper uses on binary representations.
  bool operator<(const BitString& other) const;

  std::string to_string() const;

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

/// Cursor for sequentially decoding a BitString.
class BitReader {
 public:
  explicit BitReader(const BitString& bits) : bits_(&bits) {}

  bool read_bit() {
    ANOLE_CHECK_MSG(pos_ < bits_->size(), "BitReader past end");
    return (*bits_)[pos_++];
  }

  bool at_end() const noexcept { return pos_ >= bits_->size(); }
  std::size_t position() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return bits_->size() - pos_; }

 private:
  const BitString* bits_;
  std::size_t pos_ = 0;
};

}  // namespace anole::coding
