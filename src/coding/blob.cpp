#include "coding/blob.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace anole::coding {
namespace {

/// write(2) until all of `n` bytes landed (short writes are legal).
bool write_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= UINT64_C(0x100000001b3);
  }
  return h;
}

std::uint64_t BlobWriter::body_checksum() const {
  return fnv1a64(body_.words().data(), body_.size() / 8);
}

void BlobWriter::finish(const std::string& path,
                        std::span<const std::uint64_t> header) const {
  ANOLE_CHECK_MSG(header.size() == header_words_,
                  "BlobWriter::finish: " << header.size()
                                         << " header words, expected "
                                         << header_words_);
  // Crash-safe write: header + body go to a temp file in the SAME
  // directory (rename across filesystems is not atomic), the temp is
  // fsync'ed, then renamed over `path`. A reader therefore only ever
  // sees the old complete file or the new complete file — a crash or
  // kill mid-save can at worst leave a stray .tmp sibling behind, never
  // a half-written blob at the target path. O_EXCL keeps two concurrent
  // savers of the same path from interleaving into one temp file.
  std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_TRUNC, 0644);
  if (fd < 0 && errno == EEXIST) {
    // A stale temp from a crashed earlier save by a process that reused
    // our pid; it was never renamed, so it is dead weight — replace it.
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  }
  if (fd < 0)
    throw BlobError("blob: cannot open '" + tmp + "' for writing: " +
                    std::strerror(errno));
  std::span<const std::uint64_t> body = body_.words();
  bool ok = write_all(fd, header.data(), 8 * header.size()) &&
            write_all(fd, body.data(), body_.size() / 8) &&
            ::fsync(fd) == 0;
  ok = (::close(fd) == 0) && ok;
  if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) {
    int saved = errno;
    ::unlink(tmp.c_str());  // never leave temp droppings on failure
    throw BlobError("blob: write to '" + path + "' failed: " +
                    std::strerror(saved));
  }
}

}  // namespace anole::coding
