#include "coding/blob.hpp"

#include <fstream>

namespace anole::coding {

std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= UINT64_C(0x100000001b3);
  }
  return h;
}

std::uint64_t BlobWriter::body_checksum() const {
  return fnv1a64(body_.words().data(), body_.size() / 8);
}

void BlobWriter::finish(const std::string& path,
                        std::span<const std::uint64_t> header) const {
  ANOLE_CHECK_MSG(header.size() == header_words_,
                  "BlobWriter::finish: " << header.size()
                                         << " header words, expected "
                                         << header_words_);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw BlobError("blob: cannot open '" + path + "' for writing");
  out.write(reinterpret_cast<const char*>(header.data()),
            static_cast<std::streamsize>(8 * header.size()));
  std::span<const std::uint64_t> body = body_.words();
  out.write(reinterpret_cast<const char*>(body.data()),
            static_cast<std::streamsize>(body_.size() / 8));
  out.flush();
  if (!out) throw BlobError("blob: write to '" + path + "' failed");
}

}  // namespace anole::coding
