#pragma once
// Flat binary blob writer/reader for persistent snapshots (DESIGN.md §13).
//
// A blob is a little-endian file of 64-bit words: a fixed-size header
// whose slots the caller fills at finish() time (section offsets are only
// known then), followed by a body accumulated through bulk word-aligned
// BitString appends. The reader is a bounds-checked view over raw bytes —
// it works identically over a heap buffer and an mmap'ed file, and every
// out-of-range access throws BlobError instead of invoking UB, which is
// what makes "load fails with a clear error on truncated files" cheap to
// guarantee.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

#include "coding/bitstring.hpp"

namespace anole::coding {

/// Thrown on malformed blobs (truncation, bad magic/version, checksum
/// mismatch, out-of-range section offsets).
class BlobError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// FNV-1a over raw bytes; the checksum used by snapshot headers/bodies.
std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed = UINT64_C(0xcbf29ce484222325));

/// Accumulates a blob body word-by-word (or in bulk byte runs) and writes
/// header + body to a file. All offsets reported by offset() are file
/// offsets (header included), so they can go straight into header slots.
class BlobWriter {
 public:
  /// Reserves `header_words` u64 slots at the start of the file; the
  /// caller supplies their values at finish().
  explicit BlobWriter(std::size_t header_words, std::size_t reserve_bytes = 0)
      : header_words_(header_words) {
    body_.reserve(8 * reserve_bytes);
  }

  void u64(std::uint64_t v) { body_.append_word(v, 64); }

  /// Appends `n` raw bytes, then zero-pads to the next word boundary so
  /// every section starts 8-byte aligned.
  void bytes(const void* data, std::size_t n) {
    body_.append_bytes(data, n);
    pad_to_word();
  }

  /// File offset of the next write (multiple of 8 by construction).
  std::size_t offset() const noexcept {
    return 8 * header_words_ + body_.size() / 8;
  }

  /// FNV-1a over every body byte written so far.
  std::uint64_t body_checksum() const;

  /// Writes header words then the body to `path`, crash-safely: the
  /// bytes land in a temp file in the same directory, are fsync'ed, and
  /// are atomically renamed over `path` — a killed save never leaves a
  /// half-written blob at the target (at worst a stray `.tmp.<pid>`
  /// sibling). Throws BlobError on I/O failure, in which case `path` is
  /// untouched and the temp file is removed. header.size() must equal
  /// header_words.
  void finish(const std::string& path,
              std::span<const std::uint64_t> header) const;

 private:
  void pad_to_word() {
    if (std::size_t rem = body_.size() % 64; rem != 0) {
      body_.append_word(0, static_cast<unsigned>(64 - rem));
    }
  }

  std::size_t header_words_;
  BitString body_;
};

/// Bounds-checked reads over a raw byte span (heap buffer or mmap).
class BlobReader {
 public:
  BlobReader(const void* data, std::size_t size)
      : data_(static_cast<const unsigned char*>(data)), size_(size) {}

  std::size_t size() const noexcept { return size_; }

  std::uint64_t u64_at(std::size_t offset) const {
    const void* p = bytes_at(offset, 8);
    std::uint64_t v = 0;
    std::memcpy(&v, p, 8);
    return v;
  }

  const void* bytes_at(std::size_t offset, std::size_t n) const {
    if (offset > size_ || n > size_ - offset) {
      throw BlobError("blob: read of " + std::to_string(n) + " bytes at " +
                      std::to_string(offset) + " past end (" +
                      std::to_string(size_) + " bytes)");
    }
    return data_ + offset;
  }

 private:
  const unsigned char* data_;
  std::size_t size_;
};

/// Sequential bounds-checked word cursor over a BlobReader, for parsing
/// variable-length sections.
class BlobCursor {
 public:
  BlobCursor(const BlobReader& reader, std::size_t offset)
      : reader_(&reader), offset_(offset) {}

  std::uint64_t u64() {
    std::uint64_t v = reader_->u64_at(offset_);
    offset_ += 8;
    return v;
  }

  /// Returns a pointer to `n` bytes and advances past them plus padding
  /// to the next word boundary (mirrors BlobWriter::bytes).
  const void* bytes(std::size_t n) {
    const void* p = reader_->bytes_at(offset_, n);
    offset_ += (n + 7) / 8 * 8;
    return p;
  }

  std::size_t offset() const noexcept { return offset_; }

 private:
  const BlobReader* reader_;
  std::size_t offset_;
};

}  // namespace anole::coding
