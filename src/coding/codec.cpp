#include "coding/codec.hpp"

#include "util/math.hpp"

namespace anole::coding {

BitString bin(std::uint64_t x) {
  BitString b;
  std::uint32_t len = util::bit_length(x);
  for (std::uint32_t i = 0; i < len; ++i)
    b.push_back((x >> (len - 1 - i)) & 1);
  return b;
}

std::uint64_t parse_bin(const BitString& b) {
  ANOLE_CHECK_MSG(!b.empty(), "parse_bin on empty string");
  ANOLE_CHECK_MSG(b.size() <= 64, "parse_bin overflow: " << b.size()
                                                         << " bits");
  std::uint64_t x = 0;
  for (std::size_t i = 0; i < b.size(); ++i) x = (x << 1) | (b[i] ? 1 : 0);
  return x;
}

BitString concat(const std::vector<BitString>& parts) {
  BitString out;
  for (std::size_t p = 0; p < parts.size(); ++p) {
    if (p > 0) {  // separator 01
      out.push_back(false);
      out.push_back(true);
    }
    const BitString& part = parts[p];
    for (std::size_t i = 0; i < part.size(); ++i) {
      out.push_back(part[i]);
      out.push_back(part[i]);
    }
  }
  return out;
}

std::vector<BitString> decode(const BitString& encoded) {
  ANOLE_CHECK_MSG(encoded.size() % 2 == 0,
                  "Concat code has odd length " << encoded.size());
  std::vector<BitString> parts;
  parts.emplace_back();
  for (std::size_t i = 0; i < encoded.size(); i += 2) {
    bool a = encoded[i], b = encoded[i + 1];
    if (a == b) {
      parts.back().push_back(a);
    } else {
      ANOLE_CHECK_MSG(!a && b, "invalid Concat pair 10 at bit " << i);
      parts.emplace_back();
    }
  }
  return parts;
}

BitString encode_ints(const std::vector<std::uint64_t>& vals) {
  std::vector<BitString> parts;
  parts.reserve(vals.size() + 1);
  parts.push_back(bin(vals.size()));
  for (std::uint64_t v : vals) parts.push_back(bin(v));
  return concat(parts);
}

std::vector<std::uint64_t> decode_ints(const BitString& b) {
  std::vector<BitString> parts = decode(b);
  ANOLE_CHECK(!parts.empty());
  std::uint64_t count = parse_bin(parts[0]);
  ANOLE_CHECK_MSG(parts.size() == count + 1,
                  "encode_ints count mismatch: " << parts.size() - 1
                                                 << " vs " << count);
  std::vector<std::uint64_t> vals;
  vals.reserve(count);
  for (std::size_t i = 1; i < parts.size(); ++i)
    vals.push_back(parse_bin(parts[i]));
  return vals;
}

}  // namespace anole::coding
