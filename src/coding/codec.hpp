#pragma once
// The paper's binary encodings (Section 3, "technical issues concerning
// coding various objects by binary strings"):
//
//  * bin(x)            — standard binary representation of an integer,
//                        MSB first, bin(0) = "0".
//  * Concat(A1,...,Ak) — encodes a sequence of binary substrings by
//                        doubling each digit of each substring and putting
//                        "01" between consecutive substrings. Example from
//                        the paper: Concat((01),(00)) = (0011010000).
//  * Decode            — the inverse of Concat.
//
// Concat increases the total number of bits by a constant factor (2x plus
// two bits per separator), which is what the paper's O(n log n) accounting
// relies on.

#include <cstdint>
#include <vector>

#include "coding/bitstring.hpp"

namespace anole::coding {

/// bin(x): binary representation, most significant bit first. bin(0)="0".
[[nodiscard]] BitString bin(std::uint64_t x);

/// Inverse of bin(). The input must be non-empty.
[[nodiscard]] std::uint64_t parse_bin(const BitString& b);

/// Concat(A1,...,Ak) with the doubling/separator scheme described above.
/// Concat of an empty list is the empty string.
[[nodiscard]] BitString concat(const std::vector<BitString>& parts);

/// Decode(Concat(A1,...,Ak)) = (A1,...,Ak). The empty string decodes to a
/// single empty substring (Concat of one empty part is also empty; the
/// paper never concatenates zero parts).
[[nodiscard]] std::vector<BitString> decode(const BitString& encoded);

/// Convenience: Concat of the binary representations of a list of integers,
/// with a count prefix so that the empty list is unambiguous:
/// encode_ints(v) = Concat(bin(v.size()), bin(v[0]), ..., bin(v.back())).
[[nodiscard]] BitString encode_ints(const std::vector<std::uint64_t>& vals);

/// Inverse of encode_ints().
[[nodiscard]] std::vector<std::uint64_t> decode_ints(const BitString& b);

}  // namespace anole::coding
