#include "coding/tree_codec.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace anole::coding {
namespace {

// Root-to-node list of edges; empty if label is at the root.
bool find_path(const PortTree& node, std::uint64_t label,
               std::vector<const PortTree::Edge*>& path) {
  if (node.label == label) return true;
  for (const auto& e : node.children) {
    path.push_back(&e);
    if (find_path(*e.child, label, path)) return true;
    path.pop_back();
  }
  return false;
}

void emit_walk(const PortTree& node, std::vector<std::uint64_t>& s1,
               std::vector<std::uint64_t>& s2) {
  s2.push_back(node.label);
  for (const auto& e : node.children) {
    s1.push_back(static_cast<std::uint64_t>(e.up_port));
    s1.push_back(static_cast<std::uint64_t>(e.down_port));
    emit_walk(*e.child, s1, s2);
    s1.push_back(static_cast<std::uint64_t>(e.down_port));
    s1.push_back(static_cast<std::uint64_t>(e.up_port));
  }
}

// Parses the walk of one subtree. `pos` indexes pairs in s1. `entry_port`
// is the port at this node toward its parent, or -1 at the root.
void parse_walk(const std::vector<std::uint64_t>& s1, std::size_t& pos,
                const std::vector<std::uint64_t>& s2, std::size_t& next_label,
                int entry_port, PortTree& node) {
  ANOLE_CHECK(next_label < s2.size());
  node.label = s2[next_label++];
  while (pos * 2 < s1.size()) {
    int a = static_cast<int>(s1[pos * 2]);
    int b = static_cast<int>(s1[pos * 2 + 1]);
    if (a == entry_port) {
      ++pos;  // consume the upward traversal; caller resumes at the parent
      return;
    }
    ++pos;  // downward traversal to a new child
    auto child = std::make_unique<PortTree>();
    parse_walk(s1, pos, s2, next_label, b, *child);
    node.children.push_back(
        PortTree::Edge{.up_port = a, .down_port = b, .child = std::move(child)});
  }
  ANOLE_CHECK_MSG(entry_port < 0, "tree walk ended inside a subtree");
}

}  // namespace

std::size_t PortTree::size() const {
  std::size_t n = 1;
  for (const auto& e : children) n += e.child->size();
  return n;
}

const PortTree* PortTree::find(std::uint64_t target) const {
  if (label == target) return this;
  for (const auto& e : children)
    if (const PortTree* hit = e.child->find(target)) return hit;
  return nullptr;
}

std::vector<int> PortTree::path_ports(std::uint64_t from,
                                      std::uint64_t to) const {
  std::vector<const Edge*> from_path, to_path;
  ANOLE_CHECK_MSG(find_path(*this, from, from_path),
                  "label " << from << " not in tree");
  ANOLE_CHECK_MSG(find_path(*this, to, to_path),
                  "label " << to << " not in tree");
  // Strip the common prefix (edges above the LCA are shared).
  std::size_t common = 0;
  while (common < from_path.size() && common < to_path.size() &&
         from_path[common] == to_path[common])
    ++common;
  std::vector<int> ports;
  // Walk up from `from` to the LCA: near end is the child side.
  for (std::size_t i = from_path.size(); i > common; --i) {
    ports.push_back(from_path[i - 1]->down_port);
    ports.push_back(from_path[i - 1]->up_port);
  }
  // Walk down from the LCA to `to`: near end is the parent side.
  for (std::size_t i = common; i < to_path.size(); ++i) {
    ports.push_back(to_path[i]->up_port);
    ports.push_back(to_path[i]->down_port);
  }
  return ports;
}

bool PortTree::operator==(const PortTree& other) const {
  if (label != other.label || children.size() != other.children.size())
    return false;
  for (std::size_t i = 0; i < children.size(); ++i) {
    const auto& a = children[i];
    const auto& b = other.children[i];
    if (a.up_port != b.up_port || a.down_port != b.down_port ||
        !(*a.child == *b.child))
      return false;
  }
  return true;
}

BitString encode_tree(const PortTree& tree) {
  std::vector<std::uint64_t> s1, s2;
  emit_walk(tree, s1, s2);
  std::vector<BitString> parts;
  parts.reserve(2 + s1.size() + s2.size());
  parts.push_back(bin(s2.size()));  // node count n; |S1| = 4(n-1)
  for (std::uint64_t p : s1) parts.push_back(bin(p));
  for (std::uint64_t l : s2) parts.push_back(bin(l));
  return concat(parts);
}

PortTree decode_tree(const BitString& bits) {
  std::vector<BitString> parts = decode(bits);
  ANOLE_CHECK(!parts.empty());
  std::size_t n = static_cast<std::size_t>(parse_bin(parts[0]));
  ANOLE_CHECK_MSG(n >= 1, "tree code with zero nodes");
  ANOLE_CHECK_MSG(parts.size() == 1 + 4 * (n - 1) + n,
                  "tree code length mismatch: " << parts.size() << " parts, n="
                                                << n);
  std::vector<std::uint64_t> s1, s2;
  s1.reserve(4 * (n - 1));
  s2.reserve(n);
  for (std::size_t i = 0; i < 4 * (n - 1); ++i)
    s1.push_back(parse_bin(parts[1 + i]));
  for (std::size_t i = 0; i < n; ++i)
    s2.push_back(parse_bin(parts[1 + 4 * (n - 1) + i]));
  PortTree root;
  std::size_t pos = 0, next_label = 0;
  parse_walk(s1, pos, s2, next_label, /*entry_port=*/-1, root);
  ANOLE_CHECK_MSG(next_label == n, "tree walk did not visit all nodes");
  return root;
}

}  // namespace anole::coding
