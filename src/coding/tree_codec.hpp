#pragma once
// Labeled rooted trees with two-sided port numbers and the paper's
// DFS-walk binary code for them (Section 3, Proposition 3.1).
//
// The BFS tree that forms item A2 of the advice is such a tree: each node
// carries an integer label (the RetrieveLabel value of the graph node it
// represents) and each tree edge carries the two port numbers it has in the
// underlying graph.
//
// Code layout, following the paper: a DFS walk starting and ending at the
// root, children explored in increasing order of the parent-side port;
// every edge traversal records the (near, far) port pair, so S1 has
// 4(n-1) entries; S2 lists the n node labels in order of first visit.
// We flatten (S1,S2) into one Concat with a node-count prefix so that the
// single-node tree is unambiguous; this changes the length only by O(log n).

#include <cstdint>
#include <memory>
#include <vector>

#include "coding/codec.hpp"

namespace anole::coding {

/// A rooted tree node. Children are kept sorted by `up_port` (the port at
/// *this* node on the edge to the child), matching the canonical BFS-tree
/// convention the paper uses.
struct PortTree {
  struct Edge {
    int up_port;    ///< port at the parent endpoint of this edge
    int down_port;  ///< port at the child endpoint of this edge
    std::unique_ptr<PortTree> child;
  };

  std::uint64_t label = 0;
  std::vector<Edge> children;

  /// Number of nodes in the subtree rooted here.
  [[nodiscard]] std::size_t size() const;

  /// Finds the node with the given label; returns nullptr if absent.
  /// Also fills `path` (port pairs near,far per step, root-ward) when found:
  /// the sequence of (down_port, up_port) pairs from that node up to *this*.
  [[nodiscard]] const PortTree* find(std::uint64_t label) const;

  /// Sequence of port numbers (p1,q1,...,pk,qk) of the unique simple path
  /// from the node labeled `from` to the node labeled `to`, where p_i is the
  /// port at the near end of the i-th edge walking from `from` to `to`.
  /// Both labels must exist in the tree.
  [[nodiscard]] std::vector<int> path_ports(std::uint64_t from,
                                            std::uint64_t to) const;

  bool operator==(const PortTree& other) const;
};

/// bin(T): the paper's binary code of a labeled tree.
[[nodiscard]] BitString encode_tree(const PortTree& tree);

/// Inverse of encode_tree().
[[nodiscard]] PortTree decode_tree(const BitString& bits);

}  // namespace anole::coding
