#include "election/baselines.hpp"

#include <unordered_set>

namespace anole::election {

using portgraph::NodeId;
using portgraph::Port;
using views::ViewId;

coding::BitString map_advice(const portgraph::PortGraph& g) {
  return portgraph::encode_graph(g);
}

void MapProgram::on_view(int rounds) {
  if (done_ || rounds != state_->phi) return;
  views::ViewRepo& vr = repo();
  const portgraph::PortGraph& map = state_->map;

  // Locate every map node's B^phi in the shared repo; our own view id then
  // identifies our position on the map (unique because rounds = phi). The
  // profile is computed once per run and shared through the advice state —
  // every node would derive the identical levels from the identical map.
  if (!state_->map_profile.has_value())
    state_->map_profile =
        views::compute_profile(map, vr, /*min_depth=*/state_->phi);
  const auto& level =
      state_->map_profile->ids[static_cast<std::size_t>(state_->phi)];
  NodeId self = -1;
  for (std::size_t v = 0; v < level.size(); ++v)
    if (level[v] == view()) {
      self = static_cast<NodeId>(v);
      break;
    }
  ANOLE_CHECK_MSG(self >= 0, "own view not found on the map");
  NodeId leader = views::argmin_view(vr, level);

  // Lexicographically smallest shortest path self -> leader on the map.
  std::vector<int> dist = map.bfs_distances(leader);
  NodeId cur = self;
  while (cur != leader) {
    for (Port p = 0; p < map.degree(cur); ++p) {
      const auto& he = map.at(cur, p);
      if (dist[static_cast<std::size_t>(he.neighbor)] ==
          dist[static_cast<std::size_t>(cur)] - 1) {
        output_.push_back(p);
        output_.push_back(he.rev_port);
        cur = he.neighbor;
        break;
      }
    }
  }
  done_ = true;
}

coding::BitString remark_advice(std::uint64_t diameter, std::uint64_t phi) {
  return coding::concat({coding::bin(diameter), coding::bin(phi)});
}

RemarkProgram RemarkProgram::from_advice(const coding::BitString& adv) {
  std::vector<coding::BitString> parts = coding::decode(adv);
  ANOLE_CHECK(parts.size() == 2);
  return RemarkProgram(coding::parse_bin(parts[0]),
                       coding::parse_bin(parts[1]));
}

void RemarkProgram::on_view(int rounds) {
  if (done_ || rounds != diameter_ + phi_) return;
  views::ViewRepo& vr = repo();

  // All graph nodes appear within depth D of the view; their B^phi are all
  // visible (depth D + phi view). Pick the canonically smallest.
  std::vector<std::vector<ViewId>> levels{{view()}};
  for (int l = 0; l < diameter_; ++l) {
    std::unordered_set<ViewId> next;
    for (ViewId v : levels.back())
      for (const auto& [port, child] : vr.children(v)) next.insert(child);
    levels.emplace_back(next.begin(), next.end());
  }
  // Truncations of subviews land on refined depth-phi node views, which
  // carry canonical ranks: the minimum tracking is integer comparison.
  ViewId bmin = views::kInvalidView;
  for (const auto& level : levels)
    for (ViewId v : level) {
      ViewId t = vr.truncate(v, phi_);
      if (bmin == views::kInvalidView ||
          vr.compare(t, bmin) == std::strong_ordering::less)
        bmin = t;
    }
  int target_level = -1;
  for (int l = 0; l <= diameter_ && target_level < 0; ++l)
    for (ViewId v : levels[static_cast<std::size_t>(l)])
      if (vr.truncate(v, phi_) == bmin) {
        target_level = l;
        break;
      }
  ANOLE_CHECK(target_level >= 0);
  auto paths = views::best_paths(vr, view(), target_level);
  const std::vector<int>* best = nullptr;
  for (ViewId v : levels[static_cast<std::size_t>(target_level)]) {
    if (vr.truncate(v, phi_) != bmin) continue;
    const auto& path = paths.at(v).ports;
    if (best == nullptr || path < *best) best = &path;
  }
  ANOLE_CHECK(best != nullptr);
  output_ = *best;
  done_ = true;
}

}  // namespace anole::election
