#pragma once
// Baseline algorithms the paper discusses around the main results:
//
//  * MapProgram — "nodes know the map": the naive maximal advice
//    (Theta(m log n) bits, the faithful map). Elects in the minimum
//    possible time phi (Proposition 2.1's upper-bound direction).
//  * RemarkProgram — the remark after Theorem 4.1: advice (D, phi), i.e.
//    O(log D + log phi) bits, elects in time exactly D + phi.
//  * SizeOnlyProgram — advice n (O(log n) bits): runs Generic(n), valid
//    because phi <= n - 1 always; elects in time <= D + n + 1.
//
// Together with Elect and Election1..4 these populate the advice-vs-time
// frontier of experiment E9.

#include <memory>
#include <optional>

#include "election/generic.hpp"
#include "portgraph/io.hpp"
#include "sim/full_info.hpp"
#include "views/paths.hpp"
#include "views/profile.hpp"

namespace anole::election {

/// Shared decoded state of the map advice (one per run; contents identical
/// for every node, as the advice is).
struct MapAdviceState {
  portgraph::PortGraph map;
  int phi = 0;
  /// The decoded map's view profile, computed against the run's shared
  /// repo by the first node that needs it and reused by every other node
  /// (they would recompute the identical profile: same map, same repo,
  /// nodes run sequentially in node order). Mutable lazy cache — the
  /// advice content the state models stays immutable.
  mutable std::optional<views::ViewProfile> map_profile;
};

/// Builds the map advice string for g.
[[nodiscard]] coding::BitString map_advice(const portgraph::PortGraph& g);

class MapProgram final : public sim::FullInfoProgram {
 public:
  explicit MapProgram(std::shared_ptr<const MapAdviceState> state)
      : state_(std::move(state)) {}

  [[nodiscard]] bool has_output() const override { return done_; }
  [[nodiscard]] std::vector<int> output() const override { return output_; }

 protected:
  void on_view(int rounds) override;

 private:
  std::shared_ptr<const MapAdviceState> state_;
  std::vector<int> output_;
  bool done_ = false;
};

/// Advice for RemarkProgram: Concat(bin(D), bin(phi)).
[[nodiscard]] coding::BitString remark_advice(std::uint64_t diameter,
                                              std::uint64_t phi);

class RemarkProgram final : public sim::FullInfoProgram {
 public:
  RemarkProgram(std::uint64_t diameter, std::uint64_t phi)
      : diameter_(static_cast<int>(diameter)), phi_(static_cast<int>(phi)) {}

  /// Constructs from the decoded advice string.
  static RemarkProgram from_advice(const coding::BitString& adv);

  [[nodiscard]] bool has_output() const override { return done_; }
  [[nodiscard]] std::vector<int> output() const override { return output_; }

 protected:
  void on_view(int rounds) override;

 private:
  int diameter_;
  int phi_;
  std::vector<int> output_;
  bool done_ = false;
};

}  // namespace anole::election
