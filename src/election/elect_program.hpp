#pragma once
// Algorithm Elect (Algorithm 6): minimum-time leader election with the
// oracle advice of Theorem 3.1.
//
//   for i = 0..phi-1: COM(i)
//   x <- RetrieveLabel(B^phi(u), E1, E2)
//   output the port sequence of the unique simple path in the advice BFS
//   tree from the node labeled x to the node labeled 1.

#include <memory>

#include "advice/min_time.hpp"
#include "sim/full_info.hpp"

namespace anole::election {

class ElectProgram final : public sim::FullInfoProgram {
 public:
  /// All nodes receive the *same* advice object (the decoded binary
  /// string); decoding is exercised separately by the advice round-trip
  /// tests, so the simulation shares one decoded copy.
  explicit ElectProgram(std::shared_ptr<const advice::MinTimeAdvice> adv)
      : advice_(std::move(adv)) {}

  [[nodiscard]] bool has_output() const override { return done_; }
  [[nodiscard]] std::vector<int> output() const override { return output_; }

 protected:
  void on_view(int rounds) override {
    if (done_ || static_cast<std::uint64_t>(rounds) != advice_->phi) return;
    advice::Labeler labeler(repo(), advice_->e1, advice_->e2);
    std::uint64_t label = labeler.retrieve_label(view());
    output_ = advice_->bfs_tree.path_ports(label, 1);
    done_ = true;
  }

 private:
  std::shared_ptr<const advice::MinTimeAdvice> advice_;
  std::vector<int> output_;
  bool done_ = false;
};

}  // namespace anole::election
