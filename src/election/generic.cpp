#include "election/generic.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/math.hpp"
#include "views/paths.hpp"

namespace anole::election {

using views::ViewId;

void GenericProgram::on_view(int rounds) {
  // After `rounds` rounds the node holds B = B^rounds. The first check of
  // the repeat loop happens after COM(x), i.e. with B^{x+1} in hand
  // (r = rounds - 1 in the paper's indexing).
  if (done_ || rounds < x_ + 1) return;
  views::ViewRepo& vr = repo();

  // Level sets of the view DAG: level l holds the distinct views of the
  // tree nodes at depth l (views of depth rounds - l).
  int max_level = rounds - x_;  // deepest level whose B^x is visible
  std::vector<std::vector<ViewId>> levels{{view()}};
  for (int l = 0; l < max_level; ++l) {
    std::unordered_set<ViewId> next;
    for (ViewId v : levels.back())
      for (const auto& [port, child] : vr.children(v)) next.insert(child);
    levels.emplace_back(next.begin(), next.end());
  }

  // X: depth-x views of tree nodes at depth <= r - x = rounds - 1 - x.
  // Y: depth-x views at depth exactly r - x + 1 = rounds - x.
  std::unordered_set<ViewId> x_set;
  for (int l = 0; l <= max_level - 1; ++l)
    for (ViewId v : levels[static_cast<std::size_t>(l)])
      x_set.insert(vr.truncate(v, x_));
  bool y_subset = true;
  for (ViewId v : levels[static_cast<std::size_t>(max_level)]) {
    if (!x_set.contains(vr.truncate(v, x_))) {
      y_subset = false;
      break;
    }
  }
  if (!y_subset) return;

  // Bmin: canonically smallest depth-x view seen. Depth-x views of graph
  // nodes are refined (hence ranked) in every harness flow, so this
  // per-round minimum tracking is integer rank comparison (DESIGN.md §8).
  ViewId bmin = views::kInvalidView;
  for (ViewId v : x_set)
    if (bmin == views::kInvalidView ||
        vr.compare(v, bmin) == std::strong_ordering::less)
      bmin = v;

  // W: records of smallest tree depth whose depth-x view is Bmin; among
  // them, the lexicographically smallest port sequence.
  int target_level = -1;
  for (int l = 0; l <= max_level && target_level < 0; ++l)
    for (ViewId v : levels[static_cast<std::size_t>(l)])
      if (vr.truncate(v, x_) == bmin) {
        target_level = l;
        break;
      }
  ANOLE_CHECK(target_level >= 0);

  auto paths = views::best_paths(vr, view(), target_level);
  const std::vector<int>* best = nullptr;
  for (ViewId v : levels[static_cast<std::size_t>(target_level)]) {
    if (vr.truncate(v, x_) != bmin) continue;
    const auto& path = paths.at(v).ports;
    if (best == nullptr || path < *best) best = &path;
  }
  ANOLE_CHECK(best != nullptr);
  output_ = *best;
  done_ = true;
}

coding::BitString large_time_advice(LargeTimeVariant variant,
                                    std::uint64_t phi) {
  ANOLE_CHECK(phi >= 1);
  switch (variant) {
    case LargeTimeVariant::kPhiPlusC:
      return coding::bin(phi);
    case LargeTimeVariant::kCTimesPhi:
      return coding::bin(util::floor_log2(phi));
    case LargeTimeVariant::kPhiPowC:
      // floor(log log phi); clamp the phi < 2 edge to 0.
      return coding::bin(
          phi < 2 ? 0 : util::floor_log2(util::floor_log2(phi) == 0
                                             ? 1
                                             : util::floor_log2(phi)));
    case LargeTimeVariant::kCPowPhi:
      return coding::bin(util::log_star(phi));
  }
  ANOLE_CHECK_MSG(false, "bad variant");
  return {};
}

std::uint64_t large_time_parameter(LargeTimeVariant variant,
                                   const coding::BitString& adv) {
  std::uint64_t v = coding::parse_bin(adv);
  switch (variant) {
    case LargeTimeVariant::kPhiPlusC:
      return v;  // P1 = phi
    case LargeTimeVariant::kCTimesPhi:
      return (UINT64_C(1) << (v + 1)) - 1;  // P2 = 2^{floor(log phi)+1} - 1
    case LargeTimeVariant::kPhiPowC:
      // P3 = 2^(2^{floor(log log phi)+1}) - 1
      return util::ipow(2, UINT64_C(1) << (v + 1)) - 1;
    case LargeTimeVariant::kCPowPhi:
      // P4 = tower(log* phi + 1, 2) - 1
      return util::tower(static_cast<std::uint32_t>(v) + 1, 2) - 1;
  }
  ANOLE_CHECK_MSG(false, "bad variant");
  return 0;
}

std::uint64_t large_time_bound(LargeTimeVariant variant,
                               std::uint64_t diameter, std::uint64_t phi,
                               std::uint64_t c) {
  switch (variant) {
    case LargeTimeVariant::kPhiPlusC:
      return diameter + phi + c;
    case LargeTimeVariant::kCTimesPhi:
      return diameter + c * phi;
    case LargeTimeVariant::kPhiPowC:
      return diameter + util::ipow(phi, c);
    case LargeTimeVariant::kCPowPhi:
      return diameter + util::ipow(c, phi);
  }
  ANOLE_CHECK_MSG(false, "bad variant");
  return 0;
}

}  // namespace anole::election
