#pragma once
// Algorithm Generic(x) (Algorithm 7) and the four large-time election
// algorithms Election1..4 built on it (Algorithm 8 / Theorem 4.1), plus
// the advice encodings A_1..A_4.
//
// Generic(x), for any x >= phi: acquire B^x, then keep exchanging views;
// in the round where the set Y of depth-x views discovered at the frontier
// is contained in the set X of those already known, all depth-x views of
// the graph have been seen — output the (shortest, lexicographically
// smallest) path to the node with the canonically smallest depth-x view.
// Works in time <= D + x + 1 (Lemma 4.1).

#include <cstdint>

#include "coding/codec.hpp"
#include "sim/full_info.hpp"

namespace anole::election {

class GenericProgram : public sim::FullInfoProgram {
 public:
  explicit GenericProgram(std::uint64_t x) : x_(static_cast<int>(x)) {
    ANOLE_CHECK(x >= 1);
  }

  [[nodiscard]] bool has_output() const override { return done_; }
  [[nodiscard]] std::vector<int> output() const override { return output_; }

 protected:
  void on_view(int rounds) override;

 private:
  int x_;
  bool done_ = false;
  std::vector<int> output_;
};

/// The four time regimes of Section 4: offsets phi+c, c*phi, phi^c, c^phi
/// above the diameter.
enum class LargeTimeVariant {
  kPhiPlusC = 1,   ///< Election1: advice bin(phi),             size Θ(log phi)
  kCTimesPhi = 2,  ///< Election2: advice bin(floor(log phi)),  size Θ(log log phi)
  kPhiPowC = 3,    ///< Election3: advice bin(floor(log log phi))
  kCPowPhi = 4,    ///< Election4: advice bin(log* phi)
};

/// The advice string A_i for the given variant and election index.
[[nodiscard]] coding::BitString large_time_advice(LargeTimeVariant variant,
                                                  std::uint64_t phi);

/// The parameter P_i >= phi that Election_i derives from its advice.
[[nodiscard]] std::uint64_t large_time_parameter(LargeTimeVariant variant,
                                                 const coding::BitString& adv);

/// The time bound D + offset_i(phi, c) that Theorem 4.1 proves for
/// Election_i. (For variant 3 the bound holds for phi >= 2; phi = 1 is
/// covered by variants 1/2 — see the Theorem 4.1 proof, which uses
/// phi^c >= phi^2.)
[[nodiscard]] std::uint64_t large_time_bound(LargeTimeVariant variant,
                                             std::uint64_t diameter,
                                             std::uint64_t phi, std::uint64_t c);

}  // namespace anole::election
