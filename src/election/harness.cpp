#include "election/harness.hpp"

#include <memory>
#include <utility>

#include "advice/min_time.hpp"
#include "election/baselines.hpp"
#include "election/elect_program.hpp"
#include "sim/full_info.hpp"
#include "views/profile.hpp"

namespace anole::election {

using portgraph::PortGraph;

namespace {

using ProgramList = std::vector<std::unique_ptr<sim::NodeProgram>>;

ElectionRun run_programs(const PortGraph& g, views::ViewRepo& repo,
                         ProgramList programs, int max_rounds,
                         bool meter_messages = false,
                         const util::CancelToken* cancel = nullptr) {
  // Every protocol in the portfolio is COM-style (a FullInfoProgram), so
  // rounds advance through batched refinement; run_full_info falls back to
  // the general engine by itself if that ever stops being true.
  ElectionRun run;
  run.metrics = sim::run_full_info(g, repo, programs, max_rounds,
                                   meter_messages, /*pool=*/nullptr,
                                   /*refiner=*/nullptr, cancel);
  run.verdict = run.metrics.timed_out
                    ? VerifyResult{false, -1, "simulation timed out"}
                    : verify_election(g, run.metrics.outputs);
  return run;
}

/// Runs a freshly built ProgramSet and fills the bookkeeping every
/// entry point shares.
ElectionRun run_set(ElectionContext& ctx, ProgramSet set,
                    bool meter_messages = false,
                    const util::CancelToken* cancel = nullptr) {
  ElectionRun run = run_programs(ctx.g, ctx.repo(), std::move(set.programs),
                                 set.max_rounds, meter_messages, cancel);
  run.advice_bits = set.advice_bits;
  run.phi = ctx.phi();
  return run;
}

}  // namespace

ProgramSet make_min_time_programs(ElectionContext& ctx) {
  ANOLE_CHECK_MSG(ctx.feasible(), "min-time programs on an infeasible graph");
  ANOLE_CHECK_MSG(ctx.profile.keep_history,
                  "min-time programs need a context with level history");
  advice::MinTimeAdvice adv =
      advice::compute_advice(ctx.g, ctx.repo(), ctx.profile);
  coding::BitString bits = adv.to_bits();
  // Round-trip through the binary string: the nodes run on what the oracle
  // actually transmits.
  auto decoded = std::make_shared<const advice::MinTimeAdvice>(
      advice::MinTimeAdvice::from_bits(bits));

  ProgramSet set;
  for (std::size_t v = 0; v < ctx.g.n(); ++v)
    set.programs.push_back(std::make_unique<ElectProgram>(decoded));
  set.max_rounds = ctx.phi() + 1;
  set.advice_bits = bits.size();
  return set;
}

ProgramSet make_large_time_programs(ElectionContext& ctx,
                                    LargeTimeVariant variant,
                                    std::uint64_t c) {
  ANOLE_CHECK(c >= 2);
  ANOLE_CHECK_MSG(ctx.feasible(),
                  "large-time programs on an infeasible graph");
  std::uint64_t phi = static_cast<std::uint64_t>(ctx.phi());
  coding::BitString bits = large_time_advice(variant, phi);
  std::uint64_t p = large_time_parameter(variant, bits);
  ANOLE_CHECK_MSG(p >= phi, "P_i < phi — advice decoding broken");

  ProgramSet set;
  for (std::size_t v = 0; v < ctx.g.n(); ++v)
    set.programs.push_back(std::make_unique<GenericProgram>(p));
  set.max_rounds = ctx.diameter() + static_cast<int>(p) + 2;
  set.advice_bits = bits.size();
  return set;
}

ProgramSet make_map_programs(ElectionContext& ctx) {
  ANOLE_CHECK_MSG(ctx.feasible(), "map programs on an infeasible graph");
  coding::BitString bits = map_advice(ctx.g);
  auto state = std::make_shared<MapAdviceState>();
  state->map = portgraph::decode_graph(bits);
  state->phi = ctx.phi();

  ProgramSet set;
  for (std::size_t v = 0; v < ctx.g.n(); ++v)
    set.programs.push_back(std::make_unique<MapProgram>(state));
  set.max_rounds = ctx.phi() + 1;
  set.advice_bits = bits.size();
  return set;
}

ProgramSet make_remark_programs(ElectionContext& ctx) {
  ANOLE_CHECK_MSG(ctx.feasible(), "remark programs on an infeasible graph");
  int diameter = ctx.diameter();
  std::uint64_t phi = static_cast<std::uint64_t>(ctx.phi());
  coding::BitString bits =
      remark_advice(static_cast<std::uint64_t>(diameter), phi);

  ProgramSet set;
  for (std::size_t v = 0; v < ctx.g.n(); ++v) {
    set.programs.push_back(std::make_unique<RemarkProgram>(
        RemarkProgram::from_advice(bits)));
  }
  set.max_rounds = diameter + static_cast<int>(phi) + 1;
  set.advice_bits = bits.size();
  return set;
}

ProgramSet make_size_only_programs(ElectionContext& ctx) {
  ANOLE_CHECK_MSG(ctx.feasible(),
                  "size-only programs on an infeasible graph");
  coding::BitString bits = coding::bin(ctx.g.n());
  std::uint64_t p = coding::parse_bin(bits);

  ProgramSet set;
  for (std::size_t v = 0; v < ctx.g.n(); ++v)
    set.programs.push_back(std::make_unique<GenericProgram>(p));
  set.max_rounds = ctx.diameter() + static_cast<int>(p) + 2;
  set.advice_bits = bits.size();
  return set;
}

ElectionRun run_min_time(ElectionContext& ctx, bool meter_messages,
                         const util::CancelToken* cancel) {
  // Advice construction is not round-structured, so the checkpoint
  // brackets it: once before (a query arriving already expired never
  // builds tries) and per simulated round after.
  if (cancel != nullptr) cancel->check();
  return run_set(ctx, make_min_time_programs(ctx), meter_messages, cancel);
}

ElectionRun run_min_time(const PortGraph& g, bool meter_messages) {
  ElectionContext ctx(g);
  return run_min_time(ctx, meter_messages);
}

ElectionRun run_large_time(ElectionContext& ctx, LargeTimeVariant variant,
                           std::uint64_t c) {
  ElectionRun run = run_set(ctx, make_large_time_programs(ctx, variant, c));
  run.diameter = ctx.diameter();
  return run;
}

ElectionRun run_large_time(const PortGraph& g, LargeTimeVariant variant,
                           std::uint64_t c) {
  // Only feasibility + phi are read: no need to retain every level.
  ElectionContext ctx(g, /*keep_history=*/false);
  return run_large_time(ctx, variant, c);
}

ElectionRun run_map(ElectionContext& ctx) {
  return run_set(ctx, make_map_programs(ctx));
}

ElectionRun run_map(const PortGraph& g) {
  // The nodes share one profile of the decoded map (MapAdviceState); the
  // harness itself only needs phi, so the history is dropped here.
  ElectionContext ctx(g, /*keep_history=*/false);
  return run_map(ctx);
}

ElectionRun run_remark(ElectionContext& ctx) {
  ElectionRun run = run_set(ctx, make_remark_programs(ctx));
  run.diameter = ctx.diameter();
  return run;
}

ElectionRun run_remark(const PortGraph& g) {
  ElectionContext ctx(g, /*keep_history=*/false);
  return run_remark(ctx);
}

ElectionRun run_size_only(ElectionContext& ctx) {
  ElectionRun run = run_set(ctx, make_size_only_programs(ctx));
  run.diameter = ctx.diameter();
  return run;
}

ElectionRun run_size_only(const PortGraph& g) {
  ElectionContext ctx(g, /*keep_history=*/false);
  return run_size_only(ctx);
}

}  // namespace anole::election
