#include "election/harness.hpp"

#include <memory>

#include "advice/min_time.hpp"
#include "election/baselines.hpp"
#include "election/elect_program.hpp"
#include "sim/full_info.hpp"
#include "views/profile.hpp"

namespace anole::election {

using portgraph::PortGraph;

namespace {

using ProgramList = std::vector<std::unique_ptr<sim::NodeProgram>>;

ElectionRun run_programs(const PortGraph& g, views::ViewRepo& repo,
                         ProgramList programs, int max_rounds,
                         bool meter_messages = false) {
  // Every protocol in the portfolio is COM-style (a FullInfoProgram), so
  // rounds advance through batched refinement; run_full_info falls back to
  // the general engine by itself if that ever stops being true.
  ElectionRun run;
  run.metrics = sim::run_full_info(g, repo, programs, max_rounds,
                                   meter_messages);
  run.verdict = run.metrics.timed_out
                    ? VerifyResult{false, -1, "simulation timed out"}
                    : verify_election(g, run.metrics.outputs);
  return run;
}

}  // namespace

ElectionRun run_min_time(ElectionContext& ctx, bool meter_messages) {
  ANOLE_CHECK_MSG(ctx.feasible(), "run_min_time on an infeasible graph");
  ANOLE_CHECK_MSG(ctx.profile.keep_history,
                  "run_min_time needs a context with level history");
  advice::MinTimeAdvice adv =
      advice::compute_advice(ctx.g, ctx.repo(), ctx.profile);
  coding::BitString bits = adv.to_bits();
  // Round-trip through the binary string: the nodes run on what the oracle
  // actually transmits.
  auto decoded = std::make_shared<const advice::MinTimeAdvice>(
      advice::MinTimeAdvice::from_bits(bits));

  ProgramList programs;
  for (std::size_t v = 0; v < ctx.g.n(); ++v)
    programs.push_back(std::make_unique<ElectProgram>(decoded));
  ElectionRun run = run_programs(ctx.g, ctx.repo(), std::move(programs),
                                 ctx.phi() + 1, meter_messages);
  run.advice_bits = bits.size();
  run.phi = ctx.phi();
  return run;
}

ElectionRun run_min_time(const PortGraph& g, bool meter_messages) {
  ElectionContext ctx(g);
  return run_min_time(ctx, meter_messages);
}

ElectionRun run_large_time(ElectionContext& ctx, LargeTimeVariant variant,
                           std::uint64_t c) {
  ANOLE_CHECK(c >= 2);
  ANOLE_CHECK_MSG(ctx.feasible(), "run_large_time on an infeasible graph");
  std::uint64_t phi = static_cast<std::uint64_t>(ctx.phi());
  coding::BitString bits = large_time_advice(variant, phi);
  std::uint64_t p = large_time_parameter(variant, bits);
  ANOLE_CHECK_MSG(p >= phi, "P_i < phi — advice decoding broken");

  int diameter = ctx.diameter();
  ProgramList programs;
  for (std::size_t v = 0; v < ctx.g.n(); ++v)
    programs.push_back(std::make_unique<GenericProgram>(p));
  ElectionRun run = run_programs(ctx.g, ctx.repo(), std::move(programs),
                                 diameter + static_cast<int>(p) + 2);
  run.advice_bits = bits.size();
  run.phi = ctx.phi();
  run.diameter = diameter;
  return run;
}

ElectionRun run_large_time(const PortGraph& g, LargeTimeVariant variant,
                           std::uint64_t c) {
  // Only feasibility + phi are read: no need to retain every level.
  ElectionContext ctx(g, /*keep_history=*/false);
  return run_large_time(ctx, variant, c);
}

ElectionRun run_map(ElectionContext& ctx) {
  ANOLE_CHECK_MSG(ctx.feasible(), "run_map on an infeasible graph");
  coding::BitString bits = map_advice(ctx.g);
  auto state = std::make_shared<MapAdviceState>();
  state->map = portgraph::decode_graph(bits);
  state->phi = ctx.phi();

  ProgramList programs;
  for (std::size_t v = 0; v < ctx.g.n(); ++v)
    programs.push_back(std::make_unique<MapProgram>(state));
  ElectionRun run = run_programs(ctx.g, ctx.repo(), std::move(programs),
                                 ctx.phi() + 1);
  run.advice_bits = bits.size();
  run.phi = ctx.phi();
  return run;
}

ElectionRun run_map(const PortGraph& g) {
  // The nodes share one profile of the decoded map (MapAdviceState); the
  // harness itself only needs phi, so the history is dropped here.
  ElectionContext ctx(g, /*keep_history=*/false);
  return run_map(ctx);
}

ElectionRun run_remark(ElectionContext& ctx) {
  ANOLE_CHECK_MSG(ctx.feasible(), "run_remark on an infeasible graph");
  int diameter = ctx.diameter();
  std::uint64_t phi = static_cast<std::uint64_t>(ctx.phi());
  coding::BitString bits =
      remark_advice(static_cast<std::uint64_t>(diameter), phi);

  ProgramList programs;
  for (std::size_t v = 0; v < ctx.g.n(); ++v) {
    programs.push_back(std::make_unique<RemarkProgram>(
        RemarkProgram::from_advice(bits)));
  }
  ElectionRun run = run_programs(ctx.g, ctx.repo(), std::move(programs),
                                 diameter + static_cast<int>(phi) + 1);
  run.advice_bits = bits.size();
  run.phi = ctx.phi();
  run.diameter = diameter;
  return run;
}

ElectionRun run_remark(const PortGraph& g) {
  ElectionContext ctx(g, /*keep_history=*/false);
  return run_remark(ctx);
}

ElectionRun run_size_only(ElectionContext& ctx) {
  ANOLE_CHECK_MSG(ctx.feasible(), "run_size_only on an infeasible graph");
  coding::BitString bits = coding::bin(ctx.g.n());
  std::uint64_t p = coding::parse_bin(bits);

  int diameter = ctx.diameter();
  ProgramList programs;
  for (std::size_t v = 0; v < ctx.g.n(); ++v)
    programs.push_back(std::make_unique<GenericProgram>(p));
  ElectionRun run = run_programs(ctx.g, ctx.repo(), std::move(programs),
                                 diameter + static_cast<int>(p) + 2);
  run.advice_bits = bits.size();
  run.phi = ctx.phi();
  run.diameter = diameter;
  return run;
}

ElectionRun run_size_only(const PortGraph& g) {
  ElectionContext ctx(g, /*keep_history=*/false);
  return run_size_only(ctx);
}

}  // namespace anole::election
