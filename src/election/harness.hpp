#pragma once
// One-call harness: build the advice, run the protocol on the LOCAL
// engine, verify the outputs, and report rounds/advice-size — the unit of
// work for examples, tests and every experiment table.
//
// Every entry point exists in two forms: a per-graph convenience overload
// that sets up everything itself, and an ElectionContext overload through
// which callers running several algorithms on ONE graph (the eight-row
// portfolio of E9 / anole_inspect --elect, the E7 map check) share a
// single ViewRepo + ViewProfile + memoized diameter instead of
// recomputing the refinement from scratch per algorithm. Sharing is safe:
// every run's verdict, rounds and advice bits depend only on the graph
// structure and the canonical view order, never on repo pre-state.

#include <cstdint>
#include <memory>

#include "election/generic.hpp"
#include "election/verify.hpp"
#include "sim/engine.hpp"
#include "util/cancel.hpp"
#include "util/thread_pool.hpp"
#include "views/profile.hpp"

namespace anole::election {

/// Per-graph shared state for running several election algorithms on the
/// same graph: one repo, one profile (full history by default, so
/// ComputeAdvice's level walks work), one diameter computation (memoized
/// inside PortGraph). Borrow semantics: the graph must outlive the
/// context.
///
/// By default a context owns a private ViewRepo. A sweep can instead pass
/// one shared repo (and optionally a thread pool for the parallel intern
/// stage): ViewRepo is thread-safe, structurally equal views interned for
/// different graphs share records, and the rank-merge machinery (DESIGN.md
/// §8) keeps the canonical order coherent across graphs — every run's
/// verdict, rounds and advice bits depend only on the graph structure and
/// that order, never on repo pre-state. The context itself (its profile,
/// its memoized diameter) is still single-threaded — one context per cell.
struct ElectionContext {
  /// keep_history = false retains only the deepest level (use when no
  /// algorithm needing level history — run_min_time — will run).
  /// `shared_repo == nullptr` makes the context own a private repo; a
  /// non-null repo must outlive the context. `pool` parallelizes the
  /// profile's refinement (gather + intern), nothing else.
  explicit ElectionContext(const portgraph::PortGraph& graph,
                           bool keep_history = true,
                           views::ViewRepo* shared_repo = nullptr,
                           util::ThreadPool* pool = nullptr)
      : g(graph),
        owned_repo_(shared_repo == nullptr ? std::make_unique<views::ViewRepo>()
                                           : nullptr),
        repo_(shared_repo != nullptr ? shared_repo : owned_repo_.get()),
        profile(views::compute_profile(
            graph, *repo_,
            views::ProfileOptions{.min_depth = keep_history ? 1 : 0,
                                  .keep_history = keep_history,
                                  .pool = pool})) {}

  /// Wraps an externally maintained profile without recomputing anything —
  /// the fault loop (sim::run_with_faults) keeps one profile current
  /// across epochs via views::repair_profile and builds a context per
  /// epoch around it. The profile is copied; it must describe `graph`,
  /// be interned in `repo`, and carry level history.
  ElectionContext(const portgraph::PortGraph& graph, views::ViewRepo& repo,
                  const views::ViewProfile& ready_profile)
      : g(graph), repo_(&repo), profile(ready_profile) {}
  ElectionContext(const ElectionContext&) = delete;
  ElectionContext& operator=(const ElectionContext&) = delete;

  [[nodiscard]] bool feasible() const { return profile.feasible; }
  [[nodiscard]] int phi() const { return profile.election_index; }
  [[nodiscard]] int diameter() const { return g.diameter(); }
  [[nodiscard]] views::ViewRepo& repo() const { return *repo_; }

  const portgraph::PortGraph& g;

 private:
  std::unique_ptr<views::ViewRepo> owned_repo_;  ///< null when sharing
  views::ViewRepo* repo_;  ///< the repo every algorithm interns through

 public:
  views::ViewProfile profile;
};

struct ElectionRun {
  VerifyResult verdict;
  sim::RunMetrics metrics;
  std::size_t advice_bits = 0;
  int phi = -1;       ///< election index of the input graph
  int diameter = -1;  ///< filled when the harness needed it (else -1)

  [[nodiscard]] bool ok() const { return verdict.ok && !metrics.timed_out; }
};

/// Program construction split out of the run_* entry points, so drivers
/// other than the synchronous engine — AsyncEngine under an adversarial
/// schedule, sim::run_with_faults across fault epochs — can run the very
/// same protocol instances the harness would. `max_rounds` is the round
/// budget the matching run_* entry point allots: the synchronous time
/// bound within which the protocol is guaranteed to decide on a static
/// graph.
struct ProgramSet {
  std::vector<std::unique_ptr<sim::NodeProgram>> programs;
  int max_rounds = 0;
  std::size_t advice_bits = 0;
};

/// The builders behind run_min_time / run_large_time / run_map /
/// run_remark / run_size_only, one call each. All require ctx.feasible();
/// make_min_time_programs additionally needs level history.
[[nodiscard]] ProgramSet make_min_time_programs(ElectionContext& ctx);
[[nodiscard]] ProgramSet make_large_time_programs(ElectionContext& ctx,
                                                  LargeTimeVariant variant,
                                                  std::uint64_t c);
[[nodiscard]] ProgramSet make_map_programs(ElectionContext& ctx);
[[nodiscard]] ProgramSet make_remark_programs(ElectionContext& ctx);
[[nodiscard]] ProgramSet make_size_only_programs(ElectionContext& ctx);

/// Theorem 3.1: ComputeAdvice + Elect. Elects in exactly phi rounds.
/// The context form needs level history (ElectionContext's default).
/// `cancel`, when given, is polled per simulated round (DESIGN.md §14);
/// an expired token aborts with util::CancelledError, leaving the
/// context and its repo fully usable.
[[nodiscard]] ElectionRun run_min_time(ElectionContext& ctx,
                                       bool meter_messages = false,
                                       const util::CancelToken* cancel =
                                           nullptr);
[[nodiscard]] ElectionRun run_min_time(const portgraph::PortGraph& g,
                                       bool meter_messages = false);

/// Theorem 4.1: Election_i for the given variant and constant c > 1.
[[nodiscard]] ElectionRun run_large_time(ElectionContext& ctx,
                                         LargeTimeVariant variant,
                                         std::uint64_t c);
[[nodiscard]] ElectionRun run_large_time(const portgraph::PortGraph& g,
                                         LargeTimeVariant variant,
                                         std::uint64_t c);

/// Baseline: full-map advice, elects in phi rounds.
[[nodiscard]] ElectionRun run_map(ElectionContext& ctx);
[[nodiscard]] ElectionRun run_map(const portgraph::PortGraph& g);

/// Baseline (remark after Thm 4.1): advice (D, phi), elects in D + phi.
[[nodiscard]] ElectionRun run_remark(ElectionContext& ctx);
[[nodiscard]] ElectionRun run_remark(const portgraph::PortGraph& g);

/// Baseline: advice n only; Generic(n), elects in <= D + n + 1.
[[nodiscard]] ElectionRun run_size_only(ElectionContext& ctx);
[[nodiscard]] ElectionRun run_size_only(const portgraph::PortGraph& g);

}  // namespace anole::election
