#pragma once
// One-call harness: build the advice, run the protocol on the LOCAL
// engine, verify the outputs, and report rounds/advice-size — the unit of
// work for examples, tests and every experiment table.

#include <cstdint>

#include "election/generic.hpp"
#include "election/verify.hpp"
#include "sim/engine.hpp"

namespace anole::election {

struct ElectionRun {
  VerifyResult verdict;
  sim::RunMetrics metrics;
  std::size_t advice_bits = 0;
  int phi = -1;       ///< election index of the input graph
  int diameter = -1;  ///< filled when the harness needed it (else -1)

  [[nodiscard]] bool ok() const { return verdict.ok && !metrics.timed_out; }
};

/// Theorem 3.1: ComputeAdvice + Elect. Elects in exactly phi rounds.
[[nodiscard]] ElectionRun run_min_time(const portgraph::PortGraph& g,
                                       bool meter_messages = false);

/// Theorem 4.1: Election_i for the given variant and constant c > 1.
[[nodiscard]] ElectionRun run_large_time(const portgraph::PortGraph& g,
                                         LargeTimeVariant variant,
                                         std::uint64_t c);

/// Baseline: full-map advice, elects in phi rounds.
[[nodiscard]] ElectionRun run_map(const portgraph::PortGraph& g);

/// Baseline (remark after Thm 4.1): advice (D, phi), elects in D + phi.
[[nodiscard]] ElectionRun run_remark(const portgraph::PortGraph& g);

/// Baseline: advice n only; Generic(n), elects in <= D + n + 1.
[[nodiscard]] ElectionRun run_size_only(const portgraph::PortGraph& g);

}  // namespace anole::election
