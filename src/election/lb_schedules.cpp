#include "election/lb_schedules.hpp"

#include <cmath>

#include "util/math.hpp"

namespace anole::election {

namespace {
constexpr std::uint64_t kCap = UINT64_C(1) << 62;
}

std::uint64_t lb_time_offset(LargeTimeVariant variant, std::uint64_t x,
                             std::uint64_t c) {
  switch (variant) {
    case LargeTimeVariant::kPhiPlusC:
      return x + c;
    case LargeTimeVariant::kCTimesPhi:
      return c * x;
    case LargeTimeVariant::kPhiPowC:
      return util::ipow(x, c);
    case LargeTimeVariant::kCPowPhi:
      return util::ipow(c, x);
  }
  ANOLE_CHECK_MSG(false, "bad variant");
  return 0;
}

std::uint64_t lb_index_budget(LargeTimeVariant variant, std::uint64_t x,
                              std::uint64_t c) {
  switch (variant) {
    case LargeTimeVariant::kPhiPlusC:
      return (c + 2) * x + 1;
    case LargeTimeVariant::kCTimesPhi:
      return util::ipow(c + 2, x);
    case LargeTimeVariant::kPhiPowC: {
      std::uint64_t e = util::ipow(c, 3 * x);
      if (e >= 62 + c) return kCap;
      return util::ipow(2, e - c);
    }
    case LargeTimeVariant::kCPowPhi: {
      std::uint64_t t = util::tower(static_cast<std::uint32_t>(x), c);
      return t >= 62 ? kCap : util::ipow(2, t);
    }
  }
  ANOLE_CHECK_MSG(false, "bad variant");
  return 0;
}

std::uint64_t lb_k_star(LargeTimeVariant variant, std::uint64_t alpha,
                        std::uint64_t c) {
  if (variant == LargeTimeVariant::kPhiPlusC)
    return alpha >= 1 ? (alpha - 1) / (c + 2) : 0;  // closed form
  std::uint64_t k = 0;
  for (;;) {
    std::uint64_t b = lb_index_budget(variant, k + 1, c);
    if (b > alpha || b >= kCap) break;  // saturation guard
    ++k;
  }
  return k;
}

double lb_growth(LargeTimeVariant variant, std::uint64_t alpha) {
  double a = static_cast<double>(alpha);
  switch (variant) {
    case LargeTimeVariant::kPhiPlusC:
      return a;
    case LargeTimeVariant::kCTimesPhi:
      return std::log2(a);
    case LargeTimeVariant::kPhiPowC:
      return std::log2(std::max(2.0, std::log2(a)));
    case LargeTimeVariant::kCPowPhi:
      return static_cast<double>(util::log_star(alpha));
  }
  ANOLE_CHECK_MSG(false, "bad variant");
  return 0;
}

}  // namespace anole::election
