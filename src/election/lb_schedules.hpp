#pragma once
// The parametrization of Theorem 4.2's inductive lower-bound construction:
// for each of the four time regimes, the proof picks functions
//   A(x,c) — the time offset above D the algorithm is allowed,
//   B(x,c) — the election-index budget of the k-th sequence T_k,
//   R(alpha) — the growth of k* (the number of sequences, hence of
//              necessarily-distinct advice strings) in alpha,
// and k* is maximal with B(k*, c) <= alpha. The minimum advice is then
// Omega(log k*) = Omega(log R(alpha)).
//
//   part 1 (D+phi+c):  A = x+c,  B = (c+2)x + 1,        R = alpha
//   part 2 (D+c*phi):  A = cx,   B = (c+2)^x,           R = log alpha
//   part 3 (D+phi^c):  A = x^c,  B = 2^(c^(3x) - c),    R = log log alpha
//   part 4 (D+c^phi):  A = c^x,  B = 2^tower(x, c),     R = log* alpha

#include <cstdint>

#include "election/generic.hpp"

namespace anole::election {

/// A(x, c) for the given regime (saturating at 2^62).
[[nodiscard]] std::uint64_t lb_time_offset(LargeTimeVariant variant,
                                           std::uint64_t x, std::uint64_t c);

/// B(x, c) for the given regime (saturating at 2^62).
[[nodiscard]] std::uint64_t lb_index_budget(LargeTimeVariant variant,
                                            std::uint64_t x, std::uint64_t c);

/// k* = max { k : B(k, c) <= alpha }.
[[nodiscard]] std::uint64_t lb_k_star(LargeTimeVariant variant,
                                      std::uint64_t alpha, std::uint64_t c);

/// The paper's R(alpha) for the regime — the asymptotic shape k* follows
/// (returned as a double for table normalization).
[[nodiscard]] double lb_growth(LargeTimeVariant variant, std::uint64_t alpha);

}  // namespace anole::election
