#include "election/verify.hpp"

#include <sstream>
#include <unordered_set>

namespace anole::election {

using portgraph::NodeId;

VerifyResult verify_election(const portgraph::PortGraph& g,
                             const std::vector<std::vector<int>>& outputs) {
  VerifyResult result;
  if (outputs.size() != g.n()) {
    result.error = "outputs missing for some nodes";
    return result;
  }
  NodeId leader = -1;
  for (std::size_t v = 0; v < g.n(); ++v) {
    auto nodes = g.walk(static_cast<NodeId>(v), outputs[v]);
    if (!nodes) {
      std::ostringstream oss;
      oss << "node " << v << ": output does not code a valid walk";
      result.error = oss.str();
      return result;
    }
    std::unordered_set<NodeId> seen(nodes->begin(), nodes->end());
    if (seen.size() != nodes->size()) {
      std::ostringstream oss;
      oss << "node " << v << ": path is not simple";
      result.error = oss.str();
      return result;
    }
    NodeId end = nodes->back();
    if (leader < 0) {
      leader = end;
    } else if (end != leader) {
      std::ostringstream oss;
      oss << "node " << v << " elected " << end << " but earlier nodes elected "
          << leader;
      result.error = oss.str();
      return result;
    }
  }
  result.ok = true;
  result.leader = leader;
  return result;
}

}  // namespace anole::election
