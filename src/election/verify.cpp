#include "election/verify.hpp"

#include <sstream>
#include <unordered_set>

namespace anole::election {

using portgraph::NodeId;

VerifyResult verify_election(const portgraph::PortGraph& g,
                             const std::vector<std::vector<int>>& outputs) {
  VerifyResult result;
  if (outputs.size() != g.n()) {
    result.error = "outputs missing for some nodes";
    return result;
  }
  NodeId leader = -1;
  for (std::size_t v = 0; v < g.n(); ++v) {
    auto nodes = g.walk(static_cast<NodeId>(v), outputs[v]);
    if (!nodes) {
      std::ostringstream oss;
      oss << "node " << v << ": output does not code a valid walk";
      result.error = oss.str();
      return result;
    }
    std::unordered_set<NodeId> seen(nodes->begin(), nodes->end());
    if (seen.size() != nodes->size()) {
      std::ostringstream oss;
      oss << "node " << v << ": path is not simple";
      result.error = oss.str();
      return result;
    }
    NodeId end = nodes->back();
    if (leader < 0) {
      leader = end;
    } else if (end != leader) {
      std::ostringstream oss;
      oss << "node " << v << " elected " << end << " but earlier nodes elected "
          << leader;
      result.error = oss.str();
      return result;
    }
  }
  result.ok = true;
  result.leader = leader;
  return result;
}

SafetyResult verify_safety_under_faults(
    const portgraph::PortGraph& g,
    const std::vector<std::vector<int>>& outputs,
    const std::vector<int>& decision_round) {
  SafetyResult result;
  if (outputs.size() != g.n() || decision_round.size() != g.n()) {
    result.error = "outputs/decision_round size mismatch";
    return result;
  }
  for (std::size_t v = 0; v < g.n(); ++v) {
    if (decision_round[v] < 0) continue;  // undecided: nothing to check
    auto nodes = g.walk(static_cast<NodeId>(v), outputs[v]);
    if (!nodes) {
      std::ostringstream oss;
      oss << "decided node " << v << ": output does not code a valid walk";
      result.error = oss.str();
      return result;
    }
    std::unordered_set<NodeId> seen(nodes->begin(), nodes->end());
    if (seen.size() != nodes->size()) {
      std::ostringstream oss;
      oss << "decided node " << v << ": path is not simple";
      result.error = oss.str();
      return result;
    }
    ++result.decided;
    NodeId end = nodes->back();
    if (result.leader < 0) {
      result.leader = end;
    } else if (end != result.leader) {
      std::ostringstream oss;
      oss << "two leaders: node " << v << " elected " << end
          << " but earlier decided nodes elected " << result.leader;
      result.error = oss.str();
      return result;
    }
  }
  result.ok = true;
  return result;
}

}  // namespace anole::election
