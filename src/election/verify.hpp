#pragma once
// Output verification: leader election succeeded iff every node output a
// sequence of port numbers coding a *simple* path in the graph and all
// paths end at one common node (the leader). This is the paper's
// definition of the task (Section 1, Model and Problem Description).

#include <optional>
#include <string>
#include <vector>

#include "portgraph/port_graph.hpp"

namespace anole::election {

struct VerifyResult {
  bool ok = false;
  portgraph::NodeId leader = -1;
  std::string error;  ///< human-readable diagnosis on failure
};

[[nodiscard]] VerifyResult verify_election(
    const portgraph::PortGraph& g,
    const std::vector<std::vector<int>>& outputs);

}  // namespace anole::election
