#pragma once
// Output verification: leader election succeeded iff every node output a
// sequence of port numbers coding a *simple* path in the graph and all
// paths end at one common node (the leader). This is the paper's
// definition of the task (Section 1, Model and Problem Description).

#include <optional>
#include <string>
#include <vector>

#include "portgraph/port_graph.hpp"

namespace anole::election {

struct VerifyResult {
  bool ok = false;
  portgraph::NodeId leader = -1;
  std::string error;  ///< human-readable diagnosis on failure
};

[[nodiscard]] VerifyResult verify_election(
    const portgraph::PortGraph& g,
    const std::vector<std::vector<int>>& outputs);

/// Safety verdict for runs a fault (or an adversarial schedule cap) may
/// have interrupted before everyone decided: "at most one leader, ever".
struct SafetyResult {
  bool ok = false;
  /// The common leader of all decided nodes; -1 when nobody decided yet
  /// (vacuously safe: ok stays true).
  portgraph::NodeId leader = -1;
  std::size_t decided = 0;  ///< nodes whose output was checked
  std::string error;
};

/// The fault-model safety contract (DESIGN.md §12): every node that HAS
/// decided (decision_round[v] >= 0) must have output a valid simple path,
/// and all such paths must end at one common node — even when most nodes
/// are still undecided. Undecided nodes are ignored entirely. Unlike
/// verify_election, partial decision sets pass as long as they agree.
[[nodiscard]] SafetyResult verify_safety_under_faults(
    const portgraph::PortGraph& g,
    const std::vector<std::vector<int>>& outputs,
    const std::vector<int>& decision_round);

}  // namespace anole::election
