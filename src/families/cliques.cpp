#include "families/cliques.hpp"

#include <cmath>

#include "util/math.hpp"

namespace anole::families {

using portgraph::NodeId;
using portgraph::Port;
using portgraph::PortGraph;

std::uint64_t f_family_size(int x) {
  ANOLE_CHECK_MSG(x >= 2, "F(x) needs x >= 2");
  return util::ipow(static_cast<std::uint64_t>(x - 1),
                    static_cast<std::uint64_t>(x));
}

std::vector<int> f_sequence(int x, std::uint64_t t) {
  ANOLE_CHECK_MSG(t < f_family_size(x),
                  "clique index " << t << " out of range for F(" << x << ")");
  std::vector<int> h(static_cast<std::size_t>(x));
  std::uint64_t base = static_cast<std::uint64_t>(x - 1);
  for (int j = 0; j < x; ++j) {
    h[static_cast<std::size_t>(j)] = static_cast<int>(t % base) + 1;
    t /= base;
  }
  return h;
}

namespace {

// Base-clique port at node v_j (j in 0..x-1) toward neighbor `to`, where
// `to` = -1 means r and otherwise v_to. Canonical rule: v_j enumerates its
// neighbors in the order (r, v_0, ..., v_{x-1} omitting v_j) and assigns
// ports 0,1,... in that order.
Port base_port_at_vj(int x, int j, int to) {
  if (to < 0) return 0;  // toward r
  ANOLE_CHECK(to != j && to < x);
  return static_cast<Port>(to < j ? to + 1 : to);
}

}  // namespace

std::vector<NodeId> attach_f_clique(PortGraph& g, NodeId w, int x,
                                    std::uint64_t t) {
  std::vector<int> h = f_sequence(x, t);
  std::vector<NodeId> v(static_cast<std::size_t>(x));
  for (int i = 0; i < x; ++i) v[static_cast<std::size_t>(i)] = g.add_node();

  auto port_at = [&](int j, int to) {
    // Perturbed port at v_j: (base + h_j) mod x.
    return static_cast<Port>(
        (base_port_at_vj(x, j, to) + h[static_cast<std::size_t>(j)]) % x);
  };
  // Edges r—v_i: port i at r (the F(x) defining convention).
  for (int i = 0; i < x; ++i)
    g.add_edge(w, static_cast<Port>(i), v[static_cast<std::size_t>(i)],
               port_at(i, -1));
  // Edges v_j—v_k.
  for (int j = 0; j < x; ++j)
    for (int k = j + 1; k < x; ++k)
      g.add_edge(v[static_cast<std::size_t>(j)], port_at(j, k),
                 v[static_cast<std::size_t>(k)], port_at(k, j));
  return v;
}

PortGraph f_clique(int x, std::uint64_t t) {
  PortGraph g;
  NodeId r = g.add_node();
  attach_f_clique(g, r, x, t);
  g.validate();
  return g;
}

int f_parameter_for(std::uint64_t k) {
  // The paper's x = ceil(2 log k / log log k), raised until (x-1)^x >= k
  // and clamped to >= 3 so all constructions have the degrees they assume.
  int x = 3;
  if (k >= 4) {
    double lg = std::log2(static_cast<double>(k));
    double lglg = std::log2(lg);
    if (lglg > 0)
      x = std::max(3, static_cast<int>(std::ceil(2.0 * lg / lglg)));
  }
  while (f_family_size(x) < k) ++x;
  return x;
}

}  // namespace anole::families
