#pragma once
// The family F(x) of port-perturbed cliques (paper Section 3, used by both
// Theorem 3.2 and Theorem 3.3).
//
// F(x) = {C_1,...,C_y}, y = (x-1)^x, consists of (x+1)-node cliques with
// nodes r, v_0,...,v_{x-1}. In the base clique C, the port at r toward v_i
// is i; ports at the v_j are assigned canonically (see f_clique). Clique
// C_t is obtained from C by replacing every port p at node v_j with
// (p + h_j) mod x, where (h_0,...,h_{x-1}) is the t-th sequence over
// {1,...,x-1}^x (mixed-radix enumeration).
//
// The defining property (used in Claims 3.8/3.10): any two distinct cliques
// of F(x), attached anywhere by their r nodes, give their non-r nodes
// pairwise distinct augmented truncated views at depth 1.

#include <cstdint>

#include "portgraph/port_graph.hpp"

namespace anole::families {

/// Number of cliques in F(x) = (x-1)^x, saturated at 2^62.
[[nodiscard]] std::uint64_t f_family_size(int x);

/// The perturbation sequence (h_0,...,h_{x-1}) of C_t, each h_j in
/// {1,...,x-1}; t < f_family_size(x).
[[nodiscard]] std::vector<int> f_sequence(int x, std::uint64_t t);

/// Standalone clique C_t of F(x): node 0 is r, node 1+i is v_i.
[[nodiscard]] portgraph::PortGraph f_clique(int x, std::uint64_t t);

/// Attaches a copy of C_t to node `w` of `g` (identifying w with r):
/// adds x fresh nodes; the port at w toward v_i is i, so w must have ports
/// 0..x-1 free. Returns the ids of the new nodes v_0..v_{x-1}.
std::vector<portgraph::NodeId> attach_f_clique(portgraph::PortGraph& g,
                                               portgraph::NodeId w, int x,
                                               std::uint64_t t);

/// Smallest x >= 3 such that (x-1)^x >= k — the paper uses
/// x = ceil(2 log k / log log k) for k >= 2^16; this helper makes the
/// construction well-defined for the small k our experiments instantiate.
[[nodiscard]] int f_parameter_for(std::uint64_t k);

}  // namespace anole::families
