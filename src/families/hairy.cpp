#include "families/hairy.hpp"

#include <algorithm>

namespace anole::families {

using portgraph::NodeId;
using portgraph::Port;
using portgraph::PortGraph;

namespace {

// Adds the star of node w (if size > 0): leaves get port 0; at w the star
// edges take ports 2, 3, ..., size+1 (0 and 1 are the ring ports).
void attach_star(PortGraph& g, NodeId w, int size) {
  for (int s = 0; s < size; ++s) {
    NodeId leaf = g.add_node();
    g.add_edge(w, static_cast<Port>(2 + s), leaf, 0);
  }
}

// Emits one gamma-stretch into g and returns the node images.
StretchLayout emit_stretch(PortGraph& g, const HairyRing& h,
                           std::size_t cut_at, int gamma) {
  ANOLE_CHECK(gamma >= 1);
  ANOLE_CHECK(cut_at < h.ring.size());
  std::size_t n = h.ring.size();
  StretchLayout layout;
  for (int c = 0; c < gamma; ++c) {
    std::vector<NodeId> img(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t orig = (cut_at + i) % n;
      img[i] = g.add_node();
      attach_star(g, img[i], h.star_sizes[orig]);
    }
    // Clockwise path edges of this copy: port 0 forward, port 1 backward
    // (exactly the ring ports, minus the removed edge {w_1, w_n}).
    for (std::size_t i = 0; i + 1 < n; ++i)
      g.add_edge(img[i], 0, img[i + 1], 1);
    // Reconnect to the previous copy through the removed-edge port pair.
    if (c > 0) g.add_edge(layout.last_of_copy.back(), 0, img[0], 1);
    layout.first_of_copy.push_back(img[0]);
    layout.last_of_copy.push_back(img[n - 1]);
    layout.ring_of_copy.push_back(std::move(img));
  }
  return layout;
}

}  // namespace

HairyRing hairy_ring(const std::vector<int>& star_sizes) {
  ANOLE_CHECK_MSG(star_sizes.size() >= 3, "hairy ring needs >= 3 ring nodes");
  int max_size = *std::max_element(star_sizes.begin(), star_sizes.end());
  ANOLE_CHECK_MSG(std::count(star_sizes.begin(), star_sizes.end(), max_size) ==
                      1,
                  "the maximum star must be unique (feasibility)");
  HairyRing out;
  out.star_sizes = star_sizes;
  PortGraph& g = out.graph;
  std::size_t n = star_sizes.size();
  for (std::size_t i = 0; i < n; ++i) {
    NodeId w = g.add_node();
    out.ring.push_back(w);
    attach_star(g, w, star_sizes[i]);
  }
  for (std::size_t i = 0; i < n; ++i)
    g.add_edge(out.ring[i], 0, out.ring[(i + 1) % n], 1);
  g.validate();
  return out;
}

Stretch gamma_stretch(const HairyRing& h, std::size_t cut_at, int gamma) {
  Stretch s;
  s.layout = emit_stretch(s.graph, h, cut_at, gamma);
  return s;
}

PropositionGraph proposition_graph(const std::vector<HairyRing>& rings,
                                   int gamma) {
  ANOLE_CHECK(!rings.empty());
  ANOLE_CHECK(gamma >= 1);
  PropositionGraph out;
  PortGraph& g = out.graph;
  for (const HairyRing& h : rings) {
    StretchLayout layout = emit_stretch(g, h, /*cut_at=*/0, gamma);
    if (!out.layouts.empty())
      // Chain this stretch to the previous one with the ring port pair.
      g.add_edge(out.layouts.back().last_of_copy.back(), 0,
                 layout.first_of_copy.front(), 1);
    out.layouts.push_back(std::move(layout));
  }
  // Close the loop through the center of a fresh gamma-star: the center's
  // ring-like ports 0/1 join the chain ends; its star leaves take 2..γ+1.
  NodeId center = g.add_node();
  out.star_center = center;
  g.add_edge(center, 0, out.layouts.front().first_of_copy.front(), 1);
  g.add_edge(out.layouts.back().last_of_copy.back(), 0, center, 1);
  attach_star(g, center, gamma);
  g.validate();
  // Feasibility: the center must be the unique node of maximum degree.
  for (std::size_t v = 0; v < g.n(); ++v)
    if (static_cast<NodeId>(v) != center)
      ANOLE_CHECK_MSG(g.degree(static_cast<NodeId>(v)) < g.degree(center),
                      "gamma too small: star center degree not unique max");
  return out;
}

}  // namespace anole::families
