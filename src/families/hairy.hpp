#pragma once
// Hairy rings, cuts and gamma-stretches (paper Proposition 4.1, Fig. 9):
// the family showing that *constant-size* advice cannot elect a leader in
// all feasible graphs regardless of the allocated time.
//
// A hairy ring is a ring (ports 0 clockwise / 1 counterclockwise) with a
// k-star attached at every node (the star center is identified with the
// ring node; star sizes may be 0), such that the maximum star size on the
// ring is unique — which makes the graph feasible (unique max degree).
//
// The cut at ring node w removes the counterclockwise ring edge of w; the
// gamma-stretch chains gamma copies of the cut into a long path of copies,
// reconnecting consecutive copies with the same port pair the removed ring
// edge had, so that nodes deep inside a stretch are locally
// indistinguishable from nodes of the original hairy ring. (The paper
// states the reconnecting ports as 0 at the first node and 1 at the last;
// we use the orientation-consistent assignment — 1 at the first node, 0 at
// the last — which is what makes the copies locally identical to the ring;
// see DESIGN.md on pinned "arbitrary" choices.)

#include <cstdint>
#include <vector>

#include "portgraph/port_graph.hpp"

namespace anole::families {

struct HairyRing {
  portgraph::PortGraph graph;
  /// Ring node ids in clockwise order (w_1..w_n).
  std::vector<portgraph::NodeId> ring;
  std::vector<int> star_sizes;
};

/// Builds the hairy ring with the given star sizes (one per ring node,
/// entries >= 0, maximum must be unique, ring size >= 3).
[[nodiscard]] HairyRing hairy_ring(const std::vector<int>& star_sizes);

/// Node images of one stretch inside a host graph.
struct StretchLayout {
  /// Image of the cut's first node (w_1 copy) per copy, in order.
  std::vector<portgraph::NodeId> first_of_copy;
  /// Image of the cut's last node (w_n copy) per copy, in order.
  std::vector<portgraph::NodeId> last_of_copy;
  /// ring_of_copy[c][i] = image in copy c of the ring node at clockwise
  /// offset i from the cut node.
  std::vector<std::vector<portgraph::NodeId>> ring_of_copy;
};

struct Stretch {
  portgraph::PortGraph graph;
  StretchLayout layout;
};

/// The gamma-stretch of hairy ring `h` cut at ring position `cut_at`
/// (index into h.ring). gamma >= 1; gamma == 1 is the cut itself. The
/// result is a path of copies and is NOT itself a valid PortGraph (the two
/// end nodes have a free port); callers embed it, as Proposition 4.1 does.
[[nodiscard]] Stretch gamma_stretch(const HairyRing& h, std::size_t cut_at,
                                    int gamma);

/// The composite graph G of Proposition 4.1: the gamma-stretches of the
/// given hairy rings (each cut at ring position 0), chained in order,
/// closed through a gamma-star whose center joins the first node of the
/// first stretch and the last node of the last stretch. The center is the
/// unique node of maximum degree gamma + 2, so G is again a (feasible)
/// hairy ring.
struct PropositionGraph {
  portgraph::PortGraph graph;
  std::vector<StretchLayout> layouts;  ///< one per input ring, in order
  portgraph::NodeId star_center = -1;
};

[[nodiscard]] PropositionGraph proposition_graph(
    const std::vector<HairyRing>& rings, int gamma);

}  // namespace anole::families
