#include "families/locks.hpp"

#include <algorithm>
#include <deque>

namespace anole::families {

using portgraph::NodeId;
using portgraph::Port;
using portgraph::PortGraph;

std::vector<NodeId> attach_clique_at(PortGraph& g, NodeId w, int size) {
  ANOLE_CHECK_MSG(size >= 2, "clique size must be >= 2");
  int extra = size - 1;
  std::vector<NodeId> q(static_cast<std::size_t>(extra));
  for (int m = 0; m < extra; ++m) q[static_cast<std::size_t>(m)] = g.add_node();
  // q_m ports: 0..size-3 toward the other fresh nodes, size-2 toward w;
  // at w each new edge takes the smallest free port.
  auto first_free = [&g](NodeId v) {
    const auto& row = g.neighbors(v);
    for (std::size_t p = 0; p < row.size(); ++p)
      if (row[p].neighbor < 0) return static_cast<Port>(p);
    return static_cast<Port>(row.size());
  };
  for (int m = 0; m < extra; ++m)
    g.add_edge(w, first_free(w), q[static_cast<std::size_t>(m)],
               static_cast<Port>(extra - 1));
  for (int j = 0; j < extra; ++j)
    for (int m = j + 1; m < extra; ++m)
      g.add_edge(q[static_cast<std::size_t>(j)], static_cast<Port>(m - 1),
                 q[static_cast<std::size_t>(m)], static_cast<Port>(j));
  return q;
}

Lock z_lock(int z) {
  ANOLE_CHECK_MSG(z >= 4, "z-lock needs z >= 4");
  Lock out;
  out.z = z;
  PortGraph& g = out.graph;
  NodeId w = g.add_node();  // central
  NodeId s = g.add_node();  // principal (port 0 at w)
  NodeId t = g.add_node();
  // 3-cycle w -> s -> t -> w with ports 0 (clockwise), 1 (counter).
  g.add_edge(w, 0, s, 1);
  g.add_edge(s, 0, t, 1);
  g.add_edge(t, 0, w, 1);
  attach_clique_at(g, w, z);  // clique ports 2..z at w
  out.central = w;
  out.principal = s;
  g.validate();
  return out;
}

namespace {

// Copies `src` into `dst` (fresh nodes, identical ports); returns the map.
std::vector<NodeId> copy_into(PortGraph& dst, const PortGraph& src) {
  std::vector<NodeId> map(src.n());
  for (std::size_t v = 0; v < src.n(); ++v) map[v] = dst.add_node();
  for (std::size_t v = 0; v < src.n(); ++v) {
    for (Port p = 0; p < src.degree(static_cast<NodeId>(v)); ++p) {
      const auto& he = src.at(static_cast<NodeId>(v), p);
      if (static_cast<std::size_t>(he.neighbor) < v) continue;
      dst.add_edge(map[v], p, map[static_cast<std::size_t>(he.neighbor)],
                   he.rev_port);
    }
  }
  return map;
}

}  // namespace

LockChain s0_member(int alpha, int c, int i) {
  ANOLE_CHECK(alpha >= 1 && c >= 2 && i >= 0);
  int span = alpha + c + 2;           // chain length (edges)
  int xi = 4 + 2 * i * span + i;      // x_i
  LockChain out;
  PortGraph& g = out.graph;

  // Left lock: x_i-lock.
  Lock left = z_lock(xi);
  std::vector<NodeId> lmap = copy_into(g, left.graph);
  out.left_central = lmap[static_cast<std::size_t>(left.central)];
  out.left_principal = lmap[static_cast<std::size_t>(left.principal)];
  out.left_z = xi;

  // Right lock: (x_i + 2(alpha+c+2))-lock.
  int zr = xi + 2 * span;
  Lock right = z_lock(zr);
  std::vector<NodeId> rmap = copy_into(g, right.graph);
  out.right_central = rmap[static_cast<std::size_t>(right.central)];
  out.right_principal = rmap[static_cast<std::size_t>(right.principal)];
  out.right_z = zr;

  // Chain u - w_1 - ... - w_{alpha+c+1} - v with a clique of size x_i + 2j
  // at w_j. Ports outside the locks are assigned deterministically:
  // cliques first, then chain edges on the smallest free ports.
  int internal = span - 1;  // alpha+c+1 internal nodes
  std::vector<NodeId> w(static_cast<std::size_t>(internal));
  for (int j = 1; j <= internal; ++j) {
    NodeId node = g.add_node();
    w[static_cast<std::size_t>(j - 1)] = node;
    attach_clique_at(g, node, xi + 2 * j);
  }
  NodeId prev = out.left_central;
  for (int j = 0; j < internal; ++j) {
    g.add_edge_auto(prev, w[static_cast<std::size_t>(j)]);
    prev = w[static_cast<std::size_t>(j)];
  }
  g.add_edge_auto(prev, out.right_central);
  out.left_chain_end = w.front();
  out.right_chain_end = w.back();

  g.validate();
  return out;
}

PrunedView pruned_view(const PortGraph& g, NodeId u,
                       const std::vector<Port>& excluded, int ell) {
  ANOLE_CHECK(ell >= 1);
  PrunedView out;
  out.root = out.tree.add_node();

  struct Item {
    NodeId orig;        // node of g this tree node copies
    NodeId copy;        // node in the tree
    Port entry_port;    // port at `orig` back toward the parent (-1 at root)
    int depth;
  };
  std::deque<Item> queue{{u, out.root, -1, 0}};
  while (!queue.empty()) {
    Item it = queue.front();
    queue.pop_front();
    if (it.depth == ell) {
      out.leaves.push_back(it.copy);
      continue;
    }
    for (Port p = 0; p < g.degree(it.orig); ++p) {
      if (p == it.entry_port) continue;
      if (it.depth == 0 &&
          std::find(excluded.begin(), excluded.end(), p) != excluded.end())
        continue;
      const auto& he = g.at(it.orig, p);
      NodeId child = out.tree.add_node();
      out.tree.add_edge(it.copy, p, child, he.rev_port);
      queue.push_back({he.neighbor, child, he.rev_port, it.depth + 1});
    }
  }
  return out;
}

namespace {

// Emits T(L): keeps `central` (already present in dst with its clique and
// chain edge, cycle ports 0/1 free), grows the pruned view of `host` from
// `host_central` through its cycle ports, and attaches a clique of size
// base + 4*step*f to the f-th leaf (f = 1..t, BFS order).
// Returns the number of leaves t.
int emit_lock_transform(PortGraph& dst, NodeId central,
                        const PortGraph& host, NodeId host_central,
                        int ell, int clique_base, int step_offset) {
  // Excluded ports at the root: everything except the two cycle ports 0,1.
  std::vector<Port> excluded;
  for (Port p = 2; p < host.degree(host_central); ++p) excluded.push_back(p);
  PrunedView pv = pruned_view(host, host_central, excluded, ell);

  // Graft the pruned view into dst, identifying pv.root with `central`.
  std::vector<NodeId> map(pv.tree.n(), -1);
  map[static_cast<std::size_t>(pv.root)] = central;
  for (std::size_t v = 0; v < pv.tree.n(); ++v)
    if (map[v] < 0) map[v] = dst.add_node();
  for (std::size_t v = 0; v < pv.tree.n(); ++v) {
    for (Port p = 0; p < static_cast<Port>(pv.tree.neighbors(
                             static_cast<NodeId>(v)).size()); ++p) {
      const auto& he = pv.tree.neighbors(static_cast<NodeId>(v))
                           [static_cast<std::size_t>(p)];
      if (he.neighbor < 0) continue;  // unassigned slot at a leaf
      if (static_cast<std::size_t>(he.neighbor) < v) continue;
      dst.add_edge(map[v], p, map[static_cast<std::size_t>(he.neighbor)],
                   he.rev_port);
    }
  }
  // Degree-coding cliques on the leaves.
  int f = 1;
  for (NodeId leaf : pv.leaves) {
    attach_clique_at(dst, map[static_cast<std::size_t>(leaf)],
                     clique_base + 4 * (f + step_offset));
    ++f;
  }
  return static_cast<int>(pv.leaves.size());
}

// Highest-degree node of dst among ids >= from (the freshly added part).
NodeId argmax_degree(const PortGraph& g, NodeId from) {
  NodeId best = from;
  for (NodeId v = from; static_cast<std::size_t>(v) < g.n(); ++v)
    if (g.degree(v) > g.degree(best)) best = v;
  return best;
}

}  // namespace

LockChain merge_locks(const LockChain& h1, const LockChain& h2, int ell,
                      int chain_len) {
  ANOLE_CHECK(ell >= 1 && chain_len >= 2);
  LockChain out;
  PortGraph& g = out.graph;

  // --- Copy H1 without the 3-cycle of its right lock. ---
  // The right lock's cycle nodes are the two neighbors of right_central
  // through ports 0 and 1.
  auto copy_without_cycle = [&g](const LockChain& h, NodeId central)
      -> std::vector<NodeId> {
    NodeId s = h.graph.at(central, 0).neighbor;
    NodeId t = h.graph.at(central, 1).neighbor;
    std::vector<NodeId> map(h.graph.n(), -1);
    for (std::size_t v = 0; v < h.graph.n(); ++v) {
      if (static_cast<NodeId>(v) == s || static_cast<NodeId>(v) == t) continue;
      map[v] = g.add_node();
    }
    for (std::size_t v = 0; v < h.graph.n(); ++v) {
      if (map[v] < 0) continue;
      for (Port p = 0; p < h.graph.degree(static_cast<NodeId>(v)); ++p) {
        const auto& he = h.graph.at(static_cast<NodeId>(v), p);
        if (map[static_cast<std::size_t>(he.neighbor)] < 0) continue;
        if (static_cast<std::size_t>(he.neighbor) < v) continue;
        g.add_edge(map[v], p, map[static_cast<std::size_t>(he.neighbor)],
                   he.rev_port);
      }
    }
    return map;
  };

  std::vector<NodeId> map1 = copy_without_cycle(h1, h1.right_central);
  out.left_central = map1[static_cast<std::size_t>(h1.left_central)];
  out.left_principal = map1[static_cast<std::size_t>(h1.left_principal)];
  out.left_z = h1.left_z;
  out.left_chain_end = map1[static_cast<std::size_t>(h1.left_chain_end)];
  NodeId b_prime = map1[static_cast<std::size_t>(h1.right_central)];
  out.t2_central = b_prime;

  // x = largest degree of the constituent graphs (paper: of any previously
  // constructed graph).
  int x = 0;
  for (std::size_t v = 0; v < h1.graph.n(); ++v)
    x = std::max(x, h1.graph.degree(static_cast<NodeId>(v)));
  for (std::size_t v = 0; v < h2.graph.n(); ++v)
    x = std::max(x, h2.graph.degree(static_cast<NodeId>(v)));

  // --- T(L2): pruned view of H1 from its right central node. ---
  NodeId t2_begin = static_cast<NodeId>(g.n());
  int t_leaves = emit_lock_transform(g, b_prime, h1.graph, h1.right_central,
                                     ell, x, /*step_offset=*/0);
  NodeId a = argmax_degree(g, t2_begin);

  // --- Copy H2 without the 3-cycle of its LEFT lock, transform it. ---
  // (Mirror of the above; the paper's leaf cliques use x + 4f + 4t + 4.)
  std::vector<NodeId> map2 = copy_without_cycle(h2, h2.left_central);
  out.right_central = map2[static_cast<std::size_t>(h2.right_central)];
  out.right_principal = map2[static_cast<std::size_t>(h2.right_principal)];
  out.right_z = h2.right_z;
  out.right_chain_end = map2[static_cast<std::size_t>(h2.right_chain_end)];
  NodeId b_dblprime = map2[static_cast<std::size_t>(h2.left_central)];
  out.t3_central = b_dblprime;

  NodeId t3_begin = static_cast<NodeId>(g.n());
  emit_lock_transform(g, b_dblprime, h2.graph, h2.left_central, ell, x + 4,
                      /*step_offset=*/t_leaves);
  NodeId b = argmax_degree(g, t3_begin);

  // --- X: clique-studded chain g_1..g_{chain_len}. ---
  int y = 0;
  for (NodeId v = t3_begin; static_cast<std::size_t>(v) < g.n(); ++v)
    y = std::max(y, g.degree(v));
  std::vector<NodeId> chain(static_cast<std::size_t>(chain_len));
  for (int f = 1; f <= chain_len; ++f) {
    NodeId node = g.add_node();
    chain[static_cast<std::size_t>(f - 1)] = node;
    attach_clique_at(g, node, y + 4 * f);
  }
  for (int f = 0; f + 1 < chain_len; ++f)
    g.add_edge_auto(chain[static_cast<std::size_t>(f)],
                    chain[static_cast<std::size_t>(f + 1)]);

  // --- Assembly: a - g_1, g_{chain_len} - b, on smallest free ports. ---
  g.add_edge_auto(a, chain.front());
  g.add_edge_auto(chain.back(), b);

  g.validate();
  return out;
}

}  // namespace anole::families
