#pragma once
// z-locks, the lock-chain family S_0/T_0 and the merge operation of
// Theorem 4.2 (Figs. 3-8) — the lower-bound machinery for election in
// large time.
//
// A z-lock (Fig. 3) is a 3-cycle (ports 0,1 clockwise) with a clique of
// size z attached by identifying one clique node with a cycle node; the
// identified node (degree z+1) is the *central* node, and the cycle node
// behind the central node's port 0 is the *principal* node.
//
// An S_0 member G_i (Fig. 5) is  L1 * M * L2 : an x_i-lock, a chain of
// alpha+c+1 internal nodes each carrying a clique of growing size, and an
// (x_i + 2(alpha+c+2))-lock, where x_i = 4 + 2i(alpha+c+2) + i.
//
// The merge operation (Figs. 6-8) joins two lock-chain graphs H' and H''
// into  L1 * M' * T(L2) * X * T(L3) * M'' * L4 , where T(L) replaces a
// lock's 3-cycle by the pruned view of its central node at depth ell
// (paper: ell = B(k+1,c)) with degree-coding cliques on the pruned view's
// leaves, and X is a long clique-studded chain. The paper's full-scale
// parameters are astronomically large (they are proof devices, not
// systems); merge_locks exposes ell and the X-chain length so the
// construction can be instantiated and its structural claims (Claim 4.2,
// the view-agreement property 9) verified at reduced scale. See DESIGN.md.

#include <cstdint>
#include <vector>

#include "portgraph/port_graph.hpp"

namespace anole::families {

/// A standalone z-lock (z >= 4).
struct Lock {
  portgraph::PortGraph graph;
  portgraph::NodeId central = -1;
  portgraph::NodeId principal = -1;
  int z = 0;
};

[[nodiscard]] Lock z_lock(int z);

/// Attaches a clique of the given size to `w` by identification: `w` gains
/// size-1 edges using its smallest free ports; the fresh nodes use
/// contiguous ports. Returns the new node ids.
std::vector<portgraph::NodeId> attach_clique_at(portgraph::PortGraph& g,
                                                portgraph::NodeId w,
                                                int size);

/// A graph of the form L1 * M * L2 with its distinguished nodes.
struct LockChain {
  portgraph::PortGraph graph;
  portgraph::NodeId left_central = -1, left_principal = -1;
  portgraph::NodeId right_central = -1, right_principal = -1;
  int left_z = 0, right_z = 0;
  /// The chain node adjacent to each lock's central node (c' and c'' in
  /// the paper's merge description).
  portgraph::NodeId left_chain_end = -1, right_chain_end = -1;
  /// Set by merge_locks only: images in the merged graph of the two
  /// transformed locks' central nodes (b' and b'' in the paper).
  portgraph::NodeId t2_central = -1, t3_central = -1;
};

/// The i-th member of the sequence S_0 for parameters (alpha, c).
[[nodiscard]] LockChain s0_member(int alpha, int c, int i);

/// Materialized pruned view PV_g(u, excluded, ell): a tree embedded in a
/// fresh graph. Leaves at depth ell keep only their entry port.
struct PrunedView {
  portgraph::PortGraph tree;
  portgraph::NodeId root = -1;
  std::vector<portgraph::NodeId> leaves;  ///< in BFS order (m_1..m_t)
};

[[nodiscard]] PrunedView pruned_view(const portgraph::PortGraph& g,
                                     portgraph::NodeId u,
                                     const std::vector<portgraph::Port>& excluded,
                                     int ell);

/// The merge of two lock-chain graphs with pruning depth `ell` and an
/// X-chain of `chain_len` nodes (paper: ell = B(k+1,c), chain_len = 2n).
[[nodiscard]] LockChain merge_locks(const LockChain& h1, const LockChain& h2,
                                    int ell, int chain_len);

}  // namespace anole::families
