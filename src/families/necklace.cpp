#include "families/necklace.hpp"

#include "families/cliques.hpp"
#include "util/math.hpp"

namespace anole::families {

using portgraph::NodeId;
using portgraph::Port;
using portgraph::PortGraph;

std::uint64_t necklace_family_size(int k) {
  ANOLE_CHECK(k >= 3);
  int x = f_parameter_for(static_cast<std::uint64_t>(k));
  return util::ipow(static_cast<std::uint64_t>(x + 1),
                    static_cast<std::uint64_t>(k - 3));
}

Necklace necklace(int k, int phi, std::vector<int> code) {
  ANOLE_CHECK_MSG(k >= 3, "necklace needs k >= 3");
  ANOLE_CHECK_MSG(phi >= 2, "necklace needs phi >= 2 (Theorem 3.3 has phi > 1)");
  int x = f_parameter_for(static_cast<std::uint64_t>(k));
  ANOLE_CHECK(code.size() == static_cast<std::size_t>(k));
  ANOLE_CHECK_MSG(code.front() == 0 && code.back() == 0 &&
                      code[static_cast<std::size_t>(k - 2)] == 0,
                  "necklace boundary digits c_1, c_{k-1}, c_k must be 0");
  for (int c : code) ANOLE_CHECK(c >= 0 && c <= x);

  Necklace out;
  out.code = code;
  out.x = x;
  out.phi = phi;
  PortGraph& g = out.graph;

  // Joints w_1..w_k, each with its emerald E_i = C_i from F(x) (ports
  // 0..x-1 at the joint).
  for (int i = 1; i <= k; ++i) {
    NodeId w = g.add_node();
    out.joints.push_back(w);
    attach_f_clique(g, w, x, static_cast<std::uint64_t>(i - 1));
  }

  // Ray ports at a joint toward diamond node j: base x (low range) or 2x
  // (high range), by the paper's parity rules.
  auto low = [&](int j) { return static_cast<Port>(x + j); };
  auto high = [&](int j) { return static_cast<Port>(2 * x + j); };

  // Diamonds D_1..D_{k-1}. Diamond node ports before the code shift:
  // 0..x-2 inside the clique, x-1 on the ray to w_i, x on the ray to
  // w_{i+1}; the code adds c_i mod (x+1) to every port of every D_i node.
  for (int i = 1; i <= k - 1; ++i) {
    int shift = code[static_cast<std::size_t>(i - 1)];  // c_i
    auto dport = [&](int p) { return static_cast<Port>((p + shift) % (x + 1)); };
    std::vector<NodeId> d(static_cast<std::size_t>(x));
    for (int j = 0; j < x; ++j) d[static_cast<std::size_t>(j)] = g.add_node();
    // In-diamond clique edges (canonical base ports as in F(x) cliques).
    for (int j = 0; j < x; ++j)
      for (int m = j + 1; m < x; ++m)
        g.add_edge(d[static_cast<std::size_t>(j)], dport(m - 1),
                   d[static_cast<std::size_t>(m)], dport(j));
    // Rays. Left joint w_i: for 1 < i < k even, D_{i-1} uses the low range
    // and D_i the high range; for odd i it is the other way; w_1 and w_k
    // use the low range toward their unique diamond.
    for (int j = 0; j < x; ++j) {
      NodeId wl = out.joints[static_cast<std::size_t>(i - 1)];   // w_i
      NodeId wr = out.joints[static_cast<std::size_t>(i)];       // w_{i+1}
      // Port at w_i toward its right diamond D_i:
      Port pl = (i == 1) ? low(j) : (i % 2 == 0 ? high(j) : low(j));
      // Port at w_{i+1} toward its left diamond D_i:
      Port pr = (i + 1 == k) ? low(j)
                             : ((i + 1) % 2 == 0 ? low(j) : high(j));
      g.add_edge(d[static_cast<std::size_t>(j)], dport(x - 1), wl, pl);
      g.add_edge(d[static_cast<std::size_t>(j)], dport(x), wr, pr);
    }
  }

  // Chains of phi-1 nodes at w_1 and w_k; a_0 / b_0 are the leaves.
  auto attach_chain = [&](NodeId joint) -> NodeId {
    int len = phi - 1;  // nodes a_0..a_{phi-2}
    std::vector<NodeId> a(static_cast<std::size_t>(len));
    for (int i = 0; i < len; ++i) a[static_cast<std::size_t>(i)] = g.add_node();
    // Internal chain edges: port 0 at a_i toward a_{i+1}, port 1 at a_{i+1}
    // toward a_i.
    for (int i = 0; i + 1 < len; ++i)
      g.add_edge(a[static_cast<std::size_t>(i)], 0,
                 a[static_cast<std::size_t>(i + 1)], 1);
    // a_{phi-2} — joint edge: port 0 at the chain end, port 2x at the joint.
    g.add_edge(a[static_cast<std::size_t>(len - 1)], 0, joint,
               static_cast<Port>(2 * x));
    return a[0];
  };
  out.left_leaf = attach_chain(out.joints.front());
  out.right_leaf = attach_chain(out.joints.back());

  g.validate();
  return out;
}

Necklace m_graph(int k, int phi) {
  return necklace(k, phi, std::vector<int>(static_cast<std::size_t>(k), 0));
}

Necklace necklace_member(int k, int phi, std::uint64_t index) {
  ANOLE_CHECK_MSG(index < necklace_family_size(k),
                  "necklace index out of range");
  int x = f_parameter_for(static_cast<std::uint64_t>(k));
  std::vector<int> code(static_cast<std::size_t>(k), 0);
  std::uint64_t base = static_cast<std::uint64_t>(x + 1);
  for (int i = 2; i <= k - 2; ++i) {  // free digits c_2..c_{k-2}
    code[static_cast<std::size_t>(i - 1)] = static_cast<int>(index % base);
    index /= base;
  }
  return necklace(k, phi, std::move(code));
}

}  // namespace anole::families
