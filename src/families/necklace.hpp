#pragma once
// k-necklaces (paper Theorem 3.3, Fig. 2): the lower-bound family for
// election in minimum time phi > 1, and our workhorse for graphs with a
// *prescribed* election index.
//
// The base graph M_k consists of:
//   * joints w_1..w_k,
//   * diamonds D_1..D_{k-1}: x-node cliques, every node attached by rays
//     to w_i and w_{i+1},
//   * emeralds E_1..E_k: distinct cliques of F(x) attached at the joints,
//   * two chains (a_0..a_{phi-2}), (b_0..b_{phi-2}) hanging off w_1 and
//     w_k; a_0/b_0 are the left/right leaves.
//
// Ports (all as prescribed in the paper): inside a diamond 0..x-2; ray to
// w_i has port x-1, ray to w_{i+1} port x at the diamond node; emerald
// ports as in F(x); at the joints ray ports come from {x..2x-1} and
// {2x..3x-1} with parity depending on the joint index; 2x toward the chain
// at w_1/w_k; chain ports as specified (leaf port 0).
//
// A k-necklace N(code) perturbs diamond D_i's node ports by +c_i mod (x+1)
// where code = (c_1..c_k). There are k-1 diamonds, so c_k is unused; the
// boundary diamonds must stay unshifted, c_1 = c_{k-1} = 0, which is what
// makes the left/right-leaf views equal across the family (the paper
// states "c_1 = c_k = 0" but counts (x+1)^{k-3} necklaces — exactly the
// free digits c_2..c_{k-2} — so the intended pinned digits are the two
// boundary *diamonds*; see DESIGN.md on pinned choices).
//
// Claim 3.10: every k-necklace has election index exactly phi.
// Claim 3.11 observation: across all codes, the left leaves share B^phi,
// and the right leaves share B^phi.

#include <cstdint>
#include <vector>

#include "portgraph/port_graph.hpp"

namespace anole::families {

struct Necklace {
  portgraph::PortGraph graph;
  std::vector<portgraph::NodeId> joints;      ///< w_1..w_k
  portgraph::NodeId left_leaf = -1;           ///< a_0
  portgraph::NodeId right_leaf = -1;          ///< b_0
  std::vector<int> code;                      ///< (c_1..c_k)
  int x = 0;
  int phi = 0;                                ///< target election index
};

/// Number of k-necklaces = (x+1)^(k-3) codes (free digits c_2..c_{k-2}).
[[nodiscard]] std::uint64_t necklace_family_size(int k);

/// The base graph M_k for the given phi >= 2 (all-zero code).
[[nodiscard]] Necklace m_graph(int k, int phi);

/// The necklace with the given code; code.size() == k,
/// c_1 = c_{k-1} = c_k = 0, entries in 0..x.
[[nodiscard]] Necklace necklace(int k, int phi, std::vector<int> code);

/// The necklace whose code is the `index`-th in the mixed-radix
/// enumeration of {0..x}^(k-2).
[[nodiscard]] Necklace necklace_member(int k, int phi, std::uint64_t index);

}  // namespace anole::families
