#include "families/ring_of_cliques.hpp"

#include <numeric>

#include "families/cliques.hpp"
#include "util/prng.hpp"

namespace anole::families {

using portgraph::NodeId;
using portgraph::Port;
using portgraph::PortGraph;

RingOfCliques ring_of_cliques(int k, std::vector<std::uint64_t> assignment) {
  ANOLE_CHECK_MSG(k >= 3, "ring of cliques needs k >= 3");
  ANOLE_CHECK(assignment.size() == static_cast<std::size_t>(k));
  ANOLE_CHECK_MSG(assignment[0] == 0, "the clique at w_1 must stay fixed");
  int x = f_parameter_for(static_cast<std::uint64_t>(k));

  RingOfCliques out;
  out.x = x;
  out.assignment = std::move(assignment);
  PortGraph& g = out.graph;
  out.joints.reserve(static_cast<std::size_t>(k));
  for (int t = 0; t < k; ++t) {
    NodeId w = g.add_node();
    out.joints.push_back(w);
    attach_f_clique(g, w, x, out.assignment[static_cast<std::size_t>(t)]);
  }
  // Ring edges: port x = clockwise (w_t -> w_{t+1}), port x+1 =
  // counterclockwise, at every ring node.
  for (int t = 0; t < k; ++t) {
    NodeId u = out.joints[static_cast<std::size_t>(t)];
    NodeId v = out.joints[static_cast<std::size_t>((t + 1) % k)];
    g.add_edge(u, static_cast<Port>(x), v, static_cast<Port>(x + 1));
  }
  g.validate();
  return out;
}

RingOfCliques h_graph(int k) {
  std::vector<std::uint64_t> assignment(static_cast<std::size_t>(k));
  std::iota(assignment.begin(), assignment.end(), 0);
  return ring_of_cliques(k, std::move(assignment));
}

RingOfCliques g_family_member(int k, std::uint64_t seed) {
  std::vector<std::uint64_t> assignment(static_cast<std::size_t>(k));
  std::iota(assignment.begin(), assignment.end(), 0);
  util::SplitMix64 rng(seed);
  // Fisher-Yates over positions 1..k-1 (w_1 keeps C_1, as in the paper).
  for (std::size_t i = assignment.size() - 1; i > 1; --i)
    std::swap(assignment[i], assignment[1 + rng.below(i)]);
  return ring_of_cliques(k, std::move(assignment));
}

}  // namespace anole::families
