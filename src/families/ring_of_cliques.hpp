#pragma once
// The graphs H_k and the family G_k of Theorem 3.2 (Fig. 1): a ring of k
// nodes w_1..w_k, each carrying a distinct clique of F(x) attached by its
// r node, with ring ports x (clockwise) and x+1 (counterclockwise).
//
// G_k keeps the clique at w_1 fixed and permutes the cliques attached to
// the other ring nodes: (k-1)! graphs, all with election index 1
// (Claim 3.8), any two of which must receive different advice for election
// in time 1 (Claim 3.9).

#include <cstdint>
#include <vector>

#include "portgraph/port_graph.hpp"

namespace anole::families {

struct RingOfCliques {
  portgraph::PortGraph graph;
  /// Ring node ids w_1..w_k (w[t] is the attachment node of clique
  /// assignment[t]).
  std::vector<portgraph::NodeId> joints;
  /// assignment[t] = index (into F(x)) of the clique attached at w_{t+1}.
  std::vector<std::uint64_t> assignment;
  int x = 0;
};

/// H_k itself: clique C_t at ring node w_t (identity assignment).
[[nodiscard]] RingOfCliques h_graph(int k);

/// A member of G_k: the clique at w_1 stays C_1; the cliques at w_2..w_k
/// are permuted by the seeded Fisher-Yates shuffle. seed 0 gives H_k.
[[nodiscard]] RingOfCliques g_family_member(int k, std::uint64_t seed);

/// A member of G_k from an explicit assignment (assignment[0] must be 0 and
/// the entries must be a permutation of 0..k-1).
[[nodiscard]] RingOfCliques ring_of_cliques(int k,
                                            std::vector<std::uint64_t> assignment);

}  // namespace anole::families
