#include "portgraph/builders.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <utility>

#include "util/prng.hpp"

namespace anole::portgraph {

PortGraph ring(std::size_t n) {
  ANOLE_CHECK_MSG(n >= 3, "ring needs n >= 3");
  PortGraph g(n);
  for (std::size_t v = 0; v < n; ++v) {
    std::size_t w = (v + 1) % n;
    g.add_edge(static_cast<NodeId>(v), 0, static_cast<NodeId>(w), 1);
  }
  g.validate();
  return g;
}

PortGraph path(std::size_t n) {
  ANOLE_CHECK_MSG(n >= 2, "path needs n >= 2");
  PortGraph g(n);
  for (std::size_t v = 0; v + 1 < n; ++v) {
    Port pu = 0;                              // toward higher index
    Port pv = (v + 1 == n - 1) ? 0 : 1;       // endpoint has only port 0
    g.add_edge(static_cast<NodeId>(v), pu, static_cast<NodeId>(v + 1), pv);
  }
  g.validate();
  return g;
}

PortGraph clique(std::size_t n) {
  ANOLE_CHECK_MSG(n >= 2, "clique needs n >= 2");
  PortGraph g(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      // Neighbor v (> u) is u's (v-1)-th neighbor in id order if v > u,
      // i.e. port v-1 at u; symmetrically u is v's u-th neighbor.
      g.add_edge(static_cast<NodeId>(u), static_cast<Port>(v - 1),
                 static_cast<NodeId>(v), static_cast<Port>(u));
    }
  }
  g.validate();
  return g;
}

PortGraph grid(std::size_t rows, std::size_t cols) {
  ANOLE_CHECK(rows >= 1 && cols >= 1 && rows * cols >= 2);
  PortGraph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  // Assign ports in (up, down, left, right) order per node.
  auto port_of = [&](std::size_t r, std::size_t c, int dir) {
    Port p = 0;
    const bool has[4] = {r > 0, r + 1 < rows, c > 0, c + 1 < cols};
    for (int d = 0; d < dir; ++d)
      if (has[d]) ++p;
    return p;
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (r + 1 < rows)  // down edge: dir 1 here, dir 0 (up) there
        g.add_edge(id(r, c), port_of(r, c, 1), id(r + 1, c),
                   port_of(r + 1, c, 0));
      if (c + 1 < cols)  // right edge: dir 3 here, dir 2 (left) there
        g.add_edge(id(r, c), port_of(r, c, 3), id(r, c + 1),
                   port_of(r, c + 1, 2));
    }
  }
  g.validate();
  return g;
}

PortGraph hypercube(std::size_t d) {
  ANOLE_CHECK_MSG(d >= 1, "hypercube needs d >= 1");
  std::size_t n = std::size_t{1} << d;
  PortGraph g(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < d; ++i) {
      std::size_t w = v ^ (std::size_t{1} << i);
      if (v < w)
        g.add_edge(static_cast<NodeId>(v), static_cast<Port>(i),
                   static_cast<NodeId>(w), static_cast<Port>(i));
    }
  }
  g.validate();
  return g;
}

PortGraph complete_bipartite(std::size_t a, std::size_t b) {
  ANOLE_CHECK(a >= 1 && b >= 1 && a + b >= 2);
  PortGraph g(a + b);
  for (std::size_t u = 0; u < a; ++u)
    for (std::size_t v = 0; v < b; ++v)
      g.add_edge(static_cast<NodeId>(u), static_cast<Port>(v),
                 static_cast<NodeId>(a + v), static_cast<Port>(u));
  g.validate();
  return g;
}

PortGraph binary_tree(std::size_t n) {
  ANOLE_CHECK_MSG(n >= 2, "binary_tree needs n >= 2");
  PortGraph g(n);
  for (std::size_t v = 1; v < n; ++v) {
    std::size_t parent = (v - 1) / 2;
    g.add_edge_auto(static_cast<NodeId>(parent), static_cast<NodeId>(v));
  }
  g.validate();
  return g;
}

PortGraph random_connected(std::size_t n, std::size_t extra_edges,
                           std::uint64_t seed) {
  ANOLE_CHECK_MSG(n >= 2, "random_connected needs n >= 2");
  util::SplitMix64 rng(seed);
  PortGraph g(n);
  std::set<std::pair<NodeId, NodeId>> used;
  auto key = [](NodeId u, NodeId v) {
    return std::pair{std::min(u, v), std::max(u, v)};
  };
  // Random spanning tree: attach node v to a uniformly random earlier node.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t v = 1; v < n; ++v) {
    NodeId u = static_cast<NodeId>(rng.below(v));
    g.add_edge_auto(u, static_cast<NodeId>(v));
    used.insert(key(u, static_cast<NodeId>(v)));
  }
  std::size_t max_extra = n * (n - 1) / 2 - (n - 1);
  extra_edges = std::min(extra_edges, max_extra);
  while (extra_edges > 0) {
    NodeId u = static_cast<NodeId>(rng.below(n));
    NodeId v = static_cast<NodeId>(rng.below(n));
    if (u == v || used.contains(key(u, v))) continue;
    g.add_edge_auto(u, v);
    used.insert(key(u, v));
    --extra_edges;
  }
  PortGraph shuffled = shuffle_ports(g, util::derive_seed(seed, 1));
  shuffled.validate();
  return shuffled;
}

PortGraph shuffle_ports(const PortGraph& g, std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  // perm[v][old_port] = new_port
  std::vector<std::vector<Port>> perm(g.n());
  for (std::size_t v = 0; v < g.n(); ++v) {
    int d = g.degree(static_cast<NodeId>(v));
    perm[v].resize(static_cast<std::size_t>(d));
    std::iota(perm[v].begin(), perm[v].end(), 0);
    for (std::size_t i = perm[v].size(); i > 1; --i)
      std::swap(perm[v][i - 1], perm[v][rng.below(i)]);
  }
  PortGraph out(g.n());
  for (std::size_t v = 0; v < g.n(); ++v) {
    for (Port p = 0; p < g.degree(static_cast<NodeId>(v)); ++p) {
      const HalfEdge& he = g.at(static_cast<NodeId>(v), p);
      if (static_cast<std::size_t>(he.neighbor) < v) continue;  // add once
      Port np = perm[v][static_cast<std::size_t>(p)];
      Port nq = perm[static_cast<std::size_t>(he.neighbor)]
                    [static_cast<std::size_t>(he.rev_port)];
      out.add_edge(static_cast<NodeId>(v), np, he.neighbor, nq);
    }
  }
  return out;
}

PortGraph torus(std::size_t rows, std::size_t cols) {
  ANOLE_CHECK_MSG(rows >= 3 && cols >= 3, "torus needs rows, cols >= 3");
  PortGraph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  // Ports: 0 = up, 1 = down, 2 = left, 3 = right, everywhere.
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      g.add_edge(id(r, c), 1, id((r + 1) % rows, c), 0);      // down/up
      g.add_edge(id(r, c), 3, id(r, (c + 1) % cols), 2);      // right/left
    }
  }
  g.validate();
  return g;
}

PortGraph lollipop(std::size_t head, std::size_t tail) {
  ANOLE_CHECK(head >= 3 && tail >= 1);
  PortGraph g(head + tail);
  for (std::size_t u = 0; u < head; ++u)
    for (std::size_t v = u + 1; v < head; ++v)
      g.add_edge(static_cast<NodeId>(u), static_cast<Port>(v - 1),
                 static_cast<NodeId>(v), static_cast<Port>(u));
  // Path off clique node 0 on its next free port.
  NodeId prev = 0;
  for (std::size_t t = 0; t < tail; ++t) {
    NodeId next = static_cast<NodeId>(head + t);
    g.add_edge_auto(prev, next);
    prev = next;
  }
  g.validate();
  return g;
}

PortGraph wheel(std::size_t rim) {
  ANOLE_CHECK_MSG(rim >= 3, "wheel needs rim >= 3");
  PortGraph g(rim + 1);
  NodeId hub = static_cast<NodeId>(rim);
  for (std::size_t v = 0; v < rim; ++v) {
    std::size_t w = (v + 1) % rim;
    g.add_edge(static_cast<NodeId>(v), 0, static_cast<NodeId>(w), 1);
  }
  for (std::size_t v = 0; v < rim; ++v)
    g.add_edge(hub, static_cast<Port>(v), static_cast<NodeId>(v), 2);
  g.validate();
  return g;
}

PortGraph caterpillar(std::size_t spine, const std::vector<int>& leg_count) {
  ANOLE_CHECK(spine >= 2);
  PortGraph g(spine);
  for (std::size_t v = 0; v + 1 < spine; ++v)
    g.add_edge_auto(static_cast<NodeId>(v), static_cast<NodeId>(v + 1));
  for (std::size_t v = 0; v < spine && v < leg_count.size(); ++v) {
    for (int l = 0; l < leg_count[v]; ++l) {
      NodeId leaf = g.add_node();
      g.add_edge_auto(static_cast<NodeId>(v), leaf);
    }
  }
  g.validate();
  return g;
}

PortGraph disjoint_union(const PortGraph& a, const PortGraph& b) {
  PortGraph g(a.n() + b.n());
  auto copy_edges = [&g](const PortGraph& src, NodeId offset) {
    for (std::size_t v = 0; v < src.n(); ++v) {
      for (Port p = 0; p < src.degree(static_cast<NodeId>(v)); ++p) {
        const HalfEdge& he = src.at(static_cast<NodeId>(v), p);
        if (static_cast<std::size_t>(he.neighbor) < v) continue;
        g.add_edge(static_cast<NodeId>(v) + offset, p, he.neighbor + offset,
                   he.rev_port);
      }
    }
  };
  copy_edges(a, 0);
  copy_edges(b, static_cast<NodeId>(a.n()));
  return g;
}

AliveSubgraph alive_subgraph(const PortGraph& g,
                             const std::vector<bool>& alive) {
  ANOLE_CHECK(alive.size() == g.n());
  AliveSubgraph sub;
  sub.to_sub.assign(g.n(), -1);
  for (std::size_t v = 0; v < g.n(); ++v) {
    if (!alive[v]) continue;
    sub.to_sub[v] = static_cast<NodeId>(sub.to_full.size());
    sub.to_full.push_back(static_cast<NodeId>(v));
  }
  sub.graph = PortGraph(sub.to_full.size());
  // Port compaction first (both endpoints' compacted ports are needed to
  // add an edge), then one add_edge per surviving edge, lower sub id first.
  sub.sub_port.resize(g.n());
  auto survives = [&](const HalfEdge& he) {
    return he.neighbor >= 0 && alive[static_cast<std::size_t>(he.neighbor)];
  };
  for (std::size_t v = 0; v < g.n(); ++v) {
    if (!alive[v]) continue;
    sub.sub_port[v].assign(
        static_cast<std::size_t>(g.degree(static_cast<NodeId>(v))), -1);
    Port next = 0;
    for (Port p = 0; p < g.degree(static_cast<NodeId>(v)); ++p)
      if (survives(g.at(static_cast<NodeId>(v), p)))
        sub.sub_port[v][static_cast<std::size_t>(p)] = next++;
  }
  for (std::size_t v = 0; v < g.n(); ++v) {
    if (!alive[v]) continue;
    for (Port p = 0; p < g.degree(static_cast<NodeId>(v)); ++p) {
      const HalfEdge& he = g.at(static_cast<NodeId>(v), p);
      if (!survives(he)) continue;
      NodeId sv = sub.to_sub[v];
      NodeId su = sub.to_sub[static_cast<std::size_t>(he.neighbor)];
      if (su < sv) continue;  // added from the other side
      sub.graph.add_edge(sv, sub.sub_port[v][static_cast<std::size_t>(p)], su,
                         sub.sub_port[static_cast<std::size_t>(he.neighbor)]
                                     [static_cast<std::size_t>(he.rev_port)]);
    }
  }
  return sub;
}

}  // namespace anole::portgraph
