#pragma once
// Deterministic builders for standard port-numbered graphs, plus seeded
// random graphs. All builders produce validated graphs; port assignments
// are canonical (documented per builder) so experiments are reproducible.

#include <cstdint>

#include "portgraph/port_graph.hpp"

namespace anole::portgraph {

/// Cycle 0-1-...-(n-1)-0, n >= 3. Port 0 = clockwise (to v+1), port 1 =
/// counterclockwise at every node — the fully symmetric ring (infeasible).
[[nodiscard]] PortGraph ring(std::size_t n);

/// Path 0-1-...-(n-1), n >= 2. Interior nodes: port 0 toward higher index,
/// port 1 toward lower; endpoints have the single port 0.
[[nodiscard]] PortGraph path(std::size_t n);

/// Complete graph on n >= 2 nodes. At node i the neighbors in increasing
/// id order receive ports 0..n-2.
[[nodiscard]] PortGraph clique(std::size_t n);

/// rows x cols grid, row-major ids. Ports at each node enumerate the
/// existing neighbors in the order (up, down, left, right).
[[nodiscard]] PortGraph grid(std::size_t rows, std::size_t cols);

/// d-dimensional hypercube; port i at every node crosses dimension i.
/// Vertex-transitive with identical views everywhere: the canonical
/// infeasible example beyond the 2-node graph.
[[nodiscard]] PortGraph hypercube(std::size_t d);

/// Complete bipartite K_{a,b}; ports enumerate the other side in id order.
[[nodiscard]] PortGraph complete_bipartite(std::size_t a, std::size_t b);

/// Complete binary tree with n nodes (heap layout). Ports enumerate
/// (parent, left child, right child) in that order where present.
[[nodiscard]] PortGraph binary_tree(std::size_t n);

/// Connected random graph: a random spanning tree plus `extra_edges`
/// additional random non-parallel edges; ports are assigned in insertion
/// order and then shuffled per node. Deterministic in `seed`.
[[nodiscard]] PortGraph random_connected(std::size_t n,
                                         std::size_t extra_edges,
                                         std::uint64_t seed);

/// Applies an independent uniformly random permutation to the port numbers
/// of every node (the graph stays the same up to port renaming).
[[nodiscard]] PortGraph shuffle_ports(const PortGraph& g, std::uint64_t seed);

/// Disjoint union of `a` and `b`: nodes of `b` are re-numbered to follow
/// those of `a`. The result is disconnected; callers add bridging edges.
[[nodiscard]] PortGraph disjoint_union(const PortGraph& a, const PortGraph& b);

/// rows x cols torus (both >= 3): port i crosses direction i in
/// (up, down, left, right) order at every node. Vertex-transitive with a
/// consistent orientation — infeasible, like the ring.
[[nodiscard]] PortGraph torus(std::size_t rows, std::size_t cols);

/// Lollipop: a clique of size `head` (>= 3) with a path of `tail` extra
/// nodes (>= 1) hanging off clique node 0. Highly asymmetric; the classic
/// small-phi / large-D shape.
[[nodiscard]] PortGraph lollipop(std::size_t head, std::size_t tail);

/// Wheel: a hub adjacent to all `rim` (>= 3) ring nodes. The hub is the
/// unique max-degree node, so the graph is feasible.
[[nodiscard]] PortGraph wheel(std::size_t rim);

/// Caterpillar: a spine path of `spine` (>= 2) nodes, leg_count[i] legs
/// (degree-1 leaves) at spine node i. leg_count may be shorter than the
/// spine (missing entries mean 0 legs).
[[nodiscard]] PortGraph caterpillar(std::size_t spine,
                                    const std::vector<int>& leg_count);

/// The port-compacted restriction of `g` to its alive nodes, as produced
/// for each fault epoch by sim::FaultInjector: crashed nodes (and any
/// masked/crashed-endpoint slots, which crash_node leaves as placeholders)
/// are dropped, alive nodes are renumbered in ascending id order, and each
/// alive node's surviving ports are renumbered 0..d'-1 preserving their
/// relative order. The node and port maps let fault events addressed in
/// full-graph coordinates be translated into subgraph edits (and subgraph
/// leaders be reported as full-graph nodes).
struct AliveSubgraph {
  PortGraph graph;
  std::vector<NodeId> to_full;  ///< sub id -> full id
  std::vector<NodeId> to_sub;   ///< full id -> sub id, -1 when crashed
  /// sub_port[full v][full p] = port in `graph` at to_sub[v], -1 if dropped.
  std::vector<std::vector<Port>> sub_port;
};
[[nodiscard]] AliveSubgraph alive_subgraph(const PortGraph& g,
                                           const std::vector<bool>& alive);

}  // namespace anole::portgraph
