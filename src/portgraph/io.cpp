#include "portgraph/io.hpp"

#include <istream>
#include <sstream>

namespace anole::portgraph {

coding::BitString encode_graph(const PortGraph& g) {
  std::vector<std::uint64_t> vals;
  vals.push_back(g.n());
  for (std::size_t v = 0; v < g.n(); ++v) {
    vals.push_back(static_cast<std::uint64_t>(g.degree(static_cast<NodeId>(v))));
    for (Port p = 0; p < g.degree(static_cast<NodeId>(v)); ++p) {
      const HalfEdge& he = g.at(static_cast<NodeId>(v), p);
      vals.push_back(static_cast<std::uint64_t>(he.neighbor));
      vals.push_back(static_cast<std::uint64_t>(he.rev_port));
    }
  }
  return coding::encode_ints(vals);
}

PortGraph decode_graph(const coding::BitString& bits) {
  std::vector<std::uint64_t> vals = coding::decode_ints(bits);
  ANOLE_CHECK(!vals.empty());
  std::size_t pos = 0;
  std::size_t n = static_cast<std::size_t>(vals[pos++]);
  PortGraph g(n);
  for (std::size_t v = 0; v < n; ++v) {
    ANOLE_CHECK(pos < vals.size());
    std::size_t deg = static_cast<std::size_t>(vals[pos++]);
    for (std::size_t p = 0; p < deg; ++p) {
      ANOLE_CHECK(pos + 1 < vals.size());
      NodeId u = static_cast<NodeId>(vals[pos++]);
      Port q = static_cast<Port>(vals[pos++]);
      if (static_cast<std::size_t>(u) >= v) continue;  // add each edge once
      // Edge {u, v} seen from v through port p; add with both ports.
      g.add_edge(u, q, static_cast<NodeId>(v), static_cast<Port>(p));
    }
  }
  ANOLE_CHECK_MSG(pos == vals.size(), "trailing data in graph code");
  g.validate();
  return g;
}

std::string to_edge_list(const PortGraph& g) {
  std::ostringstream oss;
  oss << "anole-graph 1\n";
  oss << "n " << g.n() << '\n';
  for (std::size_t v = 0; v < g.n(); ++v) {
    for (Port p = 0; p < g.degree(static_cast<NodeId>(v)); ++p) {
      const HalfEdge& he = g.at(static_cast<NodeId>(v), p);
      if (static_cast<std::size_t>(he.neighbor) < v) continue;
      oss << "e " << v << ' ' << p << ' ' << he.neighbor << ' '
          << he.rev_port << '\n';
    }
  }
  return oss.str();
}

PortGraph from_edge_list(std::istream& in) {
  std::string line;
  ANOLE_CHECK_MSG(std::getline(in, line) &&
                      line.rfind("anole-graph 1", 0) == 0,
                  "missing 'anole-graph 1' header");
  PortGraph g;
  bool have_n = false;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag) || tag[0] == '#') continue;
    if (tag == "n") {
      std::size_t n = 0;
      ANOLE_CHECK_MSG(static_cast<bool>(ls >> n), "bad 'n' line");
      ANOLE_CHECK_MSG(!have_n, "duplicate 'n' line");
      g = PortGraph(n);
      have_n = true;
    } else if (tag == "e") {
      ANOLE_CHECK_MSG(have_n, "'e' line before 'n'");
      long long u, pu, v, pv;
      ANOLE_CHECK_MSG(static_cast<bool>(ls >> u >> pu >> v >> pv),
                      "bad 'e' line: " << line);
      g.add_edge(static_cast<NodeId>(u), static_cast<Port>(pu),
                 static_cast<NodeId>(v), static_cast<Port>(pv));
    } else {
      ANOLE_CHECK_MSG(false, "unknown line tag '" << tag << "'");
    }
  }
  ANOLE_CHECK_MSG(have_n, "no 'n' line");
  g.validate();
  return g;
}

PortGraph from_edge_list(const std::string& text) {
  std::istringstream in(text);
  return from_edge_list(in);
}

std::string to_text(const PortGraph& g) {
  std::ostringstream oss;
  oss << "n=" << g.n() << " m=" << g.m() << '\n';
  for (std::size_t v = 0; v < g.n(); ++v) {
    oss << v << ":";
    for (Port p = 0; p < g.degree(static_cast<NodeId>(v)); ++p) {
      const HalfEdge& he = g.at(static_cast<NodeId>(v), p);
      oss << " " << p << "->" << he.neighbor << "(" << he.rev_port << ")";
    }
    oss << '\n';
  }
  return oss.str();
}

}  // namespace anole::portgraph
