#pragma once
// Binary and text serialization of port graphs. The binary code is the
// "faithful map" advice of the paper's baseline discussion: the total
// information about the network, Theta(m log n) bits.

#include <iosfwd>
#include <string>

#include "coding/codec.hpp"
#include "portgraph/port_graph.hpp"

namespace anole::portgraph {

/// bin(G): n, then per node the degree and per port (neighbor, rev_port).
[[nodiscard]] coding::BitString encode_graph(const PortGraph& g);
[[nodiscard]] PortGraph decode_graph(const coding::BitString& bits);

/// Human-readable adjacency dump (one line per node) for examples/tools.
[[nodiscard]] std::string to_text(const PortGraph& g);

/// Parseable edge-list format:
///   anole-graph 1
///   n <N>
///   e <u> <pu> <v> <pv>     (one line per edge; '#' starts a comment)
[[nodiscard]] std::string to_edge_list(const PortGraph& g);
[[nodiscard]] PortGraph from_edge_list(std::istream& in);
[[nodiscard]] PortGraph from_edge_list(const std::string& text);

}  // namespace anole::portgraph
