#include "portgraph/port_graph.hpp"

#include <algorithm>
#include <deque>

namespace anole::portgraph {

std::size_t PortGraph::m() const noexcept {
  // Count only assigned slots: partially built graphs (pruned views,
  // stretches) may have placeholder ports awaiting later edges.
  std::size_t half = 0;
  for (const auto& row : adj_)
    for (const HalfEdge& he : row)
      if (he.neighbor >= 0) ++half;
  return half / 2;
}

void PortGraph::add_edge(NodeId u, Port pu, NodeId v, Port pv) {
  ANOLE_CHECK_MSG(u != v, "self-loop at node " << u);
  ANOLE_CHECK(u >= 0 && static_cast<std::size_t>(u) < adj_.size());
  ANOLE_CHECK(v >= 0 && static_cast<std::size_t>(v) < adj_.size());
  auto& ru = adj_[static_cast<std::size_t>(u)];
  auto& rv = adj_[static_cast<std::size_t>(v)];
  if (ru.size() <= static_cast<std::size_t>(pu))
    ru.resize(static_cast<std::size_t>(pu) + 1);
  if (rv.size() <= static_cast<std::size_t>(pv))
    rv.resize(static_cast<std::size_t>(pv) + 1);
  ANOLE_CHECK_MSG(ru[static_cast<std::size_t>(pu)].neighbor < 0,
                  "port " << pu << " at node " << u << " already used");
  ANOLE_CHECK_MSG(rv[static_cast<std::size_t>(pv)].neighbor < 0,
                  "port " << pv << " at node " << v << " already used");
  ru[static_cast<std::size_t>(pu)] = HalfEdge{v, pv};
  rv[static_cast<std::size_t>(pv)] = HalfEdge{u, pu};
  diameter_cache_ = -1;
}

std::pair<Port, Port> PortGraph::add_edge_auto(NodeId u, NodeId v) {
  auto first_free = [&](NodeId w) -> Port {
    const auto& row = adj_[static_cast<std::size_t>(w)];
    for (std::size_t p = 0; p < row.size(); ++p)
      if (row[p].neighbor < 0) return static_cast<Port>(p);
    return static_cast<Port>(row.size());
  };
  Port pu = first_free(u);
  Port pv = first_free(v);
  add_edge(u, pu, v, pv);
  return {pu, pv};
}

std::vector<PortGraph::RemovedEdge> PortGraph::crash_node(NodeId v) {
  ANOLE_CHECK(v >= 0 && static_cast<std::size_t>(v) < adj_.size());
  std::vector<RemovedEdge> removed;
  auto& row = adj_[static_cast<std::size_t>(v)];
  for (std::size_t p = 0; p < row.size(); ++p) {
    HalfEdge& he = row[p];
    if (he.neighbor < 0) continue;
    removed.push_back(RemovedEdge{v, static_cast<Port>(p), he.neighbor,
                                  he.rev_port});
    adj_[static_cast<std::size_t>(he.neighbor)]
        [static_cast<std::size_t>(he.rev_port)] = HalfEdge{};
    he = HalfEdge{};
  }
  diameter_cache_ = -1;
  return removed;
}

void PortGraph::rewire_edge(NodeId u1, Port p1, NodeId u2, Port p2) {
  ANOLE_CHECK(u1 >= 0 && static_cast<std::size_t>(u1) < adj_.size());
  ANOLE_CHECK(u2 >= 0 && static_cast<std::size_t>(u2) < adj_.size());
  ANOLE_CHECK(p1 >= 0 && p1 < degree(u1) && p2 >= 0 && p2 < degree(u2));
  HalfEdge e1 = adj_[static_cast<std::size_t>(u1)][static_cast<std::size_t>(p1)];
  HalfEdge e2 = adj_[static_cast<std::size_t>(u2)][static_cast<std::size_t>(p2)];
  ANOLE_CHECK_MSG(e1.neighbor >= 0 && e2.neighbor >= 0,
                  "rewire_edge on an unassigned port");
  NodeId v1 = e1.neighbor;
  NodeId v2 = e2.neighbor;
  ANOLE_CHECK_MSG(u1 != u2 && v1 != v2 && u1 != v2 && u2 != v1,
                  "rewire_edge endpoints must be pairwise distinct");
  ANOLE_CHECK_MSG(!port_to(u1, u2) && !port_to(v1, v2),
                  "rewire_edge would create a multi-edge");
  adj_[static_cast<std::size_t>(u1)][static_cast<std::size_t>(p1)] =
      HalfEdge{u2, p2};
  adj_[static_cast<std::size_t>(u2)][static_cast<std::size_t>(p2)] =
      HalfEdge{u1, p1};
  adj_[static_cast<std::size_t>(v1)][static_cast<std::size_t>(e1.rev_port)] =
      HalfEdge{v2, e2.rev_port};
  adj_[static_cast<std::size_t>(v2)][static_cast<std::size_t>(e2.rev_port)] =
      HalfEdge{v1, e1.rev_port};
  diameter_cache_ = -1;
}

std::optional<Port> PortGraph::port_to(NodeId u, NodeId v) const {
  const auto& row = adj_[static_cast<std::size_t>(u)];
  for (std::size_t p = 0; p < row.size(); ++p)
    if (row[p].neighbor == v) return static_cast<Port>(p);
  return std::nullopt;
}

void PortGraph::validate() const {
  for (std::size_t v = 0; v < adj_.size(); ++v) {
    const auto& row = adj_[v];
    std::vector<NodeId> seen;
    for (std::size_t p = 0; p < row.size(); ++p) {
      const HalfEdge& he = row[p];
      ANOLE_CHECK_MSG(he.neighbor >= 0,
                      "unassigned port " << p << " at node " << v);
      ANOLE_CHECK_MSG(static_cast<std::size_t>(he.neighbor) < adj_.size(),
                      "dangling edge at node " << v);
      ANOLE_CHECK_MSG(he.neighbor != static_cast<NodeId>(v),
                      "self-loop at node " << v);
      seen.push_back(he.neighbor);
      // Two-sided consistency.
      const auto& back = adj_[static_cast<std::size_t>(he.neighbor)];
      ANOLE_CHECK_MSG(
          he.rev_port >= 0 &&
              static_cast<std::size_t>(he.rev_port) < back.size(),
          "bad reverse port at node " << v << " port " << p);
      const HalfEdge& rev = back[static_cast<std::size_t>(he.rev_port)];
      ANOLE_CHECK_MSG(rev.neighbor == static_cast<NodeId>(v) &&
                          rev.rev_port == static_cast<Port>(p),
                      "port inconsistency on edge {" << v << ","
                                                     << he.neighbor << "}");
    }
    std::sort(seen.begin(), seen.end());
    ANOLE_CHECK_MSG(std::adjacent_find(seen.begin(), seen.end()) == seen.end(),
                    "multi-edge at node " << v);
  }
  ANOLE_CHECK_MSG(connected(), "graph is not connected");
}

bool PortGraph::connected() const {
  if (adj_.empty()) return true;
  std::vector<int> dist = bfs_distances(0);
  return std::none_of(dist.begin(), dist.end(),
                      [](int d) { return d < 0; });
}

std::vector<int> PortGraph::bfs_distances(NodeId src) const {
  std::vector<int> dist(adj_.size(), -1);
  std::deque<NodeId> queue{src};
  dist[static_cast<std::size_t>(src)] = 0;
  while (!queue.empty()) {
    NodeId v = queue.front();
    queue.pop_front();
    for (const HalfEdge& he : adj_[static_cast<std::size_t>(v)]) {
      if (he.neighbor >= 0 && dist[static_cast<std::size_t>(he.neighbor)] < 0) {
        dist[static_cast<std::size_t>(he.neighbor)] =
            dist[static_cast<std::size_t>(v)] + 1;
        queue.push_back(he.neighbor);
      }
    }
  }
  return dist;
}

int PortGraph::diameter() const {
  if (diameter_cache_ >= 0) return diameter_cache_;
  int diam = 0;
  for (std::size_t v = 0; v < adj_.size(); ++v) {
    std::vector<int> dist = bfs_distances(static_cast<NodeId>(v));
    for (int d : dist) {
      ANOLE_CHECK_MSG(d >= 0, "diameter of a disconnected graph");
      diam = std::max(diam, d);
    }
  }
  diameter_cache_ = diam;
  return diam;
}

std::optional<std::vector<NodeId>> PortGraph::walk(
    NodeId start, const std::vector<int>& port_seq) const {
  if (port_seq.size() % 2 != 0) return std::nullopt;
  std::vector<NodeId> nodes{start};
  NodeId cur = start;
  for (std::size_t i = 0; i < port_seq.size(); i += 2) {
    Port p = port_seq[i];
    Port q = port_seq[i + 1];
    if (p < 0 || p >= degree(cur)) return std::nullopt;
    const HalfEdge& he = at(cur, p);
    if (he.rev_port != q) return std::nullopt;
    cur = he.neighbor;
    nodes.push_back(cur);
  }
  return nodes;
}

bool is_port_isomorphism(const PortGraph& a, const PortGraph& b,
                         const std::vector<NodeId>& f) {
  if (a.n() != b.n() || f.size() != a.n()) return false;
  std::vector<bool> hit(b.n(), false);
  for (NodeId img : f) {
    if (img < 0 || static_cast<std::size_t>(img) >= b.n() ||
        hit[static_cast<std::size_t>(img)])
      return false;
    hit[static_cast<std::size_t>(img)] = true;
  }
  for (std::size_t v = 0; v < a.n(); ++v) {
    NodeId fv = f[v];
    if (a.degree(static_cast<NodeId>(v)) != b.degree(fv)) return false;
    for (Port p = 0; p < a.degree(static_cast<NodeId>(v)); ++p) {
      const HalfEdge& ha = a.at(static_cast<NodeId>(v), p);
      const HalfEdge& hb = b.at(fv, p);
      if (hb.neighbor != f[static_cast<std::size_t>(ha.neighbor)] ||
          hb.rev_port != ha.rev_port)
        return false;
    }
  }
  return true;
}

}  // namespace anole::portgraph
