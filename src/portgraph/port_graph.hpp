#pragma once
// PortGraph: the paper's network model — a simple undirected connected
// graph whose nodes are anonymous but whose edge endpoints carry local
// port numbers: at a node v of degree d, the d incident edges are numbered
// 0..d-1 with no relation between the two endpoints of an edge.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace anole::portgraph {

using NodeId = std::int32_t;
using Port = std::int32_t;

/// One endpoint record: following port `p` at node `v` leads to
/// adj(v)[p].neighbor, entering it through port adj(v)[p].rev_port.
struct HalfEdge {
  NodeId neighbor = -1;
  Port rev_port = -1;

  bool operator==(const HalfEdge&) const = default;
};

class PortGraph {
 public:
  PortGraph() = default;
  explicit PortGraph(std::size_t n) : adj_(n) {}

  /// Number of nodes.
  [[nodiscard]] std::size_t n() const noexcept { return adj_.size(); }

  /// Number of edges.
  [[nodiscard]] std::size_t m() const noexcept;

  [[nodiscard]] int degree(NodeId v) const {
    return static_cast<int>(adj_[static_cast<std::size_t>(v)].size());
  }

  /// Number of currently *assigned* ports at `v`. Equals degree() on a
  /// validated graph; differs after crash_node, which masks slots in place
  /// (surviving ports keep their numbers) instead of shrinking the row.
  [[nodiscard]] int assigned_degree(NodeId v) const {
    int d = 0;
    for (const HalfEdge& he : adj_[static_cast<std::size_t>(v)])
      if (he.neighbor >= 0) ++d;
    return d;
  }

  /// The half-edge reached through port `p` at node `v`.
  [[nodiscard]] const HalfEdge& at(NodeId v, Port p) const {
    const auto& row = adj_[static_cast<std::size_t>(v)];
    ANOLE_DCHECK(p >= 0 && static_cast<std::size_t>(p) < row.size());
    return row[static_cast<std::size_t>(p)];
  }

  [[nodiscard]] const std::vector<HalfEdge>& neighbors(NodeId v) const {
    return adj_[static_cast<std::size_t>(v)];
  }

  /// Adds a fresh isolated node and returns its id.
  NodeId add_node() {
    adj_.emplace_back();
    diameter_cache_ = -1;
    return static_cast<NodeId>(adj_.size() - 1);
  }

  /// Adds the edge {u,v} with the given ports. The port slots are created
  /// on demand (intermediate slots are filled with placeholder -1 entries
  /// and must all be assigned before validate() passes).
  void add_edge(NodeId u, Port pu, NodeId v, Port pv);

  /// Adds the edge {u,v} using the lowest unassigned port at each endpoint.
  /// Returns the (pu, pv) pair used.
  std::pair<Port, Port> add_edge_auto(NodeId u, NodeId v);

  /// Port at `u` leading to `v`, if the edge exists.
  [[nodiscard]] std::optional<Port> port_to(NodeId u, NodeId v) const;

  /// One edge removed by crash_node, recorded with both endpoints' ports —
  /// exactly what add_edge(u, pu, v, pv) needs to restore it on recovery.
  struct RemovedEdge {
    NodeId u = -1;
    Port pu = -1;
    NodeId v = -1;
    Port pv = -1;
  };

  /// Crash-fault mutation (sim/faults.hpp): masks every assigned edge
  /// incident to `v` IN PLACE — both half-edge slots of each edge become
  /// placeholders (-1) — so every surviving node keeps its port numbers
  /// and row sizes. Returns the removed edges for later recovery via
  /// add_edge. The graph no longer validate()s while any slot is masked;
  /// run protocols on a port-compacted copy (builders.hpp
  /// alive_subgraph). Invalidates the memoized diameter.
  std::vector<RemovedEdge> crash_node(NodeId v);

  /// Degree-preserving rewiring: a 2-swap replacing the two edges out of
  /// (u1,p1) and (u2,p2) — say {u1,v1} entered at q1 and {u2,v2} entered
  /// at q2 — with the cross edges u1(p1)-u2(p2) and v1(q1)-v2(q2). Every
  /// endpoint keeps its port number, so all degrees and port contiguity
  /// are preserved (the incremental view-repair precondition, DESIGN.md
  /// §12). Requires both slots assigned, the four endpoints pairwise
  /// distinct, and neither replacement edge already present (else
  /// self-loop/multi-edge). May disconnect the graph — callers that need
  /// connectivity (sim::FaultPlan's generator) must check. Invalidates
  /// the memoized diameter.
  void rewire_edge(NodeId u1, Port p1, NodeId u2, Port p2);

  /// Verifies the model invariants: no self-loops, no multi-edges, port
  /// numbers contiguous 0..deg-1, two-sided consistency, connectivity.
  /// Throws std::logic_error with a description on violation.
  void validate() const;

  /// True iff the graph is connected (n()==0 counts as connected).
  [[nodiscard]] bool connected() const;

  /// BFS distances from `src` (-1 for unreachable).
  [[nodiscard]] std::vector<int> bfs_distances(NodeId src) const;

  /// Exact diameter (max over all pairs). Graph must be connected. The
  /// O(n*m) all-sources BFS runs once; later calls return the memoized
  /// value (harnesses and scenario cells ask repeatedly for one graph).
  /// Not safe against a concurrent *first* call on a shared const graph;
  /// cells own their graphs, so this never happens in the runner.
  [[nodiscard]] int diameter() const;

  /// Walks the path (p1,q1,...,pk,qk) from `start`: follows port p_i and
  /// checks the far-end port is q_i. Returns the sequence of visited nodes
  /// (k+1 entries, including `start`), or nullopt if some step is invalid.
  [[nodiscard]] std::optional<std::vector<NodeId>> walk(
      NodeId start, const std::vector<int>& port_seq) const;

  /// Structural equality (adjacency only; the diameter cache is ignored).
  bool operator==(const PortGraph& other) const { return adj_ == other.adj_; }

 private:
  std::vector<std::vector<HalfEdge>> adj_;
  /// Memoized diameter(); -1 = not computed yet (also reset by mutation).
  mutable int diameter_cache_ = -1;
};

/// True iff `f` (a permutation of node ids) is a port-preserving isomorphism
/// from `a` to `b`.
[[nodiscard]] bool is_port_isomorphism(const PortGraph& a, const PortGraph& b,
                                       const std::vector<NodeId>& f);

}  // namespace anole::portgraph
