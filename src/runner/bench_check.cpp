#include "runner/bench_check.hpp"

#include <cstdlib>
#include <istream>
#include <ostream>

namespace anole::runner {

namespace {

/// Extracts the JSON string value of `key` from one bench record line, or
/// nullopt-like empty handling via the `ok` flag. Values written by
/// json_escape may contain \" and \\ escapes; nothing else is expected.
bool extract_string(const std::string& line, const std::string& key,
                    std::string& out) {
  std::string needle = "\"" + key + "\": \"";
  std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  out.clear();
  for (std::size_t i = at + needle.size(); i < line.size(); ++i) {
    char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      out.push_back(line[++i]);
      continue;
    }
    if (c == '"') return true;
    out.push_back(c);
  }
  return false;  // unterminated string: malformed line
}

bool extract_number(const std::string& line, const std::string& key,
                    double& out) {
  std::string needle = "\"" + key + "\": ";
  std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const char* start = line.c_str() + at + needle.size();
  char* end = nullptr;
  out = std::strtod(start, &end);
  return end != start;
}

}  // namespace

BenchTable read_bench_records(std::istream& in) {
  BenchTable table;
  std::string line;
  while (std::getline(in, line)) {
    std::string scenario;
    std::string cell;
    double wall_ms = 0.0;
    if (!extract_string(line, "scenario", scenario)) continue;
    if (!extract_string(line, "cell", cell)) continue;
    if (!extract_number(line, "wall_ms", wall_ms)) continue;
    // Append-only history: the last record per key is the current one.
    table[{std::move(scenario), std::move(cell)}] = wall_ms;
  }
  return table;
}

BenchComparison compare_bench(const BenchTable& baseline,
                              const BenchTable& fresh, double tolerance_pct,
                              std::span<const std::string> match) {
  BenchComparison cmp;
  auto matches = [&match](const std::string& label) {
    if (match.empty()) return true;
    for (const std::string& m : match)
      if (label.find(m) != std::string::npos) return true;
    return false;
  };
  for (const auto& [key, base_ms] : baseline) {
    auto it = fresh.find(key);
    std::string label = key.first + "/" + key.second;
    if (it == fresh.end()) {
      // An enforced cell that vanished is lost coverage, not a free pass:
      // renaming a tracked cell must refresh the committed baseline too.
      if (matches(label)) ++cmp.regressions;
      cmp.dropped.push_back(std::move(label));
      continue;
    }
    BenchComparison::Cell cell;
    cell.scenario = key.first;
    cell.cell = key.second;
    cell.baseline_ms = base_ms;
    cell.fresh_ms = it->second;
    cell.enforced = matches(label);
    cell.regressed = cell.enforced &&
                     cell.fresh_ms > base_ms * (1.0 + tolerance_pct / 100.0);
    if (cell.regressed) ++cmp.regressions;
    cmp.cells.push_back(std::move(cell));
  }
  for (const auto& [key, ms] : fresh) {
    (void)ms;
    if (baseline.find(key) == baseline.end())
      cmp.added.push_back(key.first + "/" + key.second);
  }
  return cmp;
}

void print_bench_comparison(const BenchComparison& cmp, double tolerance_pct,
                            std::ostream& os) {
  for (const auto& cell : cmp.cells) {
    double ratio =
        cell.baseline_ms <= 0.0 ? 0.0 : cell.fresh_ms / cell.baseline_ms;
    os << (cell.regressed ? "REGRESSED " : (cell.enforced ? "ok        "
                                                          : "info      "))
       << cell.scenario << "/" << cell.cell << ": " << cell.baseline_ms
       << " ms -> " << cell.fresh_ms << " ms (x" << ratio << ")\n";
  }
  for (const std::string& label : cmp.dropped)
    os << "dropped   " << label
       << " (in baseline only — fails if enforced)\n";
  for (const std::string& label : cmp.added)
    os << "new       " << label << " (in fresh only)\n";
  if (cmp.ok())
    os << "bench_check: OK (" << cmp.cells.size() << " shared cells, "
       << "tolerance " << tolerance_pct << "%)\n";
  else
    os << "bench_check: " << cmp.regressions << " cell(s) regressed beyond "
       << tolerance_pct << "%\n";
}

}  // namespace anole::runner
