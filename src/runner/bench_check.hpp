#pragma once
// Regression guard over --bench-out perf records (DESIGN.md §6/§9).
//
// anole_bench --bench-out appends one JSON-lines record per cell row
// ({"scenario": ..., "cell": ..., "wall_ms": ..., ...}); the repo root
// carries committed baseline files (BENCH_order.json, BENCH_stable.json)
// and CI re-measures them on every build. tools/bench_check compares a
// fresh bench file against a baseline with a relative tolerance and fails
// the job when a tracked cell regressed — so a change that silently
// un-does the ranked-compare or stable-quotient win is caught in CI, not
// in the next profile session.
//
// Semantics, pinned by tests/bench_check_test.cpp:
//   - records are keyed by (scenario, cell); the LAST record per key wins
//     (bench files are append-only histories);
//   - only keys present in BOTH files are timed-compared; fresh-only keys
//     are reported as new (never fail). A baseline-only key is reported
//     as dropped — and counts as a regression when it matches an enforced
//     filter, because a tracked cell vanishing (renamed, deleted) is
//     exactly the silent coverage loss the guard exists to catch; renames
//     must refresh the committed baseline in the same change;
//   - a cell regresses when fresh > baseline * (1 + tolerance_pct/100);
//   - `match` substrings (case-sensitive, against "scenario/cell")
//     restrict which keys are *enforced*; non-matching shared keys are
//     still listed, informationally. Empty match list = enforce all.

#include <iosfwd>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace anole::runner {

/// (scenario, cell) -> wall_ms of the last record with that key.
using BenchTable = std::map<std::pair<std::string, std::string>, double>;

/// Parses a --bench-out JSON-lines stream. Lines without the scenario,
/// cell and wall_ms fields are skipped (the format is append-only and may
/// grow fields; the guard only needs these three).
[[nodiscard]] BenchTable read_bench_records(std::istream& in);

struct BenchComparison {
  struct Cell {
    std::string scenario;
    std::string cell;
    double baseline_ms = 0.0;
    double fresh_ms = 0.0;
    bool enforced = false;   ///< matched the filter (or filter empty)
    bool regressed = false;  ///< enforced and above tolerance
  };
  std::vector<Cell> cells;          ///< shared keys, file order of the map
  std::vector<std::string> dropped; ///< "scenario/cell" only in baseline
  std::vector<std::string> added;   ///< "scenario/cell" only in fresh
  /// Timed regressions plus enforced dropped cells.
  std::size_t regressions = 0;

  [[nodiscard]] bool ok() const { return regressions == 0; }
};

/// Compares fresh records against a baseline. See file comment for the
/// exact semantics of tolerance and match filters.
[[nodiscard]] BenchComparison compare_bench(
    const BenchTable& baseline, const BenchTable& fresh, double tolerance_pct,
    std::span<const std::string> match);

/// Human-readable report of a comparison (one line per shared cell, then
/// the dropped/added lists and a verdict line).
void print_bench_comparison(const BenchComparison& cmp, double tolerance_pct,
                            std::ostream& os);

}  // namespace anole::runner
