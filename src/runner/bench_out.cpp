#include "runner/bench_out.hpp"

#include <cstddef>
#include <optional>

namespace anole::runner {

namespace {

/// Index of the column named `name`, if any.
std::optional<std::size_t> column_index(const TableSpec& spec,
                                        const std::string& name) {
  for (std::size_t c = 0; c < spec.columns.size(); ++c)
    if (spec.columns[c] == name) return c;
  return std::nullopt;
}

/// The bits column: exact "total bits" wins, else the first column whose
/// name mentions bits (e.g. M2's "DAG bits").
std::optional<std::size_t> bits_column(const TableSpec& spec) {
  if (auto exact = column_index(spec, "total bits")) return exact;
  for (std::size_t c = 0; c < spec.columns.size(); ++c)
    if (spec.columns[c].find("bits") != std::string::npos) return c;
  return std::nullopt;
}

/// Parses a Value's JSON rendering as a non-negative integer (bench
/// records only harvest counters; strings/reals yield nullopt).
std::optional<long long> as_integer(const Value& v) {
  const std::string j = v.json();
  if (j.empty() || j.front() == '"') return std::nullopt;
  try {
    std::size_t pos = 0;
    long long parsed = std::stoll(j, &pos);
    if (pos != j.size() || parsed < 0) return std::nullopt;
    return parsed;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

void write_bench_records(const ScenarioOutcome& outcome, std::ostream& os) {
  for (const CellOutcome& cell : outcome.cells) {
    if (!cell.ok()) continue;
    const TableSpec& spec = outcome.tables[cell.table];
    std::optional<std::size_t> n_col = column_index(spec, "n");
    std::optional<std::size_t> rounds_col = column_index(spec, "rounds");
    std::optional<std::size_t> bits_col = bits_column(spec);
    for (const Row& row : cell.rows) {
      os << "{\"scenario\": \"" << json_escape(outcome.name)
         << "\", \"cell\": \"" << json_escape(cell.label)
         << "\", \"wall_ms\": " << format_ms(cell.wall_ms);
      std::optional<long long> n, rounds;
      if (n_col) n = as_integer(row[*n_col]);
      if (rounds_col) rounds = as_integer(row[*rounds_col]);
      if (n_col) os << ", \"n\": " << row[*n_col].json();
      if (rounds_col) os << ", \"rounds\": " << row[*rounds_col].json();
      if (bits_col) os << ", \"bits\": " << row[*bits_col].json();
      if (n && rounds && cell.wall_ms > 0.0) {
        double cps = static_cast<double>(*n) * static_cast<double>(*rounds) *
                     1000.0 / cell.wall_ms;
        os << ", \"cells_per_sec\": " << static_cast<long long>(cps);
      }
      os << "}\n";
    }
    // Perf side-channel (report_perf): one record per measurement, keyed
    // "<cell>/<name>" so bench_check can guard latency quantiles and
    // per-query costs without the structured sinks ever seeing a
    // nondeterministic value.
    for (const PerfRecord& perf : cell.perf) {
      os << "{\"scenario\": \"" << json_escape(outcome.name)
         << "\", \"cell\": \"" << json_escape(cell.label) << "/"
         << json_escape(perf.name)
         << "\", \"wall_ms\": " << format_ms(perf.value) << "}\n";
    }
  }
}

}  // namespace anole::runner
