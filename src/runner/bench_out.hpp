#pragma once
// Perf-trajectory records for `anole_bench --bench-out FILE`.
//
// Structured scenario output is deliberately deterministic (no wall-clock
// fields), so performance over time needs its own channel: one JSON-lines
// record per completed cell row, appended to FILE so successive runs (and
// successive commits, via the CI artifact BENCH_scale.json) accumulate a
// comparable history. Schema (DESIGN.md §6):
//
//   {"scenario": "s1", "cell": "random/n=1024", "wall_ms": 169.21,
//    "n": 1024, "rounds": 8, "bits": 4162327260, "cells_per_sec": 48418}
//
// "n", "rounds" and "bits" are harvested from the row by column name ("n",
// "rounds", and "total bits" — falling back to the first column containing
// "bits"); they are omitted when the table has no such column, so the flag
// works with every scenario, not just S1. "cells_per_sec" (node-rounds
// simulated per second) is emitted when both "n" and "rounds" are numeric.

#include <ostream>
#include <string>

#include "runner/runner.hpp"

namespace anole::runner {

/// Appends one JSON-lines bench record per completed cell row of `outcome`
/// to `os` (see schema above). Failed cells are skipped. The caller owns
/// the stream (anole_bench opens FILE in append mode, once, up front).
void write_bench_records(const ScenarioOutcome& outcome, std::ostream& os);

}  // namespace anole::runner
