#include "runner/portfolio.hpp"

namespace anole::runner {

std::vector<PortfolioAlgorithm> election_portfolio(std::uint64_t c) {
  using election::ElectionContext;
  using election::LargeTimeVariant;
  auto large = [c](LargeTimeVariant v) {
    return [v, c](ElectionContext& ctx) {
      return election::run_large_time(ctx, v, c);
    };
  };
  return {
      {"Elect (Thm 3.1)", "phi",
       [](ElectionContext& ctx) { return election::run_min_time(ctx); }},
      {"Map baseline", "phi",
       [](ElectionContext& ctx) { return election::run_map(ctx); }},
      {"Remark(D,phi)", "D+phi",
       [](ElectionContext& ctx) { return election::run_remark(ctx); }},
      {"Election1", "D+phi+c", large(LargeTimeVariant::kPhiPlusC)},
      {"Election2", "D+c*phi", large(LargeTimeVariant::kCTimesPhi)},
      {"Election3", "D+phi^c", large(LargeTimeVariant::kPhiPowC)},
      {"Election4", "D+c^phi", large(LargeTimeVariant::kCPowPhi)},
      {"SizeOnly(n)", "D+n+1",
       [](ElectionContext& ctx) { return election::run_size_only(ctx); }},
  };
}

}  // namespace anole::runner
