#include "runner/portfolio.hpp"

namespace anole::runner {

std::vector<PortfolioAlgorithm> election_portfolio(std::uint64_t c) {
  using election::LargeTimeVariant;
  auto large = [c](LargeTimeVariant v) {
    return [v, c](const portgraph::PortGraph& g) {
      return election::run_large_time(g, v, c);
    };
  };
  return {
      {"Elect (Thm 3.1)", "phi",
       [](const portgraph::PortGraph& g) { return election::run_min_time(g); }},
      {"Map baseline", "phi",
       [](const portgraph::PortGraph& g) { return election::run_map(g); }},
      {"Remark(D,phi)", "D+phi",
       [](const portgraph::PortGraph& g) { return election::run_remark(g); }},
      {"Election1", "D+phi+c", large(LargeTimeVariant::kPhiPlusC)},
      {"Election2", "D+c*phi", large(LargeTimeVariant::kCTimesPhi)},
      {"Election3", "D+phi^c", large(LargeTimeVariant::kPhiPowC)},
      {"Election4", "D+c^phi", large(LargeTimeVariant::kCPowPhi)},
      {"SizeOnly(n)", "D+n+1",
       [](const portgraph::PortGraph& g) { return election::run_size_only(g); }},
  };
}

}  // namespace anole::runner
