#include "runner/portfolio.hpp"

namespace anole::runner {

std::vector<PortfolioAlgorithm> election_portfolio(std::uint64_t c) {
  using election::ElectionContext;
  using election::LargeTimeVariant;
  auto large = [c](LargeTimeVariant v) {
    return [v, c](ElectionContext& ctx) {
      return election::run_large_time(ctx, v, c);
    };
  };
  auto large_make = [c](LargeTimeVariant v) {
    return [v, c](ElectionContext& ctx) {
      return election::make_large_time_programs(ctx, v, c);
    };
  };
  return {
      {"Elect (Thm 3.1)", "phi",
       [](ElectionContext& ctx) { return election::run_min_time(ctx); },
       [](ElectionContext& ctx) {
         return election::make_min_time_programs(ctx);
       }},
      {"Map baseline", "phi",
       [](ElectionContext& ctx) { return election::run_map(ctx); },
       [](ElectionContext& ctx) { return election::make_map_programs(ctx); }},
      {"Remark(D,phi)", "D+phi",
       [](ElectionContext& ctx) { return election::run_remark(ctx); },
       [](ElectionContext& ctx) {
         return election::make_remark_programs(ctx);
       }},
      {"Election1", "D+phi+c", large(LargeTimeVariant::kPhiPlusC),
       large_make(LargeTimeVariant::kPhiPlusC)},
      {"Election2", "D+c*phi", large(LargeTimeVariant::kCTimesPhi),
       large_make(LargeTimeVariant::kCTimesPhi)},
      {"Election3", "D+phi^c", large(LargeTimeVariant::kPhiPowC),
       large_make(LargeTimeVariant::kPhiPowC)},
      {"Election4", "D+c^phi", large(LargeTimeVariant::kCPowPhi),
       large_make(LargeTimeVariant::kCPowPhi)},
      {"SizeOnly(n)", "D+n+1",
       [](ElectionContext& ctx) { return election::run_size_only(ctx); },
       [](ElectionContext& ctx) {
         return election::make_size_only_programs(ctx);
       }},
  };
}

}  // namespace anole::runner
