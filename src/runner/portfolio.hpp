#pragma once
// The paper's full algorithm portfolio as a reusable list: every election
// algorithm the repo implements, each with its time-model label and a
// one-call entry point. One definition serves the E9 frontier scenario,
// the advice_time_tradeoff example and `anole_inspect --elect`, which used
// to hard-code overlapping subsets of the same eight rows.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "election/harness.hpp"

namespace anole::runner {

struct PortfolioAlgorithm {
  std::string name;   ///< e.g. "Election2"
  std::string model;  ///< allocated time, e.g. "D+c*phi"
  /// Runs on a shared per-graph context (election::ElectionContext): the
  /// eight algorithms reuse one ViewRepo + ViewProfile + memoized diameter
  /// instead of recomputing the refinement per row. Callers running a
  /// single algorithm build a throwaway context via run_on().
  std::function<election::ElectionRun(election::ElectionContext&)> run;
  /// Builds this algorithm's per-node programs + round budget without
  /// running them — for drivers other than the synchronous engine (the A1
  /// adversarial schedules, sim::run_with_faults epochs).
  std::function<election::ProgramSet(election::ElectionContext&)> make;

  /// Convenience: one-shot context for this algorithm alone.
  [[nodiscard]] election::ElectionRun run_on(
      const portgraph::PortGraph& g) const {
    election::ElectionContext ctx(g);
    return run(ctx);
  }
};

/// All eight algorithms in the paper's narrative order (minimum time first,
/// then the large-time hierarchy, then the size-only baseline), with the
/// given constant c for Election1..4.
[[nodiscard]] std::vector<PortfolioAlgorithm> election_portfolio(
    std::uint64_t c = 2);

}  // namespace anole::runner
