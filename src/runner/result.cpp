#include "runner/result.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace anole::runner {

namespace {

std::string format_real(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

}  // namespace

std::string Value::text() const {
  if (const auto* s = std::get_if<std::string>(&v_)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return std::to_string(*i);
  if (const auto* r = std::get_if<Real>(&v_))
    return format_real(r->value, r->precision);
  return std::get<bool>(v_) ? "yes" : "no";
}

std::string Value::json() const {
  if (const auto* s = std::get_if<std::string>(&v_))
    return '"' + json_escape(*s) + '"';
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return std::to_string(*i);
  if (const auto* r = std::get_if<Real>(&v_)) {
    if (!std::isfinite(r->value)) return "null";
    return format_real(r->value, r->precision);
  }
  return std::get<bool>(v_) ? "true" : "false";
}

std::string format_ms(double ms) { return format_real(ms, 2); }

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace anole::runner
