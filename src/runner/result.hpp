#pragma once
// Typed result values for the experiment-runner subsystem.
//
// Scenario cells return rows of Values instead of pre-formatted strings so
// that every sink (text table, CSV, JSON) renders the same datum
// consistently. Doubles carry an explicit precision, fixed by the scenario
// author, which keeps every rendering byte-identical across runs and
// thread counts — the determinism contract of the runner.

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace anole::runner {

class Value {
 public:
  Value() : v_(std::string{}) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::int64_t i) : v_(i) {}
  Value(int i) : v_(static_cast<std::int64_t>(i)) {}
  Value(unsigned u) : v_(static_cast<std::int64_t>(u)) {}
  Value(std::uint64_t u) : v_(static_cast<std::int64_t>(u)) {}
  Value(long long i) : v_(static_cast<std::int64_t>(i)) {}
  Value(unsigned long long u) : v_(static_cast<std::int64_t>(u)) {}
  Value(bool b) : v_(b) {}

  /// A real number rendered with a fixed decimal precision everywhere.
  [[nodiscard]] static Value real(double value, int precision = 3) {
    Value v;
    v.v_ = Real{value, precision};
    return v;
  }

  /// Rendering used by the text table and CSV sinks.
  [[nodiscard]] std::string text() const;

  /// JSON literal: numbers and booleans unquoted, strings escaped+quoted.
  [[nodiscard]] std::string json() const;

  [[nodiscard]] bool operator==(const Value& other) const = default;

 private:
  struct Real {
    double value = 0;
    int precision = 3;
    [[nodiscard]] bool operator==(const Real&) const = default;
  };
  std::variant<std::string, std::int64_t, Real, bool> v_;
};

/// One result row; values are listed in the column order of the owning
/// TableSpec.
using Row = std::vector<Value>;

/// Escapes a string for embedding in a JSON string literal (no quotes).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Fixed two-decimal rendering of a wall-clock millisecond figure — the
/// one format every timing field (sinks, bench records) uses.
[[nodiscard]] std::string format_ms(double ms);

}  // namespace anole::runner
