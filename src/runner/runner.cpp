#include "runner/runner.hpp"

#include <chrono>
#include <exception>

#include "util/thread_pool.hpp"

namespace anole::runner {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// The cell outcome this worker thread is currently filling; the target
/// of report_perf(). Thread-local is sufficient: a cell executes wholly
/// on one worker, and nested cells don't exist.
thread_local CellOutcome* t_current_cell = nullptr;

void execute_cell(const Scenario& scenario, const Cell& cell,
                  CellOutcome& out) {
  out.label = cell.label;
  out.table = cell.table;
  t_current_cell = &out;
  struct CurrentCellReset {
    ~CurrentCellReset() { t_current_cell = nullptr; }
  } reset;
  Clock::time_point start = Clock::now();
  try {
    out.rows = cell.run();
    const TableSpec& spec = scenario.tables[cell.table];
    for (const Row& row : out.rows) {
      if (row.size() != spec.columns.size()) {
        out.error = "row width " + std::to_string(row.size()) +
                    " != table '" + spec.id + "' width " +
                    std::to_string(spec.columns.size());
        out.rows.clear();
        break;
      }
    }
  } catch (const std::exception& e) {
    out.rows.clear();
    out.error = e.what();
  } catch (...) {
    out.rows.clear();
    out.error = "unknown exception";
  }
  out.wall_ms = ms_since(start);
}

}  // namespace

void report_perf(const std::string& name, double value) {
  if (t_current_cell != nullptr)
    t_current_cell->perf.push_back(PerfRecord{name, value});
}

std::size_t ScenarioOutcome::failures() const {
  std::size_t count = 0;
  for (const CellOutcome& cell : cells)
    if (!cell.ok()) ++count;
  return count;
}

ScenarioOutcome ExperimentRunner::run(const Scenario& scenario) const {
  ScenarioOutcome outcome;
  outcome.name = scenario.name;
  outcome.reference = scenario.reference;
  outcome.deterministic = scenario.deterministic;
  outcome.tables = scenario.tables;
  outcome.cells.resize(scenario.cells.size());

  Clock::time_point start = Clock::now();
  if (options_.threads == 1 || scenario.serial ||
      scenario.cells.size() <= 1) {
    for (std::size_t i = 0; i < scenario.cells.size(); ++i)
      execute_cell(scenario, scenario.cells[i], outcome.cells[i]);
  } else {
    util::ThreadPool pool(options_.threads);
    pool.parallel_for(0, scenario.cells.size(), /*grain=*/1,
                      [&scenario, &outcome](std::size_t begin,
                                            std::size_t end, std::size_t) {
                        for (std::size_t i = begin; i < end; ++i)
                          execute_cell(scenario, scenario.cells[i],
                                       outcome.cells[i]);
                      });
  }
  outcome.wall_ms = ms_since(start);
  return outcome;
}

}  // namespace anole::runner
