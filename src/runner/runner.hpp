#pragma once
// ExperimentRunner: executes a Scenario's cell grid on a util::ThreadPool.
//
// Each cell runs exactly once, on whichever worker picks it up; its rows,
// wall time and any failure are written into a slot fixed by the cell's
// declaration index. The reassembled ScenarioOutcome is therefore
// identical for any thread count (timing aside) — the property the sinks
// rely on for byte-identical structured output at --threads 1 vs N.
//
// A throwing cell does not abort the run: the exception is captured as the
// cell's error string and the remaining cells still execute (failure
// capture instead of aborts). Row widths are validated against the target
// TableSpec on the worker, so a malformed scenario reports per-cell errors
// rather than tearing down the whole sweep.

#include <cstddef>
#include <string>
#include <vector>

#include "runner/scenario.hpp"

namespace anole::runner {

struct RunOptions {
  /// Worker threads for the cell grid; 0 means hardware_concurrency.
  std::size_t threads = 1;
};

/// One named measurement a cell reported through report_perf(): a
/// wall-clock-class figure (latency quantile, per-query cost) that is
/// real but NOT deterministic. Perf records ride the bench side-channel
/// only — write_bench_records emits them as extra "<cell>/<name>"
/// records for bench_check — and never appear in the structured sinks,
/// whose output must stay byte-identical across thread counts.
struct PerfRecord {
  std::string name;    ///< suffix, e.g. "p99_ms"
  double value = 0.0;  ///< milliseconds-like: lower must mean better
};

struct CellOutcome {
  std::string label;
  std::size_t table = 0;
  std::vector<Row> rows;
  std::vector<PerfRecord> perf;  ///< see report_perf()
  double wall_ms = 0.0;
  std::string error;  ///< empty iff the cell completed

  [[nodiscard]] bool ok() const { return error.empty(); }
};

struct ScenarioOutcome {
  std::string name;
  std::string reference;
  bool deterministic = true;
  std::vector<TableSpec> tables;
  /// One outcome per cell, in declaration order (thread-count independent).
  std::vector<CellOutcome> cells;
  double wall_ms = 0.0;

  [[nodiscard]] std::size_t failures() const;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(RunOptions options = {}) : options_(options) {}

  [[nodiscard]] ScenarioOutcome run(const Scenario& scenario) const;

 private:
  RunOptions options_;
};

/// Attaches a perf measurement to the cell currently executing on this
/// thread (each cell runs wholly on one worker, so a thread_local
/// current-cell pointer identifies it). No-op outside a cell, so helpers
/// shared with non-runner callers need no guards. `value` must be a
/// lower-is-better, milliseconds-like figure — bench_check treats every
/// record's value as a wall time.
void report_perf(const std::string& name, double value);

}  // namespace anole::runner
