#include "runner/scenario.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace anole::runner {

void Scenario::add_cell(std::string label, std::size_t table,
                        std::function<std::vector<Row>()> run) {
  ANOLE_CHECK_MSG(table < tables.size(),
                  "cell '" << label << "' targets table " << table
                           << " but scenario '" << name << "' has only "
                           << tables.size());
  ANOLE_CHECK(run != nullptr);
  cells.push_back(Cell{std::move(label), table, std::move(run)});
}

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(std::string name,
                           std::function<Scenario()> factory) {
  ANOLE_CHECK(factory != nullptr);
  auto [it, inserted] =
      entries_.emplace(std::move(name), Entry{std::move(factory)});
  ANOLE_CHECK_MSG(inserted, "duplicate scenario name: " << it->first);
}

bool ScenarioRegistry::contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;  // std::map iterates in sorted order
}

const ScenarioRegistry::Entry& ScenarioRegistry::meta(
    const std::string& name) const {
  const Entry& entry = entries_.at(name);
  if (!entry.meta_loaded) {
    Scenario s = entry.factory();
    entry.summary = std::move(s.summary);
    entry.reference = std::move(s.reference);
    entry.meta_loaded = true;
  }
  return entry;
}

const std::string& ScenarioRegistry::summary(const std::string& name) const {
  return meta(name).summary;
}

const std::string& ScenarioRegistry::reference(const std::string& name) const {
  return meta(name).reference;
}

Scenario ScenarioRegistry::make(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end())
    throw std::out_of_range("unknown scenario: " + name);
  Scenario s = it->second.factory();
  ANOLE_CHECK_MSG(s.name == name, "scenario factory for '"
                                      << name << "' produced '" << s.name
                                      << "'");
  return s;
}

}  // namespace anole::runner
