#pragma once
// Declarative scenario descriptors and the global scenario registry.
//
// A Scenario is the declarative form of one experiment table group of the
// paper (E1..E10, M1, M2): its output tables (header + caption) and a grid
// of independent Cells. Each cell is a closure that, when executed, builds
// its own graph(s) and ViewRepo, runs the algorithms, and returns typed
// result rows for one of the scenario's tables. Because cells share no
// mutable state they can execute in any order and on any number of threads
// (see runner.hpp); determinism comes from seeded builders plus the fixed
// (table, cell) declaration order in which results are reassembled.
//
// Every paper table registers itself with ANOLE_REGISTER_SCENARIO from its
// translation unit in src/runner/scenarios/; the unified `anole_bench` CLI
// and the tests enumerate the registry instead of hard-coding binaries.

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "runner/result.hpp"

namespace anole::runner {

/// One output table of a scenario: header columns plus the caption tying it
/// to the theorem/figure it regenerates.
struct TableSpec {
  std::string id;       ///< short anchor, e.g. "E1" or "E5.A2"
  std::string caption;  ///< full caption text (paper claim + reading guide)
  std::vector<std::string> columns;
};

/// The parallel unit of work: produces rows for table `table` of the
/// owning scenario. Must be self-contained (own graph, own ViewRepo).
struct Cell {
  std::string label;      ///< stable id, e.g. "necklace(phi=3)/k=7"
  std::size_t table = 0;  ///< index into Scenario::tables
  std::function<std::vector<Row>()> run;
};

struct Scenario {
  std::string name;       ///< CLI key, e.g. "e1"
  std::string summary;    ///< one-liner for `anole_bench --list`
  std::string reference;  ///< paper anchor, e.g. "Theorem 3.1"
  /// False for wall-clock measurement scenarios (M1): their values vary
  /// run to run by nature. All paper tables are deterministic.
  bool deterministic = true;
  /// True for scenarios whose cells time themselves (M1): running them
  /// concurrently would distort the measurements, so the runner executes
  /// them one cell at a time regardless of the requested thread count.
  bool serial = false;
  std::vector<TableSpec> tables;
  std::vector<Cell> cells;

  /// Appends a cell producing rows for table `table`.
  void add_cell(std::string label, std::size_t table,
                std::function<std::vector<Row>()> run);
};

/// Name -> scenario factory. Factories are cheap: graph construction and
/// all real work happen inside the cells, at run time. The factory is the
/// single source of a scenario's summary/reference strings; the registry
/// harvests them lazily for listings, so the two can never drift.
class ScenarioRegistry {
 public:
  /// The process-wide registry that ANOLE_REGISTER_SCENARIO populates
  /// during static initialization (single-threaded; not locked).
  static ScenarioRegistry& global();

  void add(std::string name, std::function<Scenario()> factory);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;  ///< sorted
  [[nodiscard]] const std::string& summary(const std::string& name) const;
  [[nodiscard]] const std::string& reference(const std::string& name) const;

  /// Instantiates the scenario; throws std::out_of_range on unknown names.
  [[nodiscard]] Scenario make(const std::string& name) const;

 private:
  struct Entry {
    std::function<Scenario()> factory;
    // Filled on first summary()/reference() access by running the factory.
    mutable bool meta_loaded = false;
    mutable std::string summary;
    mutable std::string reference;
  };
  const Entry& meta(const std::string& name) const;
  std::map<std::string, Entry> entries_;
};

struct ScenarioRegistrar {
  ScenarioRegistrar(const char* name, Scenario (*factory)()) {
    ScenarioRegistry::global().add(name, factory);
  }
};

#define ANOLE_SCENARIO_CONCAT_(a, b) a##b
#define ANOLE_SCENARIO_CONCAT(a, b) ANOLE_SCENARIO_CONCAT_(a, b)

/// Registers `factory` (a `Scenario (*)()`) under `name` at load time.
#define ANOLE_REGISTER_SCENARIO(name, factory)                            \
  static const ::anole::runner::ScenarioRegistrar ANOLE_SCENARIO_CONCAT(  \
      anole_scenario_registrar_, __COUNTER__)(name, factory)

}  // namespace anole::runner
