// A1 — adversarial schedules and fault epochs (DESIGN.md §12).
//
// The paper's protocols are specified for the synchronous fault-free
// LOCAL model; the async machinery (sim/async.hpp) and the fault
// subsystem (sim/faults.hpp) probe how far that specification actually
// carries. Two tables:
//
//   A1a — every portfolio algorithm under every delivery adversary, on
//       feasible graphs, with the *full* synchronous round budget: the
//       alpha-synchronizer must reproduce the synchronous outputs
//       bit-identically whatever the adversary does ("identical"), the
//       async run must elect the same single leader ("safe"), and the
//       delivery factor reports the adversary's message cost relative to
//       the synchronous baseline of 2m messages per round.
//
//   A1b — seeded fault plans (crash-only / rewire-only / mixed) driven
//       through sim::run_with_faults with the Theorem 3.1 protocol: per
//       plan, the number of inter-fault epochs, how many were served by
//       *incremental* view repair rather than a recompute (with the
//       recomputed/reused view split), how many the fault cap
//       interrupted, and the two safety verdicts — at most one leader
//       ever (sync) and async/sync output agreement under the epoch's
//       adversary.
//
// Every reported value is deterministic and thread-count independent;
// wall-clock rides --bench-out (BENCH_async.json, guarded in CI by
// tools/bench_check against the committed repo-root baseline).

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "portgraph/builders.hpp"
#include "runner/portfolio.hpp"
#include "runner/scenario.hpp"
#include "sim/async.hpp"
#include "sim/faults.hpp"
#include "views/view_repo.hpp"

namespace {

using namespace anole;
using runner::Row;
using runner::Value;

constexpr sim::AdversaryKind kAdversaries[] = {
    sim::AdversaryKind::kRoundRobin,
    sim::AdversaryKind::kRandom,
    sim::AdversaryKind::kCentralizer,
    sim::AdversaryKind::kWorstCaseGreedy,
};

std::vector<Row> adversary_cell(const std::string& family,
                                const portgraph::PortGraph& g,
                                sim::AdversaryKind kind) {
  std::vector<Row> rows;
  election::ElectionContext ctx(g);
  double sync_msgs_per_round = 2.0 * static_cast<double>(g.m());
  for (const runner::PortfolioAlgorithm& alg :
       runner::election_portfolio()) {
    election::ElectionRun sync = alg.run(ctx);
    election::ProgramSet set = alg.make(ctx);
    sim::AsyncEngine async(g, ctx.repo());
    // The adversary can race a node ahead of the laggards, but never by
    // more than the graph distance (a node at local round r implies every
    // node is at round >= r - dist), so the synchronous budget plus D + 1
    // can never be hit before everyone decides.
    sim::AsyncMetrics am =
        async.run(set.programs, set.max_rounds + ctx.diameter() + 1, kind,
                  /*adversary_seed=*/1);
    bool identical = !am.timed_out && am.outputs == sync.metrics.outputs &&
                     am.decision_round == sync.metrics.decision_round;
    bool safe = !am.timed_out &&
                election::verify_election(g, am.outputs).ok;
    double factor =
        sync.metrics.rounds > 0
            ? static_cast<double>(am.deliveries) /
                  (sync_msgs_per_round * sync.metrics.rounds)
            : 0.0;
    rows.push_back(Row{family, alg.name, sim::adversary_name(kind), g.n(),
                       sync.metrics.rounds, am.max_round, am.deliveries,
                       Value::real(factor, 2), identical, safe});
  }
  return rows;
}

std::vector<Row> fault_cell(const std::string& plan_name,
                            const portgraph::PortGraph& g, int crashes,
                            int rewires, sim::AdversaryKind kind,
                            std::uint64_t seed) {
  sim::FaultPlan plan =
      sim::FaultPlan::random(g, /*horizon=*/60, crashes, rewires, seed);
  views::ViewRepo repo;
  sim::FaultRunOptions opts;
  opts.adversary = kind;
  opts.adversary_seed = seed;
  sim::FaultRunResult r = sim::run_with_faults(
      g, repo, plan,
      [](election::ElectionContext& ctx) {
        return election::make_min_time_programs(ctx);
      },
      opts);
  std::size_t interrupted = 0;
  std::size_t infeasible = 0;
  for (const sim::EpochReport& ep : r.epochs) {
    if (ep.interrupted) ++interrupted;
    if (!ep.feasible) ++infeasible;
  }
  return {Row{plan_name, sim::adversary_name(kind), g.n(),
              plan.events.size(), r.epochs.size(), r.incremental_epochs,
              r.recomputed_views, r.reused_views, interrupted, infeasible,
              r.safe, r.async_ok}};
}

runner::Scenario make_a1() {
  runner::Scenario s;
  s.name = "a1";
  s.summary =
      "adversarial delivery schedules and fault epochs: synchronizer "
      "equivalence, safety under faults, incremental view repair";
  s.reference = "DESIGN.md §12 (faults + asynchrony)";
  s.tables.push_back(runner::TableSpec{
      "A1a",
      "Portfolio under the four delivery adversaries with the full "
      "synchronous round budget. \"identical\" = outputs AND decision "
      "rounds byte-equal to the synchronous run (the alpha-synchronizer "
      "guarantee); \"safe\" = the async run elected one leader; "
      "\"delivery factor\" = adversary deliveries / (2m x sync rounds), "
      "the message overhead of asynchrony. All columns deterministic; "
      "wall-clock rides --bench-out (BENCH_async.json).",
      {"family", "algorithm", "adversary", "n", "rounds", "async rounds",
       "deliveries", "delivery factor", "identical", "safe"}});
  s.tables.push_back(runner::TableSpec{
      "A1b",
      "Seeded fault plans through sim::run_with_faults (Theorem 3.1 "
      "protocol per epoch, async cross-check per epoch). \"incremental\" "
      "counts epochs whose view profile was patched by "
      "views::repair_profile instead of recomputed, with the "
      "recomputed/reused per-node view split; \"safe\" = at most one "
      "leader among decided nodes in every epoch; \"async ok\" = every "
      "epoch's adversarial rerun agreed with its synchronous run.",
      {"plan", "adversary", "n", "events", "epochs", "incremental",
       "recomputed views", "reused views", "interrupted", "infeasible",
       "safe", "async ok"}});

  auto add_adversary = [&s](std::string family,
                            std::function<portgraph::PortGraph()> build) {
    for (sim::AdversaryKind kind : kAdversaries) {
      s.add_cell(
          "adversary/" + family + "/" + sim::adversary_name(kind), 0,
          [family, build, kind] { return adversary_cell(family, build(), kind); });
    }
  };
  add_adversary("random(24,+16,seed7)",
                [] { return portgraph::random_connected(24, 16, 7); });
  add_adversary("lollipop(6,6)", [] { return portgraph::lollipop(6, 6); });

  auto add_fault = [&s](std::string plan_name, int crashes, int rewires,
                        std::uint64_t seed) {
    for (sim::AdversaryKind kind : kAdversaries) {
      s.add_cell("faults/" + plan_name + "/" + sim::adversary_name(kind), 1,
                 [plan_name, crashes, rewires, seed, kind] {
                   return fault_cell(plan_name,
                                     portgraph::random_connected(24, 16, 7),
                                     crashes, rewires, kind, seed);
                 });
    }
  };
  add_fault("crash(3)", 3, 0, 11);
  add_fault("rewire(4)", 0, 4, 12);
  add_fault("mixed(2c,3r)", 2, 3, 13);
  return s;
}

}  // namespace

ANOLE_REGISTER_SCENARIO("a1", make_a1);
