#include "runner/scenarios/common.hpp"

#include <algorithm>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "advice/min_time.hpp"
#include "election/elect_program.hpp"
#include "election/verify.hpp"
#include "sim/full_info.hpp"
#include "views/profile.hpp"

namespace anole::runner::scenarios {

namespace {

// Written once by anole_bench's single-threaded flag parsing, before any
// cell runs; read by the (serial) W1 cells.
std::string g_snapshot_out_prefix;  // NOLINT(cert-err58-cpp)
std::string g_snapshot_in_prefix;   // NOLINT(cert-err58-cpp)

std::string default_snapshot_prefix() {
  return (std::filesystem::temp_directory_path() /
          ("anole-w1-" + std::to_string(::getpid())))
      .string();
}

}  // namespace

void set_snapshot_out_prefix(std::string prefix) {
  g_snapshot_out_prefix = std::move(prefix);
}

void set_snapshot_in_prefix(std::string prefix) {
  g_snapshot_in_prefix = std::move(prefix);
}

std::string snapshot_out_prefix() {
  if (!g_snapshot_out_prefix.empty()) return g_snapshot_out_prefix;
  return default_snapshot_prefix();
}

std::string snapshot_in_prefix() {
  if (!g_snapshot_in_prefix.empty()) return g_snapshot_in_prefix;
  return snapshot_out_prefix();
}

std::vector<views::ViewId> naive_unranked_level(const portgraph::PortGraph& g,
                                                views::ViewRepo& repo,
                                                int depth) {
  std::size_t n = g.n();
  std::vector<views::ViewId> level(n);
  for (std::size_t v = 0; v < n; ++v)
    level[v] = repo.leaf(g.degree(static_cast<portgraph::NodeId>(v)));
  std::vector<views::ViewId> next(n);
  std::vector<views::ChildRef> kids;
  for (int t = 0; t < depth; ++t) {
    for (std::size_t v = 0; v < n; ++v) {
      const auto& row = g.neighbors(static_cast<portgraph::NodeId>(v));
      kids.clear();
      for (const auto& he : row)
        kids.emplace_back(he.rev_port,
                          level[static_cast<std::size_t>(he.neighbor)]);
      next[v] = repo.intern(kids);
    }
    level.swap(next);
  }
  return level;
}

std::unique_ptr<util::ThreadPool> intra_cell_pool(std::size_t n) {
  if (n < 4096) return nullptr;  // gather/hash overhead beats the win
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return std::make_unique<util::ThreadPool>(std::min<std::size_t>(4, hw));
}

bool cross_feed_succeeds(const portgraph::PortGraph& source,
                         const portgraph::PortGraph& victim) {
  views::ViewRepo repo;
  views::ViewProfile sp = views::compute_profile(source, repo, 1);
  auto adv = std::make_shared<const advice::MinTimeAdvice>(
      advice::compute_advice(source, repo, sp));
  std::vector<std::unique_ptr<sim::NodeProgram>> programs;
  for (std::size_t v = 0; v < victim.n(); ++v)
    programs.push_back(std::make_unique<election::ElectProgram>(adv));
  try {
    sim::RunMetrics metrics = sim::run_full_info(
        victim, repo, programs, static_cast<int>(adv->phi) + 1);
    return !metrics.timed_out &&
           election::verify_election(victim, metrics.outputs).ok;
  } catch (const std::logic_error&) {
    return false;  // advice not even decodable against the victim's views
  }
}

}  // namespace anole::runner::scenarios
