#include "runner/scenarios/common.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "advice/min_time.hpp"
#include "election/elect_program.hpp"
#include "election/verify.hpp"
#include "sim/full_info.hpp"
#include "views/profile.hpp"

namespace anole::runner::scenarios {

std::unique_ptr<util::ThreadPool> intra_cell_pool(std::size_t n) {
  if (n < 4096) return nullptr;  // gather/hash overhead beats the win
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return std::make_unique<util::ThreadPool>(std::min<std::size_t>(4, hw));
}

bool cross_feed_succeeds(const portgraph::PortGraph& source,
                         const portgraph::PortGraph& victim) {
  views::ViewRepo repo;
  views::ViewProfile sp = views::compute_profile(source, repo, 1);
  auto adv = std::make_shared<const advice::MinTimeAdvice>(
      advice::compute_advice(source, repo, sp));
  std::vector<std::unique_ptr<sim::NodeProgram>> programs;
  for (std::size_t v = 0; v < victim.n(); ++v)
    programs.push_back(std::make_unique<election::ElectProgram>(adv));
  try {
    sim::RunMetrics metrics = sim::run_full_info(
        victim, repo, programs, static_cast<int>(adv->phi) + 1);
    return !metrics.timed_out &&
           election::verify_election(victim, metrics.outputs).ok;
  } catch (const std::logic_error&) {
    return false;  // advice not even decodable against the victim's views
  }
}

}  // namespace anole::runner::scenarios
