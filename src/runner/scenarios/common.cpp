#include "runner/scenarios/common.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "advice/min_time.hpp"
#include "election/elect_program.hpp"
#include "election/verify.hpp"
#include "sim/full_info.hpp"
#include "views/profile.hpp"

namespace anole::runner::scenarios {

std::vector<views::ViewId> naive_unranked_level(const portgraph::PortGraph& g,
                                                views::ViewRepo& repo,
                                                int depth) {
  std::size_t n = g.n();
  std::vector<views::ViewId> level(n);
  for (std::size_t v = 0; v < n; ++v)
    level[v] = repo.leaf(g.degree(static_cast<portgraph::NodeId>(v)));
  std::vector<views::ViewId> next(n);
  std::vector<views::ChildRef> kids;
  for (int t = 0; t < depth; ++t) {
    for (std::size_t v = 0; v < n; ++v) {
      const auto& row = g.neighbors(static_cast<portgraph::NodeId>(v));
      kids.clear();
      for (const auto& he : row)
        kids.emplace_back(he.rev_port,
                          level[static_cast<std::size_t>(he.neighbor)]);
      next[v] = repo.intern(kids);
    }
    level.swap(next);
  }
  return level;
}

std::unique_ptr<util::ThreadPool> intra_cell_pool(std::size_t n) {
  if (n < 4096) return nullptr;  // gather/hash overhead beats the win
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return std::make_unique<util::ThreadPool>(std::min<std::size_t>(4, hw));
}

bool cross_feed_succeeds(const portgraph::PortGraph& source,
                         const portgraph::PortGraph& victim) {
  views::ViewRepo repo;
  views::ViewProfile sp = views::compute_profile(source, repo, 1);
  auto adv = std::make_shared<const advice::MinTimeAdvice>(
      advice::compute_advice(source, repo, sp));
  std::vector<std::unique_ptr<sim::NodeProgram>> programs;
  for (std::size_t v = 0; v < victim.n(); ++v)
    programs.push_back(std::make_unique<election::ElectProgram>(adv));
  try {
    sim::RunMetrics metrics = sim::run_full_info(
        victim, repo, programs, static_cast<int>(adv->phi) + 1);
    return !metrics.timed_out &&
           election::verify_election(victim, metrics.outputs).ok;
  } catch (const std::logic_error&) {
    return false;  // advice not even decodable against the victim's views
  }
}

}  // namespace anole::runner::scenarios
