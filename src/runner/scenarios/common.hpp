#pragma once
// Helpers shared by the lower-bound scenarios (E2, E3, E6): running the
// minimum-time Elect algorithm on one graph with advice computed for
// another, which the paper's counting arguments predict must fail.

#include "portgraph/port_graph.hpp"

namespace anole::runner::scenarios {

/// Computes the Theorem 3.1 advice for `source` and runs Elect with it on
/// `victim`; returns true iff the mis-advised run still elected a single
/// leader (the lower-bound tables expect false).
[[nodiscard]] bool cross_feed_succeeds(const portgraph::PortGraph& source,
                                       const portgraph::PortGraph& victim);

}  // namespace anole::runner::scenarios
