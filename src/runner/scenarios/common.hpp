#pragma once
// Helpers shared by scenario cells: the cross-feed run of the lower-bound
// scenarios (E2, E3, E6) and the intra-cell refinement pool policy of the
// scaling sweeps (S1, V1).

#include <cstddef>
#include <memory>

#include "portgraph/port_graph.hpp"
#include "util/thread_pool.hpp"

namespace anole::runner::scenarios {

/// Computes the Theorem 3.1 advice for `source` and runs Elect with it on
/// `victim`; returns true iff the mis-advised run still elected a single
/// leader (the lower-bound tables expect false).
[[nodiscard]] bool cross_feed_succeeds(const portgraph::PortGraph& source,
                                       const portgraph::PortGraph& victim);

/// Pool for a cell's own gather/hash phase (views::Refiner), or nullptr
/// when the graph is too small to benefit. Capped at a few workers: cells
/// already run concurrently under the runner's --threads pool, so an
/// uncapped hardware_concurrency pool per cell would oversubscribe the
/// machine and add noise to the --bench-out perf records.
[[nodiscard]] std::unique_ptr<util::ThreadPool> intra_cell_pool(
    std::size_t n);

}  // namespace anole::runner::scenarios
