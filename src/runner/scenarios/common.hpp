#pragma once
// Helpers shared by scenario cells: the cross-feed run of the lower-bound
// scenarios (E2, E3, E6), the intra-cell refinement pool policy of the
// scaling sweeps (S1, V1), and the unranked-baseline level builder of the
// ordering benchmarks (V2, m1-views).

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "portgraph/port_graph.hpp"
#include "util/thread_pool.hpp"
#include "views/view_repo.hpp"

namespace anole::runner::scenarios {

/// Computes the Theorem 3.1 advice for `source` and runs Elect with it on
/// `victim`; returns true iff the mis-advised run still elected a single
/// leader (the lower-bound tables expect false).
[[nodiscard]] bool cross_feed_succeeds(const portgraph::PortGraph& source,
                                       const portgraph::PortGraph& victim);

/// Every node's depth-`depth` view, built through the per-node intern loop
/// instead of views::Refiner — the resulting records carry no canonical
/// ranks, so every ordering query on them takes the structural-compare
/// path. This is the pre-rank baseline the V2 ordering cells and the
/// m1-views compare microbenchmark measure against; ids are identical to
/// the refiner's (same interning order), only the ranks are absent.
[[nodiscard]] std::vector<views::ViewId> naive_unranked_level(
    const portgraph::PortGraph& g, views::ViewRepo& repo, int depth);

/// Where the W1 snapshot cells write (`--snapshot-out PREFIX`) and read
/// (`--snapshot-in PREFIX`) their `<prefix>-<family>.snap` blobs. Set by
/// anole_bench before any scenario runs (single-threaded CLI setup, no
/// locking); empty out-prefix means a per-process temp path, empty
/// in-prefix means "read back what this run wrote". CI splits the two to
/// pin cross-process compatibility: one job's --snapshot-out is a later
/// step's --snapshot-in.
void set_snapshot_out_prefix(std::string prefix);
void set_snapshot_in_prefix(std::string prefix);
[[nodiscard]] std::string snapshot_out_prefix();  ///< resolved, never empty
[[nodiscard]] std::string snapshot_in_prefix();   ///< resolved, never empty

/// Pool for a cell's own gather/hash phase (views::Refiner), or nullptr
/// when the graph is too small to benefit. Capped at a few workers: cells
/// already run concurrently under the runner's --threads pool, so an
/// uncapped hardware_concurrency pool per cell would oversubscribe the
/// machine and add noise to the --bench-out perf records.
[[nodiscard]] std::unique_ptr<util::ThreadPool> intra_cell_pool(
    std::size_t n);

}  // namespace anole::runner::scenarios
