#pragma once
// Helpers shared by scenario cells: the cross-feed run of the lower-bound
// scenarios (E2, E3, E6), the intra-cell refinement pool policy of the
// scaling sweeps (S1, V1), and the unranked-baseline level builder of the
// ordering benchmarks (V2, m1-views).

#include <cstddef>
#include <memory>
#include <vector>

#include "portgraph/port_graph.hpp"
#include "util/thread_pool.hpp"
#include "views/view_repo.hpp"

namespace anole::runner::scenarios {

/// Computes the Theorem 3.1 advice for `source` and runs Elect with it on
/// `victim`; returns true iff the mis-advised run still elected a single
/// leader (the lower-bound tables expect false).
[[nodiscard]] bool cross_feed_succeeds(const portgraph::PortGraph& source,
                                       const portgraph::PortGraph& victim);

/// Every node's depth-`depth` view, built through the per-node intern loop
/// instead of views::Refiner — the resulting records carry no canonical
/// ranks, so every ordering query on them takes the structural-compare
/// path. This is the pre-rank baseline the V2 ordering cells and the
/// m1-views compare microbenchmark measure against; ids are identical to
/// the refiner's (same interning order), only the ranks are absent.
[[nodiscard]] std::vector<views::ViewId> naive_unranked_level(
    const portgraph::PortGraph& g, views::ViewRepo& repo, int depth);

/// Pool for a cell's own gather/hash phase (views::Refiner), or nullptr
/// when the graph is too small to benefit. Capped at a few workers: cells
/// already run concurrently under the runner's --threads pool, so an
/// uncapped hardware_concurrency pool per cell would oversubscribe the
/// machine and add noise to the --bench-out perf records.
[[nodiscard]] std::unique_ptr<util::ThreadPool> intra_cell_pool(
    std::size_t n);

}  // namespace anole::runner::scenarios
