// E10 — the paper's concluding open question (Section 5).
//
// "The intriguing open question left by our results is how the minimum
// size of advice behaves in the range of election time strictly between
// phi and D + phi" — large enough to elect with a map, too small for all
// nodes to see every view difference.
//
// Each cell instruments one intermediate time tau with the best *known*
// upper bound: the depth-tau generalization of Elect (Algorithm 5/6
// labeling views at depth tau), whose advice stays Theta(n log n) across
// the whole open range; the final cell runs the Remark algorithm at
// tau = D + phi, where the advice collapses to O(log D + log phi).
// Workload: a long-diameter necklace so the open range is wide.

#include <algorithm>
#include <memory>

#include "advice/min_time.hpp"
#include "election/elect_program.hpp"
#include "election/harness.hpp"
#include "election/verify.hpp"
#include "families/necklace.hpp"
#include "runner/scenario.hpp"
#include "sim/full_info.hpp"
#include "views/profile.hpp"

namespace {

using namespace anole;
using runner::Row;
using runner::Value;

portgraph::PortGraph workload() {
  return families::necklace_member(7, 3, 2).graph;
}

struct WorkloadParams {
  int phi = 0;
  int diameter = 0;
};

WorkloadParams workload_params(const portgraph::PortGraph& g) {
  views::ViewRepo probe;
  views::ViewProfile profile = views::compute_profile(g, probe);
  return {profile.election_index, g.diameter()};
}

std::vector<Row> workload_cell() {
  portgraph::PortGraph g = workload();
  WorkloadParams p = workload_params(g);
  return {Row{"necklace(k=7, phi=3)", g.n(), p.diameter, p.phi}};
}

std::vector<Row> depth_tau_cell(int tau) {
  portgraph::PortGraph g = workload();
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo, 1);
  advice::MinTimeAdvice adv = advice::compute_advice(g, repo, p, tau);
  coding::BitString bits = adv.to_bits();
  auto decoded = std::make_shared<const advice::MinTimeAdvice>(
      advice::MinTimeAdvice::from_bits(bits));
  std::vector<std::unique_ptr<sim::NodeProgram>> programs;
  for (std::size_t v = 0; v < g.n(); ++v)
    programs.push_back(std::make_unique<election::ElectProgram>(decoded));
  sim::RunMetrics metrics = sim::run_full_info(g, repo, programs, tau + 1);
  bool ok = !metrics.timed_out &&
            election::verify_election(g, metrics.outputs).ok;
  return {Row{tau, "Elect@depth tau", metrics.rounds, bits.size(),
              ok ? "yes" : "NO"}};
}

std::vector<Row> remark_cell() {
  portgraph::PortGraph g = workload();
  WorkloadParams p = workload_params(g);
  election::ElectionRun run = election::run_remark(g);
  return {Row{p.diameter + p.phi, "Remark(D,phi)", run.metrics.rounds,
              run.advice_bits, run.ok() ? "yes" : "NO"}};
}

runner::Scenario make_e10() {
  runner::Scenario s;
  s.name = "e10";
  s.summary = "the open range between time phi and D + phi";
  s.reference = "Section 5 (open question)";
  s.tables.push_back(runner::TableSpec{
      "E10.W", "the workload graph", {"graph", "n", "D", "phi"}});
  s.tables.push_back(runner::TableSpec{
      "E10",
      "between time phi and D + phi the best known advice stays "
      "Theta(n log n); at D + phi it collapses to O(log D + log phi). "
      "Whether the collapse can start earlier is open.",
      {"time tau", "algorithm", "rounds", "advice bits", "elected"}});

  s.add_cell("workload", 0, [] { return workload_cell(); });
  // The tau grid must be fixed at declaration time, but factories must stay
  // cheap: use the necklace's *prescribed* phi (exact by Claim 3.10) and a
  // plain BFS diameter instead of a full view profile.
  families::Necklace nk = families::necklace_member(7, 3, 2);
  int phi = nk.phi;
  int diameter = nk.graph.diameter();
  for (int tau = phi; tau <= diameter + phi;
       tau += std::max(1, diameter / 6))
    s.add_cell("elect/tau=" + std::to_string(tau), 1,
               [tau] { return depth_tau_cell(tau); });
  s.add_cell("remark", 1, [] { return remark_cell(); });
  return s;
}

}  // namespace

ANOLE_REGISTER_SCENARIO("e10", make_e10);
