// E1 — Theorem 3.1 (upper bound for election in minimum time).
//
// Paper claim: for any n-node graph with election index phi, ComputeAdvice
// emits O(n log n) bits and Elect performs leader election in time exactly
// phi using that advice. Each cell builds one graph, runs the full
// advice+election pipeline and reports the measured advice size, the
// normalized ratio bits/(n log2 n) (which must stay bounded as n grows),
// the rounds used (must equal phi), and the verifier verdict.

#include <cmath>
#include <functional>

#include "election/harness.hpp"
#include "families/necklace.hpp"
#include "families/ring_of_cliques.hpp"
#include "portgraph/builders.hpp"
#include "runner/scenario.hpp"

namespace {

using namespace anole;
using runner::Row;
using runner::Value;

std::vector<Row> min_time_row(const std::string& family,
                              const portgraph::PortGraph& g) {
  election::ElectionRun run = election::run_min_time(g);
  double n = static_cast<double>(g.n());
  double norm = static_cast<double>(run.advice_bits) / (n * std::log2(n));
  return {Row{family, g.n(), run.phi, run.metrics.rounds, run.advice_bits,
              Value::real(norm, 2),
              run.ok() ? std::string("yes")
                       : "NO: " + run.verdict.error}};
}

runner::Scenario make_e1() {
  runner::Scenario s;
  s.name = "e1";
  s.summary = "Elect in minimum time phi with O(n log n) advice";
  s.reference = "Theorem 3.1";
  s.tables.push_back(runner::TableSpec{
      "E1",
      "Elect: advice O(n log n), time = phi (paper: upper bound O(n log n); "
      "measured ratio must stay bounded and rounds must equal phi)",
      {"family", "n", "phi", "rounds", "advice bits", "bits/(n log n)",
       "elected"}});

  auto add = [&s](std::string label, std::string family,
                  std::function<portgraph::PortGraph()> build) {
    s.add_cell(std::move(label), 0,
               [family = std::move(family), build = std::move(build)] {
                 return min_time_row(family, build());
               });
  };

  for (std::size_t n : {16, 32, 64, 128, 256})
    add("random/n=" + std::to_string(n), "random(m=1.5n)",
        [n] { return portgraph::random_connected(n, n / 2, 42 + n); });
  for (int k : {4, 6, 8, 12})
    add("gk/k=" + std::to_string(k), "ring-of-cliques G_k",
        [k] { return families::g_family_member(k, 7).graph; });
  for (int phi : {2, 3, 4, 6})
    add("necklace/phi=" + std::to_string(phi),
        "necklace phi=" + std::to_string(phi),
        [phi] { return families::necklace_member(5, phi, 1).graph; });
  return s;
}

runner::Scenario make_smoke() {
  runner::Scenario s;
  s.name = "smoke";
  s.summary = "tiny E1-style sweep for CI smoke runs and golden tests";
  s.reference = "Theorem 3.1";
  s.tables.push_back(runner::TableSpec{
      "SMOKE",
      "minimum-time election on three tiny feasible graphs (schema-locked "
      "by tests/sinks_test.cpp)",
      {"family", "n", "phi", "rounds", "advice bits", "elected"}});
  auto add = [&s](std::string label, std::string family,
                  std::function<portgraph::PortGraph()> build) {
    s.add_cell(std::move(label), 0,
               [family = std::move(family), build = std::move(build)] {
                 portgraph::PortGraph g = build();
                 election::ElectionRun run = election::run_min_time(g);
                 return std::vector<Row>{
                     Row{family, g.n(), run.phi, run.metrics.rounds,
                         run.advice_bits,
                         run.ok() ? std::string("yes")
                                  : "NO: " + run.verdict.error}};
               });
  };
  add("grid/3x4", "grid(3x4)", [] { return portgraph::grid(3, 4); });
  add("wheel/5", "wheel(5)", [] { return portgraph::wheel(5); });
  add("random/n=10", "random(10,5)",
      [] { return portgraph::random_connected(10, 5, 7); });
  return s;
}

}  // namespace

ANOLE_REGISTER_SCENARIO("e1", make_e1);
ANOLE_REGISTER_SCENARIO("smoke", make_smoke);
