// E2 — Theorem 3.2 / Figure 1 (lower bound for election index 1).
//
// Paper claim: there are n_k-node graphs (the family G_k of clique-ring
// permutations, Fig. 1) with election index 1 such that election in time 1
// requires advice of size Omega(n log log n). The proof rests on:
//   (a) Claim 3.8 — every member of G_k has election index exactly 1;
//   (b) the Observation — corresponding clique-attachment nodes in any two
//       members have equal B^1, so a time-1 algorithm with equal advice
//       outputs identical port sequences at them (Claim 3.9: all (k-1)!
//       members need distinct advice);
//   (c) |G_k| = (k-1)!  =>  >= log2((k-1)!) bits for some member, and
//       log2((k-1)!) = Theta(n_k log log n_k).
//
// Each cell verifies (a) and (b) on sampled members of one G_k and reports
// the (c) curve; the last column cross-feeds the advice of one member into
// Elect running on a different member — a live demonstration that shared
// advice breaks time-1 election.

#include <cmath>

#include "families/ring_of_cliques.hpp"
#include "runner/scenario.hpp"
#include "runner/scenarios/common.hpp"
#include "views/profile.hpp"

namespace {

using namespace anole;
using runner::Row;
using runner::Value;

double log2_factorial(int m) {
  double s = 0;
  for (int i = 2; i <= m; ++i) s += std::log2(static_cast<double>(i));
  return s;
}

std::vector<Row> e2_cell(int k) {
  families::RingOfCliques a = families::g_family_member(k, 1);
  families::RingOfCliques b = families::g_family_member(k, 2);

  // (a) Claim 3.8 on two sampled members.
  views::ViewRepo repo;
  views::ViewProfile pa = views::compute_profile(a.graph, repo);
  views::ViewProfile pb = views::compute_profile(b.graph, repo);
  bool phi_one = pa.feasible && pb.feasible && pa.election_index == 1 &&
                 pb.election_index == 1;

  // (b) The observation: same clique -> same B^1 at its joint across
  // members (shared repo makes ids comparable).
  bool obs = true;
  for (int t = 0; t < k && obs; ++t) {
    int pos_a = -1, pos_b = -1;
    for (int i = 0; i < k; ++i) {
      if (a.assignment[static_cast<std::size_t>(i)] ==
          static_cast<std::uint64_t>(t))
        pos_a = i;
      if (b.assignment[static_cast<std::size_t>(i)] ==
          static_cast<std::uint64_t>(t))
        pos_b = i;
    }
    obs = pa.view(1, a.joints[static_cast<std::size_t>(pos_a)]) ==
          pb.view(1, b.joints[static_cast<std::size_t>(pos_b)]);
  }

  // (c) The bound curve.
  double n_k = static_cast<double>(a.graph.n());
  double lb_bits = log2_factorial(k - 1);
  double scale = n_k * std::log2(std::log2(n_k));

  bool cross = runner::scenarios::cross_feed_succeeds(a.graph, b.graph);

  return {Row{k, a.graph.n(), phi_one ? "1" : "VIOLATED",
              obs ? "holds" : "VIOLATED", Value::real(lb_bits, 1),
              Value::real(scale, 1), Value::real(lb_bits / scale, 3),
              cross ? "SURVIVED (unexpected)" : "breaks (expected)"}};
}

runner::Scenario make_e2() {
  runner::Scenario s;
  s.name = "e2";
  s.summary = "G_k lower bound: time-1 election needs Omega(n log log n) advice";
  s.reference = "Theorem 3.2, Fig. 1";
  s.tables.push_back(runner::TableSpec{
      "E2",
      "family G_k (phi = 1): members need distinct advice; advice lower "
      "bound log2((k-1)!) = Theta(n log log n). 'ratio' must stay bounded "
      "away from 0; cross-feeding advice between members must break "
      "election.",
      {"k", "n_k", "phi(all)", "B1 obs", "|G_k| bits lb", "n loglog n",
       "ratio", "cross-feed"}});
  for (int k : {5, 6, 8, 12, 16, 24, 32})
    s.add_cell("gk/k=" + std::to_string(k), 0, [k] { return e2_cell(k); });
  return s;
}

}  // namespace

ANOLE_REGISTER_SCENARIO("e2", make_e2);
