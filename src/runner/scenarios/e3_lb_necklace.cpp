// E3 — Theorem 3.3 / Figure 2 (lower bound for election index phi > 1).
//
// Paper claim: for every phi > 1 there are n_k-node graphs (the
// k-necklaces of Fig. 2) with election index exactly phi for which
// election in time phi needs advice of size Omega(n (log log n)^2 / log n).
// The proof rests on:
//   (a) Claim 3.10 — every k-necklace has election index exactly phi;
//   (b) the Observation — the left (resp. right) leaves of any two
//       k-necklaces have equal B^phi, forcing equal outputs under equal
//       advice (Claim 3.11: all members need distinct advice);
//   (c) |N_k| = (x+1)^(k-3)  =>  >= (k-3) log2(x+1) bits for some member,
//       which is Theta(k log log k) = Theta(n (log log n)^2 / log n).
//
// One cell per (phi, k) verifies (a) and (b) on sampled codes, reports the
// (c) curve, and cross-feeds one necklace's Elect advice into another
// member to demonstrate the failure concretely.

#include <cmath>

#include "families/cliques.hpp"
#include "families/necklace.hpp"
#include "runner/scenario.hpp"
#include "runner/scenarios/common.hpp"
#include "views/profile.hpp"

namespace {

using namespace anole;
using runner::Row;
using runner::Value;

std::vector<Row> e3_cell(int phi, int k) {
  int x = families::f_parameter_for(static_cast<std::uint64_t>(k));
  families::Necklace a = families::necklace_member(k, phi, 0);
  families::Necklace b = families::necklace_member(
      k, phi, families::necklace_family_size(k) - 1);

  views::ViewRepo repo;
  views::ViewProfile pa = views::compute_profile(a.graph, repo, phi);
  views::ViewProfile pb = views::compute_profile(b.graph, repo, phi);
  bool phi_ok = pa.feasible && pb.feasible && pa.election_index == phi &&
                pb.election_index == phi;
  bool obs = pa.view(phi, a.left_leaf) == pb.view(phi, b.left_leaf) &&
             pa.view(phi, a.right_leaf) == pb.view(phi, b.right_leaf);

  double n_k = static_cast<double>(a.graph.n());
  double lb_bits =
      static_cast<double>(k - 3) * std::log2(static_cast<double>(x + 1));
  double ll = std::log2(std::log2(n_k));
  double scale = n_k * ll * ll / std::log2(n_k);
  bool cross = runner::scenarios::cross_feed_succeeds(a.graph, b.graph);

  return {Row{phi, k, a.graph.n(), phi_ok ? "exact" : "VIOLATED",
              obs ? "holds" : "VIOLATED", Value::real(lb_bits, 1),
              Value::real(scale, 1), Value::real(lb_bits / scale, 3),
              cross ? "SURVIVED (unexpected)" : "breaks (expected)"}};
}

runner::Scenario make_e3() {
  runner::Scenario s;
  s.name = "e3";
  s.summary =
      "k-necklace lower bound: time-phi election needs "
      "Omega(n (log log n)^2 / log n) advice";
  s.reference = "Theorem 3.3, Fig. 2";
  s.tables.push_back(runner::TableSpec{
      "E3",
      "k-necklaces (election index exactly phi): every member needs "
      "distinct advice; lower bound (k-3)log2(x+1) = "
      "Theta(n (log log n)^2 / log n). 'ratio' must stay bounded away from "
      "0; cross-fed advice must break election.",
      {"phi", "k", "n_k", "phi check", "leaf obs", "|N_k| bits lb",
       "n(loglog n)^2/log n", "ratio", "cross-feed"}});
  for (int phi : {2, 3, 4})
    for (int k : {5, 7, 9, 12})
      s.add_cell("necklace/phi=" + std::to_string(phi) +
                     "/k=" + std::to_string(k),
                 0, [phi, k] { return e3_cell(phi, k); });
  return s;
}

}  // namespace

ANOLE_REGISTER_SCENARIO("e3", make_e3);
