// E4 — Theorem 4.1 (upper bounds for election in large time).
//
// Paper claim: for any graph of diameter D and election index phi and any
// integer constant c > 1,
//   Election1 elects in <= D + phi + c   with O(log phi)        advice bits,
//   Election2 elects in <= D + c*phi     with O(log log phi)    advice bits,
//   Election3 elects in <= D + phi^c     with O(log log log phi) advice bits,
//   Election4 elects in <= D + c^phi     with O(log(log* phi))  advice bits.
//
// One cell per (c, graph, variant) reports measured rounds against the
// exact bound and the measured advice size against the paper's Theta
// expression. Workloads: necklaces with prescribed phi (2..6) and a random
// graph. (Variant 3's bound needs phi >= 2 — see the remark in
// generic.hpp.)

#include <cmath>
#include <functional>

#include "election/harness.hpp"
#include "families/necklace.hpp"
#include "portgraph/builders.hpp"
#include "runner/scenario.hpp"
#include "util/math.hpp"

namespace {

using namespace anole;
using runner::Row;
using runner::Value;

const char* variant_name(election::LargeTimeVariant v) {
  switch (v) {
    case election::LargeTimeVariant::kPhiPlusC:
      return "E1: D+phi+c";
    case election::LargeTimeVariant::kCTimesPhi:
      return "E2: D+c*phi";
    case election::LargeTimeVariant::kPhiPowC:
      return "E3: D+phi^c";
    case election::LargeTimeVariant::kCPowPhi:
      return "E4: D+c^phi";
  }
  return "?";
}

double advice_scale(election::LargeTimeVariant v, double phi) {
  double l = std::max(1.0, std::log2(phi));
  switch (v) {
    case election::LargeTimeVariant::kPhiPlusC:
      return l;
    case election::LargeTimeVariant::kCTimesPhi:
      return std::max(1.0, std::log2(l));
    case election::LargeTimeVariant::kPhiPowC:
      return std::max(1.0, std::log2(std::max(1.0, std::log2(l))));
    case election::LargeTimeVariant::kCPowPhi:
      return std::max(
          1.0,
          std::log2(1.0 + util::log_star(static_cast<std::uint64_t>(phi))));
  }
  return 1;
}

std::vector<Row> e4_cell(const std::string& name,
                         const portgraph::PortGraph& g,
                         election::LargeTimeVariant v, std::uint64_t c) {
  election::ElectionRun run = election::run_large_time(g, v, c);
  std::uint64_t bound = election::large_time_bound(
      v, static_cast<std::uint64_t>(run.diameter),
      static_cast<std::uint64_t>(run.phi), c);
  bool within =
      run.ok() && static_cast<std::uint64_t>(run.metrics.rounds) <= bound;
  // Variant 3's Theorem 4.1 budget assumes phi >= 2.
  bool exempt = (v == election::LargeTimeVariant::kPhiPowC && run.phi < 2);
  return {Row{name, c, g.n(), run.diameter, run.phi, variant_name(v),
              run.metrics.rounds, bound,
              within ? "yes" : (exempt ? "n/a (phi<2)" : "VIOLATED"),
              run.advice_bits,
              Value::real(advice_scale(v, static_cast<double>(run.phi)), 2)}};
}

runner::Scenario make_e4() {
  runner::Scenario s;
  s.name = "e4";
  s.summary = "Election1..4: rounds within bound, advice on the Theta scale";
  s.reference = "Theorem 4.1";
  s.tables.push_back(runner::TableSpec{
      "E4",
      "Election1..4 (c in {2,3}): rounds must stay within the exact bound; "
      "advice bits track the Theta scale column (log phi, log log phi, "
      "log log log phi, log log* phi).",
      {"graph", "c", "n", "D", "phi", "variant", "rounds", "bound", "within",
       "advice bits", "Theta scale"}});

  std::vector<std::pair<std::string, std::function<portgraph::PortGraph()>>>
      graphs;
  for (int phi : {2, 3, 4, 6})
    graphs.emplace_back("necklace(phi=" + std::to_string(phi) + ")",
                        [phi] { return families::necklace_member(5, phi, 1).graph; });
  graphs.emplace_back("random(24,16)",
                      [] { return portgraph::random_connected(24, 16, 3); });

  for (std::uint64_t c : {std::uint64_t{2}, std::uint64_t{3}})
    for (const auto& [name, build] : graphs)
      for (election::LargeTimeVariant v :
           {election::LargeTimeVariant::kPhiPlusC,
            election::LargeTimeVariant::kCTimesPhi,
            election::LargeTimeVariant::kPhiPowC,
            election::LargeTimeVariant::kCPowPhi})
        s.add_cell(name + "/c=" + std::to_string(c) + "/variant=" +
                       std::to_string(static_cast<int>(v)),
                   0, [name = name, build = build, v, c] {
                     return e4_cell(name, build(), v, c);
                   });
  return s;
}

}  // namespace

ANOLE_REGISTER_SCENARIO("e4", make_e4);
