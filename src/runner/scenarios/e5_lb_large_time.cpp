// E5 — Theorem 4.2 / Figures 3-8 (lower bounds for election in large time).
//
// Paper claim: for each time regime D+phi+c, D+c*phi, D+phi^c, D+c^phi
// there are graphs with election index <= alpha requiring advice of size
// Omega(log alpha), Omega(log log alpha), Omega(log log log alpha),
// Omega(log log* alpha) respectively. The proof constructs sequences
// T_0..T_k* of lock-chain graphs (z-locks, Fig. 3; S_0 members, Fig. 5)
// closed under a merge operation (pruned views, Figs. 6-8) such that
// graphs of different sequences must receive different advice; k* is
// maximal with B(k*, c) <= alpha, giving >= log2(k*) advice bits.
//
// Tables A1-A3 verify the construction's structural claims at
// instantiable scale (the paper's full-scale parameters are proof
// devices; the claims are depth-parametric, so reduced depth exercises
// the same machinery — see DESIGN.md). Table B reports the k* counting
// argument exactly.

#include <cmath>
#include <memory>

#include "election/baselines.hpp"
#include "election/lb_schedules.hpp"
#include "election/verify.hpp"
#include "families/locks.hpp"
#include "runner/scenario.hpp"
#include "sim/full_info.hpp"
#include "views/profile.hpp"

namespace {

using namespace anole;
using runner::Row;
using runner::Value;

// Depth up to which two nodes (in possibly different graphs) have equal
// augmented truncated views; both profiles must share `repo`.
int agreement_depth(views::ViewRepo& repo, const portgraph::PortGraph& g1,
                    portgraph::NodeId v1, const portgraph::PortGraph& g2,
                    portgraph::NodeId v2, int max_depth) {
  views::ViewProfile p1 = views::compute_profile(g1, repo, max_depth);
  views::ViewProfile p2 = views::compute_profile(g2, repo, max_depth);
  int depth = -1;
  for (int t = 0; t <= max_depth; ++t) {
    if (p1.view(t, v1) != p2.view(t, v2)) break;
    depth = t;
  }
  return depth;
}

std::vector<Row> a1_cell(int i) {
  families::LockChain g = families::s0_member(/*alpha=*/2, /*c=*/2, i);
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g.graph, repo);
  std::vector<int> dist = g.graph.bfs_distances(g.left_principal);
  int d = g.graph.diameter();
  int pd = dist[static_cast<std::size_t>(g.right_principal)];
  return {Row{"S0[" + std::to_string(i) + "]", g.graph.n(), p.election_index,
              pd, d, pd == d ? "holds" : "VIOLATED"}};
}

std::vector<Row> a2_cell(int ell) {
  families::LockChain h1 = families::s0_member(1, 2, 0);
  families::LockChain h2 = families::s0_member(1, 2, 1);
  families::LockChain q = families::merge_locks(h1, h2, ell, 4);

  views::ViewRepo repo;
  int central_agree = agreement_depth(repo, h1.graph, h1.right_central,
                                      q.graph, q.t2_central, ell + 2);
  // Principal of H1's left lock: distance `dist` from the transformed
  // central node; guaranteed agreement depth dist + ell - 1 (Claim 4.2).
  std::vector<int> dist = h1.graph.bfs_distances(h1.right_central);
  int guarantee = dist[static_cast<std::size_t>(h1.left_principal)] + ell - 1;
  int principal_agree = agreement_depth(repo, h1.graph, h1.left_principal,
                                        q.graph, q.left_principal,
                                        guarantee + 3);
  bool ok = central_agree >= ell - 1 && principal_agree >= guarantee;
  return {Row{ell, q.graph.n(), ell - 1, central_agree, guarantee,
              principal_agree, ok ? "holds" : "VIOLATED"}};
}

// Theorem 4.2 fools algorithms that carry a *deadline* derived from the
// advice: on the small sequence graphs they must stop by time
// D' + A(B(i,c),c), and since Q's principal-node neighborhoods replicate
// the small graphs' to exactly that depth (property 9), the same advice
// makes nodes on Q stop early and elect locally — a split vote. The
// Remark(D,phi) algorithm is deadline-bound, so we can run the fooling
// live: Remark with the constituent's (D', phi') on Q must fail; Remark
// with Q's true parameters succeeds.
std::vector<Row> a3_cell() {
  families::LockChain h1 = families::s0_member(1, 2, 0);
  families::LockChain h2 = families::s0_member(1, 2, 1);
  families::LockChain q = families::merge_locks(h1, h2, 3, 4);
  views::ViewRepo probe;
  views::ViewProfile pq = views::compute_profile(q.graph, probe);
  int phi_q = pq.election_index;
  int diam_q = q.graph.diameter();
  int diam_h = h1.graph.diameter();
  views::ViewRepo probe_h;
  int phi_h = views::compute_profile(h1.graph, probe_h).election_index;

  struct Case {
    int d, phi;
    bool mis;
  };
  std::vector<Row> rows;
  for (const Case& it :
       {Case{diam_h, phi_h, true}, Case{diam_q, phi_q, false}}) {
    views::ViewRepo repo;
    std::vector<std::unique_ptr<sim::NodeProgram>> programs;
    for (std::size_t v = 0; v < q.graph.n(); ++v)
      programs.push_back(std::make_unique<election::RemarkProgram>(
          static_cast<std::uint64_t>(it.d),
          static_cast<std::uint64_t>(it.phi)));
    sim::RunMetrics metrics =
        sim::run_full_info(q.graph, repo, programs, it.d + it.phi + 1);
    bool ok = !metrics.timed_out &&
              election::verify_election(q.graph, metrics.outputs).ok;
    rows.push_back(Row{
        "(" + std::to_string(it.d) + "," + std::to_string(it.phi) + ")" +
            (it.mis ? " from H1" : " true"),
        it.d + it.phi, q.graph.n(), diam_q,
        ok ? (it.mis ? std::string("SUCCEEDS (unexpected)")
                     : std::string("yes"))
           : (it.mis ? std::string("fails (expected)")
                     : std::string("NO (unexpected)")),
        it.mis ? "fails" : "elects"});
  }
  return rows;
}

std::vector<Row> b_cell(std::uint64_t alpha) {
  const std::uint64_t c = 2;
  std::uint64_t k1 =
      election::lb_k_star(election::LargeTimeVariant::kPhiPlusC, alpha, c);
  std::uint64_t k2 =
      election::lb_k_star(election::LargeTimeVariant::kCTimesPhi, alpha, c);
  std::uint64_t k3 =
      election::lb_k_star(election::LargeTimeVariant::kPhiPowC, alpha, c);
  std::uint64_t k4 =
      election::lb_k_star(election::LargeTimeVariant::kCPowPhi, alpha, c);
  auto lb = [](std::uint64_t k) {
    return k >= 1 ? std::log2(static_cast<double>(k)) : 0.0;
  };
  return {Row{alpha, k1, Value::real(lb(k1), 1),
              Value::real(std::log2(static_cast<double>(alpha)), 1), k2,
              Value::real(lb(k2), 1),
              Value::real(std::log2(std::log2(static_cast<double>(alpha))), 1),
              k3, Value::real(lb(k3), 1), k4, Value::real(lb(k4), 1)}};
}

runner::Scenario make_e5() {
  runner::Scenario s;
  s.name = "e5";
  s.summary =
      "large-time lower bounds: lock-chain construction checks + k* counting";
  s.reference = "Theorem 4.2, Figs. 3-8";
  s.tables.push_back(runner::TableSpec{
      "E5.A1",
      "S_0 members: Claim 4.1 (phi = 1) and property 10 (principal-node "
      "distance = diameter)",
      {"graph", "n", "phi", "princ dist", "diam", "prop 10"}});
  s.tables.push_back(runner::TableSpec{
      "E5.A2",
      "merge operation at pruning depth ell: the transformed lock's central "
      "node keeps B^{ell-1}; principal nodes keep the constituent's views "
      "to depth dist + ell - 1 (Claim 4.2), which is what fools any "
      "algorithm that stops early",
      {"ell", "n(Q)", "central agree >=", "central measured",
       "principal agree >=", "principal measured", "claim 4.2"}});
  s.tables.push_back(runner::TableSpec{
      "E5.A3",
      "fooling demonstration on the merged graph Q: the deadline-bound "
      "Remark algorithm with the constituent's (D,phi) stops before seeing "
      "all of Q and splits the vote; the true parameters elect",
      {"advice (D,phi)", "stops at", "n(Q)", "diam(Q)", "elects",
       "expected"}});
  s.tables.push_back(runner::TableSpec{
      "E5.B",
      "counting: k* sequences per time regime and the advice lower bounds "
      "log2(k*): Theta(log alpha), Theta(log log alpha), "
      "Theta(log log log alpha), Theta(log log* alpha) — each an "
      "exponential jump below the last",
      {"alpha", "k*1", "lb1 bits", "~log a", "k*2", "lb2 bits", "~loglog a",
       "k*3", "lb3 bits", "k*4", "lb4 bits"}});

  for (int i : {0, 1, 2})
    s.add_cell("s0/i=" + std::to_string(i), 0, [i] { return a1_cell(i); });
  for (int ell : {2, 3, 4})
    s.add_cell("merge/ell=" + std::to_string(ell), 1,
               [ell] { return a2_cell(ell); });
  s.add_cell("fooling/remark", 2, [] { return a3_cell(); });
  for (std::uint64_t alpha :
       {std::uint64_t{16}, std::uint64_t{256}, std::uint64_t{65536},
        std::uint64_t{1} << 32, std::uint64_t{1} << 60})
    s.add_cell("kstar/alpha=" + std::to_string(alpha), 3,
               [alpha] { return b_cell(alpha); });
  return s;
}

}  // namespace

ANOLE_REGISTER_SCENARIO("e5", make_e5);
