// E6 — Proposition 4.1 / Figure 9 (constant advice never suffices).
//
// Paper claim: no algorithm using advice of constant size performs leader
// election in all feasible graphs, for any allocated time. The proof takes
// c graphs H_1..H_c exhausting the c advice values, builds the composite
// hairy ring G from their gamma-stretches (Fig. 9), and shows that the two
// foci of the stretch of H_{j0} (the graph whose advice G shares) have the
// same B^T as the cut node in H_{j0} — so they output identical short
// paths pointing at two different "leaders".
//
// Table A verifies the view equalities (foci vs original cut node, and
// the two foci against each other); table B demonstrates the failure
// live: Elect on G with the advice computed for each H_j fails for every
// one of the c advice strings, while G's own (non-constant!) advice
// succeeds.

#include <vector>

#include "election/harness.hpp"
#include "families/hairy.hpp"
#include "runner/scenario.hpp"
#include "runner/scenarios/common.hpp"
#include "views/profile.hpp"

namespace {

using namespace anole;
using runner::Row;
using runner::Value;

constexpr int kGamma = 12;

std::vector<families::HairyRing> make_rings() {
  std::vector<families::HairyRing> rings;
  rings.push_back(families::hairy_ring({1, 0, 2}));
  rings.push_back(families::hairy_ring({0, 3, 1}));
  rings.push_back(families::hairy_ring({2, 1, 0, 4}));
  return rings;
}

std::vector<Row> view_equalities_cell(std::size_t j) {
  std::vector<families::HairyRing> rings = make_rings();
  families::PropositionGraph g = families::proposition_graph(rings, kGamma);
  views::ViewRepo repo;
  const int t = 4;
  views::ViewProfile pg = views::compute_profile(g.graph, repo, t);
  views::ViewProfile pj = views::compute_profile(rings[j].graph, repo, t);
  portgraph::NodeId a = g.layouts[j].ring_of_copy[kGamma / 2][0];
  portgraph::NodeId b = g.layouts[j].ring_of_copy[kGamma / 2 + 1][0];
  bool ea = pg.view(t, a) == pj.view(t, rings[j].ring[0]);
  bool eb = pg.view(t, b) == pj.view(t, rings[j].ring[0]);
  return {Row{"H_" + std::to_string(j + 1), rings[j].graph.n(),
              g.graph.n(), ea ? "holds" : "VIOLATED",
              eb ? "holds" : "VIOLATED",
              pg.view(t, a) == pg.view(t, b) ? "holds" : "VIOLATED", t}};
}

std::vector<Row> cross_advice_cell(std::size_t j) {
  std::vector<families::HairyRing> rings = make_rings();
  families::PropositionGraph g = families::proposition_graph(rings, kGamma);
  bool ok = runner::scenarios::cross_feed_succeeds(rings[j].graph, g.graph);
  return {Row{"H_" + std::to_string(j + 1),
              ok ? "SUCCEEDS (unexpected)" : "fails", "fails (Prop 4.1)"}};
}

std::vector<Row> own_advice_cell() {
  std::vector<families::HairyRing> rings = make_rings();
  families::PropositionGraph g = families::proposition_graph(rings, kGamma);
  election::ElectionRun own = election::run_min_time(g.graph);
  return {Row{"G itself (" + std::to_string(own.advice_bits) + " bits)",
              own.ok() ? "succeeds" : "FAILS (unexpected)", "succeeds"}};
}

runner::Scenario make_e6() {
  runner::Scenario s;
  s.name = "e6";
  s.summary = "constant-size advice cannot elect in all feasible graphs";
  s.reference = "Proposition 4.1, Fig. 9";
  s.tables.push_back(runner::TableSpec{
      "E6.A",
      "composite graph G: the stretch foci are indistinguishable from the "
      "original cut node (and from each other) at the checked depth, so a "
      "time-bounded algorithm with H_j's advice must output the same short "
      "path at both foci — two different leaders",
      {"H_j", "n(H_j)", "n(G)", "focus A = z_j", "focus B = z_j", "A = B",
       "depth checked"}});
  s.tables.push_back(runner::TableSpec{
      "E6.B",
      "live demonstration: each of the c constant-budget advice strings "
      "fails on G; only G's own advice (size growing with G) elects "
      "correctly",
      {"advice source", "advice works on G?", "expected"}});

  for (std::size_t j = 0; j < 3; ++j)
    s.add_cell("views/H_" + std::to_string(j + 1), 0,
               [j] { return view_equalities_cell(j); });
  for (std::size_t j = 0; j < 3; ++j)
    s.add_cell("cross/H_" + std::to_string(j + 1), 1,
               [j] { return cross_advice_cell(j); });
  s.add_cell("own-advice", 1, [] { return own_advice_cell(); });
  return s;
}

}  // namespace

ANOLE_REGISTER_SCENARIO("e6", make_e6);
