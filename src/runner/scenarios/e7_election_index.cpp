// E7 — Propositions 2.1 and 2.2 (the election index).
//
// Prop 2.1: the election index equals the smallest depth at which all
// augmented truncated views are distinct (this is what compute_profile
// measures; the map baseline elects in exactly that many rounds).
// Prop 2.2: phi = O(D log(n/D)) for every feasible n-node graph of
// diameter D.
//
// One cell per graph reports n, D, phi, the normalized ratio
// phi / (D * max(1, log2(n/D))) — which Prop 2.2 bounds by a constant —
// and the map-baseline round count (must equal phi).

#include <cmath>
#include <functional>

#include "election/harness.hpp"
#include "families/necklace.hpp"
#include "families/ring_of_cliques.hpp"
#include "portgraph/builders.hpp"
#include "runner/scenario.hpp"
#include "views/profile.hpp"

namespace {

using namespace anole;
using runner::Row;
using runner::Value;

std::vector<Row> e7_cell(const std::string& name,
                         const portgraph::PortGraph& g, bool run_map_check) {
  // One context per cell: the map check below reuses its profile and repo
  // instead of refining the same graph a second time. Only feasibility and
  // phi are read from the profile, so the level history is dropped.
  election::ElectionContext ctx(g, /*keep_history=*/false);
  if (!ctx.feasible())
    return {Row{name, g.n(), "-", "infeasible", "-", "-"}};
  int d = ctx.diameter();
  double ratio = static_cast<double>(ctx.phi()) /
                 (static_cast<double>(d) *
                  std::max(1.0, std::log2(static_cast<double>(g.n()) / d)));
  Value map_rounds = "-";
  if (run_map_check) {
    election::ElectionRun run = election::run_map(ctx);
    map_rounds = run.ok() && run.metrics.rounds == run.phi
                     ? Value(run.metrics.rounds)
                     : Value("VIOLATED");
  }
  return {Row{name, g.n(), d, ctx.phi(), Value::real(ratio, 3),
              map_rounds}};
}

runner::Scenario make_e7() {
  runner::Scenario s;
  s.name = "e7";
  s.summary = "election index across families: phi = O(D log(n/D))";
  s.reference = "Propositions 2.1-2.2";
  s.tables.push_back(runner::TableSpec{
      "E7",
      "election index across families: the ratio column must stay bounded "
      "(phi = O(D log(n/D))); the map baseline elects in exactly phi "
      "rounds (Prop 2.1); symmetric graphs are infeasible",
      {"graph", "n", "D", "phi", "phi/(D log(n/D))", "map rounds"}});

  auto add = [&s](std::string label, std::string name,
                  std::function<portgraph::PortGraph()> build,
                  bool map_check) {
    s.add_cell(std::move(label), 0,
               [name = std::move(name), build = std::move(build), map_check] {
                 return e7_cell(name, build(), map_check);
               });
  };

  for (std::size_t n : {16, 32, 64, 128}) {
    add("random-sparse/n=" + std::to_string(n), "random sparse",
        [n] { return portgraph::random_connected(n, n / 4, n); }, n <= 64);
    add("random-dense/n=" + std::to_string(n), "random dense",
        [n] { return portgraph::random_connected(n, 2 * n, n); }, n <= 64);
  }
  add("path/33", "path(33)", [] { return portgraph::path(33); }, false);
  add("grid/5x7", "grid(5x7)", [] { return portgraph::grid(5, 7); }, true);
  add("btree/31", "binary_tree(31)",
      [] { return portgraph::binary_tree(31); }, true);
  for (int phi : {2, 4, 8})
    add("necklace/phi=" + std::to_string(phi),
        "necklace(phi=" + std::to_string(phi) + ")",
        [phi] { return families::necklace_member(5, phi, 1).graph; }, false);
  add("gk/k=8", "G_k(k=8)",
      [] { return families::g_family_member(8, 3).graph; }, false);
  add("ring/16", "ring(16) [symmetric]", [] { return portgraph::ring(16); },
      false);
  add("hypercube/4", "hypercube(4) [symmetric]",
      [] { return portgraph::hypercube(4); }, false);
  return s;
}

}  // namespace

ANOLE_REGISTER_SCENARIO("e7", make_e7);
