// E8 — ablation of the advice design (paper Section 3, the discussion
// before Algorithm Elect).
//
// The paper motivates its trie construction by dismissing two simpler
// designs:
//  (1) the *naive list*: ship the sorted list of all view codes and label
//      nodes by rank — "labels would be of size Omega(n log n) [and] item
//      A2 would have to give the tree with all these labels, thus
//      potentially requiring at least Omega(n^2 log n) bits";
//  (2) the *flat depth-phi trie*: for phi > 1 "queries would be of size
//      Omega(phi log n), resulting in advice of size Omega(phi n log n)"
//      — and the flat tree codes of depth-phi views themselves grow like
//      Delta^phi.
//
// Table A runs the naive list scheme (it is a correct algorithm at
// phi = 1!) head-to-head against the paper's trie scheme on dense graphs:
// the trie advice must grow ~n log n while the naive advice grows
// ~n^2 log n. Table B reports, for necklaces of growing phi, the total
// flat-tree code size of the depth-phi views against the paper scheme's
// measured advice — the exponential vs linear gap in phi.

#include <cmath>
#include <memory>

#include "advice/min_time.hpp"
#include "advice/naive.hpp"
#include "election/elect_program.hpp"
#include "election/verify.hpp"
#include "families/necklace.hpp"
#include "portgraph/builders.hpp"
#include "runner/scenario.hpp"
#include "sim/full_info.hpp"
#include "views/profile.hpp"

namespace {

using namespace anole;
using runner::Row;
using runner::Value;

// Runs the naive scheme end to end against the cell's shared repo +
// profile; returns (advice bits, elected ok).
std::pair<std::size_t, bool> run_naive(const portgraph::PortGraph& g,
                                       views::ViewRepo& repo,
                                       const views::ViewProfile& profile) {
  advice::NaiveAdvice adv = advice::compute_naive_advice(g, repo, profile);
  coding::BitString bits = adv.to_bits();
  auto decoded = std::make_shared<const advice::NaiveAdvice>(
      advice::NaiveAdvice::from_bits(bits));
  std::vector<std::unique_ptr<sim::NodeProgram>> programs;
  for (std::size_t v = 0; v < g.n(); ++v)
    programs.push_back(std::make_unique<advice::NaiveElectProgram>(decoded));
  sim::RunMetrics metrics = sim::run_full_info(g, repo, programs, 2);
  bool ok = !metrics.timed_out &&
            election::verify_election(g, metrics.outputs).ok;
  return {bits.size(), ok};
}

std::vector<Row> naive_vs_trie_cell(std::size_t n) {
  // Dense graphs (m ~ n^2/8) make the depth-1 codes Theta(n log n). One
  // profile serves the feasibility gate and both advice schemes (the
  // advice depends only on graph structure and the canonical view order,
  // so sharing the repo changes no reported bit count).
  portgraph::PortGraph g = portgraph::random_connected(n, n * n / 8, 5 + n);
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo, 1);
  if (!p.feasible || p.election_index != 1) return {};  // skipped, as before
  auto [naive_bits, ok] = run_naive(g, repo, p);
  std::size_t trie_bits = advice::compute_advice(g, repo, p).to_bits().size();
  double logn = std::log2(static_cast<double>(n));
  return {Row{n, trie_bits, naive_bits,
              Value::real(static_cast<double>(naive_bits) / trie_bits, 2),
              Value::real(trie_bits / (n * logn), 2),
              Value::real(
                  naive_bits / (static_cast<double>(n) * n * logn), 3),
              ok ? "yes" : "NO"}};
}

std::vector<Row> flat_blowup_cell(int phi) {
  families::Necklace nk = families::necklace_member(5, phi, 1);
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(nk.graph, repo, 1);
  std::size_t trie_bits =
      advice::compute_advice(nk.graph, repo, p).to_bits().size();
  std::uint64_t flat = 0;
  constexpr std::uint64_t kCap = UINT64_C(1) << 62;
  for (std::size_t v = 0; v < nk.graph.n(); ++v) {
    std::uint64_t b = advice::naive_tree_code_bits(
        repo, p.view(phi, static_cast<portgraph::NodeId>(v)));
    flat = (flat >= kCap - b) ? kCap : flat + b;
  }
  return {Row{phi, nk.graph.n(), trie_bits,
              flat >= kCap ? Value(">= 2^62") : Value(flat),
              flat >= kCap
                  ? Value("astronomical")
                  : Value::real(static_cast<double>(flat) / trie_bits, 1)}};
}

runner::Scenario make_e8() {
  runner::Scenario s;
  s.name = "e8";
  s.summary = "advice-design ablation: naive list and flat trie vs the paper";
  s.reference = "Section 3 (discussion before Algorithm Elect)";
  s.tables.push_back(runner::TableSpec{
      "E8.A",
      "phi = 1, dense graphs: the naive list-of-codes advice is correct "
      "but pays Theta(n^2 log n) bits; the paper's trie advice stays "
      "Theta(n log n). Both normalized columns must stay bounded — the "
      "ratio column must keep growing.",
      {"n", "trie bits", "naive bits", "naive/trie", "trie/(n log n)",
       "naive/(n^2 log n)", "naive ok"}});
  s.tables.push_back(runner::TableSpec{
      "E8.B",
      "phi > 1, necklaces: shipping explicit depth-phi view trees costs "
      "Delta^phi bits; the paper's recursive trie labels keep the advice "
      "near-linear in n regardless of phi.",
      {"phi", "n", "trie advice bits", "flat view codes bits", "blowup"}});

  for (std::size_t n : {16, 32, 64, 128, 256})
    s.add_cell("dense/n=" + std::to_string(n), 0,
               [n] { return naive_vs_trie_cell(n); });
  for (int phi : {2, 3, 4, 6, 8})
    s.add_cell("necklace/phi=" + std::to_string(phi), 1,
               [phi] { return flat_blowup_cell(phi); });
  return s;
}

}  // namespace

ANOLE_REGISTER_SCENARIO("e8", make_e8);
