// E9 — the advice-vs-time frontier (Section 1 "Our results" + the remark
// after Theorem 4.1), on a single graph.
//
// Paper narrative: the minimum advice for election drops in exponential
// jumps as the allocated time grows —
//   time phi        : ~n log n bits      (Theorem 3.1, near-tight)
//   time D + phi    : O(log D + log phi) (remark after Theorem 4.1)
//   time D + phi + c: Theta(log phi)
//   time D + c*phi  : Theta(log log phi)
//   time D + phi^c  : Theta(log log log phi)
//   time D + c^phi  : Theta(log(log* phi))
//   time D + n + 1  : O(log n)           (size-only baseline)
//   map known       : Theta(m log n) advice, time phi (naive baseline)
//
// One cell per algorithm (the shared runner::election_portfolio) runs on
// the same necklace and reports measured rounds and advice bits — the
// frontier the paper's Figure-free evaluation describes in prose.

#include "families/necklace.hpp"
#include "runner/portfolio.hpp"
#include "runner/scenario.hpp"
#include "views/profile.hpp"

namespace {

using namespace anole;
using runner::Row;
using runner::Value;

// A necklace with phi = 4: large enough to see the advice hierarchy.
portgraph::PortGraph workload() {
  return families::necklace_member(6, 4, 3).graph;
}

// One concurrent ViewRepo for the whole portfolio (DESIGN.md §10): the
// eight algorithm cells run in parallel under the runner's --threads pool
// but intern the same workload views, so after the first cell every
// refinement is pure cache hits. Reported values (rounds, advice bits,
// leader) depend only on the graph and the canonical view order, never on
// repo pre-state or interning schedule, so the table stays byte-identical
// across --threads.
views::ViewRepo& portfolio_repo() {
  static views::ViewRepo repo;
  return repo;
}

std::vector<Row> workload_cell() {
  portgraph::PortGraph g = workload();
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo);
  return {Row{"necklace(k=6, phi=4)", g.n(), g.diameter(),
              p.election_index}};
}

std::vector<Row> algorithm_cell(std::size_t index) {
  runner::PortfolioAlgorithm algo =
      runner::election_portfolio(/*c=*/2).at(index);
  // Cells stay independent (the runner parallelizes them), so each builds
  // its own graph + context — but all contexts share the portfolio repo,
  // and within the cell the context computes the profile and diameter
  // exactly once, which the harness reuses.
  portgraph::PortGraph g = workload();
  election::ElectionContext ctx(g, /*keep_history=*/true, &portfolio_repo());
  election::ElectionRun run = algo.run(ctx);
  return {Row{algo.name, algo.model, run.metrics.rounds, run.advice_bits,
              static_cast<std::int64_t>(run.verdict.leader),
              run.ok() ? "yes" : "NO"}};
}

runner::Scenario make_e9() {
  runner::Scenario s;
  s.name = "e9";
  s.summary = "advice/time frontier: the full algorithm portfolio on one graph";
  s.reference = "Section 1 results + remark after Theorem 4.1";
  s.tables.push_back(runner::TableSpec{
      "E9.W", "the workload graph", {"graph", "n", "D", "phi"}});
  s.tables.push_back(runner::TableSpec{
      "E9",
      "advice/time frontier on necklace(k=6, phi=4): advice shrinks in the "
      "paper's exponential jumps as allocated time grows; every row must "
      "elect the leader.",
      {"algorithm", "time model", "rounds", "advice bits", "leader", "ok"}});

  s.add_cell("workload", 0, [] { return workload_cell(); });
  std::vector<runner::PortfolioAlgorithm> portfolio =
      runner::election_portfolio(2);
  for (std::size_t i = 0; i < portfolio.size(); ++i)
    s.add_cell("algo/" + portfolio[i].name, 1,
               [i] { return algorithm_cell(i); });
  return s;
}

}  // namespace

ANOLE_REGISTER_SCENARIO("e9", make_e9);
