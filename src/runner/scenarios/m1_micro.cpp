// M1 — microbenchmarks for the view substrate (m1-views) and the advice
// machinery (m1-advice), the former google-benchmark binaries folded into
// the scenario registry so they run through the same CLI as every table.
//
// Each cell times one operation with a simple adaptive loop (warm-up run,
// then repeat until a fixed wall-clock budget) and reports ns/op. These
// scenarios are marked non-deterministic: their values vary run to run by
// nature, and they are excluded from the byte-identical output contract.

#include <chrono>
#include <functional>
#include <memory>

#include "advice/min_time.hpp"
#include "coding/codec.hpp"
#include "families/necklace.hpp"
#include "portgraph/builders.hpp"
#include "runner/scenario.hpp"
#include "runner/scenarios/common.hpp"
#include "sim/engine.hpp"
#include "sim/full_info.hpp"
#include "views/profile.hpp"
#include "views/sig_hash.hpp"

namespace {

using namespace anole;
using runner::Row;
using runner::Value;

constexpr double kBudgetMs = 80.0;
constexpr std::int64_t kMaxIters = 1 << 18;

/// Times `op` (already set up): one warm-up call, then repeats until the
/// wall-clock budget is spent. Returns a table row fragment.
std::vector<Row> time_op(const std::string& benchmark, const std::string& arg,
                         const std::function<void()>& op) {
  using Clock = std::chrono::steady_clock;
  op();  // warm-up
  std::int64_t iters = 0;
  Clock::time_point start = Clock::now();
  double elapsed_ms = 0;
  while (elapsed_ms < kBudgetMs && iters < kMaxIters) {
    op();
    ++iters;
    elapsed_ms = std::chrono::duration<double, std::milli>(Clock::now() - start)
                     .count();
  }
  double ns_per_op = elapsed_ms * 1e6 / static_cast<double>(iters);
  return {Row{benchmark, arg, iters, Value::real(ns_per_op, 0)}};
}

const std::vector<std::string> kMicroColumns = {"benchmark", "arg",
                                                "iterations", "ns/op"};

// ----------------------------------------------------------- m1-views

class IdleProgram final : public sim::FullInfoProgram {
 public:
  [[nodiscard]] bool has_output() const override { return false; }
  [[nodiscard]] std::vector<int> output() const override { return {}; }

 protected:
  void on_view(int) override {}
};

std::vector<Row> bm_profile_refinement(std::size_t n) {
  portgraph::PortGraph g = portgraph::random_connected(n, n, 7);
  return time_op("profile_refinement", "n=" + std::to_string(n), [&g] {
    views::ViewRepo repo;
    views::ViewProfile p = views::compute_profile(g, repo);
    (void)p.election_index;
  });
}

std::vector<Row> bm_view_intern() {
  views::ViewRepo repo;
  views::ViewId leaf = repo.leaf(3);
  std::vector<views::ChildRef> kids{{0, leaf}, {1, leaf}, {2, leaf}};
  return time_op("view_intern", "-", [&] { (void)repo.intern(kids); });
}

std::vector<Row> bm_view_compare_ranked() {
  // Profiles run through views::Refiner, so these views carry canonical
  // ranks: compare() is the O(1) integer fast path (DESIGN.md §8).
  portgraph::PortGraph g = portgraph::random_connected(64, 64, 3);
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo, 6);
  views::ViewId a = p.view(6, 0);
  views::ViewId b = p.view(6, 1);
  return time_op("view_compare_ranked", "depth=6",
                 [&] { (void)repo.compare(a, b); });
}

std::vector<Row> bm_view_compare_unranked() {
  // The same views built per-node (no Refiner, no ranks): compare() takes
  // the structural walk — the memoized pre-rank baseline path.
  portgraph::PortGraph g = portgraph::random_connected(64, 64, 3);
  views::ViewRepo repo;
  std::vector<views::ViewId> level =
      runner::scenarios::naive_unranked_level(g, repo, 6);
  views::ViewId a = level[0];
  views::ViewId b = level[1];
  return time_op("view_compare_unranked", "depth=6",
                 [&] { (void)repo.compare(a, b); });
}

std::vector<Row> bm_view_truncate() {
  portgraph::PortGraph g = portgraph::random_connected(64, 64, 3);
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo, 8);
  return time_op("view_truncate", "8->4",
                 [&] { (void)repo.truncate(p.view(8, 0), 4); });
}

std::vector<Row> bm_com_rounds(std::size_t n, int rounds) {
  portgraph::PortGraph g = portgraph::random_connected(n, n, 11);
  return time_op(
      "com_rounds", "n=" + std::to_string(n) + ",r=" + std::to_string(rounds),
      [&g, rounds] {
        views::ViewRepo repo;
        std::vector<std::unique_ptr<sim::NodeProgram>> programs;
        for (std::size_t v = 0; v < g.n(); ++v)
          programs.push_back(std::make_unique<IdleProgram>());
        sim::Engine engine(g, repo);
        (void)engine.run(programs, rounds);
      });
}

// The SoA gather + batched-hash kernels (DESIGN.md §11) in isolation:
// the exact per-level hot loop of Refiner::advance — child-key gather,
// per-entry mix, per-node reduction — over columns flattened from a real
// graph, with a dense synthetic key column standing in for the previous
// level's canonical ranks. Reported as memory throughput (GB/s) and node
// rate (Mnodes/s); bytes per iteration count the streams the kernels
// actually touch: per entry 4 (nbr) + 8 (premix) + 4 (key gather) +
// 4 (child write) + 8 (emix write, read back by the reduction) = 28, per
// node 8 (hash write) + 4 (offsets).
std::vector<Row> bm_gather_hash(const std::string& family,
                                const portgraph::PortGraph& g) {
  using Clock = std::chrono::steady_clock;
  std::size_t n = g.n();
  std::vector<std::uint32_t> offset(n + 1, 0);
  int uniform_degree = g.degree(0);
  for (std::size_t v = 0; v < n; ++v) {
    int degree = g.degree(static_cast<portgraph::NodeId>(v));
    if (degree != uniform_degree) uniform_degree = 0;
    offset[v + 1] = offset[v] + static_cast<std::uint32_t>(degree);
  }
  std::size_t entries = offset[n];
  std::vector<std::uint32_t> nbr(entries);
  std::vector<std::uint64_t> premix(entries);
  for (std::size_t v = 0; v < n; ++v) {
    const auto& row = g.neighbors(static_cast<portgraph::NodeId>(v));
    for (std::size_t p = 0; p < row.size(); ++p) {
      nbr[offset[v] + p] = static_cast<std::uint32_t>(row[p].neighbor);
      premix[offset[v] + p] = views::sig_hash::entry_premix(
          p, static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(row[p].rev_port)));
    }
  }
  std::vector<views::ViewId> key(n);
  for (std::size_t v = 0; v < n; ++v)
    key[v] = static_cast<views::ViewId>(v % 97);  // dense, rank-like
  std::vector<views::ViewId> child(entries);
  std::vector<std::uint64_t> emix(entries);
  std::vector<std::uint64_t> hash(n);
  auto op = [&] {
    views::sig_hash::gather_mix(nbr.data(), key.data(), premix.data(),
                                child.data(), emix.data(), entries);
    views::sig_hash::reduce_nodes(offset.data(), 0, n, emix.data(),
                                  /*depth=*/3, uniform_degree, hash.data());
  };
  op();  // warm-up
  std::int64_t iters = 0;
  Clock::time_point start = Clock::now();
  double elapsed_ms = 0;
  while (elapsed_ms < kBudgetMs && iters < kMaxIters) {
    op();
    ++iters;
    elapsed_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
  }
  double seconds = elapsed_ms / 1e3;
  double bytes = static_cast<double>(iters) *
                 (28.0 * static_cast<double>(entries) +
                  12.0 * static_cast<double>(n));
  double gb_per_sec = bytes / seconds / 1e9;
  double mnodes_per_sec =
      static_cast<double>(iters) * static_cast<double>(n) / seconds / 1e6;
  return {Row{"gather_hash", family + "/n=" + std::to_string(n), iters,
              Value::real(gb_per_sec, 2), Value::real(mnodes_per_sec, 1)}};
}

// BitString bulk word ops (coding/bitstring.hpp) vs the per-bit loop they
// replaced on the snapshot-writer path (DESIGN.md §13): appending and
// reading 1 MiB of payload at a deliberately unaligned bit offset, so the
// bulk path exercises its cross-word shifting, not just memcpy.
std::vector<Row> bm_bitstring_append(bool bulk) {
  constexpr std::size_t kWords = (1u << 20) / 8;
  std::vector<std::uint64_t> payload(kWords);
  for (std::size_t i = 0; i < kWords; ++i)
    payload[i] = 0x9e3779b97f4a7c15ull * (i + 1);
  return time_op(bulk ? "bitstring_append_bulk" : "bitstring_append_bits",
                 "1MiB,off=17", [&] {
                   coding::BitString bits;
                   bits.reserve(17 + 64 * kWords);
                   for (int i = 0; i < 17; ++i) bits.push_back(true);
                   if (bulk) {
                     for (std::uint64_t w : payload) bits.append_word(w, 64);
                   } else {
                     for (std::uint64_t w : payload)
                       for (unsigned b = 0; b < 64; ++b)
                         bits.push_back(((w >> b) & 1u) != 0);
                   }
                   (void)bits.size();
                 });
}

std::vector<Row> bm_bitstring_read(bool bulk) {
  constexpr std::size_t kWords = (1u << 20) / 8;
  coding::BitString bits;
  bits.reserve(17 + 64 * kWords);
  for (int i = 0; i < 17; ++i) bits.push_back(true);
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < kWords; ++i) {
    std::uint64_t w = 0x9e3779b97f4a7c15ull * (i + 1);
    bits.append_word(w, 64);
    expected ^= w;
  }
  return time_op(bulk ? "bitstring_read_bulk" : "bitstring_read_bits",
                 "1MiB,off=17", [&] {
                   coding::BitReader reader(bits);
                   for (int i = 0; i < 17; ++i) (void)reader.read_bit();
                   std::uint64_t sink = 0;
                   if (bulk) {
                     for (std::size_t i = 0; i < kWords; ++i)
                       sink ^= reader.read_word(64);
                   } else {
                     for (std::size_t i = 0; i < 64 * kWords; ++i)
                       sink ^= (reader.read_bit() ? 1ull : 0ull) << (i & 63);
                   }
                   ANOLE_CHECK(sink == expected);  // keeps the loop alive too
                 });
}

std::vector<Row> bm_serialized_size() {
  portgraph::PortGraph g = portgraph::random_connected(128, 128, 5);
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo, 8);
  return time_op("serialized_size", "depth=8",
                 [&] { (void)repo.serialized_size_bits(p.view(8, 0)); });
}

runner::Scenario make_m1_views() {
  runner::Scenario s;
  s.name = "m1-views";
  s.summary = "microbenchmarks of the view substrate (refinement, interning, "
              "COM rounds)";
  s.reference = "view substrate cost model";
  s.deterministic = false;
  s.serial = true;  // concurrent cells would contend with the timed loops
  s.tables.push_back(runner::TableSpec{
      "M1a",
      "view substrate operations: refinement throughput, interning, "
      "canonical comparison, truncation, full COM simulation rounds",
      kMicroColumns});
  s.tables.push_back(runner::TableSpec{
      "M1c",
      "SoA gather + batched-hash kernels (DESIGN.md §11) in isolation: "
      "sig_hash::gather_mix + reduce_nodes over columns flattened from a "
      "real graph. GB/s counts the streams the kernels touch (28 B/entry "
      "+ 12 B/node — see the cell comment); Mnodes/s is level-advance "
      "node throughput of the hash phase alone.",
      {"benchmark", "arg", "iterations", "GB/s", "Mnodes/s"}});
  for (std::size_t n : {32, 128, 512})
    s.add_cell("profile/n=" + std::to_string(n), 0,
               [n] { return bm_profile_refinement(n); });
  s.add_cell("intern", 0, [] { return bm_view_intern(); });
  s.add_cell("compare-ranked", 0, [] { return bm_view_compare_ranked(); });
  s.add_cell("compare-unranked", 0,
             [] { return bm_view_compare_unranked(); });
  s.add_cell("truncate", 0, [] { return bm_view_truncate(); });
  s.add_cell("com/64x8", 0, [] { return bm_com_rounds(64, 8); });
  s.add_cell("com/256x8", 0, [] { return bm_com_rounds(256, 8); });
  s.add_cell("com/256x16", 0, [] { return bm_com_rounds(256, 16); });
  s.add_cell("serialized_size", 0, [] { return bm_serialized_size(); });
  s.add_cell("bitstring-append-bits", 0,
             [] { return bm_bitstring_append(false); });
  s.add_cell("bitstring-append-bulk", 0,
             [] { return bm_bitstring_append(true); });
  s.add_cell("bitstring-read-bits", 0,
             [] { return bm_bitstring_read(false); });
  s.add_cell("bitstring-read-bulk", 0,
             [] { return bm_bitstring_read(true); });
  s.add_cell("gather_hash/ring", 1, [] {
    return bm_gather_hash("ring", portgraph::ring(1 << 18));
  });
  s.add_cell("gather_hash/torus", 1, [] {
    return bm_gather_hash("torus", portgraph::torus(256, 256));
  });
  s.add_cell("gather_hash/random", 1, [] {
    return bm_gather_hash("random",
                          portgraph::random_connected(65536, 131072, 9));
  });
  return s;
}

// ----------------------------------------------------------- m1-advice

std::vector<Row> bm_compute_advice(std::size_t n) {
  portgraph::PortGraph g = portgraph::random_connected(n, n, 13);
  return time_op("compute_advice", "n=" + std::to_string(n), [&g] {
    views::ViewRepo repo;
    views::ViewProfile p = views::compute_profile(g, repo, 1);
    advice::MinTimeAdvice adv = advice::compute_advice(g, repo, p);
    (void)adv.phi;
  });
}

std::vector<Row> bm_compute_advice_deep(int phi) {
  families::Necklace nk = families::necklace_member(5, phi, 1);
  return time_op("compute_advice_deep", "phi=" + std::to_string(phi), [&nk] {
    views::ViewRepo repo;
    views::ViewProfile p = views::compute_profile(nk.graph, repo, 1);
    advice::MinTimeAdvice adv = advice::compute_advice(nk.graph, repo, p);
    (void)adv.phi;
  });
}

std::vector<Row> bm_retrieve_label() {
  portgraph::PortGraph g = portgraph::random_connected(128, 128, 17);
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo, 1);
  advice::MinTimeAdvice adv = advice::compute_advice(g, repo, p);
  int phi = static_cast<int>(adv.phi);
  return time_op("retrieve_label", "n=128", [&] {
    // Fresh labeler each iteration — as every node does.
    advice::Labeler labeler(repo, adv.e1, adv.e2);
    (void)labeler.retrieve_label(p.view(phi, 0));
  });
}

std::vector<Row> bm_advice_encode() {
  portgraph::PortGraph g = portgraph::random_connected(128, 128, 19);
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo, 1);
  advice::MinTimeAdvice adv = advice::compute_advice(g, repo, p);
  return time_op("advice_encode", "n=128",
                 [&] { (void)adv.to_bits().size(); });
}

std::vector<Row> bm_advice_decode() {
  portgraph::PortGraph g = portgraph::random_connected(128, 128, 19);
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo, 1);
  coding::BitString bits = advice::compute_advice(g, repo, p).to_bits();
  return time_op("advice_decode", "n=128", [&bits] {
    advice::MinTimeAdvice back = advice::MinTimeAdvice::from_bits(bits);
    (void)back.phi;
  });
}

std::vector<Row> bm_concat_codec() {
  std::vector<coding::BitString> parts;
  for (std::uint64_t i = 0; i < 256; ++i) parts.push_back(coding::bin(i * 37));
  return time_op("concat_codec", "256 parts", [&parts] {
    coding::BitString enc = coding::concat(parts);
    (void)coding::decode(enc).size();
  });
}

runner::Scenario make_m1_advice() {
  runner::Scenario s;
  s.name = "m1-advice";
  s.summary = "microbenchmarks of the advice machinery (ComputeAdvice, "
              "labels, codec)";
  s.reference = "advice machinery cost model";
  s.deterministic = false;
  s.serial = true;  // concurrent cells would contend with the timed loops
  s.tables.push_back(runner::TableSpec{
      "M1b",
      "advice machinery: ComputeAdvice end to end, RetrieveLabel on node "
      "views, advice encode/decode, codec primitives",
      kMicroColumns});
  for (std::size_t n : {32, 128, 512})
    s.add_cell("advice/n=" + std::to_string(n), 0,
               [n] { return bm_compute_advice(n); });
  for (int phi : {2, 4, 8})
    s.add_cell("advice-deep/phi=" + std::to_string(phi), 0,
               [phi] { return bm_compute_advice_deep(phi); });
  s.add_cell("retrieve_label", 0, [] { return bm_retrieve_label(); });
  s.add_cell("encode", 0, [] { return bm_advice_encode(); });
  s.add_cell("decode", 0, [] { return bm_advice_decode(); });
  s.add_cell("concat", 0, [] { return bm_concat_codec(); });
  return s;
}

}  // namespace

ANOLE_REGISTER_SCENARIO("m1-views", make_m1_views);
ANOLE_REGISTER_SCENARIO("m1-advice", make_m1_advice);
