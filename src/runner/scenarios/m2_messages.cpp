// M2 — message-size accounting for the full-information protocol.
//
// The LOCAL model allows arbitrary message sizes, and COM sends "the whole
// current view" every round. A literal view *tree* grows like Delta^r; our
// hash-consed DAG representation (DESIGN.md) keeps the same information in
// O(n * r) records. One cell per graph measures, per round, the serialized
// DAG message size against the flat tree encoding a naive implementation
// would ship — quantifying why the substrate is feasible at all.

#include <functional>

#include "advice/naive.hpp"
#include "portgraph/builders.hpp"
#include "runner/scenario.hpp"
#include "views/profile.hpp"

namespace {

using namespace anole;
using runner::Row;
using runner::Value;

std::vector<Row> m2_cell(const std::string& name,
                         const portgraph::PortGraph& g) {
  constexpr std::uint64_t kCap = UINT64_C(1) << 62;
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo, 12);
  std::vector<Row> rows;
  for (int r : {1, 2, 4, 8, 12}) {
    views::ViewId view = p.view(r, 0);
    std::size_t records = repo.dag_records(view);
    std::size_t dag_bits = repo.serialized_size_bits(view);
    std::uint64_t tree_bits = advice::naive_tree_code_bits(repo, view);
    rows.push_back(
        Row{name, r, records, dag_bits,
            tree_bits >= kCap ? Value(">= 2^62") : Value(tree_bits),
            tree_bits >= kCap
                ? Value("astronomical")
                : Value::real(static_cast<double>(tree_bits) / dag_bits, 1)});
  }
  return rows;
}

runner::Scenario make_m2() {
  runner::Scenario s;
  s.name = "m2";
  s.summary = "COM message sizes: hash-consed DAG vs literal view tree";
  s.reference = "Model / DESIGN.md (view substrate)";
  s.tables.push_back(runner::TableSpec{
      "M2",
      "COM message sizes per round: the hash-consed DAG stays polynomial "
      "(<= n records per level) while the literal view tree grows like "
      "Delta^r. Equal information content, verified by the sim tests (B^r "
      "reproduced exactly).",
      {"graph", "round r", "DAG records", "DAG bits", "flat tree bits",
       "tree/DAG"}});

  auto add = [&s](std::string label, std::string name,
                  std::function<portgraph::PortGraph()> build) {
    s.add_cell(std::move(label), 0,
               [name = std::move(name), build = std::move(build)] {
                 return m2_cell(name, build());
               });
  };
  add("random/32", "random(32, deg~4)",
      [] { return portgraph::random_connected(32, 32, 3); });
  add("random/64", "random(64, deg~8)",
      [] { return portgraph::random_connected(64, 192, 4); });
  add("grid/6x6", "grid(6x6)", [] { return portgraph::grid(6, 6); });
  // Larger graphs, reachable now that size accounting is incremental
  // (DESIGN.md §1): the old per-query DAG traversal made these cells the
  // bottleneck of every metered sweep.
  add("random/128", "random(128, deg~6)",
      [] { return portgraph::random_connected(128, 256, 6); });
  add("random/256", "random(256, deg~6)",
      [] { return portgraph::random_connected(256, 512, 7); });
  return s;
}

}  // namespace

ANOLE_REGISTER_SCENARIO("m2", make_m2);
