// Q1 — hardened election-index service under load (DESIGN.md §14).
//
// Drives service::Service through four robustness situations and audits
// every served answer against an offline exact recompute — the "zero
// wrong answers" contract: degradation may change HOW a query is
// answered (memo, snapshot anchor, fixed-point shortcut), never WHAT the
// answer is.
//
//   mix       a Zipf-popularity query stream (elect / min-time / compare
//             / advice) over a small graph corpus, with every 16th query
//             an injected slow one (min election time of a long path,
//             20 ms deadline) that must cancel mid-sweep. Latency
//             quantiles and throughput ride the --bench-out perf
//             side-channel (service_p99_ms etc. — guarded in CI by
//             bench_check --match service); the structured rows carry
//             only the deterministic audit counters.
//   saturate  offered load = 3x the admission bound on a deliberately
//             slow graph with a 50 ms deadline: the burst must shed
//             deterministically with positive Retry-After hints while
//             the backlog stays at the bound (no unbounded queueing),
//             and a shed client retrying with exponential backoff must
//             eventually be admitted.
//   snap      warm start from a saved snapshot (min-time / compare /
//             advice all served from the anchor rung, no profile ever
//             computed) vs a corrupted and a missing snapshot file, both
//             of which must downgrade to a logged cold start — answers
//             byte-equal to the warm ones.
//   faults    the FaultInjector crossover: a rewire-only plan mutates
//             the served graph mid-stream; each batch's dirty rows go
//             through Service::repair_graph (incremental
//             views::repair_profile), and every served election answer
//             is checked with election::verify_safety_under_faults plus
//             a from-scratch offline recompute.
//
// Rows are deterministic (seeded corpus, seeded query stream, statuses
// and latencies kept out of the tables), so the scenario cmp-verifies
// across --threads like every paper table; it is serial because the
// cells time themselves for the perf channel.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "election/harness.hpp"
#include "election/verify.hpp"
#include "portgraph/builders.hpp"
#include "runner/runner.hpp"
#include "runner/scenario.hpp"
#include "runner/scenarios/common.hpp"
#include "service/service.hpp"
#include "sim/faults.hpp"
#include "util/prng.hpp"
#include "views/profile.hpp"
#include "views/snapshot.hpp"
#include "views/view_repo.hpp"

namespace {

using namespace anole;
using runner::Row;
using service::Answer;
using service::AnswerRung;
using service::AnswerStatus;
using service::Query;
using service::QueryKind;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Slack on top of a query's deadline before a served answer counts as a
/// violation. Generous on purpose: the non-cancellable stretches of the
/// ladder (one refinement level, advice construction on the small corpus
/// graphs, a memo/anchor lookup) are sub-millisecond, so a breach of
/// this slack means cancellation is broken, not that the machine is slow.
constexpr double kDeadlineSlackMs = 500.0;

/// Exact offline recompute of every answer kind, with per-graph caching.
/// Deliberately shares nothing with the service — fresh repo, fresh
/// profiles — so agreement really is "degraded equals exact", not
/// self-consistency.
class OfflineAudit {
 public:
  explicit OfflineAudit(const std::vector<portgraph::PortGraph>* graphs)
      : graphs_(graphs) {}

  /// True when `a` agrees with the exact recompute (shed/timeout answers
  /// carry no content and pass vacuously; failures never pass).
  bool check(const Query& q, const Answer& a) {
    if (a.status == AnswerStatus::kShed || a.status == AnswerStatus::kTimeout)
      return true;
    if (a.status == AnswerStatus::kFailed) return false;
    switch (q.kind) {
      case QueryKind::kMinTime: {
        const views::ViewProfile& p = profile(q.graph, 0);
        return a.feasible == p.feasible &&
               (!p.feasible || a.phi == p.election_index);
      }
      case QueryKind::kCompare: {
        const views::ViewProfile& p = profile(q.graph, 0);
        const int t = std::min(q.depth, p.computed_depth());
        return a.equal == (p.view(t, q.u) == p.view(t, q.v));
      }
      case QueryKind::kAdvice: {
        const views::ViewProfile& p = profile(q.graph, q.depth);
        return a.view_bits == repo_.serialized_size_bits(p.view(q.depth, q.u));
      }
      case QueryKind::kElect: {
        const ElectRef& e = elect(q.graph);
        if (!e.feasible) return !a.feasible;
        const bool within =
            q.budget_bits == 0 || e.advice_bits <= q.budget_bits;
        return a.feasible && a.leader == e.leader && a.rounds == e.rounds &&
               a.advice_bits == e.advice_bits && a.within_budget == within;
      }
    }
    return false;
  }

 private:
  struct ElectRef {
    bool feasible = false;
    portgraph::NodeId leader = -1;
    int rounds = -1;
    std::size_t advice_bits = 0;
  };

  const views::ViewProfile& profile(std::size_t idx, int depth) {
    auto it = profiles_.find(idx);
    if (it == profiles_.end()) {
      it = profiles_
               .emplace(idx, views::compute_profile((*graphs_)[idx], repo_,
                                                    /*min_depth=*/1))
               .first;
    }
    if (depth > it->second.computed_depth()) {
      views::extend_profile((*graphs_)[idx], repo_, it->second, depth);
    }
    return it->second;
  }

  const ElectRef& elect(std::size_t idx) {
    auto it = elects_.find(idx);
    if (it != elects_.end()) return it->second;
    const views::ViewProfile& p = profile(idx, 0);
    ElectRef ref;
    ref.feasible = p.feasible;
    if (p.feasible) {
      election::ElectionContext ctx((*graphs_)[idx], repo_, p);
      election::ElectionRun run = election::run_min_time(ctx);
      ref.leader = run.verdict.leader;
      ref.rounds = run.metrics.rounds;
      ref.advice_bits = run.advice_bits;
    }
    return elects_.emplace(idx, ref).first->second;
  }

  const std::vector<portgraph::PortGraph>* graphs_;
  views::ViewRepo repo_;
  std::map<std::size_t, views::ViewProfile> profiles_;
  std::map<std::size_t, ElectRef> elects_;
};

Row check_row(const char* cell, const char* check, std::int64_t value,
              bool ok) {
  return Row{cell, check, value, ok ? "ok" : "FAIL"};
}

// ---------------------------------------------------------------------------
// mix

std::vector<Row> mix_cell() {
  std::vector<portgraph::PortGraph> graphs;
  graphs.push_back(portgraph::random_connected(64, 96, 3));  // most popular
  graphs.push_back(portgraph::lollipop(10, 6));
  graphs.push_back(portgraph::wheel(12));       // infeasible (rim symmetry)
  graphs.push_back(portgraph::binary_tree(15));
  graphs.push_back(portgraph::ring(48));        // infeasible (transitive)
  graphs.push_back(portgraph::path(2048));      // the injected slow target

  service::ServiceOptions opts;
  opts.max_queue = 64;
  opts.workers = 2;
  service::Service svc(std::move(opts));
  for (const portgraph::PortGraph& g : graphs) svc.add_graph(g);

  // Seeded Zipf popularity over the five fast graphs (weight 1/(r+1),
  // scaled to integers) and a fixed kind distribution; the sequence of
  // queries is bit-reproducible. Every 16th query is the slow one: the
  // min election time of the long path needs ~1024 refinement levels,
  // far past its 20 ms deadline, so it must cancel mid-sweep (partial
  // interns accumulate in the shared repo across attempts).
  constexpr std::size_t kQueries = 192;
  constexpr std::uint64_t kZipf[5] = {60, 30, 20, 15, 12};  // sums to 137
  util::SplitMix64 rng(0x51);
  std::vector<std::pair<Query, std::shared_ptr<service::PendingQuery>>>
      issued;
  issued.reserve(kQueries);

  Clock::time_point phase_start = Clock::now();
  for (std::size_t i = 0; i < kQueries; ++i) {
    Query q;
    if (i % 16 == 15) {
      q.kind = QueryKind::kMinTime;
      q.graph = 5;
      q.deadline_ms = 20.0;
    } else {
      std::uint64_t r = rng.below(137);
      std::size_t gi = 0;
      for (std::uint64_t acc = 0; gi < 5; ++gi) {
        acc += kZipf[gi];
        if (r < acc) break;
      }
      q.graph = gi;
      const std::uint64_t k = rng.below(10);
      q.kind = k < 2   ? QueryKind::kElect
               : k < 5 ? QueryKind::kMinTime
               : k < 8 ? QueryKind::kCompare
                       : QueryKind::kAdvice;
      const std::size_t n = graphs[gi].n();
      q.u = static_cast<portgraph::NodeId>(rng.below(n));
      q.v = static_cast<portgraph::NodeId>(rng.below(n));
      q.depth = static_cast<int>(rng.below(7));
      q.budget_bits = q.kind == QueryKind::kElect && rng.chance(1, 2)
                          ? 1 + rng.below(std::uint64_t{1} << 16)
                          : 0;
      q.deadline_ms = 250.0;
    }
    issued.emplace_back(q, svc.submit(q));
    // Waves of 32 against a bound of 64: admission never sheds here, so
    // the row-level counters stay deterministic; shedding is the
    // saturate cell's job.
    if (issued.size() % 32 == 0) svc.drain();
  }
  svc.drain();
  const double phase_ms = ms_since(phase_start);

  // Pressed replay: prove the degradation ladder serves real answers,
  // deterministically. Warm every rung first (no-deadline queries so the
  // profiles and the elect memo certainly exist), park both workers on
  // slow sweeps, then submit one query per warm graph and cancel it
  // before a worker can dequeue it — each must come back kDegraded from
  // a memo/profile rung, and the audit below holds it to the exact
  // answer. One query per graph, so the try_lock rungs never contend.
  for (std::size_t gi = 0; gi < 5; ++gi)
    issued.emplace_back(Query{QueryKind::kMinTime, gi},
                        svc.submit(Query{QueryKind::kMinTime, gi}));
  issued.emplace_back(Query{QueryKind::kElect, 0},
                      svc.submit(Query{QueryKind::kElect, 0}));
  svc.drain();
  const Query slow{QueryKind::kMinTime, 5, 0, 0, 0, 0, 20.0};
  issued.emplace_back(slow, svc.submit(slow));
  issued.emplace_back(slow, svc.submit(slow));
  const Query replays[5] = {
      Query{QueryKind::kElect, 0},
      Query{QueryKind::kMinTime, 1},
      Query{QueryKind::kCompare, 2, 0, 1, 1},
      Query{QueryKind::kAdvice, 3, 2, 0, 1},
      Query{QueryKind::kMinTime, 4},
  };
  std::vector<std::shared_ptr<service::PendingQuery>> pressed;
  for (const Query& q : replays) {
    pressed.push_back(svc.submit(q));
    pressed.back()->cancel();
    issued.emplace_back(q, pressed.back());
  }
  svc.drain();
  std::int64_t replay_degraded = 0;
  for (const auto& h : pressed)
    if (h->answer.status == AnswerStatus::kDegraded) ++replay_degraded;

  OfflineAudit audit(&graphs);
  std::vector<double> latency;
  latency.reserve(issued.size());
  std::int64_t wrong = 0, violations = 0, failed = 0, unanswered = 0;
  for (const auto& [q, handle] : issued) {
    const Answer& a = handle->answer;
    if (!handle->done) {
      ++unanswered;
      continue;
    }
    latency.push_back(a.serve_ms);
    if (a.status == AnswerStatus::kFailed) ++failed;
    if (!audit.check(q, a)) ++wrong;
    const bool served = a.status == AnswerStatus::kExact ||
                        a.status == AnswerStatus::kDegraded;
    if (served && q.deadline_ms > 0.0 &&
        a.serve_ms > q.deadline_ms + kDeadlineSlackMs) {
      ++violations;
    }
  }
  std::sort(latency.begin(), latency.end());
  auto quantile = [&latency](std::size_t pct) {
    return latency.empty() ? 0.0
                           : latency[(latency.size() - 1) * pct / 100];
  };
  // Perf side-channel only — real figures, not deterministic. The
  // "service_" records are the CI-guarded ones (bench_check --match
  // service): both are deadline-dominated and therefore stable across
  // machines, unlike the compute-dominated p50.
  runner::report_perf("service_p99_ms", quantile(99));
  runner::report_perf("service_ms_per_query",
                      phase_ms / static_cast<double>(kQueries));
  runner::report_perf("p50_ms", quantile(50));
  runner::report_perf("qps", phase_ms > 0.0
                                 ? static_cast<double>(kQueries) * 1000.0 /
                                       phase_ms
                                 : 0.0);
  const service::ClassCounters totals = svc.stats().totals();
  runner::report_perf("degraded_count", static_cast<double>(totals.degraded));
  runner::report_perf("timeout_count", static_cast<double>(totals.timeout));

  return {
      check_row("mix", "queries", static_cast<std::int64_t>(kQueries), true),
      check_row("mix", "unanswered", unanswered, unanswered == 0),
      check_row("mix", "failed", failed, failed == 0),
      check_row("mix", "shed", static_cast<std::int64_t>(totals.shed),
                totals.shed == 0),
      check_row("mix", "pressed_replay_degraded", replay_degraded,
                replay_degraded == 5),
      check_row("mix", "wrong_answers", wrong, wrong == 0),
      check_row("mix", "deadline_violations", violations, violations == 0),
  };
}

// ---------------------------------------------------------------------------
// saturate

std::vector<Row> saturate_cell() {
  std::vector<portgraph::PortGraph> graphs;
  graphs.push_back(portgraph::path(4096));  // >> 50 ms to stabilize

  service::ServiceOptions opts;
  opts.max_queue = 8;
  opts.default_deadline_ms = 50.0;
  opts.workers = 2;
  service::Service svc(std::move(opts));
  const std::size_t idx = svc.add_graph(graphs[0]);

  const Query slow{QueryKind::kMinTime, idx};
  // Prefill exactly to the admission bound. Every prefill query needs
  // far longer than its 50 ms deadline, so none can finish before the
  // burst below is submitted — the backlog is pinned at max_queue and
  // the shed count is deterministic, not a race.
  std::vector<std::shared_ptr<service::PendingQuery>> prefill;
  for (std::size_t i = 0; i < 8; ++i) prefill.push_back(svc.submit(slow));

  std::vector<std::shared_ptr<service::PendingQuery>> burst;
  std::int64_t shed = 0, hints_positive = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    burst.push_back(svc.submit(slow));
    const Answer& a = burst.back()->answer;
    if (burst.back()->done && a.status == AnswerStatus::kShed) {
      ++shed;
      if (a.retry_after_ms > 0.0) ++hints_positive;
    }
  }

  // The driver-side exponential-backoff loop a well-behaved client runs
  // on kShed: sleep (bounded by the Retry-After hint), double, retry.
  // It starts while the prefill still saturates the service, so early
  // attempts shed; once the prefill drains it must be admitted.
  double backoff_ms = 5.0;
  int attempts = 0;
  Answer retried;
  for (; attempts < 30; ++attempts) {
    retried = svc.ask(slow);
    if (retried.status != AnswerStatus::kShed) break;
    const double hint = std::min(retried.retry_after_ms, 200.0);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        std::min(std::max(backoff_ms, hint), 200.0)));
    backoff_ms *= 2.0;
  }
  svc.drain();

  OfflineAudit audit(&graphs);
  std::int64_t wrong = 0, violations = 0;
  std::vector<double> latency;
  auto account = [&](const Query& q, const Answer& a) {
    if (!audit.check(q, a)) ++wrong;
    const bool served = a.status == AnswerStatus::kExact ||
                        a.status == AnswerStatus::kDegraded;
    if (a.status != AnswerStatus::kShed) latency.push_back(a.serve_ms);
    if (served && a.serve_ms > 50.0 + kDeadlineSlackMs) ++violations;
  };
  for (const auto& h : prefill) account(slow, h->answer);
  for (const auto& h : burst) account(slow, h->answer);
  account(slow, retried);

  std::sort(latency.begin(), latency.end());
  runner::report_perf(
      "service_p99_ms",
      latency.empty() ? 0.0 : latency[(latency.size() - 1) * 99 / 100]);
  runner::report_perf("retry_attempts", static_cast<double>(attempts));

  const service::ServiceStats stats = svc.stats();
  return {
      check_row("saturate", "offered", 24 + attempts + 1, true),
      check_row("saturate", "burst_shed", shed, shed == 16),
      check_row("saturate", "retry_hints_positive", hints_positive,
                hints_positive == 16),
      check_row("saturate", "max_in_flight",
                static_cast<std::int64_t>(stats.max_in_flight),
                stats.max_in_flight <= svc.queue_bound()),
      check_row("saturate", "backoff_retry_admitted", 1,
                retried.status != AnswerStatus::kShed),
      check_row("saturate", "wrong_answers", wrong, wrong == 0),
      check_row("saturate", "deadline_violations", violations,
                violations == 0),
  };
}

// ---------------------------------------------------------------------------
// snap

std::vector<Row> snap_cell() {
  std::vector<portgraph::PortGraph> graphs;
  graphs.push_back(portgraph::random_connected(96, 128, 11));
  const portgraph::PortGraph& g = graphs[0];

  // Prep: a stabilized keep_history=false sweep, anchored and saved.
  std::string good = runner::scenarios::snapshot_out_prefix() + "-q1.snap";
  {
    views::ViewRepo prep;
    views::ViewProfile p = views::compute_profile(
        g, prep,
        views::ProfileOptions{.min_depth = 1, .keep_history = false});
    views::SweepAnchor anchor =
        views::make_anchor(g, p.last_level(), p.class_counts);
    views::save_snapshot(good, prep,
                         std::span<const views::SweepAnchor>(&anchor, 1));
  }

  OfflineAudit audit(&graphs);
  auto warm_service = [&](const std::string& path, std::size_t* downgrades,
                          bool* warm_flag) {
    service::ServiceOptions opts;
    opts.snapshot_path = path;
    opts.workers = 1;
    auto svc = std::make_unique<service::Service>(std::move(opts));
    *downgrades = svc->stats().cold_downgrades;
    *warm_flag = svc->warm();
    svc->add_graph(g);
    return svc;
  };

  const Query q_min{QueryKind::kMinTime, 0};
  Query q_cmp;
  q_cmp.kind = QueryKind::kCompare;
  q_cmp.u = 0;
  q_cmp.v = 1;
  Query q_adv;
  q_adv.kind = QueryKind::kAdvice;
  q_adv.u = 2;
  q_adv.depth = 1;

  std::size_t down_good = 0, down_bad = 0, down_missing = 0;
  bool warm_good = false, warm_bad = false, warm_missing = false;

  auto warm = warm_service(good, &down_good, &warm_good);
  Answer w_min = warm->ask(q_min);
  // Compare at the anchor's own depth: the partition there is conclusive
  // for both verdicts (see service.cpp anchor_compare).
  q_cmp.depth = w_min.feasible ? w_min.phi : 1;
  Answer w_cmp = warm->ask(q_cmp);
  Answer w_adv = warm->ask(q_adv);
  const bool anchor_rungs = w_min.rung == AnswerRung::kAnchor &&
                            w_cmp.rung == AnswerRung::kAnchor &&
                            w_adv.rung == AnswerRung::kAnchor;
  const bool warm_ok = audit.check(q_min, w_min) && audit.check(q_cmp, w_cmp) &&
                       audit.check(q_adv, w_adv);

  // Corrupt a body byte of a copy: LoadMode::Copy verifies the full body
  // checksum, so construction must downgrade to cold — and then answer
  // identically from a fresh computation.
  std::string bad = runner::scenarios::snapshot_out_prefix() + "-q1-bad.snap";
  {
    std::ifstream in(good, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes[bytes.size() - 9] ^= 0x40;
    std::ofstream out(bad, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto cold = warm_service(bad, &down_bad, &warm_bad);
  Answer c_min = cold->ask(q_min);
  Answer c_cmp = cold->ask(q_cmp);
  Answer c_adv = cold->ask(q_adv);
  const bool cold_ok = audit.check(q_min, c_min) && audit.check(q_cmp, c_cmp) &&
                       audit.check(q_adv, c_adv);
  const bool equal_answers =
      c_min.feasible == w_min.feasible && c_min.phi == w_min.phi &&
      c_cmp.equal == w_cmp.equal && c_adv.view_bits == w_adv.view_bits;

  auto missing = warm_service(
      runner::scenarios::snapshot_out_prefix() + "-q1-missing.snap",
      &down_missing, &warm_missing);
  Answer m_min = missing->ask(q_min);

  return {
      check_row("snap", "warm_start", warm_good ? 1 : 0,
                warm_good && down_good == 0),
      check_row("snap", "anchor_rungs", anchor_rungs ? 3 : 0, anchor_rungs),
      check_row("snap", "warm_answers_exact", warm_ok ? 3 : 0, warm_ok),
      check_row("snap", "corrupt_downgrade",
                static_cast<std::int64_t>(down_bad), !warm_bad && down_bad == 1),
      check_row("snap", "cold_answers_exact", cold_ok ? 3 : 0, cold_ok),
      check_row("snap", "warm_cold_equal", equal_answers ? 1 : 0,
                equal_answers),
      check_row("snap", "missing_downgrade",
                static_cast<std::int64_t>(down_missing),
                !warm_missing && down_missing == 1 &&
                    m_min.feasible == w_min.feasible && m_min.phi == w_min.phi),
  };
}

// ---------------------------------------------------------------------------
// faults

std::vector<Row> faults_cell() {
  portgraph::PortGraph base = portgraph::random_connected(80, 120, 17);
  sim::FaultPlan plan =
      sim::FaultPlan::random(base, /*horizon=*/64, /*crashes=*/0,
                             /*rewires=*/6, /*seed=*/23);
  sim::FaultInjector injector(base, std::move(plan));

  service::ServiceOptions opts;
  opts.workers = 1;  // no deadlines: every answer takes the exact ladder
  service::Service svc(std::move(opts));
  const std::size_t idx = svc.add_graph(injector.graph());

  std::vector<Row> rows;
  auto serve_and_verify = [&](int round, int events, std::size_t dirty,
                              const char* repair) {
    Answer mt = svc.ask(Query{QueryKind::kMinTime, idx});
    Answer el = svc.ask(Query{QueryKind::kElect, idx});
    std::string safety = "vacuous";
    bool ok = el.status == AnswerStatus::kExact &&
              mt.status == AnswerStatus::kExact;
    if (el.feasible) {
      // The §12 safety contract on the answer the service actually
      // served: outputs + decision rounds of its election run, checked
      // against the CURRENT (mutated) graph.
      election::SafetyResult s = election::verify_safety_under_faults(
          injector.graph(), el.metrics->outputs, el.metrics->decision_round);
      safety = s.ok ? "ok" : "FAIL";
      ok = ok && s.ok && s.leader == el.leader;
    }
    // From-scratch offline recompute on a copy of the mutated graph:
    // the served answers must match exactly, repaired profile or not.
    portgraph::PortGraph current = injector.graph();
    views::ViewRepo fresh;
    views::ViewProfile p = views::compute_profile(current, fresh, 1);
    bool match = mt.feasible == p.feasible &&
                 (!p.feasible || mt.phi == p.election_index);
    if (p.feasible) {
      election::ElectionContext ctx(current, fresh, p);
      election::ElectionRun run = election::run_min_time(ctx);
      match = match && el.feasible && el.leader == run.verdict.leader &&
              el.rounds == run.metrics.rounds &&
              el.advice_bits == run.advice_bits;
    } else {
      match = match && !el.feasible;
    }
    rows.push_back(Row{round, events, static_cast<std::int64_t>(dirty),
                       repair, p.feasible ? "yes" : "no", mt.phi,
                       static_cast<std::int64_t>(el.leader), safety,
                       ok && match ? "ok" : "MISMATCH"});
  };

  serve_and_verify(0, 0, 0, "-");
  for (int round : {16, 32, 48, 64}) {
    sim::FaultInjector::Applied applied = injector.apply_through(round);
    const char* repair = "-";
    if (!applied.dirty.empty()) {
      views::RepairStats rs = svc.repair_graph(idx, applied.dirty);
      repair = rs.incremental ? "incremental" : "recompute";
    }
    serve_and_verify(round, applied.events, applied.dirty.size(), repair);
  }
  return rows;
}

// ---------------------------------------------------------------------------

runner::Scenario make_q1() {
  runner::Scenario s;
  s.name = "q1";
  s.summary =
      "hardened election-index service: deadline cancellation, admission "
      "control/shedding, degradation ladder, snapshot downgrade, fault "
      "crossover";
  s.reference = "DESIGN.md §14 (hardened election-index service)";
  s.deterministic = true;
  // Cells time themselves for the --bench-out perf records (latency
  // quantiles, throughput); concurrent cells would distort them.
  s.serial = true;
  s.tables.push_back(runner::TableSpec{
      "Q1a",
      "Service robustness checks. Every row is a deterministic audit "
      "counter with an ok/FAIL verdict: `wrong_answers` counts served "
      "answers (exact or degraded) that disagreed with a from-scratch "
      "offline recompute — the zero-wrong-answers contract; "
      "`deadline_violations` counts served answers later than deadline + "
      "500 ms slack; the saturate rows pin deterministic shedding at the "
      "admission bound (burst of 16 over a backlog of 8 sheds all 16, "
      "with positive Retry-After hints, backlog never above the bound) "
      "and that an exponential-backoff retry is eventually admitted. "
      "Latency quantiles/throughput (service_p99_ms, service_ms_per_query "
      "~ 1000/QPS, p50_ms, qps) ride --bench-out only.",
      {"cell", "check", "value", "ok"}});
  s.tables.push_back(runner::TableSpec{
      "Q1b",
      "FaultInjector crossover: a rewire-only plan mutates the served "
      "graph mid-stream; each batch's dirty rows go through "
      "Service::repair_graph (incremental views::repair_profile when the "
      "cached profile survives). `safety` is "
      "election::verify_safety_under_faults on the outputs of the elect "
      "run the service actually served; `match` additionally compares "
      "min-time and elect answers against a from-scratch recompute of "
      "the mutated graph.",
      {"round", "events", "dirty", "repair", "feasible", "phi", "leader",
       "safety", "match"}});

  s.add_cell("mix", 0, mix_cell);
  s.add_cell("saturate", 0, saturate_cell);
  s.add_cell("snap", 0, snap_cell);
  s.add_cell("faults", 1, faults_cell);
  return s;
}

ANOLE_REGISTER_SCENARIO("q1", make_q1);

}  // namespace
