// S1 — scaling sweep for the metered view substrate.
//
// The paper's size/time trade-off tables (M2, E4, E8) only become
// interesting at scales the naive metering path could not reach: pricing
// "the whole current view" once per node per round with a full DAG
// traversal made metered runs O(n^2 * t) over an O(n * t) substrate. With
// incremental DAG statistics (DESIGN.md §1) and once-per-distinct-view
// metering (§3), the same runs are dominated by the simulation itself.
// S1 sweeps n across three families with metering on:
//
//   ring    — fully symmetric: one distinct view per round, the metering
//             best case (n messages, one size computation);
//   clique  — dense and feasible (phi = 1): n distinct views per round,
//             the largest per-view DAGs;
//   random  — sparse connected graphs, the typical workload;
//   torus   — uniform degree 4, vertex-transitive (rows*cols classes
//             collapse fast): the quotient metering path on a 2D family;
//   hypercube — uniform degree log2 n, the runtime-degree hash reduction
//             under metering load.
//
// Every value reported is deterministic (byte-identical across --threads,
// like all paper tables); wall-clock throughput is tracked separately via
// `anole_bench --bench-out` (BENCH_scale.json — see DESIGN.md §6).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "portgraph/builders.hpp"
#include "runner/scenario.hpp"
#include "runner/scenarios/common.hpp"
#include "sim/engine.hpp"
#include "sim/full_info.hpp"
#include "views/refiner.hpp"
#include "views/view_repo.hpp"

namespace {

using namespace anole;
using runner::Row;
using runner::Value;

/// COM for a fixed number of rounds, then a (content-free) decision: S1
/// measures the substrate under metering load, not an election.
class ComForRounds final : public sim::FullInfoProgram {
 public:
  explicit ComForRounds(int target) : target_(target) {}
  [[nodiscard]] bool has_output() const override { return done_; }
  [[nodiscard]] std::vector<int> output() const override { return {}; }

 protected:
  void on_view(int rounds) override {
    if (rounds >= target_) done_ = true;
  }

 private:
  int target_;
  bool done_ = false;
};

Row s1_row(const std::string& family, const portgraph::PortGraph& g,
           int rounds, views::ViewRepo& repo, util::ThreadPool* pool,
           views::Refiner* refiner = nullptr) {
  std::vector<std::unique_ptr<sim::NodeProgram>> programs;
  programs.reserve(g.n());
  for (std::size_t v = 0; v < g.n(); ++v)
    programs.push_back(std::make_unique<ComForRounds>(rounds));
  sim::RunMetrics m = sim::run_full_info(g, repo, programs, rounds + 1,
                                         /*meter_messages=*/true, pool,
                                         refiner);
  std::size_t last_distinct = m.distinct_views_per_round.empty()
                                  ? 0
                                  : m.distinct_views_per_round.back();
  return Row{family, g.n(), m.rounds, m.total_message_bits,
             m.max_message_bits, last_distinct, repo.size()};
}

std::vector<Row> s1_cell(const std::string& family,
                         const portgraph::PortGraph& g, int rounds) {
  views::ViewRepo repo;
  // Batched refinement per round (DESIGN.md §7); the big cells also get
  // intra-cell parallelism for the gather/hash phase. All reported values
  // are pool-independent, so the table stays byte-identical.
  std::unique_ptr<util::ThreadPool> pool =
      runner::scenarios::intra_cell_pool(g.n());
  return {s1_row(family, g, rounds, repo, pool.get())};
}

// Shared-repo sweep (DESIGN.md §10): every graph in the cell interns into
// ONE concurrent ViewRepo through one pool. The graphs run sequentially
// inside the cell so the cumulative "repo records" column is meaningful —
// the record SET (and hence size()) is schedule-independent even though
// raw ids are not, so the whole row block stays byte-identical across
// --threads.
std::vector<Row> s1_shared_cell() {
  views::ViewRepo repo;
  std::unique_ptr<util::ThreadPool> pool =
      runner::scenarios::intra_cell_pool(16384);
  // One refiner serves the whole sweep (run_full_info re-attaches it per
  // graph), recycling its SoA columns and dedup table; the attach() trim
  // keeps the 16384-node footprint from riding along into the 64-node
  // graphs. Metrics are identical to per-run refiners.
  portgraph::PortGraph seed = portgraph::ring(4);
  views::Refiner refiner(seed, repo);
  std::vector<Row> rows;
  for (std::size_t n : {1024, 4096, 16384})
    rows.push_back(
        s1_row("ring", portgraph::ring(n), 32, repo, pool.get(), &refiner));
  for (std::size_t n : {64, 256, 1024})
    rows.push_back(s1_row("random",
                          portgraph::random_connected(n, 2 * n, 9), 8, repo,
                          pool.get(), &refiner));
  return rows;
}

runner::Scenario make_s1() {
  runner::Scenario s;
  s.name = "s1";
  s.summary = "scaling sweep: metered COM across n for ring/clique/random";
  s.reference = "DESIGN.md §1/§3 (metered substrate scaling)";
  s.tables.push_back(runner::TableSpec{
      "S1",
      "Metered COM at scale: total/max message bits, distinct outgoing "
      "views in the last round (= size computations per round), and the "
      "hash-consed repo size. Ring is the symmetric best case (1 distinct "
      "view), clique the dense worst case (n distinct views), random the "
      "typical workload. All values deterministic; wall-clock throughput "
      "is tracked via --bench-out (BENCH_scale.json).",
      {"family", "n", "rounds", "total bits", "max msg bits",
       "distinct views", "repo records"}});
  s.tables.push_back(runner::TableSpec{
      "S1shared",
      "One concurrent ViewRepo shared by every graph of the sweep "
      "(DESIGN.md §10): structurally equal views interned for different "
      "graphs share records, so \"repo records\" is cumulative and grows "
      "sublinearly in the number of graphs. Values are byte-identical "
      "across --threads (the record set is schedule-independent).",
      {"family", "n", "rounds", "total bits", "max msg bits",
       "distinct views", "repo records"}});

  auto add = [&s](std::string family, std::size_t n, int rounds,
                  std::function<portgraph::PortGraph()> build) {
    s.add_cell(family + "/n=" + std::to_string(n), 0,
               [family, rounds, build = std::move(build)] {
                 return s1_cell(family, build(), rounds);
               });
  };
  // The 65536+ cells ride the stable-phase quotient (DESIGN.md §9): after
  // the ring partition freezes, each metered round interns and prices one
  // view instead of re-hashing all n nodes. The 2^20 cell exists because
  // the sharded concurrent repo (DESIGN.md §10) made it affordable.
  for (std::size_t n : {1024, 4096, 16384, 65536, 1048576})
    add("ring", n, 32, [n] { return portgraph::ring(n); });
  for (std::size_t n : {32, 64, 128})
    add("clique", n, 6, [n] { return portgraph::clique(n); });
  for (std::size_t n : {64, 256, 1024})
    add("random", n, 8,
        [n] { return portgraph::random_connected(n, 2 * n, 9); });
  add("torus", 64 * 64, 16, [] { return portgraph::torus(64, 64); });
  add("hypercube", std::size_t{1} << 12, 8,
      [] { return portgraph::hypercube(12); });
  s.add_cell("shared/sweep", 1, [] { return s1_shared_cell(); });
  return s;
}

}  // namespace

ANOLE_REGISTER_SCENARIO("s1", make_s1);
