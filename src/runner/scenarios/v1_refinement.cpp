// V1 — batched level-synchronous refinement microbenchmark (DESIGN.md §7).
//
// Where S1 stresses the metered COM *simulation*, V1 stresses the offline
// refinement substrate itself: compute_profile driven by views::Refiner
// (dedup-before-intern, flat interning index, parallel gather/hash) on the
// workloads that shape its cost profile:
//
//   ring    — one class per level: dedup collapses the whole level to a
//             single intern; swept deep (min_depth) at n = 65536 — past
//             stabilization the sweep rides the quotient advancer
//             (DESIGN.md §9; the V3 scenario stresses that phase alone);
//   path    — the deep-refinement extreme: phi ~ n/2 levels, the O(n·t)
//             history the keep_history=false mode exists for;
//   random  — shallow profiles over wide levels, the typical workload;
//   clique  — the densest signatures (n-1 children each).
//
// Every reported value is deterministic and pool-independent; wall-clock
// throughput rides the --bench-out channel ("n" / "rounds" columns feed
// cells_per_sec) next to S1 in the CI perf artifact.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "portgraph/builders.hpp"
#include "runner/scenario.hpp"
#include "runner/scenarios/common.hpp"
#include "views/profile.hpp"

namespace {

using namespace anole;
using runner::Row;
using runner::Value;

std::vector<Row> v1_cell(const std::string& family,
                         const portgraph::PortGraph& g, int min_depth) {
  views::ViewRepo repo;
  std::unique_ptr<util::ThreadPool> pool =
      runner::scenarios::intra_cell_pool(g.n());
  views::ViewProfile p = views::compute_profile(
      g, repo,
      views::ProfileOptions{.min_depth = min_depth,
                            .keep_history = false,
                            .pool = pool.get()});
  return {Row{family, g.n(), p.computed_depth(), p.class_counts.back(),
              p.feasible ? Value(p.election_index) : Value("-"),
              repo.size()}};
}

// Thread-scaling cell (DESIGN.md §10): a fixed sweep of graphs refined
// into ONE shared concurrent ViewRepo with an explicit K-worker pool.
// Every reported value is identical across K — the table IS the flatness
// check — while the per-cell wall time rides --bench-out, giving CI a
// thread-scaling curve (BENCH_refine.json) next to the serial cells.
std::vector<Row> scale_cell(std::size_t threads) {
  views::ViewRepo repo;
  util::ThreadPool pool(threads);
  std::size_t levels = 0;
  std::size_t classes = 0;
  std::size_t graphs = 0;
  auto sweep = [&](const portgraph::PortGraph& g, int min_depth) {
    views::ViewProfile p = views::compute_profile(
        g, repo,
        views::ProfileOptions{.min_depth = min_depth,
                              .keep_history = false,
                              .pool = &pool});
    levels += static_cast<std::size_t>(p.computed_depth());
    classes += p.class_counts.back();
    ++graphs;
  };
  sweep(portgraph::ring(32768), 16);
  sweep(portgraph::random_connected(16384, 32768, 9), 0);
  sweep(portgraph::random_connected(16384, 32768, 11), 0);
  sweep(portgraph::clique(512), 2);
  return {Row{threads, graphs, levels, classes, repo.size()}};
}

runner::Scenario make_v1() {
  runner::Scenario s;
  s.name = "v1";
  s.summary = "refinement microbenchmark: batched compute_profile at scale";
  s.reference = "DESIGN.md §7 (batched refinement)";
  s.tables.push_back(runner::TableSpec{
      "V1",
      "Batched view refinement at scale: levels computed (\"rounds\"), the "
      "final class count of the refinement partition, the election index "
      "where feasible, and the hash-consed repo size. Profiles run with "
      "keep_history=false (only the deepest level retained) and an "
      "intra-cell pool for the gather/hash phase; all values are "
      "deterministic and thread-count independent. Wall-clock throughput "
      "is tracked via --bench-out.",
      {"family", "n", "rounds", "classes", "phi", "repo records"}});
  s.tables.push_back(runner::TableSpec{
      "V1scale",
      "Thread-scaling of the shared-repo refinement sweep (DESIGN.md §10): "
      "the same four graphs refined into one concurrent ViewRepo with a "
      "K-worker pool, K = 1/2/4/8. Every value must be identical row to "
      "row — raw ids differ across schedules, the partition, class counts "
      "and record set do not. Wall-clock per K rides --bench-out "
      "(BENCH_refine.json, guarded by bench_check).",
      {"threads", "graphs", "levels", "classes", "repo records"}});

  auto add = [&s](std::string label, std::string family, int min_depth,
                  std::function<portgraph::PortGraph()> build) {
    s.add_cell(std::move(label), 0,
               [family = std::move(family), min_depth,
                build = std::move(build)] {
                 return v1_cell(family, build(), min_depth);
               });
  };
  add("ring/n=65536", "ring", 32, [] { return portgraph::ring(65536); });
  add("path/n=2049", "path", 0, [] { return portgraph::path(2049); });
  add("random/n=16384", "random", 0,
      [] { return portgraph::random_connected(16384, 32768, 9); });
  add("clique/n=512", "clique", 2, [] { return portgraph::clique(512); });
  for (std::size_t k : {1, 2, 4, 8})
    s.add_cell("scale/threads=" + std::to_string(k), 1,
               [k] { return scale_cell(k); });
  return s;
}

}  // namespace

ANOLE_REGISTER_SCENARIO("v1", make_v1);
