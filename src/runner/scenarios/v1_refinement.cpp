// V1 — batched level-synchronous refinement microbenchmark (DESIGN.md §7).
//
// Where S1 stresses the metered COM *simulation*, V1 stresses the offline
// refinement substrate itself: compute_profile driven by views::Refiner
// (dedup-before-intern, flat interning index, parallel gather/hash) on the
// workloads that shape its cost profile:
//
//   ring    — one class per level: dedup collapses the whole level to a
//             single intern; swept deep (min_depth) at n = 65536 — past
//             stabilization the sweep rides the quotient advancer
//             (DESIGN.md §9; the V3 scenario stresses that phase alone);
//   path    — the deep-refinement extreme: phi ~ n/2 levels, the O(n·t)
//             history the keep_history=false mode exists for;
//   random  — shallow profiles over wide levels, the typical workload;
//   clique  — the densest signatures (n-1 children each);
//   torus   — uniform degree 4 with a 2D symmetry group: few classes,
//             wide levels, the SoA reduce kernel's degree-4 fast path;
//   hypercube — uniform degree d = log2 n, the runtime-degree reduction.
//
// The presoa cells time the raw pre-stabilization SoA pipeline
// (DESIGN.md §11) in isolation: a serial Refiner with the stable-phase
// quotient disabled instance-locally, a fixed number of advance() rounds
// — gather + batched hash + prefetched dedup every round, no quotient
// shortcut. Their wall time is the bench_check-guarded regression floor
// for the structure-of-arrays refactor (BENCH_refine.json).
//
// Every reported value is deterministic and pool-independent; wall-clock
// throughput rides the --bench-out channel ("n" / "rounds" columns feed
// cells_per_sec) next to S1 in the CI perf artifact.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "portgraph/builders.hpp"
#include "runner/scenario.hpp"
#include "runner/scenarios/common.hpp"
#include "views/profile.hpp"
#include "views/refiner.hpp"

namespace {

using namespace anole;
using runner::Row;
using runner::Value;

std::vector<Row> v1_cell(const std::string& family,
                         const portgraph::PortGraph& g, int min_depth) {
  views::ViewRepo repo;
  std::unique_ptr<util::ThreadPool> pool =
      runner::scenarios::intra_cell_pool(g.n());
  views::ViewProfile p = views::compute_profile(
      g, repo,
      views::ProfileOptions{.min_depth = min_depth,
                            .keep_history = false,
                            .pool = pool.get()});
  return {Row{family, g.n(), p.computed_depth(), p.class_counts.back(),
              p.feasible ? Value(p.election_index) : Value("-"),
              repo.size()}};
}

// Raw pre-stabilization pipeline cell (DESIGN.md §11): a serial Refiner
// with the quotient advancer disabled *instance-locally* (the global
// switch stays untouched — cells run concurrently), advanced a fixed
// number of rounds. Every round pays the full gather + batched hash +
// prefetched dedup, which is exactly the work the SoA refactor targets;
// the reported values are deterministic, the wall time rides --bench-out
// and is guarded by bench_check.
std::vector<Row> presoa_cell(const std::string& family,
                             const portgraph::PortGraph& g, int rounds,
                             int reps) {
  // The cell wall time includes the one-time graph build, so the
  // refinement sequence repeats (fresh repo each rep) until the pipeline
  // dominates the guarded number — a regression in the hot loop moves the
  // cell well past bench_check's tolerance, a slow graph builder does not.
  std::size_t classes = 0;
  std::size_t records = 0;
  for (int rep = 0; rep < reps; ++rep) {
    views::ViewRepo repo;
    views::Refiner refiner(g, repo);
    refiner.set_quotient_enabled(false);
    std::vector<views::ViewId> level;
    std::vector<views::ViewId> next;
    classes = refiner.init_level(level);
    for (int r = 0; r < rounds; ++r) {
      classes = refiner.advance(level, next);
      level.swap(next);
    }
    records = repo.size();
  }
  return {Row{family, g.n(), rounds, classes, Value("-"), records}};
}

// Thread-scaling cell (DESIGN.md §10): a fixed sweep of graphs refined
// into ONE shared concurrent ViewRepo with an explicit K-worker pool.
// Every reported value is identical across K — the table IS the flatness
// check — while the per-cell wall time rides --bench-out, giving CI a
// thread-scaling curve (BENCH_refine.json) next to the serial cells.
// The sweep reuses ONE refiner across its graphs (ProfileOptions::refiner)
// — the attach() path the SoA columns are recycled through.
std::vector<Row> scale_cell(std::size_t threads) {
  views::ViewRepo repo;
  util::ThreadPool pool(threads);
  // The seed graph only feeds the constructor; each sweep step re-attaches.
  portgraph::PortGraph seed = portgraph::ring(4);
  views::Refiner refiner(seed, repo);
  std::size_t levels = 0;
  std::size_t classes = 0;
  std::size_t graphs = 0;
  auto sweep = [&](const portgraph::PortGraph& g, int min_depth) {
    views::ViewProfile p = views::compute_profile(
        g, repo,
        views::ProfileOptions{.min_depth = min_depth,
                              .keep_history = false,
                              .pool = &pool,
                              .refiner = &refiner});
    levels += static_cast<std::size_t>(p.computed_depth());
    classes += p.class_counts.back();
    ++graphs;
  };
  sweep(portgraph::ring(32768), 16);
  sweep(portgraph::random_connected(16384, 32768, 9), 0);
  sweep(portgraph::random_connected(16384, 32768, 11), 0);
  sweep(portgraph::clique(512), 2);
  return {Row{threads, graphs, levels, classes, repo.size()}};
}

runner::Scenario make_v1() {
  runner::Scenario s;
  s.name = "v1";
  s.summary = "refinement microbenchmark: batched compute_profile at scale";
  s.reference = "DESIGN.md §7 (batched refinement)";
  s.tables.push_back(runner::TableSpec{
      "V1",
      "Batched view refinement at scale: levels computed (\"rounds\"), the "
      "final class count of the refinement partition, the election index "
      "where feasible, and the hash-consed repo size. Profiles run with "
      "keep_history=false (only the deepest level retained) and an "
      "intra-cell pool for the gather/hash phase; all values are "
      "deterministic and thread-count independent. The presoa rows time "
      "the raw pre-stabilization SoA pipeline instead (serial, quotient "
      "disabled, fixed rounds — DESIGN.md §11). Wall-clock throughput "
      "is tracked via --bench-out.",
      {"family", "n", "rounds", "classes", "phi", "repo records"}});
  s.tables.push_back(runner::TableSpec{
      "V1scale",
      "Thread-scaling of the shared-repo refinement sweep (DESIGN.md §10): "
      "the same four graphs refined into one concurrent ViewRepo with a "
      "K-worker pool, K = 1/2/4/8. Every value must be identical row to "
      "row — raw ids differ across schedules, the partition, class counts "
      "and record set do not. Wall-clock per K rides --bench-out "
      "(BENCH_refine.json, guarded by bench_check).",
      {"threads", "graphs", "levels", "classes", "repo records"}});

  auto add = [&s](std::string label, std::string family, int min_depth,
                  std::function<portgraph::PortGraph()> build) {
    s.add_cell(std::move(label), 0,
               [family = std::move(family), min_depth,
                build = std::move(build)] {
                 return v1_cell(family, build(), min_depth);
               });
  };
  add("ring/n=65536", "ring", 32, [] { return portgraph::ring(65536); });
  add("path/n=2049", "path", 0, [] { return portgraph::path(2049); });
  add("random/n=16384", "random", 0,
      [] { return portgraph::random_connected(16384, 32768, 9); });
  add("clique/n=512", "clique", 2, [] { return portgraph::clique(512); });
  add("torus/256x256", "torus", 8,
      [] { return portgraph::torus(256, 256); });
  add("hypercube/d=16", "hypercube", 4,
      [] { return portgraph::hypercube(16); });
  s.add_cell("presoa/ring-n=1048576", 0, [] {
    return presoa_cell("ring", portgraph::ring(1 << 20), 8, 3);
  });
  s.add_cell("presoa/random-n=65536", 0, [] {
    return presoa_cell("random",
                       portgraph::random_connected(65536, 131072, 9), 3, 3);
  });
  for (std::size_t k : {1, 2, 4, 8})
    s.add_cell("scale/threads=" + std::to_string(k), 1,
               [k] { return scale_cell(k); });
  return s;
}

}  // namespace

ANOLE_REGISTER_SCENARIO("v1", make_v1);
