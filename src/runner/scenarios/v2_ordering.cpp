// V2 — canonical-rank ordering microbenchmark (DESIGN.md §8).
//
// Where V1 stresses view *construction* (batched refinement), V2 stresses
// view *ordering*: every election algorithm bottoms out in "find the
// canonically smallest equal-depth view" (argmin for the leader, the sort
// inside BuildTrie, the per-round minimum of Generic). With canonical
// ranks those queries are integer comparisons; without them they walk the
// view DAG through the memoized structural compare. Each ordering kernel
// therefore runs in two modes on the same level content:
//
//   ranked     — levels built through views::Refiner, which assigns
//                canonical ranks as a byproduct of the batched dedup;
//   structural — the identical levels built through the per-node intern
//                loop (no ranks), i.e. the pre-rank baseline path.
//
// Kernels: argmin (min-rank scan vs dedup + compare loop) on the ring /
// random / clique families, the trie-build sort kernel (ordering a
// level's distinct views, exactly what BuildTrie's deep mode does per
// class) on random graphs, and the end-to-end Generic(n) election whose
// per-round minimum tracking rides the same comparisons (random only: the
// ring is symmetric, hence infeasible, and Generic(n) on the 512-clique
// would be dominated by refining the dense graph, not by ordering).
//
// Reported values (classes, witness nodes, rounds) are deterministic and
// identical across modes — ids and canonical order do not depend on ranks;
// wall-clock rides --bench-out (BENCH_order.json), where the ranked /
// structural wall_ms ratio is the tracked speedup. Fixed repeat counts
// keep cells comparable; serial execution keeps the timings honest.

#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "election/harness.hpp"
#include "portgraph/builders.hpp"
#include "runner/scenario.hpp"
#include "runner/scenarios/common.hpp"
#include "util/prng.hpp"
#include "views/profile.hpp"
#include "views/refiner.hpp"

namespace {

using namespace anole;
using runner::Row;
using runner::Value;

/// Every node's depth-`depth` view via the batched refiner: records carry
/// canonical ranks (the mode under test).
std::vector<views::ViewId> ranked_level(const portgraph::PortGraph& g,
                                        views::ViewRepo& repo, int depth) {
  views::Refiner refiner(g, repo);
  std::vector<views::ViewId> level, next;
  refiner.init_level(level);
  for (int t = 0; t < depth; ++t) {
    refiner.advance(level, next);
    level.swap(next);
  }
  return level;
}

std::vector<views::ViewId> build_level(const portgraph::PortGraph& g,
                                       views::ViewRepo& repo, int depth,
                                       bool ranked) {
  return ranked ? ranked_level(g, repo, depth)
                : runner::scenarios::naive_unranked_level(g, repo, depth);
}

std::vector<Row> argmin_cell(const std::string& family,
                             const portgraph::PortGraph& g, int depth,
                             bool ranked, int repeats) {
  views::ViewRepo repo;
  std::vector<views::ViewId> level = build_level(g, repo, depth, ranked);
  portgraph::NodeId leader = -1;
  for (int r = 0; r < repeats; ++r) leader = views::argmin_view(repo, level);
  std::size_t classes = views::distinct_ids(level).size();
  return {Row{"argmin", family, ranked ? "ranked" : "structural", g.n(),
              depth, classes, repeats, static_cast<std::int64_t>(leader)}};
}

std::vector<Row> sort_cell(const std::string& family,
                           const portgraph::PortGraph& g, int depth,
                           bool ranked, int repeats) {
  views::ViewRepo repo;
  std::vector<views::ViewId> level = build_level(g, repo, depth, ranked);
  std::vector<views::ViewId> distinct = views::distinct_ids(level);
  // The BuildTrie kernel: order a class of equal-depth views canonically.
  // A fixed-seed shuffle between repeats keeps std::sort honest (sorting
  // an already-sorted vector would skew both modes the same way, but why
  // risk it); the shuffle sequence is identical in both modes.
  util::SplitMix64 rng(7);
  views::ViewId smallest = views::kInvalidView;
  for (int r = 0; r < repeats; ++r) {
    for (std::size_t i = distinct.size(); i > 1; --i)
      std::swap(distinct[i - 1], distinct[rng.below(i)]);
    std::sort(distinct.begin(), distinct.end(),
              [&repo](views::ViewId a, views::ViewId b) {
                return repo.compare(a, b) == std::strong_ordering::less;
              });
    smallest = distinct.front();
  }
  // The canonical minimum's witness node is mode-independent (ids are
  // identical with and without ranks); report it instead of the raw id.
  portgraph::NodeId witness = -1;
  for (std::size_t v = 0; v < level.size(); ++v)
    if (level[v] == smallest) {
      witness = static_cast<portgraph::NodeId>(v);
      break;
    }
  return {Row{"trie-sort", family, ranked ? "ranked" : "structural", g.n(),
              depth, distinct.size(), repeats,
              static_cast<std::int64_t>(witness)}};
}

std::vector<Row> generic_cell(const std::string& family,
                              const portgraph::PortGraph& g, int repeats) {
  // End-to-end SizeOnly(n) = Generic(n): the per-round minimum tracking
  // and the final argmin ride the ranked comparisons (views built through
  // run_full_info's refiner are ranked). No structural twin: the harness
  // always refines through the Refiner.
  election::ElectionRun run;
  for (int r = 0; r < repeats; ++r) run = election::run_size_only(g);
  // "result" is the elected leader; rounds land in the depth column slot
  // as "-" (the kernel has no level depth) and classes are not meaningful.
  return {Row{"generic-min", family, "ranked", g.n(), Value("-"), Value("-"),
              repeats, static_cast<std::int64_t>(run.verdict.leader)}};
}

runner::Scenario make_v2() {
  runner::Scenario s;
  s.name = "v2";
  s.summary =
      "ordering microbenchmark: canonical-rank vs structural view ordering";
  s.reference = "DESIGN.md §8 (canonical ranks)";
  s.serial = true;  // concurrent cells would contend with the timed loops
  s.tables.push_back(runner::TableSpec{
      "V2",
      "Canonical ordering kernels, ranked (views::Refiner assigns ranks; "
      "ordering is integer comparison) vs structural (per-node interning, "
      "no ranks; ordering walks the DAG through the memoized structural "
      "compare — the pre-rank baseline). argmin scans a whole level for "
      "the canonical minimum; trie-sort orders a level's distinct views "
      "(the BuildTrie kernel); generic-min runs SizeOnly(n) end to end. "
      "All reported values are deterministic and mode-independent; the "
      "ranked/structural wall-clock ratio rides --bench-out "
      "(BENCH_order.json). The symmetric ring collapses to one class — "
      "the dedup best case; random and the port-numbered clique keep n "
      "distinct classes.",
      {"kernel", "family", "mode", "n", "depth", "classes", "repeats",
       "result"}});

  auto add_pair = [&s](const std::string& kernel, const std::string& family,
                       std::function<portgraph::PortGraph()> build, int depth,
                       int repeats, auto cell_fn) {
    for (bool ranked : {true, false})
      s.add_cell(kernel + "/" + family + (ranked ? "/ranked" : "/structural"),
                 0, [family, build, depth, ranked, repeats, cell_fn] {
                   return cell_fn(family, build(), depth, ranked, repeats);
                 });
  };

  add_pair("argmin", "ring/n=16384", [] { return portgraph::ring(16384); },
           24, 1024, [](auto&&... a) { return argmin_cell(a...); });
  add_pair("argmin", "random/n=4096",
           [] { return portgraph::random_connected(4096, 8192, 11); }, 4, 1024,
           [](auto&&... a) { return argmin_cell(a...); });
  add_pair("argmin", "clique/n=512", [] { return portgraph::clique(512); }, 2,
           256, [](auto&&... a) { return argmin_cell(a...); });
  add_pair("trie-sort", "random/n=4096",
           [] { return portgraph::random_connected(4096, 8192, 11); }, 4, 24,
           [](auto&&... a) { return sort_cell(a...); });
  add_pair("trie-sort", "random/n=16384",
           [] { return portgraph::random_connected(16384, 32768, 9); }, 4, 24,
           [](auto&&... a) { return sort_cell(a...); });
  s.add_cell("generic-min/random/n=256", 0, [] {
    return generic_cell("random/n=256",
                        portgraph::random_connected(256, 512, 9), 3);
  });
  return s;
}

}  // namespace

ANOLE_REGISTER_SCENARIO("v2", make_v2);
