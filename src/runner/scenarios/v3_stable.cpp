// V3 — stable-phase quotient refinement benchmark (DESIGN.md §9).
//
// V1 stresses the batched refinement substrate; V3 stresses what happens
// *after* the refinement partition stabilizes: the quotient advancer pays
// O(classes) per level instead of O(n + m), so depths that used to cost a
// full gather/hash/dedup sweep per level — thousands of levels on a
// symmetric ring — collapse to interning C views each. Two tables:
//
//   stable-profile — deep keep_history=false sweeps (compute_profile with
//       min_depth far past stabilization). "stable depth" is the level at
//       which the class count first repeats (the quotient freeze point);
//       every level past it is a quotient round. Before the quotient,
//       the ring n=65536 / depth=16384 cell alone cost Θ(n·depth) ≈ 10^9
//       node-levels — it exists because it is now affordable.
//
//   stable-com — deep metered COM runs (run_full_info): the round loop
//       advances the quotient, meters the C distinct views per round, and
//       only the undecided nodes' on_view hooks touch per-node state.
//
// Every reported value is deterministic and thread-count independent;
// wall-clock rides --bench-out (BENCH_stable.json, guarded in CI by
// tools/bench_check against the committed repo-root baseline).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "portgraph/builders.hpp"
#include "runner/scenario.hpp"
#include "runner/scenarios/common.hpp"
#include "sim/engine.hpp"
#include "sim/full_info.hpp"
#include "views/profile.hpp"
#include "views/view_repo.hpp"

namespace {

using namespace anole;
using runner::Row;
using runner::Value;

/// COM for a fixed number of rounds, then a (content-free) decision —
/// the S1 program, here driven deep into the stable phase.
class ComForRounds final : public sim::FullInfoProgram {
 public:
  explicit ComForRounds(int target) : target_(target) {}
  [[nodiscard]] bool has_output() const override { return done_; }
  [[nodiscard]] std::vector<int> output() const override { return {}; }

 protected:
  void on_view(int rounds) override {
    if (rounds >= target_) done_ = true;
  }

 private:
  int target_;
  bool done_ = false;
};

/// First depth whose class count repeats the previous one — the level at
/// which the refiner froze the quotient. -1 if the sweep never stabilized.
int stable_depth(const std::vector<std::size_t>& class_counts) {
  for (std::size_t t = 1; t < class_counts.size(); ++t)
    if (class_counts[t] == class_counts[t - 1]) return static_cast<int>(t);
  return -1;
}

std::vector<Row> profile_cell(const std::string& family,
                              const portgraph::PortGraph& g, int min_depth) {
  views::ViewRepo repo;
  std::unique_ptr<util::ThreadPool> pool =
      runner::scenarios::intra_cell_pool(g.n());
  views::ViewProfile p = views::compute_profile(
      g, repo,
      views::ProfileOptions{.min_depth = min_depth,
                            .keep_history = false,
                            .pool = pool.get()});
  int frozen_at = stable_depth(p.class_counts);
  int quotient_levels =
      frozen_at < 0 ? 0 : p.computed_depth() - frozen_at;
  return {Row{family, g.n(), p.computed_depth(), p.class_counts.back(),
              frozen_at, quotient_levels, repo.size()}};
}

std::vector<Row> com_cell(const std::string& family,
                          const portgraph::PortGraph& g, int rounds) {
  views::ViewRepo repo;
  std::vector<std::unique_ptr<sim::NodeProgram>> programs;
  programs.reserve(g.n());
  for (std::size_t v = 0; v < g.n(); ++v)
    programs.push_back(std::make_unique<ComForRounds>(rounds));
  std::unique_ptr<util::ThreadPool> pool =
      runner::scenarios::intra_cell_pool(g.n());
  sim::RunMetrics m = sim::run_full_info(g, repo, programs, rounds + 1,
                                         /*meter_messages=*/true, pool.get());
  std::size_t last_distinct = m.distinct_views_per_round.empty()
                                  ? 0
                                  : m.distinct_views_per_round.back();
  return {Row{family, g.n(), m.rounds, m.total_message_bits,
              m.max_message_bits, last_distinct, repo.size()}};
}

runner::Scenario make_v3() {
  runner::Scenario s;
  s.name = "v3";
  s.summary =
      "stable-phase benchmark: O(classes) quotient rounds after partition "
      "stabilization";
  s.reference = "DESIGN.md §9 (stable-phase quotient refinement)";
  s.tables.push_back(runner::TableSpec{
      "V3a",
      "Deep refinement sweeps past stabilization (keep_history=false): "
      "levels computed (\"rounds\"), the fixed-point class count, the "
      "depth at which the partition froze, the number of O(classes) "
      "quotient levels, and the hash-consed repo size — which stays tiny "
      "because each quotient level interns exactly C records. All values "
      "deterministic; wall-clock rides --bench-out (BENCH_stable.json).",
      {"family", "n", "rounds", "classes", "stable depth", "quotient levels",
       "repo records"}});
  s.tables.push_back(runner::TableSpec{
      "V3b",
      "Deep metered COM through the quotient (run_full_info): total/max "
      "message bits, distinct outgoing views in the last round, and the "
      "repo size. Byte-identical to Engine::run and across --threads.",
      {"family", "n", "rounds", "total bits", "max msg bits",
       "distinct views", "repo records"}});

  auto add_profile = [&s](std::string family, std::size_t n, int min_depth,
                          std::function<portgraph::PortGraph()> build) {
    s.add_cell("stable-profile/" + family + "/n=" + std::to_string(n) +
                   "/depth=" + std::to_string(min_depth),
               0, [family, min_depth, build = std::move(build)] {
                 return profile_cell(family, build(), min_depth);
               });
  };
  auto add_com = [&s](std::string family, std::size_t n, int rounds,
                      std::function<portgraph::PortGraph()> build) {
    s.add_cell("stable-com/" + family + "/n=" + std::to_string(n) +
                   "/rounds=" + std::to_string(rounds),
               1, [family, rounds, build = std::move(build)] {
                 return com_cell(family, build(), rounds);
               });
  };
  add_profile("ring", 4096, 4096, [] { return portgraph::ring(4096); });
  add_profile("ring", 16384, 8192, [] { return portgraph::ring(16384); });
  add_profile("ring", 65536, 16384, [] { return portgraph::ring(65536); });
  // 2^20 nodes: the early O(n) levels run through the sharded concurrent
  // repo's parallel intern (DESIGN.md §10); past stabilization each level
  // interns a single record.
  add_profile("ring", 1048576, 4096, [] { return portgraph::ring(1048576); });
  add_com("ring", 4096, 2048, [] { return portgraph::ring(4096); });
  add_com("ring", 16384, 512, [] { return portgraph::ring(16384); });
  return s;
}

}  // namespace

ANOLE_REGISTER_SCENARIO("v3", make_v3);
