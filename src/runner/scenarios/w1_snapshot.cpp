// W1 — persistent ViewRepo snapshots: cold vs warm sweeps (DESIGN.md §13).
//
// The claim under test: once a deep keep_history=false sweep has been run
// to depth D0 and saved, a *warm* sweep to D > D0 — mmap-attach the
// snapshot, resume the stabilized quotient from its anchor, extend — costs
// the extension rounds only, not the attach + depth-0 interning + full
// refinement the cold run pays, while producing byte-identical output
// (class counts, feasibility, election index, last-level ids, canonical
// ranks, argmin verdicts — the warm rows carry an explicit `match` column
// checked against the cold run of the same cell grid).
//
// Cell order matters and the scenario is serial (cells time themselves and
// share per-family state): prep builds the graph and refines to D0,
// save writes the blob, cold re-runs from scratch to D on a fresh repo,
// load-copy / mmap-attach time the two load modes alone, warm times
// attach + resume + extend to D. Wall-clock rides --bench-out
// (BENCH_snapshot.json; the warm cells are guarded in CI by
// tools/bench_check --match warm against the committed baseline).
//
// Snapshot paths come from anole_bench --snapshot-out / --snapshot-in
// (runner/scenarios/common.hpp): CI points a later job's --snapshot-in at
// an earlier job's --snapshot-out artifact, which pins cross-process blob
// compatibility, not just same-process round-trips.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "portgraph/builders.hpp"
#include "runner/scenario.hpp"
#include "runner/scenarios/common.hpp"
#include "views/profile.hpp"
#include "views/snapshot.hpp"
#include "views/view_repo.hpp"

namespace {

using namespace anole;
using runner::Row;

struct FamilySpec {
  std::string key;
  int d0;  ///< prep/save depth (past stabilization for every family)
  int d;   ///< cold/warm target depth
  portgraph::PortGraph (*build)();
};

// Deep keep_history=false extensions: D - D0 quotient rounds each. The
// ring is the headline cell (n = 2^20, 256 extension rounds vs a 16640-
// round cold sweep); random is feasibility-shaped (stabilizes with n
// classes); the torus is the 2-D symmetric case.
const FamilySpec kFamilies[] = {
    {"ring", 16384, 16640,
     [] { return portgraph::ring(std::size_t{1} << 20); }},
    {"random", 6, 8,
     [] {
       return portgraph::random_connected(std::size_t{65536},
                                          std::size_t{65536} + 131072, 7);
     }},
    {"torus", 4096, 4224, [] { return portgraph::torus(512, 512); }},
};

/// Everything the serial cells of one family hand forward. The cold
/// outputs are kept verbatim so the warm cell's `match` column is an
/// exact comparison, not a summary hash.
struct FamilyState {
  portgraph::PortGraph graph;
  std::unique_ptr<views::ViewRepo> prep_repo;  ///< dropped after save
  views::SweepAnchor anchor;
  std::uint64_t prep_records = 0;
  std::uint64_t snap_bytes = 0;
  std::vector<std::size_t> cold_counts;
  std::vector<views::ViewId> cold_level;
  std::vector<std::int32_t> cold_ranks;
  bool cold_feasible = false;
  int cold_election = -1;
  portgraph::NodeId cold_argmin = -1;
  std::uint64_t cold_records = 0;
  views::LoadedSnapshot warm_snap;  ///< kept for the verify cell
  views::ViewProfile warm_profile;
};

std::string snap_out_path(const std::string& key) {
  return runner::scenarios::snapshot_out_prefix() + "-" + key + ".snap";
}

std::string snap_in_path(const std::string& key) {
  return runner::scenarios::snapshot_in_prefix() + "-" + key + ".snap";
}

/// The rank sequence of a level — the per-node canonical-order image,
/// comparable across repos (cold repo vs loaded-snapshot repo).
std::vector<std::int32_t> rank_seq(const views::ViewRepo& repo,
                                   const std::vector<views::ViewId>& level) {
  std::vector<std::int32_t> out(level.size());
  for (std::size_t v = 0; v < level.size(); ++v) out[v] = repo.rank(level[v]);
  return out;
}

std::vector<Row> prep_cell(const FamilySpec& spec, FamilyState& st) {
  st.graph = spec.build();
  st.prep_repo = std::make_unique<views::ViewRepo>();
  views::ViewProfile p = views::compute_profile(
      st.graph, *st.prep_repo,
      views::ProfileOptions{.min_depth = spec.d0, .keep_history = false});
  st.anchor =
      views::make_anchor(st.graph, p.last_level(), p.class_counts);
  st.prep_records = st.prep_repo->size();
  return {Row{"prep", spec.key, st.graph.n(), p.computed_depth(),
              p.class_counts.back(), st.prep_records, "-"}};
}

std::vector<Row> save_cell(const FamilySpec& spec, FamilyState& st) {
  std::string path = snap_out_path(spec.key);
  views::save_snapshot(path, *st.prep_repo,
                       std::span<const views::SweepAnchor>(&st.anchor, 1));
  st.snap_bytes = std::filesystem::file_size(path);
  st.prep_repo.reset();  // the cold run must not warm any cache off it
  return {Row{"save", spec.key, st.prep_records, st.snap_bytes}};
}

std::vector<Row> cold_cell(const FamilySpec& spec, FamilyState& st) {
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(
      st.graph, repo,
      views::ProfileOptions{.min_depth = spec.d, .keep_history = false});
  st.cold_counts = p.class_counts;
  st.cold_level = p.last_level();
  st.cold_ranks = rank_seq(repo, st.cold_level);
  st.cold_feasible = p.feasible;
  st.cold_election = p.election_index;
  st.cold_argmin = views::argmin_view(repo, st.cold_level);
  st.cold_records = repo.size();
  return {Row{"cold", spec.key, st.graph.n(), p.computed_depth(),
              p.class_counts.back(), st.cold_records, "-"}};
}

std::vector<Row> load_copy_cell(const FamilySpec& spec, FamilyState& st) {
  views::LoadedSnapshot s =
      views::load_snapshot(snap_in_path(spec.key), views::LoadMode::Copy);
  return {Row{"load-copy", spec.key, s.repo->size(), st.snap_bytes}};
}

std::vector<Row> mmap_attach_cell(const FamilySpec& spec, FamilyState& st) {
  views::LoadedSnapshot s =
      views::load_snapshot(snap_in_path(spec.key), views::LoadMode::Mmap);
  return {Row{"mmap-attach", spec.key, s.repo->size(), st.snap_bytes}};
}

std::vector<Row> warm_cell(const FamilySpec& spec, FamilyState& st) {
  // The timed span is the whole warm path: mmap attach, anchor lookup
  // (including the fingerprint guard), quotient resume, extension rounds.
  // The O(n) byte-equality audit against the cold run lives in the next
  // cell so it cannot leak into this wall-clock — the headline number.
  st.warm_snap =
      views::load_snapshot(snap_in_path(spec.key), views::LoadMode::Mmap);
  const views::SweepAnchor* anchor =
      st.warm_snap.anchor_for(views::graph_fingerprint(st.graph));
  ANOLE_CHECK_MSG(anchor != nullptr, "no anchor for " << spec.key);
  st.warm_profile = views::compute_profile(
      st.graph, *st.warm_snap.repo,
      views::ProfileOptions{.min_depth = spec.d,
                            .keep_history = false,
                            .warm = anchor});
  return {Row{"warm", spec.key, st.graph.n(),
              st.warm_profile.computed_depth(),
              st.warm_profile.class_counts.back(),
              st.warm_snap.repo->size(), "-"}};
}

std::vector<Row> verify_cell(const FamilySpec& spec, FamilyState& st) {
  const views::ViewProfile& p = st.warm_profile;
  views::ViewRepo& repo = *st.warm_snap.repo;
  bool match = p.class_counts == st.cold_counts &&
               p.feasible == st.cold_feasible &&
               p.election_index == st.cold_election &&
               p.last_level() == st.cold_level &&
               rank_seq(repo, p.last_level()) == st.cold_ranks &&
               views::argmin_view(repo, p.last_level()) == st.cold_argmin &&
               repo.size() == st.cold_records;
  Row row{"verify", spec.key, st.graph.n(), p.computed_depth(),
          p.class_counts.back(), repo.size(),
          std::string(match ? "ok" : "MISMATCH")};
  st = FamilyState{};  // this family is done; release graph, levels, repo
  return {row};
}

runner::Scenario make_w1() {
  runner::Scenario s;
  s.name = "w1";
  s.summary =
      "snapshot lifecycle: save/load/mmap-attach timings and warm-start "
      "sweeps vs cold recomputation";
  s.reference = "DESIGN.md §13 (persistent ViewRepo snapshots)";
  // Cells time themselves through the runner's per-cell wall clock and
  // share per-family state in declaration order.
  s.deterministic = false;
  s.serial = true;
  s.tables.push_back(runner::TableSpec{
      "W1a",
      "Cold vs warm deep sweeps (keep_history=false). `prep` refines to "
      "D0 and anchors the stabilized partition; `cold` recomputes from "
      "scratch to D; `warm` mmap-attaches the saved snapshot and extends "
      "the anchored quotient to the same D; `verify` audits the warm run "
      "against the cold one — class counts, feasibility, election index, "
      "last-level ids, canonical ranks, argmin verdict and record count "
      "must all be equal (`match` = ok). Wall-clock per cell rides "
      "--bench-out; the headline ratio is cold/<fam> vs warm/<fam>.",
      {"op", "family", "n", "rounds", "classes", "records", "match"}});
  s.tables.push_back(runner::TableSpec{
      "W1b",
      "Snapshot lifecycle operations: blob save, full-copy load (body "
      "checksum verified) and mmap attach (header-verified, "
      "copy-on-write child-pointer patch only). Records and file bytes "
      "are deterministic; the op wall-clock rides --bench-out and is the "
      "load-scales-with-mapping evidence.",
      {"op", "family", "records", "bytes"}});

  for (const FamilySpec& spec : kFamilies) {
    auto st = std::make_shared<FamilyState>();
    s.add_cell("prep/" + spec.key, 0,
               [&spec, st] { return prep_cell(spec, *st); });
    s.add_cell("save/" + spec.key, 1,
               [&spec, st] { return save_cell(spec, *st); });
    s.add_cell("cold/" + spec.key, 0,
               [&spec, st] { return cold_cell(spec, *st); });
    s.add_cell("load-copy/" + spec.key, 1,
               [&spec, st] { return load_copy_cell(spec, *st); });
    s.add_cell("mmap-attach/" + spec.key, 1,
               [&spec, st] { return mmap_attach_cell(spec, *st); });
    s.add_cell("warm/" + spec.key, 0,
               [&spec, st] { return warm_cell(spec, *st); });
    s.add_cell("verify/" + spec.key, 0,
               [&spec, st] { return verify_cell(spec, *st); });
  }
  return s;
}

ANOLE_REGISTER_SCENARIO("w1", make_w1);

}  // namespace
