#include "runner/sinks.hpp"

#include <ostream>
#include <stdexcept>

#include "util/table.hpp"

namespace anole::runner {

namespace {

/// Rows of `table_index`, flattened over cells in declaration order.
template <typename Fn>
void for_each_table_row(const ScenarioOutcome& outcome,
                        std::size_t table_index, Fn&& fn) {
  for (const CellOutcome& cell : outcome.cells) {
    if (cell.table != table_index || !cell.ok()) continue;
    for (const Row& row : cell.rows) fn(cell, row);
  }
}

}  // namespace

void TextSink::emit(const ScenarioOutcome& outcome, std::ostream& os) const {
  os << "scenario " << outcome.name;
  if (!outcome.reference.empty()) os << " (" << outcome.reference << ")";
  os << '\n' << '\n';
  for (std::size_t t = 0; t < outcome.tables.size(); ++t) {
    const TableSpec& spec = outcome.tables[t];
    util::Table table(spec.columns);
    for_each_table_row(outcome, t,
                       [&table](const CellOutcome&, const Row& row) {
                         std::vector<std::string> cells;
                         cells.reserve(row.size());
                         for (const Value& v : row) cells.push_back(v.text());
                         table.add_row(std::move(cells));
                       });
    table.print(os, spec.id + " — " + spec.caption);
  }
  if (outcome.failures() > 0) {
    util::Table table({"cell", "error"});
    for (const CellOutcome& cell : outcome.cells)
      if (!cell.ok()) table.add_row({cell.label, cell.error});
    table.print(os, "FAILED cells (" + std::to_string(outcome.failures()) +
                        " of " + std::to_string(outcome.cells.size()) + "):");
  }
  if (options_.timing) {
    util::Table table({"cell", "wall ms"});
    for (const CellOutcome& cell : outcome.cells)
      table.add_row({cell.label, format_ms(cell.wall_ms)});
    table.print(os, "per-cell wall clock (total " +
                        format_ms(outcome.wall_ms) + " ms):");
  }
}

void CsvSink::emit(const ScenarioOutcome& outcome, std::ostream& os) const {
  for (std::size_t t = 0; t < outcome.tables.size(); ++t) {
    const TableSpec& spec = outcome.tables[t];
    std::vector<std::string> columns{"table", "cell"};
    columns.insert(columns.end(), spec.columns.begin(), spec.columns.end());
    if (options_.timing) columns.push_back("wall_ms");
    util::Table table(std::move(columns));
    for_each_table_row(
        outcome, t, [&](const CellOutcome& cell, const Row& row) {
          std::vector<std::string> cells{spec.id, cell.label};
          for (const Value& v : row) cells.push_back(v.text());
          if (options_.timing) cells.push_back(format_ms(cell.wall_ms));
          table.add_row(std::move(cells));
        });
    table.print_csv(os);
    if (t + 1 < outcome.tables.size()) os << '\n';
  }
  if (outcome.failures() > 0) {
    os << '\n';
    util::Table table({"failed_cell", "error"});
    for (const CellOutcome& cell : outcome.cells)
      if (!cell.ok()) table.add_row({cell.label, cell.error});
    table.print_csv(os);
  }
}

void JsonSink::emit(const ScenarioOutcome& outcome, std::ostream& os) const {
  os << "{\n";
  os << "  \"scenario\": \"" << json_escape(outcome.name) << "\",\n";
  os << "  \"reference\": \"" << json_escape(outcome.reference) << "\",\n";
  os << "  \"deterministic\": " << (outcome.deterministic ? "true" : "false")
     << ",\n";
  if (options_.timing)
    os << "  \"wall_ms\": " << format_ms(outcome.wall_ms) << ",\n";
  os << "  \"tables\": [";
  for (std::size_t t = 0; t < outcome.tables.size(); ++t) {
    const TableSpec& spec = outcome.tables[t];
    os << (t == 0 ? "\n" : ",\n");
    os << "    {\n";
    os << "      \"id\": \"" << json_escape(spec.id) << "\",\n";
    os << "      \"caption\": \"" << json_escape(spec.caption) << "\",\n";
    os << "      \"columns\": [";
    for (std::size_t c = 0; c < spec.columns.size(); ++c)
      os << (c ? ", " : "") << '"' << json_escape(spec.columns[c]) << '"';
    os << "],\n";
    os << "      \"rows\": [";
    bool first_row = true;
    for_each_table_row(
        outcome, t, [&](const CellOutcome& cell, const Row& row) {
          os << (first_row ? "\n" : ",\n");
          first_row = false;
          os << "        {\"cell\": \"" << json_escape(cell.label)
             << "\", \"values\": {";
          for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c ? ", " : "") << '"' << json_escape(spec.columns[c])
               << "\": " << row[c].json();
          }
          os << "}";
          if (options_.timing) os << ", \"wall_ms\": " << format_ms(cell.wall_ms);
          os << "}";
        });
    os << (first_row ? "]\n" : "\n      ]\n");
    os << "    }";
  }
  os << (outcome.tables.empty() ? "],\n" : "\n  ],\n");
  os << "  \"failures\": [";
  bool first_failure = true;
  for (const CellOutcome& cell : outcome.cells) {
    if (cell.ok()) continue;
    os << (first_failure ? "\n" : ",\n");
    first_failure = false;
    os << "    {\"cell\": \"" << json_escape(cell.label) << "\", \"error\": \""
       << json_escape(cell.error) << "\"}";
  }
  os << (first_failure ? "]\n" : "\n  ]\n");
  os << "}\n";
}

std::unique_ptr<ResultSink> make_sink(const std::string& format,
                                      SinkOptions options) {
  if (format == "text") return std::make_unique<TextSink>(options);
  if (format == "csv") return std::make_unique<CsvSink>(options);
  if (format == "json") return std::make_unique<JsonSink>(options);
  throw std::invalid_argument("unknown format: " + format +
                              " (expected text, csv or json)");
}

}  // namespace anole::runner
