#pragma once
// Structured output sinks for scenario outcomes.
//
// Three renderings of the same ScenarioOutcome:
//   text — the classic aligned tables (util::Table), one per TableSpec;
//   csv  — one CSV block per table with leading (table, cell) columns,
//          RFC-4180 escaping via util::Table::print_csv;
//   json — a single object locked down by the golden test in
//          tests/sinks_test.cpp (see DESIGN.md for the schema).
//
// Wall-clock fields are emitted only when SinkOptions::timing is set: they
// are the one run-to-run varying part of an outcome, and the default
// output must be byte-identical across runs and thread counts.

#include <iosfwd>
#include <memory>
#include <string>

#include "runner/runner.hpp"

namespace anole::runner {

struct SinkOptions {
  bool timing = false;  ///< include per-cell / total wall-clock milliseconds
};

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void emit(const ScenarioOutcome& outcome, std::ostream& os) const = 0;
};

class TextSink final : public ResultSink {
 public:
  explicit TextSink(SinkOptions options = {}) : options_(options) {}
  void emit(const ScenarioOutcome& outcome, std::ostream& os) const override;

 private:
  SinkOptions options_;
};

class CsvSink final : public ResultSink {
 public:
  explicit CsvSink(SinkOptions options = {}) : options_(options) {}
  void emit(const ScenarioOutcome& outcome, std::ostream& os) const override;

 private:
  SinkOptions options_;
};

class JsonSink final : public ResultSink {
 public:
  explicit JsonSink(SinkOptions options = {}) : options_(options) {}
  void emit(const ScenarioOutcome& outcome, std::ostream& os) const override;

 private:
  SinkOptions options_;
};

/// Factory for the CLI: format is "text", "csv" or "json"; throws
/// std::invalid_argument otherwise.
[[nodiscard]] std::unique_ptr<ResultSink> make_sink(const std::string& format,
                                                    SinkOptions options = {});

}  // namespace anole::runner
