#include "service/service.hpp"

#include <algorithm>
#include <utility>

#include "coding/blob.hpp"
#include "views/snapshot.hpp"

namespace anole::service {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Anchor-replay min-time verdict (DESIGN.md §14). Conclusive cases are
/// exact: class_counts[t] == n pins phi (all views distinct first at t);
/// a stabilized final count < n is a fixed point that never reaches n
/// (infeasible). A non-stabilized anchor below n is inconclusive.
std::optional<std::pair<bool, int>> anchor_min_time(
    const views::SweepAnchor& a) {
  const std::size_t n = a.class_of.size();
  for (std::size_t t = 0; t < a.class_counts.size(); ++t) {
    if (a.class_counts[t] == n)
      return std::make_pair(true, static_cast<int>(t));
  }
  if (a.stabilized()) return std::make_pair(false, -1);
  return std::nullopt;
}

/// Anchor-replay compare verdict for B^t(u) =? B^t(v), D = anchor depth.
/// Equal classes at D: exact "equal" for t <= D (equal-at-deeper implies
/// equal-at-shallower) and, once stabilized, for every t (fixed point).
/// Different classes at D: differ-at-deeper does NOT transfer down, but
/// equal consecutive counts pin the partition — with s the first depth
/// whose count equals count(D), the partition is identical on [s, D] and
/// (by refinement) differs forever past D, so "differ" is exact for
/// t >= s. Everything else is inconclusive.
std::optional<bool> anchor_compare(const views::SweepAnchor& a,
                                   portgraph::NodeId u, portgraph::NodeId v,
                                   int t) {
  const std::size_t n = a.class_of.size();
  if (u < 0 || v < 0 || static_cast<std::size_t>(u) >= n ||
      static_cast<std::size_t>(v) >= n || t < 0) {
    return std::nullopt;
  }
  const int depth = a.depth();
  const bool same = a.class_of[static_cast<std::size_t>(u)] ==
                    a.class_of[static_cast<std::size_t>(v)];
  if (same) {
    if (t <= depth || a.stabilized()) return true;
    return std::nullopt;
  }
  const std::size_t deepest = a.class_counts.back();
  int s = depth;
  while (s > 0 && a.class_counts[static_cast<std::size_t>(s) - 1] == deepest)
    --s;
  if (t >= s) return false;
  return std::nullopt;
}

}  // namespace

const char* query_kind_name(QueryKind kind) {
  switch (kind) {
    case QueryKind::kElect:
      return "elect";
    case QueryKind::kMinTime:
      return "min_time";
    case QueryKind::kCompare:
      return "compare";
    case QueryKind::kAdvice:
      return "advice";
  }
  return "unknown";
}

ClassCounters ServiceStats::totals() const {
  ClassCounters sum;
  for (const ClassCounters& c : by_class) {
    sum.enqueued += c.enqueued;
    sum.shed += c.shed;
    sum.exact += c.exact;
    sum.degraded += c.degraded;
    sum.timeout += c.timeout;
    sum.failed += c.failed;
  }
  return sum;
}

Service::Service(ServiceOptions opts) : opts_(std::move(opts)) {
  if (opts_.pool != nullptr) {
    pool_ = opts_.pool;
  } else {
    owned_pool_ =
        std::make_unique<util::ThreadPool>(std::max<std::size_t>(
            1, opts_.workers));
    pool_ = owned_pool_.get();
  }
  if (!opts_.snapshot_path.empty()) {
    try {
      snapshot_ = std::make_unique<views::LoadedSnapshot>(
          // Copy mode verifies the FULL body checksum, so a corrupted
          // snapshot reliably throws here instead of surfacing later as
          // a wrong record — the precondition for "downgrade, never a
          // wrong answer".
          views::load_snapshot(opts_.snapshot_path, views::LoadMode::Copy));
      repo_ = snapshot_->repo.get();
    } catch (const std::exception& e) {
      snapshot_.reset();
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.cold_downgrades;
      }
      if (opts_.log) {
        opts_.log(std::string("snapshot downgrade: '") + opts_.snapshot_path +
                  "' unusable (" + e.what() + "); starting cold");
      }
    }
  }
  if (repo_ == nullptr) {
    cold_repo_ = std::make_unique<views::ViewRepo>();
    repo_ = cold_repo_.get();
  }
}

Service::~Service() {
  drain();
  // An owned pool joins in its destructor; an external pool has no
  // remaining tasks from us past drain().
}

std::size_t Service::workers() const { return pool_->size(); }

std::size_t Service::add_graph(const portgraph::PortGraph& g) {
  auto entry = std::make_unique<GraphEntry>();
  entry->g = &g;
  entry->fingerprint = views::graph_fingerprint(g);
  entry->anchor =
      snapshot_ != nullptr ? snapshot_->anchor_for(entry->fingerprint)
                           : nullptr;
  graphs_.push_back(std::move(entry));
  return graphs_.size() - 1;
}

double Service::retry_hint_locked() const {
  const std::uint64_t backlog = admitted_ - finished_;
  const double per_worker =
      static_cast<double>(backlog + 1) / static_cast<double>(pool_->size());
  return std::max(1.0, ewma_serve_ms_ * per_worker);
}

std::shared_ptr<PendingQuery> Service::submit(const Query& q) {
  double deadline_ms =
      q.deadline_ms > 0.0 ? q.deadline_ms : opts_.default_deadline_ms;
  Clock::time_point deadline =
      deadline_ms > 0.0
          ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   deadline_ms))
          : Clock::time_point::max();
  auto pending = std::make_shared<PendingQuery>(q, deadline);
  pending->submitted = Clock::now();

  const std::size_t klass =
      static_cast<std::size_t>(q.kind) < kQueryKinds
          ? static_cast<std::size_t>(q.kind)
          : static_cast<std::size_t>(QueryKind::kMinTime);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t in_flight = admitted_ - finished_;
    if (in_flight >= opts_.max_queue) {
      // Admission control: shed synchronously, never enqueue past the
      // bound. The hint is the expected wait were the client admitted
      // right now — backlog times the serve-time EWMA over the workers.
      ++stats_.by_class[klass].shed;
      pending->answer.status = AnswerStatus::kShed;
      pending->answer.retry_after_ms = retry_hint_locked();
      pending->answer.serve_ms = 0.0;
      pending->state.store(1, std::memory_order_release);
      pending->done = true;
      return pending;
    }
    ++admitted_;
    ++stats_.by_class[klass].enqueued;
    stats_.max_in_flight =
        std::max(stats_.max_in_flight, static_cast<std::size_t>(in_flight + 1));
  }
  // Plain submit, NOT the token-skipping overload: an admitted query must
  // always produce an answer (degraded or timeout), so its task has to
  // run even when the deadline lapses in the queue.
  pool_->submit([this, pending] { execute(pending); });
  return pending;
}

void Service::wait(PendingQuery& pending) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&pending] { return pending.done; });
}

void Service::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return finished_ == admitted_; });
}

Answer Service::ask(const Query& q) {
  std::shared_ptr<PendingQuery> pending = submit(q);
  wait(*pending);
  return pending->answer;
}

void Service::finish(const std::shared_ptr<PendingQuery>& pending,
                     Answer answer) {
  answer.serve_ms = ms_since(pending->submitted);
  const std::size_t klass =
      static_cast<std::size_t>(pending->query.kind) < kQueryKinds
          ? static_cast<std::size_t>(pending->query.kind)
          : static_cast<std::size_t>(QueryKind::kMinTime);
  std::lock_guard<std::mutex> lock(mu_);
  ClassCounters& c = stats_.by_class[klass];
  switch (answer.status) {
    case AnswerStatus::kExact:
      ++c.exact;
      break;
    case AnswerStatus::kDegraded:
      ++c.degraded;
      break;
    case AnswerStatus::kTimeout:
      ++c.timeout;
      answer.retry_after_ms = retry_hint_locked();
      break;
    case AnswerStatus::kFailed:
      ++c.failed;
      break;
    case AnswerStatus::kShed:
      break;  // unreachable: shed queries never reach execute()
  }
  if (answer.status == AnswerStatus::kExact ||
      answer.status == AnswerStatus::kDegraded) {
    constexpr double kAlpha = 0.2;
    ewma_serve_ms_ =
        (1.0 - kAlpha) * ewma_serve_ms_ + kAlpha * answer.serve_ms;
  }
  pending->answer = std::move(answer);
  ++finished_;
  pending->done = true;
  cv_done_.notify_all();
}

void Service::execute(const std::shared_ptr<PendingQuery>& pending) {
  int expected = 0;
  if (!pending->state.compare_exchange_strong(expected, 1,
                                              std::memory_order_acq_rel)) {
    return;  // already finalized (defensive; shed handles never dispatch)
  }
  const Query& q = pending->query;
  Answer answer;
  if (q.graph >= graphs_.size()) {
    answer.status = AnswerStatus::kFailed;
    answer.error = "unknown graph index " + std::to_string(q.graph);
    finish(pending, std::move(answer));
    return;
  }
  GraphEntry& entry = *graphs_[q.graph];
  // Deadline triage. A query that expired in the queue skips the exact
  // ladder entirely; one that expires mid-compute lands here through
  // CancelledError. Either way the degraded rungs — memoized answers and
  // stabilized snapshot anchors, all provably equal to the exact
  // recompute — are the last chance before an honest timeout.
  bool pressed = pending->token.expired();
  if (!pressed) {
    try {
      answer = serve(entry, q, pending->token);
      finish(pending, std::move(answer));
      return;
    } catch (const util::CancelledError&) {
      pressed = true;
    } catch (const std::exception& e) {
      answer.status = AnswerStatus::kFailed;
      answer.error = e.what();
      finish(pending, std::move(answer));
      return;
    }
  }
  if (pressed) {
    try {
      std::optional<Answer> degraded = serve_degraded(entry, q);
      if (degraded.has_value()) {
        answer = std::move(*degraded);
        answer.status = AnswerStatus::kDegraded;
      } else {
        answer = Answer{};
        answer.status = AnswerStatus::kTimeout;
      }
    } catch (const std::exception& e) {
      answer = Answer{};
      answer.status = AnswerStatus::kFailed;
      answer.error = e.what();
    }
  }
  finish(pending, std::move(answer));
}

const views::ViewProfile& Service::ensure_profile(
    GraphEntry& entry, const util::CancelToken* token) {
  if (!entry.profile.has_value()) {
    views::ProfileOptions popts;
    // Full history: the compare/advice rungs index arbitrary levels, the
    // min-time program builder walks them, and repair_profile's
    // incremental path requires it. (Anchors can't warm a history
    // profile — warm starts are keep_history = false — so the anchor
    // serves the replay rungs instead.)
    popts.min_depth = 1;
    popts.keep_history = true;
    popts.cancel = token;
    entry.profile = views::compute_profile(*entry.g, *repo_, popts);
  }
  if (!entry.min_time.has_value()) {
    entry.min_time = MinTimeInfo{entry.profile->feasible,
                                 entry.profile->election_index};
  }
  return *entry.profile;
}

Answer Service::serve(GraphEntry& entry, const Query& q,
                      const util::CancelToken& token) {
  std::unique_lock<std::mutex> lock(entry.mu);
  Answer answer;
  answer.status = AnswerStatus::kExact;
  switch (q.kind) {
    case QueryKind::kMinTime: {
      if (!entry.min_time.has_value() && entry.anchor != nullptr) {
        if (auto replay = anchor_min_time(*entry.anchor)) {
          entry.min_time = MinTimeInfo{replay->first, replay->second};
          answer.rung = AnswerRung::kAnchor;
        }
      }
      if (entry.min_time.has_value()) {
        if (answer.rung != AnswerRung::kAnchor) answer.rung = AnswerRung::kMemo;
      } else {
        ensure_profile(entry, &token);
        answer.rung = AnswerRung::kComputed;
      }
      answer.feasible = entry.min_time->feasible;
      answer.phi = entry.min_time->phi;
      return answer;
    }
    case QueryKind::kCompare: {
      const std::size_t n = static_cast<std::size_t>(entry.g->n());
      if (q.u < 0 || q.v < 0 || static_cast<std::size_t>(q.u) >= n ||
          static_cast<std::size_t>(q.v) >= n || q.depth < 0) {
        answer.status = AnswerStatus::kFailed;
        answer.error = "compare: node or depth out of range";
        return answer;
      }
      if (!entry.profile.has_value() && entry.anchor != nullptr) {
        if (auto verdict = anchor_compare(*entry.anchor, q.u, q.v, q.depth)) {
          answer.rung = AnswerRung::kAnchor;
          answer.equal = *verdict;
          return answer;
        }
      }
      const views::ViewProfile& profile = ensure_profile(entry, &token);
      answer.rung = AnswerRung::kComputed;
      const int cd = profile.computed_depth();
      // The profile is computed until the partition stabilizes or all
      // views are distinct, so the verdict at cd transfers to every
      // deeper depth: equal classes stay merged past a fixed point, and
      // distinct views never re-merge under refinement.
      const int t = std::min(q.depth, cd);
      answer.equal = profile.view(t, q.u) == profile.view(t, q.v);
      return answer;
    }
    case QueryKind::kAdvice: {
      const std::size_t n = static_cast<std::size_t>(entry.g->n());
      if (q.u < 0 || static_cast<std::size_t>(q.u) >= n || q.depth < 0) {
        answer.status = AnswerStatus::kFailed;
        answer.error = "advice: node or depth out of range";
        return answer;
      }
      if (!entry.profile.has_value() && entry.anchor != nullptr &&
          q.depth <= entry.anchor->depth()) {
        const views::SweepAnchor& a = *entry.anchor;
        views::ViewId deep =
            a.class_ids[a.class_of[static_cast<std::size_t>(q.u)]];
        answer.rung = AnswerRung::kAnchor;
        answer.view_bits =
            repo_->serialized_size_bits(repo_->truncate(deep, q.depth));
        return answer;
      }
      const views::ViewProfile& profile = ensure_profile(entry, &token);
      if (q.depth > profile.computed_depth()) {
        views::extend_profile(*entry.g, *repo_, *entry.profile, q.depth,
                              /*pool=*/nullptr, &token);
      }
      answer.rung = AnswerRung::kComputed;
      answer.view_bits =
          repo_->serialized_size_bits(entry.profile->view(q.depth, q.u));
      return answer;
    }
    case QueryKind::kElect: {
      if (!entry.elect.has_value()) {
        // An anchor that proves infeasibility answers elect without ever
        // computing the profile (and memoizes as min_time for later).
        if (!entry.min_time.has_value() && entry.anchor != nullptr) {
          if (auto replay = anchor_min_time(*entry.anchor);
              replay.has_value() && !replay->first) {
            entry.min_time = MinTimeInfo{false, -1};
            answer.rung = AnswerRung::kAnchor;
            answer.feasible = false;
            answer.leader = -1;
            return answer;
          }
        }
        const views::ViewProfile& profile = ensure_profile(entry, &token);
        if (!profile.feasible) {
          // Exact answer, not an error: no algorithm can elect here.
          answer.rung = AnswerRung::kComputed;
          answer.feasible = false;
          answer.leader = -1;
          return answer;
        }
        election::ElectionContext ctx(*entry.g, *repo_, profile);
        election::ElectionRun run =
            election::run_min_time(ctx, /*meter_messages=*/false, &token);
        if (!run.verdict.ok) {
          answer.status = AnswerStatus::kFailed;
          answer.error = "elect verification failed: " + run.verdict.error;
          return answer;
        }
        ElectMemo memo;
        memo.leader = run.verdict.leader;
        memo.rounds = run.metrics.rounds;
        memo.advice_bits = run.advice_bits;
        memo.metrics =
            std::make_shared<sim::RunMetrics>(std::move(run.metrics));
        entry.elect = std::move(memo);
        answer.rung = AnswerRung::kComputed;
      } else {
        answer.rung = AnswerRung::kMemo;
      }
      answer.feasible = true;
      answer.phi = entry.min_time.has_value() ? entry.min_time->phi : -1;
      answer.leader = entry.elect->leader;
      answer.rounds = entry.elect->rounds;
      answer.advice_bits = entry.elect->advice_bits;
      answer.within_budget =
          q.budget_bits == 0 || entry.elect->advice_bits <= q.budget_bits;
      answer.metrics = entry.elect->metrics;
      return answer;
    }
  }
  answer.status = AnswerStatus::kFailed;
  answer.error = "unknown query kind";
  return answer;
}

std::optional<Answer> Service::serve_degraded(GraphEntry& entry,
                                              const Query& q) {
  Answer answer;
  answer.status = AnswerStatus::kExact;  // caller downgrades to kDegraded
  // try_lock only: a pressed query must not convoy behind a slow exact
  // compute on the same graph. On failure the lock-free anchor rungs are
  // the only option (the anchor pointer is stable while queries are in
  // flight — repair_graph requires a quiescent graph).
  std::unique_lock<std::mutex> lock(entry.mu, std::try_to_lock);
  switch (q.kind) {
    case QueryKind::kMinTime: {
      if (lock.owns_lock() && entry.min_time.has_value()) {
        answer.rung = AnswerRung::kMemo;
        answer.feasible = entry.min_time->feasible;
        answer.phi = entry.min_time->phi;
        return answer;
      }
      if (entry.anchor != nullptr) {
        if (auto replay = anchor_min_time(*entry.anchor)) {
          answer.rung = AnswerRung::kAnchor;
          answer.feasible = replay->first;
          answer.phi = replay->second;
          return answer;
        }
      }
      return std::nullopt;
    }
    case QueryKind::kCompare: {
      if (lock.owns_lock() && entry.profile.has_value()) {
        const views::ViewProfile& profile = *entry.profile;
        const std::size_t n = static_cast<std::size_t>(entry.g->n());
        if (q.u >= 0 && q.v >= 0 && static_cast<std::size_t>(q.u) < n &&
            static_cast<std::size_t>(q.v) < n && q.depth >= 0) {
          const int t = std::min(q.depth, profile.computed_depth());
          answer.rung = AnswerRung::kMemo;
          answer.equal = profile.view(t, q.u) == profile.view(t, q.v);
          return answer;
        }
        return std::nullopt;
      }
      if (entry.anchor != nullptr) {
        if (auto verdict = anchor_compare(*entry.anchor, q.u, q.v, q.depth)) {
          answer.rung = AnswerRung::kAnchor;
          answer.equal = *verdict;
          return answer;
        }
      }
      return std::nullopt;
    }
    case QueryKind::kAdvice: {
      if (lock.owns_lock() && entry.profile.has_value() &&
          q.depth <= entry.profile->computed_depth() && q.u >= 0 &&
          static_cast<std::size_t>(q.u) <
              static_cast<std::size_t>(entry.g->n()) &&
          q.depth >= 0) {
        answer.rung = AnswerRung::kMemo;
        answer.view_bits =
            repo_->serialized_size_bits(entry.profile->view(q.depth, q.u));
        return answer;
      }
      if (entry.anchor != nullptr && q.depth >= 0 &&
          q.depth <= entry.anchor->depth() && q.u >= 0 &&
          static_cast<std::size_t>(q.u) < entry.anchor->class_of.size()) {
        const views::SweepAnchor& a = *entry.anchor;
        views::ViewId deep =
            a.class_ids[a.class_of[static_cast<std::size_t>(q.u)]];
        answer.rung = AnswerRung::kAnchor;
        answer.view_bits =
            repo_->serialized_size_bits(repo_->truncate(deep, q.depth));
        return answer;
      }
      return std::nullopt;
    }
    case QueryKind::kElect: {
      if (lock.owns_lock()) {
        if (entry.elect.has_value()) {
          answer.rung = AnswerRung::kMemo;
          answer.feasible = true;
          answer.phi = entry.min_time.has_value() ? entry.min_time->phi : -1;
          answer.leader = entry.elect->leader;
          answer.rounds = entry.elect->rounds;
          answer.advice_bits = entry.elect->advice_bits;
          answer.within_budget = q.budget_bits == 0 ||
                                 entry.elect->advice_bits <= q.budget_bits;
          answer.metrics = entry.elect->metrics;
          return answer;
        }
        if (entry.min_time.has_value() && !entry.min_time->feasible) {
          answer.rung = AnswerRung::kMemo;
          answer.feasible = false;
          answer.leader = -1;
          return answer;
        }
      }
      // Infeasibility is the only elect verdict an anchor alone settles:
      // a memoized leader needs the full Theorem 3.1 run.
      if (entry.anchor != nullptr) {
        if (auto replay = anchor_min_time(*entry.anchor);
            replay.has_value() && !replay->first) {
          answer.rung = AnswerRung::kAnchor;
          answer.feasible = false;
          answer.leader = -1;
          return answer;
        }
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

views::RepairStats Service::repair_graph(
    std::size_t index, std::span<const portgraph::NodeId> dirty) {
  GraphEntry& entry = *graphs_.at(index);
  std::lock_guard<std::mutex> lock(entry.mu);
  // The topology changed under us: refresh the fingerprint so stale
  // snapshot anchors stop matching (they describe the pre-edit graph).
  entry.fingerprint = views::graph_fingerprint(*entry.g);
  entry.anchor = snapshot_ != nullptr
                     ? snapshot_->anchor_for(entry.fingerprint)
                     : nullptr;
  entry.elect.reset();  // the leader may change under a rewire
  views::RepairStats stats;
  if (entry.profile.has_value()) {
    stats = views::repair_profile(*entry.g, *repo_, *entry.profile, dirty);
    entry.min_time = MinTimeInfo{entry.profile->feasible,
                                 entry.profile->election_index};
  } else {
    entry.min_time.reset();  // nothing cached; next query recomputes
  }
  return stats;
}

void Service::invalidate_graph(std::size_t index) {
  GraphEntry& entry = *graphs_.at(index);
  std::lock_guard<std::mutex> lock(entry.mu);
  entry.profile.reset();
  entry.min_time.reset();
  entry.elect.reset();
  entry.fingerprint = views::graph_fingerprint(*entry.g);
  entry.anchor = snapshot_ != nullptr
                     ? snapshot_->anchor_for(entry.fingerprint)
                     : nullptr;
}

ServiceStats Service::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace anole::service
