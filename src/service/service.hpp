#pragma once
// Hardened election-index query service (DESIGN.md §14).
//
// A Service owns one (optionally snapshot-warm-started) shared ViewRepo
// plus per-graph cached state — the view profile / ElectionContext, the
// memoized min-time and elect answers — and answers four query classes
// over a registered graph corpus on a util::ThreadPool:
//
//   kElect     elect with an advice budget (Theorem 3.1 pipeline)
//   kMinTime   feasibility + election index phi
//   kCompare   are B^t(u) and B^t(v) equal?
//   kAdvice    serialized size of B^t(u) (advice truncation cost)
//
// Three robustness layers wrap the computation:
//
//   1. Deadlines/cancellation — every query carries a util::CancelToken
//      with its deadline, threaded through compute_profile /
//      run_full_info / Refiner advances and polled at level/round
//      granularity. An expired query aborts mid-sweep WITHOUT poisoning
//      the shared repo: hash-consing keeps every completed intern a
//      valid record, so the next identical query replays them as index
//      hits with byte-identical answers.
//
//   2. Admission control — at most `max_queue` admitted-but-unfinished
//      queries; everything beyond is shed at submit time with a
//      Retry-After-style hint derived from the current backlog and an
//      EWMA of recent serve times. Per-class enqueue/shed/exact/
//      degraded/timeout/failure counters are exported.
//
//   3. Degradation ladder — a deadline-pressed query falls back from
//      exact computation to the deepest cached/snapshot source that can
//      still answer *exactly*: the memoized answer for elect, the
//      stabilized snapshot-anchor partition for min-time/compare/advice.
//      Every rung is provably equal to the exact recompute (fixed-point
//      and refinement-monotonicity arguments — DESIGN.md §14), so a
//      degraded answer is never a wrong answer; a query no rung can
//      serve times out instead. A corrupted or missing snapshot at
//      construction degrades to a cold recompute with a logged
//      downgrade, never an error surfaced as a wrong answer.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "election/harness.hpp"
#include "portgraph/port_graph.hpp"
#include "sim/engine.hpp"
#include "util/cancel.hpp"
#include "util/thread_pool.hpp"
#include "views/repair.hpp"
#include "views/snapshot.hpp"

namespace anole::service {

enum class QueryKind : int {
  kElect = 0,
  kMinTime = 1,
  kCompare = 2,
  kAdvice = 3,
};
inline constexpr std::size_t kQueryKinds = 4;
[[nodiscard]] const char* query_kind_name(QueryKind kind);

struct Query {
  QueryKind kind = QueryKind::kMinTime;
  std::size_t graph = 0;        ///< index from Service::add_graph
  portgraph::NodeId u = 0;      ///< kCompare / kAdvice subject
  portgraph::NodeId v = 0;      ///< kCompare second node
  int depth = 0;                ///< kCompare / kAdvice depth t
  std::size_t budget_bits = 0;  ///< kElect advice budget; 0 = unlimited
  /// Per-query deadline; <= 0 means the service default, and a service
  /// default of 0 means no deadline at all.
  double deadline_ms = 0.0;
};

enum class AnswerStatus : int {
  kExact = 0,     ///< served, full-fidelity path
  kDegraded = 1,  ///< served from a cached/snapshot rung under pressure
  kShed = 2,      ///< rejected at admission (queue bound)
  kTimeout = 3,   ///< deadline expired and no rung could answer
  kFailed = 4,    ///< computation error (answer.error says what)
};

/// Which source produced a served answer (DESIGN.md §14 ladder).
enum class AnswerRung : int {
  kComputed = 0,  ///< fresh/extended profile or simulation
  kMemo = 1,      ///< per-graph memoized exact answer
  kAnchor = 2,    ///< stabilized snapshot anchor partition
};

struct Answer {
  AnswerStatus status = AnswerStatus::kFailed;
  AnswerRung rung = AnswerRung::kComputed;
  // kMinTime / kElect:
  bool feasible = false;
  int phi = -1;
  // kElect:
  portgraph::NodeId leader = -1;
  int rounds = -1;
  std::size_t advice_bits = 0;
  bool within_budget = false;
  /// Simulation metrics of the elect run that produced this answer
  /// (shared with the memo, so degraded elect answers carry them too);
  /// null for other kinds. Fault-crossover cells feed outputs +
  /// decision_round to election::verify_safety_under_faults.
  std::shared_ptr<const sim::RunMetrics> metrics;
  // kCompare:
  bool equal = false;
  // kAdvice:
  std::size_t view_bits = 0;
  /// kShed: suggested client backoff before retrying.
  double retry_after_ms = 0.0;
  /// Wall time from submit to answer, for the driver's latency stats.
  double serve_ms = 0.0;
  std::string error;  ///< non-empty iff status == kFailed
};

/// One in-flight query: the handle submit() returns. The answer is valid
/// once the service marked the query done (wait()/drain()). cancel()
/// requests cooperative cancellation — the query will still be answered,
/// via the degraded ladder or a timeout.
class PendingQuery {
 public:
  PendingQuery(const Query& q, util::CancelToken::Clock::time_point deadline)
      : query(q), token(deadline) {}

  void cancel() noexcept { token.cancel(); }

  Query query;
  util::CancelToken token;
  Answer answer;
  /// 0 = queued, 1 = claimed by a worker (or finalized). The claim CAS
  /// guarantees exactly one producer for `answer`.
  std::atomic<int> state{0};
  bool done = false;  ///< guarded by the service mutex
  std::chrono::steady_clock::time_point submitted{};
};

struct ClassCounters {
  std::uint64_t enqueued = 0;  ///< admitted past the queue bound
  std::uint64_t shed = 0;
  std::uint64_t exact = 0;
  std::uint64_t degraded = 0;
  std::uint64_t timeout = 0;
  std::uint64_t failed = 0;
};

struct ServiceStats {
  ClassCounters by_class[kQueryKinds];
  std::size_t max_in_flight = 0;   ///< high-water mark vs max_queue
  std::uint64_t cold_downgrades = 0;  ///< snapshot failures absorbed

  [[nodiscard]] ClassCounters totals() const;
};

struct ServiceOptions {
  /// Admission bound: admitted-but-unfinished queries (queued + running).
  std::size_t max_queue = 64;
  /// Deadline applied when Query::deadline_ms <= 0; 0 disables.
  double default_deadline_ms = 0.0;
  /// Snapshot to warm-start the repo from; "" starts cold. Load failures
  /// (missing file, coding::BlobError) degrade to cold with a logged
  /// downgrade — never a construction failure.
  std::string snapshot_path;
  /// Pool the query tasks run on. nullptr: the service owns a pool of
  /// `workers` threads. An external pool must outlive the service and
  /// must not be wait_idle()'d by others while queries are in flight.
  util::ThreadPool* pool = nullptr;
  std::size_t workers = 2;
  /// Downgrade/diagnostic log sink; default drops messages.
  std::function<void(const std::string&)> log;
};

class Service {
 public:
  explicit Service(ServiceOptions opts = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Registers a corpus graph; returns the index queries address it by.
  /// The graph must outlive the service. Snapshot anchors are matched by
  /// structural fingerprint at registration time.
  std::size_t add_graph(const portgraph::PortGraph& g);

  /// Admission + dispatch. Never blocks on computation: a query past the
  /// queue bound is shed synchronously (the returned handle is already
  /// done, status kShed with a retry hint); an admitted query is
  /// executed on the pool.
  std::shared_ptr<PendingQuery> submit(const Query& q);

  /// Blocks until this handle's answer is ready.
  void wait(PendingQuery& pending);

  /// Blocks until every admitted query has been answered.
  void drain();

  /// Synchronous convenience: submit + wait.
  Answer ask(const Query& q);

  /// Incremental crossover with the fault subsystem (DESIGN.md §12/§14):
  /// after `dirty` adjacency rows of graph `index` were edited in place
  /// (degree-preserving rewires), patch the cached profile through
  /// views::repair_profile instead of recomputing, refresh the
  /// fingerprint (stale snapshot anchors stop matching), and drop the
  /// memoized answers. Call only while no query on this graph is in
  /// flight. Returns the repair stats (incremental=false means the
  /// fallback recompute ran).
  views::RepairStats repair_graph(std::size_t index,
                                  std::span<const portgraph::NodeId> dirty);

  /// Drops all cached state for graph `index` (full cold recompute on
  /// next use) and refreshes its fingerprint.
  void invalidate_graph(std::size_t index);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] views::ViewRepo& repo() { return *repo_; }
  /// True when the snapshot loaded and anchors are available.
  [[nodiscard]] bool warm() const { return snapshot_ != nullptr; }
  [[nodiscard]] std::size_t queue_bound() const { return opts_.max_queue; }
  [[nodiscard]] std::size_t workers() const;

 private:
  struct MinTimeInfo {
    bool feasible = false;
    int phi = -1;
  };
  struct ElectMemo {
    portgraph::NodeId leader = -1;
    int rounds = -1;
    std::size_t advice_bits = 0;
    std::shared_ptr<const sim::RunMetrics> metrics;
  };
  struct GraphEntry {
    const portgraph::PortGraph* g = nullptr;
    std::uint64_t fingerprint = 0;
    const views::SweepAnchor* anchor = nullptr;  ///< matching, or null
    std::mutex mu;  ///< serializes cached-state access per graph
    std::optional<views::ViewProfile> profile;   ///< history profile
    std::optional<MinTimeInfo> min_time;
    std::optional<ElectMemo> elect;
  };

  void execute(const std::shared_ptr<PendingQuery>& pending);
  /// The full ladder, cheap rungs first. Throws util::CancelledError out
  /// of the compute rung when the token expires mid-sweep.
  Answer serve(GraphEntry& entry, const Query& q,
               const util::CancelToken& token);
  /// Cheap rungs only (memo/anchor, try_lock — never blocks behind a
  /// long compute): what an expired query can still be answered from.
  std::optional<Answer> serve_degraded(GraphEntry& entry, const Query& q);
  /// Ensures entry.profile (and min_time) under entry.mu.
  const views::ViewProfile& ensure_profile(GraphEntry& entry,
                                           const util::CancelToken* token);
  void finish(const std::shared_ptr<PendingQuery>& pending, Answer answer);
  [[nodiscard]] double retry_hint_locked() const;

  ServiceOptions opts_;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_ = nullptr;
  /// Loaded snapshot (owns the warm repo + anchors); null on cold start.
  std::unique_ptr<views::LoadedSnapshot> snapshot_;
  std::unique_ptr<views::ViewRepo> cold_repo_;  ///< owned on cold start
  views::ViewRepo* repo_ = nullptr;
  std::vector<std::unique_ptr<GraphEntry>> graphs_;

  mutable std::mutex mu_;
  std::condition_variable cv_done_;
  std::uint64_t admitted_ = 0;
  std::uint64_t finished_ = 0;  ///< of admitted (shed never count)
  double ewma_serve_ms_ = 1.0;
  ServiceStats stats_;
};

}  // namespace anole::service
