#include "sim/async.hpp"

#include <algorithm>
#include <deque>

#include "util/prng.hpp"

namespace anole::sim {

using portgraph::NodeId;
using portgraph::Port;

namespace {

struct Stamped {
  int round;                 // sender's round (the time-stamp)
  views::ViewId view;
  Port sender_port;          // port at the sender
};

struct Link {
  NodeId to;                 // receiving node
  Port to_port;              // port at the receiver
  std::deque<Stamped> fifo;  // in-flight, FIFO per link
};

}  // namespace

const char* adversary_name(AdversaryKind kind) {
  switch (kind) {
    case AdversaryKind::kRoundRobin: return "round-robin";
    case AdversaryKind::kRandom: return "random";
    case AdversaryKind::kCentralizer: return "centralizer";
    case AdversaryKind::kWorstCaseGreedy: return "worst-case-greedy";
  }
  return "?";
}

AsyncMetrics AsyncEngine::run(
    std::span<const std::unique_ptr<NodeProgram>> programs, int max_rounds,
    AdversaryKind kind, std::uint64_t adversary_seed) {
  const portgraph::PortGraph& g = *graph_;
  ANOLE_CHECK_MSG(programs.size() == g.n(), "need one program per node");
  std::size_t n = g.n();
  util::SplitMix64 adversary(adversary_seed);

  AsyncMetrics metrics;
  metrics.decision_round.assign(n, -1);
  metrics.outputs.resize(n);

  // One directed link per half-edge, flattened in (node, port) order —
  // the fixed order every deterministic adversary breaks ties (and
  // round-robins) in. flat[i] indexes into links.
  std::vector<std::vector<Link>> links(n);
  std::vector<std::pair<std::size_t, std::size_t>> flat;
  for (std::size_t v = 0; v < n; ++v) {
    for (Port p = 0; p < g.degree(static_cast<NodeId>(v)); ++p) {
      const auto& he = g.at(static_cast<NodeId>(v), p);
      links[v].push_back(Link{he.neighbor, he.rev_port, {}});
      flat.emplace_back(v, static_cast<std::size_t>(p));
    }
  }

  // Per-node synchronizer state: current local round, and the buffer of
  // stamped messages for rounds >= round (buffer[v][r - round(v)][p]).
  std::vector<int> round(n, 0);
  std::vector<std::deque<std::vector<Stamped>>> buffer(n);
  std::vector<std::deque<std::vector<bool>>> present(n);

  auto ensure_slot = [&](std::size_t v, int r) {
    while (buffer[v].size() <=
           static_cast<std::size_t>(r - round[v])) {
      buffer[v].emplace_back(
          static_cast<std::size_t>(g.degree(static_cast<NodeId>(v))));
      present[v].emplace_back(
          static_cast<std::size_t>(g.degree(static_cast<NodeId>(v))), false);
    }
  };

  auto note_decision = [&](std::size_t v) {
    if (metrics.decision_round[v] < 0 && programs[v]->has_output()) {
      metrics.decision_round[v] = round[v];
      metrics.outputs[v] = programs[v]->output();
    }
  };
  auto all_decided = [&] {
    return std::none_of(metrics.decision_round.begin(),
                        metrics.decision_round.end(),
                        [](int r) { return r < 0; });
  };

  auto broadcast = [&](std::size_t v) {
    // Node v emits its round-`round[v]` message on all ports. Decided
    // nodes keep participating (a decision is not a crash).
    views::ViewId out = programs[v]->outgoing(round[v]);
    for (std::size_t p = 0; p < links[v].size(); ++p)
      links[v][p].fifo.push_back(
          Stamped{round[v], out, static_cast<Port>(p)});
  };

  // The adversary's choice of the next delivery, as an index into `flat`
  // (-1 when nothing is in flight). Tie-breaking is the flat order for
  // every deterministic kind.
  std::size_t rr_cursor = 0;
  auto pick_link = [&]() -> std::ptrdiff_t {
    switch (kind) {
      case AdversaryKind::kRoundRobin: {
        for (std::size_t step = 0; step < flat.size(); ++step) {
          std::size_t i = (rr_cursor + step) % flat.size();
          if (!links[flat[i].first][flat[i].second].fifo.empty()) {
            rr_cursor = (i + 1) % flat.size();
            return static_cast<std::ptrdiff_t>(i);
          }
        }
        return -1;
      }
      case AdversaryKind::kRandom: {
        std::vector<std::size_t> busy;
        for (std::size_t i = 0; i < flat.size(); ++i)
          if (!links[flat[i].first][flat[i].second].fifo.empty())
            busy.push_back(i);
        if (busy.empty()) return -1;
        return static_cast<std::ptrdiff_t>(busy[adversary.below(busy.size())]);
      }
      case AdversaryKind::kCentralizer: {
        std::ptrdiff_t best = -1;
        int best_round = -1;
        for (std::size_t i = 0; i < flat.size(); ++i) {
          const Link& link = links[flat[i].first][flat[i].second];
          if (link.fifo.empty()) continue;
          int r = round[static_cast<std::size_t>(link.to)];
          if (r > best_round) {
            best_round = r;
            best = static_cast<std::ptrdiff_t>(i);
          }
        }
        return best;
      }
      case AdversaryKind::kWorstCaseGreedy: {
        std::ptrdiff_t best = -1;
        int best_stamp = -1;
        for (std::size_t i = 0; i < flat.size(); ++i) {
          const Link& link = links[flat[i].first][flat[i].second];
          if (link.fifo.empty()) continue;
          if (link.fifo.front().round > best_stamp) {
            best_stamp = link.fifo.front().round;
            best = static_cast<std::ptrdiff_t>(i);
          }
        }
        return best;
      }
    }
    return -1;
  };

  for (std::size_t v = 0; v < n; ++v) {
    programs[v]->start(*repo_, g.degree(static_cast<NodeId>(v)));
    note_decision(v);
  }
  if (!all_decided())
    for (std::size_t v = 0; v < n; ++v) broadcast(v);

  std::vector<Message> inbox;
  while (!all_decided() && !metrics.timed_out) {
    std::ptrdiff_t choice = pick_link();
    if (choice < 0) {
      metrics.timed_out = true;  // deadlock: nothing in flight, undecided
      break;
    }
    auto [sv, sp] = flat[static_cast<std::size_t>(choice)];
    Link& link = links[sv][sp];
    Stamped msg = link.fifo.front();
    link.fifo.pop_front();
    ++metrics.deliveries;

    std::size_t tv = static_cast<std::size_t>(link.to);
    ensure_slot(tv, msg.round);
    std::size_t slot = static_cast<std::size_t>(msg.round - round[tv]);
    std::size_t tp = static_cast<std::size_t>(link.to_port);
    ANOLE_CHECK_MSG(!present[tv][slot][tp],
                    "duplicate stamped message on a link");
    buffer[tv][slot][tp] = msg;
    present[tv][slot][tp] = true;

    // Advance the receiver while its current round is complete.
    while (!buffer[tv].empty() &&
           std::all_of(present[tv][0].begin(), present[tv][0].end(),
                       [](bool b) { return b; })) {
      inbox.clear();
      for (const Stamped& s : buffer[tv][0])
        inbox.push_back(Message{s.view, s.sender_port});
      programs[tv]->deliver(round[tv], inbox);
      buffer[tv].pop_front();
      present[tv].pop_front();
      ++round[tv];
      metrics.max_round = std::max(metrics.max_round, round[tv]);
      note_decision(tv);
      if (round[tv] > max_rounds) {
        // Cap overrun: stop at a consistent point — the receiver completed
        // its round, the decision (if any) is recorded, deliveries and
        // max_round are exact. Same exit path as deadlock.
        metrics.timed_out = true;
        break;
      }
      if (!all_decided()) broadcast(tv);
    }
  }
  metrics.local_rounds = std::move(round);
  return metrics;
}

}  // namespace anole::sim
