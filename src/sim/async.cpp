#include "sim/async.hpp"

#include <algorithm>
#include <deque>

#include "util/prng.hpp"

namespace anole::sim {

using portgraph::NodeId;
using portgraph::Port;

namespace {

struct Stamped {
  int round;                 // sender's round (the time-stamp)
  views::ViewId view;
  Port sender_port;          // port at the sender
};

struct Link {
  NodeId to;                 // receiving node
  Port to_port;              // port at the receiver
  std::deque<Stamped> fifo;  // in-flight, FIFO per link
};

}  // namespace

AsyncMetrics AsyncEngine::run(
    std::span<const std::unique_ptr<NodeProgram>> programs, int max_rounds,
    std::uint64_t adversary_seed) {
  const portgraph::PortGraph& g = *graph_;
  ANOLE_CHECK_MSG(programs.size() == g.n(), "need one program per node");
  std::size_t n = g.n();
  util::SplitMix64 adversary(adversary_seed);

  AsyncMetrics metrics;
  metrics.decision_round.assign(n, -1);
  metrics.outputs.resize(n);

  // One directed link per half-edge; links[v] are v's *outgoing* links in
  // port order.
  std::vector<std::vector<Link>> links(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (Port p = 0; p < g.degree(static_cast<NodeId>(v)); ++p) {
      const auto& he = g.at(static_cast<NodeId>(v), p);
      links[v].push_back(Link{he.neighbor, he.rev_port, {}});
    }
  }

  // Per-node synchronizer state: current local round, and the buffer of
  // stamped messages for rounds >= round (buffer[v][r - round(v)][p]).
  std::vector<int> round(n, 0);
  std::vector<std::deque<std::vector<Stamped>>> buffer(n);
  std::vector<std::deque<std::vector<bool>>> present(n);

  auto ensure_slot = [&](std::size_t v, int r) {
    while (buffer[v].size() <=
           static_cast<std::size_t>(r - round[v])) {
      buffer[v].emplace_back(
          static_cast<std::size_t>(g.degree(static_cast<NodeId>(v))));
      present[v].emplace_back(
          static_cast<std::size_t>(g.degree(static_cast<NodeId>(v))), false);
    }
  };

  auto note_decision = [&](std::size_t v) {
    if (metrics.decision_round[v] < 0 && programs[v]->has_output()) {
      metrics.decision_round[v] = round[v];
      metrics.outputs[v] = programs[v]->output();
    }
  };
  auto all_decided = [&] {
    return std::none_of(metrics.decision_round.begin(),
                        metrics.decision_round.end(),
                        [](int r) { return r < 0; });
  };

  auto broadcast = [&](std::size_t v) {
    // Node v emits its round-`round[v]` message on all ports. Decided
    // nodes keep participating (a decision is not a crash).
    views::ViewId out = programs[v]->outgoing(round[v]);
    for (std::size_t p = 0; p < links[v].size(); ++p)
      links[v][p].fifo.push_back(
          Stamped{round[v], out, static_cast<Port>(p)});
  };

  for (std::size_t v = 0; v < n; ++v) {
    programs[v]->start(*repo_, g.degree(static_cast<NodeId>(v)));
    note_decision(v);
  }
  if (!all_decided())
    for (std::size_t v = 0; v < n; ++v) broadcast(v);

  std::vector<Message> inbox;
  while (!all_decided()) {
    // Adversary: pick a uniformly random non-empty link and deliver its
    // head message (FIFO per link, otherwise fully adversarial).
    std::vector<std::pair<std::size_t, std::size_t>> busy;
    for (std::size_t v = 0; v < n; ++v)
      for (std::size_t p = 0; p < links[v].size(); ++p)
        if (!links[v][p].fifo.empty()) busy.emplace_back(v, p);
    if (busy.empty()) {
      metrics.timed_out = true;  // deadlock: nothing in flight, undecided
      break;
    }
    auto [sv, sp] = busy[adversary.below(busy.size())];
    Link& link = links[sv][sp];
    Stamped msg = link.fifo.front();
    link.fifo.pop_front();
    ++metrics.deliveries;

    std::size_t tv = static_cast<std::size_t>(link.to);
    ensure_slot(tv, msg.round);
    std::size_t slot = static_cast<std::size_t>(msg.round - round[tv]);
    std::size_t tp = static_cast<std::size_t>(link.to_port);
    ANOLE_CHECK_MSG(!present[tv][slot][tp],
                    "duplicate stamped message on a link");
    buffer[tv][slot][tp] = msg;
    present[tv][slot][tp] = true;

    // Advance the receiver while its current round is complete.
    while (!buffer[tv].empty() &&
           std::all_of(present[tv][0].begin(), present[tv][0].end(),
                       [](bool b) { return b; })) {
      inbox.clear();
      for (const Stamped& s : buffer[tv][0])
        inbox.push_back(Message{s.view, s.sender_port});
      programs[tv]->deliver(round[tv], inbox);
      buffer[tv].pop_front();
      present[tv].pop_front();
      ++round[tv];
      metrics.max_round = std::max(metrics.max_round, round[tv]);
      note_decision(tv);
      if (round[tv] > max_rounds) {
        metrics.timed_out = true;
        return metrics;
      }
      if (!all_decided()) broadcast(tv);
    }
  }
  return metrics;
}

}  // namespace anole::sim
