#pragma once
// Asynchronous execution with a time-stamp synchronizer (paper Section 1:
// "the synchronous process of the LOCAL model can be simulated in an
// asynchronous network using time-stamps").
//
// The AsyncEngine runs the *same* NodeProgram protocol objects as the
// synchronous Engine, but message deliveries are scheduled one at a time
// by a seeded adversary (any interleaving that respects per-link FIFO).
// Every message carries its sender's round number as a time-stamp; each
// node buffers incoming stamped messages and only advances its local
// round r -> r+1 once it holds a round-r message from every neighbor —
// the classical alpha-synchronizer discipline. Consequently each node
// observes exactly the same per-round inboxes as in the synchronous run,
// and the outputs are bit-identical regardless of the adversary's choices
// (asserted by tests across many seeds).

#include <cstdint>

#include "sim/engine.hpp"

namespace anole::sim {

struct AsyncMetrics {
  /// Highest local round any node completed.
  int max_round = 0;
  /// Local round at which each node decided.
  std::vector<int> decision_round;
  std::vector<std::vector<int>> outputs;
  /// Total point-to-point deliveries performed by the adversary.
  std::size_t deliveries = 0;
  bool timed_out = false;
};

class AsyncEngine {
 public:
  AsyncEngine(const portgraph::PortGraph& graph, views::ViewRepo& repo)
      : graph_(&graph), repo_(&repo) {}

  /// Runs until every node has decided, with the adversary drawing the
  /// next delivery uniformly from all in-flight messages (seeded).
  /// `max_rounds` caps the per-node local round as a safety net.
  AsyncMetrics run(std::span<const std::unique_ptr<NodeProgram>> programs,
                   int max_rounds, std::uint64_t adversary_seed);

 private:
  const portgraph::PortGraph* graph_;
  views::ViewRepo* repo_;
};

}  // namespace anole::sim
