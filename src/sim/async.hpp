#pragma once
// Asynchronous execution with a time-stamp synchronizer (paper Section 1:
// "the synchronous process of the LOCAL model can be simulated in an
// asynchronous network using time-stamps").
//
// The AsyncEngine runs the *same* NodeProgram protocol objects as the
// synchronous Engine, but message deliveries are scheduled one at a time
// by an adversary (any interleaving that respects per-link FIFO). Every
// message carries its sender's round number as a time-stamp; each node
// buffers incoming stamped messages and only advances its local round
// r -> r+1 once it holds a round-r message from every neighbor — the
// classical alpha-synchronizer discipline. Consequently each node observes
// exactly the same per-round inboxes as in the synchronous run, and the
// outputs are bit-identical regardless of the adversary's choices
// (asserted by tests across 100 seeds and all four adversaries, and by
// the A1 scenario).

#include <cstdint>

#include "sim/engine.hpp"

namespace anole::sim {

/// The delivery schedulers the engine can run under. All are deterministic
/// given the seed (only kRandom consumes it), so every A1 cell and test is
/// reproducible.
enum class AdversaryKind {
  /// Cycles through the directed links in a fixed order, delivering the
  /// next non-empty link's head — the fairest schedule, minimal skew.
  kRoundRobin,
  /// Picks a uniformly random non-empty link (seeded) — the historical
  /// default.
  kRandom,
  /// Always feeds the node whose local round is highest — races one node
  /// maximally ahead of the rest, the worst case for round skew.
  kCentralizer,
  /// Always delivers the in-flight message with the *largest* time-stamp,
  /// starving the oldest rounds as long as possible — maximizes
  /// synchronizer buffering.
  kWorstCaseGreedy,
};

[[nodiscard]] const char* adversary_name(AdversaryKind kind);

struct AsyncMetrics {
  /// Highest local round any node completed.
  int max_round = 0;
  /// Local round at which each node decided (-1 = still undecided — only
  /// possible when timed_out).
  std::vector<int> decision_round;
  std::vector<std::vector<int>> outputs;
  /// Total point-to-point deliveries performed by the adversary.
  std::size_t deliveries = 0;
  /// Final local round of every node. Each node's round only ever
  /// increments (monotonicity — pinned by tests), so this is also the
  /// number of complete inboxes it consumed.
  std::vector<int> local_rounds;
  /// True iff the run stopped before every node decided: either some node
  /// hit the `max_rounds` cap or nothing was in flight (deadlock — cannot
  /// happen for protocols that broadcast every round). All other fields
  /// are still filled consistently up to the stopping point; outputs of
  /// undecided nodes are empty and their decision_round is -1. Callers
  /// MUST check this before trusting outputs.
  bool timed_out = false;
};

class AsyncEngine {
 public:
  AsyncEngine(const portgraph::PortGraph& graph, views::ViewRepo& repo)
      : graph_(&graph), repo_(&repo) {}

  /// Runs until every node has decided or some node's local round would
  /// exceed `max_rounds` (then timed_out is set and the partial state is
  /// reported — never silently). `adversary_seed` feeds kRandom; the
  /// other adversaries are deterministic and ignore it.
  AsyncMetrics run(std::span<const std::unique_ptr<NodeProgram>> programs,
                   int max_rounds, AdversaryKind kind,
                   std::uint64_t adversary_seed);

  /// Historical entry point: the seeded uniform-random adversary.
  AsyncMetrics run(std::span<const std::unique_ptr<NodeProgram>> programs,
                   int max_rounds, std::uint64_t adversary_seed) {
    return run(programs, max_rounds, AdversaryKind::kRandom, adversary_seed);
  }

 private:
  const portgraph::PortGraph* graph_;
  views::ViewRepo* repo_;
};

}  // namespace anole::sim
