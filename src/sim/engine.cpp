#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>

namespace anole::sim {

namespace internal {

DecisionTracker::DecisionTracker(
    std::span<const std::unique_ptr<NodeProgram>> programs,
    RunMetrics& metrics)
    : programs_(programs), metrics_(&metrics), undecided_(programs.size()) {
  std::iota(undecided_.begin(), undecided_.end(), 0u);
}

void DecisionTracker::note(int round) {
  undecided_.erase(
      std::remove_if(undecided_.begin(), undecided_.end(),
                     [&](std::uint32_t v) {
                       if (!programs_[v]->has_output()) return false;
                       metrics_->decision_round[v] = round;
                       metrics_->outputs[v] = programs_[v]->output();
                       return true;
                     }),
      undecided_.end());
}

void meter_round(const portgraph::PortGraph& g, const views::ViewRepo& repo,
                 std::span<const views::ViewId> outbox,
                 std::span<const views::ViewId> sorted_distinct,
                 std::vector<std::size_t>& size_scratch, RunMetrics& metrics) {
  size_scratch.resize(sorted_distinct.size());
  for (std::size_t i = 0; i < sorted_distinct.size(); ++i) {
    std::size_t bits = repo.serialized_size_bits(sorted_distinct[i]);
    size_scratch[i] = bits;
    metrics.max_message_bits = std::max(metrics.max_message_bits, bits);
  }
  std::size_t round_bits = 0;
  for (std::size_t v = 0; v < outbox.size(); ++v) {
    std::size_t i = static_cast<std::size_t>(
        std::lower_bound(sorted_distinct.begin(), sorted_distinct.end(),
                         outbox[v]) -
        sorted_distinct.begin());
    std::size_t copies = static_cast<std::size_t>(
        g.degree(static_cast<portgraph::NodeId>(v)));
    metrics.message_count += copies;
    round_bits += size_scratch[i] * copies;
  }
  metrics.total_message_bits += round_bits;
  metrics.bits_per_round.push_back(round_bits);
  metrics.distinct_views_per_round.push_back(sorted_distinct.size());
}

}  // namespace internal

RunMetrics Engine::run(
    std::span<const std::unique_ptr<NodeProgram>> programs, int max_rounds,
    bool meter_messages) {
  const portgraph::PortGraph& g = *graph_;
  ANOLE_CHECK_MSG(programs.size() == g.n(),
                  "need one program per node: " << programs.size() << " vs "
                                                << g.n());
  std::size_t n = g.n();
  auto wall_start = std::chrono::steady_clock::now();
  RunMetrics metrics;
  metrics.decision_round.assign(n, -1);
  metrics.outputs.resize(n);
  internal::DecisionTracker decisions(programs, metrics);

  for (std::size_t v = 0; v < n; ++v)
    programs[v]->start(*repo_, g.degree(static_cast<portgraph::NodeId>(v)));
  decisions.note(0);

  std::vector<views::ViewId> outbox(n);
  std::vector<Message> inbox;
  // Metering scratch: the sorted distinct outgoing views of one round and
  // their sizes. Many nodes share a view (anonymity: equal-view nodes are
  // indistinguishable), so each distinct ViewId is priced exactly once per
  // round instead of once per node.
  std::vector<views::ViewId> distinct;
  std::vector<std::size_t> distinct_bits;
  int round = 0;
  while (!decisions.all_decided()) {
    if (round >= max_rounds) {
      metrics.timed_out = true;
      break;
    }
    for (std::size_t v = 0; v < n; ++v)
      outbox[v] = programs[v]->outgoing(round);
    if (meter_messages) {
      distinct = views::distinct_ids(outbox);
      internal::meter_round(g, *repo_, outbox, distinct, distinct_bits,
                            metrics);
    } else {
      for (std::size_t v = 0; v < n; ++v)
        metrics.message_count +=
            static_cast<std::size_t>(g.degree(static_cast<portgraph::NodeId>(v)));
    }
    for (std::size_t v = 0; v < n; ++v) {
      const auto& row = g.neighbors(static_cast<portgraph::NodeId>(v));
      inbox.clear();
      inbox.reserve(row.size());
      for (const auto& he : row) {
        // The message on port p comes from `he.neighbor`, which sent it
        // through its port `he.rev_port`.
        inbox.push_back(Message{outbox[static_cast<std::size_t>(he.neighbor)],
                                he.rev_port});
      }
      programs[v]->deliver(round, inbox);
    }
    ++round;
    decisions.note(round);
  }
  metrics.rounds = round;
  metrics.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
  return metrics;
}

}  // namespace anole::sim
