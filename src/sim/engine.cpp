#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>

namespace anole::sim {

RunMetrics Engine::run(
    std::span<const std::unique_ptr<NodeProgram>> programs, int max_rounds,
    bool meter_messages) {
  const portgraph::PortGraph& g = *graph_;
  ANOLE_CHECK_MSG(programs.size() == g.n(),
                  "need one program per node: " << programs.size() << " vs "
                                                << g.n());
  std::size_t n = g.n();
  auto wall_start = std::chrono::steady_clock::now();
  RunMetrics metrics;
  metrics.decision_round.assign(n, -1);
  metrics.outputs.resize(n);

  auto note_decisions = [&](int round) {
    for (std::size_t v = 0; v < n; ++v) {
      if (metrics.decision_round[v] < 0 && programs[v]->has_output()) {
        metrics.decision_round[v] = round;
        metrics.outputs[v] = programs[v]->output();
      }
    }
  };
  auto all_decided = [&] {
    return std::none_of(metrics.decision_round.begin(),
                        metrics.decision_round.end(),
                        [](int r) { return r < 0; });
  };

  for (std::size_t v = 0; v < n; ++v)
    programs[v]->start(*repo_, g.degree(static_cast<portgraph::NodeId>(v)));
  note_decisions(0);

  std::vector<views::ViewId> outbox(n);
  std::vector<Message> inbox;
  // Metering scratch: the sorted distinct outgoing views of one round and
  // their sizes. Many nodes share a view (anonymity: equal-view nodes are
  // indistinguishable), so each distinct ViewId is priced exactly once per
  // round instead of once per node.
  std::vector<views::ViewId> distinct;
  std::vector<std::size_t> distinct_bits;
  int round = 0;
  while (!all_decided()) {
    if (round >= max_rounds) {
      metrics.timed_out = true;
      break;
    }
    for (std::size_t v = 0; v < n; ++v)
      outbox[v] = programs[v]->outgoing(round);
    if (meter_messages) {
      distinct.assign(outbox.begin(), outbox.end());
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      distinct_bits.resize(distinct.size());
      for (std::size_t i = 0; i < distinct.size(); ++i) {
        std::size_t bits = repo_->serialized_size_bits(distinct[i]);
        distinct_bits[i] = bits;
        metrics.max_message_bits = std::max(metrics.max_message_bits, bits);
      }
      std::size_t round_bits = 0;
      for (std::size_t v = 0; v < n; ++v) {
        std::size_t i = static_cast<std::size_t>(
            std::lower_bound(distinct.begin(), distinct.end(), outbox[v]) -
            distinct.begin());
        std::size_t copies = static_cast<std::size_t>(
            g.degree(static_cast<portgraph::NodeId>(v)));
        metrics.message_count += copies;
        round_bits += distinct_bits[i] * copies;
      }
      metrics.total_message_bits += round_bits;
      metrics.bits_per_round.push_back(round_bits);
      metrics.distinct_views_per_round.push_back(distinct.size());
    } else {
      for (std::size_t v = 0; v < n; ++v)
        metrics.message_count +=
            static_cast<std::size_t>(g.degree(static_cast<portgraph::NodeId>(v)));
    }
    for (std::size_t v = 0; v < n; ++v) {
      const auto& row = g.neighbors(static_cast<portgraph::NodeId>(v));
      inbox.clear();
      inbox.reserve(row.size());
      for (const auto& he : row) {
        // The message on port p comes from `he.neighbor`, which sent it
        // through its port `he.rev_port`.
        inbox.push_back(Message{outbox[static_cast<std::size_t>(he.neighbor)],
                                he.rev_port});
      }
      programs[v]->deliver(round, inbox);
    }
    ++round;
    note_decisions(round);
  }
  metrics.rounds = round;
  metrics.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
  return metrics;
}

}  // namespace anole::sim
