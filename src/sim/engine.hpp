#pragma once
// Synchronous LOCAL-model simulation engine (paper Section 1).
//
// Communication proceeds in rounds; all nodes start simultaneously; in each
// round every node exchanges messages with all neighbors and computes. The
// information a node v has after r rounds is exactly the augmented
// truncated view B^r(v), so the only message our protocols ever need is the
// sender's current view; messages are therefore view ids into a shared
// ViewRepo (hash-consed payloads — see DESIGN.md). When node u sends
// through its port q, the receiver v sees the message on its port p
// together with q: the pair (q, payload) is exactly the edge label the view
// definition gives v, and u includes q explicitly (it knows which port it
// is using).
//
// Producing an output does not halt a node: it keeps participating in COM
// (in the LOCAL model a decision is not a crash). The engine runs until
// every node has produced an output or `max_rounds` is exceeded.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "portgraph/port_graph.hpp"
#include "views/view_repo.hpp"

namespace anole::sim {

struct Message {
  views::ViewId view = views::kInvalidView;
  portgraph::Port sender_port = -1;
};

/// Per-node deterministic protocol. One instance per node; instances must
/// not share mutable state (anonymity: a program may depend only on its
/// degree, the rounds' messages, and the common advice given at creation).
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Called once before round 0. The node initially knows only its degree.
  virtual void start(views::ViewRepo& repo, int degree) = 0;

  /// The message to send to all neighbors in the given round (COM-style;
  /// the engine annotates it with the outgoing port per neighbor).
  [[nodiscard]] virtual views::ViewId outgoing(int round) = 0;

  /// Delivers the round's inbox: inbox[p] is the message received through
  /// port p. Called after all outgoing() calls of the round.
  virtual void deliver(int round, std::span<const Message> inbox) = 0;

  /// Whether the node has decided (checked after start() and after each
  /// deliver()).
  [[nodiscard]] virtual bool has_output() const = 0;

  /// The decision: a sequence (p1,q1,...,pk,qk) of port numbers coding a
  /// path from this node to the elected leader.
  [[nodiscard]] virtual std::vector<int> output() const = 0;
};

struct RunMetrics {
  /// Rounds executed until every node had an output.
  int rounds = 0;
  /// Round (1-based: "after round r") at which each node decided;
  /// 0 means it decided before any communication.
  std::vector<int> decision_round;
  /// Per-node outputs.
  std::vector<std::vector<int>> outputs;
  /// Total messages delivered and their total/maximum serialized size.
  std::size_t message_count = 0;
  std::size_t total_message_bits = 0;
  std::size_t max_message_bits = 0;
  /// Per-round metering breakdowns (filled only when metering is on):
  /// bits_per_round[r] is the total bits sent in round r across all edges,
  /// distinct_views_per_round[r] the number of distinct outgoing views that
  /// round — the number of size computations the engine actually performs
  /// (each distinct view is metered once per round, not once per node).
  std::vector<std::size_t> bits_per_round;
  std::vector<std::size_t> distinct_views_per_round;
  /// True iff the run hit max_rounds before everyone decided.
  bool timed_out = false;
  /// Wall-clock time of the simulation, for per-cell reporting by the
  /// experiment runner. Excluded from deterministic structured output.
  double wall_ms = 0.0;
};

class Engine {
 public:
  /// The engine borrows the graph and the repo; both must outlive it.
  Engine(const portgraph::PortGraph& graph, views::ViewRepo& repo)
      : graph_(&graph), repo_(&repo) {}

  /// Runs one program per node until all decide. `programs` must have
  /// size n. When `meter_messages` is false the (expensive) serialized
  /// size accounting is skipped.
  RunMetrics run(std::span<const std::unique_ptr<NodeProgram>> programs,
                 int max_rounds, bool meter_messages = false);

 private:
  const portgraph::PortGraph* graph_;
  views::ViewRepo* repo_;
};

namespace internal {
// Round bookkeeping shared by Engine::run and run_full_info (the batched
// COM fast path, sim/full_info.hpp). One definition keeps the two paths'
// metrics byte-identical by construction rather than by parallel edits.

/// Records each node's first has_output() round and its output, scanning
/// only the still-undecided nodes: once a node decides it is never
/// rescanned, so the per-round check is O(remaining), not O(n).
class DecisionTracker {
 public:
  /// Borrows both; they must outlive the tracker.
  DecisionTracker(std::span<const std::unique_ptr<NodeProgram>> programs,
                  RunMetrics& metrics);

  /// Scans the undecided nodes in ascending node order; records
  /// round/output for those that now have output and drops them.
  void note(int round);

  [[nodiscard]] bool all_decided() const { return undecided_.empty(); }

  /// Fused round tail for run_full_info: runs `fn(v)` (the advance_to
  /// hook) for every still-undecided node in ascending node order, checks
  /// has_output() immediately after, and drops nodes that decided —
  /// one pass over the programs per round instead of an advance pass plus
  /// a note() scan. Decided nodes are never touched again: their output
  /// is already captured, and in the batched COM path their outgoing view
  /// lives in the level/quotient, not in program state, so skipping them
  /// changes no metric bit. Equivalent to fn-for-all-undecided followed
  /// by note(round): programs share no mutable state (anonymity), so no
  /// program's has_output() can depend on a later node's hook.
  template <typename Fn>
  void advance_then_note(int round, const Fn& fn) {
    // Explicit in-order loop (not remove_if: the hooks' side effects —
    // on_view may intern into the shared repo — must run in ascending
    // node order, which the standard guarantees only here).
    std::size_t keep = 0;
    for (std::uint32_t v : undecided_) {
      fn(v);
      if (!programs_[v]->has_output()) {
        undecided_[keep++] = v;
        continue;
      }
      metrics_->decision_round[v] = round;
      metrics_->outputs[v] = programs_[v]->output();
    }
    undecided_.resize(keep);
  }

 private:
  std::span<const std::unique_ptr<NodeProgram>> programs_;
  RunMetrics* metrics_;
  std::vector<std::uint32_t> undecided_;
};

/// Prices one metered round (the §3 metering contract): each id of
/// `sorted_distinct` — the ascending distinct values of `outbox` — is
/// sized exactly once; every delivered copy is charged size × sender
/// degree. Updates the totals and per-round breakdowns of `metrics`;
/// `size_scratch` only avoids a per-round allocation.
void meter_round(const portgraph::PortGraph& g, const views::ViewRepo& repo,
                 std::span<const views::ViewId> outbox,
                 std::span<const views::ViewId> sorted_distinct,
                 std::vector<std::size_t>& size_scratch, RunMetrics& metrics);

}  // namespace internal

}  // namespace anole::sim
