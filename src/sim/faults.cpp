#include "sim/faults.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <utility>

#include "sim/full_info.hpp"
#include "util/prng.hpp"
#include "views/refiner.hpp"

namespace anole::sim {

using portgraph::NodeId;
using portgraph::Port;
using portgraph::PortGraph;

namespace {

/// Connectivity of the alive node set (optionally pretending `skip` is
/// crashed too), walking only assigned slots between alive nodes. The
/// plain PortGraph::connected() is useless here: crashed nodes are
/// isolated by construction.
bool alive_connected(const PortGraph& g, const std::vector<bool>& alive,
                     NodeId skip = -1) {
  NodeId start = -1;
  std::size_t want = 0;
  for (std::size_t v = 0; v < g.n(); ++v) {
    if (!alive[v] || static_cast<NodeId>(v) == skip) continue;
    if (start < 0) start = static_cast<NodeId>(v);
    ++want;
  }
  if (want <= 1) return true;
  std::vector<bool> seen(g.n(), false);
  seen[static_cast<std::size_t>(start)] = true;
  std::deque<NodeId> queue{start};
  std::size_t reached = 1;
  while (!queue.empty()) {
    NodeId v = queue.front();
    queue.pop_front();
    for (const portgraph::HalfEdge& he : g.neighbors(v)) {
      if (he.neighbor < 0 || he.neighbor == skip) continue;
      if (seen[static_cast<std::size_t>(he.neighbor)]) continue;
      seen[static_cast<std::size_t>(he.neighbor)] = true;
      ++reached;
      queue.push_back(he.neighbor);
    }
  }
  return reached == want;
}

}  // namespace

FaultPlan FaultPlan::random(const PortGraph& g, int horizon, int crashes,
                            int rewires, std::uint64_t seed) {
  FaultPlan plan;
  util::SplitMix64 rng(seed);
  PortGraph work = g;  // simulate the plan while emitting it
  std::size_t n = g.n();
  std::vector<bool> alive(n, true);
  std::size_t alive_count = n;
  int remaining_c = crashes;
  int remaining_r = rewires;
  // Spread events over the horizon, leaving room for the trailing
  // recoveries (at most one per crash).
  int slots = crashes * 2 + rewires + 1;
  int gap = std::max(1, horizon / slots);
  int round = 0;
  auto next_round = [&]() {
    round += 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(gap)));
    return round;
  };

  while (remaining_c + remaining_r > 0) {
    bool do_crash =
        rng.below(static_cast<std::uint64_t>(remaining_c + remaining_r)) <
        static_cast<std::uint64_t>(remaining_c);
    if (do_crash) {
      --remaining_c;
      if (alive_count <= 4) continue;  // keep a nontrivial network running
      for (int attempt = 0; attempt < 50; ++attempt) {
        NodeId v = static_cast<NodeId>(rng.below(n));
        if (!alive[static_cast<std::size_t>(v)]) continue;
        if (!alive_connected(work, alive, v)) continue;  // would cut survivors
        work.crash_node(v);
        alive[static_cast<std::size_t>(v)] = false;
        --alive_count;
        plan.events.push_back(
            {.kind = FaultEvent::Kind::kCrash, .round = next_round(),
             .node = v});
        break;
      }
    } else {
      --remaining_r;
      for (int attempt = 0; attempt < 50; ++attempt) {
        NodeId u1 = static_cast<NodeId>(rng.below(n));
        NodeId u2 = static_cast<NodeId>(rng.below(n));
        if (!alive[static_cast<std::size_t>(u1)] ||
            !alive[static_cast<std::size_t>(u2)])
          continue;
        if (work.degree(u1) == 0 || work.degree(u2) == 0) continue;
        Port p1 = static_cast<Port>(
            rng.below(static_cast<std::uint64_t>(work.degree(u1))));
        Port p2 = static_cast<Port>(
            rng.below(static_cast<std::uint64_t>(work.degree(u2))));
        // Masked slots point at crashed neighbors; assigned slots of alive
        // nodes always point at alive nodes, so v1/v2 need no alive check.
        if (work.at(u1, p1).neighbor < 0 || work.at(u2, p2).neighbor < 0)
          continue;
        NodeId v1 = work.at(u1, p1).neighbor;
        NodeId v2 = work.at(u2, p2).neighbor;
        if (u1 == u2 || v1 == v2 || u1 == v2 || u2 == v1) continue;
        if (work.port_to(u1, u2) || work.port_to(v1, v2)) continue;
        PortGraph trial = work;
        trial.rewire_edge(u1, p1, u2, p2);
        if (!alive_connected(trial, alive)) continue;
        work = std::move(trial);
        plan.events.push_back(
            {.kind = FaultEvent::Kind::kRewire, .round = next_round(),
             .u1 = u1, .p1 = p1, .u2 = u2, .p2 = p2});
        break;
      }
    }
  }
  // Bring everyone back at the end, in ascending id order.
  for (std::size_t v = 0; v < n; ++v) {
    if (alive[v]) continue;
    plan.events.push_back({.kind = FaultEvent::Kind::kRecover,
                           .round = next_round(),
                           .node = static_cast<NodeId>(v)});
  }
  return plan;
}

FaultInjector::FaultInjector(const PortGraph& g, FaultPlan plan)
    : work_(g),
      alive_(g.n(), true),
      alive_count_(g.n()),
      plan_(std::move(plan)) {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    int prev = i == 0 ? 0 : plan_.events[i - 1].round;
    ANOLE_CHECK_MSG(plan_.events[i].round > prev,
                    "fault plan rounds must be strictly increasing and >= 1");
  }
}

FaultInjector::Applied FaultInjector::apply_through(int round) {
  Applied out;
  while (next_ < plan_.events.size() && plan_.events[next_].round <= round) {
    apply(plan_.events[next_], out);
    ++next_;
    ++out.events;
  }
  std::sort(out.dirty.begin(), out.dirty.end());
  out.dirty.erase(std::unique(out.dirty.begin(), out.dirty.end()),
                  out.dirty.end());
  return out;
}

void FaultInjector::apply(const FaultEvent& ev, Applied& out) {
  using Kind = FaultEvent::Kind;
  switch (ev.kind) {
    case Kind::kCrash: {
      NodeId v = ev.node;
      ANOLE_CHECK_MSG(alive_[static_cast<std::size_t>(v)],
                      "crash of already-crashed node " << v);
      std::vector<PortGraph::RemovedEdge> removed = work_.crash_node(v);
      for (const PortGraph::RemovedEdge& e : removed) out.dirty.push_back(e.v);
      out.dirty.push_back(v);
      stash_.insert(stash_.end(), removed.begin(), removed.end());
      alive_[static_cast<std::size_t>(v)] = false;
      --alive_count_;
      out.alive_changed = true;
      break;
    }
    case Kind::kRecover: {
      NodeId v = ev.node;
      ANOLE_CHECK_MSG(!alive_[static_cast<std::size_t>(v)],
                      "recovery of alive node " << v);
      alive_[static_cast<std::size_t>(v)] = true;
      ++alive_count_;
      // Restore stashed edges incident to v whose partner is also alive;
      // edges to still-crashed partners stay stashed for THEIR recovery.
      std::size_t keep = 0;
      for (const PortGraph::RemovedEdge& e : stash_) {
        bool restorable = (e.u == v || e.v == v) &&
                          alive_[static_cast<std::size_t>(e.u)] &&
                          alive_[static_cast<std::size_t>(e.v)];
        if (!restorable) {
          stash_[keep++] = e;
          continue;
        }
        work_.add_edge(e.u, e.pu, e.v, e.pv);
        out.dirty.push_back(e.u);
        out.dirty.push_back(e.v);
      }
      stash_.resize(keep);
      out.dirty.push_back(v);
      out.alive_changed = true;
      break;
    }
    case Kind::kRewire: {
      // Capture the far endpoints before the swap rewrites them.
      NodeId v1 = work_.at(ev.u1, ev.p1).neighbor;
      NodeId v2 = work_.at(ev.u2, ev.p2).neighbor;
      work_.rewire_edge(ev.u1, ev.p1, ev.u2, ev.p2);
      out.dirty.push_back(ev.u1);
      out.dirty.push_back(v1);
      out.dirty.push_back(ev.u2);
      out.dirty.push_back(v2);
      out.rewires.push_back(ev);
      break;
    }
  }
}

FaultRunResult run_with_faults(
    const PortGraph& g, views::ViewRepo& repo, const FaultPlan& plan,
    const std::function<election::ProgramSet(election::ElectionContext&)>&
        make_programs,
    const FaultRunOptions& opts) {
  FaultRunResult result;
  FaultInjector injector(g, plan);
  int round = 0;
  std::unique_ptr<portgraph::AliveSubgraph> sub;
  views::ViewProfile profile;
  bool profile_valid = false;
  std::optional<views::Refiner> refiner;
  std::vector<NodeId> pending_dirty;  // in subgraph coordinates
  std::size_t epoch_index = 0;

  for (;;) {
    if (!sub) {
      sub = std::make_unique<portgraph::AliveSubgraph>(
          portgraph::alive_subgraph(injector.graph(), injector.alive()));
      ANOLE_CHECK_MSG(sub->graph.connected(),
                      "fault plan disconnected the alive subgraph");
      profile_valid = false;
    }

    EpochReport ep;
    ep.start_round = round;
    ep.alive = injector.alive_count();

    if (!refiner) refiner.emplace(sub->graph, repo);
    if (!profile_valid) {
      // Full (re)compute — epoch 0 and every epoch after a crash/recover.
      // min_depth = 1 + keep_history give repair_profile levels to patch.
      profile = views::compute_profile(
          sub->graph, repo,
          views::ProfileOptions{.min_depth = 1, .keep_history = true,
                                .refiner = &*refiner});
      profile_valid = true;
    } else if (!pending_dirty.empty()) {
      ep.repair = views::repair_profile(sub->graph, repo, profile,
                                        pending_dirty, &*refiner);
      pending_dirty.clear();
    }

    election::ElectionContext ctx(sub->graph, repo, profile);
    int next = injector.next_fault_round();
    int budget = next < 0 ? opts.settle_rounds : next - round;
    ep.budget = budget;

    if (!ctx.feasible()) {
      // A fault can make the survivor graph symmetric: no advice-based
      // protocol applies, nobody decides — vacuously safe.
      ep.feasible = false;
      ep.safety.ok = true;
    } else {
      election::ProgramSet set = make_programs(ctx);
      int effective = std::min(budget, set.max_rounds);
      ep.budget = effective;
      ep.metrics = run_full_info(sub->graph, repo, set.programs, effective);
      ep.interrupted = ep.metrics.timed_out;
      ep.safety = election::verify_safety_under_faults(
          sub->graph, ep.metrics.outputs, ep.metrics.decision_round);
      if (ep.safety.leader >= 0)
        ep.leader_full = sub->to_full[static_cast<std::size_t>(
            ep.safety.leader)];
      if (opts.adversary) {
        // Same protocol, adversarial delivery order, same round cap: the
        // synchronizer must agree with the synchronous run on every node
        // both runs decided.
        election::ProgramSet aset = make_programs(ctx);
        AsyncEngine async(sub->graph, repo);
        AsyncMetrics am =
            async.run(aset.programs, effective, *opts.adversary,
                      util::derive_seed(opts.adversary_seed, epoch_index));
        ep.async_deliveries = am.deliveries;
        election::SafetyResult async_safety =
            election::verify_safety_under_faults(sub->graph, am.outputs,
                                                 am.decision_round);
        ep.async_ok = async_safety.ok;
        for (std::size_t v = 0; v < sub->graph.n(); ++v) {
          if (ep.metrics.decision_round[v] >= 0 && am.decision_round[v] >= 0 &&
              am.outputs[v] != ep.metrics.outputs[v])
            ep.async_ok = false;
        }
      }
    }

    result.safe = result.safe && ep.safety.ok;
    result.async_ok = result.async_ok && ep.async_ok;
    if (ep.repair.incremental) ++result.incremental_epochs;
    result.recomputed_views += ep.repair.recomputed_views;
    result.reused_views += ep.repair.reused_views;
    result.epochs.push_back(std::move(ep));
    ++epoch_index;

    if (next < 0) break;
    FaultInjector::Applied applied = injector.apply_through(next);
    round = next;
    if (applied.alive_changed) {
      sub.reset();  // port compaction changed: rebuild + full recompute
      pending_dirty.clear();
    } else {
      // Degree-preserving batch: replay the swaps on the subgraph IN
      // PLACE (rewires never renumber ports, so the AliveSubgraph maps
      // stay valid across the whole batch) and queue the dirty rows for
      // incremental repair at the top of the next epoch.
      for (const FaultEvent& ev : applied.rewires) {
        NodeId su1 = sub->to_sub[static_cast<std::size_t>(ev.u1)];
        Port sp1 = sub->sub_port[static_cast<std::size_t>(ev.u1)]
                                [static_cast<std::size_t>(ev.p1)];
        NodeId su2 = sub->to_sub[static_cast<std::size_t>(ev.u2)];
        Port sp2 = sub->sub_port[static_cast<std::size_t>(ev.u2)]
                                [static_cast<std::size_t>(ev.p2)];
        ANOLE_CHECK_MSG(su1 >= 0 && sp1 >= 0 && su2 >= 0 && sp2 >= 0,
                        "rewire touches a crashed node or masked port");
        sub->graph.rewire_edge(su1, sp1, su2, sp2);
      }
      ANOLE_CHECK_MSG(sub->graph.connected(),
                      "fault plan disconnected the alive subgraph");
      for (NodeId v : applied.dirty) {
        NodeId sv = sub->to_sub[static_cast<std::size_t>(v)];
        if (sv >= 0) pending_dirty.push_back(sv);
      }
    }
  }
  return result;
}

}  // namespace anole::sim
