#pragma once
// Fault injection over a running election (DESIGN.md §12).
//
// The paper's model is fault-free; this subsystem asks the robustness
// question a deployment would: what do the advice-based protocols do when
// the topology changes under them? A FaultPlan is a seeded, strictly
// increasing schedule of three event kinds on a global round timeline:
//
//   kCrash    node v fails: every incident edge is masked in place
//             (PortGraph::crash_node) — survivors keep their port numbers;
//   kRecover  a crashed node returns and its stashed edges to currently
//             alive partners are restored with their original ports;
//   kRewire   a degree-preserving 2-swap (PortGraph::rewire_edge) — the
//             adversary re-plugs two cables without any node noticing a
//             degree change.
//
// FaultInjector owns the evolving full graph + alive set and applies plan
// events up to a round on demand, reporting exactly which adjacency rows
// each batch dirtied. run_with_faults drives the whole loop: between
// consecutive fault rounds (an *epoch*) it runs a freshly built protocol
// instance (election::ProgramSet) on the port-compacted alive subgraph,
// capped at the rounds remaining until the next fault, and checks the
// safety contract — at most one leader among the nodes that decided,
// election::verify_safety_under_faults — after every epoch. Across
// epochs the view profile of the alive subgraph is maintained
// *incrementally*: rewire-only batches patch the profile through
// views::repair_profile (+ Refiner::invalidate) instead of recomputing
// the refinement from scratch; crash/recover batches rebuild the
// subgraph and fall back to a full compute. Optionally every epoch is
// re-run under an adversarial AsyncEngine schedule and the outputs are
// cross-checked against the synchronous run (the alpha-synchronizer
// makes them bit-identical on the nodes both runs decided).
//
// Everything is deterministic in (plan seed, adversary seed): the A1
// scenario and tests replay byte-identical histories.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "election/harness.hpp"
#include "election/verify.hpp"
#include "portgraph/builders.hpp"
#include "portgraph/port_graph.hpp"
#include "sim/async.hpp"
#include "sim/engine.hpp"
#include "views/repair.hpp"

namespace anole::sim {

struct FaultEvent {
  enum class Kind { kCrash, kRecover, kRewire };
  Kind kind = Kind::kCrash;
  /// Global round at which the event fires (strictly increasing within a
  /// plan; the first event is at round >= 1).
  int round = 0;
  /// Crash / recover target (unused for kRewire).
  portgraph::NodeId node = -1;
  /// kRewire anchors: the two half-edges (u1,p1) and (u2,p2) whose edges
  /// are 2-swapped — see PortGraph::rewire_edge for the exact semantics.
  portgraph::NodeId u1 = -1;
  portgraph::Port p1 = -1;
  portgraph::NodeId u2 = -1;
  portgraph::Port p2 = -1;
};

struct FaultPlan {
  /// Events sorted by strictly increasing round.
  std::vector<FaultEvent> events;

  /// Seeded random plan with `crashes` crash events and `rewires` rewire
  /// events spread over roughly `horizon` rounds, followed by recovery of
  /// every still-crashed node. The generator simulates the plan while
  /// building it and only emits events that keep the alive subgraph
  /// connected and the model invariants intact (a crash never isolates
  /// survivors; a rewire never creates a self-loop or multi-edge); an
  /// event for which no valid target is found after bounded attempts is
  /// simply dropped, so the realized counts may fall short on very small
  /// or dense graphs. Deterministic in `seed`.
  [[nodiscard]] static FaultPlan random(const portgraph::PortGraph& g,
                                        int horizon, int crashes, int rewires,
                                        std::uint64_t seed);
};

/// Owns the evolving full graph: applies plan events in order, stashes
/// crashed edges for recovery, and reports per-batch dirt. The *full*
/// graph never port-compacts — crashed slots are masked in place — so
/// full-graph coordinates stay stable for the whole run; protocols run on
/// portgraph::alive_subgraph copies.
class FaultInjector {
 public:
  FaultInjector(const portgraph::PortGraph& g, FaultPlan plan);

  /// The full graph with all events up to the last apply_through applied
  /// (masked slots where crashes removed edges).
  [[nodiscard]] const portgraph::PortGraph& graph() const { return work_; }
  [[nodiscard]] const std::vector<bool>& alive() const { return alive_; }
  [[nodiscard]] std::size_t alive_count() const { return alive_count_; }

  /// Round of the next unapplied event, -1 when the plan is exhausted.
  [[nodiscard]] int next_fault_round() const {
    return next_ < plan_.events.size()
               ? plan_.events[next_].round
               : -1;
  }

  /// What a batch of events did — everything run_with_faults needs to
  /// decide between incremental repair and a full rebuild.
  struct Applied {
    int events = 0;
    /// True iff some crash/recover changed the alive set (the alive
    /// subgraph must be rebuilt; incremental repair does not apply).
    bool alive_changed = false;
    /// Full-graph ids of every adjacency row the batch edited (deduped,
    /// ascending). For a rewire-only batch these are the four endpoints
    /// of each swap — the dirty set views::repair_profile needs.
    std::vector<portgraph::NodeId> dirty;
    /// The rewire events applied, in order — so the caller can replay
    /// them on its port-compacted alive subgraph via the AliveSubgraph
    /// maps.
    std::vector<FaultEvent> rewires;
  };

  /// Applies every still-pending event with event.round <= round.
  Applied apply_through(int round);

 private:
  void apply(const FaultEvent& ev, Applied& out);

  portgraph::PortGraph work_;
  std::vector<bool> alive_;
  std::size_t alive_count_;
  /// Edges removed by crashes, with original ports, awaiting recovery.
  std::vector<portgraph::PortGraph::RemovedEdge> stash_;
  FaultPlan plan_;
  std::size_t next_ = 0;
};

struct FaultRunOptions {
  /// Round budget of the final epoch, after the last fault (every earlier
  /// epoch is capped by the next fault round instead).
  int settle_rounds = 256;
  /// When set, every epoch is additionally executed under this AsyncEngine
  /// adversary (same programs rebuilt, same round cap) and the outputs are
  /// cross-checked against the synchronous epoch.
  std::optional<AdversaryKind> adversary;
  /// Seed for the async adversary (varied per epoch).
  std::uint64_t adversary_seed = 1;
};

/// One inter-fault window: the protocol ran from scratch on the alive
/// subgraph for `budget` rounds (or until everyone decided).
struct EpochReport {
  int start_round = 0;  ///< global round at which the epoch began
  int budget = 0;       ///< rounds the protocol was allowed
  std::size_t alive = 0;
  /// False when the epoch's alive subgraph was infeasible (symmetric);
  /// no protocol ran and safety is vacuous.
  bool feasible = true;
  /// True when the fault cap interrupted the run before everyone decided.
  bool interrupted = false;
  /// The §12 safety contract verdict for the synchronous run.
  election::SafetyResult safety;
  /// safety.leader translated to full-graph coordinates (-1 = none).
  portgraph::NodeId leader_full = -1;
  /// True when no async cross-check ran or it agreed with the sync run.
  bool async_ok = true;
  /// Deliveries performed by the async adversary (0 without cross-check).
  std::size_t async_deliveries = 0;
  /// How the epoch's view profile was obtained (incremental vs rebuild).
  views::RepairStats repair;
  RunMetrics metrics;  ///< the synchronous run's metrics
};

struct FaultRunResult {
  std::vector<EpochReport> epochs;
  bool safe = true;      ///< every epoch's safety verdict held
  bool async_ok = true;  ///< every async cross-check agreed
  std::size_t incremental_epochs = 0;  ///< epochs served by view repair
  std::size_t recomputed_views = 0;  ///< total frontier interns across repairs
  std::size_t reused_views = 0;      ///< total entries repair did NOT touch
};

/// Runs `plan` against the protocol family built by `make_programs` (for
/// the portfolio rows, PortfolioAlgorithm::make) on `g`, as described in
/// the header comment. The plan must keep the alive subgraph connected at
/// every step (FaultPlan::random guarantees it; hand-written plans are
/// checked). All views intern into `repo`.
[[nodiscard]] FaultRunResult run_with_faults(
    const portgraph::PortGraph& g, views::ViewRepo& repo,
    const FaultPlan& plan,
    const std::function<election::ProgramSet(election::ElectionContext&)>&
        make_programs,
    const FaultRunOptions& opts = {});

}  // namespace anole::sim
