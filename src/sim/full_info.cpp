#include "sim/full_info.hpp"

#include <algorithm>
#include <chrono>

#include "views/refiner.hpp"

namespace anole::sim {

RunMetrics run_full_info(const portgraph::PortGraph& graph,
                         views::ViewRepo& repo,
                         std::span<const std::unique_ptr<NodeProgram>> programs,
                         int max_rounds, bool meter_messages,
                         util::ThreadPool* pool) {
  const portgraph::PortGraph& g = graph;
  ANOLE_CHECK_MSG(programs.size() == g.n(),
                  "need one program per node: " << programs.size() << " vs "
                                                << g.n());
  std::size_t n = g.n();

  // The batched advance is exact only for COM: outgoing/deliver are final
  // in FullInfoProgram. Anything else goes through the general engine.
  std::vector<FullInfoProgram*> fips(n);
  for (std::size_t v = 0; v < n; ++v) {
    fips[v] = dynamic_cast<FullInfoProgram*>(programs[v].get());
    if (fips[v] == nullptr)
      return Engine(g, repo).run(programs, max_rounds, meter_messages);
  }

  auto wall_start = std::chrono::steady_clock::now();
  RunMetrics metrics;
  metrics.decision_round.assign(n, -1);
  metrics.outputs.resize(n);
  internal::DecisionTracker decisions(programs, metrics);

  for (std::size_t v = 0; v < n; ++v)
    fips[v]->start(repo, g.degree(static_cast<portgraph::NodeId>(v)));
  decisions.note(0);

  std::size_t degree_sum = 0;
  for (std::size_t v = 0; v < n; ++v)
    degree_sum +=
        static_cast<std::size_t>(g.degree(static_cast<portgraph::NodeId>(v)));

  views::Refiner refiner(g, repo, pool);
  std::vector<views::ViewId> level(n);
  for (std::size_t v = 0; v < n; ++v) level[v] = fips[v]->view();
  std::vector<views::ViewId> next(n);
  // Distinct ids of the current level, ascending: one sort-unique seeds
  // round 0; every later round reads the refiner's dedup output directly
  // (still valid — the next advance() happens after the metering).
  // Ranking the seed leaves (start() interned them outside the refiner)
  // keeps the canonical-rank induction alive: every view of every later
  // round gets a rank, so the programs' ordering queries stay O(1).
  std::vector<views::ViewId> seed_distinct = views::distinct_ids(level);
  repo.assign_ranks(seed_distinct);
  bool seeded = true;
  std::vector<std::size_t> distinct_bits;

  int round = 0;
  while (!decisions.all_decided()) {
    if (round >= max_rounds) {
      metrics.timed_out = true;
      break;
    }
    // Every node's outgoing message is its current view: `level` IS the
    // round's outbox — the shared metering helper prices it exactly as
    // Engine::run does.
    if (meter_messages) {
      internal::meter_round(g, repo, level,
                            seeded ? std::span<const views::ViewId>(
                                         seed_distinct)
                                   : refiner.distinct(),
                            distinct_bits, metrics);
    } else {
      metrics.message_count += degree_sum;
    }

    refiner.advance(level, next);
    level.swap(next);
    seeded = false;
    // on_view hooks may touch the shared repo: sequential, in node order
    // (the same order Engine::run delivers inboxes).
    for (std::size_t v = 0; v < n; ++v)
      fips[v]->advance_to(level[v], round + 1);
    ++round;
    decisions.note(round);
  }
  metrics.rounds = round;
  metrics.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
  return metrics;
}

}  // namespace anole::sim
