#include "sim/full_info.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "views/refiner.hpp"

namespace anole::sim {
namespace {

/// Prices one metered round through the frozen quotient: the same sums
/// internal::meter_round computes from the per-node outbox, regrouped by
/// class. Every node of class c sends the class's current view through
/// deg(v) ports, so round bits = Σ_c size(view_c) · Σ_{v∈c} deg(v); the
/// per-class degree sums are frozen with the partition. All terms are the
/// exact size_t values of the per-node sum, only reassociated — the
/// metrics stay byte-identical (pinned by tests/stable_test.cpp).
void meter_round_quotient(const views::Refiner& refiner,
                          const views::ViewRepo& repo,
                          std::span<const std::size_t> class_degree_sum,
                          std::size_t degree_sum, RunMetrics& metrics) {
  std::size_t classes = refiner.classes();
  std::size_t round_bits = 0;
  for (std::size_t c = 0; c < classes; ++c) {
    std::size_t bits = repo.serialized_size_bits(refiner.class_view(c));
    metrics.max_message_bits = std::max(metrics.max_message_bits, bits);
    round_bits += bits * class_degree_sum[c];
  }
  metrics.message_count += degree_sum;
  metrics.total_message_bits += round_bits;
  metrics.bits_per_round.push_back(round_bits);
  metrics.distinct_views_per_round.push_back(classes);
}

}  // namespace

RunMetrics run_full_info(const portgraph::PortGraph& graph,
                         views::ViewRepo& repo,
                         std::span<const std::unique_ptr<NodeProgram>> programs,
                         int max_rounds, bool meter_messages,
                         util::ThreadPool* pool, views::Refiner* reuse,
                         const util::CancelToken* cancel) {
  const portgraph::PortGraph& g = graph;
  ANOLE_CHECK_MSG(programs.size() == g.n(),
                  "need one program per node: " << programs.size() << " vs "
                                                << g.n());
  std::size_t n = g.n();

  // The batched advance is exact only for COM: outgoing/deliver are final
  // in FullInfoProgram. Anything else goes through the general engine.
  std::vector<FullInfoProgram*> fips(n);
  for (std::size_t v = 0; v < n; ++v) {
    fips[v] = dynamic_cast<FullInfoProgram*>(programs[v].get());
    if (fips[v] == nullptr)
      return Engine(g, repo).run(programs, max_rounds, meter_messages);
  }

  auto wall_start = std::chrono::steady_clock::now();
  // Levels land in the repo one per round: size the storage for a deep
  // run up front so no round stalls on a rehash (DESIGN.md §9).
  repo.reserve_for(n, g.m(), std::min(max_rounds, 1024));
  RunMetrics metrics;
  metrics.decision_round.assign(n, -1);
  metrics.outputs.resize(n);
  internal::DecisionTracker decisions(programs, metrics);

  for (std::size_t v = 0; v < n; ++v)
    fips[v]->start(repo, g.degree(static_cast<portgraph::NodeId>(v)));
  decisions.note(0);

  std::size_t degree_sum = 0;
  for (std::size_t v = 0; v < n; ++v)
    degree_sum +=
        static_cast<std::size_t>(g.degree(static_cast<portgraph::NodeId>(v)));

  // A caller-provided refiner is rebound to this graph (recycling its
  // columns, tables and arenas across a sweep of runs); otherwise a local
  // one lives for just this run.
  std::optional<views::Refiner> local;
  if (reuse != nullptr) {
    ANOLE_CHECK_MSG(&reuse->repo() == &repo,
                    "reused refiner interns into a different repo");
    reuse->attach(g);
    reuse->set_pool(pool);
  }
  views::Refiner& refiner = reuse != nullptr ? *reuse : local.emplace(g, repo, pool);
  // Round-granularity cancellation: each round's advance (full or
  // quotient) polls the token before doing any work.
  refiner.set_cancel(cancel);
  std::vector<views::ViewId> level(n);
  for (std::size_t v = 0; v < n; ++v) level[v] = fips[v]->view();
  std::vector<views::ViewId> next(n);
  // Distinct ids of the current level, ascending: one sort-unique seeds
  // round 0; every later round reads the refiner's dedup output directly
  // (still valid — the next advance() happens after the metering).
  // Ranking the seed leaves (start() interned them outside the refiner)
  // keeps the canonical-rank induction alive: every view of every later
  // round gets a rank, so the programs' ordering queries stay O(1).
  std::vector<views::ViewId> seed_distinct = views::distinct_ids(level);
  repo.assign_ranks(seed_distinct);
  bool seeded = true;
  std::vector<std::size_t> distinct_bits;

  // Once the refiner freezes the quotient (partition stabilization —
  // DESIGN.md §9) the per-node level vector is never materialized again:
  // rounds advance the C classes, metering prices the C distinct views
  // through the frozen per-class degree sums, and only the undecided
  // nodes' on_view hooks read their view through the O(1) class index.
  bool quotient_mode = false;
  std::vector<std::size_t> class_degree_sum;

  int round = 0;
  while (!decisions.all_decided()) {
    if (round >= max_rounds) {
      metrics.timed_out = true;
      break;
    }
    // Every node's outgoing message is its current view: `level` (or the
    // quotient's class state) IS the round's outbox — priced exactly as
    // Engine::run does.
    if (meter_messages) {
      if (quotient_mode) {
        meter_round_quotient(refiner, repo, class_degree_sum, degree_sum,
                             metrics);
      } else {
        internal::meter_round(g, repo, level,
                              seeded ? std::span<const views::ViewId>(
                                           seed_distinct)
                                     : refiner.distinct(),
                              distinct_bits, metrics);
      }
    } else {
      metrics.message_count += degree_sum;
    }

    if (quotient_mode) {
      refiner.advance_quotient();
    } else {
      refiner.advance(level, next);
      level.swap(next);
      if (refiner.stable()) {
        quotient_mode = true;
        class_degree_sum.assign(refiner.classes(), 0);
        std::span<const std::uint32_t> class_of = refiner.class_of();
        for (std::size_t v = 0; v < n; ++v)
          class_degree_sum[class_of[v]] += static_cast<std::size_t>(
              g.degree(static_cast<portgraph::NodeId>(v)));
      }
    }
    seeded = false;
    // on_view hooks may touch the shared repo: sequential, in node order
    // (the same order Engine::run delivers inboxes). Only the undecided
    // nodes are advanced — a decided node's output is already captured,
    // and its outgoing view lives in the level/quotient, not in program
    // state, so the skip changes no metric bit. The fused pass advances
    // each node and checks its decision in one touch.
    if (quotient_mode) {
      decisions.advance_then_note(round + 1, [&](std::uint32_t v) {
        fips[v]->advance_to(
            refiner.node_view(static_cast<portgraph::NodeId>(v)), round + 1);
      });
    } else {
      decisions.advance_then_note(round + 1, [&](std::uint32_t v) {
        fips[v]->advance_to(level[v], round + 1);
      });
    }
    ++round;
  }
  metrics.rounds = round;
  metrics.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
  return metrics;
}

}  // namespace anole::sim
