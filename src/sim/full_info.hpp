#pragma once
// FullInfoProgram: the paper's COM subroutine (Algorithm 1) as a reusable
// protocol base class.
//
//   Algorithm 1 COM(i): send B^i(u) to all neighbors; receive B^i(v) from
//   each neighbor v.
//
// "When all nodes repeat this subroutine for i = 0,...,t-1, every node
// acquires its augmented truncated view at depth t." A subclass only
// decides *when* to stop and *what* to output from the acquired view.

#include "sim/engine.hpp"

namespace anole::sim {

class FullInfoProgram : public NodeProgram {
 public:
  void start(views::ViewRepo& repo, int degree) final {
    repo_ = &repo;
    degree_ = degree;
    view_ = repo.leaf(degree);
    on_view(0);
  }

  [[nodiscard]] views::ViewId outgoing(int /*round*/) final { return view_; }

  void deliver(int round, std::span<const Message> inbox) final {
    std::vector<views::ChildRef> kids;
    kids.reserve(inbox.size());
    for (const Message& msg : inbox)
      kids.emplace_back(msg.sender_port, msg.view);
    view_ = repo_->intern(kids);
    on_view(round + 1);
  }

 protected:
  /// Hook invoked whenever the node's knowledge grows: after `rounds`
  /// rounds of COM the node holds B^rounds — available as view().
  virtual void on_view(int rounds) = 0;

  [[nodiscard]] views::ViewRepo& repo() const { return *repo_; }
  [[nodiscard]] int degree() const noexcept { return degree_; }
  /// B^r(u) where r is the number of completed rounds.
  [[nodiscard]] views::ViewId view() const noexcept { return view_; }

 private:
  views::ViewRepo* repo_ = nullptr;
  int degree_ = 0;
  views::ViewId view_ = views::kInvalidView;
};

}  // namespace anole::sim
