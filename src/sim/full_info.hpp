#pragma once
// FullInfoProgram: the paper's COM subroutine (Algorithm 1) as a reusable
// protocol base class.
//
//   Algorithm 1 COM(i): send B^i(u) to all neighbors; receive B^i(v) from
//   each neighbor v.
//
// "When all nodes repeat this subroutine for i = 0,...,t-1, every node
// acquires its augmented truncated view at depth t." A subclass only
// decides *when* to stop and *what* to output from the acquired view.
//
// Because outgoing() and deliver() are final here, a COM round is fully
// determined by the level vector of current views — which is exactly what
// views::Refiner batch-advances. run_full_info() exploits that: it runs
// FullInfoProgram protocols through batched refinement, one Refiner
// advance per round instead of n intern calls, with metrics byte-identical
// to Engine::run (see DESIGN.md §7).

#include <memory>

#include "sim/engine.hpp"

namespace anole::util {
class CancelToken;
class ThreadPool;
}  // namespace anole::util

namespace anole::views {
class Refiner;
}  // namespace anole::views

namespace anole::sim {

class FullInfoProgram;

/// Fast path for COM-style protocols: when every program is a
/// FullInfoProgram, rounds are advanced by batched level refinement
/// (views::Refiner) — dedup the level's signatures, intern each distinct
/// one once, hand every node its next view — instead of one inbox build +
/// intern per node. Once the refinement partition stabilizes the run
/// switches to the quotient advancer (DESIGN.md §9): each round interns
/// exactly C = classes() views, metering prices those C views through
/// frozen per-class degree sums, and only the still-undecided nodes' O(1)
/// class-index lookups touch per-node state. Metrics (decision rounds,
/// outputs, message counts and bits, per-round breakdowns) are
/// byte-identical to Engine::run on the same inputs, and independent of
/// `pool` (which only parallelizes the refiner's gather/hash phase). If
/// some program is NOT a FullInfoProgram the call falls back to
/// Engine::run — so callers may wire it in unconditionally.
///
/// `refiner`, when given, is reused instead of constructing one per call
/// (it must intern into `repo`): the refiner is attach()ed to `graph` and
/// takes `pool`, recycling its SoA columns, dedup table and arenas across
/// a sweep of runs. Metrics are identical either way.
///
/// Warm start (DESIGN.md §13): pass a `repo` loaded from a snapshot of
/// the same graph and every intern of an already-stored level is an index
/// hit returning the stored id — the run re-derives levels but allocates
/// no records and renumbers no ranks (assign_ranks over an already-ranked
/// depth is a no-op), so repo.size() is unchanged when max_rounds stays
/// within the stored depth and all metric bits match a cold run exactly
/// (tests/snapshot_test.cpp pins both).
///
/// `cancel`, when given, is polled once per round (through the refiner's
/// level checkpoint — DESIGN.md §14); an expired token aborts the run
/// with util::CancelledError. Partial rounds leave only valid
/// hash-consed records behind, so the shared repo stays fully usable.
RunMetrics run_full_info(const portgraph::PortGraph& graph,
                         views::ViewRepo& repo,
                         std::span<const std::unique_ptr<NodeProgram>> programs,
                         int max_rounds, bool meter_messages = false,
                         util::ThreadPool* pool = nullptr,
                         views::Refiner* refiner = nullptr,
                         const util::CancelToken* cancel = nullptr);

class FullInfoProgram : public NodeProgram {
 public:
  void start(views::ViewRepo& repo, int degree) final {
    repo_ = &repo;
    degree_ = degree;
    view_ = repo.leaf(degree);
    on_view(0);
  }

  [[nodiscard]] views::ViewId outgoing(int /*round*/) final { return view_; }

  void deliver(int round, std::span<const Message> inbox) final {
    std::vector<views::ChildRef> kids;
    kids.reserve(inbox.size());
    for (const Message& msg : inbox)
      kids.emplace_back(msg.sender_port, msg.view);
    view_ = repo_->intern(kids);
    on_view(round + 1);
  }

 protected:
  /// Hook invoked whenever the node's knowledge grows: after `rounds`
  /// rounds of COM the node holds B^rounds — available as view(). Not
  /// invoked again once has_output() is true: run_full_info advances only
  /// the still-undecided nodes (a decided node's outgoing view lives in
  /// the level/quotient, its output is already captured, and metrics are
  /// unaffected — but post-decision side effects in on_view would run
  /// under Engine::run and not here, so don't have any).
  virtual void on_view(int rounds) = 0;

  [[nodiscard]] views::ViewRepo& repo() const { return *repo_; }
  [[nodiscard]] int degree() const noexcept { return degree_; }
  /// B^r(u) where r is the number of completed rounds.
  [[nodiscard]] views::ViewId view() const noexcept { return view_; }

 private:
  friend RunMetrics run_full_info(
      const portgraph::PortGraph&, views::ViewRepo&,
      std::span<const std::unique_ptr<NodeProgram>>, int, bool,
      util::ThreadPool*, views::Refiner*, const util::CancelToken*);

  /// Batched-refinement equivalent of deliver(): the interned next view is
  /// handed over directly, skipping the per-node inbox and intern.
  void advance_to(views::ViewId next, int rounds) {
    view_ = next;
    on_view(rounds);
  }

  views::ViewRepo* repo_ = nullptr;
  int degree_ = 0;
  views::ViewId view_ = views::kInvalidView;
};

}  // namespace anole::sim
