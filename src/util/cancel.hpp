#pragma once
// Cooperative cancellation for long-running sweeps (DESIGN.md §14).
//
// A CancelToken is a tiny shared flag + optional wall deadline that a
// driver hands down into compute_profile / run_full_info / Refiner
// advances. The compute kernels poll it at *level/round* granularity —
// the natural safe points of the refinement pipeline — and bail out by
// throwing CancelledError. Aborting mid-sweep is harmless by design:
// every intern already completed is a valid hash-consed record of the
// shared ViewRepo, so a later identical query simply re-walks the same
// levels as index hits and re-derives byte-identical ids/ranks (pinned
// by tests/service_test.cpp).
//
// The token is polled from worker threads while cancel() may be called
// from a driver thread, hence the atomic flag. Deadlines use
// steady_clock so suspend/clock-step never fires them spuriously.

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace anole::util {

/// Thrown by CancelToken::check() when the token is cancelled or its
/// deadline has passed. Catch it to distinguish "query gave up" from a
/// genuine computation error.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("operation cancelled") {}
  explicit CancelledError(const char* what) : std::runtime_error(what) {}
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// A token with no deadline: expires only via cancel().
  CancelToken() = default;

  /// A token that additionally expires once `deadline` passes.
  explicit CancelToken(Clock::time_point deadline)
      : has_deadline_(true), deadline_(deadline) {}

  /// Convenience: a token expiring `budget` from now.
  static CancelToken after(Clock::duration budget) {
    return CancelToken(Clock::now() + budget);
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Thread-safe; idempotent.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True when cancelled or past the deadline. This is the poll the
  /// kernels pay once per level/round — one relaxed load plus (with a
  /// deadline) one steady_clock read.
  [[nodiscard]] bool expired() const noexcept {
    if (cancelled()) return true;
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// Throws CancelledError when expired(); the cooperative checkpoint.
  void check() const {
    if (expired()) throw CancelledError();
  }

  [[nodiscard]] bool has_deadline() const noexcept { return has_deadline_; }
  /// Meaningful only when has_deadline(). Drivers read it to compute
  /// remaining budget (e.g. Retry-After hints).
  [[nodiscard]] Clock::time_point deadline() const noexcept {
    return deadline_;
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
};

}  // namespace anole::util
