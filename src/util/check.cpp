#include "util/check.hpp"

namespace anole::util {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream oss;
  oss << "ANOLE_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw std::logic_error(oss.str());
}

}  // namespace anole::util
