#pragma once
// Lightweight runtime checking macros.
//
// ANOLE_CHECK is always on (graph validity, protocol invariants: violating
// them means the simulation result is meaningless, so we prefer a loud stop
// over silent corruption). ANOLE_DCHECK compiles out in NDEBUG builds.

#include <sstream>
#include <stdexcept>
#include <string>

namespace anole::util {

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);

}  // namespace anole::util

#define ANOLE_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond))                                                       \
      ::anole::util::check_failed(#cond, __FILE__, __LINE__, {});      \
  } while (0)

#define ANOLE_CHECK_MSG(cond, msg)                                     \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream anole_oss_;                                   \
      anole_oss_ << msg;                                               \
      ::anole::util::check_failed(#cond, __FILE__, __LINE__,           \
                                  anole_oss_.str());                   \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define ANOLE_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define ANOLE_DCHECK(cond) ANOLE_CHECK(cond)
#endif
