#pragma once
// Integer math used throughout the paper's algorithms: floor(log2),
// iterated logarithm log*, and the tower-of-powers notation  ic  defined by
// 0c = 1 and (i+1)c = c^(ic)  (Section 4 of the paper).

#include <cstdint>

#include "util/check.hpp"

namespace anole::util {

/// floor(log2(x)) for x >= 1.
constexpr std::uint32_t floor_log2(std::uint64_t x) noexcept {
  std::uint32_t r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// Number of bits in the standard binary representation of x (bin(0)="0").
constexpr std::uint32_t bit_length(std::uint64_t x) noexcept {
  return x == 0 ? 1 : floor_log2(x) + 1;
}

/// Iterated logarithm base 2: the number of times log2 must be applied to x
/// before the result is <= 1. log*(1) = 0, log*(2) = 1, log*(4) = 2,
/// log*(16) = 3, log*(65536) = 4.
constexpr std::uint32_t log_star(std::uint64_t x) noexcept {
  std::uint32_t r = 0;
  // Work with the real-valued log via repeated floor_log2; for the tower
  // milestones (2, 4, 16, 65536, ...) this matches the exact definition.
  while (x > 1) {
    x = floor_log2(x);
    ++r;
  }
  return r;
}

/// Tower of powers: tower(i, c) = ic with 0c = 1, (i+1)c = c^(ic).
/// Saturates at `cap` to avoid overflow (the paper only ever *compares*
/// towers against graph parameters, so saturation is safe).
constexpr std::uint64_t tower(std::uint32_t i, std::uint64_t c,
                              std::uint64_t cap = UINT64_C(1) << 62) {
  if (c <= 1) return 1;  // degenerate base: the tower never grows
  std::uint64_t v = 1;
  for (std::uint32_t k = 0; k < i; ++k) {
    // v' = c^v, computed with saturation.
    std::uint64_t p = 1;
    for (std::uint64_t e = 0; e < v; ++e) {
      if (p > cap / c) return cap;
      p *= c;
    }
    v = p;
    if (v >= cap) return cap;
  }
  return v;
}

/// Saturating integer power base^exp (cap as in tower()).
constexpr std::uint64_t ipow(std::uint64_t base, std::uint64_t exp,
                             std::uint64_t cap = UINT64_C(1) << 62) {
  std::uint64_t p = 1;
  for (std::uint64_t e = 0; e < exp; ++e) {
    if (base != 0 && p > cap / base) return cap;
    p *= base;
  }
  return p;
}

}  // namespace anole::util
