#pragma once
// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomized graph builders and workload generators in this project take
// an explicit seed and draw from this PRNG, never from std::random_device,
// so every table and test is bit-reproducible across runs and machines.

#include <cstdint>
#include <limits>

namespace anole::util {

/// splitmix64: tiny, fast, full-period 2^64 generator. Used both directly
/// and to seed derived streams. Satisfies UniformRandomBitGenerator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire-style rejection to avoid modulo bias.
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) noexcept {
    return below(den) < num;
  }

 private:
  std::uint64_t state_;
};

/// Derives an independent-looking child seed from (seed, stream index).
constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                    std::uint64_t stream) noexcept {
  SplitMix64 g(seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  return g();
}

}  // namespace anole::util
