#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace anole::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ANOLE_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  ANOLE_CHECK_MSG(cells.size() == header_.size(),
                  "row width " << cells.size() << " != header width "
                               << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string Table::num(long long v) { return std::to_string(v); }
std::string Table::num(unsigned long long v) { return std::to_string(v); }

void Table::print(std::ostream& os, const std::string& caption) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 < row.size() ? " | " : " |");
    }
    os << '\n';
  };

  if (!caption.empty()) os << caption << '\n';
  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
  os << '\n';
}

void Table::print_csv(std::ostream& os) const {
  auto escape = [](const std::string& cell) -> std::string {
    if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << escape(row[c]);
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace anole::util
