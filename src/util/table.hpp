#pragma once
// Plain-text table printer for the benchmark harnesses.
//
// Every experiment binary prints one or more tables in the same style as the
// paper reports its bounds: a header row, aligned numeric columns, and a
// caption tying the table to the theorem/figure it regenerates.

#include <iosfwd>
#include <string>
#include <vector>

namespace anole::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; the number of cells must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with the given precision (helper for callers).
  static std::string num(double v, int precision = 3);
  static std::string num(long long v);
  static std::string num(unsigned long long v);
  static std::string num(int v) { return num(static_cast<long long>(v)); }
  static std::string num(std::size_t v) {
    return num(static_cast<unsigned long long>(v));
  }

  /// Renders the table with column alignment to `os`.
  void print(std::ostream& os, const std::string& caption = {}) const;

  /// Renders the table as RFC-4180 CSV (header + rows, no caption): cells
  /// containing commas, quotes or newlines are quoted, quotes doubled.
  void print_csv(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace anole::util
