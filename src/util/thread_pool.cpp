#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "util/check.hpp"

namespace anole::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  ANOLE_CHECK(task != nullptr);
  {
    std::scoped_lock lock(mu_);
    ANOLE_CHECK_MSG(!stop_, "submit after shutdown");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::scoped_lock lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t threads) {
  ThreadPool pool(threads);
  std::mutex err_mu;
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&, i] {
      try {
        fn(i);
      } catch (...) {
        std::scoped_lock lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace anole::util
