#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "util/cancel.hpp"
#include "util/check.hpp"

namespace anole::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  submit(nullptr, std::move(task));
}

void ThreadPool::submit(const CancelToken* token, std::function<void()> task) {
  ANOLE_CHECK(task != nullptr);
  {
    std::scoped_lock lock(mu_);
    ANOLE_CHECK_MSG(!stop_, "submit after shutdown");
    queue_.push(Task{std::move(task), token});
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock lock(mu_);
    cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
    // Hand the first captured task exception to exactly one waiter and
    // reset, so the pool stays usable for further submit/wait cycles.
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  // Decrements in_flight_ even when the task throws: a leaked exception
  // would otherwise skip the decrement and hang wait_idle forever.
  struct InFlightGuard {
    ThreadPool* pool;
    ~InFlightGuard() {
      std::scoped_lock lock(pool->mu_);
      --pool->in_flight_;
      if (pool->in_flight_ == 0) pool->cv_idle_.notify_all();
    }
  };
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    InFlightGuard guard{this};
    // An expired token skips the task entirely — it still completes for
    // the in-flight accounting, so wait_idle never hangs on shed work.
    if (task.token != nullptr && task.token->expired()) continue;
    try {
      task.fn();
    } catch (...) {
      // A throwing task must not escape the worker (std::terminate); the
      // first exception surfaces from wait_idle, the rest are dropped.
      std::scoped_lock lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              std::size_t grain, const RangeFn& fn) {
  ANOLE_CHECK(fn != nullptr);
  if (begin >= end) return;
  std::size_t range = end - begin;
  if (grain == 0) grain = 1;
  // At least `grain` indices per chunk, at most size()*4 chunks: enough
  // slack for dynamic balancing without flooding the queue with
  // micro-tasks.
  std::size_t per_chunk = std::max(grain, (range + size() * 4 - 1) /
                                              (size() * 4));
  std::size_t chunks = (range + per_chunk - 1) / per_chunk;
  if (chunks <= 1) {
    fn(begin, end, 0);
    return;
  }
  for (std::size_t c = 0; c < chunks; ++c) {
    std::size_t lo = begin + c * per_chunk;
    std::size_t hi = std::min(end, lo + per_chunk);
    submit([&fn, lo, hi, c] { fn(lo, hi, c); });
  }
  wait_idle();  // rethrows the first chunk exception, if any
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t threads) {
  ThreadPool pool(threads);
  for (std::size_t i = 0; i < count; ++i)
    pool.submit([&fn, i] { fn(i); });
  pool.wait_idle();  // rethrows the first task exception, if any
}

}  // namespace anole::util
