#pragma once
// Minimal fixed-size thread pool used by the benchmark harnesses to run
// independent (graph, parameter) cells of a sweep in parallel.
//
// The LOCAL-model simulation itself stays single-threaded per graph so that
// round semantics remain deterministic; parallelism only spans independent
// experiment cells, which share no mutable state (each cell owns its graph
// and its ViewRepo).

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace anole::util {

class CancelToken;

class ThreadPool {
 public:
  /// Creates `threads` workers (0 means hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution. A throwing task never
  /// escapes its worker thread (which would std::terminate the process):
  /// the first exception is captured and rethrown from wait_idle().
  void submit(std::function<void()> task);

  /// Token-aware form: a task whose token is already expired when a
  /// worker dequeues it is *skipped* — it completes (for wait_idle
  /// accounting; nothing leaks) without ever running. The token must
  /// outlive the task. Queued-but-doomed work behind a missed deadline
  /// thus drains at dequeue cost instead of compute cost. A null token
  /// behaves exactly like the plain overload.
  void submit(const CancelToken* token, std::function<void()> task);

  /// Blocks until all submitted tasks have completed. If any task threw,
  /// rethrows the first captured exception (later ones are dropped); the
  /// pool stays usable afterwards.
  void wait_idle();

  std::size_t size() const noexcept { return workers_.size(); }

  /// A contiguous chunk of a parallel_for range.
  using RangeFn =
      std::function<void(std::size_t begin, std::size_t end,
                         std::size_t chunk)>;

  /// Splits [begin, end) into chunks of at least `grain` indices (at most
  /// 4 per worker, so a slow chunk can't serialize the tail), runs
  /// fn(chunk_begin, chunk_end, chunk_index) across the pool and waits.
  /// The chunk index is dense in [0, chunk_count) — callers keeping
  /// per-chunk state (e.g. one ViewRepo::InternArena per chunk) key on it.
  /// Exceptions thrown by fn propagate to the caller (first one wins).
  /// Must not be called from inside a pool task (wait_idle would deadlock
  /// on the caller's own in-flight entry).
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const RangeFn& fn);

  /// Convenience: runs fn(i) for i in [0, count) across the pool and waits.
  /// Exceptions thrown by fn propagate to the caller (first one wins).
  static void parallel_for(std::size_t count,
                           const std::function<void(std::size_t)>& fn,
                           std::size_t threads = 0);

 private:
  void worker_loop();

  struct Task {
    std::function<void()> fn;
    const CancelToken* token = nullptr;  ///< skip at dequeue when expired
  };

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;  ///< guarded by mu_
};

}  // namespace anole::util
