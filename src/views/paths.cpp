#include "views/paths.hpp"

#include <algorithm>

namespace anole::views {

std::unordered_map<ViewId, DagPath> best_paths(const ViewRepo& repo,
                                               ViewId root, int max_level) {
  std::unordered_map<ViewId, DagPath> best;
  best.emplace(root, DagPath{0, {}});
  std::vector<ViewId> frontier{root};
  for (int level = 0; level < max_level && !frontier.empty(); ++level) {
    // Deterministic expansion order: sort the frontier by its (already
    // final) best paths so children inherit lexicographically minimal
    // prefixes in one pass.
    std::sort(frontier.begin(), frontier.end(), [&](ViewId a, ViewId b) {
      return best.at(a).ports < best.at(b).ports;
    });
    std::vector<ViewId> next;
    for (ViewId v : frontier) {
      const DagPath& base = best.at(v);
      std::span<const ChildRef> kids = repo.children(v);
      for (std::size_t p = 0; p < kids.size(); ++p) {
        const auto& [rev_port, child] = kids[p];
        std::vector<int> cand = base.ports;
        cand.push_back(static_cast<int>(p));
        cand.push_back(static_cast<int>(rev_port));
        auto it = best.find(child);
        if (it == best.end()) {
          best.emplace(child, DagPath{level + 1, std::move(cand)});
          next.push_back(child);
        } else if (it->second.level == level + 1 &&
                   cand < it->second.ports) {
          it->second.ports = std::move(cand);
        }
        // A record found at an earlier level keeps its shorter path: view
        // ids encode their depth, so records at different levels never
        // collide and `level` strictly increases per frontier pass.
      }
    }
    frontier = std::move(next);
  }
  return best;
}

}  // namespace anole::views
