#pragma once
// Path extraction inside a view DAG.
//
// A node running Generic(x) or the map-based baseline must output "the
// sequence of port numbers corresponding to the shortest path from u to w
// in B" (Algorithm 7): a root-to-node path in its own view tree. Because we
// store views as DAGs, all view-tree nodes with the same subtree collapse
// into one record; for each record this utility computes the best path from
// the root, where best = (shortest level, then lexicographically smallest
// port sequence). That is exactly the tie-break Algorithm 7 specifies for
// the set W.

#include <unordered_map>
#include <vector>

#include "views/view_repo.hpp"

namespace anole::views {

struct DagPath {
  /// Level in the view tree (= depth(root) - depth(view id)).
  int level = 0;
  /// Port pairs (p1,q1,...,pk,qk) from the root to this record.
  std::vector<int> ports;
};

/// Best path per reachable record of the DAG rooted at `root`, exploring
/// levels 0..max_level (pass depth(root) to reach everything).
/// Keys are view ids; a view id of depth d occurs at level depth(root)-d.
[[nodiscard]] std::unordered_map<ViewId, DagPath> best_paths(
    const ViewRepo& repo, ViewId root, int max_level);

}  // namespace anole::views
