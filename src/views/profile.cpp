#include "views/profile.hpp"

#include <algorithm>
#include <atomic>
#include <optional>

#include "views/refiner.hpp"
#include "views/snapshot.hpp"

namespace anole::views {
namespace {

/// Debug stat behind profile_compute_count(): atomic because scenario
/// cells call compute_profile from runner worker threads.
std::atomic<std::uint64_t> g_profile_computes{0};

/// Appends a freshly advanced level, honoring the history mode.
void push_level(ViewProfile& profile, std::vector<ViewId>&& level,
                std::size_t classes) {
  if (profile.keep_history || profile.ids.empty())
    profile.ids.push_back(std::move(level));
  else
    profile.ids.back() = std::move(level);
  profile.class_counts.push_back(classes);
}

}  // namespace

std::uint64_t profile_compute_count() {
  return g_profile_computes.load(std::memory_order_relaxed);
}

ViewProfile compute_profile(const portgraph::PortGraph& g, ViewRepo& repo,
                            const ProfileOptions& opts) {
  ANOLE_CHECK_MSG(g.n() >= 1, "profile of an empty graph");
  g_profile_computes.fetch_add(1, std::memory_order_relaxed);
  ViewProfile profile;
  profile.keep_history = opts.keep_history;
  std::size_t n = g.n();
  // A caller-provided refiner is rebound to this graph (recycling its
  // columns, tables and arenas across a sweep); otherwise a local one
  // lives for just this call. Either way the same repo is interned into.
  std::optional<Refiner> local;
  Refiner* refiner = opts.refiner;
  if (refiner != nullptr) {
    ANOLE_CHECK_MSG(&refiner->repo() == &repo,
                    "reused refiner interns into a different repo");
    refiner->set_pool(opts.pool);
  } else {
    refiner = &local.emplace(repo, opts.pool);
  }
  // Installed unconditionally (nullptr clears a stale token from a prior
  // reuse of the same refiner). advance/advance_quotient do the polling.
  refiner->set_cancel(opts.cancel);

  // True while ids.back() lags behind the refiner's quotient state (deep
  // keep_history=false sweeps advance the quotient without materializing
  // per-node levels); one scatter on exit catches it up.
  bool last_level_stale = false;

  if (opts.warm != nullptr) {
    // Warm start off a snapshot anchor (DESIGN.md §13): restore the
    // per-depth counts, replay feasibility detection over them, and put
    // the refiner exactly where the cold run would stand at the anchor's
    // depth. The repo is the loaded snapshot — its index, ranks and
    // high-water mark already cover everything stored, so reserve_for is
    // skipped and resuming costs O(n), not O(records).
    const SweepAnchor& anchor = *opts.warm;
    ANOLE_CHECK_MSG(!opts.keep_history,
                    "warm start requires keep_history = false");
    ANOLE_CHECK_MSG(anchor.fingerprint == graph_fingerprint(g),
                    "warm-start anchor is for a different graph");
    ANOLE_CHECK_MSG(anchor.class_of.size() == n,
                    "anchor is over " << anchor.class_of.size()
                                      << " nodes, graph has " << n);
    profile.class_counts = anchor.class_counts;
    for (std::size_t t = 0; t < profile.class_counts.size(); ++t) {
      if (profile.class_counts[t] == n) {
        profile.feasible = true;
        profile.election_index = static_cast<int>(t);
        break;
      }
    }
    profile.ids.emplace_back();
    if (anchor.stabilized()) {
      // Quotient resume: no column build, no re-intern of stored levels;
      // the level vector stays unmaterialized until the exit scatter.
      refiner->resume_stable(g, anchor);
      last_level_stale = true;
    } else {
      refiner->attach(g);
      anchor.expand_level(profile.ids.back());
    }
  } else {
    repo.reserve_for(g.n(), g.m(), opts.min_depth);
    refiner->attach(g);
    std::vector<ViewId> level;
    std::size_t classes = refiner->init_level(level);
    push_level(profile, std::move(level), classes);
  }
  for (;;) {
    int t = profile.computed_depth();
    std::size_t classes = profile.class_counts.back();
    if (classes == n && profile.election_index < 0) {
      profile.feasible = true;
      profile.election_index = t;
    }
    bool stabilized =
        t >= 1 && classes == profile.class_counts[static_cast<std::size_t>(t) - 1];
    bool done = (profile.feasible || stabilized) && t >= opts.min_depth;
    if (done) break;

    if (refiner->stable() && !profile.keep_history) {
      // Stable phase, deepest-level-only mode: O(classes) per round —
      // no gather, no dedup, not even the O(n) scatter (DESIGN.md §9).
      profile.class_counts.push_back(refiner->advance_quotient());
      last_level_stale = true;
      continue;
    }
    std::vector<ViewId> next;
    std::size_t next_classes = refiner->advance(profile.ids.back(), next);
    push_level(profile, std::move(next), next_classes);
  }
  if (last_level_stale) refiner->scatter(profile.ids.back());
  return profile;
}

ViewProfile compute_profile(const portgraph::PortGraph& g, ViewRepo& repo,
                            int min_depth) {
  return compute_profile(g, repo, ProfileOptions{.min_depth = min_depth});
}

void extend_profile(const portgraph::PortGraph& g, ViewRepo& repo,
                    ViewProfile& profile, int depth, util::ThreadPool* pool,
                    const util::CancelToken* cancel) {
  if (profile.computed_depth() >= depth) return;
  repo.reserve_for(g.n(), g.m(), depth - profile.computed_depth());
  Refiner refiner(g, repo, pool);
  refiner.set_cancel(cancel);
  bool last_level_stale = false;
  while (profile.computed_depth() < depth) {
    if (refiner.stable() && !profile.keep_history) {
      profile.class_counts.push_back(refiner.advance_quotient());
      last_level_stale = true;
      continue;
    }
    std::vector<ViewId> next;
    std::size_t classes = refiner.advance(profile.ids.back(), next);
    push_level(profile, std::move(next), classes);
  }
  if (last_level_stale) refiner.scatter(profile.ids.back());
}

portgraph::NodeId argmin_view(const ViewRepo& repo,
                              const std::vector<ViewId>& level) {
  ANOLE_CHECK(!level.empty());
  // Ranked fast path: rank order is the canonical order, so a single O(n)
  // min-rank scan replaces the dedup sort + compare loop — no distinct_ids
  // sort, no structural walks. The strict `<` keeps the lowest-numbered
  // witness of the canonical minimum, exactly like the fallback. The scan
  // reads many ranks that must be mutually consistent, so it runs under a
  // rank seqlock snapshot: if a concurrent assign_ranks renumbered
  // mid-scan the snapshot fails to validate and the scan retries, then
  // drops to the structural fallback (always correct — compare() shields
  // itself per pair).
  ViewRepo::RankReader ranks(repo);
  for (int attempt = 0; attempt < 3; ++attempt) {
    std::uint64_t token = repo.rank_snapshot();
    ViewId best_id = level[0];
    std::int32_t best_rank = ranks.rank(best_id);
    std::size_t best_v = 0;
    bool all_ranked = best_rank != kUnranked;
    for (std::size_t v = 1; all_ranked && v < level.size(); ++v) {
      // Repeats of the current minimum (ALL of a symmetric level) skip
      // the rank load; the strict `<` below never updates on them anyway.
      if (level[v] == best_id) continue;
      std::int32_t r = ranks.rank(level[v]);
      if (r == kUnranked)
        all_ranked = false;
      else if (r < best_rank) {
        best_rank = r;
        best_v = v;
        best_id = level[v];
      }
    }
    if (!all_ranked) break;
    if (repo.rank_snapshot_valid(token))
      return static_cast<portgraph::NodeId>(best_v);
  }
  // Structural fallback (some view unranked): a level usually has far
  // fewer distinct ids than entries (the class count of the refinement
  // partition), and an unranked compare() walks view structure — so dedup
  // first, compare only distinct representatives, then return the
  // lowest-numbered witness of the canonical minimum.
  std::vector<ViewId> distinct = distinct_ids(level);
  ViewId best = distinct.front();
  for (std::size_t i = 1; i < distinct.size(); ++i) {
    if (repo.compare(distinct[i], best) == std::strong_ordering::less)
      best = distinct[i];
  }
  for (std::size_t v = 0; v < level.size(); ++v)
    if (level[v] == best) return static_cast<portgraph::NodeId>(v);
  ANOLE_CHECK_MSG(false, "argmin witness vanished — unreachable");
  return -1;
}

}  // namespace anole::views
