#include "views/profile.hpp"

#include <unordered_set>

namespace anole::views {
namespace {

std::size_t distinct_count(const std::vector<ViewId>& level) {
  std::unordered_set<ViewId> set(level.begin(), level.end());
  return set.size();
}

void compute_next_level(const portgraph::PortGraph& g, ViewRepo& repo,
                        const std::vector<ViewId>& prev,
                        std::vector<ViewId>& next) {
  std::size_t n = g.n();
  next.resize(n);
  std::vector<ChildRef> kids;
  for (std::size_t v = 0; v < n; ++v) {
    const auto& row = g.neighbors(static_cast<portgraph::NodeId>(v));
    kids.clear();
    kids.reserve(row.size());
    for (const auto& he : row)
      kids.emplace_back(he.rev_port,
                        prev[static_cast<std::size_t>(he.neighbor)]);
    next[v] = repo.intern(kids);
  }
}

}  // namespace

ViewProfile compute_profile(const portgraph::PortGraph& g, ViewRepo& repo,
                            int min_depth) {
  ANOLE_CHECK_MSG(g.n() >= 1, "profile of an empty graph");
  ViewProfile profile;
  std::size_t n = g.n();

  std::vector<ViewId> level(n);
  for (std::size_t v = 0; v < n; ++v)
    level[v] = repo.leaf(g.degree(static_cast<portgraph::NodeId>(v)));
  profile.ids.push_back(level);
  profile.class_counts.push_back(distinct_count(level));

  for (;;) {
    int t = profile.computed_depth();
    std::size_t classes = profile.class_counts.back();
    if (classes == n && profile.election_index < 0) {
      profile.feasible = true;
      profile.election_index = t;
    }
    bool stabilized =
        t >= 1 && classes == profile.class_counts[static_cast<std::size_t>(t) - 1];
    bool done = (profile.feasible || stabilized) && t >= min_depth;
    if (done) break;

    std::vector<ViewId> next;
    compute_next_level(g, repo, profile.ids.back(), next);
    profile.ids.push_back(std::move(next));
    profile.class_counts.push_back(distinct_count(profile.ids.back()));
  }
  return profile;
}

void extend_profile(const portgraph::PortGraph& g, ViewRepo& repo,
                    ViewProfile& profile, int depth) {
  while (profile.computed_depth() < depth) {
    std::vector<ViewId> next;
    compute_next_level(g, repo, profile.ids.back(), next);
    profile.ids.push_back(std::move(next));
    profile.class_counts.push_back(distinct_count(profile.ids.back()));
  }
}

portgraph::NodeId argmin_view(const ViewRepo& repo,
                              const std::vector<ViewId>& level) {
  ANOLE_CHECK(!level.empty());
  std::size_t best = 0;
  for (std::size_t v = 1; v < level.size(); ++v) {
    if (level[v] != level[best] &&
        repo.compare(level[v], level[best]) == std::strong_ordering::less)
      best = v;
  }
  return static_cast<portgraph::NodeId>(best);
}

}  // namespace anole::views
