#pragma once
// Whole-graph view refinement: computes B^t(v) for every node and
// increasing t, the election index, and feasibility.
//
// Proposition 2.1: the election index of a feasible graph equals the
// smallest depth at which all augmented truncated views are distinct.
// The per-level class partition refines as t grows (B^t equality implies
// B^{t-1} equality); if the number of classes is the same at two
// consecutive depths the partition is a fixed point and will never become
// finer (standard refinement argument), so the graph is infeasible unless
// all n classes are already distinct.

#include <vector>

#include "portgraph/port_graph.hpp"
#include "views/view_repo.hpp"

namespace anole::views {

struct ViewProfile {
  /// ids[t][v] = ViewId of B^t(v); levels 0..computed_depth.
  std::vector<std::vector<ViewId>> ids;

  /// Number of distinct views at each computed depth.
  std::vector<std::size_t> class_counts;

  /// True iff all views become distinct at some depth (graph is feasible
  /// for leader election when the map is known — Yamashita/Kameda via [44]).
  bool feasible = false;

  /// The election index phi: smallest depth with all views distinct.
  /// Only meaningful when feasible.
  int election_index = -1;

  [[nodiscard]] int computed_depth() const {
    return static_cast<int>(ids.size()) - 1;
  }

  /// The view of node v at depth t (t <= computed_depth).
  [[nodiscard]] ViewId view(int t, portgraph::NodeId v) const {
    return ids[static_cast<std::size_t>(t)][static_cast<std::size_t>(v)];
  }
};

/// Computes B^t for t = 0,1,... until the partition stabilizes or all views
/// are distinct — and in any case up to at least `min_depth` levels (pass
/// e.g. the depth an algorithm will inspect). All views are interned into
/// `repo`.
[[nodiscard]] ViewProfile compute_profile(const portgraph::PortGraph& g,
                                          ViewRepo& repo, int min_depth = 0);

/// Extends an existing profile with levels up to `depth` (no-op if already
/// computed that far).
void extend_profile(const portgraph::PortGraph& g, ViewRepo& repo,
                    ViewProfile& profile, int depth);

/// The node whose depth-t view is canonically smallest (ties impossible
/// when t >= election index; otherwise the lowest-numbered witness).
[[nodiscard]] portgraph::NodeId argmin_view(const ViewRepo& repo,
                                            const std::vector<ViewId>& level);

}  // namespace anole::views
