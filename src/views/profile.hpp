#pragma once
// Whole-graph view refinement: computes B^t(v) for every node and
// increasing t, the election index, and feasibility.
//
// Proposition 2.1: the election index of a feasible graph equals the
// smallest depth at which all augmented truncated views are distinct.
// The per-level class partition refines as t grows (B^t equality implies
// B^{t-1} equality); if the number of classes is the same at two
// consecutive depths the partition is a fixed point and will never become
// finer (standard refinement argument), so the graph is infeasible unless
// all n classes are already distinct.
//
// Levels are advanced by views::Refiner (batched dedup-before-intern, see
// refiner.hpp and DESIGN.md §7): each level's class count is a byproduct
// of the batched dedup, and the optional thread pool parallelizes the
// gather/hash phase without changing a single id. Once the partition
// stabilizes the refiner's quotient advancer takes over (DESIGN.md §9):
// deep min_depth sweeps with keep_history = false pay O(classes) per
// level past stabilization — no per-node gather, hash, dedup or even
// scatter until the final level is materialized.

#include <vector>

#include "portgraph/port_graph.hpp"
#include "views/view_repo.hpp"

namespace anole::util {
class CancelToken;
class ThreadPool;
}  // namespace anole::util

namespace anole::views {

class Refiner;
struct SweepAnchor;  // views/snapshot.hpp

struct ViewProfile {
  /// ids[t][v] = ViewId of B^t(v); levels 0..computed_depth. When the
  /// profile was built with keep_history = false, only the *last* level is
  /// stored (ids.size() == 1) — class_counts still covers every level.
  std::vector<std::vector<ViewId>> ids;

  /// Number of distinct views at each computed depth.
  std::vector<std::size_t> class_counts;

  /// False when only the deepest level is retained (O(n) memory instead of
  /// O(n·t) — see ProfileOptions::keep_history).
  bool keep_history = true;

  /// True iff all views become distinct at some depth (graph is feasible
  /// for leader election when the map is known — Yamashita/Kameda via [44]).
  bool feasible = false;

  /// The election index phi: smallest depth with all views distinct.
  /// Only meaningful when feasible.
  int election_index = -1;

  [[nodiscard]] int computed_depth() const {
    return static_cast<int>(class_counts.size()) - 1;
  }

  /// The view of node v at depth t (t <= computed_depth; without history,
  /// only t == computed_depth is available).
  [[nodiscard]] ViewId view(int t, portgraph::NodeId v) const {
    if (!keep_history)
      ANOLE_CHECK_MSG(t == computed_depth(),
                      "level " << t << " was dropped (keep_history = false)");
    const auto& level = keep_history ? ids[static_cast<std::size_t>(t)]
                                     : ids.back();
    return level[static_cast<std::size_t>(v)];
  }

  /// The deepest computed level (valid in both history modes).
  [[nodiscard]] const std::vector<ViewId>& last_level() const {
    return ids.back();
  }
};

struct ProfileOptions {
  /// Compute at least this many levels (pass e.g. the depth an algorithm
  /// will inspect) even if the partition stabilizes earlier.
  int min_depth = 0;
  /// When false, retain only the deepest level in `ids` — the class counts
  /// (and hence feasibility / election index) are unaffected. Use for deep
  /// sweeps that only need the final partition.
  bool keep_history = true;
  /// Optional pool for the Refiner's gather/hash phase. Output (ids and
  /// counts alike) is identical for any pool, including none.
  util::ThreadPool* pool = nullptr;
  /// Optional Refiner to reuse instead of constructing one per call: it is
  /// attach()ed to the graph (which trims over-sized scratch) and takes
  /// `pool` for this computation. Must intern into the same `repo` the
  /// profile call receives. Sweeps over many graphs pass one refiner so
  /// the SoA columns, dedup table and arenas are recycled rather than
  /// re-allocated per cell. Output is identical either way.
  Refiner* refiner = nullptr;
  /// Warm start (DESIGN.md §13): resume from a snapshot anchor instead of
  /// refining from depth 0. Requires keep_history = false, a `repo` the
  /// anchor's ids live in (i.e. the loaded snapshot repo), and an anchor
  /// whose fingerprint matches `g` — checked, loud failure on mismatch.
  /// The restored class counts replay feasibility/election detection, a
  /// stabilized anchor resumes through the quotient fast path (no column
  /// build, no re-interning of stored levels), and every output — ids,
  /// ranks, counts, compare verdicts — is byte-identical to a cold
  /// serial run of the same min_depth (tests/snapshot_test.cpp pins it).
  const SweepAnchor* warm = nullptr;
  /// Cooperative cancellation (DESIGN.md §14): polled once per level via
  /// the refiner; an expired token aborts the sweep with
  /// util::CancelledError. Safe mid-sweep — completed interns are valid
  /// hash-consed records, and re-running the same computation later
  /// replays them as index hits with byte-identical results.
  const util::CancelToken* cancel = nullptr;
};

/// Computes B^t for t = 0,1,... until the partition stabilizes or all views
/// are distinct — and in any case up to at least `opts.min_depth` levels.
/// All views are interned into `repo`.
[[nodiscard]] ViewProfile compute_profile(const portgraph::PortGraph& g,
                                          ViewRepo& repo,
                                          const ProfileOptions& opts);

/// Convenience overload: full history, no pool.
[[nodiscard]] ViewProfile compute_profile(const portgraph::PortGraph& g,
                                          ViewRepo& repo, int min_depth = 0);

/// Extends an existing profile with levels up to `depth` (no-op if already
/// computed that far). Honors the profile's history mode. `cancel`, when
/// given, is polled per level exactly like ProfileOptions::cancel.
void extend_profile(const portgraph::PortGraph& g, ViewRepo& repo,
                    ViewProfile& profile, int depth,
                    util::ThreadPool* pool = nullptr,
                    const util::CancelToken* cancel = nullptr);

/// The node whose depth-t view is canonically smallest (ties impossible
/// when t >= election index; otherwise the lowest-numbered witness).
/// When every level entry carries a canonical rank (levels built through
/// views::Refiner — DESIGN.md §8) this is a single O(n) min-rank scan;
/// otherwise it dedups the level and compares distinct representatives.
[[nodiscard]] portgraph::NodeId argmin_view(const ViewRepo& repo,
                                            const std::vector<ViewId>& level);

/// Debug stat: total compute_profile() calls in this process. Tests use
/// deltas of this counter to pin that per-graph contexts (election
/// harness, portfolio scenarios) compute each graph's profile only once.
[[nodiscard]] std::uint64_t profile_compute_count();

}  // namespace anole::views
