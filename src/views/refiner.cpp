#include "views/refiner.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "util/cancel.hpp"
#include "util/thread_pool.hpp"
#include "views/sig_hash.hpp"
#include "views/snapshot.hpp"

namespace anole::views {
namespace {

using portgraph::NodeId;

// Below this many nodes a level is advanced sequentially even when a pool
// is available: submitting tasks costs more than the gather saves.
constexpr std::size_t kMinParallelNodes = 2048;

// Serial pipeline block, in nodes: each block is gathered, hashed AND
// deduped before the next block starts, so a block's per-entry terms
// (emix_), child keys and per-node hashes are produced and consumed
// while still in L2 instead of round-tripping 16+ bytes per entry
// through DRAM on million-node levels.
constexpr std::size_t kSerialBlockNodes = 8192;

// Default dedup-scan prefetch distance, in nodes: far enough ahead to
// cover DRAM latency at the scan's consumption rate, near enough that the
// lines are still resident when the scan arrives.
constexpr int kDefaultPrefetchNodes = 8;

/// Debug/test switch behind set_stable_quotient_enabled(); atomic because
/// scenario cells construct Refiners from runner worker threads.
std::atomic<bool> g_quotient_enabled{true};

std::atomic<int> g_prefetch_nodes{kDefaultPrefetchNodes};

/// True when a level of n nodes is worth chunking across `pool`.
bool worth_parallel(util::ThreadPool* pool, std::size_t n) {
  return pool != nullptr && pool->size() > 1 && n >= kMinParallelNodes;
}

std::size_t table_capacity_for(std::size_t n) {
  std::size_t cap = 16;
  while (cap < 2 * n) cap *= 2;
  return cap;
}

/// Resizes `vec` to `need`, first dropping its allocation when the held
/// capacity exceeds 4x the need — the attach()-time trim that keeps a
/// sweep's Refiner from carrying its largest graph's footprint through
/// every smaller cell. The +64 floor leaves small buffers alone.
template <typename V>
void trim_to(V& vec, std::size_t need) {
  if (vec.capacity() > 4 * need + 64) {
    V fresh;
    fresh.reserve(need);
    vec.swap(fresh);
  }
  vec.resize(need);
}

/// Same trim for scratch that is (re)sized on first use per level — just
/// release the stale allocation, never resize.
template <typename V>
void release_oversized(V& vec, std::size_t need) {
  if (vec.capacity() > 4 * need + 64) V().swap(vec);
}

/// Equality of two degree-length column slices (4-byte elements). The
/// dedup hit path runs this millions of times per level on tiny spans;
/// std::equal lowers to an out-of-line memcmp call at runtime sizes, so
/// word-compare inline instead (a single u64 compare for the ubiquitous
/// degree 2).
inline bool cols_equal(const std::int32_t* a, const std::int32_t* b,
                       std::size_t count) {
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    std::uint64_t wa, wb;
    std::memcpy(&wa, a + i, sizeof(wa));
    std::memcpy(&wb, b + i, sizeof(wb));
    if (wa != wb) return false;
  }
  return i == count || a[i] == b[i];
}

}  // namespace

void set_stable_quotient_enabled(bool enabled) {
  g_quotient_enabled.store(enabled, std::memory_order_relaxed);
}

bool stable_quotient_enabled() {
  return g_quotient_enabled.load(std::memory_order_relaxed);
}

void set_dedup_prefetch_distance(int nodes) {
  g_prefetch_nodes.store(nodes, std::memory_order_relaxed);
}

int dedup_prefetch_distance() {
  return g_prefetch_nodes.load(std::memory_order_relaxed);
}

Refiner::Refiner(const portgraph::PortGraph& g, ViewRepo& repo,
                 util::ThreadPool* pool)
    : repo_(&repo), pool_(pool) {
  quotient_enabled_ = stable_quotient_enabled();
  attach(g);
}

Refiner::Refiner(ViewRepo& repo, util::ThreadPool* pool)
    : repo_(&repo), pool_(pool) {
  quotient_enabled_ = stable_quotient_enabled();
}

void Refiner::attach(const portgraph::PortGraph& g) {
  quotient_frozen_ = false;  // new graph, new refinement sequence
  bind_graph(g);
  rebuild_columns();
  std::size_t n = g.n();
  std::size_t entries = offset_[n];
  release_oversized(distinct_, n);
  release_oversized(class_of_, n);
  release_oversized(rep_, n);
  release_oversized(qoffset_, n + 1);
  release_oversized(qport_, entries);
  release_oversized(qchild_, entries);
  release_oversized(class_ids_, n);
  release_oversized(new_class_ids_, n);
}

void Refiner::bind_graph(const portgraph::PortGraph& g) {
  graph_ = &g;
  columns_ready_ = false;
  ANOLE_CHECK_MSG(g.n() >= 1, "refining an empty graph");
}

void Refiner::rebuild_columns() {
  const portgraph::PortGraph& g = *graph_;
  std::size_t n = g.n();
  has_degree0_ = false;
  trim_to(offset_, n + 1);
  offset_[0] = 0;
  uniform_degree_ = g.degree(0);
  max_degree_ = 0;
  for (std::size_t v = 0; v < n; ++v) {
    int degree = g.degree(static_cast<NodeId>(v));
    has_degree0_ = has_degree0_ || degree == 0;
    if (degree != uniform_degree_) uniform_degree_ = 0;
    max_degree_ = std::max(max_degree_, degree);
    offset_[v + 1] = offset_[v] + static_cast<std::uint32_t>(degree);
  }
  trim_to(sig_ids_, static_cast<std::size_t>(max_degree_));
  std::size_t entries = offset_[n];
  trim_to(nbr_, entries);
  trim_to(port_col_, entries);
  trim_to(premix_, entries);
  trim_to(child_col_, entries);
  trim_to(emix_, entries);
  trim_to(hash_, n);
  trim_to(prev_key_, n);
  // The static columns: neighbor ids and reverse ports flattened out of
  // the adjacency rows, plus the position-salted hash premix — a pure
  // function of (position, rev_port), so one column serves every level.
  for (std::size_t v = 0; v < n; ++v) {
    const auto& row = g.neighbors(static_cast<NodeId>(v));
    std::uint32_t base = offset_[v];
    for (std::size_t p = 0; p < row.size(); ++p) {
      nbr_[base + p] = static_cast<std::uint32_t>(row[p].neighbor);
      port_col_[base + p] = row[p].rev_port;
      premix_[base + p] = sig_hash::entry_premix(
          p, static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(row[p].rev_port)));
    }
  }
  // Scratch that is sized on first use per level: release what a bigger
  // previous graph left >4x over-sized.
  std::size_t cap = table_capacity_for(n);
  release_oversized(table_, cap);
  if (table_.size() != cap) {
    // Size the dedup table here, at setup time, so the first advance of
    // the new graph does not eat a multi-MB clear inside its timed work.
    table_.assign(cap, Slot{});
    used_slots_.clear();
  }
  release_oversized(used_slots_, n);
  release_oversized(id_table_, table_capacity_for(n));
  columns_ready_ = true;
}

void Refiner::resume_stable(const portgraph::PortGraph& g,
                            const SweepAnchor& a) {
  ANOLE_CHECK_MSG(quotient_enabled_,
                  "resume_stable with the quotient advancer disabled");
  ANOLE_CHECK_MSG(a.stabilized(),
                  "resume_stable needs a stabilized anchor (depth "
                      << a.depth() << ", " << a.classes() << " classes)");
  quotient_frozen_ = false;
  bind_graph(g);
  std::size_t n = g.n();
  ANOLE_CHECK_MSG(a.class_of.size() == n,
                  "anchor is over " << a.class_of.size()
                                    << " nodes, graph has " << n);
  std::size_t classes = a.class_ids.size();
  ANOLE_CHECK_MSG(classes >= 1, "anchor with no classes");

  // The anchor stores the partition in first-occurrence numbering — the
  // numbering freeze_quotient produces — so installing it verbatim makes
  // the resumed quotient intern classes in exactly the order the cold
  // run's frozen quotient would, which is what keeps serial ids
  // byte-identical across the save/load boundary (DESIGN.md §13).
  class_of_.assign(a.class_of.begin(), a.class_of.end());
  class_ids_.assign(a.class_ids.begin(), a.class_ids.end());
  rep_.clear();
  rep_.reserve(classes);
  for (std::size_t v = 0; v < n; ++v) {
    std::uint32_t c = class_of_[v];
    ANOLE_CHECK_MSG(c < classes, "anchor class " << c << " out of range");
    if (c == rep_.size())
      rep_.push_back(static_cast<std::uint32_t>(v));
    else
      ANOLE_CHECK_MSG(c < rep_.size(),
                      "anchor classes not in first-occurrence order");
  }
  ANOLE_CHECK_MSG(rep_.size() == classes,
                  "anchor has " << classes << " classes but only "
                                << rep_.size() << " occur");
  // Degree facts from the representatives alone: the view partition
  // refines the degree partition (degree is part of the depth-0 view),
  // so every degree in the graph is realized by some rep — O(classes)
  // where the cold attach scans all n row headers.
  has_degree0_ = false;
  uniform_degree_ = g.degree(static_cast<NodeId>(rep_[0]));
  max_degree_ = 0;
  for (std::size_t c = 0; c < classes; ++c) {
    int degree = g.degree(static_cast<NodeId>(rep_[c]));
    has_degree0_ = has_degree0_ || degree == 0;
    if (degree != uniform_degree_) uniform_degree_ = 0;
    max_degree_ = std::max(max_degree_, degree);
  }
  ANOLE_CHECK_MSG(!has_degree0_, "resume over a degree-0 (isolated) node");
  trim_to(sig_ids_, static_cast<std::size_t>(max_degree_));
  // Class-expressed signatures straight off the adjacency rows (the flat
  // columns are not built on this path — that is the point of resuming).
  qoffset_.assign(classes + 1, 0);
  for (std::size_t c = 0; c < classes; ++c)
    qoffset_[c + 1] =
        qoffset_[c] + static_cast<std::uint32_t>(
                          g.degree(static_cast<NodeId>(rep_[c])));
  qport_.resize(qoffset_[classes]);
  qchild_.resize(qoffset_[classes]);
  for (std::size_t c = 0; c < classes; ++c) {
    const auto& row = g.neighbors(static_cast<NodeId>(rep_[c]));
    std::uint32_t qbase = qoffset_[c];
    for (std::size_t p = 0; p < row.size(); ++p) {
      qport_[qbase + p] = row[p].rev_port;
      qchild_[qbase + p] =
          class_of_[static_cast<std::size_t>(row[p].neighbor)];
    }
  }
  distinct_.assign(class_ids_.begin(), class_ids_.end());
  std::sort(distinct_.begin(), distinct_.end());
  ANOLE_CHECK_MSG(std::adjacent_find(distinct_.begin(), distinct_.end()) ==
                      distinct_.end(),
                  "anchor classes share a view id");
  quotient_frozen_ = true;
}

bool Refiner::invalidate(const portgraph::PortGraph& g,
                         std::span<const portgraph::NodeId> dirty) {
  if (graph_ != &g) return false;
  // A warm-started refiner has no flat columns to patch; repairing one is
  // not worth the rebuild — the caller's full-recompute fallback is.
  if (!columns_ready_) return false;
  // Degree preservation first, touching nothing: a failed precondition
  // must leave the refiner exactly as it was (the caller re-attaches
  // through the full-recompute path).
  for (portgraph::NodeId v : dirty) {
    if (v < 0 || static_cast<std::size_t>(v) >= g.n()) return false;
    std::size_t sv = static_cast<std::size_t>(v);
    if (static_cast<std::uint32_t>(g.degree(v)) != offset_[sv + 1] - offset_[sv])
      return false;
    for (const portgraph::HalfEdge& he : g.neighbors(v))
      if (he.neighbor < 0) return false;  // masked slot: crash, not rewire
  }
  // The dirty-class index: which frozen classes the edit touches. Taken
  // BEFORE the quotient is dropped — it describes the pre-edit partition,
  // the one any not-yet-repaired deep level still reflects.
  last_dirty_classes_.clear();
  if (quotient_frozen_) {
    for (portgraph::NodeId v : dirty)
      last_dirty_classes_.push_back(class_of_[static_cast<std::size_t>(v)]);
    std::sort(last_dirty_classes_.begin(), last_dirty_classes_.end());
    last_dirty_classes_.erase(
        std::unique(last_dirty_classes_.begin(), last_dirty_classes_.end()),
        last_dirty_classes_.end());
  }
  for (portgraph::NodeId v : dirty) {
    const auto& row = g.neighbors(v);
    std::uint32_t base = offset_[static_cast<std::size_t>(v)];
    for (std::size_t p = 0; p < row.size(); ++p) {
      nbr_[base + p] = static_cast<std::uint32_t>(row[p].neighbor);
      port_col_[base + p] = row[p].rev_port;
      premix_[base + p] = sig_hash::entry_premix(
          p, static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(row[p].rev_port)));
    }
  }
  quotient_frozen_ = false;  // the partition may be coarser or finer now
  return true;
}

std::size_t Refiner::scratch_bytes() const {
  auto bytes = [](const auto& vec) {
    return vec.capacity() *
           sizeof(typename std::decay_t<decltype(vec)>::value_type);
  };
  return bytes(offset_) + bytes(nbr_) + bytes(port_col_) + bytes(premix_) +
         bytes(child_col_) + bytes(emix_) + bytes(hash_) + bytes(prev_key_) +
         bytes(sig_ids_) + bytes(table_) + bytes(used_slots_) +
         bytes(distinct_) +
         bytes(id_table_) + bytes(class_of_) + bytes(rep_) + bytes(qoffset_) +
         bytes(qport_) + bytes(qchild_) + bytes(class_ids_) +
         bytes(new_class_ids_);
}

std::size_t Refiner::init_level(std::vector<ViewId>& level) {
  ANOLE_CHECK_MSG(graph_ != nullptr, "init_level before attach");
  std::size_t n = graph_->n();
  quotient_frozen_ = false;  // a re-init starts a new refinement sequence
  level.resize(n);
  for (std::size_t v = 0; v < n; ++v)
    level[v] = repo_->leaf(graph_->degree(static_cast<NodeId>(v)));
  distinct_ = distinct_ids(level);
  // Depth-0 canonical ranks (= degree order) seed the per-level rank
  // induction of assign_ranks (DESIGN.md §8).
  repo_->assign_ranks(distinct_);
  return distinct_.size();
}

std::size_t Refiner::count_distinct(const std::vector<ViewId>& level) {
  return count_distinct_ids(level, id_table_);
}

void Refiner::ensure_arenas(std::size_t count) {
  while (arenas_.size() < count)
    arenas_.push_back(std::make_unique<ViewRepo::InternArena>(*repo_));
}

bool Refiner::matches_quotient(const std::vector<ViewId>& prev) const {
  if (prev.size() != class_of_.size()) return false;
  // Representative probes first: a foreign level (another refinement
  // sequence, a fresh depth) nearly always differs at some rep, so the
  // common mismatch is detected in O(classes).
  for (std::size_t c = 0; c < rep_.size(); ++c)
    if (prev[rep_[c]] != class_ids_[c]) return false;
  // Full verification: the stable path must never scatter stale class ids
  // over a level it did not produce, in any build mode. This O(n) pass
  // rides next to advance()'s O(n) scatter (callers that want O(classes)
  // rounds use advance_quotient(), which needs no caller level at all).
  for (std::size_t v = 0; v < prev.size(); ++v)
    if (prev[v] != class_ids_[class_of_[v]]) return false;
  return true;
}

void Refiner::freeze_quotient(const std::vector<ViewId>& level) {
  std::size_t n = level.size();
  constexpr std::uint32_t kNoClass = 0xffffffffu;
  // Classes are numbered in ascending first-node order — the order the
  // dedup pass (and hence the per-node intern loop) meets each distinct
  // signature, so quotient interns replay the full pass's id assignment.
  std::vector<std::uint32_t> remap(distinct_.size(), kNoClass);
  class_of_.resize(n);
  rep_.clear();
  class_ids_.clear();
  for (std::size_t v = 0; v < n; ++v) {
    std::size_t idx = static_cast<std::size_t>(
        std::lower_bound(distinct_.begin(), distinct_.end(), level[v]) -
        distinct_.begin());
    if (remap[idx] == kNoClass) {
      remap[idx] = static_cast<std::uint32_t>(rep_.size());
      rep_.push_back(static_cast<std::uint32_t>(v));
      class_ids_.push_back(level[v]);
    }
    class_of_[v] = remap[idx];
  }
  // Frozen class-expressed signatures in SoA form: the partition is a
  // fixed point, so a node's signature, with each child named by its
  // *class* instead of its per-level id, never changes again. One
  // representative per class, sliced straight out of the static columns.
  std::size_t classes = rep_.size();
  qoffset_.assign(classes + 1, 0);
  for (std::size_t c = 0; c < classes; ++c)
    qoffset_[c + 1] = qoffset_[c] + (offset_[rep_[c] + 1] - offset_[rep_[c]]);
  qport_.resize(qoffset_[classes]);
  qchild_.resize(qoffset_[classes]);
  for (std::size_t c = 0; c < classes; ++c) {
    std::uint32_t gbase = offset_[rep_[c]];
    std::uint32_t qbase = qoffset_[c];
    std::uint32_t degree = qoffset_[c + 1] - qbase;
    for (std::uint32_t p = 0; p < degree; ++p) {
      qport_[qbase + p] = port_col_[gbase + p];
      qchild_[qbase + p] = class_of_[nbr_[gbase + p]];
    }
  }
  quotient_frozen_ = true;
}

std::size_t Refiner::advance_quotient() {
  ANOLE_CHECK_MSG(quotient_frozen_,
                  "advance_quotient without a stabilized partition");
  if (cancel_ != nullptr) cancel_->check();
  std::size_t classes = class_ids_.size();
  int depth = repo_->depth(class_ids_[0]) + 1;
  new_class_ids_.resize(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    std::uint32_t base = qoffset_[c];
    std::size_t degree = qoffset_[c + 1] - base;
    for (std::size_t p = 0; p < degree; ++p)
      sig_ids_[p] = class_ids_[qchild_[base + p]];
    std::span<const portgraph::Port> ports(qport_.data() + base, degree);
    std::span<const ViewId> ids(sig_ids_.data(), degree);
    std::uint64_t h =
        ViewRepo::signature_hash(static_cast<int>(degree), depth, ports, ids);
    new_class_ids_[c] =
        repo_->intern_hashed(static_cast<int>(degree), depth, ports, ids, h);
  }
  class_ids_.swap(new_class_ids_);
  distinct_.assign(class_ids_.begin(), class_ids_.end());
  std::sort(distinct_.begin(), distinct_.end());
  // The fixed-point argument guarantees distinct classes keep distinct
  // views at every deeper level; a merge here would mean the partition was
  // not actually stable — loud stop, the results would be meaningless.
  ANOLE_CHECK_MSG(std::adjacent_find(distinct_.begin(), distinct_.end()) ==
                      distinct_.end(),
                  "stable classes merged — partition was not a fixed point");
  repo_->assign_ranks(distinct_);
  ++quotient_rounds_;
  return classes;
}

void Refiner::scatter(std::vector<ViewId>& level) const {
  ANOLE_CHECK_MSG(quotient_frozen_, "scatter without a stabilized partition");
  std::size_t n = class_of_.size();
  level.resize(n);
  for (std::size_t v = 0; v < n; ++v) level[v] = class_ids_[class_of_[v]];
}

bool Refiner::try_rank_keys(const std::vector<ViewId>& prev) {
  std::size_t n = prev.size();
  prev_key_.resize(n);
  // Ids in prev were all interned before this call, so the bulk reader's
  // segment snapshot covers them. A consistent snapshot is required for
  // injectivity (rank equality ⟺ id equality per depth): a concurrent
  // assign_ranks renumbering mid-read could alias two distinct views
  // onto one rank value, so an invalidated snapshot retries once and
  // then falls back to the (always equivalent) id keys.
  ViewRepo::RankReader ranks(*repo_);
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::uint64_t token = repo_->rank_snapshot();
    // Runs of equal ids are the norm once the partition coarsens (a
    // nearly-stable level is long stretches of one class), so memoize the
    // last id's rank instead of re-walking the record segment per node.
    ViewId memo_id = kInvalidView;
    std::int32_t memo_rank = kUnranked;
    for (std::size_t v = 0; v < n; ++v) {
      ViewId id = prev[v];
      if (id != memo_id) {
        std::int32_t r = ranks.rank(id);
        if (r == kUnranked) return false;  // foreign unranked view: id keys
        memo_id = id;
        memo_rank = r;
      }
      prev_key_[v] = memo_rank;
    }
    if (repo_->rank_snapshot_valid(token)) return true;
  }
  return false;
}

void Refiner::dedup_prepare(std::size_t n) {
  // Clearing: a full rebuild only when the capacity changes; otherwise
  // just empty the slots the previous level wrote (C of them — for a
  // nearly-stable million-node level that is a handful of stores instead
  // of a multi-MB memset every round).
  std::size_t cap = table_capacity_for(n);
  if (table_.size() != cap) {
    table_.assign(cap, Slot{});
  } else {
    for (std::uint32_t i : used_slots_) table_[i].id = kInvalidView;
  }
  used_slots_.clear();
  distinct_.clear();
}

void Refiner::dedup_block(const std::vector<ViewId>& prev, int depth,
                          bool rank_keyed, std::size_t begin, std::size_t end,
                          std::vector<ViewId>& next) {
  // Sequential in node order (blocks arrive in order): ids are assigned
  // exactly as the per-node intern loop would assign them (the serial
  // determinism contract). The level-local table resolves duplicate nodes
  // without touching the repo's sharded index. Earlier blocks' column
  // ranges stay valid, so cross-block duplicate compares read them as a
  // flat level.
  std::size_t mask = table_.size() - 1;
  const std::size_t pf = static_cast<std::size_t>(
      std::max(0, dedup_prefetch_distance()));
  for (std::size_t v = begin; v < end; ++v) {
    if (pf != 0 && v + pf < end) {
      // Pull the lines the scan will need pf nodes from now: the home
      // table slot of that node's probe and the start of its child-key
      // column span — the two data-dependent loads of an iteration.
      ANOLE_PREFETCH(&table_[hash_[v + pf] & mask]);
      ANOLE_PREFETCH(child_col_.data() + offset_[v + pf]);
    }
    std::uint64_t h = hash_[v];
    std::uint32_t off = offset_[v];
    std::size_t degree = offset_[v + 1] - off;
    std::size_t i = h & mask;
    for (;;) {
      Slot& slot = table_[i];
      if (slot.id == kInvalidView) {
        std::span<const portgraph::Port> ports(port_col_.data() + off, degree);
        ViewId id;
        if (rank_keyed) {
          // The columns hold the level-local rank keys; the repo's index
          // is keyed on id signatures, so a FRESH signature (one per
          // class, not per node) re-derives its id column and hash from
          // prev before interning.
          for (std::size_t p = 0; p < degree; ++p)
            sig_ids_[p] = prev[nbr_[off + p]];
          std::span<const ViewId> ids(sig_ids_.data(), degree);
          std::uint64_t hid = ViewRepo::signature_hash(
              static_cast<int>(degree), depth, ports, ids);
          id = repo_->intern_hashed(static_cast<int>(degree), depth, ports,
                                    ids, hid);
        } else {
          std::span<const ViewId> ids(child_col_.data() + off, degree);
          id = repo_->intern_hashed(static_cast<int>(degree), depth, ports,
                                    ids, h);
        }
        slot = Slot{h, static_cast<std::uint32_t>(v), id};
        used_slots_.push_back(static_cast<std::uint32_t>(i));
        distinct_.push_back(id);
        next[v] = id;
        break;
      }
      if (slot.hash == h) {
        std::uint32_t soff = offset_[slot.node];
        std::size_t sdeg = offset_[slot.node + 1] - soff;
        // SoA compare, children first: equal-degree signatures in one
        // level share the port layout far more often than the child keys,
        // so the child column usually decides within its first line.
        if (sdeg == degree &&
            cols_equal(child_col_.data() + off, child_col_.data() + soff,
                       degree) &&
            cols_equal(port_col_.data() + off, port_col_.data() + soff,
                       degree)) {
          next[v] = slot.id;
          break;
        }
      }
      i = (i + 1) & mask;
    }
  }
}

std::size_t Refiner::advance(const std::vector<ViewId>& prev,
                             std::vector<ViewId>& next) {
  ANOLE_CHECK_MSG(graph_ != nullptr, "advance before attach");
  std::size_t n = graph_->n();
  ANOLE_CHECK_MSG(prev.size() == n,
                  "level size " << prev.size() << " vs n = " << n);
  ANOLE_CHECK_MSG(&prev != &next, "advance needs distinct level vectors");
  // Same loud stop ViewRepo::intern gives the per-node path: a degree-0
  // node has no inner views, so advancing past depth 0 is invalid.
  ANOLE_CHECK_MSG(!has_degree0_, "advance of a degree-0 (isolated) node");
  // Level-granularity cancellation checkpoint (before any work or task
  // submission for this level, so an expired query leaks nothing into
  // the pool). The quotient path re-checks inside advance_quotient.
  if (cancel_ != nullptr) cancel_->check();

  if (quotient_frozen_) {
    if (matches_quotient(prev)) {
      std::size_t classes = advance_quotient();
      scatter(next);
      return classes;
    }
    // A level this refiner did not produce: the frozen quotient says
    // nothing about it. Drop it and let detection re-run below.
    quotient_frozen_ = false;
  }
  // Everything below runs over the flat columns; a warm-started refiner
  // builds them here, the first time its quotient fast path is left.
  ensure_columns();

  // Stabilization detection input: the class count of the level we are
  // advancing FROM, counted from prev itself (never trusted from state).
  std::size_t prev_classes = quotient_enabled_ ? count_distinct(prev) : 0;

  int depth = repo_->depth(prev[0]) + 1;
  next.resize(n);

  // Key column selection: the serial dedup keys on the previous level's
  // canonical ranks — dense small integers, injective per depth, so the
  // columns dedup identically to ids while staying cache-compact. The
  // parallel path (and the fallback when a rank read fails) keys on raw
  // ids, because the repo's sharded index — its dedup table — is hashed
  // on id signatures and reuses hash_ directly.
  bool parallel = worth_parallel(pool_, n);
  bool rank_keyed = !parallel && try_rank_keys(prev);
  const ViewId* key = rank_keyed ? prev_key_.data() : prev.data();

  if (!parallel) {
    // The fused serial pipeline: gather + hash + dedup each block of
    // nodes before the next block starts, so a block's column slices
    // (child keys, per-entry terms, hashes) are consumed while still in
    // L2 — the level streams through DRAM once, not three times. Blocks
    // run in ascending node order, preserving the serial id contract.
    // sig_hash::gather_mix is the explicitly vectorizable hot loop.
    dedup_prepare(n);
    for (std::size_t b = 0; b < n; b += kSerialBlockNodes) {
      std::size_t end = std::min(n, b + kSerialBlockNodes);
      std::uint32_t e0 = offset_[b];
      sig_hash::gather_mix(nbr_.data() + e0, key, premix_.data() + e0,
                           child_col_.data() + e0, emix_.data() + e0,
                           offset_[end] - e0);
      sig_hash::reduce_nodes(offset_.data(), b, end, emix_.data(), depth,
                             uniform_degree_, hash_.data());
      dedup_block(prev, depth, rank_keyed, b, end, next);
    }
    // Fresh records get ascending ids already, but a signature may match
    // a record interned before this refinement (e.g. a second run over
    // the same repo) — sort so distinct() is always ascending.
    std::sort(distinct_.begin(), distinct_.end());
  } else {
    // Gather + hash, flat over the entry columns: disjoint ranges per
    // chunk (entry spans align to node boundaries), so the phase is safe
    // to chunk across the pool and its result is independent of thread
    // count.
    pool_->parallel_for(0, n, kMinParallelNodes,
                        [&](std::size_t begin, std::size_t end,
                            std::size_t /*chunk*/) {
                          std::uint32_t e0 = offset_[begin];
                          sig_hash::gather_mix(
                              nbr_.data() + e0, key, premix_.data() + e0,
                              child_col_.data() + e0, emix_.data() + e0,
                              offset_[end] - e0);
                          sig_hash::reduce_nodes(offset_.data(), begin, end,
                                                 emix_.data(), depth,
                                                 uniform_degree_, hash_.data());
                        });
    // Concurrent dedup + intern: the repo's sharded index IS the dedup
    // table. Each chunk interns its node range straight into the repo
    // through its own persistent arena — handing over the SoA column
    // slices, never an AoS signature; the winner of each fresh
    // signature's publish race decides the raw id, so ids depend on the
    // schedule — the record set, the partition and everything derived
    // from ranks do not (DESIGN.md §10).
    ensure_arenas(pool_->size() * 4);
    pool_->parallel_for(
        0, n, kMinParallelNodes,
        [&](std::size_t begin, std::size_t end, std::size_t chunk) {
          ViewRepo::InternArena& arena = *arenas_[chunk];
          for (std::size_t v = begin; v < end; ++v) {
            std::uint32_t off = offset_[v];
            std::size_t degree = offset_[v + 1] - off;
            next[v] = repo_->intern_hashed(
                static_cast<int>(degree), depth,
                std::span<const portgraph::Port>(port_col_.data() + off,
                                                 degree),
                std::span<const ViewId>(child_col_.data() + off, degree),
                hash_[v], &arena);
          }
        });
    distinct_ = distinct_ids(next);
  }
  // Canonical ranks for the new level, a byproduct of the dedup: with the
  // previous level ranked, sorting the distinct signatures by integer keys
  // reproduces the structural order, making every later ordering query on
  // these views O(1) (DESIGN.md §8).
  repo_->assign_ranks(distinct_);

  // Equal consecutive class counts ⇒ the partition is a fixed point
  // (refinement only ever splits classes): freeze the quotient so every
  // later round interns exactly C views (DESIGN.md §9).
  if (quotient_enabled_ && distinct_.size() == prev_classes)
    freeze_quotient(next);
  return distinct_.size();
}

}  // namespace anole::views
