#include "views/refiner.hpp"

#include <algorithm>

#include "util/thread_pool.hpp"

namespace anole::views {
namespace {

using portgraph::NodeId;

// Below this many nodes a level is advanced sequentially even when a pool
// is available: submitting tasks costs more than the gather saves.
constexpr std::size_t kMinParallelNodes = 2048;

/// Runs fn(begin, end) over [0, n) — chunked across `pool` when it pays,
/// inline otherwise. fn must only touch per-node state in its range.
template <typename Fn>
void for_node_ranges(util::ThreadPool* pool, std::size_t n, const Fn& fn) {
  if (pool == nullptr || pool->size() <= 1 || n < kMinParallelNodes) {
    fn(0, n);
    return;
  }
  // A few chunks per worker evens out load without flooding the queue.
  std::size_t chunks = std::min(pool->size() * 4,
                                (n + kMinParallelNodes - 1) / kMinParallelNodes);
  std::size_t per_chunk = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    std::size_t begin = c * per_chunk;
    std::size_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    pool->submit([&fn, begin, end] { fn(begin, end); });
  }
  pool->wait_idle();
}

std::size_t table_capacity_for(std::size_t n) {
  std::size_t cap = 16;
  while (cap < 2 * n) cap *= 2;
  return cap;
}

}  // namespace

Refiner::Refiner(const portgraph::PortGraph& g, ViewRepo& repo,
                 util::ThreadPool* pool)
    : graph_(&g), repo_(&repo), pool_(pool) {
  std::size_t n = g.n();
  ANOLE_CHECK_MSG(n >= 1, "refining an empty graph");
  offset_.resize(n + 1);
  offset_[0] = 0;
  for (std::size_t v = 0; v < n; ++v) {
    int degree = g.degree(static_cast<NodeId>(v));
    has_degree0_ = has_degree0_ || degree == 0;
    offset_[v + 1] = offset_[v] + static_cast<std::uint32_t>(degree);
  }
  arena_.resize(offset_[n]);
  hash_.resize(n);
}

std::size_t Refiner::init_level(std::vector<ViewId>& level) {
  std::size_t n = graph_->n();
  level.resize(n);
  for (std::size_t v = 0; v < n; ++v)
    level[v] = repo_->leaf(graph_->degree(static_cast<NodeId>(v)));
  distinct_ = distinct_ids(level);
  // Depth-0 canonical ranks (= degree order) seed the per-level rank
  // induction of assign_ranks (DESIGN.md §8).
  repo_->assign_ranks(distinct_);
  return distinct_.size();
}

std::size_t Refiner::advance(const std::vector<ViewId>& prev,
                             std::vector<ViewId>& next) {
  const portgraph::PortGraph& g = *graph_;
  std::size_t n = g.n();
  ANOLE_CHECK_MSG(prev.size() == n,
                  "level size " << prev.size() << " vs n = " << n);
  ANOLE_CHECK_MSG(&prev != &next, "advance needs distinct level vectors");
  // Same loud stop ViewRepo::intern gives the per-node path: a degree-0
  // node has no inner views, so advancing past depth 0 is invalid.
  ANOLE_CHECK_MSG(!has_degree0_, "advance of a degree-0 (isolated) node");
  int depth = repo_->depth(prev[0]) + 1;
  next.resize(n);

  // Gather + hash: disjoint arena ranges per node, so the phase is safe to
  // chunk across the pool and its result is independent of thread count.
  for_node_ranges(pool_, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      const auto& row = g.neighbors(static_cast<NodeId>(v));
      ChildRef* sig = arena_.data() + offset_[v];
      for (std::size_t p = 0; p < row.size(); ++p)
        sig[p] = ChildRef{row[p].rev_port,
                          prev[static_cast<std::size_t>(row[p].neighbor)]};
      hash_[v] = ViewRepo::signature_hash(static_cast<int>(row.size()), depth,
                                          {sig, row.size()});
    }
  });

  // Dedup + intern, sequential in node order: ids are assigned exactly as
  // the per-node intern loop would assign them (determinism contract).
  table_.assign(table_capacity_for(n), Slot{});
  distinct_.clear();
  std::size_t mask = table_.size() - 1;
  for (std::size_t v = 0; v < n; ++v) {
    std::uint64_t h = hash_[v];
    std::span<const ChildRef> sig(arena_.data() + offset_[v],
                                  offset_[v + 1] - offset_[v]);
    std::size_t i = h & mask;
    for (;;) {
      Slot& slot = table_[i];
      if (slot.id == kInvalidView) {
        ViewId id = repo_->intern_hashed(static_cast<int>(sig.size()), depth,
                                         sig, h);
        slot = Slot{h, static_cast<std::uint32_t>(v), id};
        distinct_.push_back(id);
        next[v] = id;
        break;
      }
      if (slot.hash == h) {
        std::span<const ChildRef> seen(
            arena_.data() + offset_[slot.node],
            offset_[slot.node + 1] - offset_[slot.node]);
        if (seen.size() == sig.size() &&
            std::equal(seen.begin(), seen.end(), sig.begin())) {
          next[v] = slot.id;
          break;
        }
      }
      i = (i + 1) & mask;
    }
  }
  // Fresh records get ascending ids already, but a signature may match a
  // record interned before this refinement (e.g. a second run over the
  // same repo) — sort so distinct() is always ascending.
  std::sort(distinct_.begin(), distinct_.end());
  // Canonical ranks for the new level, a byproduct of the dedup: with the
  // previous level ranked, sorting the distinct signatures by integer keys
  // reproduces the structural order, making every later ordering query on
  // these views O(1) (DESIGN.md §8).
  repo_->assign_ranks(distinct_);
  return distinct_.size();
}

}  // namespace anole::views
