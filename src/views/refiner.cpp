#include "views/refiner.hpp"

#include <algorithm>
#include <atomic>

#include "util/thread_pool.hpp"

namespace anole::views {
namespace {

using portgraph::NodeId;

// Below this many nodes a level is advanced sequentially even when a pool
// is available: submitting tasks costs more than the gather saves.
constexpr std::size_t kMinParallelNodes = 2048;

/// Debug/test switch behind set_stable_quotient_enabled(); atomic because
/// scenario cells construct Refiners from runner worker threads.
std::atomic<bool> g_quotient_enabled{true};

/// True when a level of n nodes is worth chunking across `pool`.
bool worth_parallel(util::ThreadPool* pool, std::size_t n) {
  return pool != nullptr && pool->size() > 1 && n >= kMinParallelNodes;
}

/// Runs fn(begin, end, chunk) over [0, n) — through the pool's
/// parallel_for when it pays, inline (as chunk 0) otherwise. fn must only
/// touch per-node state in its range, plus per-chunk state keyed on the
/// chunk index.
template <typename Fn>
void for_node_ranges(util::ThreadPool* pool, std::size_t n, const Fn& fn) {
  if (!worth_parallel(pool, n)) {
    fn(std::size_t{0}, n, std::size_t{0});
    return;
  }
  pool->parallel_for(0, n, kMinParallelNodes, fn);
}

std::size_t table_capacity_for(std::size_t n) {
  std::size_t cap = 16;
  while (cap < 2 * n) cap *= 2;
  return cap;
}

}  // namespace

void set_stable_quotient_enabled(bool enabled) {
  g_quotient_enabled.store(enabled, std::memory_order_relaxed);
}

bool stable_quotient_enabled() {
  return g_quotient_enabled.load(std::memory_order_relaxed);
}

Refiner::Refiner(const portgraph::PortGraph& g, ViewRepo& repo,
                 util::ThreadPool* pool)
    : graph_(&g), repo_(&repo), pool_(pool) {
  std::size_t n = g.n();
  ANOLE_CHECK_MSG(n >= 1, "refining an empty graph");
  quotient_enabled_ = stable_quotient_enabled();
  offset_.resize(n + 1);
  offset_[0] = 0;
  for (std::size_t v = 0; v < n; ++v) {
    int degree = g.degree(static_cast<NodeId>(v));
    has_degree0_ = has_degree0_ || degree == 0;
    offset_[v + 1] = offset_[v] + static_cast<std::uint32_t>(degree);
  }
  arena_.resize(offset_[n]);
  hash_.resize(n);
}

std::size_t Refiner::init_level(std::vector<ViewId>& level) {
  std::size_t n = graph_->n();
  quotient_frozen_ = false;  // a re-init starts a new refinement sequence
  level.resize(n);
  for (std::size_t v = 0; v < n; ++v)
    level[v] = repo_->leaf(graph_->degree(static_cast<NodeId>(v)));
  distinct_ = distinct_ids(level);
  // Depth-0 canonical ranks (= degree order) seed the per-level rank
  // induction of assign_ranks (DESIGN.md §8).
  repo_->assign_ranks(distinct_);
  return distinct_.size();
}

std::size_t Refiner::count_distinct(const std::vector<ViewId>& level) {
  return count_distinct_ids(level, id_table_);
}

void Refiner::ensure_arenas(std::size_t count) {
  while (arenas_.size() < count)
    arenas_.push_back(std::make_unique<ViewRepo::InternArena>(*repo_));
}

bool Refiner::matches_quotient(const std::vector<ViewId>& prev) const {
  if (prev.size() != class_of_.size()) return false;
  // Representative probes first: a foreign level (another refinement
  // sequence, a fresh depth) nearly always differs at some rep, so the
  // common mismatch is detected in O(classes).
  for (std::size_t c = 0; c < rep_.size(); ++c)
    if (prev[rep_[c]] != class_ids_[c]) return false;
  // Full verification: the stable path must never scatter stale class ids
  // over a level it did not produce, in any build mode. This O(n) pass
  // rides next to advance()'s O(n) scatter (callers that want O(classes)
  // rounds use advance_quotient(), which needs no caller level at all).
  for (std::size_t v = 0; v < prev.size(); ++v)
    if (prev[v] != class_ids_[class_of_[v]]) return false;
  return true;
}

void Refiner::freeze_quotient(const std::vector<ViewId>& level) {
  const portgraph::PortGraph& g = *graph_;
  std::size_t n = level.size();
  constexpr std::uint32_t kNoClass = 0xffffffffu;
  // Classes are numbered in ascending first-node order — the order the
  // dedup pass (and hence the per-node intern loop) meets each distinct
  // signature, so quotient interns replay the full pass's id assignment.
  std::vector<std::uint32_t> remap(distinct_.size(), kNoClass);
  class_of_.resize(n);
  rep_.clear();
  class_ids_.clear();
  for (std::size_t v = 0; v < n; ++v) {
    std::size_t idx = static_cast<std::size_t>(
        std::lower_bound(distinct_.begin(), distinct_.end(), level[v]) -
        distinct_.begin());
    if (remap[idx] == kNoClass) {
      remap[idx] = static_cast<std::uint32_t>(rep_.size());
      rep_.push_back(static_cast<std::uint32_t>(v));
      class_ids_.push_back(level[v]);
    }
    class_of_[v] = remap[idx];
  }
  // Frozen class-expressed signatures: the partition is a fixed point, so
  // a node's signature, with each child named by its *class* instead of
  // its per-level id, never changes again. One representative per class.
  std::size_t classes = rep_.size();
  qoffset_.assign(classes + 1, 0);
  std::size_t max_degree = 0;
  for (std::size_t c = 0; c < classes; ++c) {
    std::size_t degree = static_cast<std::size_t>(
        g.degree(static_cast<NodeId>(rep_[c])));
    max_degree = std::max(max_degree, degree);
    qoffset_[c + 1] = qoffset_[c] + static_cast<std::uint32_t>(degree);
  }
  qarena_.resize(qoffset_[classes]);
  for (std::size_t c = 0; c < classes; ++c) {
    const auto& row = g.neighbors(static_cast<NodeId>(rep_[c]));
    ChildRef* sig = qarena_.data() + qoffset_[c];
    for (std::size_t p = 0; p < row.size(); ++p)
      sig[p] = ChildRef{row[p].rev_port,
                        static_cast<ViewId>(
                            class_of_[static_cast<std::size_t>(row[p].neighbor)])};
  }
  sig_scratch_.resize(max_degree);
  quotient_frozen_ = true;
}

std::size_t Refiner::advance_quotient() {
  ANOLE_CHECK_MSG(quotient_frozen_,
                  "advance_quotient without a stabilized partition");
  std::size_t classes = class_ids_.size();
  int depth = repo_->depth(class_ids_[0]) + 1;
  new_class_ids_.resize(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    std::size_t degree = qoffset_[c + 1] - qoffset_[c];
    const ChildRef* frozen = qarena_.data() + qoffset_[c];
    for (std::size_t p = 0; p < degree; ++p)
      sig_scratch_[p] =
          ChildRef{frozen[p].first,
                   class_ids_[static_cast<std::size_t>(frozen[p].second)]};
    std::span<const ChildRef> sig(sig_scratch_.data(), degree);
    std::uint64_t h =
        ViewRepo::signature_hash(static_cast<int>(degree), depth, sig);
    new_class_ids_[c] =
        repo_->intern_hashed(static_cast<int>(degree), depth, sig, h);
  }
  class_ids_.swap(new_class_ids_);
  distinct_.assign(class_ids_.begin(), class_ids_.end());
  std::sort(distinct_.begin(), distinct_.end());
  // The fixed-point argument guarantees distinct classes keep distinct
  // views at every deeper level; a merge here would mean the partition was
  // not actually stable — loud stop, the results would be meaningless.
  ANOLE_CHECK_MSG(std::adjacent_find(distinct_.begin(), distinct_.end()) ==
                      distinct_.end(),
                  "stable classes merged — partition was not a fixed point");
  repo_->assign_ranks(distinct_);
  ++quotient_rounds_;
  return classes;
}

void Refiner::scatter(std::vector<ViewId>& level) const {
  ANOLE_CHECK_MSG(quotient_frozen_, "scatter without a stabilized partition");
  std::size_t n = class_of_.size();
  level.resize(n);
  for (std::size_t v = 0; v < n; ++v) level[v] = class_ids_[class_of_[v]];
}

std::size_t Refiner::advance(const std::vector<ViewId>& prev,
                             std::vector<ViewId>& next) {
  const portgraph::PortGraph& g = *graph_;
  std::size_t n = g.n();
  ANOLE_CHECK_MSG(prev.size() == n,
                  "level size " << prev.size() << " vs n = " << n);
  ANOLE_CHECK_MSG(&prev != &next, "advance needs distinct level vectors");
  // Same loud stop ViewRepo::intern gives the per-node path: a degree-0
  // node has no inner views, so advancing past depth 0 is invalid.
  ANOLE_CHECK_MSG(!has_degree0_, "advance of a degree-0 (isolated) node");

  if (quotient_frozen_) {
    if (matches_quotient(prev)) {
      std::size_t classes = advance_quotient();
      scatter(next);
      return classes;
    }
    // A level this refiner did not produce: the frozen quotient says
    // nothing about it. Drop it and let detection re-run below.
    quotient_frozen_ = false;
  }

  // Stabilization detection input: the class count of the level we are
  // advancing FROM, counted from prev itself (never trusted from state).
  std::size_t prev_classes = quotient_enabled_ ? count_distinct(prev) : 0;

  int depth = repo_->depth(prev[0]) + 1;
  next.resize(n);

  // Gather + hash: disjoint arena ranges per node, so the phase is safe to
  // chunk across the pool and its result is independent of thread count.
  for_node_ranges(pool_, n, [&](std::size_t begin, std::size_t end,
                                std::size_t /*chunk*/) {
    for (std::size_t v = begin; v < end; ++v) {
      const auto& row = g.neighbors(static_cast<NodeId>(v));
      ChildRef* sig = arena_.data() + offset_[v];
      for (std::size_t p = 0; p < row.size(); ++p)
        sig[p] = ChildRef{row[p].rev_port,
                          prev[static_cast<std::size_t>(row[p].neighbor)]};
      hash_[v] = ViewRepo::signature_hash(static_cast<int>(row.size()), depth,
                                          {sig, row.size()});
    }
  });

  if (!worth_parallel(pool_, n)) {
    // Dedup + intern, sequential in node order: ids are assigned exactly
    // as the per-node intern loop would assign them (the serial
    // determinism contract). The level-local table resolves duplicate
    // nodes without touching the repo's sharded index.
    table_.assign(table_capacity_for(n), Slot{});
    distinct_.clear();
    std::size_t mask = table_.size() - 1;
    for (std::size_t v = 0; v < n; ++v) {
      std::uint64_t h = hash_[v];
      std::span<const ChildRef> sig(arena_.data() + offset_[v],
                                    offset_[v + 1] - offset_[v]);
      std::size_t i = h & mask;
      for (;;) {
        Slot& slot = table_[i];
        if (slot.id == kInvalidView) {
          ViewId id = repo_->intern_hashed(static_cast<int>(sig.size()), depth,
                                           sig, h);
          slot = Slot{h, static_cast<std::uint32_t>(v), id};
          distinct_.push_back(id);
          next[v] = id;
          break;
        }
        if (slot.hash == h) {
          std::span<const ChildRef> seen(
              arena_.data() + offset_[slot.node],
              offset_[slot.node + 1] - offset_[slot.node]);
          if (seen.size() == sig.size() &&
              std::equal(seen.begin(), seen.end(), sig.begin())) {
            next[v] = slot.id;
            break;
          }
        }
        i = (i + 1) & mask;
      }
    }
    // Fresh records get ascending ids already, but a signature may match a
    // record interned before this refinement (e.g. a second run over the
    // same repo) — sort so distinct() is always ascending.
    std::sort(distinct_.begin(), distinct_.end());
  } else {
    // Concurrent dedup + intern: the repo's sharded index IS the dedup
    // table. Each chunk interns its node range straight into the repo
    // through its own persistent arena; the winner of each fresh
    // signature's publish race decides the raw id, so ids depend on the
    // schedule — the record set, the partition and everything derived
    // from ranks do not (DESIGN.md §10).
    ensure_arenas(pool_->size() * 4);
    pool_->parallel_for(
        0, n, kMinParallelNodes,
        [&](std::size_t begin, std::size_t end, std::size_t chunk) {
          ViewRepo::InternArena& arena = *arenas_[chunk];
          for (std::size_t v = begin; v < end; ++v) {
            std::span<const ChildRef> sig(arena_.data() + offset_[v],
                                          offset_[v + 1] - offset_[v]);
            next[v] = repo_->intern_hashed(static_cast<int>(sig.size()),
                                           depth, sig, hash_[v], &arena);
          }
        });
    distinct_ = distinct_ids(next);
  }
  // Canonical ranks for the new level, a byproduct of the dedup: with the
  // previous level ranked, sorting the distinct signatures by integer keys
  // reproduces the structural order, making every later ordering query on
  // these views O(1) (DESIGN.md §8).
  repo_->assign_ranks(distinct_);

  // Equal consecutive class counts ⇒ the partition is a fixed point
  // (refinement only ever splits classes): freeze the quotient so every
  // later round interns exactly C views (DESIGN.md §9).
  if (quotient_enabled_ && distinct_.size() == prev_classes)
    freeze_quotient(next);
  return distinct_.size();
}

}  // namespace anole::views
