#pragma once
// Batched level-synchronous view refinement (DESIGN.md §7) over a
// structure-of-arrays signature pipeline (DESIGN.md §11), with a
// stable-phase quotient advancer (DESIGN.md §9).
//
// Advancing every node from B^t to B^{t+1} is one step of partition
// refinement (Proposition 2.1): node v's next view is determined by its
// signature (deg(v), [(rev_port_j, id of B^t(u_j))]), and the number of
// *distinct* signatures per level — the refinement class count — is
// usually far below n. The per-node path (one ViewRepo::intern per node
// per level) pays a hash + probe + child-span compare for every node
// anyway; a Refiner advances the whole level at once instead, over flat
// per-level columns rather than an array-of-structs arena:
//
//   0. attach (once per graph): the adjacency is flattened into static
//      columns indexed by the degree prefix sums — neighbor ids `nbr_`,
//      reverse ports `port_col_`, and the position-salted hash premix
//      `premix_` (sig_hash::entry_premix, a pure function of position
//      and rev_port, so it never changes between levels);
//   1. gather + hash: one fused pass per level writes the child-key
//      column child_col_[j] = key[nbr_[j]] and the per-entry hash term
//      emix_[j], then reduces per node to hash_[v]
//      (sig_hash::gather_mix / reduce_nodes — the explicitly
//      vectorizable kernels). The pass is flat over entries, chunked
//      across the optional util::ThreadPool on node boundaries, each
//      worker writing disjoint column ranges. On the serial path `key`
//      is the previous level's *canonical ranks* (dense small integers —
//      rank equality is id equality per depth, DESIGN.md §8), read under
//      one rank-seqlock snapshot; if any prev view is unranked or the
//      snapshot fails to validate, the key falls back to the raw ids —
//      either key dedups identically;
//   2. dedup + intern: without a pool (or on a small level), one
//      sequential pass in node order probes a level-local open-addressing
//      table with the precomputed hashes, software-prefetching the table
//      slot and child-column lines of the node K slots ahead
//      (set_dedup_prefetch_distance), interning each distinct signature
//      exactly once (at its first occurrence) through the SoA
//      intern_hashed overload — no AoS signature is ever materialized.
//      With a pool, the level is partitioned across the workers and every
//      node interns straight into the concurrent ViewRepo — the repo's
//      sharded index IS the dedup table (the bddapron unique-table
//      shape), each worker batching its id and child allocation through
//      a persistent ViewRepo::InternArena (ids as keys: the repo's index
//      is hashed on id signatures);
//   3. scatter: ids land in node order, and the level's class count (and
//      the distinct id list) falls out of the dedup (or one
//      distinct_ids() pass in the parallel case);
//   4. rank: the distinct ids are handed to ViewRepo::assign_ranks, which
//      sorts them by integer keys over the previous level's ranks and
//      stores each view's canonical rank — every later ordering query
//      (compare, argmin, trie sorts, per-round minima) on these views is
//      a single integer comparison (DESIGN.md §8).
//
// Stabilization (DESIGN.md §9): the partition refines monotonically, so
// when two consecutive levels have the same class count the partition is
// a *fixed point* — the node→class map never changes again, and every
// later level has exactly the same C classes. advance() detects this
// (it counts prev's distinct ids itself, so the detection never trusts
// the caller) and freezes a quotient: the per-node class index, one
// representative node per class (its first node), and each class's
// signature in the same SoA form (rev_port column + child *class index*
// column). From then on a round interns exactly C views — one per class,
// in first-occurrence order, so ids stay byte-identical to the full pass
// — and the per-node level is reproduced by an O(n) scatter through the
// frozen class index. Callers that only need the distinct ids
// (quotient-mode run_full_info, keep_history=false profile sweeps) call
// advance_quotient() directly and skip even the scatter: a stable round
// costs O(C + Σ deg(rep)), with the n-node gather/hash and the 2m-entry
// dedup gone entirely.
//
// Determinism (DESIGN.md §10): without a pool the dedup/intern pass runs
// in ascending node order, so ids are assigned exactly as the per-node
// loop would have assigned them — serial profiles are id-identical to
// the naive path, whichever key column (ranks or ids) the dedup used and
// whatever the prefetch distance. With a pool, raw id VALUES depend on
// which worker claims each fresh signature first; everything observable
// above ids does not: the partition (which nodes share an id), the class
// counts, the record set and ViewRepo::size(), the canonical rank of
// every view, every compare()/argmin verdict, and all metered sizes are
// byte-identical across thread counts — and across SIMD-on/SIMD-off
// builds (the scalar kernels are bit-identical). The quotient path
// interns representatives in ascending first-node order — the order the
// full dedup pass meets each distinct signature — so the serial id
// contract survives stabilization too. tests/refiner_test.cpp,
// tests/stable_test.cpp, tests/concurrent_repo_test.cpp and
// tests/soa_hash_test.cpp pin all of it.
//
// A Refiner borrows its graph, repo and pool; all must outlive it. The
// repo may be shared (it is thread-safe, and many cells sharing one repo
// is the intended sweep shape); the Refiner itself is not — one per cell.
// attach() rebinds a Refiner to another graph of the same repo, trimming
// scratch that the new graph leaves >4x over-sized, so one Refiner can
// serve a whole sweep without carrying the largest cell's footprint
// through the smallest.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "portgraph/port_graph.hpp"
#include "views/view_repo.hpp"

namespace anole::util {
class CancelToken;
class ThreadPool;
}  // namespace anole::util

namespace anole::views {

struct SweepAnchor;  // views/snapshot.hpp

/// Process-wide debug/test switch for the stable-phase quotient advancer
/// (read once per Refiner, at construction; override per instance with
/// set_quotient_enabled). Tests force it off to pin byte-equality of the
/// quotient path against the always-full path; production code leaves it
/// on.
void set_stable_quotient_enabled(bool enabled);
[[nodiscard]] bool stable_quotient_enabled();

/// How many nodes ahead the serial dedup scan prefetches each node's
/// table slot and child-column lines (0 disables). Purely a throughput
/// knob — output is identical for any distance (tests/soa_hash_test.cpp
/// pins 0 vs the default). Process-wide, read once per advance.
void set_dedup_prefetch_distance(int nodes);
[[nodiscard]] int dedup_prefetch_distance();

class Refiner {
 public:
  /// `pool == nullptr` (or a tiny level) keeps the gather AND intern
  /// phases sequential (deterministic ids). The pool must not be shared
  /// with concurrent wait_idle() users while a refinement is in flight.
  Refiner(const portgraph::PortGraph& g, ViewRepo& repo,
          util::ThreadPool* pool = nullptr);

  /// Unbound form: no graph yet. Call attach() or resume_stable() before
  /// any level work. Warm starts construct the refiner this way so a
  /// snapshot resume never pays the full-column build it will not use.
  explicit Refiner(ViewRepo& repo, util::ThreadPool* pool = nullptr);

  /// Rebinds this refiner to another graph interning into the SAME repo:
  /// rebuilds the static adjacency columns, drops any frozen quotient,
  /// and trims every scratch buffer whose capacity exceeds 4x what the
  /// new graph needs (a sweep stepping down from n=2^20 to n=512 does
  /// not carry ~50 MB of dead column capacity along). The graph must
  /// outlive the refiner, as with the constructor.
  void attach(const portgraph::PortGraph& g);

  /// Warm start (DESIGN.md §13): binds `g` and installs a *stabilized*
  /// snapshot anchor as this refiner's frozen quotient, exactly as if the
  /// refiner had computed to the anchor's depth itself — class index,
  /// representatives and class-expressed signature columns rebuilt from
  /// the anchor's first-occurrence numbering (the numbering
  /// freeze_quotient produces, so resumed quotient interns replay the
  /// cold run's id assignment byte-for-byte on the serial path). The
  /// anchor's class_ids must be live records of this refiner's repo (a
  /// loaded snapshot guarantees that). Skips the full-column build
  /// entirely: resuming costs O(n + Σ deg(rep)), and the columns are
  /// built lazily only if a later advance() leaves the quotient path.
  void resume_stable(const portgraph::PortGraph& g, const SweepAnchor& a);

  /// Incremental view-repair hook (DESIGN.md §12). Call after the attached
  /// graph object was edited IN PLACE by degree-preserving edits
  /// (PortGraph::rewire_edge) whose touched adjacency rows are exactly
  /// `dirty`: patches the static SoA columns of those rows only, records
  /// which frozen-quotient classes the edit dirtied (last_dirty_classes),
  /// drops the quotient (the partition may now differ), and returns true —
  /// the refiner is ready to advance levels of the edited graph, and
  /// views::repair_profile can recompute only the dirty frontier per
  /// level. Returns false, leaving the refiner completely untouched, when
  /// the preconditions fail: `g` is not the attached graph object, some
  /// dirty row changed degree (crash/recover), or some dirty slot is
  /// masked. The caller must then fall back to a full recompute
  /// (compute_profile, which re-attaches).
  bool invalidate(const portgraph::PortGraph& g,
                  std::span<const portgraph::NodeId> dirty);

  /// The frozen-quotient classes containing a node of the last successful
  /// invalidate()'s dirty set, ascending (empty when no quotient was
  /// frozen at that point). This is the §12 dirty-class index: classes NOT
  /// listed here have byte-identical signatures before and after the edit,
  /// which is what caps how far a repair frontier can spread per level.
  [[nodiscard]] std::span<const std::uint32_t> last_dirty_classes() const {
    return last_dirty_classes_;
  }

  /// Replaces the pool used by later advances (attach keeps the old one).
  void set_pool(util::ThreadPool* pool) { pool_ = pool; }

  /// Installs (or, with nullptr, removes) a cooperative cancellation
  /// token: advance() and advance_quotient() poll it once per level and
  /// throw util::CancelledError when it has expired — the level/round
  /// checkpoint of DESIGN.md §14. Aborting between levels never corrupts
  /// shared state: every completed intern is a valid hash-consed record,
  /// and the refiner itself is per-query scratch. The token must outlive
  /// the refinement it guards; attach keeps it, like the pool.
  void set_cancel(const util::CancelToken* cancel) { cancel_ = cancel; }

  /// Per-instance override of the stable-phase quotient switch (defaults
  /// to the process-wide flag at construction). Call before advancing —
  /// disabling drops any frozen quotient. Scenario cells that time the
  /// raw pre-stabilization pipeline disable it instance-locally instead
  /// of racing on the global flag.
  void set_quotient_enabled(bool enabled) {
    quotient_enabled_ = enabled;
    quotient_frozen_ = quotient_frozen_ && enabled;
  }

  /// The repo this refiner interns into (reuse sanity checks).
  [[nodiscard]] ViewRepo& repo() const { return *repo_; }

  /// Fills `level` with every node's depth-0 view id; returns the level's
  /// class count (number of distinct degrees). Resets any frozen quotient.
  std::size_t init_level(std::vector<ViewId>& level);

  /// Advances a whole level: next[v] = id of B^{t+1}(v) from prev[u] =
  /// id of B^t(u). Returns the new level's class count. `prev` and `next`
  /// must be distinct vectors; prev.size() must be n. When a quotient is
  /// frozen and `prev` is the level this refiner last produced, the round
  /// runs through the quotient (C interns + one scatter); a `prev` that
  /// does not match drops the quotient and re-runs detection from scratch.
  std::size_t advance(const std::vector<ViewId>& prev,
                      std::vector<ViewId>& next);

  /// The distinct ids of the level most recently produced by init_level(),
  /// advance() or advance_quotient(), in ascending id order.
  [[nodiscard]] std::span<const ViewId> distinct() const { return distinct_; }

  // ---------------------------------------------------- stable phase
  /// True once advance() has detected partition stabilization and frozen
  /// the quotient (class index + class signatures).
  [[nodiscard]] bool stable() const { return quotient_frozen_; }

  /// Class count of the frozen partition. Requires stable().
  [[nodiscard]] std::size_t classes() const { return class_ids_.size(); }

  /// Advances one round through the frozen quotient WITHOUT materializing
  /// the per-node level: interns exactly classes() views (in the same
  /// order, with the same ids, as the full pass would) and refreshes
  /// distinct() and the canonical ranks. Returns the class count.
  /// Requires stable(). Consumers needing per-node ids call scatter().
  std::size_t advance_quotient();

  /// Reproduces the current per-node level from the frozen class index:
  /// level[v] = id of B^t(v) for the most recently advanced t. O(n).
  /// Requires stable().
  void scatter(std::vector<ViewId>& level) const;

  /// The current view of one node, via the frozen class index. O(1).
  /// Requires stable().
  [[nodiscard]] ViewId node_view(portgraph::NodeId v) const {
    ANOLE_DCHECK(quotient_frozen_);
    return class_ids_[class_of_[static_cast<std::size_t>(v)]];
  }

  /// The current view of class c (classes are numbered in ascending
  /// first-node order). Requires stable().
  [[nodiscard]] ViewId class_view(std::size_t c) const {
    ANOLE_DCHECK(quotient_frozen_);
    return class_ids_[c];
  }

  /// The frozen node→class index. Requires stable().
  [[nodiscard]] std::span<const std::uint32_t> class_of() const {
    ANOLE_DCHECK(quotient_frozen_);
    return class_of_;
  }

  /// Debug counter: rounds advanced through the frozen quotient (either
  /// advance_quotient() directly or advance()'s stable path). Tests pair
  /// it with ViewRepo::size() deltas to pin "a stable round interns
  /// exactly C views".
  [[nodiscard]] std::uint64_t quotient_advances() const {
    return quotient_rounds_;
  }

  /// Debug stat: total bytes of capacity held by the per-graph scratch
  /// (columns, tables, quotient state). Tests pin the attach() trim with
  /// deltas of this after a big→small rebind.
  [[nodiscard]] std::size_t scratch_bytes() const;

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t node = 0;          ///< first node with this signature
    ViewId id = kInvalidView;        ///< kInvalidView marks an empty slot
  };

  /// Number of distinct values in `level` — the class count of the level
  /// the caller is advancing FROM, counted directly so stabilization
  /// detection never trusts the caller to pass this refiner's own output.
  [[nodiscard]] std::size_t count_distinct(const std::vector<ViewId>& level);

  /// Fills prev_key_ with the canonical ranks of prev under one validated
  /// rank-seqlock snapshot; false (leaving the caller on the id key) when
  /// any view is unranked or a concurrent renumber kept interfering.
  [[nodiscard]] bool try_rank_keys(const std::vector<ViewId>& prev);

  /// Readies the level-local dedup table for a fresh pass over n nodes
  /// (full rebuild only on capacity change, else clears the slots the
  /// previous level wrote) and empties distinct_.
  void dedup_prepare(std::size_t n);

  /// The serial dedup + intern pass over the gathered columns of nodes
  /// [begin, end) (node order, level-local table, prefetched scan) — one
  /// block of the fused serial pipeline, called while the block's columns
  /// are still cache-resident. `rank_keyed` says the columns hold ranks:
  /// fresh signatures then re-derive their id columns from `prev` before
  /// interning. Requires dedup_prepare() for the level; the caller sorts
  /// distinct_ after the last block.
  void dedup_block(const std::vector<ViewId>& prev, int depth,
                   bool rank_keyed, std::size_t begin, std::size_t end,
                   std::vector<ViewId>& next);

  /// Freezes the quotient from the just-produced `level` (whose distinct
  /// ids are in distinct_): class index in first-occurrence node order,
  /// representatives, and class-expressed SoA signature columns.
  void freeze_quotient(const std::vector<ViewId>& level);

  /// Whether `prev` is exactly the per-node image of the frozen quotient's
  /// current state — O(classes) representative probes for the common
  /// foreign-level case, then a full O(n) verification (the stable
  /// advance() path is O(n) anyway for its scatter).
  [[nodiscard]] bool matches_quotient(const std::vector<ViewId>& prev) const;

  /// Grows the per-chunk arena pool to at least `count` entries (each a
  /// persistent ViewRepo::InternArena, reused across levels so the id
  /// blocks a chunk claims are not abandoned every round).
  void ensure_arenas(std::size_t count);

  /// Binds `g` and marks every graph-derived column stale. O(1): even
  /// the degree scan is deferred, so a quotient resume touches only the
  /// class representatives' rows, never all n row headers.
  void bind_graph(const portgraph::PortGraph& g);

  /// Degree scan (has_degree0_ / uniform_degree_ / max_degree_), offset_
  /// prefix sums, the static SoA columns, per-level scratch and the
  /// dedup table for the bound graph. The expensive part of attach();
  /// deferred on warm starts until a non-quotient advance needs it.
  void rebuild_columns();

  void ensure_columns() {
    if (!columns_ready_) rebuild_columns();
  }

  const portgraph::PortGraph* graph_ = nullptr;
  ViewRepo* repo_;
  util::ThreadPool* pool_;
  const util::CancelToken* cancel_ = nullptr;  ///< polled per level
  std::vector<std::unique_ptr<ViewRepo::InternArena>> arenas_;
  bool columns_ready_ = false;         ///< static columns match graph_
  bool has_degree0_ = false;           ///< advance() must reject such graphs
  int uniform_degree_ = 0;             ///< all nodes' degree, or 0 if mixed
  int max_degree_ = 0;

  // Static per-graph SoA adjacency columns (attach): entry j of node v
  // lives at offset_[v] + j in each of nbr_/port_col_/premix_.
  std::vector<std::uint32_t> offset_;  ///< n+1 prefix sums of degrees
  std::vector<std::uint32_t> nbr_;     ///< flattened neighbor node ids, 2m
  std::vector<portgraph::Port> port_col_;  ///< reverse ports, 2m
  std::vector<std::uint64_t> premix_;  ///< sig_hash::entry_premix, 2m

  // Per-level SoA columns (step 1 output): the child-key column and the
  // per-entry hash terms, plus the per-node hashes and the rank-key image
  // of the previous level.
  std::vector<ViewId> child_col_;        ///< gathered child keys, 2m
  std::vector<std::uint64_t> emix_;      ///< per-entry hash terms, 2m
  std::vector<std::uint64_t> hash_;      ///< per-node signature hash
  std::vector<ViewId> prev_key_;         ///< prev translated to ranks
  std::vector<ViewId> sig_ids_;          ///< one signature's ids (scratch)

  std::vector<Slot> table_;            ///< level-local dedup table
  std::vector<std::uint32_t> used_slots_;  ///< slots written last level
  std::vector<ViewId> distinct_;
  std::vector<ViewId> id_table_;       ///< scratch for count_distinct

  // Stable-phase quotient (valid iff quotient_frozen_). class_of_ maps
  // each node to its class, classes numbered by ascending first node;
  // qport_/qchild_ hold each class's signature in SoA form with the
  // child column carrying *class indices* (frozen — partition fixed
  // point); class_ids_ is the per-class ViewId of the current level.
  bool quotient_enabled_ = true;
  bool quotient_frozen_ = false;
  std::vector<std::uint32_t> class_of_;
  std::vector<std::uint32_t> rep_;      ///< first node of each class
  std::vector<std::uint32_t> qoffset_;  ///< C+1 prefix sums of rep degrees
  std::vector<portgraph::Port> qport_;  ///< class signature rev_ports
  std::vector<std::uint32_t> qchild_;   ///< class signature child classes
  std::vector<ViewId> class_ids_;
  std::vector<ViewId> new_class_ids_;   ///< scratch for advance_quotient
  std::uint64_t quotient_rounds_ = 0;
  std::vector<std::uint32_t> last_dirty_classes_;  ///< see invalidate()
};

}  // namespace anole::views
