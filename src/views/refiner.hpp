#pragma once
// Batched level-synchronous view refinement (DESIGN.md §7).
//
// Advancing every node from B^t to B^{t+1} is one step of partition
// refinement (Proposition 2.1): node v's next view is determined by its
// signature (deg(v), [(rev_port_j, id of B^t(u_j))]), and the number of
// *distinct* signatures per level — the refinement class count — is
// usually far below n. The per-node path (one ViewRepo::intern per node
// per level) pays a hash + probe + child-span compare for every node
// anyway; a Refiner advances the whole level at once instead:
//
//   1. gather: every node's signature is written into a flat arena at a
//      precomputed offset (prefix sums of degrees) and its signature hash
//      is computed — embarrassingly parallel across the optional
//      util::ThreadPool, each worker writing disjoint node ranges;
//   2. dedup + intern: one sequential pass in node order probes a
//      level-local open-addressing table with the precomputed hashes,
//      interning each distinct signature exactly once (at its first
//      occurrence) and reusing the id for every duplicate;
//   3. scatter: ids land in node order, and the level's class count (and
//      the distinct id list) falls out of the dedup for free — no
//      per-level unordered_set recount;
//   4. rank: the distinct ids are handed to ViewRepo::assign_ranks, which
//      sorts them by integer keys over the previous level's ranks and
//      stores each view's canonical rank — every later ordering query
//      (compare, argmin, trie sorts, per-round minima) on these views is
//      a single integer comparison (DESIGN.md §8).
//
// Determinism: the dedup/intern pass runs in ascending node order, so ids
// are assigned in exactly the order the per-node loop would have assigned
// them — profiles built through a Refiner are id-identical to the naive
// path and independent of the pool's thread count (the parallel phase only
// fills disjoint slots; it never interns). tests/refiner_test.cpp pins
// both properties.
//
// A Refiner borrows its graph, repo and pool; all must outlive it. Like
// the repo it serves, a Refiner is not thread-safe — one per cell.

#include <cstdint>
#include <span>
#include <vector>

#include "portgraph/port_graph.hpp"
#include "views/view_repo.hpp"

namespace anole::util {
class ThreadPool;
}  // namespace anole::util

namespace anole::views {

class Refiner {
 public:
  /// `pool == nullptr` (or a tiny level) keeps the gather phase sequential.
  /// The pool must not be shared with concurrent wait_idle() users while a
  /// refinement is in flight.
  Refiner(const portgraph::PortGraph& g, ViewRepo& repo,
          util::ThreadPool* pool = nullptr);

  /// Fills `level` with every node's depth-0 view id; returns the level's
  /// class count (number of distinct degrees).
  std::size_t init_level(std::vector<ViewId>& level);

  /// Advances a whole level: next[v] = id of B^{t+1}(v) from prev[u] =
  /// id of B^t(u). Returns the new level's class count. `prev` and `next`
  /// must be distinct vectors; prev.size() must be n.
  std::size_t advance(const std::vector<ViewId>& prev,
                      std::vector<ViewId>& next);

  /// The distinct ids of the level most recently produced by init_level()
  /// or advance(), in ascending id order.
  [[nodiscard]] std::span<const ViewId> distinct() const { return distinct_; }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t node = 0;          ///< first node with this signature
    ViewId id = kInvalidView;        ///< kInvalidView marks an empty slot
  };

  const portgraph::PortGraph* graph_;
  ViewRepo* repo_;
  util::ThreadPool* pool_;
  bool has_degree0_ = false;           ///< advance() must reject such graphs
  std::vector<std::uint32_t> offset_;  ///< n+1 prefix sums of degrees
  std::vector<ChildRef> arena_;        ///< gathered signatures, 2m entries
  std::vector<std::uint64_t> hash_;    ///< per-node signature hash
  std::vector<Slot> table_;            ///< level-local dedup table
  std::vector<ViewId> distinct_;
};

}  // namespace anole::views
