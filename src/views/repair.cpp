#include "views/repair.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <vector>

#include "views/refiner.hpp"
#include "views/view_repo.hpp"

namespace anole::views {

using portgraph::NodeId;
using portgraph::Port;

namespace {

std::atomic<bool> g_repair_check{false};

/// Re-derives feasibility and the election index from the class counts —
/// the edit can move phi in either direction.
void recompute_verdict(ViewProfile& profile, std::size_t n) {
  profile.feasible = false;
  profile.election_index = -1;
  for (std::size_t t = 0; t < profile.class_counts.size(); ++t) {
    if (profile.class_counts[t] == n) {
      profile.feasible = true;
      profile.election_index = static_cast<int>(t);
      break;
    }
  }
}

}  // namespace

void set_repair_check_enabled(bool enabled) {
  g_repair_check.store(enabled, std::memory_order_relaxed);
}

bool repair_check_enabled() {
  return g_repair_check.load(std::memory_order_relaxed);
}

RepairStats repair_profile(const portgraph::PortGraph& g, ViewRepo& repo,
                           ViewProfile& profile,
                           std::span<const NodeId> dirty, Refiner* refiner) {
  RepairStats stats;
  std::size_t n = g.n();
  int old_depth = profile.computed_depth();

  bool can_incremental = profile.keep_history && !profile.ids.empty() &&
                         profile.ids[0].size() == n && old_depth >= 0;
  if (can_incremental) {
    for (NodeId v : dirty) {
      if (v < 0 || static_cast<std::size_t>(v) >= n) {
        can_incremental = false;
        break;
      }
      // Degree preservation: the node's depth-0 view (a leaf labeled by
      // its old degree) must still describe it. Masked slots mean a crash
      // edit slipped through — not repairable either.
      if (repo.degree(profile.ids[0][static_cast<std::size_t>(v)]) !=
          g.degree(v)) {
        can_incremental = false;
        break;
      }
      for (const portgraph::HalfEdge& he : g.neighbors(v)) {
        if (he.neighbor < 0) {
          can_incremental = false;
          break;
        }
      }
      if (!can_incremental) break;
    }
  }
  if (!can_incremental) {
    profile = compute_profile(
        g, repo,
        ProfileOptions{.min_depth = std::max(old_depth, 0),
                       .keep_history = profile.keep_history,
                       .refiner = refiner});
    return stats;  // incremental == false: full fallback
  }

  // Patch the refiner's static columns in place when it is still attached
  // to this (edited) graph object — the cheap path a fault loop reusing
  // one refiner across epochs hits. Otherwise it re-attaches lazily below,
  // only if extension levels are actually needed.
  if (refiner != nullptr)
    ANOLE_CHECK_MSG(&refiner->repo() == &repo,
                    "repair refiner interns into a different repo");
  bool refiner_ready =
      refiner != nullptr && refiner->invalidate(g, dirty);

  // The dirty frontier: nodes whose view changes at the current level.
  // Level t's frontier is level t-1's grown by one neighbor hop (B^t(v)
  // depends on the radius-t ball, so a node further than t hops from
  // every edited row keeps its exact view — and, hash-consed, its id).
  std::vector<bool> in_frontier(n, false);
  std::vector<NodeId> frontier;
  for (NodeId v : dirty) {
    if (!in_frontier[static_cast<std::size_t>(v)]) {
      in_frontier[static_cast<std::size_t>(v)] = true;
      frontier.push_back(v);
    }
  }
  std::sort(frontier.begin(), frontier.end());

  std::vector<ChildRef> kids;
  for (int t = 1; t <= old_depth; ++t) {
    if (t >= 2) {
      std::vector<NodeId> fresh;
      for (NodeId v : frontier) {
        for (const portgraph::HalfEdge& he : g.neighbors(v)) {
          if (!in_frontier[static_cast<std::size_t>(he.neighbor)]) {
            in_frontier[static_cast<std::size_t>(he.neighbor)] = true;
            fresh.push_back(he.neighbor);
          }
        }
      }
      frontier.insert(frontier.end(), fresh.begin(), fresh.end());
      std::sort(frontier.begin(), frontier.end());
    }
    const std::vector<ViewId>& prev =
        profile.ids[static_cast<std::size_t>(t) - 1];
    std::vector<ViewId>& cur = profile.ids[static_cast<std::size_t>(t)];
    for (NodeId v : frontier) {
      kids.clear();
      for (Port p = 0; p < g.degree(v); ++p) {
        const portgraph::HalfEdge& he = g.at(v, p);
        kids.emplace_back(he.rev_port,
                          prev[static_cast<std::size_t>(he.neighbor)]);
      }
      cur[static_cast<std::size_t>(v)] = repo.intern(kids);
    }
    stats.recomputed_views += frontier.size();
    stats.reused_views += n - frontier.size();
    // Class count and canonical ranks of the merged (reused + repaired)
    // level — exactly what a full recompute's Refiner round would have
    // produced for it.
    std::vector<ViewId> distinct = distinct_ids(cur);
    profile.class_counts[static_cast<std::size_t>(t)] = distinct.size();
    repo.assign_ranks(distinct);
  }
  recompute_verdict(profile, n);

  // The old depth satisfied compute_profile's stopping rule for the OLD
  // graph; the edit may have un-stabilized the partition (or pushed
  // feasibility deeper), so extend with fresh full rounds until the rule
  // holds again. This is where the quotient machinery re-engages: the
  // refiner's advance detects stabilization on the extended levels as
  // usual.
  std::optional<Refiner> local;
  Refiner* ext = nullptr;
  auto ensure_refiner = [&]() -> Refiner* {
    if (ext != nullptr) return ext;
    if (refiner != nullptr) {
      if (!refiner_ready) refiner->attach(g);
      ext = refiner;
    } else {
      ext = &local.emplace(g, repo, nullptr);
    }
    return ext;
  };
  for (;;) {
    int t = profile.computed_depth();
    std::size_t classes = profile.class_counts.back();
    bool stabilized =
        t >= 1 &&
        classes == profile.class_counts[static_cast<std::size_t>(t) - 1];
    if (profile.feasible || stabilized) break;
    std::vector<ViewId> next;
    std::size_t next_classes =
        ensure_refiner()->advance(profile.ids.back(), next);
    profile.ids.push_back(std::move(next));
    profile.class_counts.push_back(next_classes);
    ++stats.extended_levels;
    if (next_classes == n) {
      profile.feasible = true;
      profile.election_index = profile.computed_depth();
    }
  }
  stats.incremental = true;

  if (repair_check_enabled()) {
    // Equality assertion path: the repaired profile must be byte-identical
    // to a from-scratch recompute of the edited graph at the same depth.
    // Same repo, so equal views imply equal ids — any divergence is a
    // repair bug, not an interning artifact.
    ViewProfile full = compute_profile(
        g, repo,
        ProfileOptions{.min_depth = profile.computed_depth(),
                       .keep_history = true});
    ANOLE_CHECK_MSG(full.class_counts == profile.class_counts,
                    "repair check: class counts diverge from recompute");
    ANOLE_CHECK_MSG(full.ids.size() == profile.ids.size(),
                    "repair check: level count diverges from recompute");
    for (std::size_t t = 0; t < full.ids.size(); ++t)
      ANOLE_CHECK_MSG(full.ids[t] == profile.ids[t],
                      "repair check: ids diverge at level " << t);
    ANOLE_CHECK_MSG(full.feasible == profile.feasible &&
                        full.election_index == profile.election_index,
                    "repair check: verdict diverges from recompute");
  }
  return stats;
}

}  // namespace anole::views
