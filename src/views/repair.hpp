#pragma once
// Incremental view repair after an in-place topology edit (DESIGN.md §12).
//
// A fault epoch edits a handful of adjacency rows (PortGraph::rewire_edge
// keeps every degree and port number; only the touched endpoints' rows
// change). The views of everything far from the edit are untouched:
// B^t(v) depends only on the radius-t ball around v, so if no node of
// dirty_0 (the edited rows) is within distance t of v, B^t(v) is
// byte-identical before and after. repair_profile exploits this level by
// level — the dirty frontier at depth t is dirty_{t-1} grown by one
// neighbor hop, and only frontier nodes are re-interned; every other
// node's entry is *reused* from the old profile (hash-consing keeps old
// ids valid: they still name exactly the same view trees). Class counts,
// feasibility and the election index are then recomputed from the merged
// levels, and the profile is extended with fresh Refiner rounds if the
// edit un-stabilized the partition (or broke feasibility) at the old
// depth.
//
// The repaired profile is byte-identical — ids, class counts, ranks,
// feasibility, election index — to compute_profile on the edited graph
// (min_depth = the old depth): reused entries intern to the same record a
// recompute would find, recomputed entries intern through the same repo.
// set_repair_check_enabled(true) makes every incremental repair ALSO run
// the full recompute and assert exactly that, level by level — the
// equality path the repair tests (and paranoid callers) run under.
//
// When the edit was NOT degree-preserving (crash/recover epochs change
// node counts and degrees) the repair falls back to a full
// compute_profile; RepairStats::incremental says which path ran.

#include <span>

#include "portgraph/port_graph.hpp"
#include "views/profile.hpp"

namespace anole::views {

class Refiner;

struct RepairStats {
  /// False when a precondition failed and the profile was fully recomputed.
  bool incremental = false;
  /// Per-node view recomputations performed (interns of frontier nodes).
  std::size_t recomputed_views = 0;
  /// Node-level entries kept from the old profile (zero on the fallback).
  std::size_t reused_views = 0;
  /// Fresh levels appended past the old depth (edit un-stabilized the
  /// partition at the old depth, or feasibility moved deeper).
  std::size_t extended_levels = 0;
};

/// Process-wide test switch: when enabled, every *incremental* repair also
/// runs the full recompute into the same repo and asserts per-level id
/// equality (plus class counts / feasibility / election index). Expensive
/// — double work per repair — and meant for tests; defaults to off.
void set_repair_check_enabled(bool enabled);
[[nodiscard]] bool repair_check_enabled();

/// Repairs `profile` (previously computed for `g` before the edit) so it
/// is byte-identical to a fresh compute_profile of the edited `g` with
/// min_depth = the old computed depth. `dirty` lists every node whose
/// adjacency row the edit touched (rewire_edge: all four endpoints).
/// Incremental requirements: the profile kept history, its node count
/// matches, and every dirty node kept its degree — otherwise the full
/// fallback runs. `refiner`, when given, must intern into `repo`; if it
/// is currently attached to this graph object its columns are patched via
/// Refiner::invalidate (no O(m) re-attach) and it advances any extension
/// levels; otherwise a local refiner serves the call.
RepairStats repair_profile(const portgraph::PortGraph& g, ViewRepo& repo,
                           ViewProfile& profile,
                           std::span<const portgraph::NodeId> dirty,
                           Refiner* refiner = nullptr);

}  // namespace anole::views
