#include "views/sig_hash.hpp"

// Explicit vectorization request for the strip-mined inner loops. Under
// -DANOLE_NO_SIMD the pragma vanishes (and gather_mix dispatches to the
// scalar kernel), giving a build whose arithmetic is the plain scalar
// loop — bit-identical by construction, byte-identical in output.
#if defined(ANOLE_NO_SIMD)
#define ANOLE_VEC_LOOP
#elif defined(__clang__)
#define ANOLE_VEC_LOOP _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define ANOLE_VEC_LOOP _Pragma("GCC ivdep")
#else
#define ANOLE_VEC_LOOP
#endif

namespace anole::views::sig_hash {

void gather_mix_scalar(const std::uint32_t* nbr, const std::int32_t* key,
                       const std::uint64_t* premix, std::int32_t* child_out,
                       std::uint64_t* emix_out, std::size_t count) {
  for (std::size_t j = 0; j < count; ++j) {
    std::int32_t c = key[nbr[j]];
    child_out[j] = c;
    emix_out[j] = entry_value(premix[j], static_cast<std::uint32_t>(c));
  }
}

void gather_mix_simd(const std::uint32_t* nbr, const std::int32_t* key,
                     const std::uint64_t* premix, std::int32_t* child_out,
                     std::uint64_t* emix_out, std::size_t count) {
  constexpr std::size_t kLanes = 8;
  std::size_t j = 0;
  for (; j + kLanes <= count; j += kLanes) {
    // Fixed trip count + no cross-lane state: the compiler may gather the
    // keys and run the mix64 chain as packed 64-bit ops (or fully unroll
    // for ILP where gathers don't pay) — either way the per-element math
    // is exactly the scalar kernel's.
    ANOLE_VEC_LOOP
    for (std::size_t k = 0; k < kLanes; ++k) {
      std::int32_t c = key[nbr[j + k]];
      child_out[j + k] = c;
      emix_out[j + k] = entry_value(premix[j + k], static_cast<std::uint32_t>(c));
    }
  }
  for (; j < count; ++j) {  // scalar tail, same math
    std::int32_t c = key[nbr[j]];
    child_out[j] = c;
    emix_out[j] = entry_value(premix[j], static_cast<std::uint32_t>(c));
  }
}

namespace {

/// Uniform-degree reduction: the entry stride is the compile-time degree,
/// so the sum unrolls flat and four nodes' accumulators run in parallel
/// (ILP) with no offset reloads.
template <int kDegree>
void reduce_uniform(std::size_t node_begin, std::size_t node_end,
                    const std::uint64_t* emix, std::uint64_t seed,
                    std::uint64_t* hash_out) {
  const std::uint64_t* e = emix;
  std::size_t v = node_begin;
  for (; v + 4 <= node_end; v += 4) {
    std::uint64_t a0 = seed, a1 = seed, a2 = seed, a3 = seed;
    for (int p = 0; p < kDegree; ++p) {
      a0 += e[p];
      a1 += e[kDegree + p];
      a2 += e[2 * kDegree + p];
      a3 += e[3 * kDegree + p];
    }
    hash_out[v] = finalize(a0);
    hash_out[v + 1] = finalize(a1);
    hash_out[v + 2] = finalize(a2);
    hash_out[v + 3] = finalize(a3);
    e += 4 * kDegree;
  }
  for (; v < node_end; ++v) {
    std::uint64_t acc = seed;
    for (int p = 0; p < kDegree; ++p) acc += e[p];
    hash_out[v] = finalize(acc);
    e += kDegree;
  }
}

/// Runtime-degree variant of the same shape (hypercube d, clique n-1).
void reduce_uniform_any(std::size_t node_begin, std::size_t node_end,
                        const std::uint64_t* emix, std::uint64_t seed,
                        int degree, std::uint64_t* hash_out) {
  const std::uint64_t* e = emix;
  for (std::size_t v = node_begin; v < node_end; ++v) {
    std::uint64_t acc = seed;
    for (int p = 0; p < degree; ++p) acc += e[p];
    hash_out[v] = finalize(acc);
    e += degree;
  }
}

}  // namespace

void reduce_nodes(const std::uint32_t* offsets, std::size_t node_begin,
                  std::size_t node_end, const std::uint64_t* emix, int depth,
                  int uniform_degree, std::uint64_t* hash_out) {
  if (uniform_degree > 0) {
    std::uint64_t seed = sig_seed(static_cast<std::uint64_t>(uniform_degree),
                                  static_cast<std::uint64_t>(depth));
    const std::uint64_t* base = emix + offsets[node_begin];
    switch (uniform_degree) {
      case 2:
        reduce_uniform<2>(node_begin, node_end, base, seed, hash_out);
        return;
      case 3:
        reduce_uniform<3>(node_begin, node_end, base, seed, hash_out);
        return;
      case 4:
        reduce_uniform<4>(node_begin, node_end, base, seed, hash_out);
        return;
      default:
        reduce_uniform_any(node_begin, node_end, base, seed, uniform_degree,
                           hash_out);
        return;
    }
  }
  for (std::size_t v = node_begin; v < node_end; ++v) {
    std::uint32_t b = offsets[v];
    std::uint32_t e = offsets[v + 1];
    std::uint64_t acc = sig_seed(static_cast<std::uint64_t>(e - b),
                                 static_cast<std::uint64_t>(depth));
    for (std::uint32_t j = b; j < e; ++j) acc += emix[j];
    hash_out[v] = finalize(acc);
  }
}

}  // namespace anole::views::sig_hash
