#pragma once
// Column-wise signature hashing for the SoA refinement pipeline
// (DESIGN.md §11).
//
// The interning index keys every record on a hash of its signature
// (degree, depth, [(rev_port_j, child_j)]). The historical hash was a
// serial mix chain — each entry's contribution depended on the running
// value, so a level of signatures could only be hashed one entry after
// another. The SoA pipeline hashes whole levels column-wise instead, so
// the hash is restructured as a position-salted commutative sum:
//
//   hash = finalize(seed(degree, depth) + Σ_j entry_value(premix_j, child_j))
//   premix_j = entry_premix(j, rev_port_j)          — static per graph entry
//   entry_value(p, c) = mix64(p + c * kChildMul)    — independent per entry
//
// Every entry's term depends only on that entry (position, rev_port,
// child), so terms for a whole column batch compute with no cross-entry
// dependency — the inner loop vectorizes — and the per-position salt in
// the premix keeps permuted signatures from systematically colliding
// (residual collisions are resolved by the index's record compare, as
// with any hash). ViewRepo::signature_hash delegates to these helpers,
// so single AoS interns, the SoA batch path, and truncate()'s rebuilds
// all key the index identically — the whole point: a view interned
// through any path lands on the same index slot.
//
// Kernels: gather_mix_{simd,scalar} are bit-identical by construction
// (same pure integer math per element, no cross-element state); both are
// always compiled, and -DANOLE_NO_SIMD only switches the gather_mix
// dispatch (and silences the vectorize pragmas). tests/soa_hash_test.cpp
// pins the equivalences.

#include <cstddef>
#include <cstdint>

/// Read-intent software prefetch (no-op off GCC/Clang). The dedup scan
/// uses it to pull the next nodes' table slot and child-column lines in
/// while the current node probes (views::Refiner, DESIGN.md §11).
#if defined(__GNUC__) || defined(__clang__)
#define ANOLE_PREFETCH(addr) __builtin_prefetch((addr), 0, 1)
#else
#define ANOLE_PREFETCH(addr) ((void)0)
#endif

namespace anole::views::sig_hash {

// Odd 64-bit multipliers keeping the five signature components (degree,
// depth, position, rev_port, child) in distinct linear subspaces before
// the non-linear mix64.
inline constexpr std::uint64_t kDegreeMul = 0x9e3779b97f4a7c15ULL;
inline constexpr std::uint64_t kDepthMul = 0xc2b2ae3d27d4eb4fULL;
inline constexpr std::uint64_t kPosMul = 0x165667b19e3779f9ULL;
inline constexpr std::uint64_t kPortMul = 0x27d4eb2f165667c5ULL;
inline constexpr std::uint64_t kChildMul = 0x2545f4914f6cdd1dULL;

/// SplitMix64 finalizer: full-avalanche 64-bit permutation.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// The static (child-independent) half of one entry's term. Position and
/// reverse port never change for a given graph entry, so refiners
/// precompute one premix column at attach time.
[[nodiscard]] constexpr std::uint64_t entry_premix(std::size_t pos,
                                                   std::uint64_t rev_port) {
  return static_cast<std::uint64_t>(pos) * kPosMul + rev_port * kPortMul;
}

/// One entry's full term. `child` is the child key (a ViewId, or a
/// canonical rank for the level-local dedup columns) zero-extended.
[[nodiscard]] constexpr std::uint64_t entry_value(std::uint64_t premix,
                                                  std::uint64_t child) {
  return mix64(premix + child * kChildMul);
}

/// The degree/depth half of the signature, added once per node.
[[nodiscard]] constexpr std::uint64_t sig_seed(std::uint64_t degree,
                                               std::uint64_t depth) {
  return degree * kDegreeMul ^ depth * kDepthMul;
}

/// Final avalanche over the accumulated sum; the index shards on the top
/// bits of the result.
[[nodiscard]] constexpr std::uint64_t finalize(std::uint64_t acc) {
  return mix64(acc);
}

/// The fused per-level hot loop over one contiguous entry range:
///   child_out[j] = key[nbr[j]];
///   emix_out[j]  = entry_value(premix[j], child_out[j]).
/// `key` maps a node id to its child key for this level (the previous
/// level's view ids, or their canonical ranks). No cross-entry
/// dependency: the simd variant strip-mines 8 entries per iteration
/// under an explicit vectorize pragma with a scalar tail; the scalar
/// variant is a plain loop. Identical outputs, always (same per-element
/// integer math) — pinned by tests/soa_hash_test.cpp.
void gather_mix_simd(const std::uint32_t* nbr, const std::int32_t* key,
                     const std::uint64_t* premix, std::int32_t* child_out,
                     std::uint64_t* emix_out, std::size_t count);
void gather_mix_scalar(const std::uint32_t* nbr, const std::int32_t* key,
                       const std::uint64_t* premix, std::int32_t* child_out,
                       std::uint64_t* emix_out, std::size_t count);

inline void gather_mix(const std::uint32_t* nbr, const std::int32_t* key,
                       const std::uint64_t* premix, std::int32_t* child_out,
                       std::uint64_t* emix_out, std::size_t count) {
#if defined(ANOLE_NO_SIMD)
  gather_mix_scalar(nbr, key, premix, child_out, emix_out, count);
#else
  gather_mix_simd(nbr, key, premix, child_out, emix_out, count);
#endif
}

/// Per-node reduction over the mixed entry column:
///   hash_out[v] = finalize(sig_seed(deg(v), depth) + Σ emix[offsets[v]..))
/// for v in [node_begin, node_end). `uniform_degree` > 0 asserts every
/// node has that degree (regular families: ring, torus, hypercube,
/// clique) and selects an unrolled fixed-stride path; 0 means mixed.
void reduce_nodes(const std::uint32_t* offsets, std::size_t node_begin,
                  std::size_t node_end, const std::uint64_t* emix, int depth,
                  int uniform_degree, std::uint64_t* hash_out);

}  // namespace anole::views::sig_hash
