// Persistent ViewRepo snapshots: blob layout, save, Copy/Mmap load,
// inspection (DESIGN.md §13).
//
// File layout (little-endian, every section 8-byte aligned):
//
//   header (16 u64 words):
//     [0] magic "ANOLEVRS"        [1] format version
//     [2] endianness tag          [3] total file bytes
//     [4] body checksum (FNV-1a over bytes 128..end)
//     [5] id high-water mark      [6] live record count
//     [7] child-pool refs         [8] index shard count
//     [9..14] file offsets of the records / children / index / ranks /
//             stats / anchors sections
//     [15] header checksum (FNV-1a over words 0..14)
//
//   records:  high-water RecordDisk entries (32 bytes, bit-compatible
//             with the in-memory Record except the first 8 bytes hold a
//             child-pool offset instead of a pointer). Arena id gaps are
//             stored as default records — degree 0, rank -1, never in
//             the index — so ids stay exactly what they were.
//   children: the child pool, rewritten contiguously in id order.
//   index:    per shard: capacity, used, then `used` (hash, id) pairs —
//             enough to rebuild each shard independently (in parallel).
//   ranks:    per depth: count, then the ranked ids in canonical order.
//   stats:    sparse (id, records, edges) triples of memoized DagStats.
//   anchors:  per anchor: fingerprint, n, depths, classes, the per-depth
//             class counts, class ids and the node->class map.

#include "views/snapshot.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <limits>
#include <unordered_map>

#include "coding/blob.hpp"
#include "util/check.hpp"

namespace anole::views {
namespace {

using coding::BlobCursor;
using coding::BlobError;
using coding::BlobReader;
using coding::BlobWriter;
using coding::fnv1a64;

constexpr std::uint64_t kMagic = UINT64_C(0x535256454C4F4E41);  // "ANOLEVRS"
constexpr std::uint64_t kFormatVersion = 1;
constexpr std::uint64_t kEndianTag = UINT64_C(0x0102030405060708);
constexpr std::size_t kHeaderWords = 16;
constexpr std::size_t kHeaderBytes = 8 * kHeaderWords;

enum HeaderWord : std::size_t {
  kHMagic = 0,
  kHVersion,
  kHEndian,
  kHFileBytes,
  kHBodyChecksum,
  kHNextId,
  kHRecordCount,
  kHChildRefs,
  kHShards,
  kHOffRecords,
  kHOffChildren,
  kHOffIndex,
  kHOffRanks,
  kHOffStats,
  kHOffAnchors,
  kHHeaderChecksum,
};

[[noreturn]] void fail(const std::string& what) {
  throw BlobError("snapshot: " + what);
}

std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) fail("cannot open '" + path + "'");
  std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<unsigned char> buf(static_cast<std::size_t>(size));
  if (size > 0) in.read(reinterpret_cast<char*>(buf.data()), size);
  if (!in) fail("cannot read '" + path + "'");
  return buf;
}

}  // namespace

// Full private access to ViewRepo for the snapshot lifecycle; befriended
// in view_repo.hpp. Everything here runs either on a quiescent repo
// (save) or on a repo that has not been published to any thread yet
// (load), so plain/relaxed accesses are sufficient throughout.
struct SnapshotAccess {
  using Record = ViewRepo::Record;
  using IndexTable = ViewRepo::IndexTable;
  using IndexSlot = ViewRepo::IndexSlot;
  using Shard = ViewRepo::Shard;

  // The on-disk record. Bit-compatible with the in-memory Record: the
  // child-pool offset occupies the pointer's 8 bytes, so LoadMode::Mmap
  // turns a disk record into a live one by patching that single field.
  struct RecordDisk {
    std::uint64_t child_offset = 0;
    std::int32_t degree = 0;
    std::int32_t depth = 0;
    std::int32_t child_count = 0;
    std::int32_t sub_max_degree = 0;
    std::int32_t sub_max_port = 0;
    std::int32_t rank = kUnranked;
  };
  static_assert(sizeof(RecordDisk) == 32);
  static_assert(sizeof(Record) == 32 && alignof(Record) == 8,
                "snapshot format v1 requires the 32-byte record layout");
  static_assert(offsetof(RecordDisk, degree) == 8 &&
                offsetof(RecordDisk, rank) == 28);
  static_assert(std::atomic<std::int32_t>::is_always_lock_free &&
                sizeof(std::atomic<std::int32_t>) == 4);
  static_assert(std::is_standard_layout_v<ChildRef> &&
                std::is_trivially_destructible_v<ChildRef> &&
                sizeof(ChildRef) == 8 && alignof(ChildRef) <= 8);

  struct Parsed {
    std::uint64_t version = 0;
    std::size_t next_id = 0;
    std::uint64_t record_count = 0;
    std::uint64_t child_refs = 0;
    std::size_t off_records = 0;
    std::size_t off_children = 0;
    std::size_t off_index = 0;
    std::size_t off_ranks = 0;
    std::size_t off_stats = 0;
    std::size_t off_anchors = 0;
  };

  // ------------------------------------------------------------- save

  static void save(const ViewRepo& repo, const std::string& path,
                   std::span<const SweepAnchor> anchors) {
    const std::size_t next =
        static_cast<std::size_t>(repo.next_id_.load(std::memory_order_acquire));

    // Pass 1: total child refs (the child pool is rewritten contiguously
    // in id order; record child offsets are the prefix sums).
    std::uint64_t child_refs = 0;
    for (std::size_t id = 0; id < next; ++id)
      child_refs += static_cast<std::uint64_t>(
          repo.rec(static_cast<ViewId>(id)).child_count);

    BlobWriter w(kHeaderWords, 40 * next + 16 * child_refs);
    std::uint64_t header[kHeaderWords] = {};
    header[kHMagic] = kMagic;
    header[kHVersion] = kFormatVersion;
    header[kHEndian] = kEndianTag;
    header[kHNextId] = next;
    header[kHRecordCount] = repo.record_count_.load(std::memory_order_relaxed);
    header[kHChildRefs] = child_refs;
    header[kHShards] = ViewRepo::kShards;

    // Records, staged a batch at a time (bounded transient memory).
    header[kHOffRecords] = w.offset();
    {
      constexpr std::size_t kBatch = 1 << 16;
      std::vector<RecordDisk> batch;
      batch.reserve(std::min(next, kBatch));
      std::uint64_t coff = 0;
      for (std::size_t id = 0; id < next; ++id) {
        const Record& r = repo.rec(static_cast<ViewId>(id));
        RecordDisk d;
        d.child_offset = coff;
        d.degree = r.degree;
        d.depth = r.depth;
        d.child_count = r.child_count;
        d.sub_max_degree = r.sub_max_degree;
        d.sub_max_port = r.sub_max_port;
        d.rank = r.rank.load(std::memory_order_relaxed);
        coff += static_cast<std::uint64_t>(r.child_count);
        batch.push_back(d);
        if (batch.size() == kBatch) {
          w.bytes(batch.data(), 32 * batch.size());
          batch.clear();
        }
      }
      if (!batch.empty()) w.bytes(batch.data(), 32 * batch.size());
    }

    header[kHOffChildren] = w.offset();
    for (std::size_t id = 0; id < next; ++id) {
      const Record& r = repo.rec(static_cast<ViewId>(id));
      if (r.child_count > 0)
        w.bytes(r.kids, 8 * static_cast<std::size_t>(r.child_count));
    }

    header[kHOffIndex] = w.offset();
    w.u64(ViewRepo::kShards);
    for (const Shard& sh : repo.shards_) {
      const IndexTable* t = sh.table.load(std::memory_order_acquire);
      w.u64(t == nullptr ? 0 : t->mask + 1);
      w.u64(sh.used);
      if (t == nullptr) continue;
      for (const IndexSlot& slot : t->slots) {
        ViewId id = slot.id.load(std::memory_order_relaxed);
        if (id == kInvalidView) continue;
        w.u64(slot.hash.load(std::memory_order_relaxed));
        w.u64(static_cast<std::uint64_t>(id));
      }
    }

    header[kHOffRanks] = w.offset();
    w.u64(repo.ranked_by_depth_.size());
    for (const std::vector<ViewId>& ranked : repo.ranked_by_depth_) {
      w.u64(ranked.size());
      w.bytes(ranked.data(), 4 * ranked.size());
    }

    header[kHOffStats] = w.offset();
    {
      std::uint64_t entries = 0;
      std::size_t memo = std::min(repo.count_memo_.size(), next);
      for (std::size_t id = 0; id < memo; ++id)
        if (repo.count_memo_[id].records != 0) ++entries;
      w.u64(entries);
      for (std::size_t id = 0; id < memo; ++id) {
        const ViewRepo::CountEntry& e = repo.count_memo_[id];
        if (e.records == 0) continue;
        w.u64(id);
        w.u64(e.records);
        w.u64(e.edges);
      }
    }

    header[kHOffAnchors] = w.offset();
    w.u64(anchors.size());
    for (const SweepAnchor& a : anchors) {
      ANOLE_CHECK_MSG(a.class_ids.size() == a.class_counts.back(),
                      "anchor class_ids disagree with its class_counts");
      w.u64(a.fingerprint);
      w.u64(a.class_of.size());
      w.u64(a.class_counts.size());
      w.u64(a.class_ids.size());
      std::vector<std::uint64_t> counts(a.class_counts.begin(),
                                        a.class_counts.end());
      w.bytes(counts.data(), 8 * counts.size());
      w.bytes(a.class_ids.data(), 4 * a.class_ids.size());
      w.bytes(a.class_of.data(), 4 * a.class_of.size());
    }

    header[kHFileBytes] = w.offset();
    header[kHBodyChecksum] = w.body_checksum();
    header[kHHeaderChecksum] = fnv1a64(header, 8 * (kHeaderWords - 1));
    w.finish(path, header);
  }

  // ------------------------------------------------- header validation

  static Parsed parse_header(const BlobReader& r, bool verify_body) {
    if (r.size() < kHeaderBytes) fail("file truncated (no header)");
    if (r.u64_at(8 * kHMagic) != kMagic) fail("bad magic (not a snapshot)");
    std::uint64_t version = r.u64_at(8 * kHVersion);
    if (version != kFormatVersion)
      fail("format version " + std::to_string(version) + " unsupported (want " +
           std::to_string(kFormatVersion) + ")");
    if (r.u64_at(8 * kHEndian) != kEndianTag)
      fail("endianness mismatch (snapshot written on a different byte order)");
    std::uint64_t header[kHeaderWords - 1];
    for (std::size_t i = 0; i + 1 < kHeaderWords; ++i) header[i] = r.u64_at(8 * i);
    if (fnv1a64(header, sizeof(header)) != r.u64_at(8 * kHHeaderChecksum))
      fail("header checksum mismatch");
    if (r.u64_at(8 * kHFileBytes) != r.size())
      fail("file truncated (header records " +
           std::to_string(r.u64_at(8 * kHFileBytes)) + " bytes, have " +
           std::to_string(r.size()) + ")");
    if (r.u64_at(8 * kHShards) != ViewRepo::kShards)
      fail("shard count mismatch");

    Parsed p;
    p.version = version;
    std::uint64_t next = r.u64_at(8 * kHNextId);
    if (next > ViewRepo::seg_first(ViewRepo::kNumSegments) ||
        next > static_cast<std::uint64_t>(std::numeric_limits<ViewId>::max()))
      fail("id high-water mark out of range");
    p.next_id = static_cast<std::size_t>(next);
    p.record_count = r.u64_at(8 * kHRecordCount);
    if (p.record_count > next) fail("record count exceeds id high-water mark");
    p.child_refs = r.u64_at(8 * kHChildRefs);
    p.off_records = static_cast<std::size_t>(r.u64_at(8 * kHOffRecords));
    p.off_children = static_cast<std::size_t>(r.u64_at(8 * kHOffChildren));
    p.off_index = static_cast<std::size_t>(r.u64_at(8 * kHOffIndex));
    p.off_ranks = static_cast<std::size_t>(r.u64_at(8 * kHOffRanks));
    p.off_stats = static_cast<std::size_t>(r.u64_at(8 * kHOffStats));
    p.off_anchors = static_cast<std::size_t>(r.u64_at(8 * kHOffAnchors));
    const std::size_t offs[] = {p.off_records, p.off_children, p.off_index,
                                p.off_ranks,   p.off_stats,    p.off_anchors};
    std::size_t prev = kHeaderBytes;
    for (std::size_t off : offs) {
      if (off % 8 != 0 || off < prev || off > r.size())
        fail("section offsets corrupt");
      prev = off;
    }
    if (p.off_records + 32 * p.next_id > p.off_children ||
        p.off_children + 8 * p.child_refs > p.off_index)
      fail("section extents corrupt");

    if (verify_body &&
        fnv1a64(r.bytes_at(kHeaderBytes, r.size() - kHeaderBytes),
                r.size() - kHeaderBytes) != r.u64_at(8 * kHBodyChecksum))
      fail("body checksum mismatch (file corrupt)");
    return p;
  }

  // ------------------------------------------------------------- load

  static void check_record(const RecordDisk& d, std::uint64_t child_refs) {
    if (d.degree < 0 || d.depth < 0 || d.child_count < 0 ||
        d.child_offset > child_refs ||
        static_cast<std::uint64_t>(d.child_count) >
            child_refs - d.child_offset)
      fail("record fields corrupt");
  }

  static void load_records_copy(const BlobReader& r, const Parsed& p,
                                ViewRepo& repo) {
    if (p.next_id == 0) return;
    repo.ensure_segments(p.next_id);
    repo.next_id_.store(static_cast<ViewId>(p.next_id),
                        std::memory_order_relaxed);
    ChildRef* pool = nullptr;
    if (p.child_refs > 0) {
      auto chunk = std::make_unique<ChildRef[]>(p.child_refs);
      std::memcpy(chunk.get(), r.bytes_at(p.off_children, 8 * p.child_refs),
                  8 * p.child_refs);
      pool = chunk.get();
      repo.child_chunks_.push_back(std::move(chunk));
    }
    const auto* disk = static_cast<const unsigned char*>(
        r.bytes_at(p.off_records, 32 * p.next_id));
    for (std::size_t id = 0; id < p.next_id; ++id) {
      RecordDisk d;
      std::memcpy(&d, disk + 32 * id, 32);
      check_record(d, p.child_refs);
      Record& rec = repo.mutable_rec(static_cast<ViewId>(id));
      rec.kids = d.child_count > 0 ? pool + d.child_offset : nullptr;
      rec.degree = d.degree;
      rec.depth = d.depth;
      rec.child_count = d.child_count;
      rec.sub_max_degree = d.sub_max_degree;
      rec.sub_max_port = d.sub_max_port;
      rec.rank.store(d.rank, std::memory_order_relaxed);
    }
  }

  static void load_records_mmap(const BlobReader& r, const Parsed& p,
                                ViewRepo& repo, unsigned char* base) {
    if (p.next_id == 0) return;
    repo.next_id_.store(static_cast<ViewId>(p.next_id),
                        std::memory_order_relaxed);
    // The record array is contiguous by id in the blob, so segment k of a
    // fully-covered range is simply `recs + seg_first(k)`. Patching kids
    // dirties record pages copy-on-write; the child pool stays clean.
    (void)r.bytes_at(p.off_records, 32 * p.next_id);  // bounds re-check
    Record* recs = reinterpret_cast<Record*>(base + p.off_records);
    const ChildRef* pool =
        reinterpret_cast<const ChildRef*>(base + p.off_children);
    for (std::size_t id = 0; id < p.next_id; ++id) {
      Record& rec = recs[id];
      RecordDisk d;
      std::memcpy(&d, &rec, 32);  // pre-patch bytes: child_offset view
      check_record(d, p.child_refs);
      rec.kids = d.child_count > 0 ? pool + d.child_offset : nullptr;
    }
    for (std::size_t k = 0; k < ViewRepo::kNumSegments; ++k) {
      std::size_t first = ViewRepo::seg_first(k);
      if (first >= p.next_id) break;
      std::size_t len = ViewRepo::kSegBase << k;
      if (first + len <= p.next_id) {
        repo.segments_[k].store(recs + first, std::memory_order_release);
        repo.mapped_segments_ |= std::uint32_t{1} << k;
      } else {
        // Partial top segment: promote to heap so interning past the
        // stored high-water mark works without touching the mapping size.
        Record* seg = new Record[len];
        for (std::size_t i = 0; first + i < p.next_id; ++i) {
          const Record& src = recs[first + i];
          seg[i].kids = src.kids;
          seg[i].degree = src.degree;
          seg[i].depth = src.depth;
          seg[i].child_count = src.child_count;
          seg[i].sub_max_degree = src.sub_max_degree;
          seg[i].sub_max_port = src.sub_max_port;
          seg[i].rank.store(src.rank.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
        }
        repo.segments_[k].store(seg, std::memory_order_release);
      }
    }
  }

  static void load_index(const BlobReader& r, const Parsed& p, ViewRepo& repo,
                         util::ThreadPool* pool) {
    BlobCursor cur(r, p.off_index);
    if (cur.u64() != ViewRepo::kShards) fail("index shard count corrupt");
    struct ShardDisk {
      std::uint64_t capacity = 0;
      std::uint64_t used = 0;
      const unsigned char* pairs = nullptr;
    };
    std::vector<ShardDisk> disk(ViewRepo::kShards);
    for (ShardDisk& sd : disk) {
      sd.capacity = cur.u64();
      sd.used = cur.u64();
      if (sd.capacity == 0) {
        if (sd.used != 0) fail("index shard corrupt (entries, no table)");
        continue;
      }
      if (!std::has_single_bit(sd.capacity) ||
          sd.capacity > (std::uint64_t{1} << 28) ||
          sd.used * 4 >= sd.capacity * 3)
        fail("index shard sizing corrupt");
      sd.pairs =
          static_cast<const unsigned char*>(cur.bytes(16 * sd.used));
    }
    auto rebuild = [&](std::size_t s) {
      const ShardDisk& sd = disk[s];
      if (sd.capacity == 0) return;
      Shard& sh = repo.shards_[s];
      std::scoped_lock lock(sh.mu);
      // Size from `used`, not the stored capacity: the saving repo may
      // have reserve_for()d far past its final population, and zeroing
      // those empty slots would dominate the whole mmap attach. Linear
      // probing gives the same hits at any capacity; interning past the
      // snapshot grows the table as usual.
      std::size_t cap = 64;
      while (sd.used * 4 >= cap * 3) cap *= 2;
      IndexTable* t = repo.shard_rebuild(sh, cap);
      for (std::uint64_t i = 0; i < sd.used; ++i) {
        std::uint64_t hash, id;
        std::memcpy(&hash, sd.pairs + 16 * i, 8);
        std::memcpy(&id, sd.pairs + 16 * i + 8, 8);
        if (id >= p.next_id) fail("index entry id out of range");
        std::size_t slot = hash & t->mask;
        while (t->slots[slot].id.load(std::memory_order_relaxed) !=
               kInvalidView)
          slot = (slot + 1) & t->mask;
        t->slots[slot].hash.store(hash, std::memory_order_relaxed);
        t->slots[slot].id.store(static_cast<ViewId>(id),
                                std::memory_order_relaxed);
      }
      sh.used = static_cast<std::size_t>(sd.used);
    };
    if (pool != nullptr && pool->size() > 1) {
      pool->parallel_for(0, ViewRepo::kShards, 1,
                         [&](std::size_t b, std::size_t e, std::size_t) {
                           for (std::size_t s = b; s < e; ++s) rebuild(s);
                         });
    } else {
      for (std::size_t s = 0; s < ViewRepo::kShards; ++s) rebuild(s);
    }
  }

  static void load_ranks(const BlobReader& r, const Parsed& p,
                         ViewRepo& repo) {
    BlobCursor cur(r, p.off_ranks);
    std::uint64_t depths = cur.u64();
    if (depths > std::uint64_t{1} << 32) fail("rank depth count corrupt");
    repo.ranked_by_depth_.resize(static_cast<std::size_t>(depths));
    for (std::vector<ViewId>& ranked : repo.ranked_by_depth_) {
      std::uint64_t count = cur.u64();
      if (count > p.next_id) fail("ranked id count corrupt");
      ranked.resize(static_cast<std::size_t>(count));
      std::memcpy(ranked.data(), cur.bytes(4 * count), 4 * count);
      for (ViewId id : ranked)
        if (id < 0 || static_cast<std::size_t>(id) >= p.next_id)
          fail("ranked id out of range");
    }
  }

  static void load_stats(const BlobReader& r, const Parsed& p,
                         ViewRepo& repo) {
    BlobCursor cur(r, p.off_stats);
    std::uint64_t entries = cur.u64();
    if (entries > p.next_id) fail("stats entry count corrupt");
    if (entries == 0) return;
    repo.count_memo_.resize(p.next_id);
    for (std::uint64_t i = 0; i < entries; ++i) {
      std::uint64_t id = cur.u64();
      if (id >= p.next_id) fail("stats entry id out of range");
      ViewRepo::CountEntry& e = repo.count_memo_[static_cast<std::size_t>(id)];
      e.records = cur.u64();
      e.edges = cur.u64();
    }
  }

  static std::vector<SweepAnchor> load_anchors(const BlobReader& r,
                                               const Parsed& p) {
    BlobCursor cur(r, p.off_anchors);
    std::uint64_t count = cur.u64();
    if (count > 1 << 20) fail("anchor count corrupt");
    std::vector<SweepAnchor> anchors(static_cast<std::size_t>(count));
    for (SweepAnchor& a : anchors) {
      a.fingerprint = cur.u64();
      std::uint64_t n = cur.u64();
      std::uint64_t depths = cur.u64();
      std::uint64_t classes = cur.u64();
      if (n > std::uint64_t{1} << 31 || depths == 0 ||
          depths > std::uint64_t{1} << 31 || classes > n ||
          classes > p.next_id)
        fail("anchor shape corrupt");
      a.class_counts.resize(static_cast<std::size_t>(depths));
      const void* counts = cur.bytes(8 * depths);
      static_assert(sizeof(std::size_t) == 8);
      std::memcpy(a.class_counts.data(), counts, 8 * depths);
      if (a.class_counts.back() != classes)
        fail("anchor class count corrupt");
      a.class_ids.resize(static_cast<std::size_t>(classes));
      std::memcpy(a.class_ids.data(), cur.bytes(4 * classes), 4 * classes);
      for (ViewId id : a.class_ids)
        if (id < 0 || static_cast<std::size_t>(id) >= p.next_id)
          fail("anchor class id out of range");
      a.class_of.resize(static_cast<std::size_t>(n));
      std::memcpy(a.class_of.data(), cur.bytes(4 * n), 4 * n);
      for (std::uint32_t c : a.class_of)
        if (c >= classes) fail("anchor class map out of range");
    }
    return anchors;
  }

  static LoadedSnapshot load(const std::string& path, LoadMode mode,
                             util::ThreadPool* pool) {
    LoadedSnapshot out;
    out.repo = std::make_unique<ViewRepo>();
    if (mode == LoadMode::Copy) {
      std::vector<unsigned char> buf = read_file(path);
      BlobReader r(buf.data(), buf.size());
      Parsed p = parse_header(r, /*verify_body=*/true);
      load_records_copy(r, p, *out.repo);
      load_index(r, p, *out.repo, pool);
      load_ranks(r, p, *out.repo);
      load_stats(r, p, *out.repo);
      out.anchors = load_anchors(r, p);
      out.repo->record_count_.store(p.record_count,
                                    std::memory_order_relaxed);
      return out;
    }

    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) fail("cannot open '" + path + "'");
    struct stat st = {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      fail("cannot stat '" + path + "'");
    }
    std::size_t size = static_cast<std::size_t>(st.st_size);
    if (size < kHeaderBytes) {
      ::close(fd);
      fail("file truncated (no header)");
    }
    // MAP_PRIVATE + PROT_WRITE: pointer patching and later rank updates
    // dirty pages copy-on-write; the file is never written through.
    void* base = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_PRIVATE,
                        fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) fail("mmap of '" + path + "' failed");
    try {
      BlobReader r(base, size);
      // Mmap attach stays O(sections + shards + anchors): the header
      // checksum and section bounds are verified, the body checksum —
      // which would read every page — is Copy-mode (and inspect) only.
      Parsed p = parse_header(r, /*verify_body=*/false);
      load_records_mmap(r, p, *out.repo,
                        static_cast<unsigned char*>(base));
      load_index(r, p, *out.repo, pool);
      load_ranks(r, p, *out.repo);
      load_stats(r, p, *out.repo);
      out.anchors = load_anchors(r, p);
      out.repo->record_count_.store(p.record_count,
                                    std::memory_order_relaxed);
      out.repo->mmap_base_ = base;
      out.repo->mmap_len_ = size;
    } catch (...) {
      // Detach any segment already aimed into the mapping so the repo
      // destructor neither delete[]s mapped memory nor double-unmaps.
      for (std::size_t k = 0; k < ViewRepo::kNumSegments; ++k) {
        if (out.repo->mapped_segments_ & (std::uint32_t{1} << k))
          out.repo->segments_[k].store(nullptr, std::memory_order_relaxed);
      }
      out.repo->mapped_segments_ = 0;
      out.repo->next_id_.store(0, std::memory_order_relaxed);
      ::munmap(base, size);
      throw;
    }
    return out;
  }

  // ---------------------------------------------------------- inspect

  static SnapshotInfo inspect(const std::string& path) {
    std::vector<unsigned char> buf = read_file(path);
    BlobReader r(buf.data(), buf.size());
    Parsed p = parse_header(r, /*verify_body=*/true);
    SnapshotInfo info;
    info.file_bytes = buf.size();
    info.format_version = p.version;
    info.high_water = p.next_id;
    info.records = p.record_count;
    info.child_refs = p.child_refs;

    const auto* disk = static_cast<const unsigned char*>(
        r.bytes_at(p.off_records, 32 * p.next_id));
    for (std::size_t id = 0; id < p.next_id; ++id) {
      RecordDisk d;
      std::memcpy(&d, disk + 32 * id, 32);
      // Arena id gaps are default records; a true degree-0 leaf is
      // indistinguishable and counted as a gap (no refinement workload
      // produces one — degree-0 graphs are rejected upstream).
      if (d.degree == 0 && d.depth == 0 && d.child_count == 0 &&
          d.rank == kUnranked)
        continue;
      std::size_t depth = static_cast<std::size_t>(d.depth);
      if (info.records_per_depth.size() <= depth)
        info.records_per_depth.resize(depth + 1);
      ++info.records_per_depth[depth];
    }

    BlobCursor ranks(r, p.off_ranks);
    std::uint64_t depths = ranks.u64();
    if (depths > std::uint64_t{1} << 32) fail("rank depth count corrupt");
    info.ranked_per_depth.resize(static_cast<std::size_t>(depths));
    for (std::uint64_t d = 0; d < depths; ++d) {
      std::uint64_t count = ranks.u64();
      if (count > p.next_id) fail("ranked id count corrupt");
      info.ranked_per_depth[static_cast<std::size_t>(d)] = count;
      (void)ranks.bytes(4 * count);
    }

    BlobCursor stats(r, p.off_stats);
    info.stats_entries = stats.u64();

    for (const SweepAnchor& a : load_anchors(r, p)) {
      SnapshotInfo::AnchorInfo ai;
      ai.fingerprint = a.fingerprint;
      ai.n = a.class_of.size();
      ai.depth = a.depth();
      ai.classes = a.classes();
      ai.stabilized = a.stabilized();
      info.anchors.push_back(ai);
    }
    return info;
  }
};

// ------------------------------------------------------- public surface

std::uint64_t graph_fingerprint(const portgraph::PortGraph& g) {
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= v;
    h *= UINT64_C(0x100000001b3);
    return h ^ (h >> 29);
  };
  std::size_t n = static_cast<std::size_t>(g.n());
  std::uint64_t h = UINT64_C(0xcbf29ce484222325);
  h = mix(h, n);
  // Deliberately NOT g.m(): counting edges walks every adjacency row —
  // an O(n + m) pointer chase that costs more than the whole mmap attach
  // on million-node graphs. The sampled rows below cover edge structure.
  // One strided row sample carries the whole structural signal: for each
  // sampled node its position, degree and full adjacency row (neighbor
  // and reverse port per edge) are mixed in. Degree and adjacency share
  // the sample — and therefore the cache misses — because this guard is
  // paid twice per warm start (anchor lookup and the in-profile check)
  // and must stay far below the mmap attach it protects. Every row is
  // sampled for n <= 4096; ~4096 strided rows above. Four independent
  // mixing lanes, folded at the end, keep the scan memory-bound instead
  // of multiply-latency-bound.
  std::size_t stride = n <= 4096 ? 1 : n / 4096;
  std::uint64_t lane[4] = {h, mix(h, 1), mix(h, 2), mix(h, 3)};
  std::size_t k = 0;
  for (std::size_t v = 0; v < n; v += stride, k = (k + 1) & 3) {
    const auto& row = g.neighbors(static_cast<portgraph::NodeId>(v));
    std::uint64_t lh = mix(lane[k], v);
    lh = mix(lh, row.size());
    for (const portgraph::HalfEdge& e : row) {
      lh = mix(lh, static_cast<std::uint64_t>(e.neighbor));
      lh = mix(lh, static_cast<std::uint64_t>(e.rev_port));
    }
    lane[k] = lh;
  }
  for (std::uint64_t l : lane) h = mix(h, l);
  return h;
}

void SweepAnchor::expand_level(std::vector<ViewId>& level) const {
  level.resize(class_of.size());
  for (std::size_t v = 0; v < class_of.size(); ++v)
    level[v] = class_ids[class_of[v]];
}

SweepAnchor make_anchor(const portgraph::PortGraph& g,
                        const std::vector<ViewId>& last_level,
                        std::vector<std::size_t> class_counts) {
  ANOLE_CHECK_MSG(last_level.size() == static_cast<std::size_t>(g.n()),
                  "make_anchor: level size " << last_level.size()
                                             << " != n " << g.n());
  ANOLE_CHECK(!class_counts.empty());
  SweepAnchor a;
  a.fingerprint = graph_fingerprint(g);
  a.class_counts = std::move(class_counts);
  a.class_of.resize(last_level.size());
  // First-occurrence class numbering — the same numbering
  // Refiner::freeze_quotient produces, which is what lets resume_stable
  // rebuild the identical frozen quotient (DESIGN.md §13).
  std::unordered_map<ViewId, std::uint32_t> index;
  index.reserve(a.class_counts.back() * 2);
  for (std::size_t v = 0; v < last_level.size(); ++v) {
    auto [it, fresh] = index.try_emplace(
        last_level[v], static_cast<std::uint32_t>(a.class_ids.size()));
    if (fresh) a.class_ids.push_back(last_level[v]);
    a.class_of[v] = it->second;
  }
  ANOLE_CHECK_MSG(a.class_ids.size() == a.class_counts.back(),
                  "make_anchor: level has " << a.class_ids.size()
                                            << " classes, counts say "
                                            << a.class_counts.back());
  return a;
}

void save_snapshot(const std::string& path, const ViewRepo& repo,
                   std::span<const SweepAnchor> anchors) {
  SnapshotAccess::save(repo, path, anchors);
}

LoadedSnapshot load_snapshot(const std::string& path, LoadMode mode,
                             util::ThreadPool* pool) {
  return SnapshotAccess::load(path, mode, pool);
}

SnapshotInfo inspect_snapshot(const std::string& path) {
  return SnapshotAccess::inspect(path);
}

void ViewRepo::save(const std::string& path) const {
  SnapshotAccess::save(*this, path, {});
}

std::unique_ptr<ViewRepo> ViewRepo::load(const std::string& path,
                                         LoadMode mode) {
  return SnapshotAccess::load(path, mode, nullptr).repo;
}

}  // namespace anole::views
