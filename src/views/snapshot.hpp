#pragma once
// Persistent ViewRepo snapshots (DESIGN.md §13).
//
// A snapshot is one flat, relocatable, versioned blob holding everything a
// ViewRepo owns — records, the child pool, the sharded intern index,
// per-depth canonical ranks, memoized DagStats — plus zero or more *sweep
// anchors*: the frozen partition of a stabilized (or mid-flight)
// refinement sweep, enough for views::Refiner / compute_profile to resume
// from the deepest stored level with ids, ranks, compare verdicts and all
// metric bits byte-identical to a cold run.
//
// The on-disk record is bit-compatible with the in-memory one except for
// its first 8 bytes, which hold a child-pool *offset* instead of a
// pointer — that single field is what makes the blob relocatable, and
// patching it back to a pointer is the only write LoadMode::Mmap performs
// on record pages (copy-on-write; the child pool itself stays clean and
// page-shared across processes).

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "portgraph/port_graph.hpp"
#include "util/thread_pool.hpp"
#include "views/view_repo.hpp"

namespace anole::views {

/// Order-insensitive-enough structural fingerprint of a port graph: n,
/// and the position, degree and full adjacency content (neighbor and
/// reverse port per edge) of a deterministic row sample — every row for
/// n <= 4096, ~4096 strided rows above. Guards warm starts against
/// attaching an anchor to the wrong graph; it is a mistake detector, not
/// a cryptographic commitment. Sub-O(n) on large graphs so the guard —
/// paid twice per warm start — stays far below the cost of the mmap
/// attach it protects.
[[nodiscard]] std::uint64_t graph_fingerprint(const portgraph::PortGraph& g);

/// The resume point of one refinement sweep over one graph: the class
/// partition of the deepest computed level, in first-occurrence node
/// order (the same numbering Refiner::freeze_quotient produces), plus the
/// per-depth class counts that led there. `class_of[v]` is v's class,
/// `class_ids[c]` the interned view of class c at the deepest level, so
/// the level vector itself is reproducible as class_ids[class_of[v]] and
/// is not stored node-by-node.
struct SweepAnchor {
  std::uint64_t fingerprint = 0;
  std::vector<std::size_t> class_counts;  ///< classes at depth 0..depth()
  std::vector<ViewId> class_ids;          ///< first-occurrence order
  std::vector<std::uint32_t> class_of;    ///< node -> class, n entries

  [[nodiscard]] int depth() const {
    return static_cast<int>(class_counts.size()) - 1;
  }
  [[nodiscard]] std::size_t classes() const { return class_ids.size(); }
  /// True when the partition had fixed (two equal trailing counts) — the
  /// precondition for the quotient-resume fast path.
  [[nodiscard]] bool stabilized() const {
    std::size_t d = class_counts.size();
    return d >= 2 && class_counts[d - 1] == class_counts[d - 2];
  }
  /// Materializes the deepest level: level[v] = class_ids[class_of[v]].
  void expand_level(std::vector<ViewId>& level) const;
};

/// Builds the anchor of a finished keep_history=false profile sweep
/// (profile.last_level() must be the deepest level over `g`).
[[nodiscard]] SweepAnchor make_anchor(const portgraph::PortGraph& g,
                                      const std::vector<ViewId>& last_level,
                                      std::vector<std::size_t> class_counts);

/// Writes repo + anchors to `path`. The repo must be quiescent (no
/// concurrent interning or rank assignment). Throws coding::BlobError on
/// I/O failure.
void save_snapshot(const std::string& path, const ViewRepo& repo,
                   std::span<const SweepAnchor> anchors);

struct LoadedSnapshot {
  std::unique_ptr<ViewRepo> repo;
  std::vector<SweepAnchor> anchors;

  /// The stored anchor matching a graph fingerprint, or nullptr.
  [[nodiscard]] const SweepAnchor* anchor_for(std::uint64_t fp) const {
    for (const SweepAnchor& a : anchors)
      if (a.fingerprint == fp) return &a;
    return nullptr;
  }
};

/// Loads a snapshot. Copy mode verifies the full body checksum and owns
/// heap segments; Mmap mode verifies the header checksum and section
/// bounds, maps the file MAP_PRIVATE, aims fully-covered segments into
/// the mapping (patching child pointers copy-on-write) and heap-copies
/// only the partial top segment — attach cost scales with the mapping,
/// not the record count. Interning into an Mmap repo allocates fresh heap
/// segments past the stored high-water mark (promotion), so warm-start
/// extension works unchanged. `pool`, when given, rebuilds the intern
/// index shard-by-shard in parallel. Throws coding::BlobError on
/// truncated, corrupt or version-mismatched files.
[[nodiscard]] LoadedSnapshot load_snapshot(const std::string& path,
                                           LoadMode mode,
                                           util::ThreadPool* pool = nullptr);

/// Everything anole_inspect prints about a snapshot, computed from the
/// blob alone — no repo is built and nothing is recomputed. Verifies the
/// full body checksum.
struct SnapshotInfo {
  std::uint64_t file_bytes = 0;
  std::uint64_t format_version = 0;
  std::uint64_t high_water = 0;  ///< id space, arena gaps included
  std::uint64_t records = 0;     ///< live records (gaps excluded)
  std::uint64_t child_refs = 0;
  std::uint64_t stats_entries = 0;  ///< memoized DagStats entries
  std::vector<std::uint64_t> records_per_depth;
  std::vector<std::uint64_t> ranked_per_depth;
  struct AnchorInfo {
    std::uint64_t fingerprint = 0;
    std::uint64_t n = 0;
    int depth = 0;
    std::uint64_t classes = 0;
    bool stabilized = false;
  };
  std::vector<AnchorInfo> anchors;
};

[[nodiscard]] SnapshotInfo inspect_snapshot(const std::string& path);

}  // namespace anole::views
