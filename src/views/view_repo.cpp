#include "views/view_repo.hpp"

#include <sys/mman.h>

#include <algorithm>
#include <bit>
#include <limits>
#include <thread>

#include "coding/codec.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "views/sig_hash.hpp"

namespace anole::views {
namespace {

/// Packs two 32-bit payloads into one memo key.
std::uint64_t pack_key(std::uint32_t hi, std::uint32_t lo) {
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

// Initial slot count of one shard's interning table (power of two). Shards
// allocate their table on first insert, so small repos touch few shards.
constexpr std::size_t kShardInitialCapacity = 64;

// Ids claimed per InternArena block refill: large enough that parallel
// workers rarely touch the shared counter, small enough that the id gap an
// abandoned arena leaves is negligible.
constexpr ViewId kArenaIdBlock = 128;

// ChildRefs per child-storage chunk (64 KiB chunks).
constexpr std::size_t kChildChunkRefs = 8192;

// Retries of a rank seqlock read before giving up on the fast path.
constexpr int kRankReadAttempts = 4;

}  // namespace

namespace {

/// Open-addressing dedup over raw ids, shared by distinct_ids and
/// count_distinct_ids: inserts every id of `ids` into `table` (resized to
/// a power of two >= 2n and cleared), calling on_fresh(id) for each first
/// occurrence. Ids are dense small ints, so spread them before masking.
template <typename OnFresh>
void dedup_ids(std::span<const ViewId> ids, std::vector<ViewId>& table,
               const OnFresh& on_fresh) {
  std::size_t cap = 16;
  while (cap < 2 * ids.size()) cap *= 2;
  table.assign(cap, kInvalidView);
  std::size_t mask = cap - 1;
  for (ViewId id : ids) {
    std::size_t i =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id)) *
         0x9e3779b97f4a7c15ULL >>
         32) &
        mask;
    for (;;) {
      if (table[i] == id) break;
      if (table[i] == kInvalidView) {
        table[i] = id;
        on_fresh(id);
        break;
      }
      i = (i + 1) & mask;
    }
  }
}

}  // namespace

std::vector<ViewId> distinct_ids(std::span<const ViewId> ids) {
  // Hash-dedup before sorting: levels usually have far fewer distinct ids
  // than entries (the refinement class count), so collecting the C values
  // in O(n) expected and sorting only those beats sorting all n.
  std::vector<ViewId> table;
  std::vector<ViewId> out;
  out.reserve(ids.size());  // one allocation; only C slots ever touched
  dedup_ids(ids, table, [&out](ViewId id) { out.push_back(id); });
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t count_distinct_ids(std::span<const ViewId> ids,
                               std::vector<ViewId>& table) {
  std::size_t count = 0;
  dedup_ids(ids, table, [&count](ViewId) { ++count; });
  return count;
}

// The order-safe hash of views/sig_hash.hpp: every entry contributes an
// independent position-salted term, so the AoS reference below, the SoA
// overload, and the refiner's column-batched kernels all compute the
// same value for the same signature — one index, many layouts.
std::uint64_t ViewRepo::signature_hash(int degree, int depth,
                                       std::span<const ChildRef> children) {
  std::uint64_t acc = sig_hash::sig_seed(static_cast<std::uint64_t>(degree),
                                         static_cast<std::uint64_t>(depth));
  for (std::size_t p = 0; p < children.size(); ++p)
    acc += sig_hash::entry_value(
        sig_hash::entry_premix(
            p, static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(children[p].first))),
        static_cast<std::uint32_t>(children[p].second));
  return sig_hash::finalize(acc);
}

std::uint64_t ViewRepo::signature_hash(int degree, int depth,
                                       std::span<const portgraph::Port> rev_ports,
                                       std::span<const ViewId> kids) {
  ANOLE_DCHECK(rev_ports.size() == kids.size());
  std::uint64_t acc = sig_hash::sig_seed(static_cast<std::uint64_t>(degree),
                                         static_cast<std::uint64_t>(depth));
  for (std::size_t p = 0; p < kids.size(); ++p)
    acc += sig_hash::entry_value(
        sig_hash::entry_premix(
            p, static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(rev_ports[p]))),
        static_cast<std::uint32_t>(kids[p]));
  return sig_hash::finalize(acc);
}

namespace {

/// Signature layout adapters for the templated interning core: the same
/// probe/compare/copy code runs over an AoS child span or a pair of SoA
/// columns, resolved at compile time (no per-entry virtual dispatch in
/// the hottest loops of the repo).
struct AosSig {
  std::span<const ChildRef> kids;
  [[nodiscard]] std::size_t size() const { return kids.size(); }
  [[nodiscard]] portgraph::Port port(std::size_t i) const {
    return kids[i].first;
  }
  [[nodiscard]] ViewId child(std::size_t i) const { return kids[i].second; }
  [[nodiscard]] bool equals(const ChildRef* stored) const {
    return std::equal(kids.begin(), kids.end(), stored);
  }
  void copy_to(ChildRef* storage) const {
    std::copy(kids.begin(), kids.end(), storage);
  }
};

struct SoaSig {
  const portgraph::Port* ports;
  const ViewId* kids;
  std::size_t count;
  [[nodiscard]] std::size_t size() const { return count; }
  [[nodiscard]] portgraph::Port port(std::size_t i) const { return ports[i]; }
  [[nodiscard]] ViewId child(std::size_t i) const { return kids[i]; }
  [[nodiscard]] bool equals(const ChildRef* stored) const {
    for (std::size_t i = 0; i < count; ++i)
      if (stored[i].first != ports[i] || stored[i].second != kids[i])
        return false;
    return true;
  }
  void copy_to(ChildRef* storage) const {
    for (std::size_t i = 0; i < count; ++i)
      storage[i] = ChildRef{ports[i], kids[i]};
  }
};

}  // namespace

ViewRepo::ViewRepo() = default;

ViewRepo::~ViewRepo() {
  // Segments aimed into a snapshot mapping (LoadMode::Mmap) are owned by
  // the mapping, not the heap.
  for (std::size_t k = 0; k < kNumSegments; ++k) {
    if ((mapped_segments_ & (std::uint32_t{1} << k)) == 0)
      delete[] segments_[k].load(std::memory_order_relaxed);
  }
  if (mmap_base_ != nullptr) ::munmap(mmap_base_, mmap_len_);
}

// ------------------------------------------------------------ records

void ViewRepo::ensure_segments(std::size_t hi) {
  ANOLE_CHECK_MSG(hi <= seg_first(kNumSegments), "view id space exhausted");
  for (std::size_t k = 0; k < kNumSegments && seg_first(k) < hi; ++k) {
    if (segments_[k].load(std::memory_order_acquire) != nullptr) continue;
    std::scoped_lock lock(seg_mu_);
    if (segments_[k].load(std::memory_order_relaxed) == nullptr)
      segments_[k].store(new Record[kSegBase << k],
                         std::memory_order_release);
  }
}

template <typename Sig>
void ViewRepo::write_record(ViewId id, int degree, int depth, const Sig& sig,
                            ChildRef* storage) {
  sig.copy_to(storage);
  Record& r = mutable_rec(id);
  r.kids = storage;
  r.degree = degree;
  r.depth = depth;
  r.child_count = static_cast<std::int32_t>(sig.size());
  // Max over the reachable DAG composes record-by-record: children are
  // already interned (and published to this thread), so their DAG maxima
  // are final.
  r.sub_max_degree = degree;
  r.sub_max_port = 0;
  for (std::size_t i = 0; i < sig.size(); ++i) {
    const Record& c = rec(sig.child(i));
    r.sub_max_degree = std::max(r.sub_max_degree, c.sub_max_degree);
    r.sub_max_port =
        std::max({r.sub_max_port, static_cast<std::int32_t>(sig.port(i)),
                  c.sub_max_port});
  }
  // An unwound duplicate can hand this slot out again: reset the rank.
  r.rank.store(kUnranked, std::memory_order_relaxed);
}

ViewId ViewRepo::arena_claim_id(InternArena& arena) {
  if (arena.next_id_ == arena.id_end_) {
    ViewId start = next_id_.fetch_add(kArenaIdBlock,
                                      std::memory_order_relaxed);
    ANOLE_CHECK_MSG(
        start <= std::numeric_limits<ViewId>::max() - kArenaIdBlock,
        "view id space exhausted");
    ensure_segments(static_cast<std::size_t>(start) + kArenaIdBlock);
    arena.next_id_ = start;
    arena.id_end_ = start + kArenaIdBlock;
  }
  return arena.next_id_++;
}

ChildRef* ViewRepo::arena_claim_children(InternArena& arena,
                                         std::size_t count) {
  if (count == 0) return nullptr;
  if (arena.child_left_ < count) {
    std::size_t chunk = std::max(kChildChunkRefs, count);
    std::scoped_lock lock(chunk_mu_);
    child_chunks_.push_back(std::make_unique<ChildRef[]>(chunk));
    arena.child_next_ = child_chunks_.back().get();
    arena.child_left_ = chunk;
  }
  ChildRef* out = arena.child_next_;
  arena.child_next_ += count;
  arena.child_left_ -= count;
  return out;
}

ChildRef* ViewRepo::shared_claim_children(std::size_t count) {
  if (count == 0) return nullptr;
  std::scoped_lock lock(chunk_mu_);
  if (shared_child_left_ < count) {
    std::size_t chunk = std::max(kChildChunkRefs, count);
    child_chunks_.push_back(std::make_unique<ChildRef[]>(chunk));
    shared_child_next_ = child_chunks_.back().get();
    shared_child_left_ = chunk;
  }
  ChildRef* out = shared_child_next_;
  shared_child_next_ += count;
  shared_child_left_ -= count;
  return out;
}

// ------------------------------------------------------ sharded index

template <typename Sig>
ViewId ViewRepo::probe_table(const IndexTable& t, std::uint64_t hash,
                             int degree, int depth, const Sig& sig) const {
  // Inserts keep every table under 3/4 full, and retired tables receive no
  // new entries, so the probe always terminates at an empty slot.
  for (std::size_t i = hash & t.mask;; i = (i + 1) & t.mask) {
    const IndexSlot& slot = t.slots[i];
    ViewId id = slot.id.load(std::memory_order_acquire);
    if (id == kInvalidView) return kInvalidView;
    // The acquire on the id makes the hash (stored before the publish) and
    // the whole record visible.
    if (slot.hash.load(std::memory_order_relaxed) == hash &&
        record_equals(id, degree, depth, sig))
      return id;
  }
}

template <typename Sig>
bool ViewRepo::record_equals(ViewId id, int degree, int depth,
                             const Sig& sig) const {
  const Record& r = rec(id);
  if (r.degree != degree || r.depth != depth ||
      static_cast<std::size_t>(r.child_count) != sig.size())
    return false;
  return sig.equals(r.kids);
}

ViewRepo::IndexTable* ViewRepo::shard_rebuild(Shard& sh,
                                              std::size_t capacity) {
  auto fresh = std::make_unique<IndexTable>(capacity);
  if (const IndexTable* old = sh.table.load(std::memory_order_relaxed)) {
    for (const IndexSlot& slot : old->slots) {
      ViewId id = slot.id.load(std::memory_order_relaxed);
      if (id == kInvalidView) continue;
      std::uint64_t h = slot.hash.load(std::memory_order_relaxed);
      std::size_t i = h & fresh->mask;
      while (fresh->slots[i].id.load(std::memory_order_relaxed) !=
             kInvalidView)
        i = (i + 1) & fresh->mask;
      fresh->slots[i].hash.store(h, std::memory_order_relaxed);
      fresh->slots[i].id.store(id, std::memory_order_relaxed);
    }
  }
  IndexTable* out = fresh.get();
  // Old tables are retired, not freed: a concurrent lock-free reader may
  // still probe one. A stale table yields at worst a miss, which the
  // insert path re-checks under the shard mutex. Geometric growth bounds
  // the retired memory by about the live table's size.
  sh.tables.push_back(std::move(fresh));
  sh.table.store(out, std::memory_order_release);
  return out;
}

// --------------------------------------------------------- interning

ViewId ViewRepo::leaf(int degree) {
  ANOLE_CHECK(degree >= 0);
  return intern_impl(degree, 0, {}, nullptr);
}

ViewId ViewRepo::intern(std::span<const ChildRef> children) {
  return intern_impl(-1, -1, children, nullptr);
}

ViewId ViewRepo::intern(std::span<const ChildRef> children,
                        InternArena& arena) {
  ANOLE_DCHECK(arena.repo_ == this);
  return intern_impl(-1, -1, children, &arena);
}

ViewId ViewRepo::intern_impl(int degree, int depth,
                             std::span<const ChildRef> children,
                             InternArena* arena) {
  if (depth < 0) {  // inner-view entry points: derive and validate
    ANOLE_CHECK_MSG(!children.empty(), "intern of a degree-0 inner view");
    int child_depth = this->depth(children.front().second);
    for (const auto& [port, child] : children) {
      ANOLE_CHECK(port >= 0);
      ANOLE_CHECK_MSG(this->depth(child) == child_depth,
                      "children at mixed depths in intern()");
    }
    degree = static_cast<int>(children.size());
    depth = child_depth + 1;
  }
  return intern_hashed(degree, depth, children,
                       signature_hash(degree, depth, children), arena);
}

ViewId ViewRepo::intern_hashed(int degree, int depth,
                               std::span<const ChildRef> children,
                               std::uint64_t hash, InternArena* arena) {
  ANOLE_DCHECK(hash == signature_hash(degree, depth, children));
  return intern_hashed_impl(degree, depth, AosSig{children}, hash, arena);
}

ViewId ViewRepo::intern_hashed(int degree, int depth,
                               std::span<const portgraph::Port> rev_ports,
                               std::span<const ViewId> kids,
                               std::uint64_t hash, InternArena* arena) {
  ANOLE_DCHECK(rev_ports.size() == kids.size());
  ANOLE_DCHECK(hash == signature_hash(degree, depth, rev_ports, kids));
  return intern_hashed_impl(
      degree, depth, SoaSig{rev_ports.data(), kids.data(), kids.size()}, hash,
      arena);
}

template <typename Sig>
ViewId ViewRepo::intern_hashed_impl(int degree, int depth, const Sig& sig,
                                    std::uint64_t hash, InternArena* arena) {
  Shard& sh = shard_for(hash);

  // Hot path: lock-free probe of the shard's current table.
  if (const IndexTable* t = sh.table.load(std::memory_order_acquire)) {
    ViewId hit = probe_table(*t, hash, degree, depth, sig);
    if (hit != kInvalidView) return hit;
  }

  // Miss. With an arena, build the record speculatively OUTSIDE the shard
  // mutex (the expensive part: child copy + DAG maxima), then publish under
  // it; losing the publish race to an equal record unwinds the arena's
  // cursors so nothing is wasted. Without an arena, allocate inside the
  // lock — no speculation, so serial interning keeps the historical dense
  // sequential ids.
  ViewId speculative = kInvalidView;
  ViewId spec_prev_next = 0;
  ChildRef* spec_prev_child = nullptr;
  std::size_t spec_prev_left = 0;
  if (arena != nullptr) {
    spec_prev_child = arena->child_next_;
    spec_prev_left = arena->child_left_;
    speculative = arena_claim_id(*arena);
    spec_prev_next = speculative;
    ChildRef* storage = arena_claim_children(*arena, sig.size());
    write_record(speculative, degree, depth, sig, storage);
  }

  std::scoped_lock lock(sh.mu);
  IndexTable* t = sh.table.load(std::memory_order_relaxed);
  if (t == nullptr || (sh.used + 1) * 4 >= (t->mask + 1) * 3)
    t = shard_rebuild(
        sh, t == nullptr ? kShardInitialCapacity : (t->mask + 1) * 2);
  for (std::size_t i = hash & t->mask;; i = (i + 1) & t->mask) {
    IndexSlot& slot = t->slots[i];
    ViewId existing = slot.id.load(std::memory_order_relaxed);
    if (existing != kInvalidView) {
      if (slot.hash.load(std::memory_order_relaxed) == hash &&
          record_equals(existing, degree, depth, sig)) {
        // A racer interned it first: return its id and give the
        // speculative allocation back to the arena.
        if (arena != nullptr) {
          arena->next_id_ = spec_prev_next;
          if (arena->child_next_ ==
              spec_prev_child + sig.size()) {  // same chunk: rewind
            arena->child_next_ = spec_prev_child;
            arena->child_left_ = spec_prev_left;
          }
        }
        return existing;
      }
      continue;
    }
    ViewId id = speculative;
    if (id == kInvalidView) {
      id = next_id_.fetch_add(1, std::memory_order_relaxed);
      ANOLE_CHECK_MSG(id < std::numeric_limits<ViewId>::max(),
                      "view id space exhausted");
      ensure_segments(static_cast<std::size_t>(id) + 1);
      ChildRef* storage = shared_claim_children(sig.size());
      write_record(id, degree, depth, sig, storage);
    }
    slot.hash.store(hash, std::memory_order_relaxed);
    // The release publish: every field of the record (and its children)
    // is written before this store, so any thread that probes the id can
    // read the record without synchronization.
    slot.id.store(id, std::memory_order_release);
    ++sh.used;
    record_count_.fetch_add(1, std::memory_order_relaxed);
    return id;
  }
}

void ViewRepo::reserve_for(std::size_t n, std::size_t m, int depth_hint) {
  (void)m;  // records and child chunks are demand-allocated geometrically
  std::size_t depth =
      depth_hint > 0 ? static_cast<std::size_t>(depth_hint) : 0;
  // Pre-stabilization levels dominate: each can intern up to n fresh
  // records; the stable phase adds only C records per level — covered by a
  // small per-level tail. Spread the expectation across shards (hashing
  // balances them) and size each table for 3/4 load.
  std::size_t expect_fresh = n + 16 * depth + 64;
  std::size_t per_shard = expect_fresh / kShards + 16;
  for (Shard& sh : shards_) {
    std::scoped_lock lock(sh.mu);
    std::size_t want_used = sh.used + per_shard;
    std::size_t cap = kShardInitialCapacity;
    while (want_used * 4 >= cap * 3) cap *= 2;
    IndexTable* t = sh.table.load(std::memory_order_relaxed);
    std::size_t cur = t == nullptr ? 0 : t->mask + 1;
    // Grow toward the expectation; shrink a table left 4x over-sized by an
    // earlier too-optimistic reservation (the rebuild respects current
    // occupancy, so this is always safe).
    if (cap > cur || cap * 4 < cur) shard_rebuild(sh, cap);
  }
}

// ------------------------------------------------------------- ranks

bool ViewRepo::ranked_pair(const Record& a, const Record& b,
                           std::int32_t& ra, std::int32_t& rb) const {
  for (int attempt = 0; attempt < kRankReadAttempts; ++attempt) {
    std::uint64_t token = rank_epoch_.load(std::memory_order_acquire);
    if ((token & 1) != 0) continue;  // renumber in flight
    std::int32_t x = a.rank.load(std::memory_order_relaxed);
    std::int32_t y = b.rank.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (rank_epoch_.load(std::memory_order_relaxed) != token) continue;
    if (x == kUnranked || y == kUnranked) return false;
    ra = x;
    rb = y;
    return true;
  }
  return false;
}

std::uint64_t ViewRepo::rank_snapshot() const {
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::uint64_t token = rank_epoch_.load(std::memory_order_acquire);
    if ((token & 1) == 0) return token;
    std::this_thread::yield();
  }
  return rank_epoch_.load(std::memory_order_acquire);
}

bool ViewRepo::rank_snapshot_valid(std::uint64_t token) const {
  std::atomic_thread_fence(std::memory_order_acquire);
  return (token & 1) == 0 &&
         rank_epoch_.load(std::memory_order_relaxed) == token;
}

std::strong_ordering ViewRepo::compare(ViewId a, ViewId b) const {
  if (a == b) return std::strong_ordering::equal;
  const Record& fa = rec(a);
  const Record& fb = rec(b);
  ANOLE_CHECK_MSG(fa.depth == fb.depth, "comparing views of unequal depth");
  // Ranked fast path: rank order reproduces the structural order exactly
  // (DESIGN.md §8), and distinct ranked ids of one depth never share a
  // rank — one integer comparison, no memo traffic. The seqlock read
  // shields against a concurrent renumber; on any doubt the structural
  // walk (always correct) decides.
  std::int32_t ra = kUnranked;
  std::int32_t rb = kUnranked;
  if (ranked_pair(fa, fb, ra, rb))
    return ra < rb ? std::strong_ordering::less
                   : std::strong_ordering::greater;
  return compare_structural(a, b);
}

std::strong_ordering ViewRepo::compare_structural(ViewId a, ViewId b) const {
  if (a == b) return std::strong_ordering::equal;
  ANOLE_CHECK_MSG(rec(a).depth == rec(b).depth,
                  "comparing views of unequal depth");
  // Verdicts are memoized under the normalized (smaller id, larger id) key;
  // the stored sign is relative to that orientation, so one entry serves
  // both compare(a, b) and the mirrored compare(b, a). The memo map is the
  // only shared-mutable state here — guarded by compare_mu_; the walk
  // itself touches immutable record structure.
  auto lookup = [this](ViewId x, ViewId y) -> std::int8_t {
    bool swapped = x > y;
    std::scoped_lock lock(compare_mu_);
    auto it = compare_memo_.find(swapped ? pack_key(static_cast<std::uint32_t>(y),
                                                    static_cast<std::uint32_t>(x))
                                         : pack_key(static_cast<std::uint32_t>(x),
                                                    static_cast<std::uint32_t>(y)));
    if (it == compare_memo_.end()) return 0;
    return swapped ? static_cast<std::int8_t>(-it->second) : it->second;
  };
  if (std::int8_t hit = lookup(a, b); hit != 0)
    return hit < 0 ? std::strong_ordering::less : std::strong_ordering::greater;

  // Iterative descent to the first structural difference. Lexicographic
  // order means that difference decides every frame on the path: each
  // parent was waiting on its first unequal child pair, so one verdict
  // resolves (and memoizes) the whole stack. Depth of the explicit stack
  // is bounded by the view depth — no call-stack recursion.
  struct Frame {
    ViewId a, b;
    std::uint32_t i = 0;  ///< next child index to examine
  };
  std::vector<Frame> stack{{a, b, 0}};
  for (;;) {
    Frame& f = stack.back();
    const Record& fa = rec(f.a);
    const Record& fb = rec(f.b);
    std::int8_t verdict = 0;
    if (fa.degree != fb.degree) {
      verdict = fa.degree < fb.degree ? -1 : +1;
    } else {
      std::span<const ChildRef> ca = children(f.a);
      std::span<const ChildRef> cb = children(f.b);
      bool descended = false;
      while (f.i < ca.size()) {
        const auto& [pa, xa] = ca[f.i];
        const auto& [pb, xb] = cb[f.i];
        if (pa != pb) {
          verdict = pa < pb ? -1 : +1;
          break;
        }
        if (xa != xb) {
          // A ranked child pair decides like a memo hit, O(1): the walk
          // only ever descends where some view is unranked (or a renumber
          // is in flight, in which case descending stays correct).
          std::int32_t rxa = kUnranked;
          std::int32_t rxb = kUnranked;
          if (ranked_pair(rec(xa), rec(xb), rxa, rxb)) {
            verdict = rxa < rxb ? -1 : +1;
            break;
          }
          if (std::int8_t hit = lookup(xa, xb); hit != 0) {
            verdict = hit;
            break;
          }
          ++f.i;  // before push_back: it invalidates the reference f
          stack.push_back(Frame{xa, xb, 0});
          descended = true;
          break;
        }
        ++f.i;
      }
      if (descended) continue;
    }
    // Hash-consing guarantees structurally equal views share an id, so two
    // distinct ids at equal depth must differ somewhere.
    ANOLE_CHECK_MSG(verdict != 0,
                    "distinct ids compared equal — interning broken");
    {
      std::scoped_lock lock(compare_mu_);
      for (const Frame& fr : stack) {
        ViewId x = fr.a;
        ViewId y = fr.b;
        std::int8_t sign = verdict;
        if (x > y) {
          std::swap(x, y);
          sign = static_cast<std::int8_t>(-sign);
        }
        compare_memo_.emplace(pack_key(static_cast<std::uint32_t>(x),
                                       static_cast<std::uint32_t>(y)),
                              sign);
      }
    }
    return verdict < 0 ? std::strong_ordering::less
                       : std::strong_ordering::greater;
  }
}

void ViewRepo::assign_ranks(std::span<const ViewId> level_distinct) {
  if (level_distinct.empty()) return;
  // rank_mu_ serializes rankers: inside it, rank values only change under
  // the seqlock bracket below, so the plain relaxed reads of this phase
  // are stable.
  std::scoped_lock lock(rank_mu_);
  const int d = rec(level_distinct.front()).depth;

  auto rank_of = [this](ViewId v) {
    return rec(v).rank.load(std::memory_order_relaxed);
  };

  // Fresh = unranked ids whose children are all ranked (depth 0 always
  // qualifies). An id with an unranked child cannot be keyed and stays on
  // the structural fallback — correctness never depends on being ranked.
  std::vector<ViewId> fresh;
  for (ViewId v : level_distinct) {
    const Record& r = rec(v);
    ANOLE_DCHECK(r.depth == d);
    if (rank_of(v) != kUnranked) continue;
    bool keyable = true;
    for (const auto& [port, child] : children(v)) {
      if (rank_of(child) == kUnranked) {
        keyable = false;
        break;
      }
    }
    if (keyable) fresh.push_back(v);
  }
  if (fresh.empty()) return;

  // Key order (degree, [(rev_port, rank(child))]...) == structural order,
  // by induction: child ranks order exactly as the children do (depth 0:
  // the key is the degree, which IS the structural order on leaves). Two
  // ranked ids shortcut to their ranks — needed when merging fresh ids
  // into a depth that was already ranked (a second refinement over this
  // repo, or a deeper sweep of another graph sharing it). Keys of distinct
  // ids never tie: equal keys would mean equal degree and identical
  // children (rank is injective per depth), i.e. the same record.
  auto key_less = [this, &rank_of](ViewId a, ViewId b) {
    std::int32_t ra = rank_of(a);
    std::int32_t rb = rank_of(b);
    if (ra != kUnranked && rb != kUnranked) return ra < rb;
    const Record& rra = rec(a);
    const Record& rrb = rec(b);
    if (rra.degree != rrb.degree) return rra.degree < rrb.degree;
    std::span<const ChildRef> ca = children(a);
    std::span<const ChildRef> cb = children(b);
    for (std::size_t i = 0; i < ca.size(); ++i) {
      if (ca[i].first != cb[i].first) return ca[i].first < cb[i].first;
      std::int32_t rka = rank_of(ca[i].second);
      std::int32_t rkb = rank_of(cb[i].second);
      if (rka != rkb) return rka < rkb;
    }
    return false;  // equal keys ⇒ same id; callers pass distinct ids
  };
  // The sort dominates refinement rounds whose class count approaches n
  // (random graphs), and key_less pays several dependent record loads per
  // comparison. Precompute a 64-bit prefix of each key — saturated degree,
  // first rev_port, first child rank, each strictly monotone in its field
  // — so almost every comparison resolves on one contiguous load;
  // saturated or equal prefixes (equal head, deeper difference) fall back
  // to the exact comparator, which re-checks from the start. Monotone
  // saturation keeps the prefix order a coarsening of the key order, so
  // the pair (prefix, key_less) sorts exactly like key_less alone.
  auto key_prefix = [this, &rank_of](ViewId v) {
    const Record& r = rec(v);
    std::uint64_t deg16 = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(r.degree), 0xffffu);
    std::uint64_t port16 = 0;
    std::uint64_t rank32 = 0;
    if (r.child_count > 0) {
      port16 = std::min<std::uint64_t>(
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(
              r.kids[0].first)),
          0xffffu);
      // +1 biases kUnranked (-1) to 0; fresh ids have ranked children, but
      // the bias keeps the mapping monotone regardless.
      rank32 = static_cast<std::uint64_t>(
          static_cast<std::uint32_t>(rank_of(r.kids[0].second) + 1));
    }
    return (deg16 << 48) | (port16 << 32) | rank32;
  };
  struct Keyed {
    std::uint64_t prefix;
    ViewId id;
  };
  std::vector<Keyed> keyed(fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i)
    keyed[i] = Keyed{key_prefix(fresh[i]), fresh[i]};
  std::sort(keyed.begin(), keyed.end(),
            [&key_less](const Keyed& a, const Keyed& b) {
              if (a.prefix != b.prefix) return a.prefix < b.prefix;
              return key_less(a.id, b.id);
            });
  for (std::size_t i = 0; i < fresh.size(); ++i) fresh[i] = keyed[i].id;

  if (ranked_by_depth_.size() <= static_cast<std::size_t>(d))
    ranked_by_depth_.resize(static_cast<std::size_t>(d) + 1);
  std::vector<ViewId>& ranked = ranked_by_depth_[static_cast<std::size_t>(d)];
  if (ranked.empty()) {
    ranked = std::move(fresh);
  } else {
    // Merging preserves the relative order of the already-ranked ids, so
    // re-numbering below shifts rank *values* without ever reordering —
    // deeper records keyed on the old values stay canonically sorted.
    std::vector<ViewId> merged(ranked.size() + fresh.size());
    std::merge(ranked.begin(), ranked.end(), fresh.begin(), fresh.end(),
               merged.begin(), key_less);
    ranked = std::move(merged);
  }
  // The renumber mutates ranks concurrent readers may be comparing:
  // bracket it with the seqlock so they either retry into a consistent
  // snapshot or fall back to the structural walk.
  rank_epoch_.fetch_add(1, std::memory_order_acq_rel);
  for (std::size_t i = 0; i < ranked.size(); ++i)
    mutable_rec(ranked[i]).rank.store(static_cast<std::int32_t>(i),
                                      std::memory_order_relaxed);
  rank_epoch_.fetch_add(1, std::memory_order_release);
}

// ---------------------------------------------------------- traversals

ViewId ViewRepo::truncate(ViewId v, int x) {
  {
    const Record& r = rec(v);
    ANOLE_CHECK_MSG(x >= 0 && x <= r.depth,
                    "truncate to depth " << x << " of a depth-" << r.depth
                                         << " view");
    if (x == r.depth) return v;
    if (x == 0) return leaf(r.degree);
  }
  // One mutex around the whole rebuild serializes concurrent truncators —
  // simple, and the memo makes repeat work cheap. The nested leaf/intern
  // calls take only shard/chunk locks, never truncate_mu_.
  std::scoped_lock lock(truncate_mu_);
  if (auto it = truncate_memo_.find(pack_key(static_cast<std::uint32_t>(v),
                                             static_cast<std::uint32_t>(x)));
      it != truncate_memo_.end())
    return it->second;

  // Iterative post-order worklist. A frame rebuilds one record at its
  // target depth; trivial child targets (own depth, zero) resolve inline,
  // memo hits resolve by lookup, everything else pushes a frame. Frames
  // hold their own child vectors so a frame's progress survives the
  // interning of its descendants.
  struct Frame {
    ViewId id;
    int target;
    std::vector<ChildRef> kids;  ///< rebuilt children; size() = progress
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{v, x, {}});
  for (;;) {
    Frame& f = stack.back();
    if (f.kids.size() == static_cast<std::size_t>(rec(f.id).child_count)) {
      ViewId out = intern(f.kids);
      truncate_memo_.emplace(pack_key(static_cast<std::uint32_t>(f.id),
                                      static_cast<std::uint32_t>(f.target)),
                             out);
      if (stack.size() == 1) return out;
      stack.pop_back();
      continue;  // the parent's next lookup hits the memo entry just added
    }
    const ChildRef c = children(f.id)[f.kids.size()];
    int target = f.target - 1;
    const Record& child = rec(c.second);
    if (target == child.depth) {
      f.kids.emplace_back(c.first, c.second);
      continue;
    }
    if (target == 0) {
      f.kids.emplace_back(c.first, leaf(child.degree));
      continue;
    }
    auto it = truncate_memo_.find(pack_key(static_cast<std::uint32_t>(c.second),
                                           static_cast<std::uint32_t>(target)));
    if (it != truncate_memo_.end()) {
      f.kids.emplace_back(c.first, it->second);
      continue;
    }
    stack.push_back(Frame{c.second, target, {}});
  }
}

void ViewRepo::begin_epoch() const {
  visit_mark_.resize(
      static_cast<std::size_t>(next_id_.load(std::memory_order_relaxed)), 0);
  if (++visit_epoch_ == 0) {  // wrapped: stale marks could alias, clear all
    std::fill(visit_mark_.begin(), visit_mark_.end(), 0u);
    visit_epoch_ = 1;
  }
}

bool ViewRepo::mark_visited(ViewId v) const {
  std::uint32_t& m = visit_mark_[static_cast<std::size_t>(v)];
  if (m == visit_epoch_) return false;
  m = visit_epoch_;
  return true;
}

DagStats ViewRepo::stats(ViewId v) const {
  const Record& root = rec(v);
  std::scoped_lock lock(stats_mu_);
  std::size_t high_water =
      static_cast<std::size_t>(next_id_.load(std::memory_order_relaxed));
  if (count_memo_.size() < high_water) count_memo_.resize(high_water);
  CountEntry& entry = count_memo_[static_cast<std::size_t>(v)];
  if (entry.records == 0) {
    // One iterative traversal per id, ever; the reusable epoch marker
    // replaces the per-call heap-allocated seen-map of the old path.
    begin_epoch();
    visit_stack_.clear();
    visit_stack_.push_back(v);
    (void)mark_visited(v);
    std::uint64_t records = 0;
    std::uint64_t edges = 0;
    while (!visit_stack_.empty()) {
      ViewId cur = visit_stack_.back();
      visit_stack_.pop_back();
      const Record& r = rec(cur);
      ++records;
      edges += static_cast<std::uint64_t>(r.child_count);
      for (const auto& [port, child] : children(cur))
        if (mark_visited(child)) visit_stack_.push_back(child);
    }
    entry.records = records;
    entry.edges = edges;
  }
  return DagStats{static_cast<std::size_t>(entry.records),
                  static_cast<std::size_t>(entry.edges),
                  static_cast<int>(root.sub_max_degree),
                  static_cast<int>(root.sub_max_port)};
}

std::size_t ViewRepo::serialized_size_bits(ViewId v) const {
  // Canonical wire format: record list in topological order; each record
  // stores its degree and, per child, the reverse port and the index of the
  // child record. All integers in fixed width sized for this DAG.
  DagStats s = stats(v);
  std::size_t deg_bits =
      util::bit_length(static_cast<std::uint64_t>(s.max_degree));
  std::size_t port_bits =
      util::bit_length(static_cast<std::uint64_t>(s.max_port));
  std::size_t ref_bits = util::bit_length(s.records);
  return 64  // header: record count + widths
         + s.records * deg_bits + s.edges * (port_bits + ref_bits);
}

const coding::BitString& ViewRepo::encode_depth1(ViewId v) {
  ANOLE_CHECK_MSG(depth(v) == 1, "encode_depth1 needs a depth-1 view");
  std::scoped_lock lock(depth1_mu_);
  auto it = depth1_code_memo_.find(v);
  if (it != depth1_code_memo_.end()) return it->second;
  std::vector<coding::BitString> triples;
  std::span<const ChildRef> kids = children(v);
  triples.reserve(kids.size());
  for (std::size_t j = 0; j < kids.size(); ++j) {
    const auto& [rev_port, child] = kids[j];
    triples.push_back(coding::concat(
        {coding::bin(j), coding::bin(static_cast<std::uint64_t>(rev_port)),
         coding::bin(static_cast<std::uint64_t>(degree(child)))}));
  }
  coding::BitString code = coding::concat(triples);
  auto [ins, ok] = depth1_code_memo_.emplace(v, std::move(code));
  return ins->second;
}

}  // namespace anole::views
