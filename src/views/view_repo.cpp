#include "views/view_repo.hpp"

#include <algorithm>

#include "coding/codec.hpp"
#include "util/math.hpp"

namespace anole::views {
namespace {

std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Packs two 32-bit payloads into one memo key.
std::uint64_t pack_key(std::uint32_t hi, std::uint32_t lo) {
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

// Initial capacity of the open-addressing interning index (power of two).
constexpr std::size_t kIndexInitialCapacity = 1024;

}  // namespace

namespace {

/// Open-addressing dedup over raw ids, shared by distinct_ids and
/// count_distinct_ids: inserts every id of `ids` into `table` (resized to
/// a power of two >= 2n and cleared), calling on_fresh(id) for each first
/// occurrence. Ids are dense small ints, so spread them before masking.
template <typename OnFresh>
void dedup_ids(std::span<const ViewId> ids, std::vector<ViewId>& table,
               const OnFresh& on_fresh) {
  std::size_t cap = 16;
  while (cap < 2 * ids.size()) cap *= 2;
  table.assign(cap, kInvalidView);
  std::size_t mask = cap - 1;
  for (ViewId id : ids) {
    std::size_t i =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id)) *
         0x9e3779b97f4a7c15ULL >>
         32) &
        mask;
    for (;;) {
      if (table[i] == id) break;
      if (table[i] == kInvalidView) {
        table[i] = id;
        on_fresh(id);
        break;
      }
      i = (i + 1) & mask;
    }
  }
}

}  // namespace

std::vector<ViewId> distinct_ids(std::span<const ViewId> ids) {
  // Hash-dedup before sorting: levels usually have far fewer distinct ids
  // than entries (the refinement class count), so collecting the C values
  // in O(n) expected and sorting only those beats sorting all n.
  std::vector<ViewId> table;
  std::vector<ViewId> out;
  out.reserve(ids.size());  // one allocation; only C slots ever touched
  dedup_ids(ids, table, [&out](ViewId id) { out.push_back(id); });
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t count_distinct_ids(std::span<const ViewId> ids,
                               std::vector<ViewId>& table) {
  std::size_t count = 0;
  dedup_ids(ids, table, [&count](ViewId) { ++count; });
  return count;
}

std::uint64_t ViewRepo::signature_hash(int degree, int depth,
                                       std::span<const ChildRef> children) {
  std::uint64_t h = hash_mix(static_cast<std::uint64_t>(degree),
                             static_cast<std::uint64_t>(depth));
  for (const auto& [port, child] : children) {
    h = hash_mix(h, static_cast<std::uint64_t>(port));
    h = hash_mix(h, static_cast<std::uint64_t>(child));
  }
  return h;
}

ViewId ViewRepo::leaf(int degree) {
  ANOLE_CHECK(degree >= 0);
  return intern_impl(degree, 0, {});
}

ViewId ViewRepo::intern(std::span<const ChildRef> children) {
  ANOLE_CHECK_MSG(!children.empty(), "intern of a degree-0 inner view");
  int child_depth = depth(children.front().second);
  for (const auto& [port, child] : children) {
    ANOLE_CHECK(port >= 0);
    ANOLE_CHECK_MSG(depth(child) == child_depth,
                    "children at mixed depths in intern()");
  }
  return intern_impl(static_cast<int>(children.size()), child_depth + 1,
                     children);
}

ViewId ViewRepo::intern_impl(int degree, int depth,
                             std::span<const ChildRef> children) {
  return intern_hashed(degree, depth, children,
                       signature_hash(degree, depth, children));
}

void ViewRepo::index_grow() {
  index_rebuild(index_.empty() ? kIndexInitialCapacity : index_.size() * 2);
}

void ViewRepo::index_rebuild(std::size_t capacity) {
  std::vector<IndexSlot> old = std::move(index_);
  index_.assign(capacity, IndexSlot{});
  std::size_t mask = index_.size() - 1;
  for (const IndexSlot& slot : old) {
    if (slot.id == kInvalidView) continue;
    std::size_t i = slot.hash & mask;
    while (index_[i].id != kInvalidView) i = (i + 1) & mask;
    index_[i] = slot;
  }
}

void ViewRepo::index_reserve(std::size_t expected_used) {
  std::size_t cap = index_.empty() ? kIndexInitialCapacity : index_.size();
  while (expected_used * 4 >= cap * 3) cap *= 2;
  if (cap > index_.size()) index_rebuild(cap);
}

void ViewRepo::reserve_for(std::size_t n, std::size_t m, int depth_hint) {
  std::size_t depth =
      depth_hint > 0 ? static_cast<std::size_t>(depth_hint) : 0;
  // Pre-stabilization levels dominate allocation: each can intern up to n
  // fresh records carrying up to 2m child refs in total; a handful of such
  // levels is the common shape before the partition fixes. The stable
  // phase then adds only C records (and C rep-degree child spans) per
  // level — covered by a small per-level tail.
  std::size_t expect_records = 2 * n + 16 * depth + 64;
  std::size_t expect_children = 4 * m + 32 * depth + 64;
  records_.reserve(records_.size() + expect_records);
  child_pool_.reserve(child_pool_.size() + expect_children);
  // The index rebuild zeroes its slots (the only up-front page touch
  // here), so size it for one full level of fresh records: even a
  // worst-case workload then pays at most a couple of doublings, while
  // symmetric workloads (tiny repos) don't zero megabytes for nothing.
  index_reserve(index_used_ + n + 16 * depth + 64);
}

ViewId ViewRepo::intern_hashed(int degree, int depth,
                               std::span<const ChildRef> children,
                               std::uint64_t hash) {
  ANOLE_DCHECK(hash == signature_hash(degree, depth, children));
  if (index_.empty()) index_grow();
  std::size_t mask = index_.size() - 1;
  std::size_t i = hash & mask;
  while (index_[i].id != kInvalidView) {
    if (index_[i].hash == hash) {
      const Record& r = records_[static_cast<std::size_t>(index_[i].id)];
      if (r.degree == degree && r.depth == depth &&
          r.child_count == children.size()) {
        std::span<const ChildRef> existing(child_pool_.data() + r.child_begin,
                                           r.child_count);
        if (std::equal(existing.begin(), existing.end(), children.begin()))
          return index_[i].id;
      }
    }
    i = (i + 1) & mask;
  }
  Record r;
  r.degree = degree;
  r.depth = depth;
  r.child_begin = static_cast<std::uint32_t>(child_pool_.size());
  r.child_count = static_cast<std::uint32_t>(children.size());
  // Max over the reachable DAG composes record-by-record: children are
  // already interned, so their DAG maxima are final.
  r.sub_max_degree = degree;
  r.sub_max_port = 0;
  for (const auto& [port, child] : children) {
    const Record& c = records_[static_cast<std::size_t>(child)];
    r.sub_max_degree = std::max(r.sub_max_degree, c.sub_max_degree);
    r.sub_max_port =
        std::max({r.sub_max_port, static_cast<std::int32_t>(port),
                  c.sub_max_port});
  }
  child_pool_.insert(child_pool_.end(), children.begin(), children.end());
  records_.push_back(r);
  ViewId id = static_cast<ViewId>(records_.size() - 1);
  index_[i] = IndexSlot{hash, id};
  // Keep the load factor under 3/4 so probe chains stay short.
  if (++index_used_ * 4 >= index_.size() * 3) index_grow();
  return id;
}

std::span<const ChildRef> ViewRepo::children(ViewId v) const {
  const Record& r = rec(v);
  return {child_pool_.data() + r.child_begin, r.child_count};
}

std::strong_ordering ViewRepo::compare(ViewId a, ViewId b) const {
  if (a == b) return std::strong_ordering::equal;
  const Record& ra = rec(a);
  const Record& rb = rec(b);
  ANOLE_CHECK_MSG(ra.depth == rb.depth, "comparing views of unequal depth");
  // Ranked fast path: rank order reproduces the structural order exactly
  // (DESIGN.md §8), and distinct ranked ids of one depth never share a
  // rank — one integer comparison, no memo traffic.
  if (ra.rank != kUnranked && rb.rank != kUnranked)
    return ra.rank < rb.rank ? std::strong_ordering::less
                             : std::strong_ordering::greater;
  return compare_structural(a, b);
}

std::strong_ordering ViewRepo::compare_structural(ViewId a, ViewId b) const {
  if (a == b) return std::strong_ordering::equal;
  ANOLE_CHECK_MSG(rec(a).depth == rec(b).depth,
                  "comparing views of unequal depth");
  // Verdicts are memoized under the normalized (smaller id, larger id) key;
  // the stored sign is relative to that orientation, so one entry serves
  // both compare(a, b) and the mirrored compare(b, a).
  auto lookup = [this](ViewId x, ViewId y) -> std::int8_t {
    bool swapped = x > y;
    auto it = compare_memo_.find(swapped ? pack_key(static_cast<std::uint32_t>(y),
                                                    static_cast<std::uint32_t>(x))
                                         : pack_key(static_cast<std::uint32_t>(x),
                                                    static_cast<std::uint32_t>(y)));
    if (it == compare_memo_.end()) return 0;
    return swapped ? static_cast<std::int8_t>(-it->second) : it->second;
  };
  auto store = [this](ViewId x, ViewId y, std::int8_t sign) {
    if (x > y) {
      std::swap(x, y);
      sign = static_cast<std::int8_t>(-sign);
    }
    compare_memo_.emplace(pack_key(static_cast<std::uint32_t>(x),
                                   static_cast<std::uint32_t>(y)),
                          sign);
  };
  if (std::int8_t hit = lookup(a, b); hit != 0)
    return hit < 0 ? std::strong_ordering::less : std::strong_ordering::greater;

  // Iterative descent to the first structural difference. Lexicographic
  // order means that difference decides every frame on the path: each
  // parent was waiting on its first unequal child pair, so one verdict
  // resolves (and memoizes) the whole stack. Depth of the explicit stack
  // is bounded by the view depth — no call-stack recursion.
  struct Frame {
    ViewId a, b;
    std::uint32_t i = 0;  ///< next child index to examine
  };
  std::vector<Frame> stack{{a, b, 0}};
  for (;;) {
    Frame& f = stack.back();
    const Record& ra = rec(f.a);
    const Record& rb = rec(f.b);
    std::int8_t verdict = 0;
    if (ra.degree != rb.degree) {
      verdict = ra.degree < rb.degree ? -1 : +1;
    } else {
      std::span<const ChildRef> ca = children(f.a);
      std::span<const ChildRef> cb = children(f.b);
      bool descended = false;
      while (f.i < ca.size()) {
        const auto& [pa, xa] = ca[f.i];
        const auto& [pb, xb] = cb[f.i];
        if (pa != pb) {
          verdict = pa < pb ? -1 : +1;
          break;
        }
        if (xa != xb) {
          // A ranked child pair decides like a memo hit, O(1): the walk
          // only ever descends where some view is unranked.
          const Record& rxa = rec(xa);
          const Record& rxb = rec(xb);
          if (rxa.rank != kUnranked && rxb.rank != kUnranked) {
            verdict = rxa.rank < rxb.rank ? -1 : +1;
            break;
          }
          if (std::int8_t hit = lookup(xa, xb); hit != 0) {
            verdict = hit;
            break;
          }
          ++f.i;  // before push_back: it invalidates the reference f
          stack.push_back(Frame{xa, xb, 0});
          descended = true;
          break;
        }
        ++f.i;
      }
      if (descended) continue;
    }
    // Hash-consing guarantees structurally equal views share an id, so two
    // distinct ids at equal depth must differ somewhere.
    ANOLE_CHECK_MSG(verdict != 0,
                    "distinct ids compared equal — interning broken");
    for (const Frame& fr : stack) store(fr.a, fr.b, verdict);
    return verdict < 0 ? std::strong_ordering::less
                       : std::strong_ordering::greater;
  }
}

void ViewRepo::assign_ranks(std::span<const ViewId> level_distinct) {
  if (level_distinct.empty()) return;
  const int d = rec(level_distinct.front()).depth;

  // Fresh = unranked ids whose children are all ranked (depth 0 always
  // qualifies). An id with an unranked child cannot be keyed and stays on
  // the structural fallback — correctness never depends on being ranked.
  std::vector<ViewId> fresh;
  for (ViewId v : level_distinct) {
    const Record& r = rec(v);
    ANOLE_DCHECK(r.depth == d);
    if (r.rank != kUnranked) continue;
    bool keyable = true;
    for (const auto& [port, child] : children(v)) {
      if (rec(child).rank == kUnranked) {
        keyable = false;
        break;
      }
    }
    if (keyable) fresh.push_back(v);
  }
  if (fresh.empty()) return;

  // Key order (degree, [(rev_port, rank(child))]...) == structural order,
  // by induction: child ranks order exactly as the children do (depth 0:
  // the key is the degree, which IS the structural order on leaves). Two
  // ranked ids shortcut to their ranks — needed when merging fresh ids
  // into a depth that was already ranked (a second refinement over this
  // repo, or a deeper sweep of another graph sharing it). Keys of distinct
  // ids never tie: equal keys would mean equal degree and identical
  // children (rank is injective per depth), i.e. the same record.
  auto key_less = [this](ViewId a, ViewId b) {
    const Record& ra = rec(a);
    const Record& rb = rec(b);
    if (ra.rank != kUnranked && rb.rank != kUnranked) return ra.rank < rb.rank;
    if (ra.degree != rb.degree) return ra.degree < rb.degree;
    std::span<const ChildRef> ca = children(a);
    std::span<const ChildRef> cb = children(b);
    for (std::size_t i = 0; i < ca.size(); ++i) {
      if (ca[i].first != cb[i].first) return ca[i].first < cb[i].first;
      std::int32_t rka = rec(ca[i].second).rank;
      std::int32_t rkb = rec(cb[i].second).rank;
      if (rka != rkb) return rka < rkb;
    }
    return false;  // equal keys ⇒ same id; callers pass distinct ids
  };
  std::sort(fresh.begin(), fresh.end(), key_less);

  if (ranked_by_depth_.size() <= static_cast<std::size_t>(d))
    ranked_by_depth_.resize(static_cast<std::size_t>(d) + 1);
  std::vector<ViewId>& ranked = ranked_by_depth_[static_cast<std::size_t>(d)];
  if (ranked.empty()) {
    ranked = std::move(fresh);
  } else {
    // Merging preserves the relative order of the already-ranked ids, so
    // re-numbering below shifts rank *values* without ever reordering —
    // deeper records keyed on the old values stay canonically sorted.
    std::vector<ViewId> merged(ranked.size() + fresh.size());
    std::merge(ranked.begin(), ranked.end(), fresh.begin(), fresh.end(),
               merged.begin(), key_less);
    ranked = std::move(merged);
  }
  for (std::size_t i = 0; i < ranked.size(); ++i)
    records_[static_cast<std::size_t>(ranked[i])].rank =
        static_cast<std::int32_t>(i);
}

ViewId ViewRepo::truncate(ViewId v, int x) {
  {
    const Record& r = rec(v);
    ANOLE_CHECK_MSG(x >= 0 && x <= r.depth,
                    "truncate to depth " << x << " of a depth-" << r.depth
                                         << " view");
    if (x == r.depth) return v;
    if (x == 0) return leaf(r.degree);
  }
  if (auto it = truncate_memo_.find(pack_key(static_cast<std::uint32_t>(v),
                                             static_cast<std::uint32_t>(x)));
      it != truncate_memo_.end())
    return it->second;

  // Iterative post-order worklist. A frame rebuilds one record at its
  // target depth; trivial child targets (own depth, zero) resolve inline,
  // memo hits resolve by lookup, everything else pushes a frame. Frames
  // hold their own child vectors because intern()/leaf() reallocate the
  // child pool, invalidating spans into it.
  struct Frame {
    ViewId id;
    int target;
    std::vector<ChildRef> kids;  ///< rebuilt children; size() = progress
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{v, x, {}});
  for (;;) {
    Frame& f = stack.back();
    if (f.kids.size() == rec(f.id).child_count) {
      ViewId out = intern(f.kids);
      truncate_memo_.emplace(pack_key(static_cast<std::uint32_t>(f.id),
                                      static_cast<std::uint32_t>(f.target)),
                             out);
      if (stack.size() == 1) return out;
      stack.pop_back();
      continue;  // the parent's next lookup hits the memo entry just added
    }
    const ChildRef c = children(f.id)[f.kids.size()];
    int target = f.target - 1;
    const Record& child = rec(c.second);
    if (target == child.depth) {
      f.kids.emplace_back(c.first, c.second);
      continue;
    }
    if (target == 0) {
      int child_degree = child.degree;  // leaf() may reallocate records_
      f.kids.emplace_back(c.first, leaf(child_degree));
      continue;
    }
    auto it = truncate_memo_.find(pack_key(static_cast<std::uint32_t>(c.second),
                                           static_cast<std::uint32_t>(target)));
    if (it != truncate_memo_.end()) {
      f.kids.emplace_back(c.first, it->second);
      continue;
    }
    stack.push_back(Frame{c.second, target, {}});
  }
}

void ViewRepo::begin_epoch() const {
  visit_mark_.resize(records_.size(), 0);
  if (++visit_epoch_ == 0) {  // wrapped: stale marks could alias, clear all
    std::fill(visit_mark_.begin(), visit_mark_.end(), 0u);
    visit_epoch_ = 1;
  }
}

bool ViewRepo::mark_visited(ViewId v) const {
  std::uint32_t& m = visit_mark_[static_cast<std::size_t>(v)];
  if (m == visit_epoch_) return false;
  m = visit_epoch_;
  return true;
}

DagStats ViewRepo::stats(ViewId v) const {
  const Record& root = rec(v);
  if (count_memo_.size() < records_.size()) count_memo_.resize(records_.size());
  CountEntry& entry = count_memo_[static_cast<std::size_t>(v)];
  if (entry.records == 0) {
    // One iterative traversal per id, ever; the reusable epoch marker
    // replaces the per-call heap-allocated seen-map of the old path.
    begin_epoch();
    visit_stack_.clear();
    visit_stack_.push_back(v);
    (void)mark_visited(v);
    std::uint64_t records = 0;
    std::uint64_t edges = 0;
    while (!visit_stack_.empty()) {
      ViewId cur = visit_stack_.back();
      visit_stack_.pop_back();
      const Record& r = rec(cur);
      ++records;
      edges += r.child_count;
      std::span<const ChildRef> kids(child_pool_.data() + r.child_begin,
                                     r.child_count);
      for (const auto& [port, child] : kids)
        if (mark_visited(child)) visit_stack_.push_back(child);
    }
    entry.records = records;
    entry.edges = edges;
  }
  return DagStats{static_cast<std::size_t>(entry.records),
                  static_cast<std::size_t>(entry.edges),
                  static_cast<int>(root.sub_max_degree),
                  static_cast<int>(root.sub_max_port)};
}

std::size_t ViewRepo::serialized_size_bits(ViewId v) const {
  // Canonical wire format: record list in topological order; each record
  // stores its degree and, per child, the reverse port and the index of the
  // child record. All integers in fixed width sized for this DAG.
  DagStats s = stats(v);
  std::size_t deg_bits =
      util::bit_length(static_cast<std::uint64_t>(s.max_degree));
  std::size_t port_bits =
      util::bit_length(static_cast<std::uint64_t>(s.max_port));
  std::size_t ref_bits = util::bit_length(s.records);
  return 64  // header: record count + widths
         + s.records * deg_bits + s.edges * (port_bits + ref_bits);
}

const coding::BitString& ViewRepo::encode_depth1(ViewId v) {
  ANOLE_CHECK_MSG(depth(v) == 1, "encode_depth1 needs a depth-1 view");
  auto it = depth1_code_memo_.find(v);
  if (it != depth1_code_memo_.end()) return it->second;
  std::vector<coding::BitString> triples;
  std::span<const ChildRef> kids = children(v);
  triples.reserve(kids.size());
  for (std::size_t j = 0; j < kids.size(); ++j) {
    const auto& [rev_port, child] = kids[j];
    triples.push_back(coding::concat(
        {coding::bin(j), coding::bin(static_cast<std::uint64_t>(rev_port)),
         coding::bin(static_cast<std::uint64_t>(degree(child)))}));
  }
  coding::BitString code = coding::concat(triples);
  auto [ins, ok] = depth1_code_memo_.emplace(v, std::move(code));
  return ins->second;
}

}  // namespace anole::views
