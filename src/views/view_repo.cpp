#include "views/view_repo.hpp"

#include <algorithm>

#include "coding/codec.hpp"
#include "util/math.hpp"

namespace anole::views {
namespace {

std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t hash_key(int degree, int depth,
                       std::span<const ChildRef> children) {
  std::uint64_t h = hash_mix(static_cast<std::uint64_t>(degree),
                             static_cast<std::uint64_t>(depth));
  for (const auto& [port, child] : children) {
    h = hash_mix(h, static_cast<std::uint64_t>(port));
    h = hash_mix(h, static_cast<std::uint64_t>(child));
  }
  return h;
}

}  // namespace

ViewId ViewRepo::leaf(int degree) {
  ANOLE_CHECK(degree >= 0);
  return intern_impl(degree, 0, {});
}

ViewId ViewRepo::intern(std::span<const ChildRef> children) {
  ANOLE_CHECK_MSG(!children.empty(), "intern of a degree-0 inner view");
  int child_depth = depth(children.front().second);
  for (const auto& [port, child] : children) {
    ANOLE_CHECK(port >= 0);
    ANOLE_CHECK_MSG(depth(child) == child_depth,
                    "children at mixed depths in intern()");
  }
  return intern_impl(static_cast<int>(children.size()), child_depth + 1,
                     children);
}

ViewId ViewRepo::intern_impl(int degree, int depth,
                             std::span<const ChildRef> children) {
  std::uint64_t h = hash_key(degree, depth, children);
  auto& bucket = index_[h];
  for (ViewId cand : bucket) {
    const Record& r = records_[static_cast<std::size_t>(cand)];
    if (r.degree != degree || r.depth != depth ||
        r.child_count != children.size())
      continue;
    std::span<const ChildRef> existing(child_pool_.data() + r.child_begin,
                                       r.child_count);
    if (std::equal(existing.begin(), existing.end(), children.begin()))
      return cand;
  }
  Record r;
  r.degree = degree;
  r.depth = depth;
  r.child_begin = static_cast<std::uint32_t>(child_pool_.size());
  r.child_count = static_cast<std::uint32_t>(children.size());
  child_pool_.insert(child_pool_.end(), children.begin(), children.end());
  records_.push_back(r);
  ViewId id = static_cast<ViewId>(records_.size() - 1);
  bucket.push_back(id);
  return id;
}

std::span<const ChildRef> ViewRepo::children(ViewId v) const {
  const Record& r = rec(v);
  return {child_pool_.data() + r.child_begin, r.child_count};
}

std::strong_ordering ViewRepo::compare(ViewId a, ViewId b) const {
  if (a == b) return std::strong_ordering::equal;
  const Record& ra = rec(a);
  const Record& rb = rec(b);
  ANOLE_CHECK_MSG(ra.depth == rb.depth, "comparing views of unequal depth");
  std::uint64_t key = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a))
                       << 32) |
                      static_cast<std::uint32_t>(b);
  if (auto it = compare_memo_.find(key); it != compare_memo_.end())
    return it->second < 0 ? std::strong_ordering::less
                          : std::strong_ordering::greater;
  std::strong_ordering result = std::strong_ordering::equal;
  if (ra.degree != rb.degree) {
    result = ra.degree <=> rb.degree;
  } else {
    std::span<const ChildRef> ca = children(a);
    std::span<const ChildRef> cb = children(b);
    for (std::size_t i = 0; i < ca.size(); ++i) {
      if (ca[i].first != cb[i].first) {
        result = ca[i].first <=> cb[i].first;
        break;
      }
      if (auto sub = compare(ca[i].second, cb[i].second);
          sub != std::strong_ordering::equal) {
        result = sub;
        break;
      }
    }
  }
  // Hash-consing guarantees structurally equal views share an id, so two
  // distinct ids at equal depth must differ somewhere.
  ANOLE_CHECK_MSG(result != std::strong_ordering::equal,
                  "distinct ids compared equal — interning broken");
  compare_memo_.emplace(key, result < 0 ? -1 : +1);
  return result;
}

ViewId ViewRepo::truncate(ViewId v, int x) {
  const Record r = rec(v);
  ANOLE_CHECK_MSG(x >= 0 && x <= r.depth,
                  "truncate to depth " << x << " of a depth-" << r.depth
                                       << " view");
  if (x == r.depth) return v;
  if (x == 0) return leaf(r.degree);
  std::uint64_t key = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v))
                       << 32) |
                      static_cast<std::uint32_t>(x);
  if (auto it = truncate_memo_.find(key); it != truncate_memo_.end())
    return it->second;
  // Copy the child list first: the recursive truncate() interns new records
  // and may reallocate the child pool, invalidating spans into it.
  std::span<const ChildRef> src = children(v);
  std::vector<ChildRef> kids(src.begin(), src.end());
  for (auto& [port, child] : kids) child = truncate(child, x - 1);
  ViewId out = intern(kids);
  truncate_memo_.emplace(key, out);
  return out;
}

std::size_t ViewRepo::dag_records(ViewId v) const {
  std::vector<ViewId> stack{v};
  std::unordered_map<ViewId, bool> seen;
  seen[v] = true;
  std::size_t count = 0;
  while (!stack.empty()) {
    ViewId cur = stack.back();
    stack.pop_back();
    ++count;
    for (const auto& [port, child] : children(cur)) {
      if (!seen[child]) {
        seen[child] = true;
        stack.push_back(child);
      }
    }
  }
  return count;
}

std::size_t ViewRepo::serialized_size_bits(ViewId v) const {
  // Canonical wire format: record list in topological order; each record
  // stores its degree and, per child, the reverse port and the index of the
  // child record. All integers in fixed width sized for this DAG.
  std::vector<ViewId> order{v};
  std::unordered_map<ViewId, bool> seen;
  seen[v] = true;
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (const auto& [port, child] : children(order[i])) {
      if (!seen[child]) {
        seen[child] = true;
        order.push_back(child);
      }
    }
  }
  std::size_t records = order.size();
  int max_deg = 0, max_port = 0;
  std::size_t edges = 0;
  for (ViewId id : order) {
    max_deg = std::max(max_deg, degree(id));
    for (const auto& [port, child] : children(id)) {
      max_port = std::max(max_port, static_cast<int>(port));
      ++edges;
    }
  }
  std::size_t deg_bits = util::bit_length(static_cast<std::uint64_t>(max_deg));
  std::size_t port_bits =
      util::bit_length(static_cast<std::uint64_t>(max_port));
  std::size_t ref_bits = util::bit_length(records);
  return 64  // header: record count + widths
         + records * deg_bits + edges * (port_bits + ref_bits);
}

const coding::BitString& ViewRepo::encode_depth1(ViewId v) {
  ANOLE_CHECK_MSG(depth(v) == 1, "encode_depth1 needs a depth-1 view");
  auto it = depth1_code_memo_.find(v);
  if (it != depth1_code_memo_.end()) return it->second;
  std::vector<coding::BitString> triples;
  std::span<const ChildRef> kids = children(v);
  triples.reserve(kids.size());
  for (std::size_t j = 0; j < kids.size(); ++j) {
    const auto& [rev_port, child] = kids[j];
    triples.push_back(coding::concat(
        {coding::bin(j), coding::bin(static_cast<std::uint64_t>(rev_port)),
         coding::bin(static_cast<std::uint64_t>(degree(child)))}));
  }
  coding::BitString code = coding::concat(triples);
  auto [ins, ok] = depth1_code_memo_.emplace(v, std::move(code));
  return ins->second;
}

}  // namespace anole::views
