#pragma once
// Hash-consed augmented truncated views (the central notion of the paper).
//
// The augmented truncated view B^t(v) is the depth-t truncation of the
// (infinite) view from v, with leaves labeled by their degrees in the graph
// (paper Section 1). Recursively:
//
//   B^0(v)     = a single node labeled deg(v)
//   B^{t+1}(v) = root of degree deg(v); the child reached through port j
//                carries the edge-label pair (j, rev_port_j) and is the
//                root of B^t(u_j), where u_j is v's j-th neighbor.
//
// A ViewRepo stores each distinct view once (content-addressed interning):
// a view is a record (degree, [(rev_port_j, child_view_id)]) whose children
// are views one level shallower. Sharing equal subtrees turns the
// exponential-size view tree into a DAG with at most n records per level,
// while preserving the information content exactly — two nodes have equal
// views iff they receive the same ViewId.
//
// The repo also provides the canonical total order on equal-depth views
// used wherever the paper orders views "lexicographically by binary
// representation" (any fixed canonical order is equivalent for the
// algorithms; see DESIGN.md), truncation to a smaller depth, the exact
// depth-1 bit encoding of Proposition 3.3 (needed by BuildTrie's bit
// queries), and serialized-size accounting for message metering.
//
// Canonical ranks (DESIGN.md §8): views produced by batched refinement
// (views::Refiner) additionally carry a per-depth integer *rank* equal to
// their position in the canonical order among the ranked views of that
// depth. Given ranks for depth-t views, the distinct depth-(t+1)
// signatures of a level sort by the integer key
// (degree, [(rev_port_j, rank(child_j))]...), which equals the structural
// recursive order by induction — so ordering queries between two ranked
// views are a single integer comparison instead of a DAG walk. Records
// interned outside refinement (truncate, per-node protocol paths, manual
// intern) keep rank == kUnranked and fall back to the structural walk;
// mixed ranked/unranked comparisons are structural but use ranks as
// shortcut verdicts at ranked child pairs.
//
// Size accounting is incremental (DESIGN.md §1): the DAG-wide maximum
// degree and reverse port of every record are maintained at intern time
// (max composes over shared substructure), and the distinct record/edge
// counts are computed at most once per id by an iterative epoch-marked
// traversal and memoized. Metered simulations therefore pay O(reachable
// DAG) once per distinct view ever queried, and O(1) per query after that
// — instead of one full traversal with a heap-allocated seen-map per node
// per round.
//
// The interning index is a flat open-addressing table (DESIGN.md §7): one
// contiguous allocation of (hash, id) slots probed linearly, instead of
// the former chained unordered_map<hash, vector<ViewId>> whose every probe
// chased bucket and vector nodes. views::Refiner drives the batched
// level-refinement path through intern_hashed(), passing signature hashes
// it precomputed (possibly in parallel) so the index never rehashes a
// signature the refiner already hashed.
//
// A ViewRepo is NOT thread-safe; every experiment cell owns its own repo.

#include <compare>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "coding/bitstring.hpp"
#include "portgraph/port_graph.hpp"

namespace anole::views {

using ViewId = std::int32_t;
inline constexpr ViewId kInvalidView = -1;

/// Rank value of records never ranked by batched refinement (see
/// ViewRepo::assign_ranks): such views order through the structural walk.
inline constexpr std::int32_t kUnranked = -1;

/// (rev_port, child view id) — the edge label half not implied by position,
/// plus the subtree.
using ChildRef = std::pair<portgraph::Port, ViewId>;

/// The ascending distinct ids of a level/outbox vector — the id set of one
/// refinement class partition. One definition for every caller that needs
/// a per-level distinct set (metering, argmin, level-0 class counts).
/// O(n) expected (open-addressing dedup) plus a sort of the C values.
[[nodiscard]] std::vector<ViewId> distinct_ids(std::span<const ViewId> ids);

/// Number of distinct values in `ids` — the class count of the level —
/// without materializing the set. `table` is reusable open-addressing
/// scratch (sized and cleared internally): hot per-round callers
/// (views::Refiner's stabilization detection) pass a member vector to
/// avoid a per-call allocation. Same probe as distinct_ids.
[[nodiscard]] std::size_t count_distinct_ids(std::span<const ViewId> ids,
                                             std::vector<ViewId>& table);

/// Exact aggregate statistics of the DAG reachable from one view record
/// (the record itself included). These determine the serialized message
/// size; see ViewRepo::serialized_size_bits.
struct DagStats {
  std::size_t records = 0;  ///< distinct reachable records
  std::size_t edges = 0;    ///< child references summed over those records
  int max_degree = 0;       ///< largest record degree in the DAG
  int max_port = 0;         ///< largest reverse port on any edge (0 if none)
};

class ViewRepo {
 public:
  ViewRepo() = default;
  ViewRepo(const ViewRepo&) = delete;
  ViewRepo& operator=(const ViewRepo&) = delete;

  /// Interns the depth-0 view of a node with the given degree.
  [[nodiscard]] ViewId leaf(int degree);

  /// Interns a depth-(d+1) view from children of equal depth d, listed in
  /// port order (child j is reached through port j; degree = children size).
  [[nodiscard]] ViewId intern(std::span<const ChildRef> children);

  [[nodiscard]] int degree(ViewId v) const { return rec(v).degree; }
  [[nodiscard]] int depth(ViewId v) const { return rec(v).depth; }
  [[nodiscard]] std::span<const ChildRef> children(ViewId v) const;

  /// Canonical order on views of equal depth: compares degree, then
  /// children pairwise by (rev_port, recursive order). Total order; a == b
  /// iff the ids are equal (hash-consing). O(1) when both views carry a
  /// canonical rank (rank order reproduces the structural order exactly —
  /// DESIGN.md §8); otherwise falls back to the memoized structural walk
  /// of compare_structural().
  [[nodiscard]] std::strong_ordering compare(ViewId a, ViewId b) const;

  /// The reference structural walk behind compare(): iterative descent to
  /// the first structural difference (safe for views of any depth), with
  /// verdicts memoized under a normalized key so the mirrored query is a
  /// lookup. Ranked child pairs met during the walk resolve by rank.
  /// Exposed so tests can pin compare() == compare_structural() on ranked
  /// views; production callers use compare().
  [[nodiscard]] std::strong_ordering compare_structural(ViewId a,
                                                        ViewId b) const;

  /// Canonical rank of v among the ranked views of its depth, or kUnranked
  /// when v was interned outside batched refinement. For two ranked views
  /// of equal depth, rank order == compare() order.
  [[nodiscard]] std::int32_t rank(ViewId v) const { return rec(v).rank; }

  /// Assigns canonical ranks to the (equal-depth, distinct) ids of one
  /// refinement level — the batched byproduct views::Refiner calls after
  /// each dedup. Ids already ranked are untouched; ids with an unranked
  /// child are skipped (they stay on the structural fallback). The fresh
  /// ids are sorted by the integer key (degree, [(rev_port, child rank)])
  /// — equal to the structural order by induction — and merged into the
  /// depth's existing ranked sequence, re-numbering ranks so rank order
  /// stays the canonical order across refinements of different graphs
  /// sharing this repo. Never interns; ids and all prior compare verdicts
  /// are unaffected.
  void assign_ranks(std::span<const ViewId> level_distinct);

  /// The depth-x truncation of view v (x <= depth(v)). Iterative worklist
  /// with memoization; safe for views of any depth.
  [[nodiscard]] ViewId truncate(ViewId v, int x);

  /// Exact statistics of the DAG reachable from v. Max degree/port are
  /// O(1) (maintained at intern time); record/edge counts are computed at
  /// most once per id and memoized, so repeated queries are O(1).
  [[nodiscard]] DagStats stats(ViewId v) const;

  /// Number of distinct records reachable from v (DAG size).
  [[nodiscard]] std::size_t dag_records(ViewId v) const {
    return stats(v).records;
  }

  /// Bits of a standard serialized encoding of the DAG rooted at v
  /// (record list with degree, rev-ports and child indices). This is the
  /// message-size metric reported by the simulator. O(1) amortized: a pure
  /// arithmetic function of stats(v).
  [[nodiscard]] std::size_t serialized_size_bits(ViewId v) const;

  /// Exact binary code of a depth-1 view, following Proposition 3.3:
  /// Concat over ports j of Concat(bin(j), bin(a_j), bin(b_j)) where a_j is
  /// the reverse port and b_j the neighbor degree. BuildTrie's depth-1
  /// queries ("length < t", "j-th bit is 1") inspect exactly these bits.
  [[nodiscard]] const coding::BitString& encode_depth1(ViewId v);

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// Pre-reserves record storage, the child pool and the interning index
  /// for a refinement workload over a graph with n nodes and m edges,
  /// sweeping about `depth_hint` levels — so deep sweeps never stall on a
  /// mid-run rehash or reallocation. The estimate is sized for the
  /// pre-stabilization phase (a few full levels of up to n records / 2m
  /// child refs) plus a small per-level tail for the stable phase
  /// (DESIGN.md §9), where a level adds only C ≪ n records. Reserving is
  /// purely an optimization: over- or under-shooting never changes ids.
  void reserve_for(std::size_t n, std::size_t m, int depth_hint);

  /// The stable signature hash the interning index keys on. Exposed so
  /// views::Refiner can precompute level hashes (in parallel) and hand them
  /// back through the batched intern path without rehashing.
  [[nodiscard]] static std::uint64_t signature_hash(
      int degree, int depth, std::span<const ChildRef> children);

 private:
  friend class Refiner;
  struct Record {
    int degree = 0;
    int depth = 0;
    std::uint32_t child_begin = 0;
    std::uint32_t child_count = 0;
    // Incremental DAG-wide maxima, fixed at intern time: max composes over
    // shared substructure, so these equal the maxima over the reachable DAG.
    std::int32_t sub_max_degree = 0;
    std::int32_t sub_max_port = 0;
    // Canonical rank within this record's depth (assign_ranks), or
    // kUnranked. Values may be re-numbered when later levels merge in new
    // views, but the relative order of ranked views never changes.
    std::int32_t rank = kUnranked;
  };

  /// Lazily-computed distinct record/edge counts of the reachable DAG.
  /// records == 0 marks a not-yet-computed entry (every DAG has >= 1).
  struct CountEntry {
    std::uint64_t records = 0;
    std::uint64_t edges = 0;
  };

  [[nodiscard]] const Record& rec(ViewId v) const {
    ANOLE_DCHECK(v >= 0 && static_cast<std::size_t>(v) < records_.size());
    return records_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] ViewId intern_impl(int degree, int depth,
                                   std::span<const ChildRef> children);

  /// Interns a record whose signature hash the caller already computed
  /// (must equal signature_hash(degree, depth, children)). The batched
  /// entry point used by Refiner; intern_impl forwards here.
  [[nodiscard]] ViewId intern_hashed(int degree, int depth,
                                     std::span<const ChildRef> children,
                                     std::uint64_t hash);

  /// Doubles the open-addressing index and re-places every occupied slot.
  void index_grow();

  /// Rebuilds the index at `capacity` slots (a power of two >= current).
  void index_rebuild(std::size_t capacity);

  /// Grows the index once, up front, so `expected_used` occupied slots
  /// stay under the 3/4 load factor without incremental rehashes.
  void index_reserve(std::size_t expected_used);

  /// Marks v visited in the current epoch; returns false if already marked.
  [[nodiscard]] bool mark_visited(ViewId v) const;
  void begin_epoch() const;

  std::vector<Record> records_;
  std::vector<ChildRef> child_pool_;
  // Interning index: flat open-addressing table (linear probing, power-of-
  // two capacity). id == kInvalidView marks an empty slot; the signature
  // hash is stored so probes compare one word before touching the record.
  struct IndexSlot {
    std::uint64_t hash = 0;
    ViewId id = kInvalidView;
  };
  std::vector<IndexSlot> index_;
  std::size_t index_used_ = 0;
  // ranked_by_depth_[d]: the ranked ids of depth d in canonical order —
  // the merge target of assign_ranks. rec(ranked_by_depth_[d][i]).rank == i.
  std::vector<std::vector<ViewId>> ranked_by_depth_;
  // Memoization tables (compare_memo_ serves only the structural fallback:
  // both-ranked pairs resolve by rank before any lookup).
  mutable std::unordered_map<std::uint64_t, std::int8_t> compare_memo_;
  std::unordered_map<std::uint64_t, ViewId> truncate_memo_;
  std::unordered_map<ViewId, coding::BitString> depth1_code_memo_;
  mutable std::vector<CountEntry> count_memo_;
  // Reusable epoch-marked visited set + traversal stack: replaces the
  // per-call heap-allocated seen-maps of the pre-incremental traversals.
  mutable std::vector<std::uint32_t> visit_mark_;
  mutable std::uint32_t visit_epoch_ = 0;
  mutable std::vector<ViewId> visit_stack_;
};

}  // namespace anole::views
