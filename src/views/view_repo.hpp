#pragma once
// Hash-consed augmented truncated views (the central notion of the paper).
//
// The augmented truncated view B^t(v) is the depth-t truncation of the
// (infinite) view from v, with leaves labeled by their degrees in the graph
// (paper Section 1). Recursively:
//
//   B^0(v)     = a single node labeled deg(v)
//   B^{t+1}(v) = root of degree deg(v); the child reached through port j
//                carries the edge-label pair (j, rev_port_j) and is the
//                root of B^t(u_j), where u_j is v's j-th neighbor.
//
// A ViewRepo stores each distinct view once (content-addressed interning):
// a view is a record (degree, [(rev_port_j, child_view_id)]) whose children
// are views one level shallower. Sharing equal subtrees turns the
// exponential-size view tree into a DAG with at most n records per level,
// while preserving the information content exactly — two nodes have equal
// views iff they receive the same ViewId.
//
// The repo also provides the canonical total order on equal-depth views
// used wherever the paper orders views "lexicographically by binary
// representation" (any fixed canonical order is equivalent for the
// algorithms; see DESIGN.md), truncation to a smaller depth, the exact
// depth-1 bit encoding of Proposition 3.3 (needed by BuildTrie's bit
// queries), and serialized-size accounting for message metering.
//
// A ViewRepo is NOT thread-safe; every experiment cell owns its own repo.

#include <compare>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "coding/bitstring.hpp"
#include "portgraph/port_graph.hpp"

namespace anole::views {

using ViewId = std::int32_t;
inline constexpr ViewId kInvalidView = -1;

/// (rev_port, child view id) — the edge label half not implied by position,
/// plus the subtree.
using ChildRef = std::pair<portgraph::Port, ViewId>;

class ViewRepo {
 public:
  ViewRepo() = default;
  ViewRepo(const ViewRepo&) = delete;
  ViewRepo& operator=(const ViewRepo&) = delete;

  /// Interns the depth-0 view of a node with the given degree.
  [[nodiscard]] ViewId leaf(int degree);

  /// Interns a depth-(d+1) view from children of equal depth d, listed in
  /// port order (child j is reached through port j; degree = children size).
  [[nodiscard]] ViewId intern(std::span<const ChildRef> children);

  [[nodiscard]] int degree(ViewId v) const { return rec(v).degree; }
  [[nodiscard]] int depth(ViewId v) const { return rec(v).depth; }
  [[nodiscard]] std::span<const ChildRef> children(ViewId v) const;

  /// Canonical structural order on views of equal depth: compares degree,
  /// then children pairwise by (rev_port, recursive order). Total order;
  /// a == b iff the ids are equal (hash-consing).
  [[nodiscard]] std::strong_ordering compare(ViewId a, ViewId b) const;

  /// The depth-x truncation of view v (x <= depth(v)).
  [[nodiscard]] ViewId truncate(ViewId v, int x);

  /// Number of distinct records reachable from v (DAG size).
  [[nodiscard]] std::size_t dag_records(ViewId v) const;

  /// Bits of a standard serialized encoding of the DAG rooted at v
  /// (record list with degree, rev-ports and child indices). This is the
  /// message-size metric reported by the simulator.
  [[nodiscard]] std::size_t serialized_size_bits(ViewId v) const;

  /// Exact binary code of a depth-1 view, following Proposition 3.3:
  /// Concat over ports j of Concat(bin(j), bin(a_j), bin(b_j)) where a_j is
  /// the reverse port and b_j the neighbor degree. BuildTrie's depth-1
  /// queries ("length < t", "j-th bit is 1") inspect exactly these bits.
  [[nodiscard]] const coding::BitString& encode_depth1(ViewId v);

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

 private:
  struct Record {
    int degree = 0;
    int depth = 0;
    std::uint32_t child_begin = 0;
    std::uint32_t child_count = 0;
  };

  [[nodiscard]] const Record& rec(ViewId v) const {
    ANOLE_DCHECK(v >= 0 && static_cast<std::size_t>(v) < records_.size());
    return records_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] ViewId intern_impl(int degree, int depth,
                                   std::span<const ChildRef> children);

  std::vector<Record> records_;
  std::vector<ChildRef> child_pool_;
  // Interning index: hash of (degree, depth, children) -> candidate ids.
  std::unordered_map<std::uint64_t, std::vector<ViewId>> index_;
  // Memoization tables.
  mutable std::unordered_map<std::uint64_t, std::int8_t> compare_memo_;
  std::unordered_map<std::uint64_t, ViewId> truncate_memo_;
  std::unordered_map<ViewId, coding::BitString> depth1_code_memo_;
};

}  // namespace anole::views
