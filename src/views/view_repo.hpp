#pragma once
// Hash-consed augmented truncated views (the central notion of the paper).
//
// The augmented truncated view B^t(v) is the depth-t truncation of the
// (infinite) view from v, with leaves labeled by their degrees in the graph
// (paper Section 1). Recursively:
//
//   B^0(v)     = a single node labeled deg(v)
//   B^{t+1}(v) = root of degree deg(v); the child reached through port j
//                carries the edge-label pair (j, rev_port_j) and is the
//                root of B^t(u_j), where u_j is v's j-th neighbor.
//
// A ViewRepo stores each distinct view once (content-addressed interning):
// a view is a record (degree, [(rev_port_j, child_view_id)]) whose children
// are views one level shallower. Sharing equal subtrees turns the
// exponential-size view tree into a DAG with at most n records per level,
// while preserving the information content exactly — two nodes have equal
// views iff they receive the same ViewId.
//
// The repo also provides the canonical total order on equal-depth views
// used wherever the paper orders views "lexicographically by binary
// representation" (any fixed canonical order is equivalent for the
// algorithms; see DESIGN.md), truncation to a smaller depth, the exact
// depth-1 bit encoding of Proposition 3.3 (needed by BuildTrie's bit
// queries), and serialized-size accounting for message metering.
//
// Canonical ranks (DESIGN.md §8): views produced by batched refinement
// (views::Refiner) additionally carry a per-depth integer *rank* equal to
// their position in the canonical order among the ranked views of that
// depth. Given ranks for depth-t views, the distinct depth-(t+1)
// signatures of a level sort by the integer key
// (degree, [(rev_port_j, rank(child_j))]...), which equals the structural
// recursive order by induction — so ordering queries between two ranked
// views are a single integer comparison instead of a DAG walk. Records
// interned outside refinement keep rank == kUnranked and fall back to the
// structural walk; mixed ranked/unranked comparisons are structural but
// use ranks as shortcut verdicts at ranked child pairs.
//
// Concurrency (DESIGN.md §10): a ViewRepo is THREAD-SAFE. The interning
// index is striped into shards keyed by the top bits of the signature
// hash; the hot lookup path is lock-free (an acquire-load of the shard's
// current table, then a linear probe over (hash, id) slots), and only the
// insertion of a fresh record takes the shard's mutex. Records live in
// segmented storage whose segments never move once published, so ViewIds
// and child spans stay valid without any locking; a fresh record is fully
// written (children included) before its id is release-stored into the
// index, so any thread that can see an id can read its record. Id
// allocation is one atomic fetch-add per record by default — dense and,
// under a single thread, identical to the historical sequential ids — or
// block-batched through an InternArena for the parallel refinement path
// (ids may then interleave across threads; every consumer of the repo is
// id-agnostic and keyed on counts, ranks or structure). Ranks are
// renumbered under a seqlock so concurrent ordering queries either see a
// consistent snapshot or fall back to the (memoized, mutex-guarded)
// structural walk. The memo tables (compare, truncate, depth-1 codes,
// DAG stats) are guarded by small internal mutexes.
//
// Size accounting is incremental (DESIGN.md §1): the DAG-wide maximum
// degree and reverse port of every record are maintained at intern time
// (max composes over shared substructure), and the distinct record/edge
// counts are computed at most once per id by an iterative epoch-marked
// traversal and memoized.

#include <atomic>
#include <bit>
#include <compare>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "coding/bitstring.hpp"
#include "portgraph/port_graph.hpp"
#include "util/check.hpp"

namespace anole::views {

using ViewId = std::int32_t;
inline constexpr ViewId kInvalidView = -1;

/// Rank value of records never ranked by batched refinement (see
/// ViewRepo::assign_ranks): such views order through the structural walk.
inline constexpr std::int32_t kUnranked = -1;

/// (rev_port, child view id) — the edge label half not implied by position,
/// plus the subtree.
using ChildRef = std::pair<portgraph::Port, ViewId>;

/// The ascending distinct ids of a level/outbox vector — the id set of one
/// refinement class partition. One definition for every caller that needs
/// a per-level distinct set (metering, argmin, level-0 class counts).
/// O(n) expected (open-addressing dedup) plus a sort of the C values.
[[nodiscard]] std::vector<ViewId> distinct_ids(std::span<const ViewId> ids);

/// Number of distinct values in `ids` — the class count of the level —
/// without materializing the set. `table` is reusable open-addressing
/// scratch (sized and cleared internally): hot per-round callers
/// (views::Refiner's stabilization detection) pass a member vector to
/// avoid a per-call allocation. Same probe as distinct_ids.
[[nodiscard]] std::size_t count_distinct_ids(std::span<const ViewId> ids,
                                             std::vector<ViewId>& table);

/// Exact aggregate statistics of the DAG reachable from one view record
/// (the record itself included). These determine the serialized message
/// size; see ViewRepo::serialized_size_bits.
struct DagStats {
  std::size_t records = 0;  ///< distinct reachable records
  std::size_t edges = 0;    ///< child references summed over those records
  int max_degree = 0;       ///< largest record degree in the DAG
  int max_port = 0;         ///< largest reverse port on any edge (0 if none)
};

/// How ViewRepo::load materializes a snapshot (DESIGN.md §13).
enum class LoadMode {
  /// Read the file into heap segments; verifies the full body checksum.
  Copy,
  /// Map the file MAP_PRIVATE and aim segment pointers into the mapping;
  /// O(sections) attach — record pages are patched copy-on-write, new
  /// interns promote to heap segments. Verifies header + bounds only.
  Mmap,
};

class ViewRepo {
 public:
  /// A per-thread interning handle: claims ids in blocks and child storage
  /// in chunks, so a worker interning a partition of one level never
  /// contends on the repo's allocation counters. Purely a throughput
  /// device — interning through an arena is exactly-once-deduped like any
  /// other intern; only the raw id values can differ from the sequential
  /// order. An arena may be reused across levels (views::Refiner keeps one
  /// per worker chunk); unspent ids are abandoned at destruction (a small
  /// bounded gap in the id space, invisible to every consumer). An arena
  /// must not be used from two threads at once.
  class InternArena {
   public:
    explicit InternArena(ViewRepo& repo) : repo_(&repo) {}
    InternArena(const InternArena&) = delete;
    InternArena& operator=(const InternArena&) = delete;

   private:
    friend class ViewRepo;
    ViewRepo* repo_;
    ViewId next_id_ = 0;
    ViewId id_end_ = 0;
    ChildRef* child_next_ = nullptr;
    std::size_t child_left_ = 0;
  };

  ViewRepo();
  ~ViewRepo();
  ViewRepo(const ViewRepo&) = delete;
  ViewRepo& operator=(const ViewRepo&) = delete;

  /// Interns the depth-0 view of a node with the given degree. Thread-safe.
  [[nodiscard]] ViewId leaf(int degree);

  /// Interns a depth-(d+1) view from children of equal depth d, listed in
  /// port order (child j is reached through port j; degree = children size).
  /// Thread-safe; the arena overload batches allocation for parallel
  /// callers (see InternArena).
  [[nodiscard]] ViewId intern(std::span<const ChildRef> children);
  [[nodiscard]] ViewId intern(std::span<const ChildRef> children,
                              InternArena& arena);

  [[nodiscard]] int degree(ViewId v) const { return rec(v).degree; }
  [[nodiscard]] int depth(ViewId v) const { return rec(v).depth; }
  [[nodiscard]] std::span<const ChildRef> children(ViewId v) const {
    const Record& r = rec(v);
    return {r.kids, static_cast<std::size_t>(r.child_count)};
  }

  /// Canonical order on views of equal depth: compares degree, then
  /// children pairwise by (rev_port, recursive order). Total order; a == b
  /// iff the ids are equal (hash-consing). O(1) when both views carry a
  /// canonical rank (rank order reproduces the structural order exactly —
  /// DESIGN.md §8); otherwise falls back to the memoized structural walk
  /// of compare_structural(). The rank fast path validates against the
  /// rank seqlock, so a concurrent assign_ranks renumbering can only send
  /// a query to the (always correct) structural fallback, never corrupt
  /// its verdict.
  [[nodiscard]] std::strong_ordering compare(ViewId a, ViewId b) const;

  /// The reference structural walk behind compare(): iterative descent to
  /// the first structural difference (safe for views of any depth), with
  /// verdicts memoized under a normalized key so the mirrored query is a
  /// lookup. Ranked child pairs met during the walk resolve by rank (when
  /// the seqlock validates the pair). Exposed so tests can pin
  /// compare() == compare_structural() on ranked views.
  [[nodiscard]] std::strong_ordering compare_structural(ViewId a,
                                                        ViewId b) const;

  /// Canonical rank of v among the ranked views of its depth, or kUnranked
  /// when v was interned outside batched refinement. For two ranked views
  /// of equal depth, rank order == compare() order. Callers reading MANY
  /// ranks that must be mutually consistent (argmin scans) bracket the
  /// reads with rank_snapshot()/rank_snapshot_valid().
  [[nodiscard]] std::int32_t rank(ViewId v) const {
    return rec(v).rank.load(std::memory_order_relaxed);
  }

  /// Seqlock bracket for multi-rank readers: take a snapshot token, read
  /// ranks via rank(), then validate. An invalid snapshot means a
  /// concurrent assign_ranks renumbered mid-read — retry or use the
  /// structural fallback. A token from a quiescent repo always validates.
  [[nodiscard]] std::uint64_t rank_snapshot() const;
  [[nodiscard]] bool rank_snapshot_valid(std::uint64_t token) const;

  /// Assigns canonical ranks to the (equal-depth, distinct) ids of one
  /// refinement level — the batched byproduct views::Refiner calls after
  /// each dedup. Ids already ranked are untouched; ids with an unranked
  /// child are skipped (they stay on the structural fallback). The fresh
  /// ids are sorted by the integer key (degree, [(rev_port, child rank)])
  /// — equal to the structural order by induction — and merged into the
  /// depth's existing ranked sequence, re-numbering ranks so rank order
  /// stays the canonical order across refinements of different graphs
  /// sharing this repo. Never interns; ids and all prior compare verdicts
  /// are unaffected. Thread-safe (serialized internally; readers are
  /// protected by the rank seqlock).
  void assign_ranks(std::span<const ViewId> level_distinct);

  /// The depth-x truncation of view v (x <= depth(v)). Iterative worklist
  /// with memoization; safe for views of any depth. Thread-safe.
  [[nodiscard]] ViewId truncate(ViewId v, int x);

  /// Exact statistics of the DAG reachable from v. Max degree/port are
  /// O(1) (maintained at intern time); record/edge counts are computed at
  /// most once per id and memoized, so repeated queries are O(1).
  /// Thread-safe.
  [[nodiscard]] DagStats stats(ViewId v) const;

  /// Number of distinct records reachable from v (DAG size).
  [[nodiscard]] std::size_t dag_records(ViewId v) const {
    return stats(v).records;
  }

  /// Bits of a standard serialized encoding of the DAG rooted at v
  /// (record list with degree, rev-ports and child indices). This is the
  /// message-size metric reported by the simulator. O(1) amortized: a pure
  /// arithmetic function of stats(v).
  [[nodiscard]] std::size_t serialized_size_bits(ViewId v) const;

  /// Exact binary code of a depth-1 view, following Proposition 3.3:
  /// Concat over ports j of Concat(bin(j), bin(a_j), bin(b_j)) where a_j is
  /// the reverse port and b_j the neighbor degree. BuildTrie's depth-1
  /// queries ("length < t", "j-th bit is 1") inspect exactly these bits.
  /// The returned reference stays valid for the repo's lifetime.
  [[nodiscard]] const coding::BitString& encode_depth1(ViewId v);

  /// Number of distinct records interned so far. Deterministic for a fixed
  /// workload regardless of thread count (the record *set* is; only raw id
  /// values can vary under concurrent interning).
  [[nodiscard]] std::size_t size() const noexcept {
    return record_count_.load(std::memory_order_relaxed);
  }

  /// Pre-sizes the per-shard interning tables for a refinement workload
  /// over a graph with n nodes and m edges sweeping about `depth_hint`
  /// levels, so deep sweeps never stall on a mid-run rehash. Sizing is
  /// shrink-safe: a later reservation (or none) lets an over-grown shard
  /// rebuild back down once its occupancy allows, so one huge depth_hint
  /// no longer inflates the index for the rest of the repo's life. Record
  /// segments and child chunks are demand-allocated (geometric segments —
  /// nothing to over-reserve). Reserving is purely an optimization: it
  /// never changes ids and is safe concurrently with interning.
  void reserve_for(std::size_t n, std::size_t m, int depth_hint);

  /// The stable signature hash the interning index keys on — a
  /// position-salted commutative sum (views/sig_hash.hpp) so whole levels
  /// hash column-wise. Exposed so views::Refiner can precompute level
  /// hashes (in parallel, batched) and hand them back through the batched
  /// intern path without rehashing. The AoS form is the reference for
  /// single interns; the SoA overload yields the identical value for the
  /// identical signature (pinned by tests/soa_hash_test.cpp) — it must,
  /// because truncate()'s AoS rebuilds and the batch path land in the
  /// same index.
  [[nodiscard]] static std::uint64_t signature_hash(
      int degree, int depth, std::span<const ChildRef> children);
  [[nodiscard]] static std::uint64_t signature_hash(
      int degree, int depth, std::span<const portgraph::Port> rev_ports,
      std::span<const ViewId> kids);

  /// Persists the whole repo (records, child pool, ranks, memoized DAG
  /// stats, intern index) as one flat relocatable blob, with no sweep
  /// anchors. The repo must be quiescent (no concurrent interning).
  /// Thin wrapper over views::save_snapshot — see views/snapshot.hpp for
  /// the anchor-carrying form and the format documentation.
  void save(const std::string& path) const;

  /// Loads a snapshot written by save()/save_snapshot (anchors, if any,
  /// are ignored — use views::load_snapshot to get them). Throws
  /// coding::BlobError on truncated/corrupt/version-mismatched files.
  [[nodiscard]] static std::unique_ptr<ViewRepo> load(const std::string& path,
                                                      LoadMode mode);

 private:
  friend class Refiner;
  friend struct SnapshotAccess;  // views/snapshot.cpp (DESIGN.md §13)

  struct Record {
    const ChildRef* kids = nullptr;  ///< contiguous, never moves
    std::int32_t degree = 0;
    std::int32_t depth = 0;
    std::int32_t child_count = 0;
    // Incremental DAG-wide maxima, fixed at intern time: max composes over
    // shared substructure, so these equal the maxima over the reachable DAG.
    std::int32_t sub_max_degree = 0;
    std::int32_t sub_max_port = 0;
    // Canonical rank within this record's depth (assign_ranks), or
    // kUnranked. Values may be re-numbered when later levels merge in new
    // views, but the relative order of ranked views never changes; readers
    // use relaxed loads under the rank seqlock.
    std::atomic<std::int32_t> rank{kUnranked};
  };

  // ------------------------------------------------ segmented records
  // Geometric segments: segment k holds kSegBase * 2^k records starting at
  // id kSegBase * (2^k - 1). Segments are allocated on demand under
  // seg_mu_ and published with a release store; they never move, so rec()
  // needs only an acquire load of the owning segment pointer.
  // Segment 0 is deliberately generous (64K records, 2MB, allocated on
  // first intern): every id below it takes the branch-predicted fast path
  // in rec(), and most workloads — including every ordering kernel the V2
  // cells time — never leave it.
  static constexpr std::size_t kSegBaseLog2 = 16;  // 65536 records in seg 0
  static constexpr std::size_t kSegBase = std::size_t{1} << kSegBaseLog2;
  static constexpr std::size_t kNumSegments = 16;  // covers > 2^31 ids

  [[nodiscard]] const Record& rec(ViewId v) const {
    ANOLE_DCHECK(v >= 0 &&
                 v < next_id_.load(std::memory_order_relaxed));
    std::size_t id = static_cast<std::size_t>(v);
    // Segment-0 fast path: most workloads never outgrow the first 4096
    // records, and the branch is perfectly predicted in scan loops —
    // skipping the bit_width address chain there recovers most of the
    // flat-vector speed the segmented layout gave up.
    if (id < kSegBase) [[likely]]
      return segments_[0].load(std::memory_order_acquire)[id];
    std::size_t k = seg_index(id);
    const Record* seg = segments_[k].load(std::memory_order_acquire);
    return seg[id - seg_first(k)];
  }
  [[nodiscard]] Record& mutable_rec(ViewId v) {
    return const_cast<Record&>(rec(v));
  }
  /// Segment holding `id` (geometric: segment k holds kSegBase<<k
  /// records) and the first id of segment k. Inline — rec() is the
  /// hottest address computation in the repo.
  [[nodiscard]] static std::size_t seg_index(std::size_t id) {
    return static_cast<std::size_t>(
        std::bit_width((id >> kSegBaseLog2) + 1) - 1);
  }
  [[nodiscard]] static std::size_t seg_first(std::size_t k) {
    return kSegBase * ((std::size_t{1} << k) - 1);
  }
  /// Allocates any missing segments so ids < `hi` are addressable.
  void ensure_segments(std::size_t hi);

  // ------------------------------------------------- sharded index
  struct IndexSlot {
    std::atomic<std::uint64_t> hash{0};
    std::atomic<ViewId> id{kInvalidView};
  };
  struct IndexTable {
    explicit IndexTable(std::size_t capacity)
        : mask(capacity - 1), slots(capacity) {}
    std::size_t mask;
    std::vector<IndexSlot> slots;
  };
  struct alignas(64) Shard {
    std::atomic<IndexTable*> table{nullptr};
    std::mutex mu;
    std::size_t used = 0;  ///< occupied slots; guarded by mu
    // Every table ever built for this shard, the live one included:
    // retiring instead of freeing keeps lock-free readers safe against a
    // concurrent rebuild (a stale table yields at worst a miss, which the
    // insert path re-checks under mu). Guarded by mu; freed at destruction.
    std::vector<std::unique_ptr<IndexTable>> tables;
  };
  static constexpr std::size_t kShardBits = 6;  // 64 shards
  static constexpr std::size_t kShards = std::size_t{1} << kShardBits;

  [[nodiscard]] Shard& shard_for(std::uint64_t hash) const {
    return shards_[hash >> (64 - kShardBits)];
  }
  /// Lock-free probe of one table; kInvalidView on miss. `Sig` is either
  /// of the signature adapters in view_repo.cpp (AoS span or SoA column
  /// pair) — one templated core, two layouts, zero per-entry indirection.
  template <typename Sig>
  [[nodiscard]] ViewId probe_table(const IndexTable& t, std::uint64_t hash,
                                   int degree, int depth,
                                   const Sig& sig) const;
  /// Rebuilds `sh`'s table at `capacity` slots (callers hold sh.mu).
  IndexTable* shard_rebuild(Shard& sh, std::size_t capacity);

  template <typename Sig>
  [[nodiscard]] bool record_equals(ViewId id, int degree, int depth,
                                   const Sig& sig) const;

  // --------------------------------------------------- interning core
  [[nodiscard]] ViewId intern_impl(int degree, int depth,
                                   std::span<const ChildRef> children,
                                   InternArena* arena);

  /// Interns a record whose signature hash the caller already computed
  /// (must equal the signature's signature_hash). The batched entry
  /// points used by Refiner: the AoS span form, and the SoA form taking
  /// the rev_port and child-id columns directly so the refiner never
  /// materializes an AoS signature (record storage is written straight
  /// from the columns). arena == nullptr allocates the id with one atomic
  /// fetch-add (dense sequential ids under a single thread).
  [[nodiscard]] ViewId intern_hashed(int degree, int depth,
                                     std::span<const ChildRef> children,
                                     std::uint64_t hash,
                                     InternArena* arena = nullptr);
  [[nodiscard]] ViewId intern_hashed(int degree, int depth,
                                     std::span<const portgraph::Port> rev_ports,
                                     std::span<const ViewId> kids,
                                     std::uint64_t hash,
                                     InternArena* arena = nullptr);
  template <typename Sig>
  [[nodiscard]] ViewId intern_hashed_impl(int degree, int depth,
                                          const Sig& sig, std::uint64_t hash,
                                          InternArena* arena);

  /// Claims one id (refilling the arena's block when empty).
  [[nodiscard]] ViewId arena_claim_id(InternArena& arena);
  /// Claims contiguous child storage from the arena's current chunk.
  [[nodiscard]] ChildRef* arena_claim_children(InternArena& arena,
                                               std::size_t count);
  /// Child storage for an arena-less intern (guarded by chunk_mu_).
  [[nodiscard]] ChildRef* shared_claim_children(std::size_t count);

  /// Fills the record for `id` (fields + child copy + DAG maxima).
  template <typename Sig>
  void write_record(ViewId id, int degree, int depth, const Sig& sig,
                    ChildRef* storage);

  /// One consistent seqlock read of two ranks; false when either is
  /// unranked or a renumber kept interfering (callers then use the
  /// structural path). Takes the records, not the ids, so hot callers
  /// resolve each segment lookup exactly once.
  [[nodiscard]] bool ranked_pair(const Record& a, const Record& b,
                                 std::int32_t& ra, std::int32_t& rb) const;

  // ------------------------------------------------------ traversals
  /// Marks v visited in the current epoch; returns false if already
  /// marked. Callers hold stats_mu_.
  [[nodiscard]] bool mark_visited(ViewId v) const;
  void begin_epoch() const;

  // ---------------------------------------------------------- members
  mutable Shard shards_[kShards];
  std::atomic<Record*> segments_[kNumSegments] = {};
  // Snapshot mmap state (LoadMode::Mmap): segments whose bit is set in
  // mapped_segments_ point into [mmap_base_, mmap_base_ + mmap_len_) and
  // are unmapped — not delete[]d — at destruction. The child pool of a
  // mapped repo also lives in the mapping (records reference it by
  // pointer; its pages stay clean/shared). Set only during load, before
  // the repo is published to any other thread.
  void* mmap_base_ = nullptr;
  std::size_t mmap_len_ = 0;
  std::uint32_t mapped_segments_ = 0;
  std::mutex seg_mu_;                ///< segment allocation
  std::atomic<ViewId> next_id_{0};   ///< id high-water mark
  std::atomic<std::size_t> record_count_{0};

  std::mutex chunk_mu_;  ///< child chunk list + shared cursor
  std::vector<std::unique_ptr<ChildRef[]>> child_chunks_;
  ChildRef* shared_child_next_ = nullptr;
  std::size_t shared_child_left_ = 0;

  // Rank state: ranked_by_depth_[d] is the ranked ids of depth d in
  // canonical order (rec(ranked_by_depth_[d][i]).rank == i), mutated only
  // under rank_mu_; rank_epoch_ is the seqlock readers validate against
  // (odd while a renumber is in flight).
  std::mutex rank_mu_;
  std::vector<std::vector<ViewId>> ranked_by_depth_;
  mutable std::atomic<std::uint64_t> rank_epoch_{0};

  // Memoization tables, each behind a small mutex (unordered_map never
  // invalidates node references, so encode_depth1 can hand out stable
  // references while other threads insert).
  mutable std::mutex compare_mu_;
  mutable std::unordered_map<std::uint64_t, std::int8_t> compare_memo_;
  std::mutex truncate_mu_;
  std::unordered_map<std::uint64_t, ViewId> truncate_memo_;
  std::mutex depth1_mu_;
  std::unordered_map<ViewId, coding::BitString> depth1_code_memo_;

  /// Lazily-computed distinct record/edge counts of the reachable DAG.
  /// records == 0 marks a not-yet-computed entry (every DAG has >= 1).
  struct CountEntry {
    std::uint64_t records = 0;
    std::uint64_t edges = 0;
  };
  mutable std::mutex stats_mu_;
  mutable std::vector<CountEntry> count_memo_;
  // Reusable epoch-marked visited set + traversal stack (under stats_mu_).
  mutable std::vector<std::uint32_t> visit_mark_;
  mutable std::uint32_t visit_epoch_ = 0;
  mutable std::vector<ViewId> visit_stack_;

 public:
  /// Bulk rank reads for tight scans (argmin, sort-key extraction): the
  /// segment pointers are resolved ONCE at construction, so each read is
  /// plain array math plus one relaxed atomic load — the per-call
  /// acquire load of rec() cannot be hoisted out of a scan loop by the
  /// compiler, and costs ~3x on a pure min-rank pass. Only valid for ids
  /// interned before construction; for a mutually consistent multi-rank
  /// read, bracket the scan with rank_snapshot()/rank_snapshot_valid()
  /// exactly as with rank().
  class RankReader {
   public:
    explicit RankReader(const ViewRepo& repo) {
      for (std::size_t k = 0; k < kNumSegments; ++k)
        segs_[k] = repo.segments_[k].load(std::memory_order_acquire);
    }
    [[nodiscard]] std::int32_t rank(ViewId v) const {
      std::size_t id = static_cast<std::size_t>(v);
      if (id < kSegBase) [[likely]]
        return segs_[0][id].rank.load(std::memory_order_relaxed);
      std::size_t k = seg_index(id);
      return segs_[k][id - seg_first(k)].rank.load(
          std::memory_order_relaxed);
    }

   private:
    const Record* segs_[kNumSegments];
  };
};

}  // namespace anole::views
