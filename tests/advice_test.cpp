// Tests for the advice machinery of Theorem 3.1: trie/nested-list codecs,
// LocalLabel/RetrieveLabel injectivity (Claims 3.2/3.4/3.7), BuildTrie
// structure (Claims 3.1/3.6), ComputeAdvice output size (Theorem 3.1 part
// 1), and full advice round-trips.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "advice/build_trie.hpp"
#include "advice/min_time.hpp"
#include "families/necklace.hpp"
#include "families/ring_of_cliques.hpp"
#include "portgraph/builders.hpp"
#include "views/profile.hpp"

namespace anole::advice {
namespace {

using portgraph::NodeId;
using portgraph::PortGraph;
using views::ViewId;
using views::ViewRepo;

TEST(Trie, SingleLeaf) {
  Trie t = Trie::single_leaf();
  EXPECT_EQ(t.num_leaves(), 1);
  EXPECT_TRUE(t.node(t.root()).is_leaf);
}

TEST(Trie, InternalCombines) {
  Trie t = Trie::internal(1, 5, Trie::single_leaf(),
                          Trie::internal(0, 3, Trie::single_leaf(),
                                         Trie::single_leaf()));
  EXPECT_EQ(t.num_leaves(), 3);
  EXPECT_EQ(t.size(), 5u);  // 2|S|-1 nodes for |S| leaves (Claim 3.1)
  const Trie::Node& root = t.node(t.root());
  EXPECT_FALSE(root.is_leaf);
  EXPECT_EQ(root.a, 1u);
  EXPECT_EQ(root.b, 5u);
}

TEST(Trie, CodecRoundTrip) {
  Trie t = Trie::internal(
      0, 42,
      Trie::internal(1, 7, Trie::single_leaf(), Trie::single_leaf()),
      Trie::single_leaf());
  Trie back = Trie::from_bits(t.to_bits());
  EXPECT_TRUE(back == t);
  EXPECT_EQ(back.num_leaves(), 3);
}

TEST(Trie, CodecRejectsGarbage) {
  EXPECT_THROW(Trie::from_bits(coding::BitString::from_string("1111")),
               std::logic_error);
}

TEST(NestedListCodec, EmptyRoundTrip) {
  NestedList e2;
  EXPECT_TRUE(e2.to_bits().empty());
  NestedList back = NestedList::from_bits(e2.to_bits());
  EXPECT_TRUE(back.levels().empty());
}

TEST(NestedListCodec, RoundTripWithEmptyAndFullLevels) {
  NestedList e2;
  e2.append_level({2, {}});
  NestedList::Level l3;
  l3.depth = 3;
  l3.couples.emplace_back(4, Trie::single_leaf());
  l3.couples.emplace_back(
      9, Trie::internal(2, 2, Trie::single_leaf(), Trie::single_leaf()));
  e2.append_level(std::move(l3));
  NestedList back = NestedList::from_bits(e2.to_bits());
  EXPECT_TRUE(back == e2);
  ASSERT_NE(back.find(3, 9), nullptr);
  EXPECT_EQ(back.find(3, 9)->num_leaves(), 2);
  EXPECT_EQ(back.find(3, 5), nullptr);
  EXPECT_EQ(back.find(2, 1), nullptr);
  EXPECT_NE(back.level(2), nullptr);
  EXPECT_EQ(back.level(7), nullptr);
}

TEST(NestedList, RejectsOutOfOrderLevels) {
  NestedList e2;
  e2.append_level({3, {}});
  EXPECT_THROW(e2.append_level({2, {}}), std::logic_error);
}

// Claims 3.1 + 3.2: depth-1 BuildTrie has 2|S|-1 nodes and LocalLabel is
// an injection into {1..|S|}.
TEST(BuildTrie, DepthOneDiscriminatesAllViews) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    PortGraph g = portgraph::random_connected(16, 12, seed);
    ViewRepo repo;
    views::ViewProfile profile = views::compute_profile(g, repo, 1);
    std::vector<ViewId> s1(profile.ids[1]);
    std::sort(s1.begin(), s1.end());
    s1.erase(std::unique(s1.begin(), s1.end()), s1.end());

    Trie e1 = build_trie_depth1(repo, s1);
    EXPECT_EQ(e1.num_leaves(), static_cast<int>(s1.size()));
    EXPECT_EQ(e1.size(), 2 * s1.size() - 1);

    NestedList empty;
    Labeler labeler(repo, e1, empty);
    std::set<std::uint64_t> labels;
    for (ViewId b : s1) {
      std::uint64_t l = labeler.local_label(b, {}, e1);
      EXPECT_GE(l, 1u);
      EXPECT_LE(l, s1.size());
      labels.insert(l);
    }
    EXPECT_EQ(labels.size(), s1.size());  // injective
  }
}

// Claims 3.4 + 3.7: RetrieveLabel is injective on the views of each depth
// and lands in {1..|S_d|}.
TEST(RetrieveLabel, InjectiveAtEveryDepth) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    PortGraph g = portgraph::random_connected(14, 6, seed);
    ViewRepo repo;
    views::ViewProfile profile = views::compute_profile(g, repo, 1);
    if (!profile.feasible) continue;
    MinTimeAdvice adv = compute_advice(g, repo, profile);
    Labeler labeler(repo, adv.e1, adv.e2);
    for (int d = 1; d <= profile.election_index; ++d) {
      std::vector<ViewId> views_d(profile.ids[static_cast<std::size_t>(d)]);
      std::sort(views_d.begin(), views_d.end());
      views_d.erase(std::unique(views_d.begin(), views_d.end()),
                    views_d.end());
      std::set<std::uint64_t> labels;
      for (ViewId b : views_d) {
        std::uint64_t l = labeler.retrieve_label(b);
        EXPECT_GE(l, 1u);
        EXPECT_LE(l, views_d.size()) << "depth " << d;
        labels.insert(l);
      }
      EXPECT_EQ(labels.size(), views_d.size()) << "depth " << d;
    }
  }
}

// Oracle/node agreement: a fresh Labeler (as each node creates) produces
// the same labels as the oracle's.
TEST(RetrieveLabel, DeterministicAcrossLabelerInstances) {
  PortGraph g = portgraph::random_connected(12, 8, 3);
  ViewRepo repo;
  views::ViewProfile profile = views::compute_profile(g, repo, 1);
  ASSERT_TRUE(profile.feasible);
  MinTimeAdvice adv = compute_advice(g, repo, profile);
  int phi = profile.election_index;
  for (std::size_t v = 0; v < g.n(); ++v) {
    Labeler a(repo, adv.e1, adv.e2);
    Labeler b(repo, adv.e1, adv.e2);
    ViewId view = profile.view(phi, static_cast<NodeId>(v));
    EXPECT_EQ(a.retrieve_label(view), b.retrieve_label(view));
  }
}

TEST(ComputeAdvice, LabelsArePermutationAndBfsTreeConsistent) {
  for (std::uint64_t seed = 10; seed <= 14; ++seed) {
    PortGraph g = portgraph::random_connected(18, 14, seed);
    ViewRepo repo;
    views::ViewProfile profile = views::compute_profile(g, repo, 1);
    ASSERT_TRUE(profile.feasible);
    MinTimeAdvice adv = compute_advice(g, repo, profile);

    Labeler labeler(repo, adv.e1, adv.e2);
    std::set<std::uint64_t> labels;
    for (std::size_t v = 0; v < g.n(); ++v)
      labels.insert(labeler.retrieve_label(
          profile.view(profile.election_index, static_cast<NodeId>(v))));
    EXPECT_EQ(labels.size(), g.n());
    EXPECT_EQ(*labels.begin(), 1u);
    EXPECT_EQ(*labels.rbegin(), g.n());

    // The BFS tree spans all labels and its root is labeled 1.
    EXPECT_EQ(adv.bfs_tree.size(), g.n());
    EXPECT_EQ(adv.bfs_tree.label, 1u);
    for (std::uint64_t l = 1; l <= g.n(); ++l)
      EXPECT_NE(adv.bfs_tree.find(l), nullptr);
  }
}

TEST(ComputeAdvice, BfsTreePathsAreRealGraphPaths) {
  PortGraph g = portgraph::random_connected(15, 10, 21);
  ViewRepo repo;
  views::ViewProfile profile = views::compute_profile(g, repo, 1);
  ASSERT_TRUE(profile.feasible);
  MinTimeAdvice adv = compute_advice(g, repo, profile);
  Labeler labeler(repo, adv.e1, adv.e2);
  int phi = profile.election_index;
  for (std::size_t v = 0; v < g.n(); ++v) {
    std::uint64_t label = labeler.retrieve_label(
        profile.view(phi, static_cast<NodeId>(v)));
    std::vector<int> ports = adv.bfs_tree.path_ports(label, 1);
    auto nodes = g.walk(static_cast<NodeId>(v), ports);
    ASSERT_TRUE(nodes.has_value()) << "node " << v;
    // Simple path (BFS-tree paths are).
    std::set<NodeId> distinct(nodes->begin(), nodes->end());
    EXPECT_EQ(distinct.size(), nodes->size());
  }
}

TEST(ComputeAdvice, AdviceRoundTripsThroughBits) {
  for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{5}}) {
    PortGraph g = portgraph::random_connected(13, 9, seed);
    ViewRepo repo;
    views::ViewProfile profile = views::compute_profile(g, repo, 1);
    ASSERT_TRUE(profile.feasible);
    MinTimeAdvice adv = compute_advice(g, repo, profile);
    coding::BitString bits = adv.to_bits();
    MinTimeAdvice back = MinTimeAdvice::from_bits(bits);
    EXPECT_EQ(back.phi, adv.phi);
    EXPECT_TRUE(back.e1 == adv.e1);
    EXPECT_TRUE(back.e2 == adv.e2);
    EXPECT_TRUE(back.bfs_tree == adv.bfs_tree);
    EXPECT_EQ(back.to_bits(), bits);
  }
}

// Theorem 3.1 part 1: advice length O(n log n) — check a concrete constant
// across sizes and graph families.
TEST(ComputeAdvice, SizeIsNearLinear) {
  for (std::size_t n : {std::size_t{10}, std::size_t{20}, std::size_t{40},
                        std::size_t{80}}) {
    PortGraph g = portgraph::random_connected(n, n / 2, 7);
    ViewRepo repo;
    views::ViewProfile profile = views::compute_profile(g, repo, 1);
    ASSERT_TRUE(profile.feasible);
    MinTimeAdvice adv = compute_advice(g, repo, profile);
    double bits = static_cast<double>(adv.to_bits().size());
    double budget = 80.0 * static_cast<double>(n) *
                    std::log2(static_cast<double>(n));
    EXPECT_LE(bits, budget) << "n=" << n;
  }
}

// Necklaces exercise the deep (phi > 1) trie machinery.
TEST(ComputeAdvice, WorksOnNecklacesWithLargePhi) {
  for (int phi : {2, 3, 5}) {
    families::Necklace nk = families::necklace_member(5, phi, 3);
    ViewRepo repo;
    views::ViewProfile profile = views::compute_profile(nk.graph, repo, 1);
    ASSERT_TRUE(profile.feasible);
    ASSERT_EQ(profile.election_index, phi);
    MinTimeAdvice adv = compute_advice(nk.graph, repo, profile);
    EXPECT_EQ(adv.phi, static_cast<std::uint64_t>(phi));
    // E2 has exactly the levels 2..phi.
    EXPECT_EQ(adv.e2.levels().size(), static_cast<std::size_t>(phi - 1));
    Labeler labeler(repo, adv.e1, adv.e2);
    std::set<std::uint64_t> labels;
    for (std::size_t v = 0; v < nk.graph.n(); ++v)
      labels.insert(labeler.retrieve_label(
          profile.view(phi, static_cast<NodeId>(v))));
    EXPECT_EQ(labels.size(), nk.graph.n());
  }
}

// Distinct members of G_k must receive distinct advice under our oracle
// (consistency side of Claim 3.9).
TEST(ComputeAdvice, DistinctRingOfCliquesMembersGetDistinctAdvice) {
  std::set<std::string> advices;
  for (std::uint64_t seed : {std::uint64_t{0}, std::uint64_t{1},
                             std::uint64_t{2}, std::uint64_t{3}}) {
    families::RingOfCliques g = families::g_family_member(6, seed);
    ViewRepo repo;
    views::ViewProfile profile = views::compute_profile(g.graph, repo, 1);
    ASSERT_TRUE(profile.feasible);
    MinTimeAdvice adv = compute_advice(g.graph, repo, profile);
    advices.insert(adv.to_bits().to_string());
  }
  EXPECT_GE(advices.size(), 3u);  // distinct permutations -> distinct advice
}


// The generalized exchange horizon (paper Section 5 open question): advice
// computed for any depth tau >= phi still yields a label permutation, and
// Elect with it runs in exactly tau rounds.
TEST(ComputeAdvice, GeneralizedDepthStillInjective) {
  PortGraph g = portgraph::random_connected(12, 8, 19);
  ViewRepo repo;
  views::ViewProfile profile = views::compute_profile(g, repo, 1);
  ASSERT_TRUE(profile.feasible);
  int phi = profile.election_index;
  for (int tau : {phi, phi + 1, phi + 3}) {
    MinTimeAdvice adv = compute_advice(g, repo, profile, tau);
    EXPECT_EQ(adv.phi, static_cast<std::uint64_t>(tau));
    Labeler labeler(repo, adv.e1, adv.e2);
    views::ViewProfile p2 = views::compute_profile(g, repo, tau);
    std::set<std::uint64_t> labels;
    for (std::size_t v = 0; v < g.n(); ++v)
      labels.insert(labeler.retrieve_label(p2.view(tau, static_cast<NodeId>(v))));
    EXPECT_EQ(labels.size(), g.n()) << "tau " << tau;
  }
  EXPECT_THROW(compute_advice(g, repo, profile, phi - 1), std::logic_error);
}

}  // namespace
}  // namespace anole::advice
