// Tests for the asynchronous execution with time-stamp synchronizer:
// under ANY adversarial delivery schedule, every protocol produces
// bit-identical outputs to the synchronous run (the paper's Section 1
// remark), and the synchronizer's bookkeeping stays consistent.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "advice/min_time.hpp"
#include "election/elect_program.hpp"
#include "election/generic.hpp"
#include "election/verify.hpp"
#include "portgraph/builders.hpp"
#include "sim/async.hpp"
#include "sim/full_info.hpp"
#include "views/profile.hpp"

namespace anole::sim {
namespace {

using portgraph::PortGraph;

std::vector<std::unique_ptr<NodeProgram>> elect_programs(
    const PortGraph& g, views::ViewRepo& repo) {
  views::ViewProfile profile = views::compute_profile(g, repo, 1);
  auto adv = std::make_shared<const advice::MinTimeAdvice>(
      advice::compute_advice(g, repo, profile));
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (std::size_t v = 0; v < g.n(); ++v)
    programs.push_back(std::make_unique<election::ElectProgram>(adv));
  return programs;
}

std::vector<std::unique_ptr<NodeProgram>> generic_programs(
    const PortGraph& g, std::uint64_t x) {
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (std::size_t v = 0; v < g.n(); ++v)
    programs.push_back(std::make_unique<election::GenericProgram>(x));
  return programs;
}

TEST(Async, ElectOutputsMatchSynchronousUnderManySchedules) {
  PortGraph g = portgraph::random_connected(14, 9, 3);
  views::ViewRepo repo;

  auto sync_programs = elect_programs(g, repo);
  Engine sync_engine(g, repo);
  RunMetrics sync = sync_engine.run(sync_programs, 50);
  ASSERT_FALSE(sync.timed_out);

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto programs = elect_programs(g, repo);
    AsyncEngine engine(g, repo);
    AsyncMetrics metrics = engine.run(programs, 50, seed);
    ASSERT_FALSE(metrics.timed_out) << "seed " << seed;
    EXPECT_EQ(metrics.outputs, sync.outputs) << "seed " << seed;
    EXPECT_EQ(metrics.decision_round, sync.decision_round)
        << "seed " << seed;
  }
}

TEST(Async, GenericOutputsMatchSynchronous) {
  PortGraph g = portgraph::random_connected(12, 8, 7);
  views::ViewRepo repo;
  views::ViewProfile profile = views::compute_profile(g, repo);
  ASSERT_TRUE(profile.feasible);
  std::uint64_t x =
      static_cast<std::uint64_t>(profile.election_index) + 1;

  auto sync_programs = generic_programs(g, x);
  Engine sync_engine(g, repo);
  RunMetrics sync = sync_engine.run(sync_programs, 100);
  ASSERT_FALSE(sync.timed_out);

  for (std::uint64_t seed : {std::uint64_t{11}, std::uint64_t{22},
                             std::uint64_t{33}}) {
    auto programs = generic_programs(g, x);
    AsyncEngine engine(g, repo);
    AsyncMetrics metrics = engine.run(programs, 100, seed);
    ASSERT_FALSE(metrics.timed_out);
    EXPECT_EQ(metrics.outputs, sync.outputs) << "seed " << seed;
    election::VerifyResult verdict =
        election::verify_election(g, metrics.outputs);
    EXPECT_TRUE(verdict.ok) << verdict.error;
  }
}

TEST(Async, DeliveryCountAccountsAllRounds) {
  // Every node must receive deg(v) messages per completed round; the
  // adversary delivers each exactly once.
  PortGraph g = portgraph::path(5);
  views::ViewRepo repo;
  auto programs = elect_programs(g, repo);
  AsyncEngine engine(g, repo);
  AsyncMetrics metrics = engine.run(programs, 50, 99);
  ASSERT_FALSE(metrics.timed_out);
  // Lower bound: everyone completed `decision_round` rounds.
  std::size_t expected_min = 0;
  for (std::size_t v = 0; v < g.n(); ++v)
    expected_min += static_cast<std::size_t>(
                        g.degree(static_cast<portgraph::NodeId>(v))) *
                    static_cast<std::size_t>(metrics.decision_round[v]);
  EXPECT_GE(metrics.deliveries, expected_min);
}

TEST(Async, RoundCapReportsTimeout) {
  PortGraph g = portgraph::path(4);
  views::ViewRepo repo;
  // Generic with a huge x never finishes within the cap.
  auto programs = generic_programs(g, 1000);
  AsyncEngine engine(g, repo);
  AsyncMetrics metrics = engine.run(programs, 5, 1);
  EXPECT_TRUE(metrics.timed_out);
  // The partial state must still be reported consistently — a timeout is
  // a diagnosis, not a silent empty result.
  EXPECT_GT(metrics.deliveries, 0u);
  // The overrunning node finishes the round that tripped the cap, so the
  // reported maximum is at most max_rounds + 1.
  EXPECT_LE(metrics.max_round, 5 + 1);
  ASSERT_EQ(metrics.local_rounds.size(), g.n());
  ASSERT_EQ(metrics.decision_round.size(), g.n());
  ASSERT_EQ(metrics.outputs.size(), g.n());
  for (std::size_t v = 0; v < g.n(); ++v) {
    EXPECT_GE(metrics.local_rounds[v], 0);
    EXPECT_LE(metrics.local_rounds[v], metrics.max_round);
    // Nobody can decide: Generic(1000) needs ~1000 rounds.
    EXPECT_EQ(metrics.decision_round[v], -1);
    EXPECT_TRUE(metrics.outputs[v].empty());
  }
}

/// COM for a fixed number of rounds, then a content-free decision — lets
/// the schedule sweeps cover the paper's *infeasible* families (ring,
/// torus) where no election protocol applies but the synchronizer
/// equivalence must still hold.
class ComForRounds final : public FullInfoProgram {
 public:
  explicit ComForRounds(int target) : target_(target) {}
  [[nodiscard]] bool has_output() const override { return done_; }
  [[nodiscard]] std::vector<int> output() const override { return {}; }

 protected:
  void on_view(int rounds) override {
    if (rounds >= target_) done_ = true;
  }

 private:
  int target_;
  bool done_ = false;
};

std::vector<std::unique_ptr<NodeProgram>> com_programs(const PortGraph& g,
                                                       int rounds) {
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (std::size_t v = 0; v < g.n(); ++v)
    programs.push_back(std::make_unique<ComForRounds>(rounds));
  return programs;
}

void expect_local_rounds_consistent(const PortGraph& g,
                                    const AsyncMetrics& metrics) {
  ASSERT_EQ(metrics.local_rounds.size(), g.n());
  int max_seen = 0;
  for (std::size_t v = 0; v < g.n(); ++v) {
    // A node's round only ever increments, so its decision round can
    // never exceed its final local round.
    EXPECT_GE(metrics.local_rounds[v], metrics.decision_round[v]);
    max_seen = std::max(max_seen, metrics.local_rounds[v]);
  }
  EXPECT_EQ(max_seen, metrics.max_round);
}

TEST(Async, HundredSeedSweepMatchesSynchronousOnThreeFamilies) {
  struct Case {
    const char* name;
    PortGraph g;
    std::vector<std::unique_ptr<NodeProgram>> (*make)(const PortGraph&,
                                                      views::ViewRepo&);
  };
  // ring and torus are infeasible (vertex-transitive): COM for a fixed
  // round count exercises the synchronizer there; the random graph runs
  // the real Theorem 3.1 election.
  auto make_com = [](const PortGraph& g, views::ViewRepo&) {
    return com_programs(g, 6);
  };
  auto make_elect = [](const PortGraph& g, views::ViewRepo& repo) {
    return elect_programs(g, repo);
  };
  Case cases[] = {
      {"ring(12)", portgraph::ring(12), +make_com},
      {"torus(3,4)", portgraph::torus(3, 4), +make_com},
      {"random(12,+8,seed7)", portgraph::random_connected(12, 8, 7),
       +make_elect},
  };
  for (Case& c : cases) {
    views::ViewRepo repo;
    auto sync_programs = c.make(c.g, repo);
    Engine sync_engine(c.g, repo);
    RunMetrics sync = sync_engine.run(sync_programs, 60);
    ASSERT_FALSE(sync.timed_out) << c.name;
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
      auto programs = c.make(c.g, repo);
      AsyncEngine engine(c.g, repo);
      AsyncMetrics metrics =
          engine.run(programs, 60, AdversaryKind::kRandom, seed);
      ASSERT_FALSE(metrics.timed_out) << c.name << " seed " << seed;
      ASSERT_EQ(metrics.outputs, sync.outputs) << c.name << " seed " << seed;
      ASSERT_EQ(metrics.decision_round, sync.decision_round)
          << c.name << " seed " << seed;
      expect_local_rounds_consistent(c.g, metrics);
    }
  }
}

TEST(Async, AllAdversariesMatchSynchronous) {
  PortGraph g = portgraph::random_connected(14, 9, 3);
  views::ViewRepo repo;
  auto sync_programs = elect_programs(g, repo);
  Engine sync_engine(g, repo);
  RunMetrics sync = sync_engine.run(sync_programs, 50);
  ASSERT_FALSE(sync.timed_out);

  for (AdversaryKind kind :
       {AdversaryKind::kRoundRobin, AdversaryKind::kRandom,
        AdversaryKind::kCentralizer, AdversaryKind::kWorstCaseGreedy}) {
    auto programs = elect_programs(g, repo);
    AsyncEngine engine(g, repo);
    AsyncMetrics metrics = engine.run(programs, 50, kind, 5);
    ASSERT_FALSE(metrics.timed_out) << adversary_name(kind);
    EXPECT_EQ(metrics.outputs, sync.outputs) << adversary_name(kind);
    EXPECT_EQ(metrics.decision_round, sync.decision_round)
        << adversary_name(kind);
    expect_local_rounds_consistent(g, metrics);
  }
}

}  // namespace
}  // namespace anole::sim
