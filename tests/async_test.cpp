// Tests for the asynchronous execution with time-stamp synchronizer:
// under ANY adversarial delivery schedule, every protocol produces
// bit-identical outputs to the synchronous run (the paper's Section 1
// remark), and the synchronizer's bookkeeping stays consistent.

#include <gtest/gtest.h>

#include <memory>

#include "advice/min_time.hpp"
#include "election/elect_program.hpp"
#include "election/generic.hpp"
#include "election/verify.hpp"
#include "portgraph/builders.hpp"
#include "sim/async.hpp"
#include "views/profile.hpp"

namespace anole::sim {
namespace {

using portgraph::PortGraph;

std::vector<std::unique_ptr<NodeProgram>> elect_programs(
    const PortGraph& g, views::ViewRepo& repo) {
  views::ViewProfile profile = views::compute_profile(g, repo, 1);
  auto adv = std::make_shared<const advice::MinTimeAdvice>(
      advice::compute_advice(g, repo, profile));
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (std::size_t v = 0; v < g.n(); ++v)
    programs.push_back(std::make_unique<election::ElectProgram>(adv));
  return programs;
}

std::vector<std::unique_ptr<NodeProgram>> generic_programs(
    const PortGraph& g, std::uint64_t x) {
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (std::size_t v = 0; v < g.n(); ++v)
    programs.push_back(std::make_unique<election::GenericProgram>(x));
  return programs;
}

TEST(Async, ElectOutputsMatchSynchronousUnderManySchedules) {
  PortGraph g = portgraph::random_connected(14, 9, 3);
  views::ViewRepo repo;

  auto sync_programs = elect_programs(g, repo);
  Engine sync_engine(g, repo);
  RunMetrics sync = sync_engine.run(sync_programs, 50);
  ASSERT_FALSE(sync.timed_out);

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto programs = elect_programs(g, repo);
    AsyncEngine engine(g, repo);
    AsyncMetrics metrics = engine.run(programs, 50, seed);
    ASSERT_FALSE(metrics.timed_out) << "seed " << seed;
    EXPECT_EQ(metrics.outputs, sync.outputs) << "seed " << seed;
    EXPECT_EQ(metrics.decision_round, sync.decision_round)
        << "seed " << seed;
  }
}

TEST(Async, GenericOutputsMatchSynchronous) {
  PortGraph g = portgraph::random_connected(12, 8, 7);
  views::ViewRepo repo;
  views::ViewProfile profile = views::compute_profile(g, repo);
  ASSERT_TRUE(profile.feasible);
  std::uint64_t x =
      static_cast<std::uint64_t>(profile.election_index) + 1;

  auto sync_programs = generic_programs(g, x);
  Engine sync_engine(g, repo);
  RunMetrics sync = sync_engine.run(sync_programs, 100);
  ASSERT_FALSE(sync.timed_out);

  for (std::uint64_t seed : {std::uint64_t{11}, std::uint64_t{22},
                             std::uint64_t{33}}) {
    auto programs = generic_programs(g, x);
    AsyncEngine engine(g, repo);
    AsyncMetrics metrics = engine.run(programs, 100, seed);
    ASSERT_FALSE(metrics.timed_out);
    EXPECT_EQ(metrics.outputs, sync.outputs) << "seed " << seed;
    election::VerifyResult verdict =
        election::verify_election(g, metrics.outputs);
    EXPECT_TRUE(verdict.ok) << verdict.error;
  }
}

TEST(Async, DeliveryCountAccountsAllRounds) {
  // Every node must receive deg(v) messages per completed round; the
  // adversary delivers each exactly once.
  PortGraph g = portgraph::path(5);
  views::ViewRepo repo;
  auto programs = elect_programs(g, repo);
  AsyncEngine engine(g, repo);
  AsyncMetrics metrics = engine.run(programs, 50, 99);
  ASSERT_FALSE(metrics.timed_out);
  // Lower bound: everyone completed `decision_round` rounds.
  std::size_t expected_min = 0;
  for (std::size_t v = 0; v < g.n(); ++v)
    expected_min += static_cast<std::size_t>(
                        g.degree(static_cast<portgraph::NodeId>(v))) *
                    static_cast<std::size_t>(metrics.decision_round[v]);
  EXPECT_GE(metrics.deliveries, expected_min);
}

TEST(Async, RoundCapReportsTimeout) {
  PortGraph g = portgraph::path(4);
  views::ViewRepo repo;
  // Generic with a huge x never finishes within the cap.
  auto programs = generic_programs(g, 1000);
  AsyncEngine engine(g, repo);
  AsyncMetrics metrics = engine.run(programs, 5, 1);
  EXPECT_TRUE(metrics.timed_out);
}

}  // namespace
}  // namespace anole::sim
