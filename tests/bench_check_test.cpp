// Tests for the bench regression guard (src/runner/bench_check.hpp):
// JSON-lines parsing (last record per key wins, malformed lines skipped,
// escaped labels), tolerance boundary semantics, match filters, and the
// dropped/added bookkeeping for cells present in only one file.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "runner/bench_check.hpp"

namespace anole::runner {
namespace {

BenchTable parse(const std::string& text) {
  std::istringstream in(text);
  return read_bench_records(in);
}

TEST(BenchCheck, ParsesRecordsAndLastWins) {
  BenchTable t = parse(
      "{\"scenario\": \"v2\", \"cell\": \"argmin/ring\", \"wall_ms\": 17.5, "
      "\"n\": 16384}\n"
      "{\"scenario\": \"v3\", \"cell\": \"stable-com/ring\", \"wall_ms\": "
      "4.25}\n"
      "not json at all\n"
      "{\"scenario\": \"v2\", \"cell\": \"argmin/ring\", \"wall_ms\": 12.0}\n");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ((t[{"v2", "argmin/ring"}]), 12.0);  // append-only: last
  EXPECT_DOUBLE_EQ((t[{"v3", "stable-com/ring"}]), 4.25);
}

TEST(BenchCheck, SkipsRecordsMissingFields) {
  BenchTable t = parse(
      "{\"scenario\": \"s1\", \"cell\": \"ring/n=1024\"}\n"          // no wall
      "{\"cell\": \"x\", \"wall_ms\": 3.0}\n"                         // no scen
      "{\"scenario\": \"s1\", \"wall_ms\": 3.0}\n");                  // no cell
  EXPECT_TRUE(t.empty());
}

TEST(BenchCheck, UnescapesLabels) {
  BenchTable t = parse(
      "{\"scenario\": \"v2\", \"cell\": \"odd \\\"label\\\"\", "
      "\"wall_ms\": 1.0}\n");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_DOUBLE_EQ((t[{"v2", "odd \"label\""}]), 1.0);
}

TEST(BenchCheck, ToleranceBoundary) {
  BenchTable base{{{"v3", "a"}, 100.0}, {{"v3", "b"}, 100.0},
                  {{"v3", "c"}, 100.0}};
  BenchTable fresh{{{"v3", "a"}, 130.0},   // exactly at tolerance: ok
                   {{"v3", "b"}, 130.01},  // just over: regressed
                   {{"v3", "c"}, 10.0}};   // faster: ok
  BenchComparison cmp = compare_bench(base, fresh, 30.0, {});
  ASSERT_EQ(cmp.cells.size(), 3u);
  EXPECT_FALSE(cmp.cells[0].regressed);
  EXPECT_TRUE(cmp.cells[1].regressed);
  EXPECT_FALSE(cmp.cells[2].regressed);
  EXPECT_EQ(cmp.regressions, 1u);
  EXPECT_FALSE(cmp.ok());
}

TEST(BenchCheck, MatchFilterRestrictsEnforcement) {
  BenchTable base{{{"v2", "argmin/ring/ranked"}, 10.0},
                  {{"v2", "argmin/ring/structural"}, 10.0},
                  {{"v3", "stable-com/ring"}, 10.0}};
  BenchTable fresh{{{"v2", "argmin/ring/ranked"}, 100.0},
                   {{"v2", "argmin/ring/structural"}, 100.0},
                   {{"v3", "stable-com/ring"}, 100.0}};
  std::vector<std::string> match{"ranked", "stable"};
  BenchComparison cmp = compare_bench(base, fresh, 30.0, match);
  ASSERT_EQ(cmp.cells.size(), 3u);
  // All three slowed 10x, but only the ranked + stable cells are enforced.
  EXPECT_EQ(cmp.regressions, 2u);
  for (const auto& cell : cmp.cells) {
    bool tracked = cell.cell.find("ranked") != std::string::npos ||
                   cell.cell.find("stable") != std::string::npos;
    EXPECT_EQ(cell.enforced, tracked) << cell.cell;
    EXPECT_EQ(cell.regressed, tracked) << cell.cell;
  }
}

TEST(BenchCheck, DroppedEnforcedCellFailsAddedNeverDoes) {
  BenchTable base{{{"v3", "stable-com/old"}, 10.0},
                  {{"v2", "untracked/old"}, 10.0}};
  BenchTable fresh{{{"v3", "stable-com/new"}, 10.0}};
  std::vector<std::string> match{"stable"};
  BenchComparison cmp = compare_bench(base, fresh, 30.0, match);
  EXPECT_TRUE(cmp.cells.empty());
  ASSERT_EQ(cmp.dropped.size(), 2u);
  ASSERT_EQ(cmp.added.size(), 1u);
  EXPECT_EQ(cmp.added[0], "v3/stable-com/new");
  // The enforced (stable) cell vanished: lost coverage fails the guard.
  // The untracked drop and the new cell are informational.
  EXPECT_EQ(cmp.regressions, 1u);
  EXPECT_FALSE(cmp.ok());

  // With no filter, every dropped cell is enforced.
  BenchComparison all = compare_bench(base, fresh, 30.0, {});
  EXPECT_EQ(all.regressions, 2u);

  // A pure addition (baseline subset of fresh) never fails.
  BenchComparison grow = compare_bench(
      BenchTable{{{"v3", "stable-com/new"}, 10.0}}, fresh, 30.0, {});
  EXPECT_TRUE(grow.ok());
}

TEST(BenchCheck, ReportMentionsVerdict) {
  BenchTable base{{{"v3", "a"}, 10.0}};
  BenchTable fresh{{{"v3", "a"}, 100.0}};
  BenchComparison cmp = compare_bench(base, fresh, 30.0, {});
  std::ostringstream os;
  print_bench_comparison(cmp, 30.0, os);
  EXPECT_NE(os.str().find("REGRESSED"), std::string::npos);
  EXPECT_NE(os.str().find("1 cell(s) regressed"), std::string::npos);

  BenchComparison ok_cmp = compare_bench(base, base, 30.0, {});
  std::ostringstream ok_os;
  print_bench_comparison(ok_cmp, 30.0, ok_os);
  EXPECT_NE(ok_os.str().find("bench_check: OK"), std::string::npos);
}

}  // namespace
}  // namespace anole::runner
