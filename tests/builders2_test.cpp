// Tests for the second wave of builders (torus, lollipop, wheel,
// caterpillar), the edge-list text format, and their interaction with the
// feasibility machinery.

#include <gtest/gtest.h>

#include "portgraph/builders.hpp"
#include "portgraph/io.hpp"
#include "views/profile.hpp"

namespace anole::portgraph {
namespace {

TEST(Torus, StructureAndSymmetry) {
  PortGraph g = torus(3, 4);
  EXPECT_EQ(g.n(), 12u);
  EXPECT_EQ(g.m(), 24u);
  for (std::size_t v = 0; v < g.n(); ++v)
    EXPECT_EQ(g.degree(static_cast<NodeId>(v)), 4);
  // Consistently oriented torus: infeasible (all views equal forever).
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo);
  EXPECT_FALSE(p.feasible);
  EXPECT_EQ(p.class_counts[0], 1u);
}

TEST(Lollipop, StructureAndFeasibility) {
  PortGraph g = lollipop(5, 7);
  EXPECT_EQ(g.n(), 12u);
  EXPECT_EQ(g.m(), 10u + 7u);
  EXPECT_EQ(g.degree(0), 5);        // clique node with the tail
  EXPECT_EQ(g.degree(11), 1);       // tail end
  EXPECT_EQ(g.diameter(), 8);       // across the clique + tail
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo);
  EXPECT_TRUE(p.feasible);
}

TEST(Wheel, HubIsUniqueMaximum) {
  PortGraph g = wheel(6);
  EXPECT_EQ(g.n(), 7u);
  EXPECT_EQ(g.degree(6), 6);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 3);
  EXPECT_EQ(g.diameter(), 2);
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo);
  EXPECT_TRUE(p.feasible);
}

TEST(Wheel, SymmetricRimNeedsDepthToSplit) {
  // All rim nodes look alike at depth 0 (degree 3); the hub's ports break
  // the tie at depth >= 1.
  PortGraph g = wheel(5);
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo);
  ASSERT_TRUE(p.feasible);
  EXPECT_GE(p.election_index, 1);
}

TEST(Caterpillar, LegsAttachWhereRequested) {
  PortGraph g = caterpillar(4, {2, 0, 3});
  EXPECT_EQ(g.n(), 4u + 5u);
  EXPECT_EQ(g.degree(0), 3);  // spine end: 1 spine + 2 legs
  EXPECT_EQ(g.degree(1), 2);  // spine middle, no legs
  EXPECT_EQ(g.degree(2), 5);  // 2 spine + 3 legs
  EXPECT_EQ(g.degree(3), 1);  // bare spine end
}

TEST(EdgeList, RoundTripsEveryBuilder) {
  std::vector<PortGraph> graphs;
  graphs.push_back(grid(3, 3));
  graphs.push_back(torus(3, 3));
  graphs.push_back(lollipop(4, 3));
  graphs.push_back(wheel(5));
  graphs.push_back(caterpillar(3, {1, 2}));
  graphs.push_back(random_connected(20, 15, 9));
  for (const PortGraph& g : graphs) {
    PortGraph back = from_edge_list(to_edge_list(g));
    EXPECT_EQ(back, g);
  }
}

TEST(EdgeList, AcceptsCommentsAndRejectsGarbage) {
  PortGraph g = from_edge_list(
      "anole-graph 1\nn 2\n# a comment\ne 0 0 1 0\n");
  EXPECT_EQ(g.n(), 2u);
  EXPECT_THROW(from_edge_list("not a graph"), std::logic_error);
  EXPECT_THROW(from_edge_list("anole-graph 1\ne 0 0 1 0\n"),
               std::logic_error);  // edge before n
  EXPECT_THROW(from_edge_list("anole-graph 1\nn 2\nz 1 2\n"),
               std::logic_error);  // unknown tag
  EXPECT_THROW(from_edge_list("anole-graph 1\nn 2\ne 0 0\n"),
               std::logic_error);  // short edge line
}

TEST(EdgeList, ValidatesResult) {
  // Dangling ports must be caught by validate() inside the parser.
  EXPECT_THROW(from_edge_list("anole-graph 1\nn 3\ne 0 0 1 0\n"),
               std::logic_error);  // node 2 disconnected
}

}  // namespace
}  // namespace anole::portgraph
