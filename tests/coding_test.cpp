// Tests for the paper's binary codecs: bin(x), the doubling Concat/Decode
// scheme, the labeled-tree DFS-walk code, and round-trip properties on
// randomized inputs.

#include <gtest/gtest.h>

#include "coding/bitstring.hpp"
#include "coding/codec.hpp"
#include "coding/tree_codec.hpp"
#include "util/prng.hpp"

namespace anole::coding {
namespace {

TEST(BitString, PushAndIndex) {
  BitString b;
  b.push_back(true);
  b.push_back(false);
  b.push_back(true);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_TRUE(b[0]);
  EXPECT_FALSE(b[1]);
  EXPECT_TRUE(b[2]);
}

TEST(BitString, FromToString) {
  BitString b = BitString::from_string("0110101");
  EXPECT_EQ(b.to_string(), "0110101");
  EXPECT_EQ(b.size(), 7u);
}

TEST(BitString, EqualityIncludesLength) {
  EXPECT_EQ(BitString::from_string("01"), BitString::from_string("01"));
  EXPECT_FALSE(BitString::from_string("01") == BitString::from_string("010"));
  EXPECT_FALSE(BitString::from_string("01") == BitString::from_string("00"));
}

TEST(BitString, LexicographicOrder) {
  // 0 < 1 bitwise; shorter prefix precedes its extensions.
  EXPECT_LT(BitString::from_string("0"), BitString::from_string("1"));
  EXPECT_LT(BitString::from_string("01"), BitString::from_string("011"));
  EXPECT_LT(BitString::from_string("0011"), BitString::from_string("01"));
  EXPECT_FALSE(BitString::from_string("1") < BitString::from_string("0111"));
}

TEST(BitString, AppendConcatenates) {
  BitString a = BitString::from_string("10");
  a.append(BitString::from_string("01"));
  EXPECT_EQ(a.to_string(), "1001");
}

TEST(BitString, CrossesWordBoundary) {
  BitString b;
  for (int i = 0; i < 200; ++i) b.push_back(i % 3 == 0);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(b[static_cast<std::size_t>(i)],
                                          i % 3 == 0);
}

TEST(BitString, AppendWordMatchesPerBitPushes) {
  util::SplitMix64 rng(41);
  // Every (starting offset mod 64) x (append width) combination, against
  // a per-bit reference build of the identical stream.
  BitString bulk, reference;
  for (int step = 0; step < 300; ++step) {
    std::uint64_t value = rng();
    unsigned bits = static_cast<unsigned>(rng() % 65);
    bulk.append_word(value, bits);
    for (unsigned b = 0; b < bits; ++b)
      reference.push_back(((value >> b) & 1u) != 0);
    ASSERT_EQ(bulk, reference) << "step " << step << " bits " << bits;
  }
}

TEST(BitString, AppendWordReadWordRoundTrip) {
  util::SplitMix64 rng(43);
  std::vector<std::pair<std::uint64_t, unsigned>> pieces;
  BitString b;
  for (int i = 0; i < 200; ++i) {
    unsigned bits = static_cast<unsigned>(rng() % 65);
    std::uint64_t value =
        bits == 64 ? rng() : (rng() & ((UINT64_C(1) << bits) - 1));
    pieces.emplace_back(value, bits);
    b.append_word(value, bits);
  }
  BitReader reader(b);
  for (const auto& [value, bits] : pieces)
    EXPECT_EQ(reader.read_word(bits), value);
  EXPECT_TRUE(reader.at_end());
}

TEST(BitString, AppendWordsAlignedAndUnaligned) {
  std::vector<std::uint64_t> payload = {0x0123456789abcdefull,
                                        0xfedcba9876543210ull,
                                        0xdeadbeefcafef00dull};
  BitString aligned;
  aligned.append_words(payload);
  EXPECT_EQ(aligned.size(), 192u);
  ASSERT_EQ(aligned.words().size(), 3u);
  EXPECT_EQ(aligned.words()[0], payload[0]);
  EXPECT_EQ(aligned.words()[2], payload[2]);

  BitString unaligned, reference;
  unaligned.push_back(true);
  reference.push_back(true);
  unaligned.append_words(payload);
  for (std::uint64_t w : payload)
    for (unsigned b = 0; b < 64; ++b)
      reference.push_back(((w >> b) & 1u) != 0);
  EXPECT_EQ(unaligned, reference);
}

TEST(BitString, AppendBytesByteAlignedFastPath) {
  const unsigned char raw[5] = {0xde, 0xad, 0xbe, 0xef, 0x01};
  // Byte-aligned but not word-aligned start (8 bits in).
  BitString b;
  b.append_word(0xaa, 8);
  b.append_bytes(raw, sizeof(raw));
  EXPECT_EQ(b.size(), 48u);
  BitReader reader(b);
  EXPECT_EQ(reader.read_word(8), 0xaau);
  for (unsigned char byte : raw) EXPECT_EQ(reader.read_word(8), byte);
}

TEST(BitString, AppendBitStringBulkMatchesPerBit) {
  util::SplitMix64 rng(47);
  for (unsigned off = 0; off < 3; ++off) {
    BitString head;
    for (unsigned i = 0; i < off * 21 + 1; ++i)
      head.push_back((rng() & 1u) != 0);
    BitString tail;
    for (unsigned i = 0; i < 131; ++i)
      tail.push_back((rng() & 1u) != 0);
    BitString reference = head;
    for (std::size_t i = 0; i < tail.size(); ++i)
      reference.push_back(tail[i]);
    head.append(tail);
    EXPECT_EQ(head, reference);
  }
}

TEST(BitString, FromWordsRoundTripAndTailCheck) {
  BitString b;
  b.append_word(0x1ffff, 17);
  std::vector<std::uint64_t> words(b.words().begin(), b.words().end());
  BitString rebuilt = BitString::from_words(words, b.size());
  EXPECT_EQ(rebuilt, b);
  // Nonzero bits past `bits` violate the tail invariant — loud stop.
  EXPECT_THROW((void)BitString::from_words({~UINT64_C(0)}, 17),
               std::logic_error);
}

TEST(BitReader, SequentialRead) {
  BitString b = BitString::from_string("101");
  BitReader r(b);
  EXPECT_TRUE(r.read_bit());
  EXPECT_FALSE(r.read_bit());
  EXPECT_TRUE(r.read_bit());
  EXPECT_TRUE(r.at_end());
  EXPECT_THROW(r.read_bit(), std::logic_error);
}

TEST(Bin, StandardRepresentation) {
  EXPECT_EQ(bin(0).to_string(), "0");
  EXPECT_EQ(bin(1).to_string(), "1");
  EXPECT_EQ(bin(2).to_string(), "10");
  EXPECT_EQ(bin(5).to_string(), "101");
  EXPECT_EQ(bin(255).to_string(), "11111111");
}

TEST(Bin, RoundTrip) {
  for (std::uint64_t x : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{2},
                          std::uint64_t{3}, std::uint64_t{17},
                          std::uint64_t{1000000}, UINT64_MAX}) {
    EXPECT_EQ(parse_bin(bin(x)), x);
  }
}

TEST(Concat, PaperExample) {
  // Concat((01),(00)) = (0011010000) — the example in Section 3.
  BitString enc = concat(
      {BitString::from_string("01"), BitString::from_string("00")});
  EXPECT_EQ(enc.to_string(), "0011010000");
}

TEST(Concat, DecodeInverts) {
  std::vector<BitString> parts{BitString::from_string("01"),
                               BitString::from_string(""),
                               BitString::from_string("11110")};
  std::vector<BitString> back = decode(concat(parts));
  ASSERT_EQ(back.size(), parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) EXPECT_EQ(back[i], parts[i]);
}

TEST(Concat, SizeIsLinear) {
  // |Concat| = 2*sum(|A_i|) + 2*(k-1): the constant-factor blowup the
  // paper's O(n log n) accounting uses.
  std::vector<BitString> parts{bin(5), bin(1000), bin(3)};
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  EXPECT_EQ(concat(parts).size(), 2 * total + 2 * (parts.size() - 1));
}

TEST(Concat, RejectsInvalidPair) {
  EXPECT_THROW(decode(BitString::from_string("10")), std::logic_error);
  EXPECT_THROW(decode(BitString::from_string("001")), std::logic_error);
}

TEST(Concat, NestedConcatRoundTrip) {
  BitString inner = concat({bin(7), bin(9)});
  BitString outer = concat({bin(1), inner, bin(2)});
  std::vector<BitString> parts = decode(outer);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parse_bin(parts[0]), 1u);
  EXPECT_EQ(parse_bin(parts[2]), 2u);
  std::vector<BitString> inner_parts = decode(parts[1]);
  ASSERT_EQ(inner_parts.size(), 2u);
  EXPECT_EQ(parse_bin(inner_parts[0]), 7u);
  EXPECT_EQ(parse_bin(inner_parts[1]), 9u);
}

TEST(Concat, RandomizedRoundTrip) {
  util::SplitMix64 rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<BitString> parts;
    std::size_t k = 1 + rng.below(8);
    for (std::size_t i = 0; i < k; ++i) {
      BitString p;
      std::size_t len = rng.below(20);
      for (std::size_t j = 0; j < len; ++j) p.push_back(rng.chance(1, 2));
      parts.push_back(std::move(p));
    }
    std::vector<BitString> back = decode(concat(parts));
    ASSERT_EQ(back.size(), parts.size());
    for (std::size_t i = 0; i < k; ++i) EXPECT_EQ(back[i], parts[i]);
  }
}

TEST(EncodeInts, RoundTripIncludingEmpty) {
  for (const std::vector<std::uint64_t>& v :
       {std::vector<std::uint64_t>{}, {0ULL}, {1ULL, 2ULL, 3ULL},
        {42ULL, 0ULL, 99999ULL}}) {
    EXPECT_EQ(decode_ints(encode_ints(v)), v);
  }
}

PortTree make_leaf(std::uint64_t label) {
  PortTree t;
  t.label = label;
  return t;
}

void add_child(PortTree& parent, int up, int down, PortTree child) {
  parent.children.push_back(PortTree::Edge{
      up, down, std::make_unique<PortTree>(std::move(child))});
}

TEST(TreeCodec, SingleNode) {
  PortTree t = make_leaf(7);
  PortTree back = decode_tree(encode_tree(t));
  EXPECT_EQ(back.label, 7u);
  EXPECT_TRUE(back.children.empty());
  EXPECT_EQ(back.size(), 1u);
}

TEST(TreeCodec, SmallTreeRoundTrip) {
  PortTree root = make_leaf(1);
  PortTree a = make_leaf(2);
  add_child(a, 0, 3, make_leaf(4));
  add_child(root, 0, 1, std::move(a));
  add_child(root, 2, 0, make_leaf(3));
  BitString code = encode_tree(root);
  PortTree back = decode_tree(code);
  EXPECT_TRUE(back == root);
  EXPECT_EQ(back.size(), 4u);
}

// Random labeled trees round-trip through the DFS-walk code.
TEST(TreeCodec, RandomizedRoundTrip) {
  util::SplitMix64 rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    // Random tree on 1..40 nodes; ports are made locally-consistent:
    // children get distinct up_ports; down_port arbitrary.
    std::size_t n = 1 + rng.below(40);
    std::vector<PortTree> pool;
    pool.reserve(n);
    for (std::size_t i = 0; i < n; ++i) pool.push_back(make_leaf(i + 1));
    // Link nodes i>0 under a random earlier node (heap-style forest build,
    // children attached in increasing up_port order).
    std::vector<int> fanout(n, 0);
    std::vector<int> parent(n, -1);
    for (std::size_t i = n; i-- > 1;) parent[i] = static_cast<int>(rng.below(i));
    // Attach in decreasing id order so every node's children are final when
    // it is attached; the down_port (port at the child toward its parent)
    // must be distinct from the child's own child-ports, as in any real
    // port-numbered tree — use its first unused port.
    for (std::size_t i = n; i-- > 1;) {
      std::size_t p = static_cast<std::size_t>(parent[i]);
      int down = fanout[i];
      add_child(pool[p], fanout[p]++, down, std::move(pool[i]));
    }
    BitString code = encode_tree(pool[0]);
    PortTree back = decode_tree(code);
    EXPECT_TRUE(back == pool[0]) << "trial " << trial;
  }
}

TEST(TreeCodec, PathPorts) {
  // root(1) -(0/1)- a(2) -(2/0)- b(3);  root -(5/4)- c(4)
  PortTree root = make_leaf(1);
  PortTree a = make_leaf(2);
  add_child(a, 2, 0, make_leaf(3));
  add_child(root, 0, 1, std::move(a));
  add_child(root, 5, 4, make_leaf(4));

  // Path from 3 up to the root 1: (0,2) then (1,0).
  EXPECT_EQ(root.path_ports(3, 1), (std::vector<int>{0, 2, 1, 0}));
  // Path from 3 to 4 via the root: up, up, then down (5,4).
  EXPECT_EQ(root.path_ports(3, 4), (std::vector<int>{0, 2, 1, 0, 5, 4}));
  // Path from the root down to 3.
  EXPECT_EQ(root.path_ports(1, 3), (std::vector<int>{0, 1, 2, 0}));
  // Trivial path.
  EXPECT_TRUE(root.path_ports(2, 2).empty());
}

TEST(TreeCodec, FindLocatesLabels) {
  PortTree root = make_leaf(10);
  add_child(root, 0, 0, make_leaf(20));
  EXPECT_NE(root.find(20), nullptr);
  EXPECT_EQ(root.find(99), nullptr);
}

}  // namespace
}  // namespace anole::coding
