// Tests for the sharded concurrent ViewRepo (DESIGN.md §10): N threads
// hammering ONE repo with maximally overlapping signature sets must agree
// on every id (hash-consing is exactly-once under races), reproduce the
// serial record set up to id renaming, keep the read-side API (compare,
// stats, truncate, serialized_size_bits) consistent while writers intern,
// and assign rank images that are byte-identical across thread counts.
// reserve_for's shrink-safety (satellite of the same change) is pinned
// here too.

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <compare>
#include <cstdint>
#include <thread>
#include <vector>

#include "portgraph/builders.hpp"
#include "portgraph/port_graph.hpp"
#include "views/view_repo.hpp"

namespace anole::views {
namespace {

using portgraph::NodeId;
using portgraph::PortGraph;

// Per-node view levels through the public intern API, optionally through a
// per-caller InternArena. All threads of the hammer tests run this same
// loop over the same graph — every signature is contended by every thread.
std::vector<std::vector<ViewId>> build_levels(const PortGraph& g,
                                              ViewRepo& repo, int depth,
                                              ViewRepo::InternArena* arena) {
  std::size_t n = g.n();
  std::vector<std::vector<ViewId>> levels;
  std::vector<ViewId> level(n);
  for (std::size_t v = 0; v < n; ++v)
    level[v] = repo.leaf(g.degree(static_cast<NodeId>(v)));
  levels.push_back(level);
  std::vector<ChildRef> kids;
  for (int t = 0; t < depth; ++t) {
    std::vector<ViewId> next(n);
    for (std::size_t v = 0; v < n; ++v) {
      const auto& row = g.neighbors(static_cast<NodeId>(v));
      kids.clear();
      for (const auto& he : row)
        kids.emplace_back(he.rev_port,
                          level[static_cast<std::size_t>(he.neighbor)]);
      next[v] = arena ? repo.intern(kids, *arena) : repo.intern(kids);
    }
    level = next;
    levels.push_back(level);
  }
  return levels;
}

// The partition a level's ids induce over nodes, as the index of each
// node's first same-id witness: id-renaming invariant, so comparable
// across repos whose raw ids differ.
std::vector<std::size_t> partition_of(const std::vector<ViewId>& level) {
  std::vector<std::size_t> part(level.size());
  for (std::size_t v = 0; v < level.size(); ++v) {
    std::size_t first = v;
    for (std::size_t u = 0; u < v; ++u)
      if (level[u] == level[v]) {
        first = u;
        break;
      }
    part[v] = first;
  }
  return part;
}

PortGraph hammer_graph() { return portgraph::random_connected(400, 700, 7); }
constexpr int kDepth = 4;

TEST(ConcurrentRepo, OverlappingInternsAgreeOnEveryId) {
  // Every thread interns the views of EVERY node — the worst duplicate
  // race the dedup path can see. Hash-consing must hand all threads the
  // same id for the same signature, so the per-thread level vectors must
  // come out element-wise equal, and the repo must hold exactly the
  // serial record count.
  PortGraph g = hammer_graph();
  ViewRepo serial_repo;
  auto serial = build_levels(g, serial_repo, kDepth, nullptr);

  for (unsigned workers : {2u, 4u, 8u}) {
    ViewRepo repo;
    std::vector<std::vector<std::vector<ViewId>>> per_thread(workers);
    std::barrier sync(static_cast<std::ptrdiff_t>(workers));
    std::vector<std::thread> threads;
    for (unsigned w = 0; w < workers; ++w)
      threads.emplace_back([&, w] {
        // Odd workers intern through a private arena (block-allocated
        // ids), even workers through the shared path — both must dedup
        // against each other.
        ViewRepo::InternArena arena(repo);
        sync.arrive_and_wait();
        per_thread[w] = build_levels(g, repo, kDepth,
                                     (w % 2 == 1) ? &arena : nullptr);
      });
    for (std::thread& t : threads) t.join();

    for (unsigned w = 1; w < workers; ++w)
      ASSERT_EQ(per_thread[0], per_thread[w]) << "workers=" << workers;
    ASSERT_EQ(repo.size(), serial_repo.size()) << "workers=" << workers;
    for (int t = 0; t <= kDepth; ++t) {
      EXPECT_EQ(partition_of(per_thread[0][static_cast<std::size_t>(t)]),
                partition_of(serial[static_cast<std::size_t>(t)]))
          << "level " << t;
      // Structure survives the renaming: node 0's view at each level has
      // the serial degree/depth/DAG shape.
      ViewId a = per_thread[0][static_cast<std::size_t>(t)][0];
      ViewId b = serial[static_cast<std::size_t>(t)][0];
      EXPECT_EQ(repo.degree(a), serial_repo.degree(b));
      EXPECT_EQ(repo.depth(a), serial_repo.depth(b));
      EXPECT_EQ(repo.stats(a).records, serial_repo.stats(b).records);
      EXPECT_EQ(repo.serialized_size_bits(a),
                serial_repo.serialized_size_bits(b));
    }
  }
}

TEST(ConcurrentRepo, RankImageIdenticalAcrossThreadCounts) {
  // DESIGN.md §10's determinism contract, exercised straight through the
  // repo (no Refiner): hammer with K threads, rank each level's distinct
  // set, and require the node-by-node rank image to match the serial run
  // exactly — rank VALUES, not just order.
  PortGraph g = hammer_graph();
  std::vector<std::vector<std::vector<std::int32_t>>> images;
  for (unsigned workers : {1u, 2u, 4u}) {
    ViewRepo repo;
    std::vector<std::vector<std::vector<ViewId>>> per_thread(workers);
    std::vector<std::thread> threads;
    for (unsigned w = 0; w < workers; ++w)
      threads.emplace_back([&, w] {
        ViewRepo::InternArena arena(repo);
        per_thread[w] = build_levels(g, repo, kDepth, w > 0 ? &arena : nullptr);
      });
    for (std::thread& t : threads) t.join();
    std::vector<std::vector<std::int32_t>> image;
    for (int t = 0; t <= kDepth; ++t) {
      const std::vector<ViewId>& level =
          per_thread[0][static_cast<std::size_t>(t)];
      repo.assign_ranks(distinct_ids(level));
      std::vector<std::int32_t> ranks(level.size());
      for (std::size_t v = 0; v < level.size(); ++v) {
        ranks[v] = repo.rank(level[v]);
        ASSERT_NE(ranks[v], kUnranked);
      }
      image.push_back(std::move(ranks));
    }
    images.push_back(std::move(image));
  }
  EXPECT_EQ(images[0], images[1]);
  EXPECT_EQ(images[0], images[2]);
}

TEST(ConcurrentRepo, ReadersStayConsistentWhileWritersIntern) {
  // Half the threads keep interning fresh deep views; the other half run
  // the read-side API on already-published ids. Every read must return
  // the value the serial repo returns — no torn records, no stale
  // segment/table views.
  PortGraph g = portgraph::random_connected(120, 200, 5);
  ViewRepo repo;
  auto base = build_levels(g, repo, 2, nullptr);
  ViewRepo serial_repo;
  auto serial = build_levels(g, serial_repo, 2, nullptr);
  ViewId probe = base[2][0];
  ViewId other = base[2][1];
  ViewId serial_probe = serial[2][0];
  std::strong_ordering want_cmp =
      serial_repo.compare_structural(serial[2][0], serial[2][1]);
  std::size_t want_records = serial_repo.stats(serial_probe).records;
  std::size_t want_bits = serial_repo.serialized_size_bits(serial_probe);
  ViewId want_cut = repo.truncate(probe, 1);  // pre-publish the truncation

  std::atomic<bool> failed{false};
  constexpr unsigned kWriters = 2;
  constexpr unsigned kReaders = 2;
  std::barrier sync(kWriters + kReaders);
  std::vector<std::thread> threads;
  for (unsigned w = 0; w < kWriters; ++w)
    threads.emplace_back([&] {
      PortGraph h = portgraph::random_connected(300, 500, 21);
      sync.arrive_and_wait();
      ViewRepo::InternArena arena(repo);
      (void)build_levels(h, repo, 3, &arena);
    });
  for (unsigned r = 0; r < kReaders; ++r)
    threads.emplace_back([&] {
      sync.arrive_and_wait();
      for (int i = 0; i < 2000 && !failed.load(); ++i) {
        bool ok = repo.compare(probe, other) == want_cmp &&
                  repo.compare_structural(probe, other) == want_cmp &&
                  repo.stats(probe).records == want_records &&
                  repo.serialized_size_bits(probe) == want_bits &&
                  repo.truncate(probe, 1) == want_cut;
        if (!ok) failed.store(true);
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());
}

TEST(ConcurrentRepo, ReserveForOverThenUnderReservationKeepsIds) {
  // Satellite contract: reserve_for may grow the shard tables up front
  // and a later smaller reservation may shrink them back — neither pass
  // may lose or rename an existing record.
  PortGraph g = portgraph::random_connected(200, 350, 3);
  ViewRepo repo;
  auto before = build_levels(g, repo, 3, nullptr);
  std::size_t count = repo.size();
  // Vast over-reservation, then a tiny one (shrink path): re-interning
  // the same signatures must find the same ids either way.
  repo.reserve_for(1 << 20, 1 << 21, 8);
  auto after_grow = build_levels(g, repo, 3, nullptr);
  EXPECT_EQ(before, after_grow);
  EXPECT_EQ(repo.size(), count);
  repo.reserve_for(1, 1, 0);
  auto after_shrink = build_levels(g, repo, 3, nullptr);
  EXPECT_EQ(before, after_shrink);
  EXPECT_EQ(repo.size(), count);
}

}  // namespace
}  // namespace anole::views
