// Integration tests for the election algorithms: Elect runs in exactly phi
// rounds (Theorem 3.1 part 2), Generic(x) within D+x+1 (Lemma 4.1),
// Election1..4 within their Theorem 4.1 budgets, baselines behave as the
// paper's remarks state, and the verifier rejects malformed outputs.

#include <gtest/gtest.h>

#include "election/baselines.hpp"
#include "election/harness.hpp"
#include "families/necklace.hpp"
#include "families/ring_of_cliques.hpp"
#include "portgraph/builders.hpp"
#include "util/math.hpp"

namespace anole::election {
namespace {

using portgraph::PortGraph;

std::vector<PortGraph> test_graphs() {
  std::vector<PortGraph> graphs;
  graphs.push_back(portgraph::random_connected(12, 8, 1));
  graphs.push_back(portgraph::random_connected(20, 5, 2));
  graphs.push_back(portgraph::random_connected(30, 40, 3));
  graphs.push_back(portgraph::path(9));
  graphs.push_back(families::g_family_member(5, 4).graph);
  graphs.push_back(families::necklace_member(5, 2, 1).graph);
  graphs.push_back(families::necklace_member(5, 4, 2).graph);
  return graphs;
}

TEST(Verify, AcceptsCommonLeader) {
  PortGraph g = portgraph::path(3);  // 0-1-2
  // Everyone points at node 1 (node 1's port toward 2 is 0, toward 0 is 1).
  std::vector<std::vector<int>> outputs{{0, 1}, {}, {0, 0}};
  VerifyResult r = verify_election(g, outputs);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.leader, 1);
}

TEST(Verify, RejectsSplitVote) {
  PortGraph g = portgraph::path(3);
  std::vector<std::vector<int>> outputs{{}, {}, {}};  // everyone picks self
  VerifyResult r = verify_election(g, outputs);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("elected"), std::string::npos);
}

TEST(Verify, RejectsNonSimplePath) {
  PortGraph g = portgraph::path(3);
  // 0 -> 1 -> 0 -> 1: walks back and forth.
  std::vector<std::vector<int>> outputs{{0, 1, 1, 0, 0, 1}, {}, {0, 0}};
  VerifyResult r = verify_election(g, outputs);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not simple"), std::string::npos);
}

TEST(Verify, RejectsInvalidWalk) {
  PortGraph g = portgraph::path(3);
  std::vector<std::vector<int>> outputs{{7, 7}, {}, {0, 0}};
  VerifyResult r = verify_election(g, outputs);
  EXPECT_FALSE(r.ok);
}

// Theorem 3.1 part 2: Elect performs leader election in time phi.
TEST(MinTime, ElectsInExactlyPhiRounds) {
  for (const PortGraph& g : test_graphs()) {
    ElectionRun run = run_min_time(g);
    ASSERT_TRUE(run.ok()) << run.verdict.error;
    EXPECT_EQ(run.metrics.rounds, run.phi);
    for (int r : run.metrics.decision_round) EXPECT_EQ(r, run.phi);
    EXPECT_GT(run.advice_bits, 0u);
  }
}

TEST(MinTime, AllNodesAgreeOnLeaderViaSimplePaths) {
  PortGraph g = portgraph::random_connected(25, 20, 9);
  ElectionRun run = run_min_time(g, /*meter_messages=*/true);
  ASSERT_TRUE(run.ok()) << run.verdict.error;
  EXPECT_GE(run.verdict.leader, 0);
  EXPECT_GT(run.metrics.total_message_bits, 0u);
}

// Lemma 4.1: Generic(x) with x >= phi elects within D + x + 1 rounds.
TEST(Generic, WithinLemmaBoundForVariousX) {
  PortGraph g = portgraph::random_connected(16, 10, 5);
  views::ViewRepo probe_repo;
  views::ViewProfile profile = views::compute_profile(g, probe_repo);
  ASSERT_TRUE(profile.feasible);
  int phi = profile.election_index;
  int diameter = g.diameter();

  for (int x : {phi, phi + 1, phi + 3, phi + 7}) {
    views::ViewRepo repo;
    std::vector<std::unique_ptr<sim::NodeProgram>> programs;
    for (std::size_t v = 0; v < g.n(); ++v)
      programs.push_back(
          std::make_unique<GenericProgram>(static_cast<std::uint64_t>(x)));
    sim::Engine engine(g, repo);
    sim::RunMetrics metrics = engine.run(programs, diameter + x + 2);
    EXPECT_FALSE(metrics.timed_out) << "x=" << x;
    EXPECT_LE(metrics.rounds, diameter + x + 1) << "x=" << x;
    VerifyResult v = verify_election(g, metrics.outputs);
    EXPECT_TRUE(v.ok) << v.error;
  }
}

// All Generic(x) parameterizations elect the same leader: the node with
// the canonically smallest view (stability across the time spectrum).
TEST(Generic, LeaderIndependentOfX) {
  PortGraph g = portgraph::random_connected(14, 9, 6);
  views::ViewRepo probe_repo;
  views::ViewProfile profile = views::compute_profile(g, probe_repo);
  ASSERT_TRUE(profile.feasible);
  int phi = profile.election_index;
  int diameter = g.diameter();

  portgraph::NodeId leader = -1;
  for (int x : {phi, phi + 2, phi + 5}) {
    views::ViewRepo repo;
    std::vector<std::unique_ptr<sim::NodeProgram>> programs;
    for (std::size_t v = 0; v < g.n(); ++v)
      programs.push_back(
          std::make_unique<GenericProgram>(static_cast<std::uint64_t>(x)));
    sim::Engine engine(g, repo);
    sim::RunMetrics metrics = engine.run(programs, diameter + x + 2);
    VerifyResult verdict = verify_election(g, metrics.outputs);
    ASSERT_TRUE(verdict.ok);
    if (leader < 0)
      leader = verdict.leader;
    else
      EXPECT_EQ(verdict.leader, leader) << "x=" << x;
  }
}

TEST(LargeTimeAdvice, SizesMatchTheoremFourOne) {
  // |A1| = Theta(log phi), |A2| = Theta(log log phi), etc. Check exact
  // encodings at milestones.
  EXPECT_EQ(large_time_advice(LargeTimeVariant::kPhiPlusC, 12).size(),
            util::bit_length(12));
  EXPECT_EQ(large_time_advice(LargeTimeVariant::kCTimesPhi, 12).size(),
            util::bit_length(util::floor_log2(12)));
  EXPECT_EQ(large_time_advice(LargeTimeVariant::kPhiPowC, 12).size(),
            util::bit_length(util::floor_log2(util::floor_log2(12))));
  EXPECT_EQ(large_time_advice(LargeTimeVariant::kCPowPhi, 12).size(),
            util::bit_length(util::log_star(12)));
}

TEST(LargeTimeAdvice, ParameterDominatesPhi) {
  for (std::uint64_t phi = 1; phi <= 300; ++phi) {
    for (LargeTimeVariant v :
         {LargeTimeVariant::kPhiPlusC, LargeTimeVariant::kCTimesPhi,
          LargeTimeVariant::kPhiPowC, LargeTimeVariant::kCPowPhi}) {
      coding::BitString adv = large_time_advice(v, phi);
      EXPECT_GE(large_time_parameter(v, adv), phi)
          << "variant " << static_cast<int>(v) << " phi " << phi;
    }
  }
}

TEST(LargeTimeAdvice, ParameterWithinTheoremBudget) {
  // P1 = phi; P2 + 1 <= 2 phi; P3 + 1 <= phi^2 (phi >= 2); P4 + 1 <= 2^phi.
  for (std::uint64_t phi = 2; phi <= 300; ++phi) {
    EXPECT_EQ(large_time_parameter(LargeTimeVariant::kPhiPlusC,
                                   large_time_advice(LargeTimeVariant::kPhiPlusC,
                                                     phi)),
              phi);
    EXPECT_LE(large_time_parameter(LargeTimeVariant::kCTimesPhi,
                                   large_time_advice(LargeTimeVariant::kCTimesPhi,
                                                     phi)) +
                  1,
              2 * phi);
    EXPECT_LE(large_time_parameter(LargeTimeVariant::kPhiPowC,
                                   large_time_advice(LargeTimeVariant::kPhiPowC,
                                                     phi)) +
                  1,
              phi * phi);
    EXPECT_LE(large_time_parameter(LargeTimeVariant::kCPowPhi,
                                   large_time_advice(LargeTimeVariant::kCPowPhi,
                                                     phi)) +
                  1,
              util::ipow(2, phi));
  }
}

// Theorem 4.1 end-to-end: each Election_i elects within its time budget.
TEST(LargeTime, AllVariantsElectWithinBudget) {
  for (int phi : {2, 3}) {
    families::Necklace nk = families::necklace_member(5, phi, 1);
    const PortGraph& g = nk.graph;
    for (LargeTimeVariant v :
         {LargeTimeVariant::kPhiPlusC, LargeTimeVariant::kCTimesPhi,
          LargeTimeVariant::kPhiPowC, LargeTimeVariant::kCPowPhi}) {
      ElectionRun run = run_large_time(g, v, /*c=*/2);
      ASSERT_TRUE(run.ok()) << "variant " << static_cast<int>(v) << ": "
                            << run.verdict.error;
      std::uint64_t budget = large_time_bound(
          v, static_cast<std::uint64_t>(run.diameter),
          static_cast<std::uint64_t>(run.phi), 2);
      EXPECT_LE(static_cast<std::uint64_t>(run.metrics.rounds), budget)
          << "variant " << static_cast<int>(v) << " phi " << phi;
    }
  }
}

TEST(Baselines, MapElectsInPhiRounds) {
  for (std::uint64_t seed : {std::uint64_t{2}, std::uint64_t{8}}) {
    PortGraph g = portgraph::random_connected(12, 8, seed);
    ElectionRun run = run_map(g);
    ASSERT_TRUE(run.ok()) << run.verdict.error;
    EXPECT_EQ(run.metrics.rounds, run.phi);
  }
}

TEST(Baselines, RemarkElectsInDPlusPhi) {
  PortGraph g = portgraph::random_connected(14, 10, 4);
  ElectionRun run = run_remark(g);
  ASSERT_TRUE(run.ok()) << run.verdict.error;
  EXPECT_EQ(run.metrics.rounds, run.diameter + run.phi);
  // Advice is two integers: O(log D + log phi) bits.
  EXPECT_LE(run.advice_bits,
            2 * (util::bit_length(static_cast<std::uint64_t>(run.diameter)) +
                 util::bit_length(static_cast<std::uint64_t>(run.phi))) +
                4);
}

TEST(Baselines, SizeOnlyElectsWithinDPlusNPlusOne) {
  PortGraph g = portgraph::random_connected(10, 6, 12);
  ElectionRun run = run_size_only(g);
  ASSERT_TRUE(run.ok()) << run.verdict.error;
  EXPECT_LE(run.metrics.rounds,
            run.diameter + static_cast<int>(g.n()) + 1);
  EXPECT_EQ(run.advice_bits, util::bit_length(g.n()));
}

TEST(Baselines, SameDepthAlgorithmsElectTheSameLeader) {
  // Remark(D,phi) and Election1 (= Generic(phi)) both pick the node with
  // the canonically smallest *depth-phi* view, so they must agree.
  // (Algorithms comparing views at different depths — e.g. SizeOnly at
  // depth n — may legitimately pick a different node: the canonical order
  // at a larger depth can rank an earlier-DFS deep difference above a
  // later shallow one. The paper only requires each algorithm to be
  // internally consistent.)
  PortGraph g = portgraph::random_connected(13, 9, 15);
  ElectionRun a = run_remark(g);
  ElectionRun c = run_large_time(g, LargeTimeVariant::kPhiPlusC, 2);
  ASSERT_TRUE(a.ok() && c.ok());
  EXPECT_EQ(a.verdict.leader, c.verdict.leader);
  // SizeOnly still elects *some* single leader.
  ElectionRun b = run_size_only(g);
  ASSERT_TRUE(b.ok());
}

// Paper Section 1 / Prop 4.1 core: with no (or misleading) advice,
// identical views force identical outputs — two nodes with equal views
// elect "different leaders" relative to themselves.
TEST(Impossibility, EqualViewsForceEqualOutputs) {
  // Feed the necklace's two leaves (equal B^{phi-1}) a protocol that stops
  // one round too early: Generic(phi - 1) — formally Generic requires
  // x >= phi, so instead run Elect with advice computed for phi but
  // truncated exchange is impossible... The clean check: in a *different*
  // member of the family (same advice), the outputs collide. Covered by
  // the E2/E6 benches; here, check the primitive: equal views at depth t
  // imply equal COM transcripts (sim_test covers the ring); and the two
  // leaves of one necklace have equal views at phi-1.
  families::Necklace nk = families::necklace_member(5, 3, 2);
  views::ViewRepo repo;
  views::ViewProfile profile = views::compute_profile(nk.graph, repo, 3);
  EXPECT_EQ(profile.view(2, nk.left_leaf), profile.view(2, nk.right_leaf));
  EXPECT_NE(profile.view(3, nk.left_leaf), profile.view(3, nk.right_leaf));
}

TEST(Harness, ContextRunsMatchStandaloneRuns) {
  // One ElectionContext shared across every algorithm must report exactly
  // what the per-graph convenience overloads report: verdicts, rounds and
  // advice sizes depend only on graph structure + the canonical order,
  // never on repo pre-state.
  PortGraph g = families::necklace_member(5, 2, 1).graph;
  ElectionContext ctx(g);
  ASSERT_TRUE(ctx.feasible());
  auto expect_same = [](const ElectionRun& a, const ElectionRun& b) {
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
    EXPECT_EQ(a.advice_bits, b.advice_bits);
    EXPECT_EQ(a.verdict.leader, b.verdict.leader);
    EXPECT_EQ(a.phi, b.phi);
  };
  expect_same(run_min_time(ctx), run_min_time(g));
  expect_same(run_map(ctx), run_map(g));
  expect_same(run_remark(ctx), run_remark(g));
  expect_same(run_large_time(ctx, LargeTimeVariant::kCTimesPhi, 2),
              run_large_time(g, LargeTimeVariant::kCTimesPhi, 2));
  expect_same(run_size_only(ctx), run_size_only(g));
}

TEST(Harness, ContextComputesOneProfilePerGraph) {
  // The per-graph context contract the portfolio scenarios (E7/E8/E9)
  // rely on: after the context exists, running every algorithm triggers
  // exactly ONE further compute_profile — the map baseline's profile of
  // the *decoded* map graph, computed once and shared by all nodes via
  // MapAdviceState. Everything else reuses the context's profile.
  PortGraph g = families::necklace_member(5, 2, 1).graph;
  ElectionContext ctx(g);
  ASSERT_TRUE(ctx.feasible());
  std::uint64_t before = views::profile_compute_count();
  ElectionRun mt = run_min_time(ctx);
  ElectionRun rk = run_remark(ctx);
  ElectionRun so = run_size_only(ctx);
  ElectionRun l1 = run_large_time(ctx, LargeTimeVariant::kPhiPlusC, 2);
  ElectionRun l4 = run_large_time(ctx, LargeTimeVariant::kCPowPhi, 2);
  ASSERT_TRUE(mt.ok() && rk.ok() && so.ok() && l1.ok() && l4.ok());
  EXPECT_EQ(views::profile_compute_count() - before, 0u);
  ElectionRun mp = run_map(ctx);
  ASSERT_TRUE(mp.ok());
  EXPECT_EQ(views::profile_compute_count() - before, 1u);
}

}  // namespace
}  // namespace anole::election
