// Tests for the lower-bound graph families: each construction is validated
// against the structural claims the paper's proofs rely on (Claims 3.8,
// 3.10, the Theorem 3.2/3.3 observations, Claim 4.2, Proposition 4.1's
// view equalities).

#include <gtest/gtest.h>

#include <set>

#include "portgraph/builders.hpp"
#include "runner/portfolio.hpp"
#include "families/cliques.hpp"
#include "families/hairy.hpp"
#include "families/locks.hpp"
#include "families/necklace.hpp"
#include "families/ring_of_cliques.hpp"
#include "util/math.hpp"
#include "views/profile.hpp"

namespace anole::families {
namespace {

using portgraph::NodeId;
using portgraph::PortGraph;
using views::compute_profile;
using views::ViewProfile;
using views::ViewRepo;

TEST(CliqueFamily, SizeAndSequences) {
  EXPECT_EQ(f_family_size(3), 8u);    // 2^3
  EXPECT_EQ(f_family_size(4), 81u);   // 3^4
  std::set<std::vector<int>> seqs;
  for (std::uint64_t t = 0; t < 8; ++t) {
    std::vector<int> h = f_sequence(3, t);
    EXPECT_EQ(h.size(), 3u);
    for (int v : h) {
      EXPECT_GE(v, 1);
      EXPECT_LE(v, 2);
    }
    seqs.insert(h);
  }
  EXPECT_EQ(seqs.size(), 8u);  // enumeration is injective
}

TEST(CliqueFamily, CliqueIsValidWithPrescribedRootPorts) {
  for (int x : {3, 4, 5}) {
    for (std::uint64_t t : {std::uint64_t{0}, std::uint64_t{3}}) {
      PortGraph c = f_clique(x, t);
      EXPECT_EQ(c.n(), static_cast<std::size_t>(x) + 1);
      EXPECT_EQ(c.degree(0), x);  // r
      // Port i at r leads to v_i regardless of the perturbation.
      for (int i = 0; i < x; ++i)
        EXPECT_EQ(c.at(0, i).neighbor, 1 + i);
      for (int i = 1; i <= x; ++i) EXPECT_EQ(c.degree(i), x);
    }
  }
}

TEST(CliqueFamily, DistinctMembersDiffer) {
  PortGraph a = f_clique(4, 0);
  PortGraph b = f_clique(4, 1);
  EXPECT_FALSE(a == b);
}

TEST(CliqueFamily, ParameterCoversK) {
  for (std::uint64_t k : {std::uint64_t{4}, std::uint64_t{16},
                          std::uint64_t{100}, std::uint64_t{5000}}) {
    int x = f_parameter_for(k);
    EXPECT_GE(f_family_size(x), k);
    EXPECT_GE(x, 3);
  }
}


// The defining property of F(x) (used by Claims 3.8 and 3.10): attaching
// two *distinct* cliques of F(x) by their r nodes to symmetric positions
// still leaves all clique nodes with pairwise distinct depth-1 views.
TEST(CliqueFamily, DistinctMembersSeparateDepthOneViews) {
  const int x = 4;
  for (std::uint64_t s = 0; s < 3; ++s) {
    for (std::uint64_t t = s + 1; t < 4; ++t) {
      PortGraph g;
      NodeId a = g.add_node();
      NodeId b = g.add_node();
      attach_f_clique(g, a, x, s);
      attach_f_clique(g, b, x, t);
      g.add_edge(a, x, b, x);  // symmetric bridge
      g.validate();
      ViewRepo repo;
      ViewProfile p = compute_profile(g, repo, 1);
      // All 2x clique nodes (degree x each) have distinct B^1; only the
      // two attachment nodes could require more depth.
      std::set<views::ViewId> clique_views;
      std::size_t clique_nodes = 0;
      for (std::size_t v = 0; v < g.n(); ++v) {
        if (static_cast<NodeId>(v) == a || static_cast<NodeId>(v) == b)
          continue;
        clique_views.insert(p.view(1, static_cast<NodeId>(v)));
        ++clique_nodes;
      }
      EXPECT_EQ(clique_views.size(), clique_nodes)
          << "cliques " << s << " and " << t;
    }
  }
}

TEST(RingOfCliques, StructureOfH) {
  RingOfCliques h = h_graph(6);
  int x = h.x;
  EXPECT_EQ(h.graph.n(), 6u * (static_cast<std::size_t>(x) + 1));
  for (NodeId w : h.joints) EXPECT_EQ(h.graph.degree(w), x + 2);
  // Ring ports: x clockwise, x+1 counterclockwise.
  EXPECT_EQ(h.graph.at(h.joints[0], x).neighbor, h.joints[1]);
  EXPECT_EQ(h.graph.at(h.joints[0], x + 1).neighbor, h.joints[5]);
}

// Claim 3.8: every member of G_k has election index exactly 1.
TEST(RingOfCliques, ClaimThreeEightElectionIndexOne) {
  for (std::uint64_t seed : {std::uint64_t{0}, std::uint64_t{1},
                             std::uint64_t{7}}) {
    RingOfCliques g = g_family_member(7, seed);
    ViewRepo repo;
    ViewProfile profile = compute_profile(g.graph, repo);
    ASSERT_TRUE(profile.feasible) << "seed " << seed;
    EXPECT_EQ(profile.election_index, 1) << "seed " << seed;
  }
}

// The Theorem 3.2 observation: corresponding attachment nodes of the same
// clique C_t have equal B^1 across different members of G_k.
TEST(RingOfCliques, ObservationCorrespondingJointsShareDepthOneViews) {
  RingOfCliques g1 = g_family_member(6, 1);
  RingOfCliques g2 = g_family_member(6, 2);
  ViewRepo repo;  // shared: ids comparable across graphs
  ViewProfile p1 = compute_profile(g1.graph, repo, 1);
  ViewProfile p2 = compute_profile(g2.graph, repo, 1);
  for (int t = 0; t < 6; ++t) {
    // Position of clique t in each member.
    int pos1 = -1, pos2 = -1;
    for (int i = 0; i < 6; ++i) {
      if (g1.assignment[static_cast<std::size_t>(i)] ==
          static_cast<std::uint64_t>(t))
        pos1 = i;
      if (g2.assignment[static_cast<std::size_t>(i)] ==
          static_cast<std::uint64_t>(t))
        pos2 = i;
    }
    ASSERT_GE(pos1, 0);
    ASSERT_GE(pos2, 0);
    EXPECT_EQ(p1.view(1, g1.joints[static_cast<std::size_t>(pos1)]),
              p2.view(1, g2.joints[static_cast<std::size_t>(pos2)]))
        << "clique " << t;
  }
}

TEST(RingOfCliques, DistinctSeedsGiveDistinctAssignments) {
  RingOfCliques a = g_family_member(8, 1);
  RingOfCliques b = g_family_member(8, 2);
  EXPECT_NE(a.assignment, b.assignment);
  EXPECT_EQ(a.assignment[0], 0u);
  EXPECT_EQ(b.assignment[0], 0u);
}

TEST(Necklace, StructureOfM) {
  Necklace m = m_graph(4, 3);
  int x = m.x;
  const PortGraph& g = m.graph;
  // Joints: w_1/w_k degree 2x+1, middle joints 3x.
  EXPECT_EQ(g.degree(m.joints.front()), 2 * x + 1);
  EXPECT_EQ(g.degree(m.joints.back()), 2 * x + 1);
  EXPECT_EQ(g.degree(m.joints[1]), 3 * x);
  EXPECT_EQ(g.degree(m.joints[2]), 3 * x);
  // Leaves have degree 1, port 0.
  EXPECT_EQ(g.degree(m.left_leaf), 1);
  EXPECT_EQ(g.degree(m.right_leaf), 1);
  // n = k joints + k*x emerald nodes + (k-1)*x diamond nodes + 2(phi-1).
  EXPECT_EQ(g.n(), 4u + 4u * static_cast<std::size_t>(x) +
                       3u * static_cast<std::size_t>(x) + 2u * 2u);
}

// Claim 3.10: every k-necklace has election index exactly phi.
TEST(Necklace, ClaimThreeTenElectionIndex) {
  for (int phi : {2, 3, 4}) {
    for (std::uint64_t idx : {std::uint64_t{0}, std::uint64_t{1},
                              std::uint64_t{5}}) {
      Necklace nk = necklace_member(5, phi, idx);
      ViewRepo repo;
      ViewProfile profile = compute_profile(nk.graph, repo);
      ASSERT_TRUE(profile.feasible) << "phi " << phi << " idx " << idx;
      EXPECT_EQ(profile.election_index, phi)
          << "phi " << phi << " idx " << idx;
    }
  }
}

// The Theorem 3.3 observation: across codes, left leaves share B^phi and
// right leaves share B^phi (codes start and end with 0).
TEST(Necklace, ObservationLeavesShareDepthPhiViews) {
  const int k = 5, phi = 3;
  ViewRepo repo;
  Necklace n0 = necklace_member(k, phi, 0);
  ViewProfile p0 = compute_profile(n0.graph, repo, phi);
  for (std::uint64_t idx : {std::uint64_t{1}, std::uint64_t{3},
                            std::uint64_t{7}}) {
    Necklace ni = necklace_member(k, phi, idx);
    ViewProfile pi = compute_profile(ni.graph, repo, phi);
    EXPECT_EQ(p0.view(phi, n0.left_leaf), pi.view(phi, ni.left_leaf));
    EXPECT_EQ(p0.view(phi, n0.right_leaf), pi.view(phi, ni.right_leaf));
    // And the leaves are NOT distinguished one level earlier within one
    // graph (this is why the election index is phi, not less).
    EXPECT_EQ(pi.view(phi - 1, ni.left_leaf), pi.view(phi - 1, ni.right_leaf));
    EXPECT_NE(pi.view(phi, ni.left_leaf), pi.view(phi, ni.right_leaf));
  }
}

TEST(Necklace, FamilySizeFormula) {
  int x = f_parameter_for(5);
  EXPECT_EQ(necklace_family_size(5),
            util::ipow(static_cast<std::uint64_t>(x) + 1, 2));
}

TEST(Necklace, RejectsBadCodes) {
  EXPECT_THROW(necklace(4, 3, {1, 0, 0, 0}), std::logic_error);
  EXPECT_THROW(necklace(4, 3, {0, 0, 1, 0}), std::logic_error);  // c_{k-1}
  EXPECT_THROW(necklace(4, 1, {0, 0, 0, 0}), std::logic_error);
}

TEST(Locks, ZLockStructure) {
  Lock l = z_lock(5);
  EXPECT_EQ(l.graph.n(), 7u);  // 3-cycle + (z-1) clique nodes
  EXPECT_EQ(l.graph.degree(l.central), 6);  // z+1
  EXPECT_EQ(l.graph.at(l.central, 0).neighbor, l.principal);
  EXPECT_EQ(l.graph.degree(l.principal), 2);
}

TEST(Locks, S0MemberStructure) {
  const int alpha = 2, c = 2;
  LockChain g0 = s0_member(alpha, c, 0);
  LockChain g1 = s0_member(alpha, c, 1);
  EXPECT_EQ(g0.left_z, 4);
  EXPECT_EQ(g0.right_z, 4 + 2 * (alpha + c + 2));
  EXPECT_LT(g0.right_z, g1.left_z);  // property 2 (sizes strictly grow)
  // Distance between principal nodes equals the diameter (property 10).
  std::vector<int> dist = g0.graph.bfs_distances(g0.left_principal);
  int diam = g0.graph.diameter();
  EXPECT_EQ(dist[static_cast<std::size_t>(g0.right_principal)], diam);
}

// Claim 4.1: the election index of all graphs in S_0 is 1.
TEST(Locks, ClaimFourOneElectionIndexOne) {
  for (int i : {0, 1}) {
    LockChain g = s0_member(2, 2, i);
    ViewRepo repo;
    ViewProfile profile = compute_profile(g.graph, repo);
    ASSERT_TRUE(profile.feasible);
    EXPECT_EQ(profile.election_index, 1);
  }
}

TEST(Locks, PrunedViewIsTreeOfRightDepth) {
  LockChain g = s0_member(1, 2, 0);
  // Prune from the right central node, keeping only the cycle ports.
  std::vector<portgraph::Port> excluded;
  for (portgraph::Port p = 2; p < g.graph.degree(g.right_central); ++p)
    excluded.push_back(p);
  PrunedView pv = pruned_view(g.graph, g.right_central, excluded, 4);
  EXPECT_GT(pv.leaves.size(), 0u);
  EXPECT_EQ(pv.tree.m(), pv.tree.n() - 1);  // tree
  // Every leaf sits at distance 4 from the root (Claim 4.3: no node of
  // degree 1 exists in lock chains, so all branches extend fully).
  std::vector<int> dist = pv.tree.bfs_distances(pv.root);
  for (NodeId leaf : pv.leaves)
    EXPECT_EQ(dist[static_cast<std::size_t>(leaf)], 4);
}

// Claim 4.2 instantiated: after the merge (which replaces each inner
// lock's 3-cycle by a depth-ell pruned view), the central node's
// augmented truncated view at depth ell-1 is unchanged.
TEST(Locks, ClaimFourTwoViewPreservation) {
  const int ell = 3, chain_len = 4;
  LockChain h1 = s0_member(1, 2, 0);
  LockChain h2 = s0_member(1, 2, 1);
  LockChain q = merge_locks(h1, h2, ell, chain_len);

  ViewRepo repo;
  ViewProfile ph1 = compute_profile(h1.graph, repo, ell - 1);
  ViewProfile pq = compute_profile(q.graph, repo, ell - 1);
  // The merged graph keeps H1's ids for the copied part: left central node
  // is id 0 in both (copy order), and the right central of H1 is preserved
  // under the same id mapping. We locate them through the recorded fields.
  EXPECT_EQ(ph1.view(ell - 1, h1.left_principal),
            pq.view(ell - 1, q.left_principal));
  // Property 9 (scaled): principal nodes of the merged graph cannot be
  // told apart from those of the constituents up to depth
  // dist + ell - 1; at least the left lock's principal agrees at ell-1.
  ViewProfile ph2 = compute_profile(h2.graph, repo, ell - 1);
  EXPECT_EQ(ph2.view(ell - 1, h2.right_principal),
            pq.view(ell - 1, q.right_principal));
}

TEST(Locks, MergeProducesValidGraphWithBothLocks) {
  LockChain h1 = s0_member(1, 2, 0);
  LockChain h2 = s0_member(1, 2, 1);
  LockChain q = merge_locks(h1, h2, 2, 4);
  EXPECT_EQ(q.graph.degree(q.left_central), h1.left_z + 2);  // z+1 +chain
  EXPECT_EQ(q.left_z, h1.left_z);
  EXPECT_EQ(q.right_z, h2.right_z);
  EXPECT_GT(q.graph.n(), h1.graph.n());
}

TEST(Hairy, RingStructureAndFeasibility) {
  HairyRing h = hairy_ring({2, 0, 3, 1});
  EXPECT_EQ(h.graph.n(), 4u + 6u);
  ViewRepo repo;
  ViewProfile profile = compute_profile(h.graph, repo);
  EXPECT_TRUE(profile.feasible);  // unique max degree
}

TEST(Hairy, RejectsTiedMaximum) {
  EXPECT_THROW(hairy_ring({2, 2, 1}), std::logic_error);
}

TEST(Hairy, StretchReplicatesCut) {
  HairyRing h = hairy_ring({1, 0, 2});
  Stretch s = gamma_stretch(h, 0, 3);
  EXPECT_EQ(s.layout.ring_of_copy.size(), 3u);
  // Each copy contributes ring nodes + star leaves.
  EXPECT_EQ(s.graph.n(), 3u * (3u + 3u));
}

// Proposition 4.1's key equality: the foci of stretch j in G have the same
// B^T as the cut node z_j has in H_j, for T up to the stretch slack.
TEST(Hairy, FociShareViewsWithOriginal) {
  HairyRing h1 = hairy_ring({1, 0, 2});
  HairyRing h2 = hairy_ring({0, 3, 1});
  const int gamma = 12;
  PropositionGraph g = proposition_graph({h1, h2}, gamma);

  ViewRepo repo;
  const int t = 4;  // depth << gamma * ring size
  ViewProfile pg = compute_profile(g.graph, repo, t);
  ViewProfile p1 = compute_profile(h1.graph, repo, t);
  ViewProfile p2 = compute_profile(h2.graph, repo, t);

  // A copy of the cut node deep inside the stretch (middle copy) sees the
  // same depth-t neighborhood as the cut node in the original ring.
  NodeId focus1 = g.layouts[0].ring_of_copy[gamma / 2][0];
  NodeId focus1b = g.layouts[0].ring_of_copy[gamma / 2 + 1][0];
  EXPECT_EQ(pg.view(t, focus1), p1.view(t, h1.ring[0]));
  EXPECT_EQ(pg.view(t, focus1b), p1.view(t, h1.ring[0]));
  EXPECT_EQ(pg.view(t, focus1), pg.view(t, focus1b));  // two equal foci

  NodeId focus2 = g.layouts[1].ring_of_copy[gamma / 2][0];
  EXPECT_EQ(pg.view(t, focus2), p2.view(t, h2.ring[0]));
}

TEST(Hairy, PropositionGraphIsFeasible) {
  HairyRing h1 = hairy_ring({1, 0, 2});
  HairyRing h2 = hairy_ring({0, 3, 1});
  PropositionGraph g = proposition_graph({h1, h2}, 10);
  ViewRepo repo;
  ViewProfile profile = compute_profile(g.graph, repo);
  EXPECT_TRUE(profile.feasible);
}

// ------------------------------------------------- regular grid families
// Torus and hypercube feed the S1/V1 scenario sweeps as the regular
// mid-degree workloads; pin the structural facts those sweeps rely on.

TEST(GridFamilies, TorusRegularityAndDiameter) {
  for (auto [rows, cols] : {std::pair<std::size_t, std::size_t>{5, 8},
                            {3, 3},
                            {4, 7}}) {
    PortGraph g = portgraph::torus(rows, cols);
    ASSERT_EQ(g.n(), rows * cols);
    for (std::size_t v = 0; v < g.n(); ++v)
      EXPECT_EQ(g.degree(static_cast<NodeId>(v)), 4);
    // Wrap-around grid distance: farthest cell is half way in each
    // dimension.
    EXPECT_EQ(g.diameter(),
              static_cast<int>(rows / 2 + cols / 2))
        << rows << "x" << cols;
    // Consistently oriented: vertex-transitive, so refinement collapses
    // to one class per level and the graph is infeasible.
    ViewRepo repo;
    ViewProfile p = compute_profile(g, repo);
    EXPECT_FALSE(p.feasible);
    EXPECT_EQ(p.class_counts.back(), 1u);
  }
}

TEST(GridFamilies, HypercubeRegularityAndDiameter) {
  for (std::size_t d : {2, 3, 4, 5}) {
    PortGraph g = portgraph::hypercube(d);
    ASSERT_EQ(g.n(), std::size_t{1} << d);
    for (std::size_t v = 0; v < g.n(); ++v) {
      EXPECT_EQ(g.degree(static_cast<NodeId>(v)), static_cast<int>(d));
      // Port i crosses dimension i: an involution at every node.
      for (portgraph::Port i = 0; i < static_cast<portgraph::Port>(d); ++i) {
        NodeId u = g.at(static_cast<NodeId>(v), i).neighbor;
        EXPECT_EQ(g.at(u, i).neighbor, static_cast<NodeId>(v));
      }
    }
    EXPECT_EQ(g.diameter(), static_cast<int>(d));
    ViewRepo repo;
    ViewProfile p = compute_profile(g, repo);
    EXPECT_FALSE(p.feasible);
    EXPECT_EQ(p.class_counts.back(), 1u);
  }
}

// Election smoke on the grid families: the bare graphs are infeasible, so
// hang one leaf off node 0 — the unique degree-5 (resp. d+1) node breaks
// the symmetry and every algorithm of the portfolio must elect.
TEST(GridFamilies, PendantGridElectionSmoke) {
  for (bool cube : {false, true}) {
    PortGraph g = cube ? portgraph::hypercube(3) : portgraph::torus(3, 4);
    NodeId leaf = g.add_node();
    g.add_edge(0, g.degree(0), leaf, 0);
    g.validate();
    election::ElectionContext ctx(g);
    ASSERT_TRUE(ctx.feasible()) << (cube ? "hypercube" : "torus");
    for (const runner::PortfolioAlgorithm& alg : runner::election_portfolio()) {
      election::ElectionRun run = alg.run(ctx);
      EXPECT_TRUE(run.verdict.ok)
          << (cube ? "hypercube" : "torus") << " via " << alg.name << ": "
          << run.verdict.error;
    }
  }
}

}  // namespace
}  // namespace anole::families
