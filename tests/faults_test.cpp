// Tests for the fault-injection subsystem (DESIGN.md §12): plan
// generation invariants, injector mechanics (crash stash / recovery /
// rewire dirt reporting), and the full run_with_faults loop — safety
// under every adversary, incremental view repair engaging on
// rewire-only plans, and the repair equality assertion path.

#include <gtest/gtest.h>

#include <algorithm>

#include "election/harness.hpp"
#include "portgraph/builders.hpp"
#include "sim/faults.hpp"
#include "views/repair.hpp"

namespace anole::sim {
namespace {

using portgraph::NodeId;
using portgraph::Port;
using portgraph::PortGraph;

/// Scoped enable of the incremental-vs-recompute equality assertion
/// (process-global switch; leaving it on would tax unrelated tests).
struct RepairCheckGuard {
  RepairCheckGuard() { views::set_repair_check_enabled(true); }
  ~RepairCheckGuard() { views::set_repair_check_enabled(false); }
};

election::ProgramSet min_time_set(election::ElectionContext& ctx) {
  return election::make_min_time_programs(ctx);
}

TEST(FaultPlan, RandomPlanIsStrictlyIncreasingAndBalanced) {
  PortGraph g = portgraph::random_connected(20, 12, 5);
  FaultPlan plan = FaultPlan::random(g, /*horizon=*/80, /*crashes=*/3,
                                     /*rewires=*/3, /*seed=*/42);
  ASSERT_FALSE(plan.events.empty());
  int prev = 0;
  std::size_t crashes = 0;
  std::size_t recovers = 0;
  for (const FaultEvent& ev : plan.events) {
    EXPECT_GT(ev.round, prev);
    prev = ev.round;
    if (ev.kind == FaultEvent::Kind::kCrash) ++crashes;
    if (ev.kind == FaultEvent::Kind::kRecover) ++recovers;
  }
  // Every crash the generator managed to place is eventually recovered.
  EXPECT_EQ(crashes, recovers);
}

TEST(FaultPlan, SameSeedSamePlan) {
  PortGraph g = portgraph::random_connected(20, 12, 5);
  FaultPlan a = FaultPlan::random(g, 80, 2, 4, 7);
  FaultPlan b = FaultPlan::random(g, 80, 2, 4, 7);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].round, b.events[i].round);
    EXPECT_EQ(a.events[i].node, b.events[i].node);
    EXPECT_EQ(a.events[i].u1, b.events[i].u1);
    EXPECT_EQ(a.events[i].p1, b.events[i].p1);
  }
}

TEST(FaultInjector, CrashRecoverRoundTripRestoresTheGraph) {
  // A crash-only plan ends with recoveries of every crashed node, so
  // applying the WHOLE plan must restore the original wiring exactly
  // (same edges, same ports) — the stash round-trip.
  PortGraph g = portgraph::random_connected(16, 10, 3);
  FaultPlan plan = FaultPlan::random(g, 60, /*crashes=*/3, /*rewires=*/0,
                                     /*seed=*/9);
  ASSERT_FALSE(plan.events.empty());
  FaultInjector injector(g, plan);
  int last = plan.events.back().round;
  FaultInjector::Applied applied = injector.apply_through(last);
  EXPECT_EQ(applied.events, static_cast<int>(plan.events.size()));
  EXPECT_TRUE(applied.alive_changed);
  EXPECT_EQ(injector.alive_count(), g.n());
  EXPECT_TRUE(injector.graph() == g);
  EXPECT_EQ(injector.next_fault_round(), -1);
}

TEST(FaultInjector, RewireReportsAllFourDirtyRows) {
  PortGraph g = portgraph::lollipop(4, 3);  // edges {5,6}, {0,1} exist
  Port p1 = *g.port_to(5, 6);
  Port p2 = *g.port_to(0, 1);
  FaultPlan plan;
  plan.events.push_back({.kind = FaultEvent::Kind::kRewire, .round = 3,
                         .u1 = 5, .p1 = p1, .u2 = 0, .p2 = p2});
  FaultInjector injector(g, plan);
  EXPECT_EQ(injector.next_fault_round(), 3);
  FaultInjector::Applied applied = injector.apply_through(3);
  EXPECT_EQ(applied.events, 1);
  EXPECT_FALSE(applied.alive_changed);
  ASSERT_EQ(applied.rewires.size(), 1u);
  EXPECT_EQ(applied.dirty, (std::vector<NodeId>{0, 1, 5, 6}));
  EXPECT_TRUE(injector.graph().port_to(5, 0).has_value());
  EXPECT_TRUE(injector.graph().port_to(6, 1).has_value());
}

TEST(FaultInjector, PartialApplyStopsAtTheRound) {
  PortGraph g = portgraph::random_connected(16, 10, 3);
  FaultPlan plan = FaultPlan::random(g, 60, 2, 2, 5);
  ASSERT_GE(plan.events.size(), 2u);
  FaultInjector injector(g, plan);
  int first = plan.events.front().round;
  FaultInjector::Applied applied = injector.apply_through(first);
  EXPECT_EQ(applied.events, 1);
  EXPECT_EQ(injector.next_fault_round(), plan.events[1].round);
}

TEST(RunWithFaults, RewireOnlyPlanRepairsIncrementally) {
  RepairCheckGuard guard;  // every repair also asserts == full recompute
  PortGraph g = portgraph::random_connected(24, 16, 7);
  FaultPlan plan = FaultPlan::random(g, 60, 0, 4, 12);
  views::ViewRepo repo;
  FaultRunResult r = run_with_faults(g, repo, plan, min_time_set);
  EXPECT_TRUE(r.safe);
  EXPECT_TRUE(r.async_ok);  // vacuously: no adversary requested
  ASSERT_EQ(r.epochs.size(), plan.events.size() + 1);
  // Every post-edit epoch must have taken the incremental path (rewires
  // preserve degrees), reusing most per-node views.
  EXPECT_EQ(r.incremental_epochs, plan.events.size());
  EXPECT_GT(r.reused_views, r.recomputed_views);
}

TEST(RunWithFaults, SafetyHoldsUnderEveryAdversary) {
  PortGraph g = portgraph::random_connected(24, 16, 7);
  for (AdversaryKind kind :
       {AdversaryKind::kRoundRobin, AdversaryKind::kRandom,
        AdversaryKind::kCentralizer, AdversaryKind::kWorstCaseGreedy}) {
    FaultPlan plan = FaultPlan::random(g, 60, 2, 3, 13);
    views::ViewRepo repo;
    FaultRunOptions opts;
    opts.adversary = kind;
    opts.adversary_seed = 21;
    FaultRunResult r = run_with_faults(g, repo, plan, min_time_set, opts);
    EXPECT_TRUE(r.safe) << adversary_name(kind);
    EXPECT_TRUE(r.async_ok) << adversary_name(kind);
    EXPECT_FALSE(r.epochs.empty());
    for (const EpochReport& ep : r.epochs) {
      if (!ep.feasible || ep.interrupted) continue;
      // A full-budget epoch elects: the protocol's synchronous bound fits
      // inside the epoch, so everyone decided and a leader exists.
      EXPECT_GE(ep.leader_full, 0) << adversary_name(kind);
      EXPECT_EQ(ep.safety.decided, ep.alive) << adversary_name(kind);
    }
  }
}

TEST(RunWithFaults, CrashEpochsRebuildAndStaySafe) {
  RepairCheckGuard guard;
  PortGraph g = portgraph::random_connected(20, 14, 3);
  FaultPlan plan = FaultPlan::random(g, 50, 3, 0, 31);
  views::ViewRepo repo;
  FaultRunResult r = run_with_faults(g, repo, plan, min_time_set);
  EXPECT_TRUE(r.safe);
  // Crash/recover changes the alive set: never incrementally repairable.
  EXPECT_EQ(r.incremental_epochs, 0u);
  // Epoch alive counts must track the plan's crash/recover balance.
  std::size_t expected_alive = g.n();
  std::size_t i = 0;
  EXPECT_EQ(r.epochs[0].alive, expected_alive);
  for (const FaultEvent& ev : plan.events) {
    if (ev.kind == FaultEvent::Kind::kCrash) --expected_alive;
    if (ev.kind == FaultEvent::Kind::kRecover) ++expected_alive;
    ++i;
    ASSERT_LT(i, r.epochs.size());
    EXPECT_EQ(r.epochs[i].alive, expected_alive);
  }
}

}  // namespace
}  // namespace anole::sim
