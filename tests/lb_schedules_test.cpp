// Tests for the Theorem 4.2 schedule functions A(x,c), B(x,c), k*(alpha).

#include <gtest/gtest.h>

#include <cmath>

#include "election/lb_schedules.hpp"
#include "util/math.hpp"

namespace anole::election {
namespace {

TEST(LbSchedules, TimeOffsets) {
  EXPECT_EQ(lb_time_offset(LargeTimeVariant::kPhiPlusC, 5, 2), 7u);
  EXPECT_EQ(lb_time_offset(LargeTimeVariant::kCTimesPhi, 5, 2), 10u);
  EXPECT_EQ(lb_time_offset(LargeTimeVariant::kPhiPowC, 5, 2), 25u);
  EXPECT_EQ(lb_time_offset(LargeTimeVariant::kCPowPhi, 5, 2), 32u);
}

TEST(LbSchedules, IndexBudgets) {
  // part 1: B(x,c) = (c+2)x + 1
  EXPECT_EQ(lb_index_budget(LargeTimeVariant::kPhiPlusC, 1, 2), 5u);
  EXPECT_EQ(lb_index_budget(LargeTimeVariant::kPhiPlusC, 3, 2), 13u);
  // part 2: B(x,c) = (c+2)^x
  EXPECT_EQ(lb_index_budget(LargeTimeVariant::kCTimesPhi, 3, 2), 64u);
  // part 3: B(x,c) = 2^(c^(3x) - c); x=1,c=2: 2^(8-2) = 64
  EXPECT_EQ(lb_index_budget(LargeTimeVariant::kPhiPowC, 1, 2), 64u);
  // part 4: B(x,c) = 2^tower(x,c); x=2,c=2: 2^4 = 16
  EXPECT_EQ(lb_index_budget(LargeTimeVariant::kCPowPhi, 2, 2), 16u);
}

TEST(LbSchedules, BudgetsAreMonotone) {
  for (LargeTimeVariant v :
       {LargeTimeVariant::kPhiPlusC, LargeTimeVariant::kCTimesPhi,
        LargeTimeVariant::kPhiPowC, LargeTimeVariant::kCPowPhi}) {
    constexpr std::uint64_t kCap = UINT64_C(1) << 62;
    std::uint64_t prev = 0;
    for (std::uint64_t x = 1; x <= 6; ++x) {
      std::uint64_t b = lb_index_budget(v, x, 2);
      if (b >= kCap) break;  // strictly monotone until saturation
      EXPECT_GT(b, prev) << "variant " << static_cast<int>(v) << " x " << x;
      prev = b;
    }
  }
}

TEST(LbSchedules, KStarDefinition) {
  // k* = max k with B(k,c) <= alpha.
  for (LargeTimeVariant v :
       {LargeTimeVariant::kPhiPlusC, LargeTimeVariant::kCTimesPhi,
        LargeTimeVariant::kPhiPowC, LargeTimeVariant::kCPowPhi}) {
    for (std::uint64_t alpha :
         {std::uint64_t{10}, std::uint64_t{1000}, std::uint64_t{1} << 20}) {
      std::uint64_t k = lb_k_star(v, alpha, 2);
      if (k > 0) {
        EXPECT_LE(lb_index_budget(v, k, 2), alpha);
      }
      EXPECT_GT(lb_index_budget(v, k + 1, 2), alpha);
    }
  }
}

TEST(LbSchedules, HierarchyIsExponentiallySeparated) {
  // For large alpha, k*_1 >> k*_2 >> k*_3-ish >> k*_4.
  std::uint64_t alpha = UINT64_C(1) << 40;
  std::uint64_t k1 = lb_k_star(LargeTimeVariant::kPhiPlusC, alpha, 2);
  std::uint64_t k2 = lb_k_star(LargeTimeVariant::kCTimesPhi, alpha, 2);
  std::uint64_t k4 = lb_k_star(LargeTimeVariant::kCPowPhi, alpha, 2);
  EXPECT_GT(k1, 100 * k2);
  EXPECT_GT(k2, k4);
}

TEST(LbSchedules, GrowthShapes) {
  EXPECT_DOUBLE_EQ(lb_growth(LargeTimeVariant::kPhiPlusC, 1024), 1024.0);
  EXPECT_DOUBLE_EQ(lb_growth(LargeTimeVariant::kCTimesPhi, 1024), 10.0);
  EXPECT_NEAR(lb_growth(LargeTimeVariant::kPhiPowC, 1024), std::log2(10.0),
              1e-9);
  EXPECT_DOUBLE_EQ(lb_growth(LargeTimeVariant::kCPowPhi, 65536), 4.0);
}

}  // namespace
}  // namespace anole::election
