// Tests for the port-numbered graph substrate: model invariants, builders,
// BFS/diameter, walks, serialization, port shuffles.

#include <gtest/gtest.h>

#include "portgraph/builders.hpp"
#include "portgraph/io.hpp"
#include "portgraph/port_graph.hpp"

namespace anole::portgraph {
namespace {

TEST(PortGraph, AddEdgeSetsBothSides) {
  PortGraph g(2);
  g.add_edge(0, 0, 1, 0);
  EXPECT_EQ(g.at(0, 0).neighbor, 1);
  EXPECT_EQ(g.at(0, 0).rev_port, 0);
  EXPECT_EQ(g.at(1, 0).neighbor, 0);
  EXPECT_EQ(g.m(), 1u);
}

TEST(PortGraph, RejectsSelfLoop) {
  PortGraph g(2);
  EXPECT_THROW(g.add_edge(0, 0, 0, 1), std::logic_error);
}

TEST(PortGraph, RejectsPortReuse) {
  PortGraph g(3);
  g.add_edge(0, 0, 1, 0);
  EXPECT_THROW(g.add_edge(0, 0, 2, 0), std::logic_error);
}

TEST(PortGraph, ValidateCatchesHole) {
  PortGraph g(3);
  g.add_edge(0, 1, 1, 0);  // port 0 at node 0 left unassigned
  g.add_edge(1, 1, 2, 0);
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(PortGraph, ValidateCatchesDisconnected) {
  PortGraph g(4);
  g.add_edge(0, 0, 1, 0);
  g.add_edge(2, 0, 3, 0);
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(PortGraph, ValidateCatchesMultiEdge) {
  PortGraph g(2);
  g.add_edge(0, 0, 1, 0);
  g.add_edge(0, 1, 1, 1);
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(PortGraph, WalkFollowsPorts) {
  PortGraph g = path(4);  // 0-1-2-3
  auto nodes = g.walk(0, {0, 1, 0, 1, 0, 0});
  ASSERT_TRUE(nodes.has_value());
  EXPECT_EQ(*nodes, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(PortGraph, WalkRejectsWrongFarPort) {
  PortGraph g = path(3);
  EXPECT_FALSE(g.walk(0, {0, 0}).has_value());  // far port is 1, not 0
  EXPECT_FALSE(g.walk(0, {5, 1}).has_value());  // no such port
  EXPECT_FALSE(g.walk(0, {0}).has_value());     // odd length
}

TEST(PortGraph, PortTo) {
  PortGraph g = ring(5);
  EXPECT_EQ(g.port_to(0, 1), 0);
  EXPECT_EQ(g.port_to(1, 0), 1);
  EXPECT_FALSE(g.port_to(0, 2).has_value());
}

TEST(Builders, RingStructure) {
  PortGraph g = ring(6);
  EXPECT_EQ(g.n(), 6u);
  EXPECT_EQ(g.m(), 6u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_EQ(g.diameter(), 3);
}

TEST(Builders, PathStructure) {
  PortGraph g = path(5);
  EXPECT_EQ(g.m(), 4u);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 2);
  EXPECT_EQ(g.degree(4), 1);
  EXPECT_EQ(g.diameter(), 4);
}

TEST(Builders, CliqueStructure) {
  PortGraph g = clique(7);
  EXPECT_EQ(g.m(), 21u);
  for (NodeId v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 6);
  EXPECT_EQ(g.diameter(), 1);
}

TEST(Builders, GridStructure) {
  PortGraph g = grid(3, 4);
  EXPECT_EQ(g.n(), 12u);
  EXPECT_EQ(g.m(), 3u * 3 + 4u * 2);  // 17 edges
  EXPECT_EQ(g.degree(0), 2);          // corner
  EXPECT_EQ(g.degree(5), 4);          // interior
  EXPECT_EQ(g.diameter(), 5);
}

TEST(Builders, HypercubeStructure) {
  PortGraph g = hypercube(4);
  EXPECT_EQ(g.n(), 16u);
  for (std::size_t v = 0; v < 16; ++v)
    EXPECT_EQ(g.degree(static_cast<NodeId>(v)), 4);
  EXPECT_EQ(g.diameter(), 4);
}

TEST(Builders, CompleteBipartite) {
  PortGraph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.m(), 12u);
  EXPECT_EQ(g.degree(0), 4);
  EXPECT_EQ(g.degree(3), 3);
}

TEST(Builders, BinaryTree) {
  PortGraph g = binary_tree(7);
  EXPECT_EQ(g.m(), 6u);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(1), 3);
  EXPECT_EQ(g.degree(6), 1);
}

TEST(Builders, RandomConnectedIsValidAndDeterministic) {
  for (std::uint64_t seed : {1ULL, 2ULL, 99ULL}) {
    PortGraph a = random_connected(30, 20, seed);
    PortGraph b = random_connected(30, 20, seed);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.n(), 30u);
    EXPECT_EQ(a.m(), 49u);
    EXPECT_TRUE(a.connected());
  }
  EXPECT_FALSE(random_connected(30, 20, 1) == random_connected(30, 20, 2));
}

TEST(Builders, RandomConnectedCapsExtraEdges) {
  PortGraph g = random_connected(5, 1000, 3);
  EXPECT_EQ(g.m(), 10u);  // complete graph
}

TEST(Builders, ShufflePortsPreservesStructure) {
  PortGraph g = random_connected(20, 15, 5);
  PortGraph s = shuffle_ports(g, 17);
  s.validate();
  EXPECT_EQ(s.n(), g.n());
  EXPECT_EQ(s.m(), g.m());
  for (std::size_t v = 0; v < g.n(); ++v)
    EXPECT_EQ(s.degree(static_cast<NodeId>(v)),
              g.degree(static_cast<NodeId>(v)));
  // Same underlying edges: neighbor sets agree.
  for (std::size_t v = 0; v < g.n(); ++v) {
    for (Port p = 0; p < g.degree(static_cast<NodeId>(v)); ++p) {
      NodeId u = g.at(static_cast<NodeId>(v), p).neighbor;
      EXPECT_TRUE(s.port_to(static_cast<NodeId>(v), u).has_value());
    }
  }
}

TEST(Builders, DisjointUnionOffsetsIds) {
  PortGraph g = disjoint_union(ring(3), path(2));
  EXPECT_EQ(g.n(), 5u);
  EXPECT_EQ(g.m(), 4u);
  EXPECT_FALSE(g.connected());
  EXPECT_EQ(g.at(3, 0).neighbor, 4);
}

TEST(Isomorphism, DetectsPortIsomorphism) {
  PortGraph a = ring(5);
  std::vector<NodeId> rot{1, 2, 3, 4, 0};  // rotation preserves ports
  EXPECT_TRUE(is_port_isomorphism(a, a, rot));
  std::vector<NodeId> swap{1, 0, 2, 3, 4};  // breaks adjacency
  EXPECT_FALSE(is_port_isomorphism(a, a, swap));
}

TEST(Io, GraphCodecRoundTrip) {
  for (std::uint64_t seed : {11ULL, 12ULL}) {
    PortGraph g = random_connected(25, 30, seed);
    PortGraph back = decode_graph(encode_graph(g));
    EXPECT_EQ(back, g);
  }
}

TEST(Io, TextDumpMentionsAllNodes) {
  std::string text = to_text(ring(4));
  EXPECT_NE(text.find("n=4"), std::string::npos);
  EXPECT_NE(text.find("3:"), std::string::npos);
}

TEST(Bfs, DistancesOnRing) {
  PortGraph g = ring(8);
  std::vector<int> d = g.bfs_distances(0);
  EXPECT_EQ(d[4], 4);
  EXPECT_EQ(d[7], 1);
}

TEST(PortGraph, DiameterMemoSurvivesMutationAndCopy) {
  // diameter() memoizes its all-sources BFS; mutating the graph must
  // invalidate the cache, and copies must stay structurally equal (the
  // cache is excluded from operator==).
  PortGraph g = path(6);
  EXPECT_EQ(g.diameter(), 5);
  EXPECT_EQ(g.diameter(), 5);  // memo hit
  PortGraph fresh = path(6);
  EXPECT_TRUE(g == fresh);  // fresh never computed a diameter
  // Close the path into a ring: the cached 5 must not leak through.
  g.add_edge(0, 1, 5, 1);
  EXPECT_EQ(g.diameter(), 3);
  PortGraph copy = g;
  EXPECT_EQ(copy.diameter(), 3);
  EXPECT_TRUE(copy == g);
}

TEST(PortGraph, RewireEdgeSwapsEndpointsAndInvalidatesDiameter) {
  // Lollipop: clique {0..3} + path 0-4-5-6-7, diameter 5 (pendant 7 to a
  // far clique node). Swapping the edges {6,7} and {1,2} into 6-1 and 7-2
  // moves the pendant next to the clique: the diameter drops to 4, which
  // the memoized value must not survive.
  PortGraph g = lollipop(4, 4);
  EXPECT_EQ(g.diameter(), 5);
  Port p1 = *g.port_to(6, 7);
  Port p2 = *g.port_to(1, 2);
  g.rewire_edge(6, p1, 1, p2);
  g.validate();  // degrees and port contiguity intact, still connected
  EXPECT_EQ(g.at(6, p1).neighbor, 1);
  EXPECT_EQ(g.at(1, p2).neighbor, 6);
  EXPECT_TRUE(g.port_to(7, 2).has_value());
  EXPECT_FALSE(g.port_to(6, 7).has_value());
  EXPECT_EQ(g.diameter(), 4);  // stale cache would still say 5
}

TEST(PortGraph, RewireEdgeRejectsOverlapAndMultiEdge) {
  PortGraph g = ring(6);
  // {0,1} and {1,2} share endpoint 1.
  EXPECT_THROW(g.rewire_edge(0, *g.port_to(0, 1), 1, *g.port_to(1, 2)),
               std::logic_error);
  // Swapping {0,1} and {2,1}: far endpoints coincide (v1 == v2 == 1).
  EXPECT_THROW(g.rewire_edge(0, *g.port_to(0, 1), 2, *g.port_to(2, 1)),
               std::logic_error);
  PortGraph c = clique(5);
  // Every replacement edge already exists in a clique.
  EXPECT_THROW(c.rewire_edge(0, *c.port_to(0, 1), 2, *c.port_to(2, 3)),
               std::logic_error);
}

TEST(PortGraph, CrashNodeMasksInPlaceAndRecovers) {
  PortGraph g = wheel(4);  // hub 4 + rim ring 0-1-2-3
  PortGraph original = g;
  EXPECT_EQ(g.diameter(), 2);
  std::vector<PortGraph::RemovedEdge> removed = g.crash_node(1);
  ASSERT_EQ(removed.size(), 3u);  // rim neighbors 0, 2 and the hub
  // Survivors keep their row sizes and port numbers; only slots mask.
  EXPECT_EQ(g.degree(0), original.degree(0));
  EXPECT_EQ(g.assigned_degree(0), original.degree(0) - 1);
  EXPECT_EQ(g.assigned_degree(1), 0);
  EXPECT_EQ(g.m(), original.m() - 3);
  for (const PortGraph::RemovedEdge& e : removed) {
    EXPECT_EQ(e.u, 1);
    EXPECT_EQ(g.at(e.u, e.pu).neighbor, -1);
    EXPECT_EQ(g.at(e.v, e.pv).neighbor, -1);
  }
  // Node 1 is unreachable: a stale cached diameter of 2 would mask the
  // disconnection.
  EXPECT_THROW(static_cast<void>(g.diameter()), std::logic_error);
  // Recovery restores the exact original wiring, ports and all.
  for (const PortGraph::RemovedEdge& e : removed)
    g.add_edge(e.u, e.pu, e.v, e.pv);
  EXPECT_TRUE(g == original);
  g.validate();
  EXPECT_EQ(g.diameter(), 2);
}

TEST(Builders, AliveSubgraphCompactsPortsInOrder) {
  PortGraph g = wheel(4);
  g.crash_node(1);
  std::vector<bool> alive(g.n(), true);
  alive[1] = false;
  AliveSubgraph sub = alive_subgraph(g, alive);
  sub.graph.validate();
  ASSERT_EQ(sub.graph.n(), 4u);
  EXPECT_EQ(sub.to_sub[1], -1);
  for (NodeId sv = 0; sv < static_cast<NodeId>(sub.graph.n()); ++sv)
    EXPECT_EQ(sub.to_sub[static_cast<std::size_t>(sub.to_full
                  [static_cast<std::size_t>(sv)])], sv);
  // The hub (full id 4) lost exactly its edge to 1.
  EXPECT_EQ(sub.graph.degree(sub.to_sub[4]), 3);
  // Surviving ports are renumbered 0..d'-1 preserving relative order, and
  // sub_port maps exactly the surviving slots.
  for (std::size_t v = 0; v < g.n(); ++v) {
    if (!alive[v]) continue;
    Port next = 0;
    for (Port p = 0; p < g.degree(static_cast<NodeId>(v)); ++p) {
      if (g.at(static_cast<NodeId>(v), p).neighbor < 0) {
        EXPECT_EQ(sub.sub_port[v][static_cast<std::size_t>(p)], -1);
      } else {
        EXPECT_EQ(sub.sub_port[v][static_cast<std::size_t>(p)], next);
        ++next;
      }
    }
  }
}

}  // namespace
}  // namespace anole::portgraph
