// Parameterized property suites: whole-pipeline invariants swept across
// graph families, sizes and seeds (TEST_P), plus advice failure injection.
//
// Invariants checked per graph:
//  I1  Elect decides in exactly phi rounds at every node (Thm 3.1.2).
//  I2  The advice string round-trips and its size is O(n log n) (Thm 3.1.1).
//  I3  All outputs are simple paths ending at one common node.
//  I4  The leader is the node labeled 1 (canonically smallest B^phi).
//  I5  Generic(phi) elects the same leader within D + phi + 1 rounds.
//  I6  Message count equals rounds * 2m (full-information protocol).

#include <gtest/gtest.h>

#include <cmath>

#include "advice/min_time.hpp"
#include "election/elect_program.hpp"
#include "election/harness.hpp"
#include "families/necklace.hpp"
#include "families/ring_of_cliques.hpp"
#include "portgraph/builders.hpp"
#include "util/prng.hpp"
#include "views/profile.hpp"

namespace anole {
namespace {

using portgraph::PortGraph;

struct GraphCase {
  std::string name;
  PortGraph graph;
};

std::vector<GraphCase> pipeline_cases() {
  std::vector<GraphCase> cases;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    cases.push_back({"sparse_s" + std::to_string(seed),
                     portgraph::random_connected(18, 6, seed)});
    cases.push_back({"dense_s" + std::to_string(seed),
                     portgraph::random_connected(18, 60, seed)});
  }
  cases.push_back({"grid4x5", portgraph::grid(4, 5)});
  cases.push_back({"tree15", portgraph::binary_tree(15)});
  cases.push_back({"path12", portgraph::path(12)});
  for (int k : {5, 7})
    cases.push_back({"gk" + std::to_string(k),
                     families::g_family_member(k, 3).graph});
  for (int phi : {2, 3, 5})
    cases.push_back({"necklace_phi" + std::to_string(phi),
                     families::necklace_member(5, phi, 2).graph});
  return cases;
}

class PipelineProperty : public ::testing::TestWithParam<GraphCase> {};

TEST_P(PipelineProperty, MinTimeElectionInvariants) {
  const PortGraph& g = GetParam().graph;
  views::ViewRepo probe;
  views::ViewProfile profile = views::compute_profile(g, probe, 1);
  ASSERT_TRUE(profile.feasible);
  int phi = profile.election_index;

  election::ElectionRun run = election::run_min_time(g);
  // I1
  ASSERT_TRUE(run.ok()) << run.verdict.error;
  EXPECT_EQ(run.phi, phi);
  EXPECT_EQ(run.metrics.rounds, phi);
  for (int r : run.metrics.decision_round) EXPECT_EQ(r, phi);
  // I2
  double n = static_cast<double>(g.n());
  EXPECT_LE(static_cast<double>(run.advice_bits),
            90.0 * n * std::max(1.0, std::log2(n)));
  // I3 is what run.ok() verified; I4:
  views::ViewRepo repo;
  views::ViewProfile p2 = views::compute_profile(g, repo, 1);
  advice::MinTimeAdvice adv = advice::compute_advice(g, repo, p2);
  advice::Labeler labeler(repo, adv.e1, adv.e2);
  EXPECT_EQ(labeler.retrieve_label(
                p2.view(phi, run.verdict.leader)),
            1u);
  // I6
  EXPECT_EQ(run.metrics.message_count,
            static_cast<std::size_t>(phi) * 2 * g.m());
}

TEST_P(PipelineProperty, GenericElectsCanonicalMinimum) {
  const PortGraph& g = GetParam().graph;
  // I5: Generic(phi) (= Election1) elects the node whose depth-phi view is
  // canonically smallest, within D + phi + 1 rounds. (Elect may pick a
  // *different* leader — the trie-label-1 node; the paper only requires
  // each algorithm to be internally consistent.)
  election::ElectionRun gen = election::run_large_time(
      g, election::LargeTimeVariant::kPhiPlusC, 2);
  ASSERT_TRUE(gen.ok()) << gen.verdict.error;
  EXPECT_LE(gen.metrics.rounds, gen.diameter + gen.phi + 1);

  views::ViewRepo repo;
  views::ViewProfile profile = views::compute_profile(g, repo);
  ASSERT_TRUE(profile.feasible);
  EXPECT_EQ(gen.verdict.leader,
            views::argmin_view(
                repo, profile.ids[static_cast<std::size_t>(
                          profile.election_index)]));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PipelineProperty,
                         ::testing::ValuesIn(pipeline_cases()),
                         [](const auto& info) { return info.param.name; });

// --- Failure injection: corrupted advice must never silently elect two
// leaders while passing verification as "ok", and must never crash
// uncontrolled (all failures are clean exceptions or verifier rejections).
class AdviceCorruption : public ::testing::TestWithParam<int> {};

TEST_P(AdviceCorruption, CorruptedAdviceFailsCleanly) {
  PortGraph g = portgraph::random_connected(14, 10, 77);
  views::ViewRepo repo;
  views::ViewProfile profile = views::compute_profile(g, repo, 1);
  ASSERT_TRUE(profile.feasible);
  coding::BitString bits =
      advice::compute_advice(g, repo, profile).to_bits();

  util::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()));
  // Flip one random bit.
  std::size_t flip = rng.below(bits.size());
  coding::BitString corrupted;
  for (std::size_t i = 0; i < bits.size(); ++i)
    corrupted.push_back(i == flip ? !bits[i] : bits[i]);

  int clean_failures = 0, still_correct = 0;
  try {
    auto adv = std::make_shared<const advice::MinTimeAdvice>(
        advice::MinTimeAdvice::from_bits(corrupted));
    std::vector<std::unique_ptr<sim::NodeProgram>> programs;
    for (std::size_t v = 0; v < g.n(); ++v)
      programs.push_back(std::make_unique<election::ElectProgram>(adv));
    sim::Engine engine(g, repo);
    sim::RunMetrics metrics =
        engine.run(programs, static_cast<int>(adv->phi) + 2);
    if (metrics.timed_out) {
      ++clean_failures;
    } else {
      election::VerifyResult verdict =
          election::verify_election(g, metrics.outputs);
      if (verdict.ok)
        ++still_correct;  // a lucky flip may be harmless — acceptable
      else
        ++clean_failures;
    }
  } catch (const std::logic_error&) {
    ++clean_failures;  // decode or labeling detected the corruption
  }
  EXPECT_EQ(clean_failures + still_correct, 1);
}

INSTANTIATE_TEST_SUITE_P(Flips, AdviceCorruption, ::testing::Range(0, 24));

// --- Codec fuzz: Concat/Decode and the tree codec under random inputs of
// growing size.
class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, ConcatRoundTripsLargeRandomParts) {
  util::SplitMix64 rng(GetParam());
  std::vector<coding::BitString> parts;
  std::size_t k = 1 + rng.below(40);
  for (std::size_t i = 0; i < k; ++i) {
    coding::BitString p;
    std::size_t len = rng.below(300);
    for (std::size_t j = 0; j < len; ++j) p.push_back(rng.chance(1, 2));
    parts.push_back(std::move(p));
  }
  std::vector<coding::BitString> back = coding::decode(coding::concat(parts));
  ASSERT_EQ(back.size(), parts.size());
  for (std::size_t i = 0; i < k; ++i) EXPECT_EQ(back[i], parts[i]);
}

TEST_P(CodecFuzz, AdviceDecodeRejectsTruncation) {
  PortGraph g = portgraph::random_connected(10, 6, GetParam());
  views::ViewRepo repo;
  views::ViewProfile profile = views::compute_profile(g, repo, 1);
  if (!profile.feasible) GTEST_SKIP();
  coding::BitString bits =
      advice::compute_advice(g, repo, profile).to_bits();
  coding::BitString truncated;
  for (std::size_t i = 0; i + 2 < bits.size() / 2; ++i)
    truncated.push_back(bits[i]);
  EXPECT_THROW(advice::MinTimeAdvice::from_bits(truncated),
               std::logic_error);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- View invariants swept over depth pairs.
class TruncateProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TruncateProperty, TruncationComposes) {
  auto [a, b] = GetParam();
  if (b > a) std::swap(a, b);
  PortGraph g = portgraph::random_connected(12, 9, 31);
  views::ViewRepo repo;
  views::ViewProfile p = views::compute_profile(g, repo, a);
  for (std::size_t v = 0; v < g.n(); ++v) {
    views::ViewId full = p.view(a, static_cast<portgraph::NodeId>(v));
    // truncate(truncate(x, b'), b) == truncate(x, b) for any b <= b' <= a.
    for (int mid = b; mid <= a; ++mid)
      EXPECT_EQ(repo.truncate(repo.truncate(full, mid), b),
                repo.truncate(full, b));
  }
}

INSTANTIATE_TEST_SUITE_P(
    DepthPairs, TruncateProperty,
    ::testing::Combine(::testing::Values(2, 4, 6), ::testing::Values(0, 1, 3)));

}  // namespace
}  // namespace anole
