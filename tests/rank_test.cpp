// Tests for canonical rank ordering (DESIGN.md §8): ranks assigned during
// batched refinement reproduce the structural canonical order exactly, on
// every level, for every graph family; the O(1) compare fast path, the
// argmin min-rank scan and the rank-driven BuildTrie sorts are
// golden-equivalent to the structural pre-rank paths; mixed
// ranked/unranked comparisons (views made by truncate or per-node
// interning) stay correct; ranks survive repo sharing across graphs and
// are independent of the gather/hash thread pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "advice/min_time.hpp"
#include "families/hairy.hpp"
#include "families/necklace.hpp"
#include "portgraph/builders.hpp"
#include "util/thread_pool.hpp"
#include "views/profile.hpp"
#include "views/refiner.hpp"
#include "views/view_repo.hpp"

namespace anole::views {
namespace {

using portgraph::NodeId;
using portgraph::PortGraph;

// Per-node interning (the pre-Refiner path): produces the same ids as the
// batched path but assigns no ranks — the structural-order reference and
// the source of unranked views for the mixed-compare tests.
std::vector<std::vector<ViewId>> naive_levels(const PortGraph& g,
                                              ViewRepo& repo, int depth) {
  std::size_t n = g.n();
  std::vector<std::vector<ViewId>> levels;
  std::vector<ViewId> level(n);
  for (std::size_t v = 0; v < n; ++v)
    level[v] = repo.leaf(g.degree(static_cast<NodeId>(v)));
  levels.push_back(level);
  std::vector<ChildRef> kids;
  for (int t = 0; t < depth; ++t) {
    std::vector<ViewId> next(n);
    for (std::size_t v = 0; v < n; ++v) {
      const auto& row = g.neighbors(static_cast<NodeId>(v));
      kids.clear();
      for (const auto& he : row)
        kids.emplace_back(he.rev_port,
                          level[static_cast<std::size_t>(he.neighbor)]);
      next[v] = repo.intern(kids);
    }
    level = next;
    levels.push_back(level);
  }
  return levels;
}

std::vector<PortGraph> property_graphs() {
  std::vector<PortGraph> graphs;
  for (std::uint64_t seed = 1; seed <= 4; ++seed)
    graphs.push_back(portgraph::random_connected(24, 20, seed));
  graphs.push_back(portgraph::ring(16));
  graphs.push_back(portgraph::clique(7));
  graphs.push_back(families::hairy_ring({2, 0, 3, 1, 0, 2, 1}).graph);
  return graphs;
}

TEST(Rank, OrderMatchesStructuralCompareOnEveryLevel) {
  // The property the O(1) fast path rests on: for any two distinct views
  // of one refinement level, rank order == structural order, and compare()
  // (which dispatches on ranks) agrees with compare_structural() (which
  // never reads them as a top-level verdict).
  for (const PortGraph& g : property_graphs()) {
    ViewRepo repo;
    ViewProfile p = compute_profile(g, repo, /*min_depth=*/4);
    for (int t = 0; t <= p.computed_depth(); ++t) {
      std::vector<ViewId> distinct = distinct_ids(p.ids[t]);
      for (ViewId v : distinct)
        ASSERT_NE(repo.rank(v), kUnranked)
            << "refined level " << t << " left a view unranked";
      for (std::size_t i = 0; i < distinct.size(); ++i)
        for (std::size_t j = i + 1; j < distinct.size(); ++j) {
          ViewId a = distinct[i];
          ViewId b = distinct[j];
          std::strong_ordering structural = repo.compare_structural(a, b);
          EXPECT_EQ(repo.compare(a, b), structural) << "level " << t;
          EXPECT_EQ(repo.rank(a) < repo.rank(b),
                    structural == std::strong_ordering::less)
              << "level " << t;
          // Antisymmetry through the fast path.
          EXPECT_EQ(repo.compare(b, a) == std::strong_ordering::less,
                    structural == std::strong_ordering::greater);
        }
    }
  }
}

TEST(Rank, MergeKeepsOrderAcrossGraphsSharingOneRepo) {
  // Cross-feed runs (E2/E3/E5/E6) refine several graphs into one repo: the
  // second refinement merges its fresh views into the existing per-depth
  // rank sequences. Rank order must stay the structural order over the
  // union.
  ViewRepo repo;
  ViewProfile p1 = compute_profile(portgraph::random_connected(20, 16, 9),
                                   repo, /*min_depth=*/3);
  ViewProfile p2 = compute_profile(portgraph::grid(4, 5), repo,
                                   /*min_depth=*/3);
  for (int t = 1; t <= 3; ++t) {
    std::vector<ViewId> all = p1.ids[t];
    all.insert(all.end(), p2.ids[t].begin(), p2.ids[t].end());
    std::vector<ViewId> distinct = distinct_ids(all);
    for (std::size_t i = 0; i < distinct.size(); ++i)
      for (std::size_t j = i + 1; j < distinct.size(); ++j) {
        ViewId a = distinct[i];
        ViewId b = distinct[j];
        ASSERT_NE(repo.rank(a), kUnranked);
        ASSERT_NE(repo.rank(b), kUnranked);
        EXPECT_EQ(repo.compare(a, b), repo.compare_structural(a, b))
            << "depth " << t;
      }
  }
}

TEST(Rank, MixedRankedUnrankedCompareIsStructural) {
  // Views interned outside refinement carry no rank; comparing them
  // against ranked views must fall back to the structural walk and agree
  // with the pure-structural verdict in both orientations.
  ViewRepo repo;
  PortGraph g1 = portgraph::random_connected(18, 14, 2);
  ViewProfile p1 = compute_profile(g1, repo, /*min_depth=*/3);
  PortGraph g2 = portgraph::path(17);
  std::vector<std::vector<ViewId>> unranked = naive_levels(g2, repo, 3);

  bool saw_mixed = false;
  for (int t = 1; t <= 3; ++t) {
    for (ViewId a : distinct_ids(p1.ids[t]))
      for (ViewId b : distinct_ids(unranked[static_cast<std::size_t>(t)])) {
        if (a == b) continue;
        if (repo.rank(b) == kUnranked) saw_mixed = true;
        std::strong_ordering structural = repo.compare_structural(a, b);
        EXPECT_EQ(repo.compare(a, b), structural);
        EXPECT_EQ(repo.compare(b, a) == std::strong_ordering::less,
                  structural == std::strong_ordering::greater);
      }
  }
  // The path's deep views differ from the random graph's: some must have
  // escaped ranking, or this test exercised nothing.
  EXPECT_TRUE(saw_mixed);
}

TEST(Rank, TruncatedViewsCompareCorrectly) {
  // truncate() interns through the per-record path and leaves new records
  // unranked; comparisons between truncations and ranked refined views of
  // the same depth must still follow the structural order.
  ViewRepo repo;
  PortGraph g1 = portgraph::random_connected(18, 14, 4);
  ViewProfile p1 = compute_profile(g1, repo, /*min_depth=*/4);
  PortGraph g2 = portgraph::grid(3, 6);
  std::vector<std::vector<ViewId>> alien = naive_levels(g2, repo, 4);

  for (ViewId deep : distinct_ids(alien[4])) {
    for (int x = 1; x <= 3; ++x) {
      ViewId cut = repo.truncate(deep, x);
      for (ViewId ranked : distinct_ids(p1.ids[static_cast<std::size_t>(x)])) {
        if (cut == ranked) continue;
        EXPECT_EQ(repo.compare(cut, ranked),
                  repo.compare_structural(cut, ranked));
        EXPECT_EQ(repo.compare(ranked, cut),
                  repo.compare_structural(ranked, cut));
      }
    }
  }
}

TEST(Rank, ArgminEquivalentToStructuralReference) {
  // argmin_view's min-rank scan must pick exactly the node the structural
  // dedup + compare loop picks — including the lowest-numbered-witness
  // tie-break — and the unranked fallback must agree as well.
  for (const PortGraph& g : property_graphs()) {
    ViewRepo ranked_repo;
    ViewProfile p = compute_profile(g, ranked_repo, /*min_depth=*/3);
    ViewRepo unranked_repo;
    std::vector<std::vector<ViewId>> unranked =
        naive_levels(g, unranked_repo, 3);
    for (int t = 0; t <= 3; ++t) {
      const std::vector<ViewId>& level = p.ids[t];
      // Structural reference: canonical minimum over distinct ids, first
      // witness in node order.
      std::vector<ViewId> distinct = distinct_ids(level);
      ViewId best = distinct.front();
      for (ViewId v : distinct)
        if (ranked_repo.compare_structural(v, best) ==
            std::strong_ordering::less)
          best = v;
      NodeId want = -1;
      for (std::size_t v = 0; v < level.size(); ++v)
        if (level[v] == best) {
          want = static_cast<NodeId>(v);
          break;
        }
      EXPECT_EQ(argmin_view(ranked_repo, level), want) << "level " << t;
      EXPECT_EQ(argmin_view(unranked_repo,
                            unranked[static_cast<std::size_t>(t)]),
                want)
          << "level " << t;
    }
  }
}

TEST(Rank, BuildTrieAdviceGoldenEquivalentToUnrankedPath) {
  // The whole minimum-time advice (depth-1 trie, deep tries, labels, BFS
  // tree) depends on views only through the canonical order, so computing
  // it from a ranked profile and from a rank-free per-node profile must
  // produce bit-identical advice.
  std::vector<PortGraph> graphs;
  graphs.push_back(portgraph::random_connected(20, 40, 6));
  graphs.push_back(families::necklace_member(5, 3, 1).graph);
  graphs.push_back(families::necklace_member(4, 4, 2).graph);
  for (const PortGraph& g : graphs) {
    ViewRepo ranked_repo;
    ViewProfile ranked = compute_profile(g, ranked_repo, /*min_depth=*/1);
    ASSERT_TRUE(ranked.feasible);

    // Rank-free twin: same levels, same ids, no ranks anywhere.
    ViewRepo plain_repo;
    std::vector<std::vector<ViewId>> levels =
        naive_levels(g, plain_repo, ranked.computed_depth());
    ViewProfile plain;
    plain.ids = levels;
    for (const auto& level : levels)
      plain.class_counts.push_back(distinct_ids(level).size());
    plain.feasible = ranked.feasible;
    plain.election_index = ranked.election_index;

    coding::BitString want =
        advice::compute_advice(g, plain_repo, plain).to_bits();
    coding::BitString got =
        advice::compute_advice(g, ranked_repo, ranked).to_bits();
    EXPECT_EQ(got, want);
  }
}

TEST(Rank, IndependentOfGatherPool) {
  // With a pool the intern stage runs concurrently, so raw ids may differ
  // from the serial run; the ranks — the canonical positions the O(1)
  // compare path keys on — must not (DESIGN.md §10): node by node, level
  // by level, both runs rank each view identically.
  PortGraph g = portgraph::random_connected(5000, 4000, 13);
  ViewRepo repo_seq;
  ViewProfile p_seq = compute_profile(g, repo_seq, /*min_depth=*/2);
  util::ThreadPool pool(3);
  ViewRepo repo_par;
  ViewProfile p_par = compute_profile(
      g, repo_par,
      ProfileOptions{.min_depth = 2, .keep_history = true, .pool = &pool});
  ASSERT_EQ(p_seq.ids.size(), p_par.ids.size());
  EXPECT_EQ(p_seq.class_counts, p_par.class_counts);
  EXPECT_EQ(repo_seq.size(), repo_par.size());
  for (int t = 0; t <= p_seq.computed_depth(); ++t) {
    const std::vector<ViewId>& seq_level = p_seq.ids[static_cast<std::size_t>(t)];
    const std::vector<ViewId>& par_level = p_par.ids[static_cast<std::size_t>(t)];
    ASSERT_EQ(seq_level.size(), par_level.size());
    for (std::size_t v = 0; v < seq_level.size(); ++v) {
      ASSERT_NE(repo_seq.rank(seq_level[v]), kUnranked);
      ASSERT_EQ(repo_seq.rank(seq_level[v]), repo_par.rank(par_level[v]))
          << "level " << t << " node " << v;
    }
  }
}

}  // namespace
}  // namespace anole::views
