// Tests for the batched refinement subsystem (DESIGN.md §7): Refiner-built
// profiles are id-identical to a naive per-node intern reference; the
// keep_history=false mode drops levels but nothing else; run_full_info is
// byte-identical to Engine::run and to itself across thread counts; the
// flat interning index survives a 65536-node ring stress.

#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>

#include "families/hairy.hpp"
#include "portgraph/builders.hpp"
#include "sim/engine.hpp"
#include "sim/full_info.hpp"
#include "util/thread_pool.hpp"
#include "views/profile.hpp"
#include "views/refiner.hpp"
#include "views/view_repo.hpp"

namespace anole::views {
namespace {

using portgraph::NodeId;
using portgraph::PortGraph;

// The pre-Refiner reference: one ViewRepo::intern per node per level and a
// per-level unordered_set recount — exactly the code compute_profile used
// before batching. Ids must match the batched path *as integers*, because
// the Refiner interns each level's distinct signatures in first-occurrence
// node order, the same order this loop interns them.
ViewProfile naive_profile(const PortGraph& g, ViewRepo& repo, int min_depth) {
  ViewProfile profile;
  std::size_t n = g.n();
  std::vector<ViewId> level(n);
  for (std::size_t v = 0; v < n; ++v)
    level[v] = repo.leaf(g.degree(static_cast<NodeId>(v)));
  auto distinct_count = [](const std::vector<ViewId>& ids) {
    return std::unordered_set<ViewId>(ids.begin(), ids.end()).size();
  };
  profile.ids.push_back(level);
  profile.class_counts.push_back(distinct_count(level));
  for (;;) {
    int t = profile.computed_depth();
    std::size_t classes = profile.class_counts.back();
    if (classes == n && profile.election_index < 0) {
      profile.feasible = true;
      profile.election_index = t;
    }
    bool stabilized =
        t >= 1 &&
        classes == profile.class_counts[static_cast<std::size_t>(t) - 1];
    if ((profile.feasible || stabilized) && t >= min_depth) break;
    const std::vector<ViewId>& prev = profile.ids.back();
    std::vector<ViewId> next(n);
    std::vector<ChildRef> kids;
    for (std::size_t v = 0; v < n; ++v) {
      const auto& row = g.neighbors(static_cast<NodeId>(v));
      kids.clear();
      for (const auto& he : row)
        kids.emplace_back(he.rev_port,
                          prev[static_cast<std::size_t>(he.neighbor)]);
      next[v] = repo.intern(kids);
    }
    profile.ids.push_back(std::move(next));
    profile.class_counts.push_back(distinct_count(profile.ids.back()));
  }
  return profile;
}

std::vector<PortGraph> property_graphs() {
  std::vector<PortGraph> graphs;
  for (std::uint64_t seed = 1; seed <= 5; ++seed)
    graphs.push_back(portgraph::random_connected(24, 20, seed));
  graphs.push_back(portgraph::ring(16));
  graphs.push_back(portgraph::clique(7));
  graphs.push_back(portgraph::path(15));
  graphs.push_back(portgraph::grid(4, 5));
  graphs.push_back(families::hairy_ring({2, 0, 3, 1, 0, 2, 1}).graph);
  graphs.push_back(
      families::hairy_ring({0, 4, 0, 1, 2, 0, 0, 3, 1, 0}).graph);
  return graphs;
}

TEST(Refiner, ProfilesIdenticalToNaivePerNodeIntern) {
  // The property the whole PR rests on: batched dedup-before-intern
  // assigns exactly the ids (and hence class counts, feasibility and
  // election index) of the per-node reference, on every level.
  for (const PortGraph& g : property_graphs()) {
    ViewRepo repo_naive;
    ViewRepo repo_batched;
    const int min_depth = 4;
    ViewProfile want = naive_profile(g, repo_naive, min_depth);
    ViewProfile got = compute_profile(g, repo_batched, min_depth);
    ASSERT_EQ(got.class_counts, want.class_counts);
    EXPECT_EQ(got.feasible, want.feasible);
    EXPECT_EQ(got.election_index, want.election_index);
    ASSERT_EQ(got.ids.size(), want.ids.size());
    for (std::size_t t = 0; t < want.ids.size(); ++t)
      EXPECT_EQ(got.ids[t], want.ids[t]) << "level " << t;
    // Both repos interned the same records in the same order.
    EXPECT_EQ(repo_batched.size(), repo_naive.size());
  }
}

TEST(Refiner, DistinctIsTheSortedLevelSet) {
  PortGraph g = portgraph::random_connected(30, 25, 7);
  ViewRepo repo;
  Refiner refiner(g, repo);
  std::vector<ViewId> level;
  std::size_t classes = refiner.init_level(level);
  for (int t = 0; t < 4; ++t) {
    std::vector<ViewId> expect(level.begin(), level.end());
    std::sort(expect.begin(), expect.end());
    expect.erase(std::unique(expect.begin(), expect.end()), expect.end());
    EXPECT_EQ(classes, expect.size());
    ASSERT_EQ(refiner.distinct().size(), expect.size());
    EXPECT_TRUE(std::equal(refiner.distinct().begin(),
                           refiner.distinct().end(), expect.begin()));
    std::vector<ViewId> next;
    classes = refiner.advance(level, next);
    level = std::move(next);
  }
}

TEST(Refiner, AdvanceIsPoolInvariant) {
  // With a pool the intern stage runs concurrently, so raw ids may differ
  // from the serial run; everything above ids — class counts, the record
  // set, and the canonical rank of every node's view — must be
  // byte-identical (DESIGN.md §10).
  PortGraph g = portgraph::random_connected(6000, 9000, 11);
  util::ThreadPool pool(4);
  ViewRepo repo_seq;
  ViewRepo repo_par;
  ViewProfile a = compute_profile(g, repo_seq, ProfileOptions{.min_depth = 3});
  ViewProfile b = compute_profile(
      g, repo_par, ProfileOptions{.min_depth = 3, .pool = &pool});
  EXPECT_EQ(a.class_counts, b.class_counts);
  EXPECT_EQ(repo_seq.size(), repo_par.size());
  ASSERT_EQ(a.ids.size(), b.ids.size());
  for (std::size_t t = 0; t < a.ids.size(); ++t) {
    ASSERT_EQ(a.ids[t].size(), b.ids[t].size());
    for (std::size_t v = 0; v < a.ids[t].size(); ++v) {
      ASSERT_NE(repo_seq.rank(a.ids[t][v]), kUnranked);
      ASSERT_EQ(repo_seq.rank(a.ids[t][v]), repo_par.rank(b.ids[t][v]))
          << "level " << t << " node " << v;
    }
  }
}

TEST(Profile, KeepHistoryFalseKeepsEverythingButTheLevels) {
  for (const PortGraph& g : property_graphs()) {
    ViewRepo repo_full;
    ViewRepo repo_last;
    ViewProfile full = compute_profile(g, repo_full, 3);
    ViewProfile last = compute_profile(
        g, repo_last, ProfileOptions{.min_depth = 3, .keep_history = false});
    EXPECT_EQ(last.class_counts, full.class_counts);
    EXPECT_EQ(last.feasible, full.feasible);
    EXPECT_EQ(last.election_index, full.election_index);
    EXPECT_EQ(last.computed_depth(), full.computed_depth());
    ASSERT_EQ(last.ids.size(), 1u);
    EXPECT_EQ(last.last_level(), full.last_level());
    int t = full.computed_depth();
    for (std::size_t v = 0; v < g.n(); ++v)
      EXPECT_EQ(last.view(t, static_cast<NodeId>(v)),
                full.view(t, static_cast<NodeId>(v)));
  }
}

TEST(Profile, ExtendHonorsHistoryMode) {
  PortGraph g = portgraph::random_connected(12, 8, 3);
  ViewRepo repo_full;
  ViewRepo repo_last;
  ViewProfile full = compute_profile(g, repo_full);
  ViewProfile last = compute_profile(
      g, repo_last, ProfileOptions{.keep_history = false});
  int target = full.computed_depth() + 3;
  extend_profile(g, repo_full, full, target);
  extend_profile(g, repo_last, last, target);
  EXPECT_EQ(last.computed_depth(), target);
  EXPECT_EQ(last.class_counts, full.class_counts);
  ASSERT_EQ(last.ids.size(), 1u);
  EXPECT_EQ(last.last_level(), full.last_level());
}

TEST(Profile, ArgminViewDedupsButAnswersAsBefore) {
  // Duplicate-heavy level: every ring node shares one view, so the witness
  // is node 0 by the lowest-index rule.
  {
    PortGraph g = portgraph::ring(12);
    ViewRepo repo;
    ViewProfile p = compute_profile(g, repo, 3);
    EXPECT_EQ(argmin_view(repo, p.last_level()), 0);
  }
  // General levels: the answer must match the pre-dedup O(n)-compare scan.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    PortGraph g = portgraph::random_connected(20, 14, seed);
    ViewRepo repo;
    ViewProfile p = compute_profile(g, repo, 2);
    for (int t = 0; t <= p.computed_depth(); ++t) {
      const auto& level = p.ids[static_cast<std::size_t>(t)];
      std::size_t best = 0;
      for (std::size_t v = 1; v < level.size(); ++v)
        if (level[v] != level[best] &&
            repo.compare(level[v], level[best]) == std::strong_ordering::less)
          best = v;
      EXPECT_EQ(argmin_view(repo, level), static_cast<NodeId>(best))
          << "seed " << seed << " level " << t;
    }
  }
}

}  // namespace
}  // namespace anole::views

namespace anole::sim {
namespace {

using portgraph::PortGraph;
using views::ViewId;

/// COM for `target` rounds, recording every view seen.
class ComRecorder final : public FullInfoProgram {
 public:
  explicit ComRecorder(int target) : target_(target) {}
  [[nodiscard]] bool has_output() const override {
    return rounds_seen_ >= target_;
  }
  [[nodiscard]] std::vector<int> output() const override {
    return {rounds_seen_};
  }
  const std::vector<ViewId>& history() const { return history_; }

 protected:
  void on_view(int rounds) override {
    rounds_seen_ = rounds;
    history_.push_back(view());
  }

 private:
  int target_;
  int rounds_seen_ = 0;
  std::vector<ViewId> history_;
};

/// Deliberately NOT a FullInfoProgram: exercises the engine fallback.
class LeafEcho final : public NodeProgram {
 public:
  void start(views::ViewRepo& repo, int degree) override {
    leaf_ = repo.leaf(degree);
  }
  [[nodiscard]] views::ViewId outgoing(int /*round*/) override {
    return leaf_;
  }
  void deliver(int round, std::span<const Message> /*inbox*/) override {
    done_ = round >= 1;
  }
  [[nodiscard]] bool has_output() const override { return done_; }
  [[nodiscard]] std::vector<int> output() const override { return {}; }

 private:
  views::ViewId leaf_ = views::kInvalidView;
  bool done_ = false;
};

void expect_metrics_equal(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.decision_round, b.decision_round);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.message_count, b.message_count);
  EXPECT_EQ(a.total_message_bits, b.total_message_bits);
  EXPECT_EQ(a.max_message_bits, b.max_message_bits);
  EXPECT_EQ(a.bits_per_round, b.bits_per_round);
  EXPECT_EQ(a.distinct_views_per_round, b.distinct_views_per_round);
  EXPECT_EQ(a.timed_out, b.timed_out);
}

struct ComRun {
  RunMetrics metrics;
  std::vector<std::vector<ViewId>> histories;
  /// Histories mapped id -> canonical rank: unlike raw ids, deterministic
  /// across pool thread counts (DESIGN.md §10).
  std::vector<std::vector<std::int32_t>> rank_histories;
};

ComRun run_with(const PortGraph& g, int target, int max_rounds, bool meter,
                bool batched, util::ThreadPool* pool = nullptr) {
  views::ViewRepo repo;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  std::vector<ComRecorder*> raw;
  for (std::size_t v = 0; v < g.n(); ++v) {
    auto p = std::make_unique<ComRecorder>(target);
    raw.push_back(p.get());
    programs.push_back(std::move(p));
  }
  ComRun out;
  out.metrics = batched
                    ? run_full_info(g, repo, programs, max_rounds, meter, pool)
                    : Engine(g, repo).run(programs, max_rounds, meter);
  for (ComRecorder* p : raw) out.histories.push_back(p->history());
  for (const auto& h : out.histories) {
    std::vector<std::int32_t> ranks(h.size());
    for (std::size_t i = 0; i < h.size(); ++i) ranks[i] = repo.rank(h[i]);
    out.rank_histories.push_back(std::move(ranks));
  }
  return out;
}

TEST(RunFullInfo, ByteIdenticalToEngine) {
  std::vector<PortGraph> graphs;
  for (std::uint64_t seed = 1; seed <= 4; ++seed)
    graphs.push_back(portgraph::random_connected(18, 14, seed));
  graphs.push_back(portgraph::ring(32));
  graphs.push_back(portgraph::clique(9));
  for (const PortGraph& g : graphs) {
    for (bool meter : {false, true}) {
      ComRun engine = run_with(g, 6, 8, meter, /*batched=*/false);
      ComRun batched = run_with(g, 6, 8, meter, /*batched=*/true);
      expect_metrics_equal(batched.metrics, engine.metrics);
      // Same repo evolution: the views every node saw are id-identical.
      EXPECT_EQ(batched.histories, engine.histories);
    }
  }
}

TEST(RunFullInfo, TimeoutMatchesEngine) {
  PortGraph g = portgraph::path(5);
  ComRun engine = run_with(g, 100, 4, true, /*batched=*/false);
  ComRun batched = run_with(g, 100, 4, true, /*batched=*/true);
  EXPECT_TRUE(batched.metrics.timed_out);
  expect_metrics_equal(batched.metrics, engine.metrics);
}

TEST(RunFullInfo, StaggeredDecisionsMatchEngine) {
  // Nodes decide at different rounds: exercises the shrinking undecided
  // list on both paths (a node's output is captured exactly once, at its
  // first has_output round).
  PortGraph g = portgraph::random_connected(16, 12, 5);
  for (bool batched : {false, true}) {
    views::ViewRepo repo;
    std::vector<std::unique_ptr<NodeProgram>> programs;
    for (std::size_t v = 0; v < g.n(); ++v)
      programs.push_back(std::make_unique<ComRecorder>(static_cast<int>(v % 5)));
    RunMetrics m = batched ? run_full_info(g, repo, programs, 10, false)
                           : Engine(g, repo).run(programs, 10, false);
    EXPECT_FALSE(m.timed_out);
    EXPECT_EQ(m.rounds, 4);
    for (std::size_t v = 0; v < g.n(); ++v) {
      EXPECT_EQ(m.decision_round[v], static_cast<int>(v % 5)) << "node " << v;
      ASSERT_EQ(m.outputs[v].size(), 1u);
      EXPECT_EQ(m.outputs[v][0], static_cast<int>(v % 5));
    }
  }
}

TEST(RunFullInfo, ThreadCountInvariant) {
  // The determinism contract across thread counts (DESIGN.md §10): raw
  // ids may depend on which worker claims a fresh signature first, but
  // every metric byte and the canonical rank of every view each node saw
  // must not.
  PortGraph g = portgraph::random_connected(5000, 7500, 21);
  util::ThreadPool pool(4);
  ComRun seq = run_with(g, 4, 6, true, /*batched=*/true, nullptr);
  ComRun par = run_with(g, 4, 6, true, /*batched=*/true, &pool);
  expect_metrics_equal(par.metrics, seq.metrics);
  for (const auto& h : par.rank_histories)
    for (std::int32_t r : h)
      ASSERT_NE(r, views::kUnranked);  // or the rank check is vacuous
  EXPECT_EQ(par.rank_histories, seq.rank_histories);
}

TEST(RunFullInfo, FallsBackToEngineForNonComPrograms) {
  PortGraph g = portgraph::random_connected(10, 8, 2);
  RunMetrics want;
  RunMetrics got;
  for (bool batched : {false, true}) {
    views::ViewRepo repo;
    std::vector<std::unique_ptr<NodeProgram>> programs;
    for (std::size_t v = 0; v < g.n(); ++v)
      programs.push_back(std::make_unique<LeafEcho>());
    RunMetrics m = batched ? run_full_info(g, repo, programs, 5, true)
                           : Engine(g, repo).run(programs, 5, true);
    (batched ? got : want) = m;
  }
  expect_metrics_equal(got, want);
}

TEST(RunFullInfo, StressRing65536) {
  // The metering best case at scale: one distinct view per round, priced
  // once, on a 65536-node ring — the level-synchronous sweep the batched
  // path exists for. Checks the exact metering identities.
  constexpr std::size_t kN = 65536;
  constexpr int kRounds = 8;
  PortGraph g = portgraph::ring(kN);
  views::ViewRepo repo;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (std::size_t v = 0; v < kN; ++v)
    programs.push_back(std::make_unique<ComRecorder>(kRounds));
  util::ThreadPool pool(0);
  RunMetrics m =
      run_full_info(g, repo, programs, kRounds + 1, true, &pool);
  EXPECT_FALSE(m.timed_out);
  EXPECT_EQ(m.rounds, kRounds);
  EXPECT_EQ(m.message_count, 2 * kN * kRounds);
  ASSERT_EQ(m.distinct_views_per_round.size(),
            static_cast<std::size_t>(kRounds));
  for (std::size_t d : m.distinct_views_per_round) EXPECT_EQ(d, 1u);
  // Ring views are fully symmetric: one record per level in the repo.
  EXPECT_EQ(repo.size(), static_cast<std::size_t>(kRounds) + 1);
  for (int r : m.decision_round) EXPECT_EQ(r, kRounds);
}

}  // namespace
}  // namespace anole::sim
