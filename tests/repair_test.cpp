// Tests for incremental view repair (views/repair.hpp, DESIGN.md §12):
// after degree-preserving in-place edits, repair_profile must produce a
// profile byte-identical — per-level ids, class counts, feasibility,
// election index — to a from-scratch recompute of the edited graph. The
// repair-check switch makes repair_profile itself assert exactly that,
// so these sweeps fail loudly inside the repair if equality ever breaks.

#include <gtest/gtest.h>

#include <array>
#include <optional>
#include <vector>

#include "portgraph/builders.hpp"
#include "portgraph/port_graph.hpp"
#include "util/prng.hpp"
#include "views/profile.hpp"
#include "views/refiner.hpp"
#include "views/repair.hpp"

namespace anole::views {
namespace {

using portgraph::NodeId;
using portgraph::Port;
using portgraph::PortGraph;

struct RepairCheckGuard {
  RepairCheckGuard() { set_repair_check_enabled(true); }
  ~RepairCheckGuard() { set_repair_check_enabled(false); }
};

/// Applies one random valid connectivity-preserving rewire to `g` and
/// returns the four dirtied rows, or nullopt if none was found.
std::optional<std::array<NodeId, 4>> random_rewire(PortGraph& g,
                                                   util::SplitMix64& rng) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    NodeId u1 = static_cast<NodeId>(rng.below(g.n()));
    NodeId u2 = static_cast<NodeId>(rng.below(g.n()));
    if (g.degree(u1) == 0 || g.degree(u2) == 0) continue;
    Port p1 = static_cast<Port>(
        rng.below(static_cast<std::uint64_t>(g.degree(u1))));
    Port p2 = static_cast<Port>(
        rng.below(static_cast<std::uint64_t>(g.degree(u2))));
    NodeId v1 = g.at(u1, p1).neighbor;
    NodeId v2 = g.at(u2, p2).neighbor;
    if (u1 == u2 || v1 == v2 || u1 == v2 || u2 == v1) continue;
    if (g.port_to(u1, u2) || g.port_to(v1, v2)) continue;
    PortGraph trial = g;
    trial.rewire_edge(u1, p1, u2, p2);
    if (!trial.connected()) continue;
    g = std::move(trial);
    return std::array<NodeId, 4>{u1, v1, u2, v2};
  }
  return std::nullopt;
}

TEST(Repair, FiftyRandomEditSequencesMatchRecompute) {
  RepairCheckGuard guard;
  std::size_t incremental = 0;
  for (std::uint64_t seq = 0; seq < 50; ++seq) {
    util::SplitMix64 rng(1000 + seq);
    PortGraph g = portgraph::random_connected(18, 12, seq);
    ViewRepo repo;
    Refiner refiner(g, repo);
    ViewProfile profile = compute_profile(
        g, repo,
        ProfileOptions{.min_depth = 1, .keep_history = true,
                       .refiner = &refiner});
    for (int edit = 0; edit < 3; ++edit) {
      std::optional<std::array<NodeId, 4>> dirty = random_rewire(g, rng);
      if (!dirty) break;
      // repair_check is on: repair_profile itself recomputes from scratch
      // and asserts per-level id equality, class counts and verdict.
      RepairStats stats =
          repair_profile(g, repo, profile, *dirty, &refiner);
      ASSERT_TRUE(stats.incremental) << "seq " << seq << " edit " << edit;
      ASSERT_GT(stats.recomputed_views, 0u);
      if (profile.computed_depth() >= 2)
        ASSERT_GT(stats.reused_views, 0u);
      ++incremental;
    }
  }
  // The sweep must actually have exercised the incremental path.
  EXPECT_GT(incremental, 100u);
}

TEST(Repair, HistorylessProfileFallsBackToFullRecompute) {
  PortGraph g = portgraph::random_connected(18, 12, 3);
  ViewRepo repo;
  ViewProfile profile = compute_profile(
      g, repo, ProfileOptions{.min_depth = 1, .keep_history = false});
  util::SplitMix64 rng(77);
  std::optional<std::array<NodeId, 4>> dirty = random_rewire(g, rng);
  ASSERT_TRUE(dirty.has_value());
  RepairStats stats = repair_profile(g, repo, profile, *dirty);
  EXPECT_FALSE(stats.incremental);
  EXPECT_EQ(stats.recomputed_views, 0u);
  // The fallback still leaves a correct profile of the EDITED graph.
  ViewProfile fresh = compute_profile(
      g, repo,
      ProfileOptions{.min_depth = profile.computed_depth(),
                     .keep_history = false});
  EXPECT_EQ(profile.class_counts, fresh.class_counts);
  EXPECT_EQ(profile.ids.back(), fresh.ids.back());
  EXPECT_EQ(profile.feasible, fresh.feasible);
  EXPECT_EQ(profile.election_index, fresh.election_index);
}

TEST(Repair, DegreeChangeFallsBackToFullRecompute) {
  // A crash/recover cycle that ends in a *valid* graph with different
  // degrees: add an edge between two non-adjacent nodes. Degrees of the
  // two endpoints grow, so the dirty rows fail the degree-preservation
  // precondition and repair must recompute.
  PortGraph g = portgraph::path(6);
  ViewRepo repo;
  ViewProfile profile = compute_profile(
      g, repo, ProfileOptions{.min_depth = 1, .keep_history = true});
  g.add_edge(0, 1, 5, 1);  // close the path into a ring
  std::vector<NodeId> dirty{0, 5};
  RepairStats stats = repair_profile(g, repo, profile, dirty);
  EXPECT_FALSE(stats.incremental);
  ViewProfile fresh = compute_profile(
      g, repo,
      ProfileOptions{.min_depth = profile.computed_depth(),
                     .keep_history = true});
  EXPECT_EQ(profile.class_counts, fresh.class_counts);
  EXPECT_EQ(profile.ids, fresh.ids);
}

TEST(Repair, RefinerInvalidateRejectsForeignGraphAndDegreeChange) {
  PortGraph g = portgraph::random_connected(14, 8, 2);
  ViewRepo repo;
  Refiner refiner(g, repo);
  PortGraph other = portgraph::ring(14);
  std::vector<NodeId> dirty{0};
  // Different graph object: refiner must refuse and stay untouched.
  EXPECT_FALSE(refiner.invalidate(other, dirty));
  // Attached object edited degree-preservingly: accepted.
  util::SplitMix64 rng(5);
  std::optional<std::array<NodeId, 4>> rows = random_rewire(g, rng);
  ASSERT_TRUE(rows.has_value());
  EXPECT_TRUE(refiner.invalidate(g, *rows));
  // Masked slot (crash edit): refused.
  g.crash_node(0);
  std::vector<NodeId> crashed{0};
  EXPECT_FALSE(refiner.invalidate(g, crashed));
}

}  // namespace
}  // namespace anole::views
